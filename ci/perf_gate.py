#!/usr/bin/env python3
"""CI perf-regression gate.

Runs the two perf benches in their smoke configurations, writes the results
to BENCH_pr.json, and compares them against the committed BENCH_baseline.json:

  bench_scalability_users --smoke --json
      Virtual-time metrics from the deterministic simulator (mean/p99 access
      latency per user count, hit rates, failure counts). These are exactly
      reproducible on any machine, so any regression past the tolerance is a
      HARD failure.

  bench_framerate --benchmark_format=json
      Wall-clock render throughput (google-benchmark). Absolute fps depends
      on the runner, so cross-run comparisons only WARN unless --strict.
      The pooled/serial fps ratio on the same run is machine-relative,
      though: on a 4+-core host the BM_NovelViewSynthesisPooled counters
      must show >= --min-speedup over BM_NovelViewSynthesis (hard failure).

  bench_compression --smoke --json
      Codec bytes-on-the-wire and ratios per wire format (stored, lfz1,
      lfzc, lfz2). The compressed sizes are deterministic, so any byte or
      ratio change against the baseline is a HARD failure. Wall-clock MB/s
      warns like fps. Two same-run machine-relative checks are always hard:
      the table-driven Huffman decode must be >= --min-decode-speedup over
      the bit-at-a-time reference, and the lfz2 container must be strictly
      smaller than lfzc on the same view set.

  bench_prefetch --smoke --json
      Client-agent policy engine on scripted cursor walks (virtual time, so
      fully deterministic -> all hard checks). Per row vs baseline: demand
      hit rate must not drop, wasted-prefetch bytes and demand p99 must stay
      within tolerance. Same-run: the predictive scheduler must strictly
      beat the paper's quadrant policy on the smooth-pan and reversal walks,
      and under the thrashing-cache rows the hybrid eviction policy must
      keep demand p99 at or below plain LRU with fewer pollution evictions.

  bench_scenarios --smoke --json
      Adversarial scenario suite (virtual time -> all hard checks). Per row
      vs baseline: mean/p99 within tolerance. Same-run SLO checks: the
      100-client flash crowd with admission control keeps its worst
      per-client p99 within the scenario SLO with no starved client, the
      identical crowd without admission misses that p99 by >= 2x, the
      teleport-under-faults chaos row detects injected corruption and loses
      nothing permanently, the warm site cache beats the cold one, the
      co-sited crowd with the cooperative site cache stages each hot view
      set over the WAN exactly once (restage leaders == distinct keys, with
      strictly fewer WAN bytes and a no-worse p99 than the
      every-agent-restages-alone control, and the coalescing counters
      bit-identical to the baseline), and on
      the PDA-class constrained link continuous LOD streaming holds every
      access inside the deadline (zero misses, nonzero coarse serves, every
      background refinement reaching full resolution) while the
      full-resolution-only control misses deadlines.

With --scale-full the gate instead runs the one bench that does not fit the
smoke budget:

  bench_scalability_users --json        (no --smoke: the 1000-user crowd row)
      The full-scale run the paper's future-work section asks for. All
      virtual-time metrics are deterministic, so the gate demands them
      bit-identical to the committed baseline: failed accesses, the
      worst-off client's delivery count, admission sheds, executed event
      count, and max-min solve counts are exact-match; mean/p99 latencies
      and the p99-vs-1-user degradation factor allow the usual float
      tolerance on parse/print round-trips. Host wall time only WARNS
      against --wall-budget (runner-dependent), but a run that cannot
      finish at all still fails the job via the CI timeout.

Exit status is non-zero on any hard failure. A PR that intentionally changes
performance updates the baseline in the same commit:

  python3 ci/perf_gate.py --build-dir build --update-baseline
  python3 ci/perf_gate.py --build-dir build --scale-full --update-baseline

(the --scale-full update merges its section into the existing baseline file),
or carries the `perf-override` label, which skips the gate jobs entirely.
"""

import argparse
import json
import os
import subprocess
import sys

HARD_FAILURES = []
WARNINGS = []


def fail(msg):
    HARD_FAILURES.append(msg)
    print(f"FAIL: {msg}")


def warn(msg):
    WARNINGS.append(msg)
    print(f"warn: {msg}")


def run_json(cmd):
    print(f"+ {' '.join(cmd)}", flush=True)
    out = subprocess.run(cmd, check=True, capture_output=True, text=True).stdout
    # google-benchmark may prefix context lines before the JSON object.
    return json.loads(out[out.index("{"):])


def collect_scalability(build_dir):
    return run_json([os.path.join(build_dir, "bench", "bench_scalability_users"),
                     "--smoke", "--json"])


def collect_scalability_full(build_dir):
    return run_json([os.path.join(build_dir, "bench", "bench_scalability_users"),
                     "--json"])


def collect_framerate(build_dir):
    raw = run_json([os.path.join(build_dir, "bench", "bench_framerate"),
                    "--benchmark_format=json"])
    rows = []
    for bench in raw.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        if "fps" in bench:
            rows.append({"name": bench["name"], "fps": bench["fps"]})
    return {"benchmarks": rows}


def collect_compression(build_dir):
    return run_json([os.path.join(build_dir, "bench", "bench_compression"),
                     "--smoke", "--json"])


def collect_prefetch(build_dir):
    return run_json([os.path.join(build_dir, "bench", "bench_prefetch"),
                     "--smoke", "--json"])


def collect_scenarios(build_dir):
    return run_json([os.path.join(build_dir, "bench", "bench_scenarios"),
                     "--smoke", "--json"])


def check_scalability(pr, base, tolerance):
    base_rows = {row["users"]: row for row in base.get("results", [])}
    for row in pr.get("results", []):
        users = row["users"]
        tag = f"scalability_users[{users} users]"
        if row.get("failed", 0) > 0:
            fail(f"{tag}: {row['failed']} failed accesses")
        if users not in base_rows:
            warn(f"{tag}: no baseline row; add one with --update-baseline")
            continue
        ref = base_rows[users]
        for key in ("mean_total_s", "p99_worst_s"):
            got, want = row[key], ref[key]
            limit = want * (1.0 + tolerance)
            if got > limit:
                fail(f"{tag}: {key} {got:.4f}s exceeds baseline {want:.4f}s "
                     f"by more than {tolerance:.0%} (virtual time: deterministic)")
            else:
                print(f"ok:   {tag}: {key} {got:.4f}s (baseline {want:.4f}s)")


def check_scalability_full(pr, base, tolerance, wall_budget):
    """Full-scale (1000-user) run: every virtual metric gates, most exactly.

    The simulator is single-threaded virtual time, so event counts, solve
    counts, shed counters, and delivery floors reproduce bit-for-bit on any
    host. Latency percentiles pass through printf/parse round-trips, so they
    get the regular relative tolerance instead of exact equality.
    """
    base_rows = {row["users"]: row for row in base.get("results", [])}
    wall_total = 0.0
    for row in pr.get("results", []):
        users = row["users"]
        tag = f"scale_full[{users} users]"
        wall_total += row.get("wall_s", 0.0)
        if row.get("failed", 0) > 0:
            fail(f"{tag}: {row['failed']} failed accesses")
        if row.get("min_delivered", 0) == 0:
            fail(f"{tag}: a client was starved to zero deliveries")
        if users not in base_rows:
            warn(f"{tag}: no baseline row; add one with "
                 "--scale-full --update-baseline")
            continue
        ref = base_rows[users]
        exact_ok = True
        for key in ("accesses", "demand_shed", "sim_events", "reallocs",
                    "realloc_flows_touched"):
            got, want = row.get(key), ref.get(key)
            if want is not None and got != want:
                fail(f"{tag}: {key} {got} != baseline {want} "
                     f"(virtual time: must be bit-identical)")
                exact_ok = False
        for key in ("mean_total_s", "p99_worst_s", "p99_mean_s", "p99_vs_1user"):
            got, want = row[key], ref[key]
            if got > want * (1.0 + tolerance):
                fail(f"{tag}: {key} {got:.4f} exceeds baseline {want:.4f} "
                     f"by more than {tolerance:.0%} (virtual time: deterministic)")
                exact_ok = False
        if exact_ok:
            print(f"ok:   {tag}: {row['sim_events']} events, "
                  f"{row['reallocs']} solves, p99-vs-1 {row['p99_vs_1user']:.2f}, "
                  f"min delivered {row['min_delivered']}, "
                  f"wall {row.get('wall_s', 0.0):.1f}s")
    if wall_total > wall_budget:
        warn(f"scale_full: total wall time {wall_total:.1f}s over the "
             f"{wall_budget:.0f}s budget (runner-dependent; check for a "
             f"scheduler/reallocator slowdown)")
    else:
        print(f"ok:   scale_full: total wall {wall_total:.1f}s "
              f"within the {wall_budget:.0f}s budget")


def fps_by_name(section):
    return {row["name"]: row["fps"] for row in section.get("benchmarks", [])}


def check_framerate(pr, base, tolerance, strict):
    report = fail if strict else warn
    pr_fps, base_fps = fps_by_name(pr), fps_by_name(base)
    for name, got in sorted(pr_fps.items()):
        if name not in base_fps:
            continue
        want = base_fps[name]
        if got < want * (1.0 - tolerance):
            report(f"framerate[{name}]: {got:.1f} fps vs baseline {want:.1f} fps "
                   f"(wall clock; runner-dependent)")
        else:
            print(f"ok:   framerate[{name}]: {got:.1f} fps (baseline {want:.1f})")


def check_speedup(pr, min_speedup, cores):
    """Pooled vs serial synthesis fps from the same run (machine-relative)."""
    fps = fps_by_name(pr)
    ratios = {}
    for name, value in fps.items():
        if name.startswith("BM_NovelViewSynthesisPooled/"):
            arg = name.rsplit("/", 1)[1]
            serial = fps.get(f"BM_NovelViewSynthesis/{arg}")
            if serial:
                ratios[arg] = value / serial
    if not ratios:
        fail("speedup: pooled/serial synthesis benchmark pair not found")
        return
    best = max(ratios.values())
    detail = ", ".join(f"{k}px: {v:.2f}x" for k, v in sorted(ratios.items()))
    if cores < 4:
        print(f"skip: speedup check needs >= 4 cores, host has {cores} ({detail})")
    elif best < min_speedup:
        fail(f"speedup: best pooled/serial ratio {best:.2f}x < {min_speedup}x ({detail})")
    else:
        print(f"ok:   speedup {best:.2f}x ({detail})")


def check_compression(pr, base, tolerance, strict, min_decode_speedup):
    """Deterministic bytes/ratio vs baseline + same-run relative checks."""
    report = fail if strict else warn
    base_rows = {row["mode"]: row for row in base.get("results", [])}
    pr_rows = {row["mode"]: row for row in pr.get("results", [])}
    for mode, row in sorted(pr_rows.items()):
        tag = f"compression[{mode}]"
        if mode not in base_rows:
            warn(f"{tag}: no baseline row; add one with --update-baseline")
            continue
        ref = base_rows[mode]
        if row["bytes"] != ref["bytes"]:
            fail(f"{tag}: wire bytes {row['bytes']} != baseline {ref['bytes']} "
                 f"(compressed output is deterministic)")
        elif row["ratio"] < ref["ratio"] * (1.0 - 1e-6):
            fail(f"{tag}: ratio {row['ratio']:.4f} below baseline {ref['ratio']:.4f}")
        else:
            print(f"ok:   {tag}: {row['bytes']} bytes, ratio {row['ratio']:.2f}")
        for key in ("compress_mb_s", "decompress_mb_s"):
            got, want = row[key], ref.get(key)
            if want and got < want * (1.0 - tolerance):
                report(f"{tag}: {key} {got:.1f} vs baseline {want:.1f} "
                       f"(wall clock; runner-dependent)")
        # Copy accounting is deterministic: one metered decode of a stored
        # body copies exactly its payload, LZ bodies copy nothing.
        got = row.get("decode_copied_bytes")
        want = ref.get("decode_copied_bytes")
        if got is not None and want is not None and got != want:
            fail(f"{tag}: decode_copied_bytes {got} != baseline {want} "
                 f"(copy meter is deterministic; an extra pass crept in)")

    # Same-run, machine-relative: the whole point of the wire format.
    if "lfzc" in pr_rows and "lfz2" in pr_rows:
        lfzc, lfz2 = pr_rows["lfzc"]["bytes"], pr_rows["lfz2"]["bytes"]
        if lfz2 >= lfzc:
            fail(f"compression: lfz2 ({lfz2} bytes) not smaller than lfzc ({lfzc})")
        else:
            print(f"ok:   compression: lfz2 {lfz2} < lfzc {lfzc} "
                  f"({1.0 - lfz2 / lfzc:.1%} fewer bytes)")
    else:
        fail("compression: lfzc/lfz2 row pair not found")

    decode = pr.get("decode", {})
    speedup = decode.get("speedup", 0.0)
    if speedup < min_decode_speedup:
        fail(f"compression: table decode speedup {speedup:.2f}x < "
             f"{min_decode_speedup}x over bitwise")
    else:
        print(f"ok:   compression: table decode {speedup:.2f}x over bitwise "
              f"({decode.get('table_msym_s', 0):.1f} Msym/s)")

    # Vectorized unfilter kernels: wall clock, so cross-run deltas only warn;
    # the fast/scalar bit-exactness is asserted inside the bench itself.
    filters = pr.get("filters", {})
    base_filters = base.get("filters", {})
    if filters:
        got, want = filters.get("fast_mb_s", 0.0), base_filters.get("fast_mb_s")
        if want and got < want * (1.0 - tolerance):
            report(f"compression[filters]: fast unfilter {got:.1f} MB/s vs "
                   f"baseline {want:.1f} (wall clock; runner-dependent)")
        else:
            print(f"ok:   compression[filters]: fast {got:.1f} MB/s, "
                  f"{filters.get('speedup', 0.0):.2f}x over scalar")

    # Zero-copy demand path: virtual-time scenario, every field deterministic.
    # Same-run invariants are the contract itself — a cold fetch is allowed
    # exactly one pass over the compressed payload, a warm hit none.
    demand = pr.get("demand", {})
    if demand:
        compressed = demand.get("compressed_bytes", 0)
        cold = demand.get("cold_copied_bytes")
        warm = demand.get("warm_copied_bytes")
        if cold != compressed:
            fail(f"compression[demand]: cold fetch copied {cold} bytes, "
                 f"expected exactly one pass over the {compressed}-byte payload")
        if warm != 0:
            fail(f"compression[demand]: warm cache hit copied {warm} bytes, "
                 f"expected 0 (hit must serve the pooled slab by reference)")
        base_demand = base.get("demand", {})
        for key in ("compressed_bytes", "cold_copied_bytes", "warm_copied_bytes"):
            got, want = demand.get(key), base_demand.get(key)
            if want is not None and got != want:
                fail(f"compression[demand]: {key} {got} != baseline {want} "
                     f"(virtual time: must be bit-identical)")
        if all("compression[demand]" not in f for f in HARD_FAILURES):
            print(f"ok:   compression[demand]: cold {cold} == payload "
                  f"{compressed}, warm {warm} == 0")
    else:
        fail("compression: demand copy section not found")


def check_prefetch(pr, base, tolerance):
    """Deterministic policy metrics vs baseline + same-run policy ordering."""
    base_rows = {row["name"]: row for row in base.get("results", [])}
    pr_rows = {row["name"]: row for row in pr.get("results", [])}
    for name, row in sorted(pr_rows.items()):
        tag = f"prefetch[{name}]"
        if row.get("failed", 0) > 0:
            fail(f"{tag}: {row['failed']} failed accesses")
        if name not in base_rows:
            warn(f"{tag}: no baseline row; add one with --update-baseline")
            continue
        ref = base_rows[name]
        if row["hit_rate"] < ref["hit_rate"] - 1e-6:
            fail(f"{tag}: hit rate {row['hit_rate']:.4f} below baseline "
                 f"{ref['hit_rate']:.4f} (virtual time: deterministic)")
        if row["wasted_bytes"] > ref["wasted_bytes"] * (1.0 + tolerance):
            fail(f"{tag}: wasted prefetch bytes {row['wasted_bytes']} exceed "
                 f"baseline {ref['wasted_bytes']} by more than {tolerance:.0%}")
        if row["p99_s"] > ref["p99_s"] * (1.0 + tolerance):
            fail(f"{tag}: demand p99 {row['p99_s']:.4f}s exceeds baseline "
                 f"{ref['p99_s']:.4f}s by more than {tolerance:.0%}")
        else:
            print(f"ok:   {tag}: hit {row['hit_rate']:.3f}, "
                  f"p99 {row['p99_s']:.4f}s, wasted {row['wasted_bytes']}B")

    # Same-run orderings: what the policy engine is *for*. All virtual-time.
    for script in ("smooth_pan", "reversal"):
        quad = pr_rows.get(f"{script}/quadrant")
        pred = pr_rows.get(f"{script}/predictive")
        if not quad or not pred:
            fail(f"prefetch[{script}]: quadrant/predictive row pair not found")
            continue
        if pred["hit_rate"] <= quad["hit_rate"]:
            fail(f"prefetch[{script}]: predictive hit rate {pred['hit_rate']:.4f} "
                 f"does not beat quadrant {quad['hit_rate']:.4f}")
        elif pred["mean_s"] > quad["mean_s"]:
            fail(f"prefetch[{script}]: predictive mean {pred['mean_s']:.4f}s "
                 f"slower than quadrant {quad['mean_s']:.4f}s")
        else:
            print(f"ok:   prefetch[{script}]: predictive {pred['hit_rate']:.3f} "
                  f"> quadrant {quad['hit_rate']:.3f} hit rate")

    lru = pr_rows.get("reversal/predictive/lru")
    hybrid = pr_rows.get("reversal/predictive/hybrid")
    if not lru or not hybrid:
        fail("prefetch: tight-cache lru/hybrid row pair not found")
    elif hybrid["p99_s"] > lru["p99_s"]:
        fail(f"prefetch[tight-cache]: hybrid p99 {hybrid['p99_s']:.4f}s above "
             f"lru {lru['p99_s']:.4f}s (demand working set not protected)")
    elif hybrid["pollution_evictions"] > lru["pollution_evictions"]:
        fail(f"prefetch[tight-cache]: hybrid evicted {hybrid['pollution_evictions']} "
             f"polluters vs lru {lru['pollution_evictions']}")
    else:
        print(f"ok:   prefetch[tight-cache]: hybrid p99 {hybrid['p99_s']:.4f}s "
              f"<= lru {lru['p99_s']:.4f}s, pollution "
              f"{hybrid['pollution_evictions']} vs {lru['pollution_evictions']}")


def check_scenarios(pr, base, tolerance):
    """Deterministic SLO harness: per-row baselines + same-run invariants."""
    base_rows = {row["name"]: row for row in base.get("results", [])}
    pr_rows = {row["name"]: row for row in pr.get("results", [])}
    # Rows with a fault plan are *supposed* to fight for their bytes; every
    # other row must deliver everything.
    faulted = {"teleport_faults"}
    for name, row in sorted(pr_rows.items()):
        tag = f"scenarios[{name}]"
        if name not in faulted and row.get("failed", 0) > 0:
            fail(f"{tag}: {row['failed']} failed accesses on a fault-free row")
        if name not in base_rows:
            warn(f"{tag}: no baseline row; add one with --update-baseline")
            continue
        ref = base_rows[name]
        for key in ("mean_total_s", "p99_worst_s"):
            got, want = row[key], ref[key]
            limit = want * (1.0 + tolerance)
            if got > limit:
                fail(f"{tag}: {key} {got:.4f}s exceeds baseline {want:.4f}s "
                     f"by more than {tolerance:.0%} (virtual time: deterministic)")
            else:
                print(f"ok:   {tag}: {key} {got:.4f}s (baseline {want:.4f}s)")

    # Same-run invariants — the acceptance criteria of the overload work.
    adm = pr_rows.get("flash_crowd/admission")
    ctl = pr_rows.get("flash_crowd/no_admission")
    if not adm or not ctl:
        fail("scenarios: flash_crowd admission/no_admission row pair not found")
    else:
        slo = adm.get("slo_s", 1.0)
        if adm["p99_worst_s"] > slo:
            fail(f"scenarios[flash_crowd]: admission p99 {adm['p99_worst_s']:.3f}s "
                 f"misses the {slo:.1f}s SLO")
        if adm.get("min_delivered", 0) == 0:
            fail("scenarios[flash_crowd]: a client was starved to zero deliveries "
                 "under admission control")
        if adm.get("failed", 0) > 0:
            fail(f"scenarios[flash_crowd]: {adm['failed']} accesses permanently "
                 f"shed under admission control")
        if adm.get("demand_shed", 0) == 0:
            fail("scenarios[flash_crowd]: the crowd never tripped admission "
                 "(scenario lost its teeth)")
        if ctl["p99_worst_s"] < 2.0 * adm["p99_worst_s"]:
            fail(f"scenarios[flash_crowd]: control p99 {ctl['p99_worst_s']:.3f}s "
                 f"is not >= 2x admission p99 {adm['p99_worst_s']:.3f}s")
        if not HARD_FAILURES or all("flash_crowd" not in f for f in HARD_FAILURES):
            print(f"ok:   scenarios[flash_crowd]: admission p99 "
                  f"{adm['p99_worst_s']:.3f}s <= {slo:.1f}s SLO, control "
                  f"{ctl['p99_worst_s']:.3f}s ({ctl['p99_worst_s'] / adm['p99_worst_s']:.1f}x), "
                  f"{adm['demand_shed']} sheds, min delivered {adm['min_delivered']}")

    chaos = pr_rows.get("teleport_faults")
    if not chaos:
        fail("scenarios: teleport_faults row not found")
    else:
        if chaos.get("failed", 0) > 0:
            fail(f"scenarios[teleport_faults]: {chaos['failed']} accesses lost "
                 f"permanently under the fault plan")
        if chaos.get("corruption_detected", 0) == 0:
            fail("scenarios[teleport_faults]: injected corruption was never "
                 "detected (checksum path dark)")
        if chaos.get("min_delivered", 0) == 0:
            fail("scenarios[teleport_faults]: a client was starved to zero")
        if all("teleport_faults" not in f for f in HARD_FAILURES):
            print(f"ok:   scenarios[teleport_faults]: 0 lost, "
                  f"{chaos['corruption_detected']} corruptions detected, "
                  f"{chaos['failovers']} failovers")

    cold = pr_rows.get("site_cache/cold")
    warm = pr_rows.get("site_cache/warm")
    if not cold or not warm:
        fail("scenarios: site_cache cold/warm row pair not found")
    elif warm["mean_total_s"] > cold["mean_total_s"]:
        fail(f"scenarios[site_cache]: warm mean {warm['mean_total_s']:.4f}s above "
             f"cold {cold['mean_total_s']:.4f}s (prestaging not paying off)")
    else:
        print(f"ok:   scenarios[site_cache]: warm {warm['mean_total_s']:.4f}s <= "
              f"cold {cold['mean_total_s']:.4f}s")

    # Cooperative site cache (PR 10): the co-sited crowd must coalesce its
    # restage stampede to exactly one WAN staging per hot view set, and that
    # must buy strictly fewer WAN bytes and a no-worse tail than the control
    # where every agent restages alone.
    site = pr_rows.get("co_sited/site")
    ctrl = pr_rows.get("co_sited/control")
    if not site or not ctrl:
        fail("scenarios: co_sited site/control row pair not found")
    else:
        if site["stage_wan_bytes"] >= ctrl["stage_wan_bytes"]:
            fail(f"scenarios[co_sited]: site WAN staging bytes "
                 f"{site['stage_wan_bytes']} not below control "
                 f"{ctrl['stage_wan_bytes']} (coalescing bought nothing)")
        if site["p99_worst_s"] > ctrl["p99_worst_s"]:
            fail(f"scenarios[co_sited]: site p99 {site['p99_worst_s']:.3f}s "
                 f"worse than control {ctrl['p99_worst_s']:.3f}s")
        if site.get("restage_coalesced", 0) == 0:
            fail("scenarios[co_sited]: no restage was ever coalesced "
                 "(single-flight path dark)")
        if site.get("site_adopted", 0) == 0:
            fail("scenarios[co_sited]: no staging target was adopted from the "
                 "site index (sharing path dark)")
        leaders = site.get("site_restage_leaders", 0)
        keys = site.get("site_restage_keys", 0)
        if leaders == 0 or leaders != keys:
            fail(f"scenarios[co_sited]: {leaders} restage leaders for {keys} "
                 f"distinct view sets — the stampede fix demands exactly one "
                 f"WAN staging per hot view set")
        if ctrl.get("restage_coalesced", 0) != 0 or \
                ctrl.get("site_restage_leaders", 0) != 0:
            fail("scenarios[co_sited]: the control row touched the site cache "
                 "(feature-off run is not actually off)")
        if all("co_sited" not in f for f in HARD_FAILURES):
            saved = 1.0 - site["stage_wan_bytes"] / ctrl["stage_wan_bytes"]
            print(f"ok:   scenarios[co_sited]: {leaders} stagings for {keys} "
                  f"view sets, WAN {site['stage_wan_bytes']} vs control "
                  f"{ctrl['stage_wan_bytes']} ({saved:.0%} saved), p99 "
                  f"{site['p99_worst_s']:.3f}s <= {ctrl['p99_worst_s']:.3f}s")

    # The coalescing counters are pure virtual-time bookkeeping, so they must
    # reproduce bit-for-bit against the baseline on every site-cache row.
    for name in ("site_cache/cold", "site_cache/warm",
                 "co_sited/site", "co_sited/control"):
        row, ref = pr_rows.get(name), base_rows.get(name)
        if not row or not ref:
            continue
        for key in ("restaged", "restage_coalesced", "site_adopted",
                    "stage_wan_bytes", "site_restage_leaders",
                    "site_restage_keys"):
            got, want = row.get(key), ref.get(key)
            if want is not None and got != want:
                fail(f"scenarios[{name}]: {key} {got} != baseline {want} "
                     f"(virtual time: must be bit-identical)")

    # Continuous LOD streaming (PR 7): degrade resolution, never fluidity.
    lod = pr_rows.get("pda_link/lod")
    full = pr_rows.get("pda_link/full")
    if not lod or not full:
        fail("scenarios: pda_link lod/full row pair not found")
    else:
        if lod.get("deadline_misses", 0) > 0:
            fail(f"scenarios[pda_link]: LOD streaming missed the deadline on "
                 f"{lod['deadline_misses']} accesses (fluidity not held)")
        if lod.get("lod_coarse_serves", 0) == 0:
            fail("scenarios[pda_link]: LOD streaming never served a coarse tier "
                 "(scenario lost its teeth or the selector is dark)")
        if lod.get("lod_refined", 0) == 0:
            fail("scenarios[pda_link]: no background refinement reached full "
                 "resolution (progressive refinement dark)")
        if lod.get("lod_refined", 0) != lod.get("lod_refinements", 0):
            fail(f"scenarios[pda_link]: {lod['lod_refinements']} refinements "
                 f"started but only {lod['lod_refined']} completed")
        if full.get("deadline_misses", 0) == 0:
            fail("scenarios[pda_link]: the full-resolution control never missed "
                 "the deadline (link not constrained enough to prove anything)")
        if lod["p99_worst_s"] >= full["p99_worst_s"]:
            fail(f"scenarios[pda_link]: LOD p99 {lod['p99_worst_s']:.3f}s not "
                 f"below the full-only control {full['p99_worst_s']:.3f}s")
        if all("pda_link" not in f for f in HARD_FAILURES):
            print(f"ok:   scenarios[pda_link]: lod 0 misses "
                  f"({lod['lod_coarse_serves']} coarse, "
                  f"{lod['lod_refined']}/{lod['lod_refinements']} refined, "
                  f"p99 {lod['p99_worst_s']:.3f}s) vs control "
                  f"{full['deadline_misses']} misses, p99 {full['p99_worst_s']:.3f}s")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build")
    parser.add_argument("--baseline", default="BENCH_baseline.json")
    parser.add_argument("--out", default="BENCH_pr.json")
    parser.add_argument("--tolerance", type=float, default=0.15,
                        help="allowed relative regression (default 15%%)")
    parser.add_argument("--min-speedup", type=float, default=1.5)
    parser.add_argument("--min-decode-speedup", type=float, default=2.0,
                        help="required table/bitwise Huffman decode ratio")
    parser.add_argument("--strict", action="store_true",
                        help="wall-clock fps regressions fail instead of warning")
    parser.add_argument("--update-baseline", action="store_true",
                        help="write the measurements to --baseline and exit")
    parser.add_argument("--scale-full", action="store_true",
                        help="gate the full (non-smoke) 1000-user scalability "
                             "run instead of the smoke suite")
    parser.add_argument("--wall-budget", type=float, default=300.0,
                        help="--scale-full wall-clock warn threshold in "
                             "seconds (default 300)")
    args = parser.parse_args()

    cores = os.cpu_count() or 1

    if args.scale_full:
        section = collect_scalability_full(args.build_dir)
        if args.update_baseline:
            # Merge: the full-run section rides in the same baseline file as
            # the smoke sections; do not clobber them.
            try:
                with open(args.baseline) as f:
                    baseline = json.load(f)
            except FileNotFoundError:
                baseline = {}
            baseline["scalability_users_full"] = section
            with open(args.baseline, "w") as f:
                json.dump(baseline, f, indent=2, sort_keys=True)
                f.write("\n")
            print(f"merged scalability_users_full into {args.baseline}")
            return 0
        results = {
            "meta": {"cores": cores, "mode": "scale-full"},
            "scalability_users_full": section,
        }
        with open(args.out, "w") as f:
            json.dump(results, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"wrote {args.out}")
        try:
            with open(args.baseline) as f:
                baseline = json.load(f)
        except FileNotFoundError:
            fail(f"missing {args.baseline}; create it with "
                 "--scale-full --update-baseline")
            return 1
        check_scalability_full(section,
                               baseline.get("scalability_users_full", {}),
                               args.tolerance, args.wall_budget)
        print(f"\nperf gate (scale-full): {len(HARD_FAILURES)} failure(s), "
              f"{len(WARNINGS)} warning(s)")
        return 1 if HARD_FAILURES else 0

    results = {
        "meta": {"cores": cores, "mode": "smoke"},
        "scalability_users": collect_scalability(args.build_dir),
        "framerate": collect_framerate(args.build_dir),
        "compression": collect_compression(args.build_dir),
        "prefetch": collect_prefetch(args.build_dir),
        "scenarios": collect_scenarios(args.build_dir),
    }

    target = args.baseline if args.update_baseline else args.out
    if args.update_baseline:
        # Preserve sections the smoke run does not produce (scale-full).
        try:
            with open(target) as f:
                prior = json.load(f)
        except FileNotFoundError:
            prior = {}
        for key in ("scalability_users_full",):
            if key in prior:
                results[key] = prior[key]
    with open(target, "w") as f:
        json.dump(results, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote {target}")
    if args.update_baseline:
        return 0

    try:
        with open(args.baseline) as f:
            baseline = json.load(f)
    except FileNotFoundError:
        fail(f"missing {args.baseline}; create it with --update-baseline")
        return 1

    check_scalability(results["scalability_users"],
                      baseline.get("scalability_users", {}), args.tolerance)
    check_framerate(results["framerate"], baseline.get("framerate", {}),
                    args.tolerance, args.strict)
    check_speedup(results["framerate"], args.min_speedup, cores)
    check_compression(results["compression"], baseline.get("compression", {}),
                      args.tolerance, args.strict, args.min_decode_speedup)
    check_prefetch(results["prefetch"], baseline.get("prefetch", {}),
                   args.tolerance)
    check_scenarios(results["scenarios"], baseline.get("scenarios", {}),
                    args.tolerance)

    print(f"\nperf gate: {len(HARD_FAILURES)} failure(s), {len(WARNINGS)} warning(s)")
    return 1 if HARD_FAILURES else 0


if __name__ == "__main__":
    sys.exit(main())
