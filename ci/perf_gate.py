#!/usr/bin/env python3
"""CI perf-regression gate.

Runs the two perf benches in their smoke configurations, writes the results
to BENCH_pr.json, and compares them against the committed BENCH_baseline.json:

  bench_scalability_users --smoke --json
      Virtual-time metrics from the deterministic simulator (mean/p99 access
      latency per user count, hit rates, failure counts). These are exactly
      reproducible on any machine, so any regression past the tolerance is a
      HARD failure.

  bench_framerate --benchmark_format=json
      Wall-clock render throughput (google-benchmark). Absolute fps depends
      on the runner, so cross-run comparisons only WARN unless --strict.
      The pooled/serial fps ratio on the same run is machine-relative,
      though: on a 4+-core host the BM_NovelViewSynthesisPooled counters
      must show >= --min-speedup over BM_NovelViewSynthesis (hard failure).

Exit status is non-zero on any hard failure. A PR that intentionally changes
performance updates the baseline in the same commit:

  python3 ci/perf_gate.py --build-dir build --update-baseline

or carries the `perf-override` label, which skips the gate job entirely.
"""

import argparse
import json
import os
import subprocess
import sys

HARD_FAILURES = []
WARNINGS = []


def fail(msg):
    HARD_FAILURES.append(msg)
    print(f"FAIL: {msg}")


def warn(msg):
    WARNINGS.append(msg)
    print(f"warn: {msg}")


def run_json(cmd):
    print(f"+ {' '.join(cmd)}", flush=True)
    out = subprocess.run(cmd, check=True, capture_output=True, text=True).stdout
    # google-benchmark may prefix context lines before the JSON object.
    return json.loads(out[out.index("{"):])


def collect_scalability(build_dir):
    return run_json([os.path.join(build_dir, "bench", "bench_scalability_users"),
                     "--smoke", "--json"])


def collect_framerate(build_dir):
    raw = run_json([os.path.join(build_dir, "bench", "bench_framerate"),
                    "--benchmark_format=json"])
    rows = []
    for bench in raw.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        if "fps" in bench:
            rows.append({"name": bench["name"], "fps": bench["fps"]})
    return {"benchmarks": rows}


def check_scalability(pr, base, tolerance):
    base_rows = {row["users"]: row for row in base.get("results", [])}
    for row in pr.get("results", []):
        users = row["users"]
        tag = f"scalability_users[{users} users]"
        if row.get("failed", 0) > 0:
            fail(f"{tag}: {row['failed']} failed accesses")
        if users not in base_rows:
            warn(f"{tag}: no baseline row; add one with --update-baseline")
            continue
        ref = base_rows[users]
        for key in ("mean_total_s", "p99_worst_s"):
            got, want = row[key], ref[key]
            limit = want * (1.0 + tolerance)
            if got > limit:
                fail(f"{tag}: {key} {got:.4f}s exceeds baseline {want:.4f}s "
                     f"by more than {tolerance:.0%} (virtual time: deterministic)")
            else:
                print(f"ok:   {tag}: {key} {got:.4f}s (baseline {want:.4f}s)")


def fps_by_name(section):
    return {row["name"]: row["fps"] for row in section.get("benchmarks", [])}


def check_framerate(pr, base, tolerance, strict):
    report = fail if strict else warn
    pr_fps, base_fps = fps_by_name(pr), fps_by_name(base)
    for name, got in sorted(pr_fps.items()):
        if name not in base_fps:
            continue
        want = base_fps[name]
        if got < want * (1.0 - tolerance):
            report(f"framerate[{name}]: {got:.1f} fps vs baseline {want:.1f} fps "
                   f"(wall clock; runner-dependent)")
        else:
            print(f"ok:   framerate[{name}]: {got:.1f} fps (baseline {want:.1f})")


def check_speedup(pr, min_speedup, cores):
    """Pooled vs serial synthesis fps from the same run (machine-relative)."""
    fps = fps_by_name(pr)
    ratios = {}
    for name, value in fps.items():
        if name.startswith("BM_NovelViewSynthesisPooled/"):
            arg = name.rsplit("/", 1)[1]
            serial = fps.get(f"BM_NovelViewSynthesis/{arg}")
            if serial:
                ratios[arg] = value / serial
    if not ratios:
        fail("speedup: pooled/serial synthesis benchmark pair not found")
        return
    best = max(ratios.values())
    detail = ", ".join(f"{k}px: {v:.2f}x" for k, v in sorted(ratios.items()))
    if cores < 4:
        print(f"skip: speedup check needs >= 4 cores, host has {cores} ({detail})")
    elif best < min_speedup:
        fail(f"speedup: best pooled/serial ratio {best:.2f}x < {min_speedup}x ({detail})")
    else:
        print(f"ok:   speedup {best:.2f}x ({detail})")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build")
    parser.add_argument("--baseline", default="BENCH_baseline.json")
    parser.add_argument("--out", default="BENCH_pr.json")
    parser.add_argument("--tolerance", type=float, default=0.15,
                        help="allowed relative regression (default 15%%)")
    parser.add_argument("--min-speedup", type=float, default=1.5)
    parser.add_argument("--strict", action="store_true",
                        help="wall-clock fps regressions fail instead of warning")
    parser.add_argument("--update-baseline", action="store_true",
                        help="write the measurements to --baseline and exit")
    args = parser.parse_args()

    cores = os.cpu_count() or 1
    results = {
        "meta": {"cores": cores, "mode": "smoke"},
        "scalability_users": collect_scalability(args.build_dir),
        "framerate": collect_framerate(args.build_dir),
    }

    target = args.baseline if args.update_baseline else args.out
    with open(target, "w") as f:
        json.dump(results, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote {target}")
    if args.update_baseline:
        return 0

    try:
        with open(args.baseline) as f:
            baseline = json.load(f)
    except FileNotFoundError:
        fail(f"missing {args.baseline}; create it with --update-baseline")
        return 1

    check_scalability(results["scalability_users"],
                      baseline.get("scalability_users", {}), args.tolerance)
    check_framerate(results["framerate"], baseline.get("framerate", {}),
                    args.tolerance, args.strict)
    check_speedup(results["framerate"], args.min_speedup, cores)

    print(f"\nperf gate: {len(HARD_FAILURES)} failure(s), {len(WARNINGS)} warning(s)")
    return 1 if HARD_FAILURES else 0


if __name__ == "__main__":
    sys.exit(main())
