// Unit and property tests for the lfz codec: bit I/O, Huffman, LZ77,
// container round-trips, corruption detection and image predictor filters.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <string>

#include "compress/bitio.hpp"
#include "compress/filters.hpp"
#include "compress/huffman.hpp"
#include "compress/lfz.hpp"
#include "compress/lz77.hpp"
#include "util/buffer_pool.hpp"
#include "util/rng.hpp"

namespace lon::lfz {
namespace {

// --- bit I/O --------------------------------------------------------------------

TEST(BitIo, RoundTripMixedWidths) {
  BitWriter w;
  w.put(0b1, 1);
  w.put(0b1010, 4);
  w.put(0xdead, 16);
  w.put(0x7fffffff, 31);
  const Bytes data = w.take();

  BitReader r(data);
  EXPECT_EQ(r.get(1), 0b1u);
  EXPECT_EQ(r.get(4), 0b1010u);
  EXPECT_EQ(r.get(16), 0xdeadu);
  EXPECT_EQ(r.get(31), 0x7fffffffu);
}

TEST(BitIo, AlignSkipsToByteBoundary) {
  BitWriter w;
  w.put(0b101, 3);
  w.align();
  w.put(0xff, 8);
  const Bytes data = w.take();
  ASSERT_EQ(data.size(), 2u);

  BitReader r(data);
  EXPECT_EQ(r.get(3), 0b101u);
  r.align();
  EXPECT_EQ(r.get(8), 0xffu);
}

TEST(BitIo, TruncatedStreamThrows) {
  BitWriter w;
  w.put(0x3, 2);
  const Bytes data = w.take();
  BitReader r(data);
  r.get(8);
  EXPECT_THROW(r.get(8), DecodeError);
}

TEST(BitIo, HuffCodeMsbFirstOrder) {
  BitWriter w;
  w.put_code(0b110, 3);  // written as bits 1,1,0
  const Bytes data = w.take();
  BitReader r(data);
  EXPECT_EQ(r.bit(), 1u);
  EXPECT_EQ(r.bit(), 1u);
  EXPECT_EQ(r.bit(), 0u);
}

// --- huffman --------------------------------------------------------------------

TEST(Huffman, CodeLengthsFollowFrequencies) {
  // Symbol 0 dominates: it must get the (a) shortest code.
  const std::uint64_t freqs[] = {1000, 10, 10, 10, 1};
  const auto lengths = build_code_lengths(freqs);
  EXPECT_LE(lengths[0], lengths[1]);
  EXPECT_LE(lengths[1], lengths[4]);
  for (const auto l : lengths) EXPECT_LE(l, kMaxCodeLength);
}

TEST(Huffman, UnusedSymbolsGetZeroLength) {
  const std::uint64_t freqs[] = {5, 0, 3, 0};
  const auto lengths = build_code_lengths(freqs);
  EXPECT_GT(lengths[0], 0);
  EXPECT_EQ(lengths[1], 0);
  EXPECT_GT(lengths[2], 0);
  EXPECT_EQ(lengths[3], 0);
}

TEST(Huffman, SingleSymbolGetsLengthOne) {
  const std::uint64_t freqs[] = {0, 7, 0};
  const auto lengths = build_code_lengths(freqs);
  EXPECT_EQ(lengths[1], 1);
}

TEST(Huffman, KraftInequalityHolds) {
  Rng rng(11);
  std::vector<std::uint64_t> freqs(200);
  for (auto& f : freqs) f = rng.below(10'000);
  const auto lengths = build_code_lengths(freqs);
  double kraft = 0.0;
  for (const auto l : lengths) {
    if (l > 0) kraft += std::pow(2.0, -static_cast<double>(l));
  }
  EXPECT_LE(kraft, 1.0 + 1e-12);
}

TEST(Huffman, LengthLimitingKicksInOnSkewedDistributions) {
  // Fibonacci-like frequencies force very deep optimal trees.
  std::vector<std::uint64_t> freqs(40);
  std::uint64_t a = 1, b = 1;
  for (auto& f : freqs) {
    f = a;
    const std::uint64_t next = a + b;
    a = b;
    b = next;
  }
  const auto lengths = build_code_lengths(freqs);
  for (const auto l : lengths) {
    EXPECT_GT(l, 0);
    EXPECT_LE(l, kMaxCodeLength);
  }
}

TEST(Huffman, EncodeDecodeRoundTrip) {
  Rng rng(17);
  std::vector<std::uint64_t> freqs(64);
  for (auto& f : freqs) f = 1 + rng.below(500);
  const auto lengths = build_code_lengths(freqs);
  const HuffmanEncoder enc(lengths);
  const HuffmanDecoder dec(lengths);

  std::vector<std::uint32_t> symbols;
  for (int i = 0; i < 5000; ++i) symbols.push_back(static_cast<std::uint32_t>(rng.below(64)));

  BitWriter w;
  for (const auto s : symbols) enc.encode(w, s);
  const Bytes data = w.take();
  BitReader r(data);
  for (const auto s : symbols) EXPECT_EQ(dec.decode(r), s);
}

// --- lz77 -----------------------------------------------------------------------

Bytes expand_via_tokens(const Bytes& input, const Lz77Options& opts = {}) {
  const auto tokens = lz77_tokenize(input, opts);
  return lz77_expand(tokens, input.size());
}

TEST(Lz77, RoundTripText) {
  const std::string text =
      "the quick brown fox jumps over the lazy dog; "
      "the quick brown fox jumps over the lazy dog again and again and again";
  const Bytes input(text.begin(), text.end());
  EXPECT_EQ(expand_via_tokens(input), input);
  // Repetitive text must actually produce matches.
  const auto tokens = lz77_tokenize(input);
  EXPECT_LT(tokens.size(), input.size());
}

TEST(Lz77, RoundTripEmptyAndTiny) {
  EXPECT_TRUE(expand_via_tokens({}).empty());
  EXPECT_EQ(expand_via_tokens({42}), (Bytes{42}));
  EXPECT_EQ(expand_via_tokens({1, 2}), (Bytes{1, 2}));
}

TEST(Lz77, HighlyRepetitiveInputCompressesToFewTokens) {
  const Bytes input(100'000, 0xaa);
  const auto tokens = lz77_tokenize(input);
  EXPECT_LT(tokens.size(), 500u);  // ~100k/258 matches plus the seed literal
  EXPECT_EQ(lz77_expand(tokens, input.size()), input);
}

TEST(Lz77, OverlappingMatchesExpandCorrectly) {
  // "abcabcabc..." exercises distance < length copies.
  Bytes input;
  for (int i = 0; i < 1000; ++i) input.push_back(static_cast<std::uint8_t>('a' + i % 3));
  EXPECT_EQ(expand_via_tokens(input), input);
}

TEST(Lz77, RandomDataRoundTrips) {
  Rng rng(23);
  Bytes input(50'000);
  for (auto& b : input) b = static_cast<std::uint8_t>(rng.below(256));
  EXPECT_EQ(expand_via_tokens(input), input);
}

TEST(Lz77, LazyOffAlsoRoundTrips) {
  Rng rng(29);
  Bytes input(20'000);
  for (auto& b : input) b = static_cast<std::uint8_t>(rng.below(8));  // matchy data
  Lz77Options opts;
  opts.lazy = false;
  EXPECT_EQ(expand_via_tokens(input, opts), input);
}

TEST(Lz77, ExpandRejectsBadReferences) {
  std::vector<Token> tokens = {Token::make_literal('x'),
                               Token::make_match(5, 10)};  // distance 10 > output size 1
  EXPECT_THROW(lz77_expand(tokens), DecodeError);
  tokens = {Token::make_literal('x'), Token::make_match(300, 1)};  // length > 258
  EXPECT_THROW(lz77_expand(tokens), DecodeError);
}

// --- lfz container ----------------------------------------------------------------

class LfzRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LfzRoundTrip, RandomBytes) {
  Rng rng(GetParam() + 1);
  Bytes input(GetParam());
  for (auto& b : input) b = static_cast<std::uint8_t>(rng.below(256));
  const Bytes packed = compress(input);
  EXPECT_EQ(decompress(packed), input);
  EXPECT_EQ(decompressed_size(packed), input.size());
}

TEST_P(LfzRoundTrip, CompressibleBytes) {
  Rng rng(GetParam() + 99);
  Bytes input(GetParam());
  std::uint8_t value = 0;
  for (auto& b : input) {
    if (rng.below(16) == 0) value = static_cast<std::uint8_t>(rng.below(256));
    b = value;  // long runs
  }
  const Bytes packed = compress(input);
  EXPECT_EQ(decompress(packed), input);
  if (input.size() > 4096) {
    EXPECT_LT(packed.size(), input.size() / 2);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, LfzRoundTrip,
                         ::testing::Values(0, 1, 2, 3, 255, 4096, 65'537, 1'000'000));

TEST(Lfz, EmptyInput) {
  const Bytes packed = compress({});
  EXPECT_TRUE(decompress(packed).empty());
}

TEST(Lfz, IncompressibleFallsBackToStored) {
  Rng rng(3);
  Bytes input(10'000);
  for (auto& b : input) b = static_cast<std::uint8_t>(rng.below(256));
  const Bytes packed = compress(input);
  // Stored overhead is just the header.
  EXPECT_LE(packed.size(), input.size() + 32);
  EXPECT_EQ(decompress(packed), input);
}

TEST(Lfz, SmoothDataReachesPaperRatios) {
  // A smooth 2-D field similar in character to a ray-cast sample view:
  // the paper reports 5-7x with zlib on such content.
  const std::size_t w = 256, h = 256;
  Bytes image(w * h * 3);
  for (std::size_t y = 0; y < h; ++y) {
    for (std::size_t x = 0; x < w; ++x) {
      const double v =
          0.5 + 0.5 * std::sin(static_cast<double>(x) * 0.05) *
                    std::cos(static_cast<double>(y) * 0.04);
      const auto byte = static_cast<std::uint8_t>(v * 255.0);
      image[(y * w + x) * 3 + 0] = byte;
      image[(y * w + x) * 3 + 1] = byte / 2;
      image[(y * w + x) * 3 + 2] = static_cast<std::uint8_t>(255 - byte);
    }
  }
  const Bytes filtered = filter_image(image, w, h, 3);
  const Bytes packed = compress(filtered);
  EXPECT_GT(static_cast<double>(image.size()) / static_cast<double>(packed.size()), 5.0);
  EXPECT_EQ(unfilter_image(decompress(packed), w, h, 3), image);
}

TEST(Lfz, DetectsCorruptMagic) {
  Bytes packed = compress(Bytes{1, 2, 3, 4, 5});
  packed[0] = 'X';
  EXPECT_THROW(decompress(packed), DecodeError);
}

TEST(Lfz, DetectsBodyCorruption) {
  Bytes base(20'000);
  for (std::size_t i = 0; i < base.size(); ++i) {
    base[i] = static_cast<std::uint8_t>(i % 64);
  }
  const Bytes packed = compress(base);
  int detected = 0;
  // Flip a byte at several positions; every corruption must be caught.
  for (std::size_t pos = 20; pos < packed.size(); pos += packed.size() / 7 + 1) {
    Bytes evil = packed;
    evil[pos] ^= 0x55;
    try {
      const Bytes out = decompress(evil);
      if (out != base) ++detected;  // wrong data should have thrown, count anyway
    } catch (const DecodeError&) {
      ++detected;
    }
  }
  EXPECT_GE(detected, 1);
}

TEST(Lfz, DetectsTruncation) {
  const Bytes packed = compress(Bytes(5000, 7));
  const Bytes cut(packed.begin(), packed.begin() + static_cast<long>(packed.size() / 2));
  EXPECT_THROW(decompress(cut), DecodeError);
}

// --- filters --------------------------------------------------------------------

TEST(Filters, PaethMatchesPngSpec) {
  // From the PNG spec: choose the neighbour closest to p = left + up - upleft.
  EXPECT_EQ(paeth_predict(10, 20, 30), 10);   // p = 0 -> closest is left
  EXPECT_EQ(paeth_predict(100, 100, 100), 100);
  EXPECT_EQ(paeth_predict(0, 50, 10), 0 + 40 == 40 ? 50 : 50);  // p = 40, up closest
}

TEST(Filters, RoundTripAllContentTypes) {
  Rng rng(41);
  for (const std::size_t w : {1u, 7u, 64u}) {
    for (const std::size_t h : {1u, 5u, 32u}) {
      Bytes image(w * h * 3);
      for (auto& b : image) b = static_cast<std::uint8_t>(rng.below(256));
      const Bytes filtered = filter_image(image, w, h, 3);
      EXPECT_EQ(filtered.size(), h * (w * 3 + 1));
      EXPECT_EQ(unfilter_image(filtered, w, h, 3), image);
    }
  }
}

TEST(Filters, SmoothGradientFiltersToNearZero) {
  const std::size_t w = 128, h = 1;
  Bytes image(w * 3);
  for (std::size_t x = 0; x < w; ++x) {
    image[x * 3] = image[x * 3 + 1] = image[x * 3 + 2] = static_cast<std::uint8_t>(x);
  }
  const Bytes filtered = filter_image(image, w, h, 3);
  // A ramp is perfectly predicted by Sub: almost all residuals are constant.
  int nonzero = 0;
  for (std::size_t i = 1; i < filtered.size(); ++i) nonzero += filtered[i] != 1 ? 1 : 0;
  EXPECT_LT(nonzero, 8);
}

TEST(Filters, SizeMismatchThrows) {
  EXPECT_THROW(filter_image(Bytes(10), 4, 4, 3), std::invalid_argument);
  EXPECT_THROW(unfilter_image(Bytes(10), 4, 4, 3), DecodeError);
}

TEST(Filters, BadFilterTypeThrows) {
  Bytes filtered(1 + 4 * 3, 0);
  filtered[0] = 9;  // invalid type
  EXPECT_THROW(unfilter_image(filtered, 4, 1, 3), DecodeError);
}

// --- fast decode path ----------------------------------------------------------------

TEST(BitIo, Put32BitValueRoundTrips) {
  BitWriter w;
  w.put(0xdeadbeefu, 32);  // the full-width case: (1 << 32) would be UB
  w.put(0xffffffffu, 32);
  const Bytes data = w.take();
  BitReader r(data);
  EXPECT_EQ(r.get(32), 0xdeadbeefu);
  EXPECT_EQ(r.get(32), 0xffffffffu);
}

TEST(BitIo, PeekZeroPadsPastEndButConsumeThrows) {
  BitWriter w;
  w.put(0b101, 3);
  const Bytes data = w.take();  // one byte
  BitReader r(data);
  EXPECT_EQ(r.peek(15) & 0x7u, 0b101u);  // peek beyond the stream zero-pads
  r.consume(8);                          // the byte that exists
  EXPECT_EQ(r.peek(10), 0u);
  EXPECT_THROW(r.consume(1), DecodeError);  // but consuming padding is truncation
}

TEST(BitIo, BulkRefillMatchesByteAtATime) {
  // Cross the 8-byte fast-refill path at several stream alignments and check
  // every extracted octet against a scalar bit extractor.
  Bytes data(67);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 37 + 11);
  }
  const auto bit_at = [&](std::size_t j) {
    return static_cast<std::uint32_t>(data[j >> 3] >> (j & 7)) & 1u;
  };
  for (const int lead : {1, 3, 7, 11}) {
    BitReader r(data);
    (void)r.get(lead);
    std::size_t pos = static_cast<std::size_t>(lead);
    const std::size_t total = data.size() * 8;
    while (total - pos >= 8) {
      std::uint32_t want = 0;
      for (int b = 0; b < 8; ++b) want |= bit_at(pos + static_cast<std::size_t>(b)) << b;
      ASSERT_EQ(r.get(8), want) << "lead " << lead << " pos " << pos;
      pos += 8;
    }
  }
}

TEST(Huffman, TableDecodeMatchesBitwiseOnRandomCodeSets) {
  Rng rng(404);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t alphabet = 2 + rng.below(285);
    std::vector<std::uint64_t> freqs(alphabet);
    for (auto& f : freqs) {
      // Skewed frequencies (and some zeros) exercise long codes + subtables.
      f = rng.below(4) == 0 ? 0 : (1ull << rng.below(16));
    }
    freqs[rng.below(alphabet)] = 1;  // guarantee at least one used symbol
    const auto lengths = build_code_lengths(freqs);
    const HuffmanEncoder encoder(lengths);
    const HuffmanDecoder decoder(lengths);

    std::vector<std::uint32_t> symbols;
    BitWriter w;
    for (int i = 0; i < 2000; ++i) {
      const auto s = static_cast<std::uint32_t>(rng.below(alphabet));
      if (lengths[s] == 0) continue;
      symbols.push_back(s);
      encoder.encode(w, s);
    }
    const Bytes encoded = w.take();
    BitReader table_reader(encoded);
    BitReader bitwise_reader(encoded);
    for (const auto want : symbols) {
      EXPECT_EQ(decoder.decode(table_reader), want);
      EXPECT_EQ(decoder.decode_bitwise(bitwise_reader), want);
    }
    EXPECT_EQ(table_reader.bytes_consumed(), bitwise_reader.bytes_consumed());
  }
}

TEST(Huffman, SingleSymbolAlphabetRoundTrips) {
  // Degenerate but legal: one used symbol gets a 1-bit code and both
  // decoders must resolve it (the table fill must cover the whole root).
  std::vector<std::uint64_t> freqs(30, 0);
  freqs[17] = 123;
  const auto lengths = build_code_lengths(freqs);
  ASSERT_EQ(lengths[17], 1);
  const HuffmanEncoder encoder(lengths);
  const HuffmanDecoder decoder(lengths);
  BitWriter w;
  for (int i = 0; i < 64; ++i) encoder.encode(w, 17);
  const Bytes encoded = w.take();
  BitReader r(encoded);
  BitReader rb(encoded);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(decoder.decode(r), 17u);
    EXPECT_EQ(decoder.decode_bitwise(rb), 17u);
  }
}

TEST(Huffman, FullDeflateAlphabetAllNonzeroRespectsMaxLength) {
  // All 286 literal/length symbols in use with wildly skewed counts: the
  // halving fallback must land every code within kMaxCodeLength, and the
  // canonical set must stay decodable (not over-subscribed).
  std::vector<std::uint64_t> freqs(286);
  std::uint64_t fib_a = 1, fib_b = 1;
  for (auto& f : freqs) {
    f = fib_a;
    const std::uint64_t next = fib_a + fib_b;
    fib_a = fib_b;
    fib_b = next;
    if (fib_b > (1ull << 40)) fib_a = fib_b = 1;  // keep counts finite, re-skew
  }
  const auto lengths = build_code_lengths(freqs);
  for (const auto l : lengths) {
    ASSERT_GT(l, 0);
    ASSERT_LE(l, kMaxCodeLength);
  }
  double kraft = 0.0;
  for (const auto l : lengths) kraft += std::ldexp(1.0, -l);
  EXPECT_LE(kraft, 1.0 + 1e-9);

  const HuffmanEncoder encoder(lengths);
  const HuffmanDecoder decoder(lengths);
  BitWriter w;
  for (std::uint32_t s = 0; s < 286; ++s) encoder.encode(w, s);
  const Bytes encoded = w.take();
  BitReader r(encoded);
  for (std::uint32_t s = 0; s < 286; ++s) EXPECT_EQ(decoder.decode(r), s);
}

TEST(Huffman, OverSubscribedLengthsRejected) {
  // Three 1-bit codes cannot coexist; a corrupt container could smuggle such
  // a length array in, which must fail table construction, not overflow it.
  const std::vector<std::uint8_t> three_ones{1, 1, 1};
  EXPECT_THROW(HuffmanDecoder{three_ones}, DecodeError);
  std::vector<std::uint8_t> deep(65, 6);  // 65 codes of length 6 > 2^6 = 64
  EXPECT_THROW(HuffmanDecoder{deep}, DecodeError);
}

// --- codec hardening -----------------------------------------------------------------

namespace {

/// Compressible-but-structured payload for the corruption sweeps.
Bytes hardening_payload(std::size_t size) {
  Bytes data(size);
  for (std::size_t i = 0; i < size; ++i) {
    data[i] = static_cast<std::uint8_t>((i * 7) % 251 < 100 ? 42 : (i / 13) % 256);
  }
  return data;
}

/// A corrupted container must throw DecodeError — or, for flips the checksum
/// provably cannot distinguish, still produce the original bytes. Anything
/// else (crash, garbage output, std::bad_alloc from a forged size field)
/// fails the test.
void expect_rejected_or_intact(const Bytes& corrupted, const Bytes& original) {
  try {
    const Bytes out = is_chunked(corrupted) ? decompress_chunked(corrupted)
                                            : decompress(corrupted);
    EXPECT_EQ(out, original);
  } catch (const DecodeError&) {
    // expected
  }
}

}  // namespace

TEST(LfzHardening, TruncationsNeverCrash) {
  const Bytes input = hardening_payload(20000);
  for (const Bytes& container :
       {compress(input), compress_chunked(input, 4096), compress_lfz2(input, 4096)}) {
    for (std::size_t keep = 0; keep < container.size();
         keep += std::max<std::size_t>(1, container.size() / 97)) {
      const Bytes cut(container.begin(),
                      container.begin() + static_cast<std::ptrdiff_t>(keep));
      expect_rejected_or_intact(cut, input);
    }
  }
}

TEST(LfzHardening, BitFlipsNeverCrash) {
  const Bytes input = hardening_payload(20000);
  for (const Bytes& container :
       {compress(input), compress_chunked(input, 4096), compress_lfz2(input, 4096)}) {
    for (std::size_t pos = 0; pos < container.size();
         pos += std::max<std::size_t>(1, container.size() / 211)) {
      for (const int bit : {0, 3, 7}) {
        Bytes flipped = container;
        flipped[pos] = static_cast<std::uint8_t>(flipped[pos] ^ (1u << bit));
        expect_rejected_or_intact(flipped, input);
      }
    }
  }
}

TEST(LfzHardening, ForgedLengthFieldsThrowInsteadOfAllocating) {
  const Bytes input = hardening_payload(4096);

  // LFZ1: the u64 original-size field at offset 4 claims 2^60 bytes.
  Bytes huge = compress(input);
  for (int i = 0; i < 8; ++i) huge[4 + i] = i == 7 ? 0x10 : 0x00;
  EXPECT_THROW((void)decompress(huge), DecodeError);

  for (Bytes container : {compress_chunked(input, 1024), compress_lfz2(input, 1024)}) {
    // Chunked: forge the u32 chunk count at offset 12 to ~4 billion.
    Bytes many = container;
    many[12] = many[13] = many[14] = many[15] = 0xff;
    EXPECT_THROW((void)decompress_chunked(many), DecodeError);

    // And the u64 claimed original size at offset 4.
    Bytes big = container;
    for (int i = 0; i < 8; ++i) big[4 + i] = 0xff;
    EXPECT_THROW((void)decompress_chunked(big), DecodeError);
  }
}

TEST(LfzHardening, WireLabelNeverThrows) {
  const Bytes input = hardening_payload(4096);
  EXPECT_STREQ(wire_label(compress(input)), "lfz1");
  CompressOptions stored;
  stored.store_only = true;
  EXPECT_STREQ(wire_label(compress(input, stored)), "stored");
  EXPECT_STREQ(wire_label(compress_chunked(input, 1024)), "lfzc");
  EXPECT_STREQ(wire_label(compress_lfz2(input, 1024)), "lfz2");
  EXPECT_STREQ(wire_label(Bytes{}), "unknown");
  EXPECT_STREQ(wire_label(Bytes{'L', 'F'}), "unknown");
  EXPECT_STREQ(wire_label(Bytes(3, 0xff)), "unknown");
}

TEST(LfzHardening, StoreOnlyRoundTrips) {
  const Bytes input = hardening_payload(10000);
  CompressOptions opt;
  opt.store_only = true;
  const Bytes packed = compress(input, opt);
  EXPECT_EQ(packed.size(), input.size() + 17);  // header only, no coding
  EXPECT_EQ(decompress(packed), input);
}

TEST(LfzHardening, Lfz2ContainerRoundTripsArbitraryBytes) {
  // compress_lfz2 is byte-transparent: the inter-view prediction lives in
  // the serialization layer above, so any payload must survive.
  Rng rng(8181);
  for (const std::size_t size : {0ul, 1ul, 4095ul, 70000ul}) {
    Bytes data(size);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.below(256));
    const Bytes packed = compress_lfz2(data, 16 * 1024);
    EXPECT_TRUE(is_lfz2(packed));
    EXPECT_TRUE(is_chunked(packed));
    EXPECT_EQ(decompress_chunked(packed), data);
  }
}

TEST(LfzHardening, PooledChunkedRoundTripsMatchSerial) {
  // TSan target: the same chunks compressed/decompressed across a pool must
  // produce byte-identical containers and outputs.
  const Bytes input = hardening_payload(150000);
  ThreadPool pool(3);
  const Bytes serial_c = compress_chunked(input, 16 * 1024);
  const Bytes pooled_c = compress_chunked(input, 16 * 1024, {}, &pool);
  EXPECT_EQ(serial_c, pooled_c);
  const Bytes serial_2 = compress_lfz2(input, 16 * 1024);
  const Bytes pooled_2 = compress_lfz2(input, 16 * 1024, {}, &pool);
  EXPECT_EQ(serial_2, pooled_2);
  EXPECT_EQ(decompress_chunked(pooled_c, &pool), input);
  EXPECT_EQ(decompress_chunked(pooled_2, &pool), input);
}

// --- golden containers ---------------------------------------------------------------

// Captured from the encoder before the table-driven decode path landed; the
// decoder must keep accepting historical LFZ1/LFZC containers bit-for-bit.
#include "golden_lfz_blobs.inc"

TEST(LfzGolden, SeedEncoderContainersStillDecode) {
  const Bytes want = hardening_payload(6000);
  const Bytes lfz1(kGoldenLfz1, kGoldenLfz1 + sizeof(kGoldenLfz1));
  EXPECT_STREQ(wire_label(lfz1), "lfz1");
  EXPECT_EQ(decompress(lfz1), want);

  const Bytes lfzc(kGoldenLfzc, kGoldenLfzc + sizeof(kGoldenLfzc));
  EXPECT_STREQ(wire_label(lfzc), "lfzc");
  EXPECT_EQ(decompress_chunked(lfzc), want);
}

// --- fast vs scalar kernel equivalence --------------------------------------
//
// The vectorized row kernels must be bit-exact against the per-byte scalar
// reference for every filter type, any bpp, and any row length — including
// rows shorter than one pixel. Property-tested over random content.

constexpr FilterType kAllFilters[] = {FilterType::kNone, FilterType::kSub,
                                      FilterType::kUp, FilterType::kAverage,
                                      FilterType::kPaeth};

TEST(FilterKernels, FilterRowFastMatchesScalarOnRandomRows) {
  Rng rng(2026);
  const std::size_t lengths[] = {0, 1, 2, 3, 4, 5, 7, 8, 15, 16, 17, 31, 64, 255, 1024};
  for (const std::size_t bpp : {1u, 2u, 3u, 4u}) {
    for (const std::size_t n : lengths) {
      Bytes row(n), prev(n);
      for (auto& b : row) b = static_cast<std::uint8_t>(rng.below(256));
      for (auto& b : prev) b = static_cast<std::uint8_t>(rng.below(256));
      for (const FilterType type : kAllFilters) {
        for (const bool first_row : {true, false}) {
          const std::span<const std::uint8_t> above =
              first_row ? std::span<const std::uint8_t>{} : std::span<const std::uint8_t>(prev);
          Bytes fast(n, 0xCC), scalar(n, 0x33);
          filter_row(type, row, above, bpp, fast);
          filter_row_scalar(type, row, above, bpp, scalar);
          ASSERT_EQ(fast, scalar)
              << "filter type=" << static_cast<int>(type) << " bpp=" << bpp
              << " n=" << n << " first_row=" << first_row;
        }
      }
    }
  }
}

TEST(FilterKernels, UnfilterRowFastMatchesScalarOnRandomRows) {
  Rng rng(4052);
  const std::size_t lengths[] = {0, 1, 2, 3, 4, 5, 7, 8, 15, 16, 17, 31, 64, 255, 1024};
  for (const std::size_t bpp : {1u, 2u, 3u, 4u}) {
    for (const std::size_t n : lengths) {
      Bytes src(n), prev(n);
      for (auto& b : src) b = static_cast<std::uint8_t>(rng.below(256));
      for (auto& b : prev) b = static_cast<std::uint8_t>(rng.below(256));
      for (const FilterType type : kAllFilters) {
        for (const bool first_row : {true, false}) {
          const std::uint8_t* above = first_row ? nullptr : prev.data();
          Bytes fast(n, 0xCC), scalar(n, 0x33);
          unfilter_row(type, src, fast.data(), above, bpp);
          unfilter_row_scalar(type, src, scalar.data(), above, bpp);
          ASSERT_EQ(fast, scalar)
              << "filter type=" << static_cast<int>(type) << " bpp=" << bpp
              << " n=" << n << " first_row=" << first_row;
        }
      }
    }
  }
}

TEST(FilterKernels, UnfilterImageFastMatchesScalarAndRoundTrips) {
  Rng rng(77);
  for (const auto [width, height, bpp] :
       {std::tuple<std::size_t, std::size_t, std::size_t>{64, 48, 3},
        {1, 1, 4}, {17, 5, 1}, {2, 300, 2}}) {
    Bytes image(width * height * bpp);
    // Mix of smooth gradient and noise so every filter type gets picked
    // somewhere in the image.
    for (std::size_t i = 0; i < image.size(); ++i) {
      image[i] = static_cast<std::uint8_t>((i % 251) + rng.below(9));
    }
    const Bytes filtered = filter_image(image, width, height, bpp);
    const Bytes fast = unfilter_image(filtered, width, height, bpp);
    const Bytes scalar = unfilter_image_scalar(filtered, width, height, bpp);
    EXPECT_EQ(fast, scalar);
    EXPECT_EQ(fast, image);
  }
}

TEST(FilterKernels, RowShorterThanOnePixelStillMatches) {
  // width*bpp < bpp can't happen per-image, but the row kernels are exposed
  // directly and must handle n < bpp (the head peel covers the whole row).
  const Bytes src{200, 17};
  const Bytes prev{9, 250};
  for (const FilterType type : kAllFilters) {
    Bytes fast(2, 0), scalar(2, 0);
    unfilter_row(type, src, fast.data(), prev.data(), 4);
    unfilter_row_scalar(type, src, scalar.data(), prev.data(), 4);
    EXPECT_EQ(fast, scalar) << "type=" << static_cast<int>(type);
  }
}

TEST(Lfz, DecompressIntoMatchesDecompressAndCountsNoCopiesForLz) {
  const Bytes data = hardening_payload(40000);
  const Bytes packed = compress(data);
  ASSERT_EQ(decompressed_size(packed), data.size());
  Bytes out(data.size(), 0xEE);
  const std::uint64_t before = util::payload_bytes_copied();
  decompress_into(packed, out);
  EXPECT_EQ(out, data);
  // LZ-coded bodies decode straight into the destination: zero meter traffic.
  EXPECT_EQ(util::payload_bytes_copied() - before, 0u);
}

TEST(Lfz, DecompressIntoStoredBodyChargesExactlyOnePass) {
  Rng rng(99);
  Bytes noise(5000);
  for (auto& b : noise) b = static_cast<std::uint8_t>(rng.below(256));
  const Bytes packed = compress(noise);  // incompressible -> stored method
  Bytes out(noise.size(), 0);
  const std::uint64_t before = util::payload_bytes_copied();
  decompress_into(packed, out);
  EXPECT_EQ(out, noise);
  EXPECT_EQ(util::payload_bytes_copied() - before, noise.size());
}

TEST(Lfz, DecompressIntoRejectsWrongSizedDestination) {
  const Bytes data = hardening_payload(3000);
  const Bytes packed = compress(data);
  Bytes small(data.size() - 1);
  EXPECT_THROW(decompress_into(packed, small), DecodeError);
  Bytes big(data.size() + 1);
  EXPECT_THROW(decompress_into(packed, big), DecodeError);
}

TEST(Lfz, WideMatchCopyExpandsOverlappingRunsExactly) {
  // Exercise the widened match-copy paths: distance 1 (memset), short
  // distances 2..7 (byte loop), and >=8 (8-byte strides), incl. overlap.
  Bytes data;
  for (int d = 1; d <= 40; ++d) {
    for (int i = 0; i < d; ++i) data.push_back(static_cast<std::uint8_t>(i * 13 + d));
    for (int rep = 0; rep < 90; ++rep)
      data.push_back(data[data.size() - static_cast<std::size_t>(d)]);
  }
  const Bytes packed = compress(data);
  EXPECT_EQ(decompress(packed), data);
  Bytes out(data.size());
  decompress_into(packed, out);
  EXPECT_EQ(out, data);
}

}  // namespace
}  // namespace lon::lfz
