// Client policy engine (ISSUE 5): cursor motion model, per-class latency
// estimator, eviction policies, the predictive prefetch scheduler, and the
// end-to-end guarantees the perf gate enforces — predictive beats the
// paper's quadrant policy on scripted walks, hybrid eviction shields the
// demand working set from prefetch pollution, and the prefetch budget holds
// under a saturated WAN.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "lightfield/procedural.hpp"
#include "policy/eviction.hpp"
#include "policy/latency.hpp"
#include "policy/motion.hpp"
#include "policy/prefetch.hpp"
#include "session/cursor.hpp"
#include "session/experiment.hpp"
#include "streaming/cache.hpp"
#include "streaming/client_agent.hpp"
#include "streaming/dvs.hpp"

namespace lon::policy {
namespace {

using lightfield::ViewSetId;

lightfield::LatticeConfig small_config(std::size_t resolution = 24) {
  lightfield::LatticeConfig cfg;
  cfg.angular_step_deg = 15.0;  // 12 x 24 lattice
  cfg.view_set_span = 3;        // 4 x 8 = 32 view sets
  cfg.view_resolution = resolution;
  return cfg;
}

// --- motion model ------------------------------------------------------------

TEST(Motion, WrapAngleFoldsIntoHalfOpenRange) {
  EXPECT_DOUBLE_EQ(wrap_angle(0.0), 0.0);
  EXPECT_NEAR(wrap_angle(kPi + 0.1), -kPi + 0.1, 1e-12);
  EXPECT_NEAR(wrap_angle(-kPi - 0.1), kPi - 0.1, 1e-12);
  EXPECT_NEAR(wrap_angle(2 * kPi + 0.3), 0.3, 1e-12);
}

TEST(Motion, ConstantPanYieldsItsVelocity) {
  CursorMotionModel motion;
  for (int i = 0; i < 4; ++i) {
    motion.observe({1.2, 0.5 + 0.1 * i}, static_cast<SimTime>(i) * 100 * kMillisecond);
  }
  ASSERT_TRUE(motion.has_estimate());
  EXPECT_NEAR(motion.phi_velocity(), 1.0, 1e-9);   // 0.1 rad / 100 ms
  EXPECT_NEAR(motion.theta_velocity(), 0.0, 1e-9);
  EXPECT_NEAR(motion.speed(), 1.0, 1e-9);
  const Spherical ahead = motion.predict(kSecond);
  EXPECT_NEAR(ahead.phi, 0.8 + 1.0, 1e-9);
  EXPECT_NEAR(ahead.theta, 1.2, 1e-9);
}

TEST(Motion, PhiVelocityIsWrapAwareAtTheSeam) {
  CursorMotionModel motion;
  motion.observe({1.2, 2 * kPi - 0.05}, 0);
  motion.observe({1.2, 0.05}, 100 * kMillisecond);  // crossed the 2pi seam
  ASSERT_TRUE(motion.has_estimate());
  // +0.1 rad across the seam, not -6.18 rad backwards.
  EXPECT_NEAR(motion.phi_velocity(), 1.0, 1e-9);
}

TEST(Motion, TeleportResetsTheEstimate) {
  CursorMotionModel motion;
  motion.observe({1.2, 0.5}, 0);
  motion.observe({1.2, 0.6}, 100 * kMillisecond);
  ASSERT_TRUE(motion.has_estimate());
  motion.observe({1.2, 0.6 + kPi}, 200 * kMillisecond);  // > teleport_rad jump
  EXPECT_FALSE(motion.has_estimate());
  // Two compatible samples after the jump re-arm the model.
  motion.observe({1.2, 0.6 + kPi + 0.1}, 300 * kMillisecond);
  EXPECT_TRUE(motion.has_estimate());
}

TEST(Motion, IdleGapResetsTheEstimate) {
  CursorMotionModel motion;
  motion.observe({1.2, 0.5}, 0);
  motion.observe({1.2, 0.6}, 100 * kMillisecond);
  ASSERT_TRUE(motion.has_estimate());
  motion.observe({1.2, 0.7}, 100 * kMillisecond + motion.config().max_gap + kSecond);
  EXPECT_FALSE(motion.has_estimate());
}

TEST(Motion, ReversalFlipsTheVelocitySign) {
  CursorMotionModel motion;
  SimTime t = 0;
  double phi = 1.0;
  for (int i = 0; i < 4; ++i) {
    motion.observe({1.2, phi += 0.1}, t += 100 * kMillisecond);
  }
  ASSERT_GT(motion.phi_velocity(), 0.0);
  for (int i = 0; i < 4; ++i) {
    motion.observe({1.2, phi -= 0.1}, t += 100 * kMillisecond);
  }
  EXPECT_LT(motion.phi_velocity(), 0.0);
}

TEST(Motion, PredictClampsThetaInsideThePoles) {
  CursorMotionModel motion;
  motion.observe({0.3, 1.0}, 0);
  motion.observe({0.1, 1.0}, 100 * kMillisecond);  // racing toward the pole
  ASSERT_TRUE(motion.has_estimate());
  const Spherical ahead = motion.predict(10 * kSecond);
  EXPECT_GT(ahead.theta, 0.0);
  EXPECT_LT(ahead.theta, kPi);
}

// --- latency estimator -------------------------------------------------------

TEST(Latency, PriorsServeBeforeAnySample) {
  FetchLatencyEstimator est;
  EXPECT_EQ(est.estimate(FetchClass::kLan), 20 * kMillisecond);
  EXPECT_EQ(est.estimate(FetchClass::kWan), 800 * kMillisecond);
  EXPECT_EQ(est.samples(FetchClass::kWan), 0u);
}

TEST(Latency, FirstSampleReplacesThePriorThenBlends) {
  FetchLatencyEstimator est;
  est.observe(FetchClass::kWan, 100 * kMillisecond);
  EXPECT_EQ(est.estimate(FetchClass::kWan), 100 * kMillisecond);
  est.observe(FetchClass::kWan, 200 * kMillisecond);
  // alpha = 0.3: 0.3 * 200 + 0.7 * 100 = 130 ms.
  EXPECT_EQ(est.estimate(FetchClass::kWan), 130 * kMillisecond);
  // The LAN class is untouched.
  EXPECT_EQ(est.estimate(FetchClass::kLan), 20 * kMillisecond);
}

// --- eviction policies -------------------------------------------------------

CacheEntryInfo entry(const ViewSetId& id, std::uint64_t last_use, bool prefetched,
                     bool demand_used, double distance) {
  return CacheEntryInfo{id, 100, last_use, prefetched, demand_used, distance};
}

TEST(Eviction, LruPicksTheLeastRecentlyUsed) {
  const auto policy = make_eviction_policy(EvictionStrategy::kLru);
  const std::vector<CacheEntryInfo> entries = {
      entry({0, 0}, 5, false, true, 0.1),
      entry({0, 1}, 2, false, true, 0.9),
      entry({0, 2}, 8, false, true, 0.5),
  };
  const auto pick = policy->pick_victim(entries, {{9, 9}, 100, true, 99.0});
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(entries[*pick].id, (ViewSetId{0, 1}));  // never rejects
}

TEST(Eviction, AngularEvictsFarthestAndRejectsColderPrefetch) {
  const auto policy = make_eviction_policy(EvictionStrategy::kAngular);
  const std::vector<CacheEntryInfo> entries = {
      entry({0, 0}, 5, false, true, 0.1),
      entry({0, 1}, 2, false, true, 0.9),
  };
  const auto pick = policy->pick_victim(entries, {{9, 9}, 100, false, 0.0});
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(entries[*pick].id, (ViewSetId{0, 1}));
  // A speculative insert farther out than everything resident is refused.
  EXPECT_FALSE(policy->pick_victim(entries, {{9, 9}, 100, true, 2.0}).has_value());
}

TEST(Eviction, HybridSacrificesPollutionFirst) {
  const auto policy = make_eviction_policy(EvictionStrategy::kHybrid);
  const std::vector<CacheEntryInfo> entries = {
      entry({0, 0}, 1, false, true, 2.0),   // old, far demand entry
      entry({0, 1}, 9, true, false, 0.4),   // fresh unused prefetch (polluter)
      entry({0, 2}, 5, false, true, 0.2),
  };
  const auto pick = policy->pick_victim(entries, {{9, 9}, 100, false, 0.0});
  ASSERT_TRUE(pick.has_value());
  // LRU would kill {0,0}; angular would kill {0,0} too. The polluter goes.
  EXPECT_EQ(entries[*pick].id, (ViewSetId{0, 1}));
}

TEST(Eviction, HybridProtectsAPureDemandWorkingSet) {
  const auto policy = make_eviction_policy(EvictionStrategy::kHybrid);
  const std::vector<CacheEntryInfo> entries = {
      entry({0, 0}, 1, false, true, 0.5),
      entry({0, 1}, 2, false, true, 0.3),
  };
  // Speculative insert vs all-demand residents: rejected outright.
  EXPECT_FALSE(policy->pick_victim(entries, {{9, 9}, 100, true, 0.1}).has_value());
  // Demand insert may still trim LRU-style.
  const auto pick = policy->pick_victim(entries, {{9, 9}, 100, false, 0.1});
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(entries[*pick].id, (ViewSetId{0, 0}));
}

TEST(Eviction, HybridKeepsTheHotterUnusedPrefetch) {
  const auto policy = make_eviction_policy(EvictionStrategy::kHybrid);
  const std::vector<CacheEntryInfo> entries = {
      entry({0, 0}, 5, false, true, 0.1),
      entry({0, 1}, 2, true, false, 0.2),  // unused prefetch just ahead
  };
  // Incoming prefetch is *farther* than the resident one: admission refused
  // rather than churning the more imminent target.
  EXPECT_FALSE(policy->pick_victim(entries, {{9, 9}, 100, true, 1.5}).has_value());
}

// --- cache + policy integration ---------------------------------------------

TEST(PolicyCache, HybridEvictsPolluterBeforeDemandEntries) {
  streaming::ViewSetCache cache(100);
  cache.configure(nullptr, make_eviction_policy(EvictionStrategy::kHybrid));
  ASSERT_TRUE(cache.put({0, 3}, Bytes(40), /*prefetched=*/true));
  ASSERT_TRUE(cache.put({0, 0}, Bytes(40), /*prefetched=*/false));
  // Touch the prefetched entry on the non-demand path: {0,0} is now LRU but
  // still the demand working set.
  EXPECT_NE(cache.get({0, 3}, nullptr, /*demand=*/false), nullptr);
  ASSERT_TRUE(cache.put({0, 1}, Bytes(40), /*prefetched=*/false));
  EXPECT_TRUE(cache.contains({0, 0}));    // demand entry survived
  EXPECT_FALSE(cache.contains({0, 3}));   // the polluter paid
  EXPECT_EQ(cache.pollution_evictions(), 1u);
}

TEST(PolicyCache, HybridRejectsPrefetchIntoDemandWorkingSet) {
  streaming::ViewSetCache cache(100);
  cache.configure(nullptr, make_eviction_policy(EvictionStrategy::kHybrid));
  ASSERT_TRUE(cache.put({0, 0}, Bytes(50)));
  ASSERT_TRUE(cache.put({0, 1}, Bytes(50)));
  EXPECT_NE(cache.get({0, 0}), nullptr);
  EXPECT_NE(cache.get({0, 1}), nullptr);
  EXPECT_FALSE(cache.put({0, 4}, Bytes(50), /*prefetched=*/true));
  EXPECT_EQ(cache.rejected_inserts(), 1u);
  EXPECT_TRUE(cache.contains({0, 0}));
  EXPECT_TRUE(cache.contains({0, 1}));
  EXPECT_EQ(cache.bytes_used(), 100u);   // rejected insert left no residue
  // A demand insert is never locked out.
  EXPECT_TRUE(cache.put({0, 2}, Bytes(50)));
}

// --- prefetch policies -------------------------------------------------------

struct PolicyHarness {
  lightfield::SphericalLattice lattice{small_config()};
  CursorMotionModel motion;
  PrefetchContext ctx;

  /// Two samples panning +phi inside view set {2,3} at ~2 rad/s. The second
  /// sample stays short of the set's +phi edge (the far half of the span).
  void pan_in_row2() {
    const Spherical c0 = lattice.view_set_center({2, 3});
    const double step = deg2rad(lattice.config().angular_step_deg);
    const Spherical c1{c0.theta, c0.phi + 0.75 * step};
    motion.observe(c0, kSecond);
    motion.observe(c1, kSecond + 100 * kMillisecond);
    ctx.lattice = &lattice;
    ctx.motion = &motion;
    ctx.cursor = c1;
    ctx.cursor_vs = lattice.view_set_of(c1);
    ctx.quadrant = lattice.quadrant_of(c1);
    ctx.now = kSecond + 100 * kMillisecond;
    ctx.horizon = 2 * kSecond;
    ctx.budget = 3;
    ctx.is_resident = [](const ViewSetId&) { return false; };
    ctx.fetch_estimate = [](const ViewSetId&) { return 100 * kMillisecond; };
  }
};

TEST(PrefetchPolicy, QuadrantMatchesThePaperTargets) {
  PolicyHarness h;
  h.pan_in_row2();
  const auto policy = make_prefetch_policy(PrefetchStrategy::kQuadrant);
  const auto expected = h.lattice.prefetch_targets(h.ctx.cursor_vs, h.ctx.quadrant);
  EXPECT_EQ(policy->targets(h.ctx), expected);
}

TEST(PrefetchPolicy, PredictiveLeadsTheTrajectory) {
  PolicyHarness h;
  h.pan_in_row2();
  ASSERT_TRUE(h.motion.has_estimate());
  ASSERT_EQ(h.ctx.cursor_vs, (ViewSetId{2, 3}));
  const auto policy = make_prefetch_policy(PrefetchStrategy::kPredictive);
  const auto targets = policy->targets(h.ctx);
  ASSERT_FALSE(targets.empty());
  // Most urgent first: the next view set in +phi, not a quadrant corner.
  EXPECT_EQ(targets.front(), (ViewSetId{2, 4}));
  for (const auto& t : targets) {
    EXPECT_FALSE(t == h.ctx.cursor_vs) << "proposed the set the cursor is in";
  }
}

TEST(PrefetchPolicy, PredictiveSkipsResidentAndHonoursBudget) {
  PolicyHarness h;
  h.pan_in_row2();
  const auto policy = make_prefetch_policy(PrefetchStrategy::kPredictive);
  h.ctx.budget = 1;
  EXPECT_LE(policy->targets(h.ctx).size(), 1u);
  h.ctx.budget = 3;
  h.ctx.is_resident = [](const ViewSetId& id) { return id == ViewSetId{2, 4}; };
  for (const auto& t : policy->targets(h.ctx)) {
    EXPECT_FALSE(t == (ViewSetId{2, 4})) << "re-proposed a resident set";
  }
}

TEST(PrefetchPolicy, PredictiveFallsBackToQuadrantWithoutAnEstimate) {
  PolicyHarness h;
  h.pan_in_row2();
  h.motion.reset();
  ASSERT_FALSE(h.motion.has_estimate());
  const auto policy = make_prefetch_policy(PrefetchStrategy::kPredictive);
  const auto expected = h.lattice.prefetch_targets(h.ctx.cursor_vs, h.ctx.quadrant);
  EXPECT_EQ(policy->targets(h.ctx), expected);
}

// --- prefetch budget under a saturated WAN -----------------------------------

class BudgetTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kResolution = 24;

  BudgetTest()
      : net_(sim_),
        fabric_(sim_, net_),
        lors_(sim_, net_, fabric_),
        source_(std::make_shared<lightfield::ProceduralSource>(small_config(kResolution))) {
    agent_node_ = net_.add_node("agent");
    router_ = net_.add_node("router");
    net_.add_link(agent_node_, router_, {1e9, 50 * kMicrosecond, 0.0});
    // A deliberately skinny trunk: fetches queue, so an unbudgeted
    // prefetcher would pile up in-flight transfers here.
    depot_node_ = net_.add_node("wan-0");
    net_.add_link(depot_node_, router_, {2e6, 35 * kMillisecond, 0.0});
    dvs_node_ = net_.add_node("dvs");
    net_.add_link(dvs_node_, router_, {1e9, kMillisecond, 0.0});
    ibp::DepotConfig cfg;
    cfg.capacity_bytes = 1ull << 30;
    cfg.max_alloc_bytes = 1ull << 28;
    fabric_.add_depot(depot_node_, "wan-0", cfg);
    dvs_ = std::make_unique<streaming::DvsServer>(sim_, net_, dvs_node_,
                                                  source_->lattice());
    for (const auto& id : source_->lattice().all_view_sets()) {
      Bytes compressed = source_->build_compressed(id);
      lors::UploadOptions up;
      up.depots = {"wan-0"};
      up.block_bytes = 4096;
      bool ok = false;
      lors_.upload_async(depot_node_, std::move(compressed), up,
                         [&](const lors::UploadResult& r) {
                           ok = r.status == lors::LorsStatus::kOk;
                           exnode::ExNode node = r.exnode;
                           dvs_->install(id, std::move(node));
                         });
      sim_.run();
      EXPECT_TRUE(ok);
    }
  }

  std::unique_ptr<streaming::ClientAgent> make_agent(
      streaming::ClientAgentConfig cfg) {
    cfg.staging = false;
    return std::make_unique<streaming::ClientAgent>(
        sim_, net_, fabric_, lors_, *dvs_, source_->lattice(), agent_node_, cfg);
  }

  /// Pans the cursor along the middle view-set row, stepping the simulator
  /// and running `probe` after every event.
  template <typename Probe>
  void pan(streaming::ClientAgent& agent, Probe probe, int steps = 24) {
    const auto& lattice = source_->lattice();
    const double set_width =
        lattice.config().view_set_span * deg2rad(lattice.config().angular_step_deg);
    Spherical dir = lattice.view_set_center({2, 0});
    for (int i = 0; i < steps; ++i) {
      agent.notify_cursor(dir);
      probe();
      const SimTime target = sim_.now() + 30 * kMillisecond;
      while (sim_.now() < target && sim_.step()) probe();
      dir.phi += set_width / 4;
      if (dir.phi >= 2 * kPi) dir.phi -= 2 * kPi;
    }
    sim_.run();
    probe();
  }

  sim::Simulator sim_;
  sim::Network net_;
  ibp::Fabric fabric_;
  lors::Lors lors_;
  std::shared_ptr<lightfield::ProceduralSource> source_;
  std::unique_ptr<streaming::DvsServer> dvs_;
  sim::NodeId agent_node_ = 0, router_ = 0, depot_node_ = 0, dvs_node_ = 0;
};

TEST_F(BudgetTest, InflightCapHoldsUnderSaturatedWan) {
  streaming::ClientAgentConfig cfg;
  cfg.prefetch = true;
  cfg.prefetch_strategy = PrefetchStrategy::kPredictive;
  cfg.prefetch_max_inflight = 2;
  auto agent = make_agent(cfg);
  std::size_t peak = 0;
  pan(*agent, [&] {
    peak = std::max(peak, agent->prefetch_inflight());
    ASSERT_LE(agent->prefetch_inflight(), 2u);
  });
  // The cap actually bit: the slow trunk kept both slots occupied, and the
  // scheduler never opened a third.
  EXPECT_EQ(peak, 2u);
  EXPECT_GT(agent->stats().prefetches, 0u);
}

TEST_F(BudgetTest, ByteBudgetStopsPrefetchOnceChargeIsKnown) {
  streaming::ClientAgentConfig cfg;
  cfg.prefetch = true;
  cfg.prefetch_strategy = PrefetchStrategy::kPredictive;
  cfg.prefetch_max_bytes = 1;  // nothing fits once the payload size is known
  auto agent = make_agent(cfg);

  // One demand fetch seeds the payload-size estimate (no cursor -> no
  // prefetch is triggered by it).
  bool done = false;
  agent->request_view_set({2, 0}, [&](const Bytes& data, streaming::AccessClass,
                                      SimDuration) {
    done = true;
    EXPECT_FALSE(data.empty());
  });
  sim_.run();
  ASSERT_TRUE(done);
  ASSERT_EQ(agent->stats().prefetches, 0u);

  pan(*agent, [] {});
  // Every round proposed targets; the byte budget refused them all.
  EXPECT_GT(agent->stats().predictions, 0u);
  EXPECT_EQ(agent->stats().prefetches, 0u);
}

// --- end-to-end: the perf-gate guarantees ------------------------------------

session::ExperimentConfig policy_experiment(PrefetchStrategy strategy,
                                            EvictionStrategy eviction,
                                            std::uint64_t cache_bytes) {
  session::ExperimentConfig cfg;
  cfg.lattice = small_config(200);
  cfg.which = session::Case::kWanStreaming;
  cfg.all_filler = true;
  cfg.client.decode = false;
  cfg.client.display_resolution = 200;
  cfg.client.timing = streaming::ClientConfig::Timing::kModeled;
  cfg.dwell = 35 * kMillisecond;
  cfg.prefetch_strategy = strategy;
  cfg.eviction = eviction;
  cfg.agent_cache_bytes = cache_bytes;
  cfg.prefetch_max_inflight = 4;
  return cfg;
}

double hit_rate(const session::ExperimentResult& r) {
  return r.agent_stats.requests > 0
             ? static_cast<double>(r.agent_stats.hits) /
                   static_cast<double>(r.agent_stats.requests)
             : 0.0;
}

double p99_s(const session::ExperimentResult& r) {
  std::vector<double> totals;
  totals.reserve(r.accesses.size());
  for (const auto& rec : r.accesses) totals.push_back(to_seconds(rec.total()));
  std::sort(totals.begin(), totals.end());
  return totals.empty() ? 0.0 : totals[(totals.size() - 1) * 99 / 100];
}

TEST(PolicyEndToEnd, PredictiveBeatsQuadrantOnScriptedWalks) {
  for (const char* script : {"smooth_pan", "reversal"}) {
    double rates[2] = {0.0, 0.0};
    int i = 0;
    for (const auto strategy :
         {PrefetchStrategy::kQuadrant, PrefetchStrategy::kPredictive}) {
      session::ExperimentConfig cfg =
          policy_experiment(strategy, EvictionStrategy::kLru, 512ull << 20);
      const lightfield::SphericalLattice lattice(cfg.lattice);
      cfg.script = std::string(script) == "smooth_pan"
                       ? session::CursorScript::smooth_pan(lattice, cfg.dwell, 8)
                       : session::CursorScript::reversal(lattice, cfg.dwell, 4);
      const auto result = session::run_experiment(cfg);
      EXPECT_EQ(result.failed_accesses, 0u);
      rates[i++] = hit_rate(result);
    }
    EXPECT_GT(rates[1], rates[0])
        << script << ": predictive " << rates[1] << " vs quadrant " << rates[0];
  }
}

TEST(PolicyEndToEnd, HybridEvictionPreservesDemandWorkingSetUnderPollution) {
  // Cache sized to ~4 filler view sets: predictive prefetch pressure evicts
  // the trail the reversal walk is about to retrace — unless the policy
  // protects it.
  session::ExperimentResult results[2];
  int i = 0;
  for (const auto eviction : {EvictionStrategy::kLru, EvictionStrategy::kHybrid}) {
    session::ExperimentConfig cfg =
        policy_experiment(PrefetchStrategy::kPredictive, eviction, 1ull << 20);
    const lightfield::SphericalLattice lattice(cfg.lattice);
    cfg.script = session::CursorScript::reversal(lattice, cfg.dwell, 4);
    results[i++] = session::run_experiment(cfg);
  }
  const auto& lru = results[0];
  const auto& hybrid = results[1];
  EXPECT_LT(p99_s(hybrid), p99_s(lru))
      << "hybrid did not shield the demand tail from prefetch pollution";
  EXPECT_LT(hybrid.agent_stats.pollution_evictions,
            lru.agent_stats.pollution_evictions);
  EXPECT_GT(hybrid.agent_stats.rejected_prefetch, 0u);
}

}  // namespace
}  // namespace lon::policy
