// Unit and integration tests for the streaming layer: the view-set cache,
// the hierarchical DVS, the server agent's LIFO generator, and the client /
// client-agent pipeline including prefetch and aggressive prestaging.
#include <gtest/gtest.h>

#include <memory>
#include <optional>

#include "compress/lfz.hpp"
#include "lightfield/procedural.hpp"
#include "streaming/cache.hpp"
#include "streaming/client.hpp"
#include "streaming/client_agent.hpp"
#include "streaming/dvs.hpp"
#include "streaming/server_agent.hpp"

namespace lon::streaming {
namespace {

using lightfield::ViewSetId;

lightfield::LatticeConfig small_config(std::size_t resolution = 24) {
  lightfield::LatticeConfig cfg;
  cfg.angular_step_deg = 15.0;  // 12 x 24 lattice
  cfg.view_set_span = 3;        // 4 x 8 = 32 view sets
  cfg.view_resolution = resolution;
  return cfg;
}

// --- cache -------------------------------------------------------------------

TEST(Cache, PutGetRoundTrip) {
  ViewSetCache cache(1000);
  cache.put({1, 2}, Bytes{1, 2, 3});
  ASSERT_NE(cache.get({1, 2}), nullptr);
  EXPECT_EQ(*cache.get({1, 2}), (Bytes{1, 2, 3}));
  EXPECT_EQ(cache.get({9, 9}), nullptr);
  EXPECT_EQ(cache.bytes_used(), 3u);
}

TEST(Cache, EvictsLeastRecentlyUsed) {
  ViewSetCache cache(100);
  cache.put({0, 0}, Bytes(40));
  cache.put({0, 1}, Bytes(40));
  ASSERT_NE(cache.get({0, 0}), nullptr);  // touch -> {0,1} becomes LRU
  cache.put({0, 2}, Bytes(40));           // must evict {0,1}
  EXPECT_TRUE(cache.contains({0, 0}));
  EXPECT_FALSE(cache.contains({0, 1}));
  EXPECT_TRUE(cache.contains({0, 2}));
  EXPECT_EQ(cache.evictions(), 1u);
}

TEST(Cache, ReplacementUpdatesBytes) {
  ViewSetCache cache(100);
  cache.put({0, 0}, Bytes(60));
  cache.put({0, 0}, Bytes(10));
  EXPECT_EQ(cache.bytes_used(), 10u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(Cache, OversizedItemsAreNotCached) {
  ViewSetCache cache(100);
  cache.put({0, 0}, Bytes(50));
  cache.put({0, 1}, Bytes(101));
  EXPECT_FALSE(cache.contains({0, 1}));
  EXPECT_TRUE(cache.contains({0, 0}));  // nothing was evicted for it
}

TEST(Cache, BudgetIsRespectedUnderChurn) {
  ViewSetCache cache(1000);
  for (int i = 0; i < 100; ++i) {
    cache.put({0, i}, Bytes(90));
    ASSERT_LE(cache.bytes_used(), 1000u);
  }
  EXPECT_LE(cache.size(), 11u);
}

TEST(Cache, SharedPutAliasesPayloadWithoutCopy) {
  // Regression: finish_fetch used to deep-copy every delivered payload into
  // the cache. The shared-ownership put must alias the caller's buffer.
  ViewSetCache cache(100);
  auto payload = std::make_shared<const Bytes>(Bytes(40, 7));
  ASSERT_TRUE(cache.put({0, 0}, payload));
  EXPECT_EQ(payload.use_count(), 2);  // cache + caller, no private copy
  EXPECT_EQ(cache.get({0, 0}).get(), payload.get());
  EXPECT_EQ(cache.bytes_used(), 40u);
  cache.put({0, 1}, Bytes(80));  // evicts {0,0}
  EXPECT_FALSE(cache.contains({0, 0}));
  EXPECT_EQ(cache.bytes_used(), 80u);
  EXPECT_EQ(payload.use_count(), 1);  // eviction released the cache's ref
  EXPECT_EQ(payload->size(), 40u);    // caller's bytes untouched
}

TEST(Cache, FirstDemandHitOnPrefetchedEntryIsCountedOnce) {
  ViewSetCache cache(100);
  cache.put({0, 0}, Bytes(10), /*prefetched=*/true);
  bool first = false;
  // A non-demand lookup (the prefetcher peeking) claims no usefulness.
  EXPECT_NE(cache.get({0, 0}, &first, /*demand=*/false), nullptr);
  EXPECT_FALSE(first);
  EXPECT_EQ(cache.prefetch_hits(), 0u);
  EXPECT_NE(cache.get({0, 0}, &first, /*demand=*/true), nullptr);
  EXPECT_TRUE(first);
  EXPECT_NE(cache.get({0, 0}, &first, /*demand=*/true), nullptr);
  EXPECT_FALSE(first);  // only the first demand hit is the useful-prefetch signal
  EXPECT_EQ(cache.prefetch_hits(), 1u);
}

// --- DVS ----------------------------------------------------------------------

class DvsTest : public ::testing::Test {
 protected:
  DvsTest()
      : net_(sim_),
        lattice_(small_config()),
        client_(net_.add_node("client")),
        dvs_node_(net_.add_node("dvs")) {
    net_.add_link(client_, dvs_node_, {1e9, 10 * kMillisecond, 0.0});
    DvsConfig cfg;
    cfg.leaf_capacity = 4;  // force a multi-level tree over 32 view sets
    dvs_ = std::make_unique<DvsServer>(sim_, net_, dvs_node_, lattice_, cfg);
  }

  exnode::ExNode fake_exnode(const ViewSetId& id) {
    exnode::ExNode node(100);
    exnode::Extent extent;
    extent.offset = 0;
    extent.length = 100;
    exnode::Replica rep;
    rep.read.depot = "d";
    rep.read.allocation = static_cast<std::uint64_t>(id.row * 100 + id.col);
    rep.read.key = 7;
    extent.replicas.push_back(rep);
    node.add_extent(extent);
    return node;
  }

  sim::Simulator sim_;
  sim::Network net_;
  lightfield::SphericalLattice lattice_;
  sim::NodeId client_, dvs_node_;
  std::unique_ptr<DvsServer> dvs_;
};

TEST_F(DvsTest, TreeIsActuallyHierarchical) {
  // 32 view sets over leaves of <= 4 entries: depth must exceed 2.
  EXPECT_GE(dvs_->tree_depth(), 3);
}

TEST_F(DvsTest, InstallThenQueryFinds) {
  dvs_->install({1, 3}, fake_exnode({1, 3}));
  EXPECT_TRUE(dvs_->knows({1, 3}));
  std::optional<DvsServer::QueryResult> result;
  dvs_->query_async(client_, {1, 3}, false,
                    [&](const DvsServer::QueryResult& r) { result = r; });
  sim_.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->found);
  EXPECT_EQ(result->levels, dvs_->tree_depth());
  EXPECT_EQ(result->exnode.extents().size(), 1u);
  EXPECT_EQ(dvs_->stats().hits, 1u);
}

TEST_F(DvsTest, QueryChargesRoundTripAndLevels) {
  dvs_->install({0, 0}, fake_exnode({0, 0}));
  SimTime done = 0;
  dvs_->query_async(client_, {0, 0}, false,
                    [&](const DvsServer::QueryResult&) { done = sim_.now(); });
  sim_.run();
  EXPECT_GE(done, 20 * kMillisecond);               // the RTT
  EXPECT_LT(done, 20 * kMillisecond + 10 * kMillisecond);  // plus small lookups
}

TEST_F(DvsTest, MissWithoutGeneratorReportsNotFound) {
  std::optional<DvsServer::QueryResult> result;
  dvs_->query_async(client_, {2, 2}, true,
                    [&](const DvsServer::QueryResult& r) { result = r; });
  sim_.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->found);
  EXPECT_EQ(dvs_->stats().misses, 1u);
}

TEST_F(DvsTest, OutOfGridQueriesFailCleanly) {
  std::optional<DvsServer::QueryResult> result;
  dvs_->query_async(client_, {99, 99}, false,
                    [&](const DvsServer::QueryResult& r) { result = r; });
  sim_.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->found);
  EXPECT_THROW(dvs_->install({99, 99}, exnode::ExNode{}), std::out_of_range);
}

TEST_F(DvsTest, MissForwardsToServerAgentTable) {
  // A fake generator: returns a canned exNode after a delay.
  class FakeGenerator : public GeneratorService {
   public:
    FakeGenerator(sim::Simulator& sim, exnode::ExNode node)
        : sim_(sim), node_(std::move(node)) {}
    void generate_async(const ViewSetId&, GenerateCallback cb) override {
      ++calls;
      sim_.after(kSecond, [cb, node = node_] { cb(true, node); });
    }
    int calls = 0;

   private:
    sim::Simulator& sim_;
    exnode::ExNode node_;
  };
  FakeGenerator generator(sim_, fake_exnode({2, 5}));
  dvs_->register_server_agent(&generator);

  std::optional<DvsServer::QueryResult> result;
  dvs_->query_async(client_, {2, 5}, true,
                    [&](const DvsServer::QueryResult& r) { result = r; });
  sim_.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->found);
  EXPECT_EQ(generator.calls, 1);
  EXPECT_EQ(dvs_->stats().forwarded, 1u);
  // The exNode table was updated: the next query is a plain hit.
  EXPECT_TRUE(dvs_->knows({2, 5}));
}

TEST_F(DvsTest, UpdateAsyncInstallsRemotely) {
  bool done = false;
  dvs_->update_async(client_, {3, 1}, fake_exnode({3, 1}), [&] { done = true; });
  sim_.run();
  EXPECT_TRUE(done);
  EXPECT_TRUE(dvs_->knows({3, 1}));
  EXPECT_GE(dvs_->stats().updates, 1u);
}

// --- full pipeline fixture -------------------------------------------------------

class PipelineTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kResolution = 24;

  PipelineTest()
      : net_(sim_),
        fabric_(sim_, net_),
        lors_(sim_, net_, fabric_),
        source_(std::make_shared<lightfield::ProceduralSource>(small_config(kResolution))) {
    // LAN star.
    lan_switch_ = net_.add_node("lan-switch");
    client_node_ = net_.add_node("client");
    agent_node_ = net_.add_node("agent");
    const sim::LinkConfig lan{1e9, 50 * kMicrosecond, 0.0};
    net_.add_link(client_node_, lan_switch_, lan);
    net_.add_link(agent_node_, lan_switch_, lan);
    for (int i = 0; i < 2; ++i) {
      const std::string name = "lan-" + std::to_string(i);
      const sim::NodeId node = net_.add_node(name);
      net_.add_link(node, lan_switch_, lan);
      add_depot(node, name);
      lan_depots_.push_back(name);
    }
    // WAN side.
    wan_router_ = net_.add_node("wan-router");
    net_.add_link(lan_switch_, wan_router_, {100e6, 35 * kMillisecond, 0.0});
    for (int i = 0; i < 2; ++i) {
      const std::string name = "ca-" + std::to_string(i);
      const sim::NodeId node = net_.add_node(name);
      net_.add_link(node, wan_router_, {1e9, kMillisecond, 0.0});
      add_depot(node, name);
      wan_depots_.push_back(name);
    }
    dvs_node_ = net_.add_node("dvs");
    net_.add_link(dvs_node_, wan_router_, {1e9, kMillisecond, 0.0});
    server_node_ = net_.add_node("server");
    net_.add_link(server_node_, wan_router_, {1e9, kMillisecond, 0.0});

    dvs_ = std::make_unique<DvsServer>(sim_, net_, dvs_node_, source_->lattice());
  }

  void add_depot(sim::NodeId node, const std::string& name) {
    ibp::DepotConfig cfg;
    cfg.capacity_bytes = 1ull << 30;
    cfg.max_alloc_bytes = 1ull << 28;
    fabric_.add_depot(node, name, cfg);
  }

  /// Uploads one real view set to the WAN depots and registers its exNode.
  void publish(const ViewSetId& id) {
    Bytes compressed = source_->build_compressed(id);
    lors::UploadOptions up;
    up.depots = wan_depots_;
    up.block_bytes = 4096;
    bool ok = false;
    lors_.upload_async(server_node_, std::move(compressed), up,
                       [&](const lors::UploadResult& r) {
                         ok = r.status == lors::LorsStatus::kOk;
                         exnode::ExNode node = r.exnode;
                         dvs_->install(id, std::move(node));
                       });
    sim_.run();
    ASSERT_TRUE(ok);
  }

  void publish_all() {
    for (const auto& id : source_->lattice().all_view_sets()) publish(id);
  }

  std::unique_ptr<ClientAgent> make_agent(bool staging, bool prefetch = true) {
    ClientAgentConfig cfg;
    cfg.prefetch = prefetch;
    cfg.staging = staging;
    cfg.lan_depots = lan_depots_;
    cfg.staging_concurrency = 2;
    return std::make_unique<ClientAgent>(sim_, net_, fabric_, lors_, *dvs_,
                                         source_->lattice(), agent_node_, cfg);
  }

  sim::Simulator sim_;
  sim::Network net_;
  ibp::Fabric fabric_;
  lors::Lors lors_;
  std::shared_ptr<lightfield::ProceduralSource> source_;
  std::unique_ptr<DvsServer> dvs_;
  sim::NodeId lan_switch_, client_node_, agent_node_, wan_router_, dvs_node_, server_node_;
  std::vector<std::string> lan_depots_, wan_depots_;
};

TEST_F(PipelineTest, WanFetchDeliversCorrectBytes) {
  const ViewSetId id{1, 2};
  publish(id);
  auto agent = make_agent(false, false);

  std::optional<AccessClass> cls;
  Bytes received;
  SimDuration comm = 0;
  agent->request_view_set(id, [&](const Bytes& data, AccessClass c, SimDuration t) {
    received = data;
    cls = c;
    comm = t;
  });
  sim_.run();
  ASSERT_TRUE(cls.has_value());
  EXPECT_EQ(*cls, AccessClass::kWan);
  EXPECT_GT(to_seconds(comm), 0.07);  // at least the WAN RTT
  // The bytes decompress to the exact view set.
  const auto vs = lightfield::ViewSet::decompress(received);
  EXPECT_EQ(vs, source_->build(id));
}

TEST_F(PipelineTest, SecondRequestIsAHit) {
  const ViewSetId id{1, 2};
  publish(id);
  auto agent = make_agent(false, false);
  agent->request_view_set(id, [](const Bytes&, AccessClass, SimDuration) {});
  sim_.run();

  std::optional<AccessClass> cls;
  SimDuration comm = 0;
  agent->request_view_set(id, [&](const Bytes& data, AccessClass c, SimDuration t) {
    EXPECT_FALSE(data.empty());
    cls = c;
    comm = t;
  });
  sim_.run();
  EXPECT_EQ(cls, AccessClass::kAgentHit);
  EXPECT_EQ(comm, kAgentHitLatency);
  EXPECT_EQ(agent->stats().hits, 1u);
}

TEST_F(PipelineTest, ColdDemandFetchCopiesTheCompressedPayloadExactlyOnce) {
  // Zero-copy regression gate: a cold WAN fetch is allowed exactly one
  // metered pass over the compressed payload — the scatter-gather landing of
  // depot blocks into the pooled slab. Assembly, verification, decode and
  // delivery must not add passes.
  const ViewSetId id{1, 2};
  publish(id);
  const std::size_t compressed_size = source_->build_compressed(id).size();
  auto agent = make_agent(false, false);
  ASSERT_EQ(agent->stats().payload_copy_bytes, 0u);

  bool done = false;
  agent->request_view_set(id, [&](const Bytes& data, AccessClass, SimDuration) {
    EXPECT_FALSE(data.empty());
    done = true;
  });
  sim_.run();
  ASSERT_TRUE(done);
  EXPECT_EQ(agent->stats().payload_copy_bytes, compressed_size);
}

TEST_F(PipelineTest, WarmCacheHitCopiesZeroPayloadBytes) {
  const ViewSetId id{1, 2};
  publish(id);
  auto agent = make_agent(false, false);
  agent->request_view_set(id, [](const Bytes&, AccessClass, SimDuration) {});
  sim_.run();
  const std::uint64_t after_cold = agent->stats().payload_copy_bytes;
  EXPECT_GT(after_cold, 0u);

  std::optional<AccessClass> cls;
  agent->request_view_set(id, [&](const Bytes& data, AccessClass c, SimDuration) {
    EXPECT_FALSE(data.empty());
    cls = c;
  });
  sim_.run();
  EXPECT_EQ(cls, AccessClass::kAgentHit);
  // The hit serves the cached slab by reference: not one byte copied.
  EXPECT_EQ(agent->stats().payload_copy_bytes, after_cold);
}

TEST_F(PipelineTest, AccessRecordsCarryPerAccessCopiedBytes) {
  publish_all();
  auto agent = make_agent(false, false);
  Client client(sim_, net_, small_config(kResolution), client_node_, *agent, {});

  const auto& lattice = source_->lattice();
  bool ready = false;
  client.set_view(lattice.view_set_center({1, 3}), [&](bool ok) { ready = ok; });
  sim_.run();
  ASSERT_TRUE(ready);
  ASSERT_EQ(client.accesses().size(), 1u);
  const AccessRecord& cold = client.accesses().front();
  EXPECT_EQ(cold.cls, AccessClass::kWan);
  EXPECT_EQ(cold.copied_bytes, cold.compressed_bytes);
  EXPECT_EQ(cold.copied_bytes, agent->stats().payload_copy_bytes);

  // A different client instance re-requesting hits the agent cache: the
  // access record shows a zero-copy serve.
  Client second(sim_, net_, small_config(kResolution), client_node_, *agent, {});
  bool again = false;
  second.set_view(lattice.view_set_center({1, 3}), [&](bool ok) { again = ok; });
  sim_.run();
  ASSERT_TRUE(again);
  ASSERT_EQ(second.accesses().size(), 1u);
  EXPECT_EQ(second.accesses().front().cls, AccessClass::kAgentHit);
  EXPECT_EQ(second.accesses().front().copied_bytes, 0u);
}

TEST_F(PipelineTest, CursorTriggersQuadrantPrefetch) {
  publish_all();
  auto agent = make_agent(false, true);
  const auto& lattice = source_->lattice();

  // Cursor nudged into the lower-right region of view set (1,3) — small
  // enough to stay inside the set's angular window.
  const Spherical center = lattice.view_set_center({1, 3});
  const double nudge = 0.4 * deg2rad(lattice.config().angular_step_deg);
  const Spherical dir{center.theta + nudge, center.phi + nudge};
  ASSERT_EQ(lattice.view_set_of(dir), (ViewSetId{1, 3}));
  agent->notify_cursor(dir);
  sim_.run();

  EXPECT_EQ(agent->stats().prefetches, 3u);
  const auto targets = lattice.prefetch_targets({1, 3}, lattice.quadrant_of(dir));
  for (const auto& target : targets) {
    EXPECT_TRUE(agent->cache().contains(target))
        << "expected prefetch of " << target.key();
  }
}

TEST_F(PipelineTest, DemandJoinsInflightPrefetch) {
  publish_all();
  auto agent = make_agent(false, true);
  const auto& lattice = source_->lattice();
  const Spherical center = lattice.view_set_center({1, 3});
  const double nudge = 0.4 * deg2rad(lattice.config().angular_step_deg);
  const Spherical dir{center.theta + nudge, center.phi + nudge};
  agent->notify_cursor(dir);
  sim_.run_until(sim_.now() + 30 * kMillisecond);  // prefetch in flight, not done

  const auto targets = lattice.prefetch_targets({1, 3}, lattice.quadrant_of(dir));
  std::optional<AccessClass> cls;
  SimDuration comm = 0;
  agent->request_view_set(targets[0],
                          [&](const Bytes& data, AccessClass c, SimDuration t) {
                            EXPECT_FALSE(data.empty());
                            cls = c;
                            comm = t;
                          });
  sim_.run();
  ASSERT_TRUE(cls.has_value());
  EXPECT_EQ(*cls, AccessClass::kWan);  // data still came over the WAN...
  // ...but part of the latency was already hidden by the prefetch head start.
  EXPECT_GT(agent->stats().prefetches, 0u);
  EXPECT_LT(comm, 2 * kSecond);
}

TEST_F(PipelineTest, StagingLocalizesTheWholeDatabase) {
  publish_all();
  auto agent = make_agent(true, false);
  agent->start_staging();
  sim_.run();
  EXPECT_TRUE(agent->staging_complete());
  EXPECT_EQ(agent->stats().staged, source_->lattice().view_set_count());
  EXPECT_EQ(agent->stats().staging_failures, 0u);
  // Every LAN depot holds allocations now.
  for (const auto& name : lan_depots_) {
    EXPECT_GT(fabric_.find_depot(name)->allocation_count(), 0u);
  }
}

TEST_F(PipelineTest, StagedAccessIsLanClassAndFast) {
  publish_all();
  auto agent = make_agent(true, false);
  agent->start_staging();
  sim_.run();
  ASSERT_TRUE(agent->staging_complete());

  const ViewSetId id{2, 6};
  std::optional<AccessClass> cls;
  SimDuration comm = 0;
  agent->request_view_set(id, [&](const Bytes& data, AccessClass c, SimDuration t) {
    EXPECT_FALSE(data.empty());
    cls = c;
    comm = t;
  });
  sim_.run();
  EXPECT_EQ(cls, AccessClass::kLanDepot);
  // The figure-12 LAN-depot decade: 1e-2..1e-1 s.
  EXPECT_LT(to_seconds(comm), 0.2);
  EXPECT_GT(to_seconds(comm), 0.0005);
}

TEST_F(PipelineTest, StagingOrderFollowsCursorProximity) {
  publish_all();
  auto agent = make_agent(true, false);
  const auto& lattice = source_->lattice();
  const Spherical cursor = lattice.view_set_center({1, 3});
  agent->notify_cursor(cursor);
  agent->start_staging();
  // Let a handful of staging operations finish, then check that what got
  // staged is angularly close to the cursor.
  sim_.run_until(sim_.now() + 3 * kSecond);
  ASSERT_GT(agent->stats().staged, 0u);
  ASSERT_FALSE(agent->staging_complete());
  const double far_distance = lattice.view_set_distance({1, 3}, {2, 7});
  std::size_t staged_near = 0, staged_far = 0;
  for (const auto& id : lattice.all_view_sets()) {
    if (!agent->is_staged(id)) continue;
    if (lattice.view_set_distance(id, {1, 3}) < far_distance / 2) {
      ++staged_near;
    } else {
      ++staged_far;
    }
  }
  EXPECT_GT(staged_near, staged_far);
}

TEST_F(PipelineTest, ClientDecompressesAndRecordsAccesses) {
  publish_all();
  auto agent = make_agent(false, false);
  ClientConfig client_cfg;
  client_cfg.display_resolution = kResolution;
  client_cfg.timing = ClientConfig::Timing::kModeled;
  client_cfg.decompress_bytes_per_sec = 30e6;
  Client client(sim_, net_, small_config(kResolution), client_node_, *agent, client_cfg);

  const auto& lattice = source_->lattice();
  const Spherical dir = lattice.view_set_center({1, 3});
  bool ready = false;
  client.set_view(dir, [&](bool ok) { ready = ok; });
  sim_.run();
  ASSERT_TRUE(ready);
  ASSERT_EQ(client.accesses().size(), 1u);
  const AccessRecord& record = client.accesses().front();
  EXPECT_EQ(record.cls, AccessClass::kWan);
  EXPECT_GT(record.decompress_time, 0);
  EXPECT_GT(record.total(), record.comm_latency);
  EXPECT_GT(record.compressed_bytes, 0u);

  // The view is now renderable without any further access.
  bool instant = false;
  client.set_view(dir, [&](bool ok) { instant = ok; });
  EXPECT_TRUE(instant);
  EXPECT_EQ(client.accesses().size(), 1u);

  const auto frame = client.render_frame();
  EXPECT_EQ(frame.width(), kResolution);
}

TEST_F(PipelineTest, ClientEvictsBeyondLocalBudget) {
  publish_all();
  auto agent = make_agent(false, false);
  ClientConfig client_cfg;
  client_cfg.keep_view_sets = 1;
  Client client(sim_, net_, small_config(kResolution), client_node_, *agent, client_cfg);

  const auto& lattice = source_->lattice();
  bool ready = false;
  client.set_view(lattice.view_set_center({1, 3}), [&](bool ok) { ready = ok; });
  sim_.run();
  ASSERT_TRUE(ready);
  client.set_view(lattice.view_set_center({2, 5}), [&](bool ok) { ready = ok; });
  sim_.run();
  ASSERT_TRUE(ready);
  EXPECT_EQ(client.renderer().loaded_count(), 1u);
  // Returning to the first view set costs another access (agent hit).
  client.set_view(lattice.view_set_center({1, 3}), [](bool) {});
  sim_.run();
  EXPECT_EQ(client.accesses().size(), 3u);
  EXPECT_EQ(client.accesses().back().cls, AccessClass::kAgentHit);
}

TEST_F(PipelineTest, ClientFrameFallsBackToNearestSampleAtWindowEdge) {
  publish_all();
  auto agent = make_agent(false, false);
  ClientConfig client_cfg;
  client_cfg.display_resolution = kResolution;
  Client client(sim_, net_, small_config(kResolution), client_node_, *agent, client_cfg);

  const auto& lattice = source_->lattice();
  // A direction whose interpolation corners straddle two view sets: with
  // only one set resident the client must still produce a frame (snapped).
  const Spherical left = lattice.sample_direction(4, 8);
  const Spherical right = lattice.sample_direction(4, 9);
  const Spherical edge{left.theta, (left.phi + right.phi) / 2.0};
  bool ready = false;
  client.set_view(edge, [&](bool ok) { ready = ok; });
  sim_.run();
  ASSERT_TRUE(ready);
  EXPECT_FALSE(client.renderer().can_render(edge));  // neighbour not loaded
  const auto frame = client.render_frame();
  // The snapped frame shows real imagery, not black.
  std::uint64_t total = 0;
  for (const auto byte : frame.bytes()) total += byte;
  EXPECT_GT(total, 0u);
}

TEST_F(PipelineTest, AgentCacheEvictionKeepsSessionCorrect) {
  publish_all();
  // A cache that holds only ~2 compressed view sets forces constant
  // eviction; every delivery must still decompress to the right content.
  ClientAgentConfig cfg;
  cfg.prefetch = false;
  cfg.cache_bytes = 2 * source_->build_compressed({0, 0}).size() + 64;
  auto agent = std::make_unique<ClientAgent>(sim_, net_, fabric_, lors_, *dvs_,
                                             source_->lattice(), agent_node_, cfg);
  const std::vector<ViewSetId> walk = {{0, 0}, {1, 1}, {2, 2}, {0, 0}, {3, 3}, {1, 1}};
  for (const auto& id : walk) {
    Bytes received;
    agent->request_view_set(id, [&](const Bytes& data, AccessClass, SimDuration) {
      received = data;
    });
    sim_.run();
    ASSERT_FALSE(received.empty());
    EXPECT_EQ(lightfield::ViewSet::decompress(received).id(), id);
  }
  EXPECT_GT(agent->cache().evictions(), 0u);
  // Revisits after eviction re-fetch from the WAN, not from thin air.
  EXPECT_GT(agent->stats().wan_accesses, 4u);
}

TEST_F(PipelineTest, ClassifyUsesBestReplicaAcrossAllExtents) {
  // Regression: classify() used to look only at the first extent's replicas.
  // Stripe a view set across one WAN and one LAN depot (upload round-robins
  // blocks over the depot list), so extent 0 lives on the WAN and extent 1 on
  // the LAN: the access must still classify by the best replica overall.
  const ViewSetId id{1, 2};
  Bytes compressed = source_->build_compressed(id);
  ASSERT_GT(compressed.size(), 2048u);  // at least two extents
  lors::UploadOptions up;
  up.depots = {"ca-0", "lan-0"};
  up.block_bytes = 2048;
  bool ok = false;
  lors_.upload_async(server_node_, std::move(compressed), up,
                     [&](const lors::UploadResult& r) {
                       ok = r.status == lors::LorsStatus::kOk;
                       exnode::ExNode node = r.exnode;
                       dvs_->install(id, std::move(node));
                     });
  sim_.run();
  ASSERT_TRUE(ok);

  auto agent = make_agent(false, false);
  std::optional<AccessClass> cls;
  Bytes received;
  agent->request_view_set(id, [&](const Bytes& data, AccessClass c, SimDuration) {
    received = data;
    cls = c;
  });
  sim_.run();
  ASSERT_TRUE(cls.has_value());
  EXPECT_EQ(*cls, AccessClass::kLanDepot);
  EXPECT_EQ(agent->stats().lan_accesses, 1u);
  EXPECT_EQ(received, source_->build_compressed(id));
}

TEST_F(PipelineTest, FailedDownloadAbortsAbandonedPipeline) {
  // Regression: a failed download used to leak its decompress pipeline —
  // in-flight chunk decodes kept pool slots and buffers alive while the
  // refetch raced a fresh pipeline against the abandoned one.
  const ViewSetId id{1, 2};
  publish(id);
  ClientAgentConfig cfg;
  cfg.prefetch = false;
  cfg.pipeline_decompress = true;
  auto agent = std::make_unique<ClientAgent>(sim_, net_, fabric_, lors_, *dvs_,
                                             source_->lattice(), agent_node_, cfg);
  // Both WAN depots dark: every download attempt fails after one round trip.
  fabric_.set_offline("ca-0", true);
  fabric_.set_offline("ca-1", true);
  bool done = false;
  Bytes received = {9};
  agent->request_view_set(id, [&](const Bytes& data, AccessClass, SimDuration) {
    done = true;
    received = data;
  });
  sim_.run();
  ASSERT_TRUE(done);
  EXPECT_TRUE(received.empty());  // failure reported, not hung
  // Every failed attempt (initial + each refetch) drained its own pipeline.
  EXPECT_GT(agent->stats().refetches, 0u);
  EXPECT_EQ(agent->stats().pipeline_aborts, agent->stats().refetches + 1);

  // Depots return: the same agent then serves the view set cleanly, with no
  // abandoned pipeline work polluting the retried fetch.
  fabric_.set_offline("ca-0", false);
  fabric_.set_offline("ca-1", false);
  Bytes again;
  agent->request_view_set(id, [&](const Bytes& data, AccessClass, SimDuration) {
    again = data;
  });
  sim_.run();
  EXPECT_EQ(again, source_->build_compressed(id));
  EXPECT_EQ(agent->stats().pipeline_aborts, agent->stats().refetches + 1);
}

TEST_F(PipelineTest, ServerAgentGeneratesOnDvsMiss) {
  // Publish nothing: every request must go through runtime generation.
  ServerAgentConfig server_cfg;
  server_cfg.depots = wan_depots_;
  ServerAgent server(sim_, net_, lors_, *dvs_, server_node_, source_, server_cfg);
  dvs_->register_server_agent(&server);

  auto agent = make_agent(false, false);
  const ViewSetId id{0, 4};
  std::optional<AccessClass> cls;
  Bytes received;
  agent->request_view_set(id, [&](const Bytes& data, AccessClass c, SimDuration) {
    received = data;
    cls = c;
  });
  sim_.run();
  ASSERT_TRUE(cls.has_value());
  EXPECT_FALSE(received.empty());
  EXPECT_EQ(server.generated_count(), 1u);
  EXPECT_TRUE(dvs_->knows(id));
  EXPECT_EQ(lightfield::ViewSet::decompress(received), source_->build(id));
}

TEST_F(PipelineTest, ServerAgentPublishesLfz2WhenConfigured) {
  // Flip the whole database to the inter-view-predicted container; the
  // delivery path and the client-side decode must not care.
  ServerAgentConfig server_cfg;
  server_cfg.depots = wan_depots_;
  server_cfg.lfz2 = true;
  ServerAgent server(sim_, net_, lors_, *dvs_, server_node_, source_, server_cfg);
  dvs_->register_server_agent(&server);

  auto agent = make_agent(false, false);
  const ViewSetId id{2, 3};
  Bytes received;
  agent->request_view_set(id, [&](const Bytes& data, AccessClass, SimDuration) {
    received = data;
  });
  sim_.run();
  ASSERT_FALSE(received.empty());
  EXPECT_STREQ(lfz::wire_label(received), "lfz2");
  EXPECT_EQ(lightfield::ViewSet::decompress(received), source_->build(id));
}

TEST_F(PipelineTest, ServerAgentSchedulesLifo) {
  ServerAgentConfig server_cfg;
  server_cfg.depots = wan_depots_;
  ServerAgent server(sim_, net_, lors_, *dvs_, server_node_, source_, server_cfg);

  std::vector<int> completion_order;
  // The first request occupies the generator; 2 and 3 queue up. LIFO means 3
  // completes before 2.
  server.generate_async({0, 0}, [&](bool, const exnode::ExNode&) {
    completion_order.push_back(1);
  });
  server.generate_async({0, 1}, [&](bool, const exnode::ExNode&) {
    completion_order.push_back(2);
  });
  server.generate_async({0, 2}, [&](bool, const exnode::ExNode&) {
    completion_order.push_back(3);
  });
  sim_.run();
  EXPECT_EQ(completion_order, (std::vector<int>{1, 3, 2}));
}

TEST_F(PipelineTest, ServerAgentGenerationCostScalesWithResolution) {
  ServerAgentConfig cfg;
  cfg.depots = wan_depots_;
  auto small_src = std::make_shared<lightfield::ProceduralSource>(small_config(100));
  auto large_src = std::make_shared<lightfield::ProceduralSource>(small_config(200));
  ServerAgent small_agent(sim_, net_, lors_, *dvs_, server_node_, small_src, cfg);
  ServerAgent large_agent(sim_, net_, lors_, *dvs_, server_node_, large_src, cfg);
  EXPECT_NEAR(static_cast<double>(large_agent.generation_cost()) /
                  static_cast<double>(small_agent.generation_cost()),
              4.0, 0.01);
}

}  // namespace
}  // namespace lon::streaming
