// Unit tests for scalar volumes, synthetic datasets and transfer functions.
#include <gtest/gtest.h>

#include <cmath>

#include "volume/synthetic.hpp"
#include "volume/transfer.hpp"
#include "volume/volume.hpp"

namespace lon::volume {
namespace {

TEST(ScalarVolume, IndexingIsRowMajor) {
  ScalarVolume vol(3, 4, 5);
  EXPECT_EQ(vol.voxel_count(), 60u);
  vol.at(1, 2, 3) = 7.5f;
  EXPECT_FLOAT_EQ(vol.at(1, 2, 3), 7.5f);
  EXPECT_FLOAT_EQ(vol.data()[(3 * 4 + 2) * 3 + 1], 7.5f);
}

TEST(ScalarVolume, RejectsDegenerateDims) {
  EXPECT_THROW(ScalarVolume(1, 4, 4), std::invalid_argument);
  EXPECT_THROW(ScalarVolume(4, 0, 4), std::invalid_argument);
}

TEST(ScalarVolume, SampleAtVoxelCentersIsExact) {
  ScalarVolume vol(4, 4, 4);
  for (std::size_t k = 0; k < 4; ++k) {
    for (std::size_t j = 0; j < 4; ++j) {
      for (std::size_t i = 0; i < 4; ++i) {
        vol.at(i, j, k) = static_cast<float>(i + 10 * j + 100 * k);
      }
    }
  }
  // Voxel (i,j,k) sits at world coordinate 2*i/(n-1) - 1.
  for (std::size_t k = 0; k < 4; ++k) {
    for (std::size_t j = 0; j < 4; ++j) {
      for (std::size_t i = 0; i < 4; ++i) {
        const Vec3 p{2.0 * static_cast<double>(i) / 3.0 - 1.0,
                     2.0 * static_cast<double>(j) / 3.0 - 1.0,
                     2.0 * static_cast<double>(k) / 3.0 - 1.0};
        EXPECT_NEAR(vol.sample(p), vol.at(i, j, k), 1e-4);
      }
    }
  }
}

TEST(ScalarVolume, SampleInterpolatesLinearly) {
  ScalarVolume vol(2, 2, 2);
  // Field f = x (in voxel space): 0 at x=0 plane, 1 at x=1 plane.
  vol.at(1, 0, 0) = vol.at(1, 1, 0) = vol.at(1, 0, 1) = vol.at(1, 1, 1) = 1.0f;
  EXPECT_NEAR(vol.sample({0.0, 0.0, 0.0}), 0.5, 1e-6);
  EXPECT_NEAR(vol.sample({-0.5, 0.3, -0.7}), 0.25, 1e-6);
}

TEST(ScalarVolume, SampleClampsOutsideCube) {
  ScalarVolume vol(2, 2, 2);
  vol.at(1, 0, 0) = 1.0f;
  EXPECT_NEAR(vol.sample({5.0, -1.0, -1.0}), 1.0, 1e-6);
  EXPECT_NEAR(vol.sample({-5.0, -1.0, -1.0}), 0.0, 1e-6);
}

TEST(ScalarVolume, GradientPointsUphill) {
  ScalarVolume vol(16, 16, 16);
  for (std::size_t k = 0; k < 16; ++k) {
    for (std::size_t j = 0; j < 16; ++j) {
      for (std::size_t i = 0; i < 16; ++i) {
        vol.at(i, j, k) = static_cast<float>(i);  // increases with +x
      }
    }
  }
  const Vec3 g = vol.gradient({0.0, 0.0, 0.0});
  EXPECT_GT(g.x, 0.0);
  EXPECT_NEAR(g.y, 0.0, 1e-6);
  EXPECT_NEAR(g.z, 0.0, 1e-6);
}

TEST(ScalarVolume, NormalizeMapsToUnitRange) {
  ScalarVolume vol(2, 2, 2);
  vol.at(0, 0, 0) = -3.0f;
  vol.at(1, 1, 1) = 5.0f;
  vol.normalize();
  EXPECT_FLOAT_EQ(vol.min_value(), 0.0f);
  EXPECT_FLOAT_EQ(vol.max_value(), 1.0f);
  // Constant volume stays untouched.
  ScalarVolume flat(2, 2, 2);
  flat.normalize();
  EXPECT_FLOAT_EQ(flat.max_value(), 0.0f);
}

// --- synthetic -----------------------------------------------------------------

TEST(Synthetic, NegHipLikeIsDeterministicPerSeed) {
  const auto a = make_neghip_like(16, 42);
  const auto b = make_neghip_like(16, 42);
  const auto c = make_neghip_like(16, 43);
  EXPECT_EQ(a.data(), b.data());
  EXPECT_NE(a.data(), c.data());
}

TEST(Synthetic, NegHipLikeIsNormalizedAndStructured) {
  const auto vol = make_neghip_like(32);
  EXPECT_FLOAT_EQ(vol.min_value(), 0.0f);
  EXPECT_FLOAT_EQ(vol.max_value(), 1.0f);
  // A potential field has intermediate values everywhere, not a binary mask.
  std::size_t mid = 0;
  for (const float v : vol.data()) mid += (v > 0.2f && v < 0.8f) ? 1 : 0;
  EXPECT_GT(mid, vol.voxel_count() / 2);
}

TEST(Synthetic, DefaultSizeMatchesPaper) {
  const auto vol = make_neghip_like();
  EXPECT_EQ(vol.nx(), 64u);
  EXPECT_EQ(vol.ny(), 64u);
  EXPECT_EQ(vol.nz(), 64u);
}

TEST(Synthetic, FuelLikeIsSmooth) {
  const auto vol = make_fuel_like(32);
  // Neighbouring voxels differ by little in a Gaussian-blob field.
  double max_step = 0.0;
  for (std::size_t k = 0; k < 32; ++k) {
    for (std::size_t j = 0; j < 32; ++j) {
      for (std::size_t i = 1; i < 32; ++i) {
        max_step = std::max(
            max_step, std::abs(static_cast<double>(vol.at(i, j, k)) - vol.at(i - 1, j, k)));
      }
    }
  }
  EXPECT_LT(max_step, 0.2);
}

TEST(Synthetic, MarschnerLobbHasHighFrequencyContent) {
  const auto vol = make_marschner_lobb(40);
  double max_step = 0.0;
  for (std::size_t j = 0; j < 40; ++j) {
    for (std::size_t i = 1; i < 40; ++i) {
      max_step = std::max(
          max_step, std::abs(static_cast<double>(vol.at(i, j, 20)) - vol.at(i - 1, j, 20)));
    }
  }
  EXPECT_GT(max_step, 0.15);  // oscillates near Nyquist
}

// --- transfer functions -----------------------------------------------------------

TEST(Transfer, EmptyEvaluatesToZero) {
  const TransferFunction tf;
  const Rgba c = tf.evaluate(0.5);
  EXPECT_EQ(c.a, 0.0);
}

TEST(Transfer, InterpolatesBetweenControlPoints) {
  TransferFunction tf;
  tf.add(0.0, {0, 0, 0, 0});
  tf.add(1.0, {1, 0.5, 0, 1});
  const Rgba mid = tf.evaluate(0.5);
  EXPECT_NEAR(mid.r, 0.5, 1e-12);
  EXPECT_NEAR(mid.g, 0.25, 1e-12);
  EXPECT_NEAR(mid.a, 0.5, 1e-12);
}

TEST(Transfer, ClampsOutsideControlRange) {
  TransferFunction tf;
  tf.add(0.3, {0.1, 0.1, 0.1, 0.2});
  tf.add(0.7, {0.9, 0.9, 0.9, 0.8});
  EXPECT_NEAR(tf.evaluate(0.0).a, 0.2, 1e-12);
  EXPECT_NEAR(tf.evaluate(1.0).a, 0.8, 1e-12);
}

TEST(Transfer, PointsStaySortedRegardlessOfInsertionOrder) {
  TransferFunction tf;
  tf.add(0.9, {0, 0, 0, 0.9});
  tf.add(0.1, {0, 0, 0, 0.1});
  tf.add(0.5, {0, 0, 0, 0.5});
  ASSERT_EQ(tf.points().size(), 3u);
  EXPECT_LT(tf.points()[0].value, tf.points()[1].value);
  EXPECT_LT(tf.points()[1].value, tf.points()[2].value);
  EXPECT_NEAR(tf.evaluate(0.3).a, 0.3, 1e-12);
}

TEST(Transfer, NegHipPresetHasSemiTransparency) {
  const auto tf = TransferFunction::neghip_preset();
  // Volumetric rendering requires intermediate alphas, not a binary mask.
  bool found_semi = false;
  for (double v = 0.0; v <= 1.0; v += 0.01) {
    const double a = tf.evaluate(v).a;
    if (a > 0.05 && a < 0.95) found_semi = true;
  }
  EXPECT_TRUE(found_semi);
}

TEST(Transfer, OpaquePresetPeaksAtIso) {
  const auto tf = TransferFunction::opaque_preset(0.6, 0.05);
  EXPECT_GT(tf.evaluate(0.6).a, 0.9);
  EXPECT_LT(tf.evaluate(0.4).a, 0.05);
  EXPECT_LT(tf.evaluate(0.8).a, 0.05);
}

}  // namespace
}  // namespace lon::volume
