// Property-based tests: invariants checked over parameter sweeps and
// seeded random workloads (TEST_P / INSTANTIATE_TEST_SUITE_P).
#include <gtest/gtest.h>

#include <map>
#include <optional>

#include "compress/lfz.hpp"
#include "exnode/exnode.hpp"
#include "ibp/depot.hpp"
#include "lightfield/lattice.hpp"
#include "simnet/network.hpp"
#include "util/rng.hpp"

namespace lon {
namespace {

// --- lattice geometry invariants over many configurations ------------------------

struct LatticeParam {
  double step;
  int span;
};

class LatticeProperties : public ::testing::TestWithParam<LatticeParam> {
 protected:
  lightfield::SphericalLattice make() const {
    lightfield::LatticeConfig cfg;
    cfg.angular_step_deg = GetParam().step;
    cfg.view_set_span = GetParam().span;
    cfg.view_resolution = 8;
    return lightfield::SphericalLattice(cfg);
  }
};

TEST_P(LatticeProperties, EveryDirectionMapsToAValidViewSet) {
  const auto lattice = make();
  Rng rng(31);
  for (int i = 0; i < 2000; ++i) {
    const Spherical dir{rng.uniform(1e-6, kPi - 1e-6), rng.uniform(0.0, 2 * kPi)};
    const auto id = lattice.view_set_of(dir);
    EXPECT_TRUE(lattice.valid(id));
    const int q = lattice.quadrant_of(dir);
    EXPECT_GE(q, 0);
    EXPECT_LE(q, 3);
    for (const auto& target : lattice.prefetch_targets(id, q)) {
      EXPECT_TRUE(lattice.valid(target));
    }
  }
}

TEST_P(LatticeProperties, ViewSetsPartitionTheLattice) {
  const auto lattice = make();
  std::map<std::pair<int, int>, std::size_t> counts;
  for (std::size_t r = 0; r < lattice.rows(); ++r) {
    for (std::size_t c = 0; c < lattice.cols(); ++c) {
      const auto id = lattice.view_set_of(r, c);
      EXPECT_TRUE(lattice.valid(id));
      ++counts[{id.row, id.col}];
    }
  }
  // Every view set holds exactly span^2 samples; together they cover all.
  const auto span = static_cast<std::size_t>(GetParam().span);
  EXPECT_EQ(counts.size(), lattice.view_set_count());
  for (const auto& [id, n] : counts) EXPECT_EQ(n, span * span);
}

TEST_P(LatticeProperties, NeighborsAreMutual) {
  const auto lattice = make();
  for (const auto& id : lattice.all_view_sets()) {
    for (const auto& n : lattice.neighbors(id)) {
      const auto back = lattice.neighbors(n);
      EXPECT_NE(std::find(back.begin(), back.end(), id), back.end())
          << id.key() << " <-> " << n.key();
    }
  }
}

TEST_P(LatticeProperties, PrefetchTargetsAreNeighborsOfTheCenter) {
  const auto lattice = make();
  for (const auto& id : lattice.all_view_sets()) {
    const auto neighbors = lattice.neighbors(id);
    for (int q = 0; q < 4; ++q) {
      for (const auto& target : lattice.prefetch_targets(id, q)) {
        EXPECT_NE(std::find(neighbors.begin(), neighbors.end(), target),
                  neighbors.end());
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, LatticeProperties,
                         ::testing::Values(LatticeParam{15.0, 3}, LatticeParam{7.5, 3},
                                           LatticeParam{15.0, 2}, LatticeParam{22.5, 2},
                                           LatticeParam{5.0, 6}, LatticeParam{2.5, 6}));

// --- depot invariants under random operation sequences -----------------------------

class DepotFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DepotFuzz, AccountingStaysConsistent) {
  sim::Simulator sim;
  ibp::DepotConfig cfg;
  cfg.capacity_bytes = 50'000;
  cfg.max_alloc_bytes = 8'000;
  cfg.max_lease = 60 * kSecond;
  ibp::Depot depot(sim, "fuzz", cfg);
  Rng rng(GetParam());

  struct Live {
    ibp::CapabilitySet caps;
    std::uint64_t size;
    Bytes shadow;  // what we believe is stored
  };
  std::vector<Live> live;

  for (int op = 0; op < 3000; ++op) {
    switch (rng.below(6)) {
      case 0: {  // allocate
        ibp::AllocRequest req;
        req.size = 1 + rng.below(10'000);  // sometimes over the admission cap
        req.lease = kSecond * (1 + rng.below(100));
        req.type = rng.below(3) == 0 ? ibp::AllocType::kSoft : ibp::AllocType::kHard;
        const auto result = depot.allocate(req);
        if (result.status == ibp::IbpStatus::kOk) {
          live.push_back({result.caps, req.size, Bytes(req.size, 0)});
        } else {
          EXPECT_TRUE(result.status == ibp::IbpStatus::kRefused ||
                      result.status == ibp::IbpStatus::kNoCapacity);
        }
        break;
      }
      case 1: {  // store
        if (live.empty()) break;
        Live& target = live[rng.below(live.size())];
        const std::uint64_t offset = rng.below(target.size);
        const std::uint64_t len = 1 + rng.below(target.size - offset);
        Bytes data(len);
        for (auto& b : data) b = static_cast<std::uint8_t>(rng.next());
        if (depot.store(target.caps.write, offset, data) == ibp::IbpStatus::kOk) {
          std::copy(data.begin(), data.end(),
                    target.shadow.begin() + static_cast<long>(offset));
        }
        break;
      }
      case 2: {  // load and verify against the shadow copy
        if (live.empty()) break;
        Live& target = live[rng.below(live.size())];
        Bytes out;
        const auto status = depot.load(target.caps.read, 0, target.size, out);
        if (status == ibp::IbpStatus::kOk) {
          EXPECT_EQ(out, target.shadow);
        }
        break;
      }
      case 3: {  // release
        if (live.empty()) break;
        const std::size_t index = rng.below(live.size());
        (void)depot.release(live[index].caps.manage);
        live.erase(live.begin() + static_cast<long>(index));
        break;
      }
      case 4: {  // time passes; leases may lapse
        sim.run_until(sim.now() + kSecond * rng.below(20));
        break;
      }
      case 5: {  // sweep
        depot.sweep_expired();
        break;
      }
    }
    // Invariants after every operation.
    ASSERT_LE(depot.bytes_used(), cfg.capacity_bytes);
    ASSERT_EQ(depot.bytes_used() + depot.bytes_free(), cfg.capacity_bytes);
  }

  // Whatever is still alive must carry exactly the bytes we wrote, or have
  // been reclaimed for one of the legal reasons.
  for (const Live& entry : live) {
    Bytes out;
    const auto status = depot.load(entry.caps.read, 0, entry.size, out);
    if (status == ibp::IbpStatus::kOk) {
      EXPECT_EQ(out, entry.shadow);
    } else {
      EXPECT_TRUE(status == ibp::IbpStatus::kExpired ||
                  status == ibp::IbpStatus::kRevoked)
          << "unexpected: " << ibp::to_string(status);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DepotFuzz, ::testing::Values(1, 2, 3, 4, 5));

// --- network conservation laws -----------------------------------------------------

class NetworkConservation : public ::testing::TestWithParam<int> {};

TEST_P(NetworkConservation, RatesNeverExceedLinkCapacity) {
  sim::Simulator sim;
  sim::Network net(sim);
  const auto a = net.add_node("a");
  const auto b = net.add_node("b");
  constexpr double kCapacityBps = 80e6;  // 10 MB/s
  net.add_link(a, b, {kCapacityBps, kMillisecond, 0.0});

  Rng rng(static_cast<std::uint64_t>(GetParam()));
  std::vector<sim::FlowId> flows;
  int completed = 0;
  // A staggered mix of sizes, weights and stream counts.
  for (int i = 0; i < 25; ++i) {
    sim.after(kMillisecond * rng.below(2000), [&, i] {
      sim::TransferOptions opts;
      opts.weight = 0.5 + rng.uniform() * 3.0;
      opts.streams = 1 + static_cast<int>(rng.below(8));
      opts.window_bytes = 1 << 22;
      flows.push_back(net.start_transfer(
          a, b, 100'000 + rng.below(5'000'000), opts,
          [&](const sim::TransferResult&) { ++completed; }));
    });
  }
  // Interleave capacity checks with execution.
  for (int checks = 0; checks < 500 && !sim.idle(); ++checks) {
    sim.step();
    double total_rate = 0.0;
    for (const auto id : flows) total_rate += net.flow_rate(id);
    ASSERT_LE(total_rate, kCapacityBps / 8.0 * 1.0001)
        << "aggregate allocation exceeds the link";
  }
  sim.run();
  EXPECT_EQ(completed, 25);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetworkConservation, ::testing::Values(11, 22, 33));

// --- exnode completeness is equivalent to gap-free replica coverage ------------------

class ExNodeCoverage : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExNodeCoverage, CompleteIffNoGapsAndAllReplicated) {
  Rng rng(GetParam());
  const std::uint64_t length = 1000;
  // Random partition of [0, length) into extents.
  std::vector<std::uint64_t> cuts = {0, length};
  for (int i = 0; i < 6; ++i) cuts.push_back(1 + rng.below(length - 1));
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());

  // Randomly drop one extent or one extent's replicas.
  const bool drop_extent = rng.below(2) == 0;
  const std::size_t victim = rng.below(cuts.size() - 1);

  exnode::ExNode node(length);
  bool damaged = false;
  for (std::size_t i = 0; i + 1 < cuts.size(); ++i) {
    if (drop_extent && i == victim) {
      damaged = true;
      continue;
    }
    exnode::Extent extent;
    extent.offset = cuts[i];
    extent.length = cuts[i + 1] - cuts[i];
    if (!drop_extent && i == victim) {
      damaged = true;  // extent exists but has no replica
    } else {
      exnode::Replica rep;
      rep.read.depot = "d" + std::to_string(i % 3);
      rep.read.allocation = i;
      rep.read.key = 1;
      extent.replicas.push_back(rep);
    }
    node.add_extent(std::move(extent));
  }
  EXPECT_EQ(node.complete(), !damaged);
  // XML round trip preserves completeness verdict.
  EXPECT_EQ(exnode::ExNode::from_xml(node.to_xml()).complete(), !damaged);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExNodeCoverage,
                         ::testing::Values(7, 8, 9, 10, 11, 12, 13, 14));

// --- codec: compression never loses data across content types ------------------------

struct CodecParam {
  std::uint64_t seed;
  int kind;  // 0 random, 1 runs, 2 text-ish, 3 gradient
};

class CodecProperty : public ::testing::TestWithParam<CodecParam> {};

TEST_P(CodecProperty, RoundTripAndSizeSanity) {
  Rng rng(GetParam().seed);
  Bytes data(64'000);
  switch (GetParam().kind) {
    case 0:
      for (auto& b : data) b = static_cast<std::uint8_t>(rng.next());
      break;
    case 1: {
      std::uint8_t value = 0;
      for (auto& b : data) {
        if (rng.below(40) == 0) value = static_cast<std::uint8_t>(rng.next());
        b = value;
      }
      break;
    }
    case 2:
      for (auto& b : data) b = static_cast<std::uint8_t>('a' + rng.below(26));
      break;
    case 3:
      for (std::size_t i = 0; i < data.size(); ++i) {
        data[i] = static_cast<std::uint8_t>((i / 64) & 0xff);
      }
      break;
  }
  const Bytes packed = lfz::compress(data);
  EXPECT_EQ(lfz::decompress(packed), data);
  // Never catastrophically larger (stored fallback caps the overhead).
  EXPECT_LE(packed.size(), data.size() + 32);
  if (GetParam().kind == 1 || GetParam().kind == 3) {
    EXPECT_LT(packed.size(), data.size() / 4);  // runs/gradients must shrink
  }
}

INSTANTIATE_TEST_SUITE_P(Matrix, CodecProperty,
                         ::testing::Values(CodecParam{1, 0}, CodecParam{2, 0},
                                           CodecParam{3, 1}, CodecParam{4, 1},
                                           CodecParam{5, 2}, CodecParam{6, 2},
                                           CodecParam{7, 3}, CodecParam{8, 3}));

}  // namespace
}  // namespace lon
