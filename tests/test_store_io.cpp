// Tests for persistence layers: the on-disk light-field database store,
// volume file I/O, histogram tooling and the chunked lfz container.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "compress/lfz.hpp"
#include "lightfield/procedural.hpp"
#include "lightfield/store.hpp"
#include "util/rng.hpp"
#include "volume/histogram.hpp"
#include "volume/io.hpp"
#include "volume/synthetic.hpp"

namespace lon {
namespace {

namespace fs = std::filesystem;

/// Unique scratch directory per test, removed on teardown.
class ScratchDir {
 public:
  ScratchDir() {
    static int counter = 0;
    path_ = fs::temp_directory_path() / ("lonlf_test_" + std::to_string(::getpid()) +
                                         "_" + std::to_string(counter++));
    fs::create_directories(path_);
  }
  ~ScratchDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  [[nodiscard]] std::string str() const { return path_.string(); }
  [[nodiscard]] fs::path path() const { return path_; }

 private:
  fs::path path_;
};

lightfield::LatticeConfig small_config(std::size_t resolution = 24) {
  lightfield::LatticeConfig cfg;
  cfg.angular_step_deg = 22.5;  // 8 x 16 lattice, 4 x 8 view sets with span 2
  cfg.view_set_span = 2;
  cfg.view_resolution = resolution;
  return cfg;
}

// --- database store ------------------------------------------------------------------

TEST(DatabaseStore, CreatePutGetRoundTrip) {
  ScratchDir dir;
  lightfield::DatabaseStore store(dir.str() + "/lfd");
  store.create(small_config(), "negHip-like");
  EXPECT_TRUE(store.is_open());
  EXPECT_EQ(store.dataset_name(), "negHip-like");

  lightfield::ProceduralSource source(small_config());
  const lightfield::ViewSet vs = source.build({1, 2});
  store.put({1, 2}, vs.compress());

  const auto loaded = store.get_view_set({1, 2});
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, vs);
  EXPECT_FALSE(store.get({3, 3}).has_value());
  EXPECT_EQ(store.stored_ids().size(), 1u);
  EXPECT_FALSE(store.complete());
}

TEST(DatabaseStore, ReopenReadsManifestBack) {
  ScratchDir dir;
  {
    lightfield::DatabaseStore store(dir.str() + "/lfd");
    store.create(small_config(48), "d1");
    lightfield::ProceduralSource source(small_config(48));
    store.put({0, 0}, source.build_compressed({0, 0}));
  }
  lightfield::DatabaseStore reopened(dir.str() + "/lfd");
  reopened.open();
  EXPECT_EQ(reopened.dataset_name(), "d1");
  EXPECT_EQ(reopened.config().view_resolution, 48u);
  EXPECT_EQ(reopened.lattice().view_set_count(), 32u);
  EXPECT_TRUE(reopened.get({0, 0}).has_value());
}

TEST(DatabaseStore, BuildAllFillsEveryGap) {
  ScratchDir dir;
  lightfield::DatabaseStore store(dir.str() + "/lfd");
  store.create(small_config(16), "full");
  lightfield::ProceduralSource source(small_config(16));
  // Pre-store two, then build the rest.
  store.put({0, 0}, source.build_compressed({0, 0}));
  store.put({2, 5}, source.build_compressed({2, 5}));
  const std::size_t built = store.build_all(source);
  EXPECT_EQ(built, store.lattice().view_set_count() - 2);
  EXPECT_TRUE(store.complete());
  // Idempotent: nothing left to build.
  EXPECT_EQ(store.build_all(source), 0u);
}

TEST(DatabaseStore, ErrorsAreLoud) {
  ScratchDir dir;
  lightfield::DatabaseStore unopened(dir.str() + "/missing");
  EXPECT_THROW(unopened.open(), std::runtime_error);
  EXPECT_THROW((void)unopened.lattice(), std::runtime_error);
  EXPECT_THROW(lightfield::DatabaseStore(""), std::invalid_argument);

  lightfield::DatabaseStore store(dir.str() + "/lfd");
  store.create(small_config(), "x");
  EXPECT_THROW(store.put({99, 99}, Bytes{1}), std::out_of_range);
}

// --- volume I/O -----------------------------------------------------------------------

TEST(VolumeIo, RawU8RoundTripQuantizes) {
  ScratchDir dir;
  const auto vol = volume::make_neghip_like(16, 3);
  const std::string path = dir.str() + "/vol.raw";
  volume::save_raw_u8(vol, path);
  EXPECT_EQ(fs::file_size(path), 16u * 16 * 16);

  const auto back = volume::load_raw_u8(path, 16, 16, 16);
  double worst = 0.0;
  for (std::size_t i = 0; i < vol.data().size(); ++i) {
    worst = std::max(worst, std::abs(static_cast<double>(vol.data()[i]) -
                                     back.data()[i]));
  }
  EXPECT_LT(worst, 1.0 / 255.0 + 1e-6);  // 8-bit quantization error only
}

TEST(VolumeIo, RawU8SizeMismatchThrows) {
  ScratchDir dir;
  const std::string path = dir.str() + "/short.raw";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::fputs("abc", f);
  std::fclose(f);
  EXPECT_THROW(volume::load_raw_u8(path, 16, 16, 16), std::runtime_error);
  EXPECT_THROW(volume::load_raw_u8(dir.str() + "/none.raw", 2, 2, 2),
               std::runtime_error);
}

TEST(VolumeIo, LvolRoundTripIsExact) {
  ScratchDir dir;
  const auto vol = volume::make_fuel_like(12, 9);
  const std::string path = dir.str() + "/vol.lvol";
  volume::save_lvol(vol, path);
  const auto back = volume::load_lvol(path);
  EXPECT_EQ(back.nx(), 12u);
  EXPECT_EQ(back.data(), vol.data());
}

TEST(VolumeIo, LvolRejectsCorruptFiles) {
  ScratchDir dir;
  const std::string path = dir.str() + "/bad.lvol";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::fputs("not a volume", f);
  std::fclose(f);
  EXPECT_THROW(volume::load_lvol(path), std::runtime_error);
}

// --- histogram ---------------------------------------------------------------------------

TEST(Histogram, CountsAndPercentiles) {
  volume::ScalarVolume vol(4, 4, 4);
  // Half the voxels at 0.25, half at 0.75.
  for (std::size_t i = 0; i < vol.data().size(); ++i) {
    vol.data()[i] = i % 2 == 0 ? 0.25f : 0.75f;
  }
  const auto h = volume::compute_histogram(vol, 4);
  EXPECT_EQ(h.total, 64u);
  EXPECT_EQ(h.bins[1], 32u);  // [0.25, 0.5)
  EXPECT_EQ(h.bins[3], 32u);  // [0.75, 1)
  EXPECT_NEAR(h.percentile(0.25), 0.375, 1e-9);  // within bin 1
  EXPECT_NEAR(h.percentile(0.99), 0.875, 1e-9);  // within bin 3
  EXPECT_THROW(volume::compute_histogram(vol, 0), std::invalid_argument);
}

TEST(Histogram, ModeFindsBackground) {
  volume::ScalarVolume vol(8, 8, 8);
  for (auto& v : vol.data()) v = 0.5f;  // uniform background...
  vol.at(0, 0, 0) = 0.9f;               // ...with a lone feature
  const auto h = volume::compute_histogram(vol, 10);
  EXPECT_EQ(h.mode_bin(), 5u);
  EXPECT_NEAR(h.bin_center(h.mode_bin()), 0.55, 1e-9);
}

TEST(Histogram, SuggestedTransferFunctionSuppressesBackground) {
  const auto vol = volume::make_neghip_like(32);
  const auto tf = volume::suggest_transfer_function(vol);
  const auto h = volume::compute_histogram(vol, 64);
  const double background = h.bin_center(h.mode_bin());
  // Transparent at the background, visible toward the tails.
  EXPECT_LT(tf.evaluate(background).a, 0.05);
  EXPECT_GT(tf.evaluate(h.percentile(0.005)).a, 0.3);
  EXPECT_GT(tf.evaluate(h.percentile(0.999)).a, 0.3);
}

// --- chunked lfz ---------------------------------------------------------------------------

TEST(ChunkedLfz, RoundTripWithAndWithoutPool) {
  Rng rng(5);
  Bytes data(3'000'000);
  std::uint8_t value = 0;
  for (auto& b : data) {
    if (rng.below(50) == 0) value = static_cast<std::uint8_t>(rng.next());
    b = value;
  }
  const Bytes packed = lfz::compress_chunked(data, 512 * 1024);
  EXPECT_TRUE(lfz::is_chunked(packed));
  EXPECT_FALSE(lfz::is_chunked(lfz::compress(Bytes{1, 2, 3})));
  EXPECT_EQ(lfz::decompress_chunked(packed), data);

  ThreadPool pool(4);
  const Bytes packed_par = lfz::compress_chunked(data, 512 * 1024, {}, &pool);
  EXPECT_EQ(packed_par, packed);  // parallelism never changes the bytes
  EXPECT_EQ(lfz::decompress_chunked(packed_par, &pool), data);
}

TEST(ChunkedLfz, EmptyAndSingleChunk) {
  EXPECT_TRUE(lfz::decompress_chunked(lfz::compress_chunked({}, 1024)).empty());
  const Bytes tiny = {1, 2, 3};
  EXPECT_EQ(lfz::decompress_chunked(lfz::compress_chunked(tiny, 1024)), tiny);
}

TEST(ChunkedLfz, CorruptionIsDetectedAcrossChunkBoundaries) {
  Bytes data(200'000, 0x42);
  Bytes packed = lfz::compress_chunked(data, 64 * 1024);
  packed[packed.size() / 2] ^= 0xff;  // damage some interior chunk
  EXPECT_THROW(lfz::decompress_chunked(packed), DecodeError);
  EXPECT_THROW(lfz::compress_chunked(data, 0), std::invalid_argument);
  EXPECT_THROW(lfz::decompress_chunked(Bytes{1, 2, 3, 4, 5}), DecodeError);
}

TEST(ChunkedLfz, RatioCostOfChunkingIsModest) {
  Rng rng(8);
  Bytes data(2'000'000);
  std::uint8_t value = 0;
  for (auto& b : data) {
    if (rng.below(30) == 0) value = static_cast<std::uint8_t>(rng.next());
    b = value;
  }
  const std::size_t whole = lfz::compress(data).size();
  const std::size_t chunked = lfz::compress_chunked(data, 256 * 1024).size();
  EXPECT_LT(static_cast<double>(chunked), 1.15 * static_cast<double>(whole));
}

}  // namespace
}  // namespace lon
