// Cross-module integration tests: failure injection (depots vanishing
// mid-session, lease expiry, soft-allocation revocation under pressure),
// L-Bone-driven staging discovery, and multi-client service — the paper's
// "a client agent can serve multiple clients" and its future-work question
// of scalability in the number of users.
#include <gtest/gtest.h>

#include <memory>
#include <optional>

#include "lbone/lbone.hpp"
#include "lightfield/procedural.hpp"
#include "session/publisher.hpp"
#include "streaming/client.hpp"
#include "streaming/client_agent.hpp"
#include "streaming/dvs.hpp"

namespace lon {
namespace {

using lightfield::ViewSetId;
using streaming::AccessClass;

lightfield::LatticeConfig small_config(std::size_t resolution = 24) {
  lightfield::LatticeConfig cfg;
  cfg.angular_step_deg = 15.0;
  cfg.view_set_span = 3;  // 4 x 8 = 32 view sets
  cfg.view_resolution = resolution;
  return cfg;
}

/// A full two-sided world: LAN (client, agent, 2 depots) + WAN (2 depots,
/// DVS, server), with the database published onto the WAN depots.
class WorldTest : public ::testing::Test {
 protected:
  WorldTest()
      : net_(sim_),
        fabric_(sim_, net_),
        lors_(sim_, net_, fabric_),
        lbone_(net_, fabric_),
        source_(small_config()) {
    lan_switch_ = net_.add_node("lan-switch");
    client_node_ = net_.add_node("client");
    client2_node_ = net_.add_node("client2");
    agent_node_ = net_.add_node("agent");
    const sim::LinkConfig lan{1e9, 50 * kMicrosecond, 0.0};
    net_.add_link(client_node_, lan_switch_, lan);
    net_.add_link(client2_node_, lan_switch_, lan);
    net_.add_link(agent_node_, lan_switch_, lan);
    for (int i = 0; i < 2; ++i) {
      const std::string name = "lan-" + std::to_string(i);
      const sim::NodeId node = net_.add_node(name);
      net_.add_link(node, lan_switch_, lan);
      add_depot(node, name, 1ull << 30);
      lan_depots_.push_back(name);
    }
    wan_router_ = net_.add_node("wan-router");
    net_.add_link(lan_switch_, wan_router_, {100e6, 35 * kMillisecond, 0.0});
    for (int i = 0; i < 2; ++i) {
      const std::string name = "ca-" + std::to_string(i);
      const sim::NodeId node = net_.add_node(name);
      net_.add_link(node, wan_router_, {1e9, kMillisecond, 0.0});
      add_depot(node, name, 1ull << 30);
      wan_depots_.push_back(name);
    }
    dvs_node_ = net_.add_node("dvs");
    net_.add_link(dvs_node_, wan_router_, {1e9, kMillisecond, 0.0});
    server_node_ = net_.add_node("server");
    net_.add_link(server_node_, wan_router_, {1e9, kMillisecond, 0.0});
    dvs_ = std::make_unique<streaming::DvsServer>(sim_, net_, dvs_node_,
                                                  source_.lattice());
  }

  void add_depot(sim::NodeId node, const std::string& name, std::uint64_t capacity) {
    ibp::DepotConfig cfg;
    cfg.capacity_bytes = capacity;
    cfg.max_alloc_bytes = capacity;
    fabric_.add_depot(node, name, cfg);
    lbone_.register_depot(name);
  }

  session::PublishResult publish_all(int replicas = 1) {
    session::PublishOptions options;
    options.depots = wan_depots_;
    options.replicas = replicas;
    return session::publish_database(sim_, lors_, *dvs_, source_, server_node_, options);
  }

  std::unique_ptr<streaming::ClientAgent> make_agent(bool staging) {
    streaming::ClientAgentConfig cfg;
    cfg.staging = staging;
    cfg.lan_depots = lan_depots_;
    cfg.prefetch = false;  // keep traces easy to reason about
    return std::make_unique<streaming::ClientAgent>(sim_, net_, fabric_, lors_, *dvs_,
                                                    source_.lattice(), agent_node_, cfg);
  }

  sim::Simulator sim_;
  sim::Network net_;
  ibp::Fabric fabric_;
  lors::Lors lors_;
  lbone::Directory lbone_;
  lightfield::ProceduralSource source_;
  std::unique_ptr<streaming::DvsServer> dvs_;
  sim::NodeId lan_switch_, client_node_, client2_node_, agent_node_, wan_router_,
      dvs_node_, server_node_;
  std::vector<std::string> lan_depots_, wan_depots_;
};

TEST_F(WorldTest, DownloadSurvivesDepotFailureWithReplicas) {
  ASSERT_EQ(publish_all(/*replicas=*/2).failed, 0u);
  auto agent = make_agent(false);

  // One of the two WAN depots dies before the first access.
  fabric_.set_offline("ca-0", true);
  Bytes received;
  agent->request_view_set({1, 4}, [&](const Bytes& data, AccessClass, SimDuration) {
    received = data;
  });
  sim_.run();
  ASSERT_FALSE(received.empty());
  EXPECT_EQ(lightfield::ViewSet::decompress(received), source_.build({1, 4}));
}

TEST_F(WorldTest, DownloadFailsCleanlyWithoutReplicas) {
  ASSERT_EQ(publish_all(/*replicas=*/1).failed, 0u);
  auto agent = make_agent(false);
  // Without replication, killing both depots makes some view set unreachable.
  fabric_.set_offline("ca-0", true);
  fabric_.set_offline("ca-1", true);
  std::optional<Bytes> received;
  agent->request_view_set({1, 4}, [&](const Bytes& data, AccessClass, SimDuration) {
    received = data;
  });
  sim_.run();
  ASSERT_TRUE(received.has_value());
  EXPECT_TRUE(received->empty());  // failure reported, no hang

  // The depot comes back; the next request succeeds (IBP data survives
  // transient unavailability).
  fabric_.set_offline("ca-0", false);
  fabric_.set_offline("ca-1", false);
  received.reset();
  agent->request_view_set({1, 4}, [&](const Bytes& data, AccessClass, SimDuration) {
    received = data;
  });
  sim_.run();
  ASSERT_TRUE(received.has_value());
  EXPECT_FALSE(received->empty());
}

TEST_F(WorldTest, StagingSurvivesLanDepotFailure) {
  ASSERT_EQ(publish_all().failed, 0u);
  auto agent = make_agent(true);
  fabric_.set_offline("lan-0", true);  // half the staging targets are dead
  agent->start_staging();
  sim_.run();
  // Every view set routed to the dead depot failed; the rest staged fine.
  EXPECT_GT(agent->stats().staged, 0u);
  EXPECT_GT(agent->stats().staging_failures, 0u);
  EXPECT_EQ(agent->stats().staged + agent->stats().staging_failures,
            source_.lattice().view_set_count());
}

TEST_F(WorldTest, ExpiredStagedLeasesFailOverToWan) {
  ASSERT_EQ(publish_all().failed, 0u);
  auto agent = make_agent(true);
  // Short staged leases: they lapse long before the WAN uploads' 24 h leases.
  {
    streaming::ClientAgentConfig cfg;
    cfg.staging = true;
    cfg.lan_depots = lan_depots_;
    cfg.prefetch = false;
    cfg.staging_lease = 600 * kSecond;
    agent = std::make_unique<streaming::ClientAgent>(sim_, net_, fabric_, lors_, *dvs_,
                                                     source_.lattice(), agent_node_, cfg);
  }
  agent->start_staging();
  sim_.run();
  ASSERT_TRUE(agent->staging_complete());

  // Let every staged (soft, leased) allocation expire. The WAN replicas in
  // the same exNodes keep the data reachable.
  sim_.run_until(sim_.now() + 2 * agent->config().staging_lease);
  for (const auto& name : lan_depots_) {
    fabric_.find_depot(name)->sweep_expired();
    EXPECT_EQ(fabric_.find_depot(name)->allocation_count(), 0u);
  }

  Bytes received;
  std::optional<AccessClass> cls;
  agent->request_view_set({2, 3}, [&](const Bytes& data, AccessClass c, SimDuration) {
    received = data;
    cls = c;
  });
  sim_.run();
  ASSERT_FALSE(received.empty());
  EXPECT_EQ(lightfield::ViewSet::decompress(received), source_.build({2, 3}));
}

TEST_F(WorldTest, LbonePicksNearestStagingDepots) {
  ASSERT_EQ(publish_all().failed, 0u);
  streaming::ClientAgentConfig cfg;
  cfg.prefetch = false;
  streaming::ClientAgent agent(sim_, net_, fabric_, lors_, *dvs_, source_.lattice(),
                               agent_node_, cfg);

  // No depots configured: discovery through the L-Bone must find the two
  // LAN depots (closest) rather than the WAN ones.
  const std::size_t picked =
      agent.start_staging(lbone_, 2, /*database_bytes=*/10 << 20, 3600 * kSecond);
  EXPECT_EQ(picked, 2u);
  sim_.run();
  EXPECT_TRUE(agent.staging_complete());
  EXPECT_GT(fabric_.find_depot("lan-0")->allocation_count(), 0u);
  EXPECT_GT(fabric_.find_depot("lan-1")->allocation_count(), 0u);
}

TEST_F(WorldTest, AgentServesMultipleClients) {
  ASSERT_EQ(publish_all().failed, 0u);
  auto agent = make_agent(false);
  streaming::ClientConfig ccfg;
  ccfg.display_resolution = 24;
  streaming::Client alice(sim_, net_, small_config(), client_node_, *agent, ccfg);
  streaming::Client bob(sim_, net_, small_config(), client2_node_, *agent, ccfg);

  const Spherical dir = source_.lattice().view_set_center({1, 3});
  bool alice_ready = false;
  alice.set_view(dir, [&](bool ok) { alice_ready = ok; });
  sim_.run();
  ASSERT_TRUE(alice_ready);
  ASSERT_EQ(alice.accesses().size(), 1u);
  EXPECT_EQ(alice.accesses().front().cls, AccessClass::kWan);

  // Bob asks for the view Alice already pulled: the shared agent cache makes
  // it a hit — the mechanism that lets one agent serve a mobile user group.
  bool bob_ready = false;
  bob.set_view(dir, [&](bool ok) { bob_ready = ok; });
  sim_.run();
  ASSERT_TRUE(bob_ready);
  ASSERT_EQ(bob.accesses().size(), 1u);
  EXPECT_EQ(bob.accesses().front().cls, AccessClass::kAgentHit);
  EXPECT_LT(bob.accesses().front().total(), alice.accesses().front().total());
}

TEST_F(WorldTest, ConcurrentClientsShareInflightFetch) {
  ASSERT_EQ(publish_all().failed, 0u);
  auto agent = make_agent(false);
  streaming::ClientConfig ccfg;
  ccfg.display_resolution = 24;
  streaming::Client alice(sim_, net_, small_config(), client_node_, *agent, ccfg);
  streaming::Client bob(sim_, net_, small_config(), client2_node_, *agent, ccfg);

  const Spherical dir = source_.lattice().view_set_center({2, 5});
  bool a_ready = false, b_ready = false;
  alice.set_view(dir, [&](bool ok) { a_ready = ok; });
  bob.set_view(dir, [&](bool ok) { b_ready = ok; });
  sim_.run();
  EXPECT_TRUE(a_ready);
  EXPECT_TRUE(b_ready);
  // Exactly one WAN fetch happened; the second demand joined it.
  EXPECT_EQ(agent->stats().wan_accesses + agent->stats().hits, 2u);
  EXPECT_LE(agent->stats().wan_accesses, 2u);
  EXPECT_EQ(fabric_.find_depot("ca-0")->stats().bytes_loaded +
                fabric_.find_depot("ca-1")->stats().bytes_loaded,
            agent->cache().bytes_used());
}

TEST_F(WorldTest, SoftStagedDataRevokedUnderPressureStaysReachable) {
  ASSERT_EQ(publish_all().failed, 0u);
  auto agent = make_agent(true);
  agent->start_staging();
  sim_.run();
  ASSERT_TRUE(agent->staging_complete());

  // A competing tenant grabs most of a LAN depot with a hard allocation,
  // revoking some of the (soft) staged view sets.
  ibp::Depot* lan0 = fabric_.find_depot("lan-0");
  const std::uint64_t grab = lan0->bytes_free() + lan0->bytes_used() / 2;
  const auto result =
      lan0->allocate({grab, 3600 * kSecond, ibp::AllocType::kHard});
  ASSERT_EQ(result.status, ibp::IbpStatus::kOk);
  EXPECT_GT(lan0->stats().soft_revoked, 0u);

  // Every view set is still obtainable: revoked LAN replicas fail over to
  // the WAN replicas recorded in the same exNode.
  for (const auto& id : source_.lattice().all_view_sets()) {
    Bytes received;
    agent->request_view_set(id, [&](const Bytes& data, AccessClass, SimDuration) {
      received = data;
    });
    sim_.run();
    ASSERT_FALSE(received.empty()) << "lost view set " << id.key();
  }
}

}  // namespace
}  // namespace lon
