// Concurrency tests for the parallel demand path (ISSUE 3).
//
// Covers, in one place:
//   - pooled LoRS stripe download is byte-for-byte AND virtual-time identical
//     to the serial path (the determinism contract from DESIGN.md section 10);
//   - the decompress pipeline drains cleanly: full overlap, partial stripes,
//     stripes that bypassed on_stripe (retried blocks), corrupt chunks, and
//     non-chunked payloads all resolve to the documented outcomes;
//   - ViewSetCache and obs::Registry survive a thread-pool hammer with exact
//     invariants (the satellite-4 regression tests);
//   - batched builders (RaycastBuilder across views, Renderer across rows)
//     produce pixels identical to their serial counterparts;
//   - the multi-client session driver converges with no deadlock under a
//     fault plan, and its virtual-time results do not depend on whether a
//     worker pool is attached.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <optional>
#include <sstream>
#include <vector>

#include "compress/lfz.hpp"
#include "lightfield/builder.hpp"
#include "lightfield/procedural.hpp"
#include "lightfield/renderer.hpp"
#include "lors/lors.hpp"
#include "obs/metrics.hpp"
#include "session/experiment.hpp"
#include "streaming/cache.hpp"
#include "streaming/pipeline.hpp"
#include "util/thread_pool.hpp"
#include "volume/synthetic.hpp"
#include "volume/transfer.hpp"

namespace lon {
namespace {

// --- pooled LoRS download vs serial ------------------------------------------------

/// A self-contained striped-storage world (same topology as test_lors), built
/// as a plain struct so one test can stand up two independent copies and
/// compare their virtual timelines.
struct StripedHarness {
  StripedHarness() : net(sim), fabric(sim, net), lors(sim, net, fabric) {
    client = net.add_node("client");
    const sim::NodeId wan_router = net.add_node("wan-router");
    net.add_link(client, wan_router, {100e6, 35 * kMillisecond, 0.0});
    for (int i = 0; i < 3; ++i) {
      const std::string name = "ca-" + std::to_string(i);
      const sim::NodeId node = net.add_node(name + "-node");
      net.add_link(wan_router, node, {1e9, kMillisecond, 0.0});
      ibp::DepotConfig cfg;
      cfg.capacity_bytes = 1 << 30;
      cfg.max_alloc_bytes = 1 << 28;
      cfg.max_lease = 24 * 3600 * kSecond;
      fabric.add_depot(node, name, cfg);
      depots.push_back(name);
    }
  }

  exnode::ExNode upload(const Bytes& data, std::uint64_t block_bytes, int replicas) {
    lors::UploadOptions opts;
    opts.depots = depots;
    opts.block_bytes = block_bytes;
    opts.replicas = replicas;
    std::optional<lors::UploadResult> result;
    lors.upload_async(client, data, opts, [&](const lors::UploadResult& r) { result = r; });
    sim.run();
    EXPECT_TRUE(result.has_value());
    EXPECT_EQ(result->status, lors::LorsStatus::kOk);
    return result->exnode;
  }

  /// Runs one download to completion; returns the result and how long it
  /// took in virtual time.
  std::pair<lors::DownloadResult, SimDuration> download(const exnode::ExNode& node,
                                                        lors::DownloadOptions opts) {
    const SimTime start = sim.now();
    std::optional<lors::DownloadResult> result;
    SimTime done = 0;
    lors.download_async(client, node, opts, [&](const lors::DownloadResult& r) {
      result = r;
      done = sim.now();
    });
    sim.run();
    EXPECT_TRUE(result.has_value());
    return {*result, done - start};
  }

  sim::Simulator sim;
  sim::Network net;
  ibp::Fabric fabric;
  lors::Lors lors;
  sim::NodeId client = 0;
  std::vector<std::string> depots;
};

Bytes make_payload(std::size_t size) {
  Bytes data(size);
  for (std::size_t i = 0; i < size; ++i) {
    data[i] = static_cast<std::uint8_t>((i * 2654435761u) >> 24);
  }
  return data;
}

TEST(ParallelDownload, PooledVerificationMatchesSerialExactly) {
  const Bytes data = make_payload(777'777);  // not block-aligned on purpose
  ThreadPool pool(4);

  StripedHarness serial;
  StripedHarness pooled;
  const exnode::ExNode node_serial = serial.upload(data, 64 * 1024, 2);
  const exnode::ExNode node_pooled = pooled.upload(data, 64 * 1024, 2);

  lors::DownloadOptions serial_opts;
  serial_opts.verify_checksums = true;
  const auto [serial_result, serial_time] = serial.download(node_serial, serial_opts);

  lors::DownloadOptions pooled_opts;
  pooled_opts.verify_checksums = true;
  pooled_opts.pool = &pool;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> stripes;
  pooled_opts.on_stripe = [&](const lors::StripeEvent& event) {
    stripes.emplace_back(event.offset, event.length);
  };
  const auto [pooled_result, pooled_time] = pooled.download(node_pooled, pooled_opts);

  ASSERT_EQ(serial_result.status, lors::LorsStatus::kOk);
  ASSERT_EQ(pooled_result.status, lors::LorsStatus::kOk);
  // Byte-for-byte identical assembly...
  EXPECT_EQ(*pooled_result.data, data);
  EXPECT_EQ(*pooled_result.data, *serial_result.data);
  // ...same counters, and the same virtual completion time: the pool only
  // moves real CPU work, never virtual time.
  EXPECT_EQ(pooled_result.blocks_total, serial_result.blocks_total);
  EXPECT_EQ(pooled_result.replica_failovers, serial_result.replica_failovers);
  EXPECT_EQ(pooled_time, serial_time);

  // The stripe events cover the payload exactly once, no gaps, no overlap.
  std::sort(stripes.begin(), stripes.end());
  ASSERT_EQ(stripes.size(), pooled_result.blocks_total);
  std::uint64_t expected_offset = 0;
  for (const auto& [offset, length] : stripes) {
    EXPECT_EQ(offset, expected_offset);
    expected_offset = offset + length;
  }
  EXPECT_EQ(expected_offset, data.size());
}

// --- decompress pipeline -----------------------------------------------------------

/// Something lfz can actually compress (repeating structure), unlike random
/// filler.
Bytes make_compressible(std::size_t size) {
  Bytes data(size);
  for (std::size_t i = 0; i < size; ++i) {
    data[i] = static_cast<std::uint8_t>((i / 97) % 251);
  }
  return data;
}

/// Feeds `container` to a pipeline in `stripe_bytes` slices at 1ms virtual
/// intervals, as a LoRS download would.
void feed_stripes(streaming::DecompressPipeline& pipeline, const Bytes& container,
                  std::uint64_t stripe_bytes, std::size_t count_limit = SIZE_MAX) {
  std::size_t fed = 0;
  for (std::uint64_t offset = 0; offset < container.size() && fed < count_limit;
       offset += stripe_bytes, ++fed) {
    lors::StripeEvent event;
    event.offset = offset;
    event.length = std::min<std::uint64_t>(stripe_bytes, container.size() - offset);
    event.buffer = &container;
    pipeline.on_stripe(event, static_cast<SimTime>(fed + 1) * kMillisecond);
  }
}

TEST(DecompressPipeline, OverlapsChunkDecodesWithStripeArrival) {
  const Bytes original = make_compressible(300'000);
  const std::uint64_t chunk_bytes = 32 * 1024;
  const Bytes container = lfz::compress_chunked(original, chunk_bytes);
  const std::size_t expected_chunks = (original.size() + chunk_bytes - 1) / chunk_bytes;

  ThreadPool pool(4);
  streaming::DecompressPipeline pipeline({.pool = &pool, .max_inflight = 4});
  feed_stripes(pipeline, container, 20'000);

  streaming::DecompressPipeline::Report report;
  const auto out = pipeline.finish(container, 100 * kMillisecond, report);
  ASSERT_TRUE(out != nullptr);
  EXPECT_EQ(*out, original);
  EXPECT_TRUE(report.chunked);
  EXPECT_TRUE(report.ok);
  EXPECT_EQ(report.chunks_total, expected_chunks);
  // Every stripe went through on_stripe, so every chunk decode overlapped.
  EXPECT_EQ(report.chunks_overlapped, expected_chunks);
  EXPECT_GT(report.last_stripe_at, 0);

  // Chunk arrival times are nondecreasing — the property the deterministic
  // replay in residual_decompress_time depends on.
  ASSERT_EQ(report.chunks.size(), expected_chunks);
  for (std::size_t i = 1; i < report.chunks.size(); ++i) {
    EXPECT_GE(report.chunks[i].available_at, report.chunks[i - 1].available_at);
  }

  // The replay: an infinitely fast decoder hides everything; a realistic one
  // leaves a residual tail no larger than the full serial cost.
  EXPECT_EQ(streaming::residual_decompress_time(report, 1e18, 4), 0);
  std::uint64_t original_bytes = 0;
  for (const auto& c : report.chunks) original_bytes += c.original_bytes;
  EXPECT_EQ(original_bytes, original.size());
  const double rate = 30e6;
  const SimDuration serial_cost =
      from_seconds(static_cast<double>(original_bytes) / rate);
  const SimDuration residual = streaming::residual_decompress_time(report, rate, 4);
  EXPECT_LE(residual, serial_cost);
}

TEST(DecompressPipeline, DrainsWhenStripesBypassedTheCallback) {
  // Retried/failover blocks never fire on_stripe; finish() must pick them up
  // from the completed buffer. Feed only the first three stripes.
  const Bytes original = make_compressible(200'000);
  const Bytes container = lfz::compress_chunked(original, 16 * 1024);

  ThreadPool pool(2);
  streaming::DecompressPipeline pipeline({.pool = &pool});
  // The compressible pattern packs tightly, so keep the fed prefix tiny —
  // just past the header and the first chunk or two.
  feed_stripes(pipeline, container, 256, /*count_limit=*/2);

  streaming::DecompressPipeline::Report report;
  const auto out = pipeline.finish(container, 50 * kMillisecond, report);
  ASSERT_TRUE(out != nullptr);
  EXPECT_EQ(*out, original);
  EXPECT_TRUE(report.ok);
  EXPECT_LT(report.chunks_overlapped, report.chunks_total);

  // The degenerate case: no stripe events at all (a caller that never wired
  // the hook) still decodes, with zero overlap.
  streaming::DecompressPipeline cold({.pool = &pool});
  streaming::DecompressPipeline::Report cold_report;
  const auto cold_out = cold.finish(container, kMillisecond, cold_report);
  ASSERT_TRUE(cold_out != nullptr);
  EXPECT_EQ(*cold_out, original);
  EXPECT_EQ(cold_report.chunks_overlapped, 0u);
}

TEST(DecompressPipeline, FallsBackOnCorruptChunkAndNonChunkedPayload) {
  const Bytes original = make_compressible(120'000);
  Bytes container = lfz::compress_chunked(original, 16 * 1024);

  // Flip the first body byte of the first chunk (right after the 16-byte
  // LFZC header and the 4-byte length prefix): the chunk's lfz magic breaks
  // and its decode throws.
  container[16 + 4] ^= 0xff;
  ThreadPool pool(2);
  streaming::DecompressPipeline corrupt({.pool = &pool});
  feed_stripes(corrupt, container, 25'000);
  streaming::DecompressPipeline::Report report;
  EXPECT_EQ(corrupt.finish(container, 50 * kMillisecond, report), nullptr);
  EXPECT_TRUE(report.chunked);
  EXPECT_FALSE(report.ok);

  // A plain (non-chunked) lfz payload: the pipeline declines and reports it,
  // so the caller charges the ordinary whole-buffer decompress.
  const Bytes plain = lfz::compress(original);
  streaming::DecompressPipeline passthrough({.pool = &pool});
  feed_stripes(passthrough, plain, 25'000);
  streaming::DecompressPipeline::Report plain_report;
  EXPECT_EQ(passthrough.finish(plain, 50 * kMillisecond, plain_report), nullptr);
  EXPECT_FALSE(plain_report.chunked);
}

TEST(DecompressPipeline, AbortDrainsInflightAndIgnoresLateStripes) {
  // A failed download abandons its pipeline mid-transfer: abort() must wait
  // out the chunk decodes already in flight, release their buffers, and turn
  // straggling stripe callbacks from the dying transfer into no-ops.
  const Bytes original = make_compressible(300'000);
  const Bytes container = lfz::compress_chunked(original, 32 * 1024);

  ThreadPool pool(4);
  streaming::DecompressPipeline pipeline({.pool = &pool, .max_inflight = 4});
  feed_stripes(pipeline, container, 20'000);
  const std::size_t drained = pipeline.abort();
  EXPECT_GT(drained, 0u);  // decodes were in flight and got reaped
  // Stripes that were still queued when the attempt died land on a dead
  // pipeline: no new decodes start, so a second abort finds nothing.
  feed_stripes(pipeline, container, 20'000);
  EXPECT_EQ(pipeline.abort(), 0u);
}

// --- thread-safe cache and registry (satellite 4 regressions) ----------------------

TEST(ConcurrentCache, HammeredFromPoolKeepsInvariants) {
  constexpr std::uint64_t kBudget = 64 * 1024;
  streaming::ViewSetCache cache(kBudget);
  ThreadPool pool(4);

  constexpr int kLanes = 8;
  constexpr int kIdsPerLane = 16;
  constexpr int kIters = 500;
  pool.parallel_for(0, kLanes, [&](std::size_t lane) {
    for (int i = 0; i < kIters; ++i) {
      const lightfield::ViewSetId id{static_cast<int>(lane), i % kIdsPerLane};
      cache.put(id, Bytes(1024 + 64 * lane, static_cast<std::uint8_t>(lane)));
      // A reader holds shared ownership across concurrent eviction; the
      // payload must stay intact even if it just fell out of the cache.
      if (const auto data = cache.get(id)) {
        EXPECT_EQ(data->size(), 1024 + 64 * lane);
        EXPECT_EQ((*data)[0], static_cast<std::uint8_t>(lane));
      }
      (void)cache.contains(id);
      EXPECT_LE(cache.bytes_used(), kBudget);
    }
  }, /*chunks=*/kLanes);

  // Post-hammer accounting: bytes_used equals the sum of the entries still
  // resident, and the budget held throughout.
  std::uint64_t resident = 0;
  std::size_t entries = 0;
  for (int lane = 0; lane < kLanes; ++lane) {
    for (int i = 0; i < kIdsPerLane; ++i) {
      if (const auto data = cache.get({lane, i})) {
        resident += data->size();
        ++entries;
      }
    }
  }
  EXPECT_EQ(resident, cache.bytes_used());
  EXPECT_EQ(entries, cache.size());
  EXPECT_LE(cache.bytes_used(), kBudget);
  EXPECT_GT(cache.evictions(), 0u);
}

TEST(ConcurrentRegistry, CountersAndHistogramsAreExactUnderContention) {
  obs::Registry registry;
  ThreadPool pool(4);
  constexpr int kLanes = 8;
  constexpr int kIters = 5000;

  std::vector<std::future<void>> lanes;
  lanes.reserve(kLanes);
  for (int lane = 0; lane < kLanes; ++lane) {
    lanes.push_back(pool.submit([&registry, lane] {
      // Half the lanes share each label set, so creation and increment race.
      const std::string labels = "lane=" + std::to_string(lane % 4);
      for (int i = 0; i < kIters; ++i) {
        registry.counter("hammer.count", labels).inc();
        registry.histogram("hammer.latency", labels).record((i % 100) * kMicrosecond);
      }
    }));
  }
  // Exports walk the instrument maps while writers are mid-flight — this is
  // the write_jsonl locking regression.
  for (int i = 0; i < 50; ++i) {
    std::ostringstream sink;
    registry.write_jsonl(sink);
  }
  for (auto& lane : lanes) lane.get();
  std::ostringstream sink;
  registry.write_jsonl(sink);
  EXPECT_FALSE(sink.str().empty());

  EXPECT_EQ(registry.counter_total("hammer.count"),
            static_cast<std::uint64_t>(kLanes) * kIters);
  std::uint64_t recorded = 0;
  for (const auto& [labels, histogram] : registry.histograms_named("hammer.latency")) {
    recorded += histogram->count();
  }
  EXPECT_EQ(recorded, static_cast<std::uint64_t>(kLanes) * kIters);
}

// --- batched builders match serial pixels ------------------------------------------

lightfield::LatticeConfig tiny_lattice(std::size_t resolution) {
  lightfield::LatticeConfig cfg;
  cfg.angular_step_deg = 15.0;  // 12 x 24 lattice, 4 x 8 view sets
  cfg.view_set_span = 3;
  cfg.view_resolution = resolution;
  return cfg;
}

TEST(BatchedGeneration, RaycastBuilderThreadCountDoesNotChangePixels) {
  const auto volume = volume::make_neghip_like(16, 3);
  render::RayCastOptions opts;
  opts.step = 0.05;
  lightfield::RaycastBuilder serial(volume, volume::TransferFunction::neghip_preset(),
                                    tiny_lattice(24), opts, 1);
  lightfield::RaycastBuilder pooled(volume, volume::TransferFunction::neghip_preset(),
                                    tiny_lattice(24), opts, 4);
  EXPECT_EQ(serial.build({1, 2}), pooled.build({1, 2}));
}

TEST(BatchedGeneration, RendererRowParallelismDoesNotChangePixels) {
  const lightfield::LatticeConfig cfg = tiny_lattice(64);
  lightfield::ProceduralSource source(cfg);
  lightfield::Renderer renderer(cfg);
  renderer.add_view_set(source.build({1, 2}));

  // A direction strictly inside view set (1,2), between lattice samples so
  // the interpolation path actually runs.
  const Spherical a = source.lattice().sample_direction(4, 7);
  const Spherical b = source.lattice().sample_direction(4, 8);
  const Spherical dir{a.theta + 0.25 * (b.theta - a.theta),
                      a.phi + 0.25 * (b.phi - a.phi)};

  ThreadPool pool(4);
  const render::ImageRGB8 serial = renderer.render(dir, 64);
  const render::ImageRGB8 pooled = renderer.render(dir, 64, 1.0, &pool);
  EXPECT_EQ(serial, pooled);
}

// --- multi-client driver -----------------------------------------------------------

session::MultiClientConfig small_multi_client() {
  session::MultiClientConfig mc;
  mc.clients = 3;
  mc.accesses_per_client = 6;
  mc.client_seed = 100;
  mc.base.lattice = tiny_lattice(24);
  mc.base.which = session::Case::kWanWithLanDepot;
  mc.base.all_filler = true;
  mc.base.client.decode = false;
  mc.base.client.timing = streaming::ClientConfig::Timing::kModeled;
  mc.base.dwell = 500 * kMillisecond;
  return mc;
}

TEST(MultiClient, ConvergesUnderFaultPlanWithoutDeadlock) {
  session::MultiClientConfig mc = small_multi_client();
  mc.base.pool = &ThreadPool::shared();
  // A WAN depot and a LAN staging depot both crash mid-run and come back;
  // replicas + retries let every access heal.
  mc.base.publish_replicas = 2;
  mc.base.timeouts = {.control = 500 * kMillisecond, .data = 5 * kSecond};
  mc.base.retry.max_attempts = 4;
  mc.base.retry.base_backoff = 250 * kMillisecond;
  mc.base.faults.crashes.push_back(
      {.depot = "ca-0", .at = 2 * kSecond, .restart_after = 6 * kSecond});
  mc.base.faults.crashes.push_back(
      {.depot = "lan-1", .at = 4 * kSecond, .restart_after = 4 * kSecond});

  const session::MultiClientResult result = session::run_multi_client(mc);

  ASSERT_EQ(result.clients.size(), 3u);
  EXPECT_EQ(result.failed_accesses, 0u);
  EXPECT_GT(result.script_duration, 0);
  EXPECT_GE(result.fault_stats.crashes, 2u);
  for (const auto& client : result.clients) {
    // Scripts can emit a couple more records than `accesses_per_client`
    // (boundary-crossing steps re-request); they never emit fewer than the
    // script's transitions.
    EXPECT_GE(client.accesses.size(), mc.accesses_per_client - 1);
    EXPECT_EQ(client.failed_accesses, 0u);
    EXPECT_GT(client.p50_total_s, 0.0);
    EXPECT_GE(client.p99_total_s, client.p50_total_s);
  }
  EXPECT_GT(result.agent_stats.requests, 0u);
}

TEST(MultiClient, VirtualTimelineIndependentOfWorkerPool) {
  // The whole point of the ownership rule in DESIGN.md section 10: attaching
  // a pool moves CPU work, not virtual time. Two runs, with and without a
  // pool, must produce identical traces.
  const session::MultiClientResult without_pool =
      session::run_multi_client(small_multi_client());

  session::MultiClientConfig mc = small_multi_client();
  ThreadPool pool(4);
  mc.base.pool = &pool;
  const session::MultiClientResult with_pool = session::run_multi_client(mc);

  ASSERT_EQ(with_pool.clients.size(), without_pool.clients.size());
  EXPECT_EQ(with_pool.script_duration, without_pool.script_duration);
  for (std::size_t c = 0; c < with_pool.clients.size(); ++c) {
    const auto& a = with_pool.clients[c].accesses;
    const auto& b = without_pool.clients[c].accesses;
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].id, b[i].id);
      EXPECT_EQ(a[i].cls, b[i].cls);
      EXPECT_EQ(a[i].requested, b[i].requested);
      EXPECT_EQ(a[i].delivered, b[i].delivered);
    }
  }
}

// --- end-to-end pipelined experiment -----------------------------------------------

TEST(PipelinedExperiment, OverlapOnlyShrinksDecompressCharges) {
  session::ExperimentConfig cfg;
  cfg.lattice = tiny_lattice(24);
  cfg.which = session::Case::kWanStreaming;  // demand downloads hit the WAN
  cfg.accesses = 10;
  cfg.dwell = kSecond;
  cfg.client.display_resolution = 24;
  cfg.client.timing = streaming::ClientConfig::Timing::kModeled;
  // Chunked containers small enough that one view set spans several chunks.
  cfg.publish_chunk_bytes = 1024;

  const session::ExperimentResult serial = session::run_experiment(cfg);

  session::ExperimentConfig pipelined_cfg = cfg;
  ThreadPool pool(4);
  pipelined_cfg.pool = &pool;
  pipelined_cfg.pipeline_decompress = true;
  pipelined_cfg.pipeline_inflight = 4;
  const session::ExperimentResult pipelined = session::run_experiment(pipelined_cfg);

  EXPECT_EQ(serial.failed_accesses, 0u);
  EXPECT_EQ(pipelined.failed_accesses, 0u);

  // The request stream is script-driven, so both runs ask for the same view
  // sets in the same order regardless of how latencies shifted.
  ASSERT_EQ(pipelined.accesses.size(), serial.accesses.size());
  SimDuration serial_decompress = 0;
  SimDuration pipelined_decompress = 0;
  std::size_t overlapped = 0;
  for (std::size_t i = 0; i < pipelined.accesses.size(); ++i) {
    EXPECT_EQ(pipelined.accesses[i].id, serial.accesses[i].id);
    EXPECT_FALSE(serial.accesses[i].pipelined);
    serial_decompress += serial.accesses[i].decompress_time;
    pipelined_decompress += pipelined.accesses[i].decompress_time;
    if (pipelined.accesses[i].pipelined) ++overlapped;
  }
  // At least the demand misses went through the pipeline, and overlap never
  // makes the charged decompression larger.
  EXPECT_GE(overlapped, 1u);
  EXPECT_LE(pipelined_decompress, serial_decompress);
  ASSERT_NE(pipelined.obs, nullptr);
  EXPECT_EQ(pipelined.obs->metrics.counter_total("session.pipelined"),
            static_cast<std::uint64_t>(overlapped));
  EXPECT_EQ(serial.obs->metrics.counter_total("session.pipelined"), 0u);
}

}  // namespace
}  // namespace lon
