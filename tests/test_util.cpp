// Unit tests for the util module: byte I/O, checksums, RNG determinism,
// thread pool, and 3-D / spherical math.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <future>
#include <numeric>
#include <set>
#include <string>
#include <vector>

#include "util/buffer_pool.hpp"
#include "util/bytes.hpp"
#include "util/checksum.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "util/time.hpp"
#include "util/vec3.hpp"

namespace lon {
namespace {

// --- time ------------------------------------------------------------------

TEST(Time, SecondsRoundTrip) {
  EXPECT_EQ(from_seconds(1.0), kSecond);
  EXPECT_EQ(from_seconds(0.001), kMillisecond);
  EXPECT_DOUBLE_EQ(to_seconds(kSecond), 1.0);
  EXPECT_EQ(from_millis(2.5), 2'500'000);
}

TEST(Time, RoundsToNearest) {
  EXPECT_EQ(from_seconds(1e-9), 1);
  EXPECT_EQ(from_seconds(1.4e-9), 1);
  EXPECT_EQ(from_seconds(1.6e-9), 2);
}

// --- bytes -----------------------------------------------------------------

TEST(Bytes, ScalarRoundTrip) {
  ByteWriter w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.i64(-42);
  w.f32(3.5f);
  w.f64(-2.25);

  ByteReader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_FLOAT_EQ(r.f32(), 3.5f);
  EXPECT_DOUBLE_EQ(r.f64(), -2.25);
  EXPECT_TRUE(r.done());
}

TEST(Bytes, LittleEndianLayout) {
  ByteWriter w;
  w.u32(0x01020304);
  ASSERT_EQ(w.size(), 4u);
  EXPECT_EQ(w.bytes()[0], 0x04);
  EXPECT_EQ(w.bytes()[3], 0x01);
}

TEST(Bytes, StringAndBlobRoundTrip) {
  ByteWriter w;
  w.str("hello, depot");
  Bytes payload = {1, 2, 3, 4, 5};
  w.blob(payload);
  w.str("");

  ByteReader r(w.bytes());
  EXPECT_EQ(r.str(), "hello, depot");
  EXPECT_EQ(r.blob(), payload);
  EXPECT_EQ(r.str(), "");
  EXPECT_TRUE(r.done());
}

TEST(Bytes, TruncatedReadThrows) {
  ByteWriter w;
  w.u16(7);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.u8(), 7);
  EXPECT_THROW(r.u32(), DecodeError);
}

TEST(Bytes, BogusLengthPrefixThrows) {
  ByteWriter w;
  w.u32(0xffffffffu);  // blob claiming 4 GiB
  ByteReader r(w.bytes());
  EXPECT_THROW(r.blob(), DecodeError);
}

TEST(Bytes, RemainingTracksPosition) {
  ByteWriter w;
  w.u64(1);
  w.u64(2);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.remaining(), 16u);
  r.u64();
  EXPECT_EQ(r.remaining(), 8u);
  EXPECT_EQ(r.position(), 8u);
}

// --- checksums ---------------------------------------------------------------

TEST(Checksum, Adler32KnownValues) {
  // Classic test vector.
  EXPECT_EQ(adler32(as_bytes("Wikipedia")), 0x11E60398u);
  EXPECT_EQ(adler32(as_bytes("")), 1u);
}

TEST(Checksum, Adler32Incremental) {
  const std::string s = "the quick brown fox jumps over the lazy dog";
  const auto whole = adler32(as_bytes(s));
  auto part = adler32(as_bytes(s.substr(0, 10)));
  part = adler32(as_bytes(s.substr(10)), part);
  EXPECT_EQ(part, whole);
}

TEST(Checksum, Adler32LargeInputDeferredModulo) {
  // Exercise the 5552-byte chunking path with bytes of maximal value.
  Bytes data(100'000, 0xff);
  const auto value = adler32(data);
  // Reference computation with per-byte modulo.
  std::uint32_t a = 1, b = 0;
  for (auto byte : data) {
    a = (a + byte) % 65521;
    b = (b + a) % 65521;
  }
  EXPECT_EQ(value, (b << 16) | a);
}

TEST(Checksum, Crc32KnownValues) {
  EXPECT_EQ(crc32(as_bytes("123456789")), 0xCBF43926u);
  EXPECT_EQ(crc32(as_bytes("")), 0u);
}

TEST(Checksum, Crc32DetectsBitFlip) {
  Bytes data(64, 0x5a);
  const auto clean = crc32(data);
  data[17] ^= 0x01;
  EXPECT_NE(crc32(data), clean);
}

// --- rng ---------------------------------------------------------------------

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10'000, 0.5, 0.02);
}

TEST(Rng, BelowIsBoundedAndCoversRange) {
  Rng rng(99);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.below(7);
    ASSERT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NormalHasUnitVariance) {
  Rng rng(5);
  double sum = 0.0, sum2 = 0.0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng(6);
  double sum = 0.0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.1);
}

// --- thread pool -------------------------------------------------------------

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  auto f = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(5, 5, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, ManySmallTasksAllComplete) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futures;
  futures.reserve(500);
  for (int i = 0; i < 500; ++i) {
    futures.push_back(pool.submit([&count] { count.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(count.load(), 500);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

// --- vec3 / spherical ----------------------------------------------------------

TEST(Vec3, BasicAlgebra) {
  const Vec3 a{1, 2, 3}, b{4, 5, 6};
  EXPECT_DOUBLE_EQ((a + b).x, 5.0);
  EXPECT_DOUBLE_EQ((b - a).z, 3.0);
  EXPECT_DOUBLE_EQ(a.dot(b), 32.0);
  const Vec3 c = a.cross(b);
  EXPECT_DOUBLE_EQ(c.x, -3.0);
  EXPECT_DOUBLE_EQ(c.y, 6.0);
  EXPECT_DOUBLE_EQ(c.z, -3.0);
  EXPECT_DOUBLE_EQ((2.0 * a).y, 4.0);
}

TEST(Vec3, NormalizedHasUnitLength) {
  const Vec3 v{3, 4, 12};
  EXPECT_NEAR(v.normalized().norm(), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(Vec3{}.normalized().norm(), 0.0);
}

TEST(Spherical, UnitRoundTrip) {
  for (double theta : {0.3, 1.0, 1.5, 2.8}) {
    for (double phi : {0.0, 0.7, 3.1, 5.9}) {
      const Spherical s{theta, phi};
      const Spherical back = unit_to_spherical(spherical_to_unit(s));
      EXPECT_NEAR(back.theta, theta, 1e-10);
      EXPECT_NEAR(back.phi, phi, 1e-10);
    }
  }
}

TEST(Spherical, PolesMapToZAxis) {
  const Vec3 up = spherical_to_unit({0.0, 1.234});
  EXPECT_NEAR(up.z, 1.0, 1e-12);
  const Vec3 down = spherical_to_unit({kPi, 0.5});
  EXPECT_NEAR(down.z, -1.0, 1e-12);
}

TEST(Spherical, AngularDistance) {
  EXPECT_NEAR(angular_distance({kPi / 2, 0.0}, {kPi / 2, kPi / 2}), kPi / 2, 1e-12);
  EXPECT_NEAR(angular_distance({0.0, 0.0}, {kPi, 0.0}), kPi, 1e-12);
  EXPECT_NEAR(angular_distance({1.0, 2.0}, {1.0, 2.0}), 0.0, 1e-6);
}

TEST(Spherical, DegreeConversions) {
  EXPECT_NEAR(deg2rad(180.0), kPi, 1e-12);
  EXPECT_NEAR(rad2deg(kPi / 2), 90.0, 1e-12);
}

// --- buffer pool -----------------------------------------------------------

TEST(BufferPool, AcquireIsZeroFilledAndExactlySized) {
  util::BufferPool pool;
  const auto slab = pool.acquire(10'000);
  ASSERT_EQ(slab->size(), 10'000u);
  for (const std::uint8_t b : *slab) EXPECT_EQ(b, 0);
  EXPECT_EQ(pool.allocations(), 1u);
  EXPECT_EQ(pool.reuses(), 0u);
}

TEST(BufferPool, ReleaseRecyclesTheAllocationForTheSameSizeClass) {
  util::BufferPool pool;
  std::uint8_t* first = nullptr;
  {
    auto slab = pool.acquire(5'000);
    (*slab)[0] = 0xAB;
    first = slab->data();
  }
  EXPECT_GT(pool.retained_bytes(), 0u);
  // Same size class (8 KiB covers both) -> same backing allocation, re-zeroed.
  const auto again = pool.acquire(6'000);
  EXPECT_EQ(again->data(), first);
  EXPECT_EQ((*again)[0], 0);
  EXPECT_EQ(pool.reuses(), 1u);
  EXPECT_EQ(pool.allocations(), 1u);
}

TEST(BufferPool, RefcountedSlabIsNotRecycledWhileAliased) {
  util::BufferPool pool;
  auto slab = pool.acquire(1'000);
  (*slab)[7] = 42;
  const std::shared_ptr<const Bytes> alias = slab;
  slab.reset();
  // The alias still owns the slab: nothing retained, contents intact.
  EXPECT_EQ(pool.retained_bytes(), 0u);
  EXPECT_EQ((*alias)[7], 42);
}

TEST(BufferPool, SlabOutlivesThePoolObject) {
  std::shared_ptr<Bytes> survivor;
  {
    util::BufferPool pool;
    survivor = pool.acquire(2'048);
    (*survivor)[100] = 9;
  }
  // Releasing after the pool is gone must be safe (deleter owns pool state).
  EXPECT_EQ((*survivor)[100], 9);
  survivor.reset();
}

TEST(BufferPool, RetainedBytesStayWithinTheConfiguredBudget) {
  util::BufferPool::Config config;
  config.min_class_bytes = 4'096;
  config.max_retained_bytes = 8'192;  // room for exactly two minimum slabs
  util::BufferPool pool(config);
  { const auto a = pool.acquire(100); const auto b = pool.acquire(100); const auto c = pool.acquire(100); }
  EXPECT_LE(pool.retained_bytes(), 8'192u);
}

TEST(BufferPool, ConcurrentAcquireReleaseHammer) {
  util::BufferPool pool;
  ThreadPool workers(4);
  std::vector<std::future<bool>> jobs;
  for (int t = 0; t < 4; ++t) {
    jobs.push_back(workers.submit([&pool, t]() -> bool {
      for (int i = 0; i < 500; ++i) {
        const std::size_t size = 64 + static_cast<std::size_t>((i * 37 + t * 101) % 20'000);
        const auto slab = pool.acquire(size);
        if (slab->size() != size) return false;
        // Every byte must arrive zeroed even when slabs are recycled across
        // threads; write a marker to catch sharing of live slabs.
        if ((*slab)[size / 2] != 0) return false;
        (*slab)[size / 2] = static_cast<std::uint8_t>(t + 1);
      }
      return true;
    }));
  }
  for (auto& job : jobs) EXPECT_TRUE(job.get());
  EXPECT_EQ(pool.reuses() + pool.allocations(), 2'000u);
}

TEST(BufferPool, CopyMeterCountsEveryCopyPayload) {
  const std::uint64_t before = util::payload_bytes_copied();
  Bytes src(1'234, 0x5A);
  Bytes dst(1'234, 0);
  util::copy_payload(dst.data(), src.data(), src.size());
  EXPECT_EQ(util::payload_bytes_copied() - before, 1'234u);
  EXPECT_EQ(dst, src);
  util::account_payload_copy(10);
  EXPECT_EQ(util::payload_bytes_copied() - before, 1'244u);
}

}  // namespace
}  // namespace lon
