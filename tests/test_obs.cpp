// Observability layer tests: registry identity and aggregation, latency
// histogram semantics, span parenting across virtual-time hops, exporter
// output — plus regression tests for the cache re-put, volume-histogram
// percentile, and thread-pool exception-propagation fixes that shipped with
// the layer.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "session/experiment.hpp"
#include "session/metrics.hpp"
#include "simnet/simulator.hpp"
#include "streaming/cache.hpp"
#include "util/thread_pool.hpp"
#include "volume/histogram.hpp"

namespace lon {
namespace {

// --- registry -----------------------------------------------------------------

TEST(ObsRegistry, SameNameAndLabelsYieldTheSameCounter) {
  obs::Registry registry;
  obs::Counter& a = registry.counter("x.events");
  obs::Counter& b = registry.counter("x.events");
  EXPECT_EQ(&a, &b);
  a.inc(3);
  EXPECT_EQ(b.value(), 3u);

  obs::Counter& labeled = registry.counter("x.events", "component=x,inst=0");
  EXPECT_NE(&a, &labeled);
  labeled.inc(4);
  EXPECT_EQ(registry.counter_total("x.events"), 7u);
  EXPECT_EQ(registry.counter_total("x.absent"), 0u);
  EXPECT_EQ(registry.find_counter("x.absent"), nullptr);
}

TEST(ObsRegistry, ScopesMintDistinctInstanceLabels) {
  obs::Registry registry;
  obs::Scope first = registry.scope("agent");
  obs::Scope second = registry.scope("agent");
  EXPECT_EQ(first.labels(), "component=agent,inst=0");
  EXPECT_EQ(second.labels(), "component=agent,inst=1");

  first.counter("agent.requests").inc(2);
  second.counter("agent.requests").inc(5);
  EXPECT_EQ(first.counter("agent.requests").value(), 2u);
  EXPECT_EQ(second.counter("agent.requests").value(), 5u);
  EXPECT_EQ(registry.counter_total("agent.requests"), 7u);
}

TEST(ObsRegistry, ReferencesStayValidAsTheRegistryGrows) {
  obs::Registry registry;
  obs::Counter& pinned = registry.counter("pinned");
  for (int i = 0; i < 200; ++i) {
    registry.counter("filler." + std::to_string(i)).inc();
  }
  pinned.inc(9);
  EXPECT_EQ(registry.find_counter("pinned")->value(), 9u);
}

TEST(ObsRegistry, JsonlDumpIsDeterministicAndSelfDescribing) {
  obs::Registry registry;
  registry.counter("b.count", "component=b,inst=0").inc(2);
  registry.counter("a.count").inc(1);
  registry.gauge("a.depth").set(1.5);
  registry.histogram("a.lat").record(1000);

  const std::string expected =
      "{\"name\":\"a.count\",\"labels\":\"\",\"type\":\"counter\",\"value\":1}\n"
      "{\"name\":\"b.count\",\"labels\":\"component=b,inst=0\",\"type\":\"counter\","
      "\"value\":2}\n"
      "{\"name\":\"a.depth\",\"labels\":\"\",\"type\":\"gauge\",\"value\":1.5}\n"
      "{\"name\":\"a.lat\",\"labels\":\"\",\"type\":\"histogram\",\"count\":1,"
      "\"sum_ns\":1000,\"min_ns\":1000,\"max_ns\":1000,\"p50_ns\":1000,"
      "\"p90_ns\":1000,\"p99_ns\":1000}\n";
  EXPECT_EQ(registry.jsonl(), expected);

  registry.reset();
  EXPECT_EQ(registry.size(), 0u);
  EXPECT_EQ(registry.jsonl(), "");
  // Instance numbering restarts too.
  EXPECT_EQ(registry.scope("b").labels(), "component=b,inst=0");
}

// --- latency histogram --------------------------------------------------------

TEST(ObsHistogram, TracksExactCountSumMinMax) {
  obs::LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(0.5), 0.0);

  for (const SimDuration v : {100, 200, 700}) h.record(v);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 1000);
  EXPECT_EQ(h.min(), 100);
  EXPECT_EQ(h.max(), 700);
}

TEST(ObsHistogram, PercentilesUseCeilRankAndClampToObservedRange) {
  obs::LatencyHistogram h;
  // 9 samples in [512, 1024) and one far outlier.
  for (int i = 0; i < 9; ++i) h.record(600);
  h.record(1'000'000);

  // ceil(0.5 * 10) = 5th sample: the [512, 1024) bucket, midpoint 768.
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 768.0);
  // ceil(0.9 * 10) = 9th sample: still the low bucket.
  EXPECT_DOUBLE_EQ(h.percentile(0.9), 768.0);
  // The 10th sample lives in the outlier's [2^19, 2^20) bucket: its midpoint
  // is the estimate (within [min, max], so no clamping applies).
  EXPECT_DOUBLE_EQ(h.percentile(0.99), 786432.0);
  // fraction 0 still means "the first sample", never an empty rank.
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 768.0);
  // Monotonic in fraction.
  EXPECT_LE(h.percentile(0.5), h.percentile(0.99));

  obs::LatencyHistogram single;
  single.record(12345);
  // Clamping pins every percentile of a single sample to its exact value.
  EXPECT_DOUBLE_EQ(single.percentile(0.01), 12345.0);
  EXPECT_DOUBLE_EQ(single.percentile(0.99), 12345.0);
}

TEST(ObsHistogram, NonPositiveSamplesLandInBucketZero) {
  obs::LatencyHistogram h;
  h.record(0);
  h.record(-5);
  EXPECT_EQ(h.buckets()[0], 2u);
  EXPECT_EQ(h.min(), -5);
  EXPECT_EQ(h.max(), 0);
}

// --- tracer -------------------------------------------------------------------

TEST(ObsTracer, DisabledTracerRecordsNothing) {
  obs::Tracer tracer;
  const obs::SpanId id = tracer.begin("noop", 10);
  EXPECT_EQ(id, 0u);
  tracer.arg(id, "k", "v");  // must be a safe no-op
  tracer.end(id, 20);
  EXPECT_TRUE(tracer.spans().empty());
}

TEST(ObsTracer, AmbientGuardSuppliesTheParentAcrossSynchronousCalls) {
  obs::Tracer tracer;
  tracer.set_enabled(true);
  const obs::SpanId root = tracer.begin("root", 0);
  obs::SpanId child = 0;
  {
    const obs::Tracer::Ambient ambient(tracer, root);
    child = tracer.begin("child", 5);
  }
  const obs::SpanId sibling = tracer.begin("sibling", 6);

  EXPECT_EQ(tracer.find(child)->parent, root);
  EXPECT_EQ(tracer.find(sibling)->parent, 0u);  // guard restored on exit
  EXPECT_EQ(tracer.root_of(child), root);
}

TEST(ObsTracer, ExplicitParentIdsSurviveVirtualTimeHops) {
  sim::Simulator sim;
  obs::Tracer tracer;
  tracer.set_enabled(true);

  const obs::SpanId root = tracer.begin("request", sim.now());
  obs::SpanId child = 0;
  obs::SpanId grandchild = 0;
  sim.after(10, [&] {
    // The call stack (and any Ambient guard) from the scheduling site is
    // gone by now; the id threaded through the closure is what links us.
    child = tracer.begin("fetch", sim.now(), root);
    sim.after(5, [&] {
      grandchild = tracer.begin("download", sim.now(), child);
      tracer.end(grandchild, sim.now());
      tracer.end(child, sim.now());
    });
  });
  sim.run();
  tracer.end(root, sim.now());

  ASSERT_NE(child, 0u);
  ASSERT_NE(grandchild, 0u);
  EXPECT_EQ(tracer.find(child)->parent, root);
  EXPECT_EQ(tracer.find(grandchild)->parent, child);
  EXPECT_EQ(tracer.root_of(grandchild), root);
  EXPECT_EQ(tracer.find(child)->begin, 10);
  EXPECT_EQ(tracer.find(grandchild)->begin, 15);
  EXPECT_FALSE(tracer.find(root)->open);
}

TEST(ObsTracer, ChromeTraceExportsCompleteAndInstantEvents) {
  obs::Tracer tracer;
  tracer.set_enabled(true);
  const obs::SpanId root = tracer.begin("request", 1000);
  tracer.arg(root, "view_set", "vs1_2");
  const obs::SpanId mark = tracer.instant("retry", 1500, root);
  tracer.end(root, 3000);

  const std::string json = tracer.chrome_trace();
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  // 1000 ns -> 1 us; 2000 ns duration -> 2 us.
  EXPECT_NE(json.find("\"name\":\"request\",\"cat\":\"lon\",\"ph\":\"X\",\"ts\":1"
                      ",\"dur\":2"),
            std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\",\"ts\":1.5,\"s\":\"t\""), std::string::npos);
  // Both events share the root's lane and carry their ids and annotations.
  EXPECT_NE(json.find("\"tid\":" + std::to_string(root)), std::string::npos);
  EXPECT_NE(json.find("\"view_set\":\"vs1_2\""), std::string::npos);
  EXPECT_NE(json.find("\"parent\":" + std::to_string(root)), std::string::npos);
  EXPECT_EQ(json.find("\"open\":true"), std::string::npos);
  EXPECT_EQ(mark, 2u);
}

// --- regression: ViewSetCache::put -------------------------------------------

TEST(ViewSetCacheRegression, OverBudgetReputDropsTheStaleEntry) {
  streaming::ViewSetCache cache(100);
  const lightfield::ViewSetId id{1, 2};
  cache.put(id, Bytes(50, 0xaa));
  ASSERT_TRUE(cache.contains(id));

  // The refreshed payload is too large to cache. Serving the old version
  // would hand out data the caller just replaced — it must be gone.
  cache.put(id, Bytes(200, 0xbb));
  EXPECT_FALSE(cache.contains(id));
  EXPECT_EQ(cache.get(id), nullptr);
  EXPECT_EQ(cache.bytes_used(), 0u);
}

TEST(ViewSetCacheRegression, ReputDoesNotEvictOtherEntriesToFitItsOwnOldBytes) {
  streaming::ViewSetCache cache(100);
  const lightfield::ViewSetId a{0, 0};
  const lightfield::ViewSetId b{0, 1};
  cache.put(a, Bytes(60, 1));
  cache.put(b, Bytes(40, 2));
  // Refreshing `a` at the same size fits exactly once its old bytes are
  // released first; `b` must survive.
  cache.put(a, Bytes(60, 3));
  EXPECT_TRUE(cache.contains(a));
  EXPECT_TRUE(cache.contains(b));
  EXPECT_EQ(cache.bytes_used(), 100u);
  EXPECT_EQ(cache.evictions(), 0u);
}

// --- regression: volume::Histogram::percentile --------------------------------

TEST(VolumeHistogramRegression, SmallFractionsReportTheFirstPopulatedBin) {
  volume::Histogram h;
  h.bins = {0, 0, 0, 5};
  h.total = 5;
  // A rank of ceil(0.01 * 5) = 1 lives in the last bin; the old truncation
  // to rank 0 reported bin 0's center even though it is empty.
  EXPECT_DOUBLE_EQ(h.percentile(0.01), h.bin_center(3));
  EXPECT_DOUBLE_EQ(h.percentile(1.0), h.bin_center(3));
}

TEST(VolumeHistogramRegression, PercentileIsMonotonicAcrossBins) {
  volume::Histogram h;
  h.bins = {10, 0, 10, 0};
  h.total = 20;
  EXPECT_DOUBLE_EQ(h.percentile(0.5), h.bin_center(0));
  EXPECT_DOUBLE_EQ(h.percentile(0.51), h.bin_center(2));
  double prev = 0.0;
  for (double f = 0.0; f <= 1.0; f += 0.05) {
    const double v = h.percentile(f);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

// --- regression: ThreadPool::parallel_for -------------------------------------

TEST(ThreadPoolRegression, ParallelForWaitsForAllChunksBeforeRethrowing) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  const std::size_t n = 8;
  // One chunk per index: index 0 throws immediately, the others finish
  // slowly. The rethrow must not happen until every chunk is done —
  // otherwise workers would still be calling `fn` (a reference to a local)
  // after parallel_for returned.
  EXPECT_THROW(
      pool.parallel_for(
          0, n,
          [&](std::size_t i) {
            if (i == 0) throw std::runtime_error("chunk failed");
            std::this_thread::sleep_for(std::chrono::milliseconds(30));
            completed.fetch_add(1);
          },
          /*chunks=*/n),
      std::runtime_error);
  EXPECT_EQ(completed.load(), static_cast<int>(n - 1));
}

// --- end-to-end: experiment observability -------------------------------------

session::ExperimentConfig obs_experiment_config() {
  session::ExperimentConfig cfg;
  cfg.lattice.angular_step_deg = 15.0;
  cfg.lattice.view_set_span = 3;  // 4 x 8 = 32 view sets
  cfg.lattice.view_resolution = 24;
  cfg.which = session::Case::kWanStreaming;
  cfg.accesses = 12;
  cfg.dwell = kSecond;
  cfg.client.display_resolution = 24;
  return cfg;
}

TEST(ObsExperiment, RegistryReproducesAccessAndRobustnessSummaries) {
  session::ExperimentConfig cfg = obs_experiment_config();
  // A crash window plus deadlines and retries so the self-healing counters
  // actually move.
  cfg.publish_replicas = 2;
  cfg.timeouts = {.control = 500 * kMillisecond, .data = 5 * kSecond};
  cfg.retry.max_attempts = 4;
  cfg.retry.base_backoff = 250 * kMillisecond;
  cfg.faults.crashes.push_back(
      {.depot = "ca-0", .at = 2 * kSecond, .restart_after = 6 * kSecond});

  const session::ExperimentResult result = session::run_experiment(cfg);
  ASSERT_NE(result.obs, nullptr);
  const obs::Registry& reg = result.obs->metrics;

  // session.* mirrors the AccessRecord trace exactly.
  EXPECT_EQ(reg.counter_total("session.accesses"), result.summary.total);
  EXPECT_EQ(reg.counter_total("session.hits"), result.summary.hits);
  EXPECT_EQ(reg.counter_total("session.lan"), result.summary.lan);
  EXPECT_EQ(reg.counter_total("session.wan"), result.summary.wan);

  std::int64_t total_ns = 0;
  std::int64_t comm_ns = 0;
  for (const auto& r : result.accesses) {
    total_ns += r.total();
    comm_ns += r.comm_latency;
  }
  const obs::LatencyHistogram* h =
      reg.find_histogram("session.total_ns", "component=client,inst=0");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), result.summary.total);
  EXPECT_EQ(h->sum(), total_ns);
  EXPECT_EQ(reg.find_histogram("session.comm_ns", "component=client,inst=0")->sum(),
            comm_ns);

  // The robustness summary is itself a view over the registry, and the run
  // exercised the machinery it reports on.
  const session::RobustnessSummary rob = session::collect_robustness(reg);
  EXPECT_EQ(rob.timeouts, result.robustness.timeouts);
  EXPECT_EQ(rob.retries, result.robustness.retries);
  EXPECT_EQ(rob.failovers, result.robustness.failovers);
  EXPECT_GT(rob.retries + rob.failovers + rob.timeouts, 0u);
  EXPECT_EQ(rob.refetches, result.agent_stats.refetches);

  // The dump stays line-structured JSON.
  const std::string jsonl = reg.jsonl();
  EXPECT_NE(jsonl.find("\"name\":\"session.accesses\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"type\":\"histogram\""), std::string::npos);
}

TEST(ObsExperiment, TraceNestsTheFullDemandLifeline) {
  const session::ExperimentResult result =
      session::run_experiment(obs_experiment_config());
  ASSERT_NE(result.obs, nullptr);
  const obs::Tracer& tracer = result.obs->trace;
  ASSERT_FALSE(tracer.spans().empty());

  const auto parent_name = [&](const obs::Span& s) -> std::string {
    const obs::Span* p = tracer.find(s.parent);
    return p == nullptr ? std::string{} : p->name;
  };

  // At least one complete demand lifeline:
  // client.request -> agent.fetch -> lors.download -> ibp.load, and
  // client.request -> client.decompress.
  bool fetch_under_request = false;
  bool download_under_fetch = false;
  bool load_under_download = false;
  bool decompress_under_request = false;
  bool dvs_under_fetch = false;
  for (const obs::Span& s : tracer.spans()) {
    if (s.name == "agent.fetch" && parent_name(s) == "client.request") {
      fetch_under_request = true;
    }
    if (s.name == "lors.download" && parent_name(s) == "agent.fetch") {
      download_under_fetch = true;
    }
    if (s.name == "ibp.load" && parent_name(s) == "lors.download") {
      load_under_download = true;
    }
    if (s.name == "client.decompress" && parent_name(s) == "client.request") {
      decompress_under_request = true;
    }
    if (s.name == "dvs.query" && parent_name(s) == "agent.fetch") {
      dvs_under_fetch = true;
    }
  }
  EXPECT_TRUE(fetch_under_request);
  EXPECT_TRUE(download_under_fetch);
  EXPECT_TRUE(load_under_download);
  EXPECT_TRUE(decompress_under_request);
  EXPECT_TRUE(dvs_under_fetch);

  // Every demand lifeline collapses to a client.request (or agent.stage /
  // lors.upload background root); roots are well-formed.
  for (const obs::Span& s : tracer.spans()) {
    const obs::SpanId root = tracer.root_of(s.id);
    ASSERT_NE(root, 0u);
    EXPECT_EQ(tracer.find(root)->parent, 0u);
  }

  const std::string json = tracer.chrome_trace();
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"client.request\""), std::string::npos);
}

}  // namespace
}  // namespace lon
