// Cooperative site cache: single-flight restage coalescing, lease-aware
// atomic invalidation, capacity-bounded eviction, the sharded DVS
// directory, and the co-sited integration paths — including the restaged
// double-count regression (a WAN-side retry must not destroy a healthy,
// freshly restaged LAN replica nor count a second restage for one
// incident).
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "lightfield/procedural.hpp"
#include "session/scenario.hpp"
#include "streaming/client_agent.hpp"
#include "streaming/dvs.hpp"
#include "streaming/site_cache.hpp"

namespace lon::streaming {
namespace {

using lightfield::ViewSetId;

lightfield::LatticeConfig small_config(std::size_t resolution = 24) {
  lightfield::LatticeConfig cfg;
  cfg.angular_step_deg = 15.0;  // 12 x 24 lattice
  cfg.view_set_span = 3;        // 4 x 8 = 32 view sets
  cfg.view_resolution = resolution;
  return cfg;
}

exnode::ExNode fake_exnode(const ViewSetId& id, std::uint64_t length = 100) {
  exnode::ExNode node(length);
  exnode::Extent extent;
  extent.offset = 0;
  extent.length = length;
  exnode::Replica rep;
  rep.read.depot = "d";
  rep.read.allocation = static_cast<std::uint64_t>(id.row * 100 + id.col);
  rep.read.key = 7;
  extent.replicas.push_back(rep);
  node.add_extent(extent);
  return node;
}

// --- site cache index ---------------------------------------------------------

constexpr SimDuration kHour = 3600 * kSecond;

class SiteCacheTest : public ::testing::Test {
 protected:
  std::unique_ptr<SiteCache> make(SiteCacheConfig cfg = {}) {
    return std::make_unique<SiteCache>(sim_, cfg, &obs_);
  }

  sim::Simulator sim_;
  obs::Context obs_;
};

TEST_F(SiteCacheTest, SingleFlightCoalescesToOneLeader) {
  auto site_ptr = make();
  SiteCache& site = *site_ptr;
  const ViewSetId id{1, 2};
  int follower_done = 0;
  bool follower_ok = false;

  // First caller leads; its callback is NOT queued — it performs the copy.
  EXPECT_TRUE(site.begin_restage(id, 0, nullptr));
  // Everyone racing it joins the flight.
  for (int i = 0; i < 4; ++i) {
    EXPECT_FALSE(site.begin_restage(id, 0, [&](bool ok, const exnode::ExNode& node) {
      ++follower_done;
      follower_ok = ok;
      EXPECT_EQ(node.length(), 100u);
    }));
  }
  EXPECT_EQ(follower_done, 0);

  site.finish_restage(id, 0, true, fake_exnode(id));
  EXPECT_EQ(follower_done, 4);
  EXPECT_TRUE(follower_ok);
  EXPECT_EQ(site.stats().restage_leaders, 1u);
  EXPECT_EQ(site.stats().restage_joins, 4u);
  EXPECT_EQ(site.stats().restage_keys, 1u);

  // The flight is gone: a later restage of the same key leads afresh, but
  // the key was already counted — restage_keys stays the distinct count.
  EXPECT_TRUE(site.begin_restage(id, 0, nullptr));
  site.finish_restage(id, 0, true, fake_exnode(id));
  EXPECT_EQ(site.stats().restage_leaders, 2u);
  EXPECT_EQ(site.stats().restage_keys, 1u);
}

TEST_F(SiteCacheTest, DistinctLodTiersAreSeparateFlights) {
  auto site_ptr = make();
  SiteCache& site = *site_ptr;
  const ViewSetId id{0, 1};
  EXPECT_TRUE(site.begin_restage(id, 0, nullptr));
  EXPECT_TRUE(site.begin_restage(id, 2, nullptr));  // other tier, own flight
  EXPECT_FALSE(site.begin_restage(id, 2, [](bool, const exnode::ExNode&) {}));
  EXPECT_EQ(site.stats().restage_keys, 2u);
}

TEST_F(SiteCacheTest, FailedRestageResolvesFollowersWithFailure) {
  auto site_ptr = make();
  SiteCache& site = *site_ptr;
  const ViewSetId id{2, 3};
  std::optional<bool> follower_ok;
  EXPECT_TRUE(site.begin_restage(id, 0, nullptr));
  EXPECT_FALSE(site.begin_restage(
      id, 0, [&](bool ok, const exnode::ExNode&) { follower_ok = ok; }));
  site.finish_restage(id, 0, false, exnode::ExNode{});
  ASSERT_TRUE(follower_ok.has_value());
  EXPECT_FALSE(*follower_ok);
}

TEST_F(SiteCacheTest, LookupDropsExpiredLeaseLazilyAndFansOut) {
  SiteCacheConfig cfg;
  cfg.expiry_timers = false;  // force the lazy path
  auto site_ptr = make(cfg);
  SiteCache& site = *site_ptr;
  const ViewSetId id{1, 1};
  std::vector<ViewSetId> invalidated;
  site.add_listener([&](const ViewSetId& dead, int) { invalidated.push_back(dead); });

  site.publish(id, 0, fake_exnode(id), 100, kSecond);
  EXPECT_TRUE(site.lookup(id).has_value());

  sim_.after(2 * kSecond, [] {});
  sim_.run();
  // Past the lease: the lookup itself must refuse to serve the dead copy
  // and tell every co-sited agent in the same instant.
  EXPECT_FALSE(site.lookup(id).has_value());
  ASSERT_EQ(invalidated.size(), 1u);
  EXPECT_EQ(invalidated[0], id);
  EXPECT_EQ(site.stats().expirations, 1u);
  EXPECT_EQ(site.size(), 0u);
}

TEST_F(SiteCacheTest, ExpiryTimerInvalidatesEveryListenerAtomically) {
  auto site_ptr = make();
  SiteCache& site = *site_ptr;  // timers on
  const ViewSetId id{3, 4};
  SimTime seen_a = 0, seen_b = 0;
  site.add_listener([&](const ViewSetId&, int) { seen_a = sim_.now(); });
  site.add_listener([&](const ViewSetId&, int) { seen_b = sim_.now(); });

  const SimTime expiry = 5 * kSecond;
  site.publish(id, 0, fake_exnode(id), 100, expiry);

  // One nanosecond before the lease ends the copy is still live...
  bool live_before = false;
  sim_.after(expiry - 1, [&] { live_before = site.lookup(id).has_value(); });
  // ...and exactly at the expiry instant no caller may be served, whether
  // the timer or the lookup runs first within the timestamp.
  bool live_at = true;
  sim_.after(expiry, [&] { live_at = site.lookup(id).has_value(); });
  sim_.run();

  EXPECT_TRUE(live_before);
  EXPECT_FALSE(live_at);
  // Both co-sited agents heard about the death in the same virtual instant:
  // no window in which one still trusts the dead replica.
  EXPECT_EQ(seen_a, expiry);
  EXPECT_EQ(seen_b, expiry);
  EXPECT_EQ(site.stats().expirations, 1u);
}

TEST_F(SiteCacheTest, RepublishSupersedesTheOlderExpiryTimer) {
  auto site_ptr = make();
  SiteCache& site = *site_ptr;
  const ViewSetId id{0, 5};
  int fanouts = 0;
  site.add_listener([&](const ViewSetId&, int) { ++fanouts; });

  site.publish(id, 0, fake_exnode(id), 100, kSecond);
  // A fresh staging renews the lease before the old timer fires; the stale
  // timer must not kill the new copy (generation check).
  site.publish(id, 0, fake_exnode(id), 100, 10 * kSecond);

  bool live_after_first_expiry = false;
  sim_.after(2 * kSecond, [&] { live_after_first_expiry = site.lookup(id).has_value(); });
  sim_.run();
  EXPECT_TRUE(live_after_first_expiry);
  EXPECT_EQ(fanouts, 1);  // only the real (second) expiry fanned out
  EXPECT_EQ(site.stats().expirations, 1u);
}

TEST_F(SiteCacheTest, ExplicitInvalidateFansOutEvenWhenAbsent) {
  auto site_ptr = make();
  SiteCache& site = *site_ptr;
  int fanouts = 0;
  site.add_listener([&](const ViewSetId&, int) { ++fanouts; });
  // An agent saw a download from the shared copy fail after the index had
  // already dropped it: the co-sited wave must still run.
  site.invalidate({2, 2});
  EXPECT_EQ(fanouts, 1);
  EXPECT_EQ(site.stats().invalidations, 1u);
}

TEST_F(SiteCacheTest, CapacityEvictionIsLruAndDoesNotFanOut) {
  SiteCacheConfig cfg;
  cfg.capacity_bytes = 300;
  auto site_ptr = make(cfg);
  SiteCache& site = *site_ptr;
  int fanouts = 0;
  site.add_listener([&](const ViewSetId&, int) { ++fanouts; });

  site.publish({0, 0}, 0, fake_exnode({0, 0}), 100, kHour);
  site.publish({0, 1}, 0, fake_exnode({0, 1}), 100, kHour);
  site.publish({0, 2}, 0, fake_exnode({0, 2}), 100, kHour);
  // Touch the oldest so {0,1} becomes the LRU victim.
  EXPECT_TRUE(site.lookup({0, 0}).has_value());
  site.publish({0, 3}, 0, fake_exnode({0, 3}), 100, kHour);

  EXPECT_FALSE(site.contains({0, 1}));
  EXPECT_TRUE(site.contains({0, 0}));
  EXPECT_TRUE(site.contains({0, 2}));
  EXPECT_TRUE(site.contains({0, 3}));
  EXPECT_EQ(site.stats().evictions, 1u);
  // Eviction only forgets the index entry — the stager's replica and lease
  // are intact, so nobody's derived state may be dropped.
  EXPECT_EQ(fanouts, 0);
  EXPECT_LE(site.stats().bytes, 300u);
}

TEST_F(SiteCacheTest, RemovedListenerStopsReceivingFanouts) {
  auto site_ptr = make();
  SiteCache& site = *site_ptr;
  int fanouts = 0;
  const std::size_t token =
      site.add_listener([&](const ViewSetId&, int) { ++fanouts; });
  site.invalidate({1, 0});
  site.remove_listener(token);
  site.invalidate({1, 0});
  EXPECT_EQ(fanouts, 1);
}

// TSan target: agents on the simulator thread and pool workers may hit the
// index concurrently. Timers stay off — the simulator is not thread-safe,
// the index is.
TEST_F(SiteCacheTest, ConcurrentHammerKeepsTheIndexConsistent) {
  SiteCacheConfig cfg;
  cfg.capacity_bytes = 64 * 100;  // force concurrent evictions too
  cfg.expiry_timers = false;
  auto site_ptr = make(cfg);
  SiteCache& site = *site_ptr;
  std::atomic<int> fanouts{0};
  site.add_listener([&](const ViewSetId&, int) { ++fanouts; });

  constexpr int kThreads = 8;
  constexpr int kOps = 400;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&site, t] {
      for (int i = 0; i < kOps; ++i) {
        const ViewSetId id{t % 4, i % 8};
        switch (i % 5) {
          case 0:
            site.publish(id, 0, fake_exnode(id), 100, kHour);
            break;
          case 1:
            (void)site.lookup(id);
            break;
          case 2:
            site.invalidate(id);
            break;
          case 3:
            if (site.begin_restage(id, 0, [](bool, const exnode::ExNode&) {})) {
              site.finish_restage(id, 0, true, fake_exnode(id));
            }
            break;
          default:
            (void)site.contains(id);
            break;
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();

  const SiteCache::Stats& stats = site.stats();
  EXPECT_EQ(stats.hits + stats.misses, stats.lookups);
  EXPECT_LE(site.size(), 32u);
  EXPECT_LE(stats.bytes, 64u * 100u);
  EXPECT_EQ(stats.restage_keys, 32u);
  EXPECT_GT(fanouts.load(), 0);
}

// --- sharded DVS directory ----------------------------------------------------

class ShardedDvsTest : public ::testing::Test {
 protected:
  ShardedDvsTest()
      : net_(sim_),
        lattice_(small_config()),
        client_(net_.add_node("client")),
        dvs_node_(net_.add_node("dvs")) {
    net_.add_link(client_, dvs_node_, {1e9, 10 * kMillisecond, 0.0});
  }

  std::unique_ptr<DvsServer> make(DvsConfig cfg) {
    return std::make_unique<DvsServer>(sim_, net_, dvs_node_, lattice_, cfg, &obs_);
  }

  sim::Simulator sim_;
  sim::Network net_;
  obs::Context obs_;
  lightfield::SphericalLattice lattice_;
  sim::NodeId client_, dvs_node_;
};

TEST_F(ShardedDvsTest, EveryViewSetRoutesToItsShardAndIsFound) {
  DvsConfig cfg;
  cfg.leaf_capacity = 4;
  cfg.shards = 4;
  auto dvs = make(cfg);
  for (const ViewSetId& id : lattice_.all_view_sets()) {
    dvs->install(id, fake_exnode(id));
  }
  std::size_t found = 0;
  for (const ViewSetId& id : lattice_.all_view_sets()) {
    dvs->query_async(client_, id, false, [&](const DvsServer::QueryResult& r) {
      if (r.found) ++found;
    });
  }
  sim_.run();
  EXPECT_EQ(found, lattice_.view_set_count());
  // The per-shard counters exist only in sharded mode and partition the
  // totals exactly.
  EXPECT_EQ(obs_.metrics.counter_total("dvs.shard.queries"),
            lattice_.view_set_count());
  EXPECT_EQ(obs_.metrics.counter_total("dvs.shard.hits"),
            lattice_.view_set_count());
  // Leaves are sized leaf_capacity * shards, so the per-shard trees stay as
  // shallow as the single tree they replace.
  EXPECT_GE(dvs->tree_depth(), 1);
}

TEST_F(ShardedDvsTest, SameShardBurstSerializesDistinctShardsProceed) {
  DvsConfig cfg;
  cfg.leaf_capacity = 4;
  cfg.shards = 2;
  cfg.shard_service = 5 * kMillisecond;
  auto dvs = make(cfg);
  for (const ViewSetId& id : lattice_.all_view_sets()) {
    dvs->install(id, fake_exnode(id));
  }

  // Sort the grid by the same hash the router uses.
  std::vector<ViewSetId> shard0, shard1;
  for (const ViewSetId& id : lattice_.all_view_sets()) {
    (lightfield::ViewSetIdHash{}(id) % 2 == 0 ? shard0 : shard1).push_back(id);
  }
  ASSERT_GE(shard0.size(), 2u);
  ASSERT_GE(shard1.size(), 1u);

  // Two queries into the same shard plus one into the other, all at once.
  SimTime done_same_a = 0, done_same_b = 0, done_other = 0;
  dvs->query_async(client_, shard0[0], false,
                   [&](const DvsServer::QueryResult&) { done_same_a = sim_.now(); });
  dvs->query_async(client_, shard0[1], false,
                   [&](const DvsServer::QueryResult&) { done_same_b = sim_.now(); });
  dvs->query_async(client_, shard1[0], false,
                   [&](const DvsServer::QueryResult&) { done_other = sim_.now(); });
  sim_.run();

  // The same-shard loser queued for one service slot; the other shard never
  // waited at all.
  EXPECT_GE(done_same_b, done_same_a + cfg.shard_service);
  EXPECT_LT(done_other, done_same_b);
  EXPECT_EQ(obs_.metrics.counter_total("dvs.shard.waits"), 1u);
}

TEST_F(ShardedDvsTest, UncontendedShardServiceNeverWaits) {
  DvsConfig cfg;
  cfg.leaf_capacity = 4;
  cfg.shards = 4;
  cfg.shard_service = 5 * kMillisecond;
  auto dvs = make(cfg);
  const ViewSetId id{1, 3};
  dvs->install(id, fake_exnode(id));
  // Back-to-back (not concurrent) queries to one shard: the slot is free
  // again by the time the second arrives.
  bool first = false;
  dvs->query_async(client_, id, false,
                   [&](const DvsServer::QueryResult& r) { first = r.found; });
  sim_.run();
  bool second = false;
  dvs->query_async(client_, id, false,
                   [&](const DvsServer::QueryResult& r) { second = r.found; });
  sim_.run();
  EXPECT_TRUE(first);
  EXPECT_TRUE(second);
  EXPECT_EQ(obs_.metrics.counter_total("dvs.shard.waits"), 0u);
}

// --- co-sited agents over the full pipeline -----------------------------------

class CoSitedPipelineTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kResolution = 24;

  CoSitedPipelineTest()
      : net_(sim_),
        fabric_(sim_, net_, &obs_),
        lors_(sim_, net_, fabric_, 0x10f5, &obs_),
        source_(std::make_shared<lightfield::ProceduralSource>(small_config(kResolution))) {
    lan_switch_ = net_.add_node("lan-switch");
    const sim::LinkConfig lan{1e9, 50 * kMicrosecond, 0.0};
    for (int i = 0; i < 2; ++i) {
      const std::string name = "lan-" + std::to_string(i);
      const sim::NodeId node = net_.add_node(name);
      net_.add_link(node, lan_switch_, lan);
      add_depot(node, name);
      lan_depots_.push_back(name);
    }
    wan_router_ = net_.add_node("wan-router");
    net_.add_link(lan_switch_, wan_router_, {100e6, 35 * kMillisecond, 0.0});
    for (int i = 0; i < 2; ++i) {
      const std::string name = "ca-" + std::to_string(i);
      const sim::NodeId node = net_.add_node(name);
      net_.add_link(node, wan_router_, {1e9, kMillisecond, 0.0});
      add_depot(node, name);
      wan_depots_.push_back(name);
    }
    dvs_node_ = net_.add_node("dvs");
    net_.add_link(dvs_node_, wan_router_, {1e9, kMillisecond, 0.0});
    server_node_ = net_.add_node("server");
    net_.add_link(server_node_, wan_router_, {1e9, kMillisecond, 0.0});
    dvs_ = std::make_unique<DvsServer>(sim_, net_, dvs_node_, source_->lattice(),
                                       DvsConfig{}, &obs_);
    site_ = std::make_unique<SiteCache>(sim_, SiteCacheConfig{}, &obs_);
  }

  void add_depot(sim::NodeId node, const std::string& name) {
    ibp::DepotConfig cfg;
    cfg.capacity_bytes = 1ull << 30;
    cfg.max_alloc_bytes = 1ull << 28;
    fabric_.add_depot(node, name, cfg);
  }

  void publish_all() {
    for (const ViewSetId& id : source_->lattice().all_view_sets()) {
      Bytes compressed = source_->build_compressed(id);
      lors::UploadOptions up;
      up.depots = wan_depots_;
      up.block_bytes = 4096;
      bool ok = false;
      lors_.upload_async(server_node_, std::move(compressed), up,
                         [&](const lors::UploadResult& r) {
                           ok = r.status == lors::LorsStatus::kOk;
                           exnode::ExNode node = r.exnode;
                           dvs_->install(id, std::move(node));
                         });
      sim_.run();
      ASSERT_TRUE(ok);
    }
  }

  ClientAgent& add_agent(bool use_site, SimDuration lease = 24 * 3600 * kSecond,
                         bool restage_on_failure = true) {
    const sim::NodeId node =
        net_.add_node("agent-" + std::to_string(agents_.size()));
    net_.add_link(node, lan_switch_, {1e9, 50 * kMicrosecond, 0.0});
    ClientAgentConfig cfg;
    cfg.prefetch = false;
    cfg.staging = true;
    cfg.lan_depots = lan_depots_;
    cfg.staging_concurrency = 2;
    cfg.staging_lease = lease;
    cfg.restage_on_failure = restage_on_failure;
    if (use_site) cfg.site_cache = site_.get();
    agents_.push_back(std::make_unique<ClientAgent>(
        sim_, net_, fabric_, lors_, *dvs_, source_->lattice(), node, cfg, &obs_));
    return *agents_.back();
  }

  sim::Simulator sim_;
  obs::Context obs_;
  sim::Network net_;
  ibp::Fabric fabric_;
  lors::Lors lors_;
  std::shared_ptr<lightfield::ProceduralSource> source_;
  std::unique_ptr<DvsServer> dvs_;
  std::unique_ptr<SiteCache> site_;  // outlives the agents registered on it
  std::vector<std::unique_ptr<ClientAgent>> agents_;
  sim::NodeId lan_switch_, wan_router_, dvs_node_, server_node_;
  std::vector<std::string> lan_depots_, wan_depots_;
};

// The headline bugfix: N co-sited agents prestaging the same database must
// pull each view set across the WAN exactly once, not N times.
TEST_F(CoSitedPipelineTest, CoSitedAgentsStageEachViewSetExactlyOnce) {
  publish_all();
  for (int i = 0; i < 3; ++i) add_agent(/*use_site=*/true);
  for (auto& agent : agents_) agent->start_staging();
  // Bounded run: staging finishes within seconds; draining the full queue
  // would fire the 24 h lease-expiry timers and start a legitimate second
  // staging round, which is not what this test measures.
  sim_.run_until(600 * kSecond);

  const std::size_t sets = source_->lattice().view_set_count();
  std::uint64_t coalesced = 0, adopted = 0;
  for (auto& agent : agents_) {
    EXPECT_TRUE(agent->staging_complete());
    EXPECT_EQ(agent->stats().staged, sets);
    coalesced += agent->stats().restage_coalesced;
    adopted += agent->stats().site_adopted;
  }
  // Exactly one WAN staging per view set, site-wide...
  EXPECT_EQ(site_->stats().restage_leaders, sets);
  EXPECT_EQ(site_->stats().restage_keys, sets);
  // ...and the other two agents' work was entirely shared: every one of
  // their 2 * sets staging targets was adopted or joined, never refetched.
  EXPECT_EQ(coalesced + adopted, 2 * sets);
}

TEST_F(CoSitedPipelineTest, ControlAgentsWithoutTheSiteCacheStageNTimes) {
  publish_all();
  for (int i = 0; i < 2; ++i) add_agent(/*use_site=*/false);
  for (auto& agent : agents_) agent->start_staging();
  sim_.run();
  std::uint64_t wan_bytes = 0;
  for (auto& agent : agents_) {
    EXPECT_TRUE(agent->staging_complete());
    wan_bytes += agent->stats().stage_wan_bytes;
    EXPECT_EQ(agent->stats().restage_coalesced, 0u);
    EXPECT_EQ(agent->stats().site_adopted, 0u);
  }
  EXPECT_EQ(site_->stats().restage_leaders, 0u);
  // Both agents paid the full database over the WAN: the stampede.
  EXPECT_EQ(wan_bytes % 2, 0u);
  EXPECT_GT(wan_bytes, 0u);
}

// Fault-injected regression for the restaged double-count: a download
// failure on the retry path used to unconditionally drop the staged copy
// and queue another restage, so one incident (staged replica dies, retry
// fails over to the WAN and fails again there) could count restaged more
// than once — and a WAN-side failure could destroy a healthy, freshly
// restaged LAN replica. Now only the attempt actually served from the
// staged/site copy drops it: with every depot dark the agent burns through
// its whole refetch budget, but only the FIRST failure — the one served
// from the staged copy — queues (and counts) a restage.
TEST_F(CoSitedPipelineTest, StagedReplicaDeathCountsExactlyOneRestage) {
  publish_all();
  ClientAgent& agent = add_agent(/*use_site=*/true);
  agent.start_staging();
  // Bounded: stop before the 24 h staging-lease expiry wave AND stay inside
  // the 1 h source lease on the WAN replicas, which the refetches depend on.
  sim_.run_until(300 * kSecond);
  ASSERT_TRUE(agent.staging_complete());
  ASSERT_EQ(agent.stats().restaged, 0u);
  const std::size_t sets = source_->lattice().view_set_count();
  ASSERT_EQ(site_->stats().restage_leaders, sets);

  // Every depot dark: the staged attempt fails, and so does each WAN-side
  // refetch after it. Heal long after the incident has fully played out.
  for (const std::string& name : lan_depots_) fabric_.set_offline(name, true);
  for (const std::string& name : wan_depots_) fabric_.set_offline(name, true);
  sim_.after(300 * kSecond, [&] {
    for (const std::string& name : lan_depots_) fabric_.set_offline(name, false);
    for (const std::string& name : wan_depots_) fabric_.set_offline(name, false);
  });

  const ViewSetId id{2, 6};
  bool done = false;
  Bytes received = {9};
  agent.request_view_set(id, [&](const Bytes& data, AccessClass, SimDuration) {
    done = true;
    received = data;
  });
  sim_.run_until(1000 * kSecond);  // covers the incident and the +300 s heal

  ASSERT_TRUE(done);
  EXPECT_TRUE(received.empty());  // the incident itself is a failed access
  // The refetch budget was spent: several failures, ONE counted restage —
  // only the attempt served from the staged copy dropped it; the WAN-side
  // retries must not count again.
  EXPECT_EQ(agent.stats().refetches, 2u);
  EXPECT_EQ(agent.stats().restaged, 1u);
  // The queued restage led exactly one single-flight attempt (it failed —
  // the depots were still dark — but it was one flight, not a stampede).
  EXPECT_EQ(site_->stats().restage_leaders, sets + 1);
  EXPECT_GE(agent.stats().staging_failures, 1u);

  // After the heal the same view set is served cleanly over the WAN.
  bool delivered = false;
  agent.request_view_set(id, [&](const Bytes& data, AccessClass cls, SimDuration) {
    delivered = !data.empty();
    EXPECT_EQ(cls, AccessClass::kWan);
  });
  sim_.run_until(1500 * kSecond);  // still inside the 1 h source lease
  EXPECT_TRUE(delivered);
  EXPECT_EQ(agent.stats().restaged, 1u);  // still the one incident
}

// Lease-expiry wave across a site: when the shared lease runs out, every
// co-sited agent must drop the copy in the same virtual instant — no agent
// may still trust the dead replica afterwards. Restaging stays off so the
// wave is observable as a terminal state (with it on, the site would heal
// itself and re-publish fresh leases forever).
TEST_F(CoSitedPipelineTest, LeaseExpiryWaveDropsEveryAgentAtomically) {
  publish_all();
  const SimDuration lease = 600 * kSecond;  // safely after staging completes
  add_agent(/*use_site=*/true, lease, /*restage_on_failure=*/false);
  add_agent(/*use_site=*/true, lease, /*restage_on_failure=*/false);
  for (auto& agent : agents_) agent->start_staging();
  sim_.run();  // staging, then every expiry timer, then quiescence

  const std::size_t sets = source_->lattice().view_set_count();
  for (auto& agent : agents_) {
    ASSERT_TRUE(agent->staging_complete());
    // The wave reached this agent for every staged view set: nothing is
    // still trusted after its lease ended.
    for (const ViewSetId& id : source_->lattice().all_view_sets()) {
      EXPECT_FALSE(agent->is_staged(id));
    }
    EXPECT_EQ(agent->stats().restaged, 0u);  // restage off: pure wave
  }
  EXPECT_EQ(site_->size(), 0u);
  // One shared entry per view set, each expiring exactly once site-wide.
  EXPECT_EQ(site_->stats().expirations, sets);
}

// --- composed co-sited crowd scenario -----------------------------------------

TEST(CoSitedScenario, SiteCacheCollapsesTheRestageStampede) {
  const session::ScenarioResult site =
      session::run_scenario(session::co_sited_crowd(/*site=*/true, 20));
  const session::ScenarioResult control =
      session::run_scenario(session::co_sited_crowd(/*site=*/false, 20));

  EXPECT_EQ(site.failed_accesses, 0u);
  EXPECT_EQ(control.failed_accesses, 0u);
  // Exactly one WAN staging per hot view set with the cooperative cache...
  EXPECT_GT(site.robustness.site_restage_keys, 0u);
  EXPECT_EQ(site.robustness.site_restage_leaders, site.robustness.site_restage_keys);
  EXPECT_GT(site.robustness.restage_coalesced, 0u);
  EXPECT_GT(site.robustness.site_adopted, 0u);
  // ...which buys strictly fewer WAN bytes than everyone restaging alone.
  EXPECT_LT(site.robustness.stage_wan_bytes, control.robustness.stage_wan_bytes);
  // The control never touches the site machinery.
  EXPECT_EQ(control.robustness.restage_coalesced, 0u);
  EXPECT_EQ(control.robustness.site_restage_leaders, 0u);
}

TEST(CoSitedScenario, CoSitedRunsAreDeterministic) {
  const session::ScenarioResult a =
      session::run_scenario(session::co_sited_crowd(/*site=*/true, 10));
  const session::ScenarioResult b =
      session::run_scenario(session::co_sited_crowd(/*site=*/true, 10));
  EXPECT_EQ(a.mean_total_s, b.mean_total_s);
  EXPECT_EQ(a.robustness.stage_wan_bytes, b.robustness.stage_wan_bytes);
  EXPECT_EQ(a.robustness.restage_coalesced, b.robustness.restage_coalesced);
  EXPECT_EQ(a.robustness.site_restage_leaders, b.robustness.site_restage_leaders);
  EXPECT_EQ(a.sim_events, b.sim_events);
  EXPECT_EQ(a.duration, b.duration);
}

}  // namespace
}  // namespace lon::streaming
