// Tests for MultiDatabase: database selection geometry, hysteresis,
// direction mapping and the XML manifest.
#include <gtest/gtest.h>

#include "exnode/xml.hpp"
#include "lightfield/multidb.hpp"

namespace lon::lightfield {
namespace {

LatticeConfig small_lattice() {
  LatticeConfig cfg;
  cfg.angular_step_deg = 15.0;
  cfg.view_set_span = 3;
  cfg.view_resolution = 16;
  return cfg;
}

class MultiDbTest : public ::testing::Test {
 protected:
  MultiDbTest() {
    // Two databases along the x axis, outer radius 3 (lattice default).
    left_ = db_.add("left", {0, 0, 0}, small_lattice());
    right_ = db_.add("right", {10, 0, 0}, small_lattice());
  }

  MultiDatabase db_{0.05};
  DatabaseId left_ = 0, right_ = 0;
};

TEST_F(MultiDbTest, AddValidatesInputs) {
  EXPECT_THROW(db_.add("", {0, 0, 0}, small_lattice()), std::invalid_argument);
  EXPECT_THROW(db_.add("left", {1, 1, 1}, small_lattice()), std::invalid_argument);
  EXPECT_THROW(db_.add("x", {0, 0, 0}, small_lattice(), -1.0), std::invalid_argument);
  LatticeConfig bad = small_lattice();
  bad.inner_radius = 0.5;  // does not contain the volume
  EXPECT_THROW(db_.add("y", {0, 0, 0}, bad), std::invalid_argument);
  EXPECT_THROW(MultiDatabase(1.5), std::invalid_argument);
  EXPECT_THROW((void)db_.entry(99), std::out_of_range);
}

TEST_F(MultiDbTest, SelectsNearestUsableDatabase) {
  EXPECT_EQ(db_.select({-5, 0, 0}), left_);
  EXPECT_EQ(db_.select({15, 0, 0}), right_);
  // Halfway between them: both usable; "left" is (just) nearer.
  EXPECT_EQ(db_.select({4.9, 0, 0}), left_);
  EXPECT_EQ(db_.select({5.1, 0, 0}), right_);
}

TEST_F(MultiDbTest, ViewerInsideEverySphereHasNoDatabase) {
  // On top of the left center (inside its radius-3 sphere) and > 3 away is
  // false for left, but right is 10 away: right serves it.
  EXPECT_EQ(db_.select({0, 0, 0}), right_);
  // A database region with no coverage at all:
  MultiDatabase lone;
  lone.add("only", {0, 0, 0}, small_lattice());
  EXPECT_FALSE(lone.select({0.5, 0, 0}).has_value());
  EXPECT_TRUE(lone.select({4, 0, 0}).has_value());
}

TEST_F(MultiDbTest, HysteresisPreventsBoundaryFlipFlop) {
  // Start on the left side, drift just past the midpoint: with a current
  // selection the midpoint crossing does not switch immediately...
  const auto first = db_.select({4.8, 0, 0});
  ASSERT_EQ(first, left_);
  EXPECT_EQ(db_.select({5.05, 0, 0}, first), left_);
  // At (8,0,0) the viewer has entered the right database's sphere, so the
  // left one (still usable) keeps serving.
  EXPECT_EQ(db_.select({8.0, 0, 0}, first), left_);
  // ...but a decisive move past the right station does switch.
  EXPECT_EQ(db_.select({14.0, 0, 0}, first), right_);
  // Without a current selection the plain nearest rule applies.
  EXPECT_EQ(db_.select({5.05, 0, 0}), right_);
}

TEST_F(MultiDbTest, CurrentBecomesUnusableWhenEntered) {
  // The viewer walks inside the left sphere: the selection must leave it
  // even with hysteresis.
  const auto inside = db_.select({2.0, 0, 0}, left_);
  ASSERT_TRUE(inside.has_value());
  EXPECT_EQ(*inside, right_);
}

TEST_F(MultiDbTest, DirectionPointsFromCenterToViewer) {
  const Spherical dir = db_.direction_in(left_, {5, 0, 0});
  EXPECT_NEAR(dir.theta, kPi / 2, 1e-9);  // in the equatorial plane
  EXPECT_NEAR(dir.phi, 0.0, 1e-9);        // along +x
  const Spherical up = db_.direction_in(left_, {0, 0, 7});
  EXPECT_NEAR(up.theta, 0.0, 1e-9);
}

TEST_F(MultiDbTest, RangeUsesScale) {
  MultiDatabase scaled;
  const auto id = scaled.add("s", {0, 0, 0}, small_lattice(), 2.0);
  EXPECT_NEAR(scaled.range_in(id, {8, 0, 0}), 4.0, 1e-12);
  // Scale also grows the world footprint: a viewer at 5 is inside 2*3=6.
  EXPECT_FALSE(scaled.usable(id, {5, 0, 0}));
  EXPECT_TRUE(scaled.usable(id, {7, 0, 0}));
}

TEST_F(MultiDbTest, ScopedKeysAreNamespaced) {
  EXPECT_EQ(db_.scoped_key(left_, {1, 2}), "left/vs1_2");
  EXPECT_EQ(db_.scoped_key(right_, {0, 0}), "right/vs0_0");
}

TEST_F(MultiDbTest, ManifestXmlRoundTrip) {
  const MultiDatabase back = MultiDatabase::from_xml(db_.to_xml());
  ASSERT_EQ(back.size(), 2u);
  const DatabaseEntry* left = back.find("left");
  const DatabaseEntry* right = back.find("right");
  ASSERT_NE(left, nullptr);
  ASSERT_NE(right, nullptr);
  EXPECT_NEAR(right->center.x, 10.0, 1e-9);
  EXPECT_EQ(left->lattice.view_set_span, 3);
  EXPECT_NEAR(left->lattice.angular_step_deg, 15.0, 1e-9);
  // Same selection behaviour after the round trip.
  EXPECT_EQ(back.select({-5, 0, 0}), back.find("left")->id);
}

TEST_F(MultiDbTest, FromXmlRejectsWrongRoot) {
  EXPECT_THROW(MultiDatabase::from_xml("<nope/>"), lon::exnode::XmlError);
}

}  // namespace
}  // namespace lon::lightfield
