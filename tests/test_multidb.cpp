// Tests for MultiDatabase: database selection geometry, hysteresis,
// direction mapping and the XML manifest.
#include <gtest/gtest.h>

#include "exnode/xml.hpp"
#include "lightfield/multidb.hpp"

namespace lon::lightfield {
namespace {

LatticeConfig small_lattice() {
  LatticeConfig cfg;
  cfg.angular_step_deg = 15.0;
  cfg.view_set_span = 3;
  cfg.view_resolution = 16;
  return cfg;
}

class MultiDbTest : public ::testing::Test {
 protected:
  MultiDbTest() {
    // Two databases along the x axis, outer radius 3 (lattice default).
    left_ = db_.add("left", {0, 0, 0}, small_lattice());
    right_ = db_.add("right", {10, 0, 0}, small_lattice());
  }

  MultiDatabase db_{0.05};
  DatabaseId left_ = 0, right_ = 0;
};

TEST_F(MultiDbTest, AddValidatesInputs) {
  EXPECT_THROW(db_.add("", {0, 0, 0}, small_lattice()), std::invalid_argument);
  EXPECT_THROW(db_.add("left", {1, 1, 1}, small_lattice()), std::invalid_argument);
  EXPECT_THROW(db_.add("x", {0, 0, 0}, small_lattice(), -1.0), std::invalid_argument);
  LatticeConfig bad = small_lattice();
  bad.inner_radius = 0.5;  // does not contain the volume
  EXPECT_THROW(db_.add("y", {0, 0, 0}, bad), std::invalid_argument);
  EXPECT_THROW(MultiDatabase(1.5), std::invalid_argument);
  EXPECT_THROW((void)db_.entry(99), std::out_of_range);
}

TEST_F(MultiDbTest, SelectsNearestUsableDatabase) {
  EXPECT_EQ(db_.select({-5, 0, 0}), left_);
  EXPECT_EQ(db_.select({15, 0, 0}), right_);
  // Halfway between them: both usable; "left" is (just) nearer.
  EXPECT_EQ(db_.select({4.9, 0, 0}), left_);
  EXPECT_EQ(db_.select({5.1, 0, 0}), right_);
}

TEST_F(MultiDbTest, ViewerInsideEverySphereHasNoDatabase) {
  // On top of the left center (inside its radius-3 sphere) and > 3 away is
  // false for left, but right is 10 away: right serves it.
  EXPECT_EQ(db_.select({0, 0, 0}), right_);
  // A database region with no coverage at all:
  MultiDatabase lone;
  lone.add("only", {0, 0, 0}, small_lattice());
  EXPECT_FALSE(lone.select({0.5, 0, 0}).has_value());
  EXPECT_TRUE(lone.select({4, 0, 0}).has_value());
}

TEST_F(MultiDbTest, HysteresisPreventsBoundaryFlipFlop) {
  // Start on the left side, drift just past the midpoint: with a current
  // selection the midpoint crossing does not switch immediately...
  const auto first = db_.select({4.8, 0, 0});
  ASSERT_EQ(first, left_);
  EXPECT_EQ(db_.select({5.05, 0, 0}, first), left_);
  // At (8,0,0) the viewer has entered the right database's sphere, so the
  // left one (still usable) keeps serving.
  EXPECT_EQ(db_.select({8.0, 0, 0}, first), left_);
  // ...but a decisive move past the right station does switch.
  EXPECT_EQ(db_.select({14.0, 0, 0}, first), right_);
  // Without a current selection the plain nearest rule applies.
  EXPECT_EQ(db_.select({5.05, 0, 0}), right_);
}

TEST_F(MultiDbTest, CurrentBecomesUnusableWhenEntered) {
  // The viewer walks inside the left sphere: the selection must leave it
  // even with hysteresis.
  const auto inside = db_.select({2.0, 0, 0}, left_);
  ASSERT_TRUE(inside.has_value());
  EXPECT_EQ(*inside, right_);
}

TEST_F(MultiDbTest, DirectionPointsFromCenterToViewer) {
  const Spherical dir = db_.direction_in(left_, {5, 0, 0});
  EXPECT_NEAR(dir.theta, kPi / 2, 1e-9);  // in the equatorial plane
  EXPECT_NEAR(dir.phi, 0.0, 1e-9);        // along +x
  const Spherical up = db_.direction_in(left_, {0, 0, 7});
  EXPECT_NEAR(up.theta, 0.0, 1e-9);
}

TEST_F(MultiDbTest, RangeUsesScale) {
  MultiDatabase scaled;
  const auto id = scaled.add("s", {0, 0, 0}, small_lattice(), 2.0);
  EXPECT_NEAR(scaled.range_in(id, {8, 0, 0}), 4.0, 1e-12);
  // Scale also grows the world footprint: a viewer at 5 is inside 2*3=6.
  EXPECT_FALSE(scaled.usable(id, {5, 0, 0}));
  EXPECT_TRUE(scaled.usable(id, {7, 0, 0}));
}

TEST_F(MultiDbTest, ScopedKeysAreNamespaced) {
  EXPECT_EQ(db_.scoped_key(left_, {1, 2}), "left/vs1_2");
  EXPECT_EQ(db_.scoped_key(right_, {0, 0}), "right/vs0_0");
}

TEST_F(MultiDbTest, ManifestXmlRoundTrip) {
  const MultiDatabase back = MultiDatabase::from_xml(db_.to_xml());
  ASSERT_EQ(back.size(), 2u);
  const DatabaseEntry* left = back.find("left");
  const DatabaseEntry* right = back.find("right");
  ASSERT_NE(left, nullptr);
  ASSERT_NE(right, nullptr);
  EXPECT_NEAR(right->center.x, 10.0, 1e-9);
  EXPECT_EQ(left->lattice.view_set_span, 3);
  EXPECT_NEAR(left->lattice.angular_step_deg, 15.0, 1e-9);
  // Same selection behaviour after the round trip.
  EXPECT_EQ(back.select({-5, 0, 0}), back.find("left")->id);
}

TEST_F(MultiDbTest, FromXmlRejectsWrongRoot) {
  EXPECT_THROW(MultiDatabase::from_xml("<nope/>"), lon::exnode::XmlError);
}

// --- hysteresis properties (PR 7) ---------------------------------------------

TEST_F(MultiDbTest, HysteresisNoFlipFlopOnBoundaryDriftWalk) {
  // A viewer dithering around the exact midpoint (the nearest-rule boundary
  // at x = 5) must never switch: with margin 0.05 the switch thresholds sit
  // at x = 10/(2-m) ~ 5.128 and x = 10(1-m)/(2-m) ~ 4.872, so any drift
  // inside that dead band keeps the current selection.
  std::optional<DatabaseId> current = db_.select({4.5, 0, 0});
  ASSERT_EQ(current, left_);
  const double amplitudes[] = {0.02, -0.05, 0.08, -0.1, 0.12, -0.12, 0.1, 0.05};
  for (int lap = 0; lap < 25; ++lap) {
    for (const double a : amplitudes) {
      current = db_.select({5.0 + a, 0, 0}, current);
      ASSERT_EQ(current, left_) << "flip at offset " << a << " lap " << lap;
    }
  }
}

TEST_F(MultiDbTest, HysteresisSwitchesExactlyOncePerCrossing) {
  // A decisive monotonic crossing switches exactly once — and the return
  // crossing switches exactly once back. More than one change per crossing
  // would be the flip-flop the margin exists to prevent.
  std::optional<DatabaseId> current = db_.select({4.0, 0, 0});
  ASSERT_EQ(current, left_);
  int switches = 0;
  for (double x = 4.0; x <= 6.5; x += 0.01) {
    const auto next = db_.select({x, 0, 0}, current);
    if (next != current) ++switches;
    current = next;
  }
  EXPECT_EQ(switches, 1);
  EXPECT_EQ(current, right_);
  for (double x = 6.5; x >= 4.0; x -= 0.01) {
    const auto next = db_.select({x, 0, 0}, current);
    if (next != current) ++switches;
    current = next;
  }
  EXPECT_EQ(switches, 2);
  EXPECT_EQ(current, left_);
}

// --- manifest strictness and round-trip fidelity (PR 7) -----------------------

TEST_F(MultiDbTest, ManifestRoundTripPreservesMarginAndLatticeFields) {
  MultiDatabase out(0.125);
  LatticeConfig cfg = small_lattice();
  cfg.fov_deg = 42.0;
  out.add("a", {1, 2, 3}, cfg, 1.5);
  const MultiDatabase back = MultiDatabase::from_xml(out.to_xml());
  EXPECT_NEAR(back.margin(), 0.125, 1e-9);
  const DatabaseEntry* a = back.find("a");
  ASSERT_NE(a, nullptr);
  EXPECT_NEAR(a->center.x, 1.0, 1e-9);
  EXPECT_NEAR(a->center.y, 2.0, 1e-9);
  EXPECT_NEAR(a->center.z, 3.0, 1e-9);
  EXPECT_NEAR(a->scale, 1.5, 1e-9);
  EXPECT_NEAR(a->lattice.angular_step_deg, cfg.angular_step_deg, 1e-9);
  EXPECT_EQ(a->lattice.view_set_span, cfg.view_set_span);
  EXPECT_EQ(a->lattice.view_resolution, cfg.view_resolution);
  EXPECT_NEAR(a->lattice.outer_radius, cfg.outer_radius, 1e-9);
  EXPECT_NEAR(a->lattice.inner_radius, cfg.inner_radius, 1e-9);
  EXPECT_NEAR(a->lattice.fov_deg, 42.0, 1e-9);
}

TEST_F(MultiDbTest, FromXmlRejectsMarginOutsideUnitInterval) {
  // from_xml must reject bad margins with a clear XmlError, not bubble
  // std::stod quirks (partial parses, bare std::invalid_argument) upward.
  for (const char* bad : {"1.5", "-0.1", "1.0", "abc", "0.5junk", "nan", ""}) {
    const std::string xml =
        std::string("<multidb margin=\"") + bad + "\"></multidb>";
    EXPECT_THROW(MultiDatabase::from_xml(xml), lon::exnode::XmlError) << bad;
  }
}

TEST_F(MultiDbTest, FromXmlRejectsMalformedNumericAttributes) {
  // Corrupt one attribute of an otherwise valid manifest: the loader must
  // fail loudly instead of silently truncating ("3junk" -> 3).
  MultiDatabase one;
  one.add("db", {0, 0, 0}, small_lattice());
  const std::string good = one.to_xml();
  const auto corrupt = [&](const std::string& key, const std::string& value) {
    const std::string needle = key + "=\"";
    const std::size_t at = good.find(needle);
    ASSERT_NE(at, std::string::npos) << key;
    const std::size_t begin = at + needle.size();
    const std::size_t end = good.find('"', begin);
    std::string xml = good;
    xml.replace(begin, end - begin, value);
    EXPECT_THROW(MultiDatabase::from_xml(xml), lon::exnode::XmlError)
        << key << "=" << value;
  };
  corrupt("span", "3junk");
  corrupt("resolution", "abc");
  corrupt("resolution", "0");
  corrupt("resolution", "-16");
  corrupt("cx", "");
  corrupt("scale", "1.0x");
}

// --- the LOD ladder builder (PR 7) --------------------------------------------

TEST(LodLadder, BuildsFullPlusDescendingCoarseTiers) {
  LatticeConfig full;
  full.angular_step_deg = 15.0;
  full.view_set_span = 3;
  full.view_resolution = 200;
  const MultiDatabase ladder = MultiDatabase::lod_ladder(full, {50, 100});
  ASSERT_EQ(ladder.size(), 3u);
  // Entry 0 is the full database; coarse tiers follow finest first, however
  // the caller ordered them.
  EXPECT_EQ(ladder.entry(0).name, "full");
  EXPECT_EQ(ladder.entry(0).lattice.view_resolution, 200u);
  EXPECT_EQ(ladder.entry(1).name, "lod100");
  EXPECT_EQ(ladder.entry(1).lattice.view_resolution, 100u);
  EXPECT_EQ(ladder.entry(2).name, "lod50");
  EXPECT_EQ(ladder.entry(2).lattice.view_resolution, 50u);
  // Geometry is shared across tiers — only the resolution drops.
  EXPECT_EQ(ladder.entry(2).lattice.view_set_span, full.view_set_span);
  // Cache keys are namespaced per tier.
  EXPECT_EQ(ladder.scoped_key(1, {2, 3}), "lod100/vs2_3");
}

TEST(LodLadder, RejectsDegenerateResolutions) {
  LatticeConfig full;
  full.angular_step_deg = 15.0;
  full.view_set_span = 3;
  full.view_resolution = 200;
  EXPECT_THROW(MultiDatabase::lod_ladder(full, {0}), std::invalid_argument);
  EXPECT_THROW(MultiDatabase::lod_ladder(full, {200}), std::invalid_argument);
  EXPECT_THROW(MultiDatabase::lod_ladder(full, {300}), std::invalid_argument);
  EXPECT_THROW(MultiDatabase::lod_ladder(full, {100, 100}), std::invalid_argument);
}

}  // namespace
}  // namespace lon::lightfield
