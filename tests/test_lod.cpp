// Continuous LOD streaming (PR 7): (id, lod)-scoped cache keying, the
// per-access LOD selector, and progressive refinement end to end on the
// PDA-class constrained link — plus the demand_wan_active counter balance
// the coarse/shed/retry paths must preserve.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "policy/lod.hpp"
#include "session/experiment.hpp"
#include "session/scenario.hpp"
#include "streaming/cache.hpp"

namespace lon {
namespace {

using lightfield::ViewSetId;
using streaming::AccessClass;
using streaming::ViewSetCache;

// --- (id, lod) cache keying ---------------------------------------------------

TEST(LodCache, CoarseBytesNeverServeTheFullResolutionKey) {
  ViewSetCache cache(1 << 20);
  const ViewSetId id{1, 2};
  ASSERT_TRUE(cache.put(id, Bytes(64, 7), /*prefetched=*/false, /*lod=*/1));
  EXPECT_TRUE(cache.contains(id, 1));
  EXPECT_FALSE(cache.contains(id, 0));
  // The regression this PR fixes: a full-resolution lookup must miss, not
  // silently hand back the coarse substitute.
  EXPECT_EQ(cache.get(id), nullptr);
  EXPECT_NE(cache.get(id, nullptr, true, 1), nullptr);
}

TEST(LodCache, TiersOfOneViewSetCoexist) {
  ViewSetCache cache(1 << 20);
  const ViewSetId id{0, 0};
  ASSERT_TRUE(cache.put(id, Bytes(512, 1), false, 0));
  ASSERT_TRUE(cache.put(id, Bytes(128, 2), false, 1));
  ASSERT_TRUE(cache.put(id, Bytes(32, 3), false, 2));
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.get(id, nullptr, true, 0)->size(), 512u);
  EXPECT_EQ(cache.get(id, nullptr, true, 1)->size(), 128u);
  EXPECT_EQ(cache.get(id, nullptr, true, 2)->size(), 32u);
}

TEST(LodCache, BestCoarseLodReturnsTheFinestCachedTier) {
  ViewSetCache cache(1 << 20);
  const ViewSetId id{3, 4};
  EXPECT_EQ(cache.best_coarse_lod(id, 3), 0);
  ASSERT_TRUE(cache.put(id, Bytes(32, 0), false, 2));
  EXPECT_EQ(cache.best_coarse_lod(id, 3), 2);
  ASSERT_TRUE(cache.put(id, Bytes(128, 0), false, 1));
  EXPECT_EQ(cache.best_coarse_lod(id, 3), 1);
  // A full-resolution entry is not a "coarse" tier.
  ViewSetCache full_only(1 << 20);
  ASSERT_TRUE(full_only.put(id, Bytes(512, 0), false, 0));
  EXPECT_EQ(full_only.best_coarse_lod(id, 3), 0);
}

TEST(LodCache, EraseCoarseDropsEveryTierButKeepsFullRes) {
  ViewSetCache cache(1 << 20);
  const ViewSetId id{5, 6};
  const ViewSetId other{5, 7};
  ASSERT_TRUE(cache.put(id, Bytes(512, 0), false, 0));
  ASSERT_TRUE(cache.put(id, Bytes(128, 0), false, 1));
  ASSERT_TRUE(cache.put(id, Bytes(32, 0), false, 2));
  ASSERT_TRUE(cache.put(other, Bytes(128, 0), false, 1));
  EXPECT_EQ(cache.erase_coarse(id, 3), 2u);
  EXPECT_TRUE(cache.contains(id, 0));
  EXPECT_FALSE(cache.contains(id, 1));
  EXPECT_FALSE(cache.contains(id, 2));
  // Other ids' tiers are untouched, and the byte accounting balances.
  EXPECT_TRUE(cache.contains(other, 1));
  EXPECT_EQ(cache.bytes_used(), 512u + 128u);
  EXPECT_EQ(cache.erase_coarse(id, 3), 0u);
}

// --- LOD selector -------------------------------------------------------------

TEST(LodSelector, FullResolutionWhenItFitsOrNothingIsConfigured) {
  const policy::LodSelector sel;
  const std::vector<double> ratios{0.25, 0.0625};
  // No tiers configured: always full resolution.
  EXPECT_EQ(sel.pick(10 * kSecond, kSecond, {}), 0);
  // Prediction inside the (headroom-scaled) budget: no reason to degrade.
  EXPECT_EQ(sel.pick(500 * kMillisecond, kSecond, ratios), 0);
}

TEST(LodSelector, PicksTheFinestTierThatFits) {
  const policy::LodSelector sel(policy::LodSelector::Config{/*headroom=*/0.8});
  const std::vector<double> ratios{0.25, 0.0625};
  // Full needs 2 s against an 800 ms effective budget; tier 1 is predicted
  // at 500 ms and fits — the finest acceptable tier wins.
  EXPECT_EQ(sel.pick(2 * kSecond, kSecond, ratios), 1);
  // Full at 4 s: tier 1 (1 s) no longer fits, tier 2 (250 ms) does.
  EXPECT_EQ(sel.pick(4 * kSecond, kSecond, ratios), 2);
}

TEST(LodSelector, CoarsestTierWhenNothingFits) {
  const policy::LodSelector sel;
  const std::vector<double> ratios{0.25, 0.0625};
  EXPECT_EQ(sel.pick(100 * kSecond, kSecond, ratios), 2);
  // Deadline already blown: the cheapest possible delivery.
  EXPECT_EQ(sel.pick(kSecond, 0, ratios), 2);
  EXPECT_EQ(sel.pick(kSecond, -kSecond, ratios), 2);
}

TEST(LodSelector, CostRatiosScaleWithPixelCount) {
  const std::vector<double> ratios =
      policy::LodSelector::cost_ratios(200, {100, 50});
  ASSERT_EQ(ratios.size(), 2u);
  EXPECT_NEAR(ratios[0], 0.25, 1e-12);
  EXPECT_NEAR(ratios[1], 0.0625, 1e-12);
}

// --- PDA-class constrained link: the tentpole, end to end ---------------------

TEST(LodStreaming, PdaLinkHoldsEveryAccessInsideTheDeadline) {
  const session::Scenario scenario = session::pda_link(/*lod_streaming=*/true);
  const double slo_s = to_seconds(scenario.slo_deadline);
  const session::ScenarioResult r = session::run_scenario(scenario);
  EXPECT_EQ(r.failed_accesses, 0u);
  std::size_t misses = 0, coarse = 0;
  for (const auto& pc : r.clients) {
    for (const auto& a : pc.accesses) {
      if (to_seconds(a.total()) > slo_s) ++misses;
      if (a.lod > 0) ++coarse;
    }
  }
  // Degrade resolution, never fluidity: zero deadline misses, a nonzero
  // number of coarse serves, and every background refinement reaching full
  // resolution before the run drains.
  EXPECT_EQ(misses, 0u);
  EXPECT_GT(coarse, 0u);
  EXPECT_GT(r.robustness.lod_coarse_serves, 0u);
  EXPECT_GT(r.robustness.lod_refined, 0u);
  EXPECT_EQ(r.robustness.lod_refined, r.robustness.lod_refinements);
}

TEST(LodStreaming, FullResolutionControlMissesTheDeadline) {
  const session::Scenario scenario = session::pda_link(/*lod_streaming=*/false);
  const double slo_s = to_seconds(scenario.slo_deadline);
  const session::ScenarioResult r = session::run_scenario(scenario);
  EXPECT_EQ(r.failed_accesses, 0u);
  std::size_t misses = 0;
  for (const auto& pc : r.clients) {
    for (const auto& a : pc.accesses) {
      if (to_seconds(a.total()) > slo_s) ++misses;
      EXPECT_EQ(a.lod, 0);
    }
  }
  EXPECT_GT(misses, 0u);
  EXPECT_EQ(r.robustness.lod_coarse_serves, 0u);
  EXPECT_EQ(r.robustness.lod_refinements, 0u);
}

TEST(LodStreaming, RevisitAfterRefinementServesFullResolutionBytes) {
  // The pda_link scripts pan out six steps and back five: every return-leg
  // access revisits a view set whose background refinement has had a full
  // dwell to land. Those accesses must be full-resolution cache hits — the
  // post-upgrade regression this PR's cache keying exists to prevent is a
  // demand access silently served the stale coarse substitute.
  const session::ScenarioResult r =
      session::run_scenario(session::pda_link(/*lod_streaming=*/true));
  for (const auto& pc : r.clients) {
    ASSERT_EQ(pc.accesses.size(), 11u);
    std::uint64_t max_coarse_bytes = 0;
    auto min_full_bytes = std::numeric_limits<std::uint64_t>::max();
    for (const auto& a : pc.accesses) {
      if (a.lod > 0) {
        max_coarse_bytes = std::max(max_coarse_bytes, a.compressed_bytes);
      } else {
        min_full_bytes = std::min(min_full_bytes, a.compressed_bytes);
      }
    }
    for (std::size_t i = 6; i < pc.accesses.size(); ++i) {
      EXPECT_EQ(pc.accesses[i].lod, 0) << "return-leg access " << i;
      EXPECT_EQ(pc.accesses[i].cls, AccessClass::kAgentHit) << i;
    }
    // Full-resolution payloads are an order of magnitude larger than the
    // coarse tiers; equal sizes would mean coarse bytes leaked through.
    EXPECT_GT(min_full_bytes, max_coarse_bytes);
  }
}

TEST(LodStreaming, PdaRunsAreDeterministic) {
  const session::ScenarioResult a = session::run_scenario(session::pda_link(true));
  const session::ScenarioResult b = session::run_scenario(session::pda_link(true));
  EXPECT_EQ(a.mean_total_s, b.mean_total_s);
  EXPECT_EQ(a.p99_worst_s, b.p99_worst_s);
  EXPECT_EQ(a.robustness.lod_coarse_serves, b.robustness.lod_coarse_serves);
  EXPECT_EQ(a.robustness.lod_refined, b.robustness.lod_refined);
  EXPECT_EQ(a.duration, b.duration);
}

// --- degradation-ladder coexistence -------------------------------------------

TEST(LodLadder, LadderCoarseServesAreScopedAndLabelled) {
  // Ladder mode (PR 6): a 1 ns deadline walks the agent down to the coarse
  // rung; every coarse serve must be labelled with its lod and carry the
  // coarse tier's bytes — never cached at, or served from, the full key.
  session::ExperimentConfig cfg;
  cfg.lattice.angular_step_deg = 15.0;
  cfg.lattice.view_set_span = 3;
  cfg.lattice.view_resolution = 64;
  cfg.which = session::Case::kWanStreaming;
  cfg.all_filler = true;
  cfg.client.decode = false;
  cfg.client.timing = streaming::ClientConfig::Timing::kModeled;
  cfg.dwell = 200 * kMillisecond;
  cfg.accesses = 10;
  cfg.degrade = true;
  cfg.degrade_after_misses = 1;
  cfg.upgrade_after_hits = 100;
  cfg.interactivity_deadline = 1;
  cfg.lod_resolution = 32;

  const session::ExperimentResult result = session::run_experiment(cfg);
  EXPECT_EQ(result.failed_accesses, 0u);
  EXPECT_GT(result.robustness.degrade_lod, 0u);
  // Ladder mode does not refine in the background (lod_streaming off).
  EXPECT_EQ(result.robustness.lod_refinements, 0u);
  std::uint64_t max_coarse_bytes = 0;
  auto min_full_bytes = std::numeric_limits<std::uint64_t>::max();
  std::size_t coarse = 0;
  for (const auto& a : result.accesses) {
    if (a.lod > 0) {
      ++coarse;
      max_coarse_bytes = std::max(max_coarse_bytes, a.compressed_bytes);
    } else if (a.compressed_bytes > 0) {
      min_full_bytes = std::min(min_full_bytes, a.compressed_bytes);
    }
  }
  EXPECT_GT(coarse, 0u);
  EXPECT_GT(min_full_bytes, max_coarse_bytes);
}

// --- demand_wan_active balance ------------------------------------------------

TEST(LodStreaming, DemandWanCounterBalancesAfterEveryScenario) {
  // The WAN-concurrency gauge must return to zero however a download ends:
  // clean finish, coarse redirect, retry after a failure, or shed. A leak
  // here starves (or floods) the admission path for the rest of the session.
  const session::ScenarioResult lod = session::run_scenario(session::pda_link(true));
  EXPECT_EQ(lod.agent_stats.demand_wan_active, 0);
  const session::ScenarioResult crowd =
      session::run_scenario(session::flash_crowd(8, /*admission=*/true));
  EXPECT_EQ(crowd.agent_stats.demand_wan_active, 0);
  const session::ScenarioResult chaos =
      session::run_scenario(session::teleport_under_faults(2));
  EXPECT_EQ(chaos.agent_stats.demand_wan_active, 0);
}

}  // namespace
}  // namespace lon
