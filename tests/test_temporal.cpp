// Tests for time-varying light fields: frame coherence, determinism and the
// playback prefetch policy.
#include <gtest/gtest.h>

#include "lightfield/temporal.hpp"

namespace lon::lightfield {
namespace {

LatticeConfig small_config(std::size_t resolution = 24) {
  LatticeConfig cfg;
  cfg.angular_step_deg = 15.0;
  cfg.view_set_span = 3;
  cfg.view_resolution = resolution;
  return cfg;
}

TEST(Temporal, RejectsZeroFrames) {
  EXPECT_THROW(TemporalSource(small_config(), 0), std::invalid_argument);
}

TEST(Temporal, DeterministicPerConfiguration) {
  TemporalSource a(small_config(), 4), b(small_config(), 4);
  const TemporalKey key{2, {1, 3}};
  EXPECT_EQ(a.build(key), b.build(key));
  EXPECT_THROW((void)a.build({4, {0, 0}}), std::out_of_range);
}

TEST(Temporal, FrameZeroMatchesStaticSource) {
  TemporalSource temporal(small_config(32), 3);
  ProceduralSource still(small_config(32));
  EXPECT_EQ(temporal.build({0, {1, 2}}), still.build({1, 2}));
}

TEST(Temporal, ConsecutiveFramesAreCoherentDistantFramesDiffer) {
  TemporalSource source(small_config(48), 12);
  const auto f0 = source.build({0, {1, 3}});
  const auto f1 = source.build({1, {1, 3}});
  const auto f11 = source.build({11, {1, 3}});
  const double near_diff = f0.view(1, 1).mean_abs_diff(f1.view(1, 1));
  const double far_diff = f0.view(1, 1).mean_abs_diff(f11.view(1, 1));
  EXPECT_GT(near_diff, 0.0);       // something moves every frame
  EXPECT_GT(far_diff, 2.0 * near_diff);  // and motion accumulates
}

TEST(Temporal, KeysAreDistinctPerFrame) {
  const TemporalKey a{0, {1, 2}}, b{1, {1, 2}}, c{0, {1, 3}};
  EXPECT_EQ(a.key(), "t0/vs1_2");
  EXPECT_NE(TemporalKeyHash{}(a), TemporalKeyHash{}(b));
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
}

TEST(Temporal, PlaybackPrefetchCombinesSpaceAndTime) {
  const SphericalLattice lattice(small_config());
  const TemporalKey current{3, {1, 3}};
  const auto targets = playback_prefetch_targets(lattice, current, 0, 10, 2);
  // 3 angular neighbours at frame 3 + the same window at frames 4 and 5.
  ASSERT_EQ(targets.size(), 5u);
  int same_frame = 0, future = 0;
  for (const auto& t : targets) {
    if (t.frame == 3) {
      ++same_frame;
      EXPECT_FALSE(t.vs == current.vs);  // angular targets are neighbours
    } else {
      ++future;
      EXPECT_EQ(t.vs, current.vs);  // temporal targets keep the window
      EXPECT_GT(t.frame, 3u);
      EXPECT_LE(t.frame, 5u);
    }
  }
  EXPECT_EQ(same_frame, 3);
  EXPECT_EQ(future, 2);
}

TEST(Temporal, PlaybackPrefetchClampsAtLastFrame) {
  const SphericalLattice lattice(small_config());
  const TemporalKey current{9, {1, 3}};
  const auto targets = playback_prefetch_targets(lattice, current, 0, 10, 3);
  for (const auto& t : targets) EXPECT_LT(t.frame, 10u);
  // Only the angular targets remain at the final frame.
  EXPECT_EQ(targets.size(), 3u);
}

}  // namespace
}  // namespace lon::lightfield
