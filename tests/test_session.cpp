// Tests for the session layer: cursor scripts, metrics, database publication
// and the three end-to-end experiment cases of the paper's section 4.
#include <gtest/gtest.h>

#include <set>

#include "lightfield/procedural.hpp"
#include "session/cursor.hpp"
#include "session/experiment.hpp"
#include "session/metrics.hpp"
#include "session/publisher.hpp"

namespace lon::session {
namespace {

using streaming::AccessClass;
using streaming::AccessRecord;

lightfield::LatticeConfig small_config(std::size_t resolution = 24) {
  lightfield::LatticeConfig cfg;
  cfg.angular_step_deg = 15.0;
  cfg.view_set_span = 3;  // 4 x 8 = 32 view sets
  cfg.view_resolution = resolution;
  return cfg;
}

// --- cursor ---------------------------------------------------------------------

TEST(Cursor, StandardScriptGeneratesExactAccessCount) {
  const lightfield::SphericalLattice lattice(small_config());
  for (const std::size_t accesses : {10u, 30u, 58u}) {
    const CursorScript script = CursorScript::standard(lattice, kSecond, accesses);
    EXPECT_EQ(script.expected_accesses(lattice), accesses);
    EXPECT_GE(script.size(), accesses);
  }
}

TEST(Cursor, StandardScriptIsDeterministicPerSeed) {
  const lightfield::SphericalLattice lattice(small_config());
  const CursorScript a = CursorScript::standard(lattice, kSecond, 20, 5);
  const CursorScript b = CursorScript::standard(lattice, kSecond, 20, 5);
  const CursorScript c = CursorScript::standard(lattice, kSecond, 20, 6);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.steps()[i].direction.theta, b.steps()[i].direction.theta);
    EXPECT_DOUBLE_EQ(a.steps()[i].direction.phi, b.steps()[i].direction.phi);
  }
  EXPECT_NE(a.size(), c.size());  // overwhelmingly likely for a different walk
}

TEST(Cursor, DirectionsAreValidSpherical) {
  const lightfield::SphericalLattice lattice(small_config());
  const CursorScript script = CursorScript::standard(lattice, kSecond, 58);
  for (const CursorStep& step : script.steps()) {
    EXPECT_GT(step.direction.theta, 0.0);
    EXPECT_LT(step.direction.theta, kPi);
    EXPECT_EQ(step.dwell, kSecond);
  }
}

TEST(Cursor, ScriptRevisitsSomeViewSets) {
  // Backtracking produces agent-cache hits later; make sure it happens.
  const lightfield::SphericalLattice lattice(small_config());
  const CursorScript script = CursorScript::standard(lattice, kSecond, 58);
  std::vector<lightfield::ViewSetId> sequence;
  lightfield::ViewSetId current{-1, -1};
  for (const CursorStep& step : script.steps()) {
    const auto id = lattice.view_set_of(step.direction);
    if (!(id == current)) {
      sequence.push_back(id);
      current = id;
    }
  }
  std::set<std::pair<int, int>> unique;
  for (const auto& id : sequence) unique.insert({id.row, id.col});
  EXPECT_LT(unique.size(), sequence.size());  // at least one revisit
}

// --- metrics ---------------------------------------------------------------------

AccessRecord make_record(AccessClass cls, double total_s, double comm_s) {
  AccessRecord r;
  r.cls = cls;
  r.requested = 0;
  r.delivered = from_seconds(total_s);
  r.comm_latency = from_seconds(comm_s);
  return r;
}

TEST(Metrics, EmptyTrace) {
  const AccessSummary s = summarize({});
  EXPECT_EQ(s.total, 0u);
  EXPECT_EQ(s.initial_phase, 0u);
}

TEST(Metrics, PhaseDetectionFindsLastWanAccess) {
  std::vector<AccessRecord> records;
  records.push_back(make_record(AccessClass::kWan, 1.0, 0.9));
  records.push_back(make_record(AccessClass::kLanDepot, 0.3, 0.05));
  records.push_back(make_record(AccessClass::kWan, 1.2, 1.0));
  records.push_back(make_record(AccessClass::kAgentHit, 0.2, 0.0001));
  records.push_back(make_record(AccessClass::kLanDepot, 0.25, 0.04));
  const AccessSummary s = summarize(records);
  EXPECT_EQ(s.total, 5u);
  EXPECT_EQ(s.initial_phase, 3u);  // up to and including the second WAN access
  EXPECT_NEAR(s.wan_rate_initial, 2.0 / 3.0, 1e-9);
  EXPECT_EQ(s.wan, 2u);
  EXPECT_EQ(s.lan, 2u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_NEAR(s.hit_rate, 0.2, 1e-9);
  EXPECT_NEAR(s.mean_total_phase2_s, (0.2 + 0.25) / 2.0, 1e-9);
  EXPECT_NEAR(s.mean_comm_wan_s, 0.95, 1e-9);
  EXPECT_NEAR(s.max_total_s, 1.2, 1e-9);
}

TEST(Metrics, AllLocalTraceHasNoInitialPhase) {
  std::vector<AccessRecord> records;
  for (int i = 0; i < 5; ++i) {
    records.push_back(make_record(AccessClass::kLanDepot, 0.3, 0.02));
  }
  const AccessSummary s = summarize(records);
  EXPECT_EQ(s.initial_phase, 0u);
  EXPECT_EQ(s.wan, 0u);
  EXPECT_NEAR(s.mean_total_phase2_s, 0.3, 1e-9);
}

// --- end-to-end experiments ----------------------------------------------------------

ExperimentConfig base_config(Case which) {
  ExperimentConfig cfg;
  cfg.lattice = small_config();
  cfg.which = which;
  cfg.accesses = 20;
  cfg.dwell = 2 * kSecond;
  cfg.client.display_resolution = 24;
  cfg.client.timing = streaming::ClientConfig::Timing::kModeled;
  return cfg;
}

TEST(Experiment, Case1AllAccessesAreLocalAndFast) {
  const ExperimentResult result = run_experiment(base_config(Case::kLanData));
  EXPECT_EQ(result.summary.total, 20u);
  EXPECT_EQ(result.summary.wan, 0u);
  EXPECT_EQ(result.summary.initial_phase, 0u);
  EXPECT_LT(result.summary.mean_total_s, 0.5);
}

TEST(Experiment, Case2StreamsOverWanWithHighLatency) {
  const ExperimentResult result = run_experiment(base_config(Case::kWanStreaming));
  EXPECT_EQ(result.summary.total, 20u);
  EXPECT_GT(result.summary.wan, 0u);
  // With prefetch many accesses become hits (tiny view sets prefetch fast at
  // this scale), but every WAN fetch still pays wide-area latency.
  EXPECT_GT(result.summary.mean_comm_wan_s, 0.1);
  EXPECT_GT(result.summary.max_total_s, 0.1);
}

TEST(Experiment, Case3ConvergesToLocalPerformance) {
  const ExperimentResult result = run_experiment(base_config(Case::kWanWithLanDepot));
  EXPECT_EQ(result.summary.total, 20u);
  EXPECT_GT(result.staged_at_end, 0u);
  // An initial phase exists, after which no access touches the WAN.
  EXPECT_GT(result.summary.initial_phase, 0u);
  EXPECT_LT(result.summary.initial_phase, result.summary.total);
  // Phase-2 latency is in the local regime.
  EXPECT_LT(result.summary.mean_total_phase2_s, 0.5);
}

TEST(Experiment, Case3BeatsCase2AndApproachesCase1) {
  const ExperimentResult c1 = run_experiment(base_config(Case::kLanData));
  const ExperimentResult c2 = run_experiment(base_config(Case::kWanStreaming));
  const ExperimentResult c3 = run_experiment(base_config(Case::kWanWithLanDepot));
  // The paper's qualitative result: case 2 is the slow outlier; case 3 is
  // close to case 1 once (and beyond) the initial phase.
  EXPECT_GT(c2.summary.mean_total_s, c3.summary.mean_total_s);
  EXPECT_LT(c3.summary.mean_total_phase2_s, 2.0 * c1.summary.mean_total_s + 0.1);
}

TEST(Experiment, HigherResolutionLengthensInitialPhase) {
  // Figures 9-11: at 200^2 the initial phase is ~1 access; at 500^2 it lasts
  // tens of accesses. In the scaled-down setup the trend must hold.
  ExperimentConfig small = base_config(Case::kWanWithLanDepot);
  small.lattice = small_config(16);
  ExperimentConfig large = base_config(Case::kWanWithLanDepot);
  large.lattice = small_config(96);
  const ExperimentResult rs = run_experiment(small);
  const ExperimentResult rl = run_experiment(large);
  EXPECT_LE(rs.summary.initial_phase, rl.summary.initial_phase);
}

TEST(Experiment, DeterministicForIdenticalConfig) {
  const ExperimentResult a = run_experiment(base_config(Case::kWanWithLanDepot));
  const ExperimentResult b = run_experiment(base_config(Case::kWanWithLanDepot));
  ASSERT_EQ(a.accesses.size(), b.accesses.size());
  for (std::size_t i = 0; i < a.accesses.size(); ++i) {
    EXPECT_EQ(a.accesses[i].total(), b.accesses[i].total());
    EXPECT_EQ(a.accesses[i].cls, b.accesses[i].cls);
  }
}

TEST(Experiment, CompressionRatioReported) {
  const ExperimentResult result = run_experiment(base_config(Case::kWanStreaming));
  // 24x24 sample views carry heavy per-view header/filter overhead, so the
  // ratio sits well below the paper's 5-7x large-view regime.
  EXPECT_GT(result.compression_ratio, 1.5);
  EXPECT_LT(result.compression_ratio, 20.0);
  EXPECT_GT(result.db_compressed_bytes, 0.0);
}

// --- report formatting -------------------------------------------------------------

TEST(Metrics, SeriesPrintersEmitOneRowPerAccess) {
  std::vector<AccessRecord> records;
  records.push_back(make_record(AccessClass::kWan, 1.5, 1.0));
  records.push_back(make_record(AccessClass::kAgentHit, 0.2, 0.0001));

  std::ostringstream latency;
  print_latency_series(latency, "fig9", records);
  const std::string latency_text = latency.str();
  EXPECT_NE(latency_text.find("# fig9"), std::string::npos);
  EXPECT_NE(latency_text.find("1\t1.5"), std::string::npos);
  EXPECT_NE(latency_text.find("2\t0.2"), std::string::npos);

  std::ostringstream comm;
  print_comm_series(comm, "fig12", records);
  const std::string comm_text = comm.str();
  EXPECT_NE(comm_text.find("wan"), std::string::npos);
  EXPECT_NE(comm_text.find("hit"), std::string::npos);

  std::ostringstream summary;
  print_summary(summary, "label", summarize(records));
  EXPECT_NE(summary.str().find("accesses=2"), std::string::npos);
  EXPECT_NE(summary.str().find("initial_phase=1"), std::string::npos);
}

TEST(Metrics, CaseNamesAreStable) {
  EXPECT_STREQ(to_string(Case::kLanData), "case1-data-in-lan");
  EXPECT_STREQ(to_string(Case::kWanStreaming), "case2-data-in-wan");
  EXPECT_STREQ(to_string(Case::kWanWithLanDepot), "case3-with-lan-depot");
  EXPECT_STREQ(streaming::to_string(AccessClass::kAgentHit), "hit");
  EXPECT_STREQ(streaming::to_string(AccessClass::kLanDepot), "lan-depot");
  EXPECT_STREQ(streaming::to_string(AccessClass::kWan), "wan");
}

// --- publisher ------------------------------------------------------------------------

TEST(Publisher, FillerMatchesRealSizes) {
  sim::Simulator sim;
  sim::Network net(sim);
  ibp::Fabric fabric(sim, net);
  lors::Lors lors(sim, net, fabric);
  const sim::NodeId server = net.add_node("server");
  const sim::NodeId depot_node = net.add_node("depot");
  net.add_link(server, depot_node, {1e9, kMillisecond, 0.0});
  ibp::DepotConfig dc;
  dc.capacity_bytes = 1ull << 30;
  fabric.add_depot(depot_node, "d0", dc);

  lightfield::ProceduralSource source(small_config());
  streaming::DvsServer dvs(sim, net, depot_node, source.lattice());

  PublishOptions options;
  options.depots = {"d0"};
  options.real_ids = {{1, 1}, {2, 2}};  // everything else is filler
  const PublishResult result =
      publish_database(sim, lors, dvs, source, server, options);
  EXPECT_EQ(result.published, source.lattice().view_set_count());
  EXPECT_EQ(result.failed, 0u);
  EXPECT_EQ(result.real, 2u);
  EXPECT_GT(result.mean_compressed, 0.0);
  // Every view set has an exNode in the DVS.
  for (const auto& id : source.lattice().all_view_sets()) {
    EXPECT_TRUE(dvs.knows(id));
  }
  // Total compressed size is near count * mean (filler sized to match).
  const double expected = result.mean_compressed *
                          static_cast<double>(source.lattice().view_set_count());
  EXPECT_NEAR(static_cast<double>(result.compressed_bytes), expected, 0.15 * expected);
}

}  // namespace
}  // namespace lon::session
