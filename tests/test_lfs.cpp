// Tests for the Logistical File System: path semantics, namespace
// operations, and whole-file I/O through LoRS to IBP depots.
#include <gtest/gtest.h>

#include <optional>

#include "lfs/lfs.hpp"

namespace lon::lfs {
namespace {

// --- path parsing -----------------------------------------------------------------

TEST(LfsPath, ParsesWellFormedPaths) {
  EXPECT_EQ(parse_path("/"), (std::vector<std::string>{}));
  EXPECT_EQ(parse_path("/a"), (std::vector<std::string>{"a"}));
  EXPECT_EQ(parse_path("/a/b.dat/c-2_x"), (std::vector<std::string>{"a", "b.dat", "c-2_x"}));
  EXPECT_EQ(parse_path("/a/"), (std::vector<std::string>{"a"}));  // trailing slash ok
}

TEST(LfsPath, RejectsMalformedPaths) {
  EXPECT_FALSE(parse_path("").has_value());
  EXPECT_FALSE(parse_path("relative").has_value());
  EXPECT_FALSE(parse_path("/a//b").has_value());
  EXPECT_FALSE(parse_path("/a b").has_value());
  EXPECT_FALSE(parse_path("/..").has_value());
  EXPECT_FALSE(parse_path("/a/./b").has_value());
}

// --- namespace semantics -------------------------------------------------------------

class LfsTest : public ::testing::Test {
 protected:
  LfsTest() : net_(sim_) {
    client_ = net_.add_node("client");
    const sim::NodeId node = net_.add_node("lfs");
    net_.add_link(client_, node, {1e9, 2 * kMillisecond, 0.0});
    server_ = std::make_unique<LfsServer>(sim_, net_, node);
  }

  static exnode::ExNode file_of_length(std::uint64_t length) {
    exnode::ExNode node(length);
    exnode::Extent extent;
    extent.offset = 0;
    extent.length = length;
    exnode::Replica rep;
    rep.read.depot = "d";
    rep.read.allocation = 1;
    rep.read.key = 1;
    extent.replicas.push_back(rep);
    node.add_extent(extent);
    return node;
  }

  sim::Simulator sim_;
  sim::Network net_;
  sim::NodeId client_ = 0;
  std::unique_ptr<LfsServer> server_;
};

TEST_F(LfsTest, MkdirPutGetListRemove) {
  EXPECT_EQ(server_->mkdir("/data"), LfsStatus::kOk);
  EXPECT_EQ(server_->mkdir("/data/runs"), LfsStatus::kOk);
  EXPECT_EQ(server_->put("/data/runs/a.lfd", file_of_length(100)), LfsStatus::kOk);
  EXPECT_EQ(server_->put("/data/runs/b.lfd", file_of_length(200)), LfsStatus::kOk);

  exnode::ExNode out;
  EXPECT_EQ(server_->get("/data/runs/a.lfd", out), LfsStatus::kOk);
  EXPECT_EQ(out.length(), 100u);

  std::vector<DirEntry> entries;
  EXPECT_EQ(server_->list("/data/runs", entries), LfsStatus::kOk);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].name, "a.lfd");
  EXPECT_FALSE(entries[0].is_directory);
  EXPECT_EQ(entries[0].length, 100u);

  EXPECT_EQ(server_->remove("/data/runs/a.lfd"), LfsStatus::kOk);
  EXPECT_EQ(server_->get("/data/runs/a.lfd", out), LfsStatus::kNotFound);
  EXPECT_EQ(server_->entry_count(), 3u);  // data, runs, b.lfd
}

TEST_F(LfsTest, ErrorSemantics) {
  ASSERT_EQ(server_->mkdir("/dir"), LfsStatus::kOk);
  ASSERT_EQ(server_->put("/file", file_of_length(10)), LfsStatus::kOk);

  EXPECT_EQ(server_->mkdir("/dir"), LfsStatus::kExists);
  EXPECT_EQ(server_->mkdir("/missing/sub"), LfsStatus::kNotFound);
  EXPECT_EQ(server_->mkdir("/file/sub"), LfsStatus::kNotDirectory);
  EXPECT_EQ(server_->put("/dir", file_of_length(1)), LfsStatus::kIsDirectory);
  exnode::ExNode out;
  EXPECT_EQ(server_->get("/dir", out), LfsStatus::kIsDirectory);
  std::vector<DirEntry> entries;
  EXPECT_EQ(server_->list("/file", entries), LfsStatus::kNotDirectory);
  EXPECT_EQ(server_->remove("/missing"), LfsStatus::kNotFound);
  EXPECT_EQ(server_->mkdir("bad path"), LfsStatus::kInvalidPath);
  EXPECT_EQ(server_->remove("/"), LfsStatus::kInvalidPath);  // root is not removable
}

TEST_F(LfsTest, RemoveRefusesNonEmptyDirectories) {
  ASSERT_EQ(server_->mkdir("/dir"), LfsStatus::kOk);
  ASSERT_EQ(server_->put("/dir/f", file_of_length(5)), LfsStatus::kOk);
  EXPECT_EQ(server_->remove("/dir"), LfsStatus::kNotEmpty);
  ASSERT_EQ(server_->remove("/dir/f"), LfsStatus::kOk);
  EXPECT_EQ(server_->remove("/dir"), LfsStatus::kOk);
}

TEST_F(LfsTest, PutOverwritesFiles) {
  ASSERT_EQ(server_->put("/f", file_of_length(10)), LfsStatus::kOk);
  ASSERT_EQ(server_->put("/f", file_of_length(20)), LfsStatus::kOk);
  exnode::ExNode out;
  ASSERT_EQ(server_->get("/f", out), LfsStatus::kOk);
  EXPECT_EQ(out.length(), 20u);
  EXPECT_EQ(server_->entry_count(), 1u);
}

TEST_F(LfsTest, AsyncOpsChargeNetworkTime) {
  std::optional<LfsStatus> status;
  SimTime done = 0;
  server_->mkdir_async(client_, "/remote", [&](LfsStatus s) {
    status = s;
    done = sim_.now();
  });
  sim_.run();
  ASSERT_EQ(status, LfsStatus::kOk);
  EXPECT_GE(done, 4 * kMillisecond);  // the control RTT
  EXPECT_EQ(server_->entry_count(), 1u);
}

// --- whole-file I/O over depots --------------------------------------------------------

TEST(LfsClientTest, WriteThenReadThroughTheNetwork) {
  sim::Simulator sim;
  sim::Network net(sim);
  ibp::Fabric fabric(sim, net);
  lors::Lors lors(sim, net, fabric);

  const sim::NodeId client = net.add_node("client");
  const sim::NodeId lfs_node = net.add_node("lfs");
  net.add_link(client, lfs_node, {1e9, kMillisecond, 0.0});
  std::vector<std::string> depots;
  for (int i = 0; i < 2; ++i) {
    const std::string name = "d" + std::to_string(i);
    const sim::NodeId node = net.add_node(name);
    net.add_link(client, node, {1e9, kMillisecond, 0.0});
    ibp::DepotConfig cfg;
    cfg.capacity_bytes = 1 << 26;
    fabric.add_depot(node, name, cfg);
    depots.push_back(name);
  }

  LfsServer server(sim, net, lfs_node);
  ASSERT_EQ(server.mkdir("/datasets"), LfsStatus::kOk);
  LfsClient lfs(sim, lors, server, client);

  Bytes payload(300'000);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 7);
  }
  lors::UploadOptions up;
  up.depots = depots;
  up.block_bytes = 64 * 1024;

  std::optional<LfsStatus> wrote;
  lfs.write_async("/datasets/negHip.lfd", payload, up,
                  [&](LfsStatus s) { wrote = s; });
  sim.run();
  ASSERT_EQ(wrote, LfsStatus::kOk);

  // The namespace holds an exNode striped over both depots.
  exnode::ExNode node;
  ASSERT_EQ(server.get("/datasets/negHip.lfd", node), LfsStatus::kOk);
  EXPECT_EQ(node.length(), payload.size());
  EXPECT_EQ(node.depots().size(), 2u);

  std::optional<Bytes> read;
  lfs.read_async("/datasets/negHip.lfd", {}, [&](LfsStatus s, Bytes data) {
    ASSERT_EQ(s, LfsStatus::kOk);
    read = std::move(data);
  });
  sim.run();
  ASSERT_TRUE(read.has_value());
  EXPECT_EQ(*read, payload);

  // Reading a missing path fails cleanly.
  std::optional<LfsStatus> missing;
  lfs.read_async("/datasets/nothing", {}, [&](LfsStatus s, Bytes) { missing = s; });
  sim.run();
  EXPECT_EQ(missing, LfsStatus::kNotFound);
}

}  // namespace
}  // namespace lon::lfs
