// Unit tests for the L-Bone depot directory: registration, liveness and
// proximity queries with capacity/lease filtering.
#include <gtest/gtest.h>

#include "ibp/service.hpp"
#include "lbone/lbone.hpp"
#include "simnet/network.hpp"

namespace lon::lbone {
namespace {

class LboneTest : public ::testing::Test {
 protected:
  LboneTest() : net_(sim_), fabric_(sim_, net_), directory_(net_, fabric_) {
    client_ = net_.add_node("client");
    near_ = add_depot("near", 1 * kMillisecond, 1 << 20);
    mid_ = add_depot("mid", 10 * kMillisecond, 1 << 20);
    far_ = add_depot("far", 50 * kMillisecond, 1 << 20);
  }

  sim::NodeId add_depot(const std::string& name, SimDuration latency,
                        std::uint64_t capacity) {
    const sim::NodeId node = net_.add_node(name + "-node");
    net_.add_link(client_, node, {1e9, latency, 0.0});
    ibp::DepotConfig cfg;
    cfg.capacity_bytes = capacity;
    cfg.max_alloc_bytes = capacity;
    cfg.max_lease = 3600 * kSecond;
    fabric_.add_depot(node, name, cfg);
    directory_.register_depot(name);
    return node;
  }

  sim::Simulator sim_;
  sim::Network net_;
  ibp::Fabric fabric_;
  Directory directory_;
  sim::NodeId client_ = 0, near_ = 0, mid_ = 0, far_ = 0;
};

TEST_F(LboneTest, FindsClosestFirst) {
  const auto result = directory_.find(client_, {.free_bytes = 0, .lease = 0, .count = 3});
  ASSERT_EQ(result.size(), 3u);
  EXPECT_EQ(result[0].name, "near");
  EXPECT_EQ(result[1].name, "mid");
  EXPECT_EQ(result[2].name, "far");
  EXPECT_LT(result[0].latency, result[1].latency);
}

TEST_F(LboneTest, CountLimitsResults) {
  const auto result = directory_.find(client_, {.free_bytes = 0, .lease = 0, .count = 1});
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].name, "near");
}

TEST_F(LboneTest, FiltersOnFreeSpace) {
  // Consume most of "near" so it can no longer satisfy a big request.
  ibp::Depot* near_depot = fabric_.find_depot("near");
  ASSERT_NE(near_depot, nullptr);
  ASSERT_EQ(near_depot->allocate({(1 << 20) - 100, kSecond, ibp::AllocType::kHard}).status,
            ibp::IbpStatus::kOk);
  const auto result =
      directory_.find(client_, {.free_bytes = 1 << 19, .lease = 0, .count = 3});
  ASSERT_EQ(result.size(), 2u);
  EXPECT_EQ(result[0].name, "mid");
}

TEST_F(LboneTest, FiltersOnLeaseSupport) {
  const auto none =
      directory_.find(client_, {.free_bytes = 0, .lease = 7200 * kSecond, .count = 3});
  EXPECT_TRUE(none.empty());  // every depot caps leases at 3600 s
  const auto all =
      directory_.find(client_, {.free_bytes = 0, .lease = 3600 * kSecond, .count = 3});
  EXPECT_EQ(all.size(), 3u);
}

TEST_F(LboneTest, DeadDepotsAreSkipped) {
  directory_.set_alive("near", false);
  const auto result = directory_.find(client_, {.free_bytes = 0, .lease = 0, .count = 3});
  ASSERT_EQ(result.size(), 2u);
  EXPECT_EQ(result[0].name, "mid");
  directory_.set_alive("near", true);
  EXPECT_EQ(directory_.find(client_, {.free_bytes = 0, .lease = 0, .count = 3}).size(), 3u);
}

TEST_F(LboneTest, UnreachableDepotsAreSkipped) {
  // A depot on an island with no links.
  const sim::NodeId island = net_.add_node("island");
  ibp::DepotConfig cfg;
  fabric_.add_depot(island, "island", cfg);
  directory_.register_depot("island");
  const auto result = directory_.find(client_, {.free_bytes = 0, .lease = 0, .count = 10});
  EXPECT_EQ(result.size(), 3u);  // island excluded
}

TEST_F(LboneTest, RegisterUnknownDepotThrows) {
  EXPECT_THROW(directory_.register_depot("ghost"), std::invalid_argument);
  EXPECT_THROW(directory_.set_alive("ghost", false), std::out_of_range);
}

TEST_F(LboneTest, DuplicateRegistrationIsIdempotent) {
  directory_.register_depot("near");
  EXPECT_EQ(directory_.size(), 3u);
}

TEST_F(LboneTest, ProximityFromDifferentVantagePoints) {
  // From the "far" depot's own node, "far" is the closest depot.
  const auto result = directory_.find(far_, {.free_bytes = 0, .lease = 0, .count = 1});
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].name, "far");
}

}  // namespace
}  // namespace lon::lbone
