// Fault-injection and self-healing tests: cancellable timers, link
// partitions, fabric deadlines and offline semantics, LoRS checksums /
// retry / repair, L-Bone health probes, and a deterministic chaos soak in
// which view sets are browsed while depots crash, leases expire and reads
// rot — every demand request must still complete checksum-clean.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "fault/fault.hpp"
#include "lbone/lbone.hpp"
#include "lightfield/procedural.hpp"
#include "lors/lors.hpp"
#include "streaming/client_agent.hpp"
#include "streaming/dvs.hpp"
#include "util/checksum.hpp"
#include "util/time.hpp"

namespace lon {
namespace {

using lightfield::ViewSetId;

Bytes pattern(std::size_t n) {
  Bytes data(n);
  for (std::size_t i = 0; i < n; ++i) data[i] = static_cast<std::uint8_t>(i * 31 + 7);
  return data;
}

// --- simulator: cancellable timers -------------------------------------------

TEST(SimulatorCancel, CancelledEventNeitherRunsNorAdvancesClock) {
  sim::Simulator sim;
  bool late_ran = false;
  sim.after(3 * kMillisecond, [] {});
  const sim::TimerId id = sim.after(5 * kMillisecond, [&] { late_ran = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_FALSE(late_ran);
  // The cancelled event must not drag the clock to t=5ms.
  EXPECT_EQ(sim.now(), 3 * kMillisecond);
}

TEST(SimulatorCancel, CancelIsIdempotentAndRejectsUnknownIds) {
  sim::Simulator sim;
  const sim::TimerId id = sim.after(kMillisecond, [] {});
  EXPECT_FALSE(sim.cancel(id + 100));  // never issued
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));  // already cancelled
  EXPECT_EQ(sim.run(), 0u);
}

TEST(SimulatorCancel, PendingCountsExcludeCancelledEvents) {
  sim::Simulator sim;
  sim.after(kMillisecond, [] {});
  const sim::TimerId id = sim.after(2 * kMillisecond, [] {});
  EXPECT_EQ(sim.pending(), 2u);
  sim.cancel(id);
  EXPECT_EQ(sim.pending(), 1u);
  EXPECT_FALSE(sim.idle());
}

// --- network: link up/down ----------------------------------------------------

TEST(NetworkPartition, DownLinkPartitionsAndStallsFlows) {
  sim::Simulator sim;
  sim::Network net(sim);
  const sim::NodeId a = net.add_node("a");
  const sim::NodeId b = net.add_node("b");
  // 8 Mbit/s = 1e6 bytes/s: a 1 MB transfer nominally takes ~1 s.
  const sim::LinkId link = net.add_link(a, b, {8e6, kMillisecond, 0.0});

  std::optional<sim::TransferResult> result;
  sim::TransferOptions opts;
  opts.window_bytes = 4 << 20;  // window never the bottleneck here
  net.start_transfer(a, b, 1'000'000, opts, [&](const sim::TransferResult& r) {
    result = r;
  });

  // Cut the link mid-transfer for one second.
  sim.at(200 * kMillisecond, [&] { net.set_link_up(link, false); });
  sim.run_until(500 * kMillisecond);
  EXPECT_FALSE(net.reachable(a, b));
  EXPECT_FALSE(result.has_value());  // stalled, not failed
  sim.at(1200 * kMillisecond, [&] { net.set_link_up(link, true); });
  sim.run();

  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->cancelled);
  // The second of outage shifts completion past the nominal ~1s.
  EXPECT_GT(result->finished, 2 * kSecond);
  EXPECT_TRUE(net.reachable(a, b));
}

// --- fabric: deadlines, offline, drops ---------------------------------------

class FabricFaultTest : public ::testing::Test {
 protected:
  FabricFaultTest() : net_(sim_), fabric_(sim_, net_) {
    client_ = net_.add_node("client");
    depot_node_ = net_.add_node("depot-host");
    link_ = net_.add_link(client_, depot_node_, {100e6, 5 * kMillisecond, 0.0});
    ibp::DepotConfig cfg;
    cfg.capacity_bytes = 1ull << 28;
    fabric_.add_depot(depot_node_, "d0", cfg);
  }

  /// Allocates and stores `data`, returning the capability set.
  ibp::CapabilitySet alloc_and_store(const Bytes& data) {
    ibp::CapabilitySet caps;
    ibp::AllocRequest req;
    req.size = data.size();
    req.lease = 3600 * kSecond;
    bool stored = false;
    fabric_.allocate_async(client_, "d0", req,
                           [&](ibp::IbpStatus status, const ibp::CapabilitySet& c) {
                             ASSERT_EQ(status, ibp::IbpStatus::kOk);
                             caps = c;
                             fabric_.store_async(client_, caps.write, 0, data, {},
                                                 [&](ibp::IbpStatus s) {
                                                   ASSERT_EQ(s, ibp::IbpStatus::kOk);
                                                   stored = true;
                                                 });
                           });
    sim_.run();
    EXPECT_TRUE(stored);
    return caps;
  }

  sim::Simulator sim_;
  sim::Network net_;
  ibp::Fabric fabric_;
  sim::NodeId client_ = 0, depot_node_ = 0;
  sim::LinkId link_ = 0;
};

TEST_F(FabricFaultTest, OfflineFailsFastButPartitionTimesOut) {
  const auto caps = alloc_and_store(pattern(64));
  fabric_.set_timeouts({.control = 2 * kSecond, .data = 2 * kSecond});

  // An offline depot refuses: the host is down but the route is up, so the
  // error comes back after one round trip, not after the deadline.
  fabric_.set_offline("d0", true);
  std::optional<ibp::IbpStatus> status;
  const SimTime t0 = sim_.now();
  fabric_.probe_async(client_, caps.manage,
                      [&](ibp::IbpStatus s, const ibp::AllocInfo&) { status = s; });
  sim_.run();
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(*status, ibp::IbpStatus::kRefused);
  EXPECT_LT(sim_.now() - t0, 100 * kMillisecond);
  EXPECT_EQ(fabric_.stats().timeouts, 0u);
  fabric_.set_offline("d0", false);

  // A partitioned depot is silent: the request is lost and only the
  // deadline reports anything, exactly at t0 + timeout.
  net_.set_link_up(link_, false);
  status.reset();
  const SimTime t1 = sim_.now();
  fabric_.probe_async(client_, caps.manage,
                      [&](ibp::IbpStatus s, const ibp::AllocInfo&) { status = s; });
  sim_.run();
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(*status, ibp::IbpStatus::kTimeout);
  EXPECT_EQ(sim_.now(), t1 + 2 * kSecond);
  EXPECT_EQ(fabric_.stats().timeouts, 1u);
  EXPECT_EQ(fabric_.stats().requests_lost, 1u);
}

TEST_F(FabricFaultTest, SetOfflineCancelsInFlightFlows) {
  const Bytes data = pattern(1 << 20);
  const auto caps = alloc_and_store(data);

  // Start a ~90 ms load, then crash the depot 30 ms in: the half-delivered
  // flow must fail, not complete as if nothing happened.
  std::optional<ibp::IbpStatus> status;
  fabric_.load_async(client_, caps.read, 0, data.size(), {},
                     [&](ibp::IbpStatus s, Bytes) { status = s; });
  sim_.after(30 * kMillisecond, [&] { fabric_.set_offline("d0", true); });
  sim_.run();

  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(*status, ibp::IbpStatus::kRefused);
  EXPECT_GE(fabric_.stats().flows_killed_offline, 1u);
}

TEST_F(FabricFaultTest, DroppedRequestsOnlySurfaceAtTheDeadline) {
  const auto caps = alloc_and_store(pattern(64));
  fabric_.set_timeouts({.control = kSecond, .data = kSecond});
  fabric_.set_drop_hook([](const std::string&) { return true; });

  std::optional<ibp::IbpStatus> status;
  const SimTime t0 = sim_.now();
  fabric_.probe_async(client_, caps.manage,
                      [&](ibp::IbpStatus s, const ibp::AllocInfo&) { status = s; });
  sim_.run();
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(*status, ibp::IbpStatus::kTimeout);
  EXPECT_EQ(sim_.now(), t0 + kSecond);
  EXPECT_EQ(fabric_.stats().requests_dropped, 1u);
}

// --- L-Bone: offline cross-check + health probes ------------------------------

class LboneFaultTest : public ::testing::Test {
 protected:
  LboneFaultTest() : net_(sim_), fabric_(sim_, net_), directory_(net_, fabric_) {
    client_ = net_.add_node("client");
    const sim::NodeId hub = net_.add_node("hub");
    net_.add_link(client_, hub, {1e9, kMillisecond, 0.0});
    for (const char* name : {"d0", "d1"}) {
      const sim::NodeId node = net_.add_node(name);
      net_.add_link(node, hub, {1e9, kMillisecond, 0.0});
      fabric_.add_depot(node, name, {});
      directory_.register_depot(name);
    }
  }

  sim::Simulator sim_;
  sim::Network net_;
  ibp::Fabric fabric_;
  lbone::Directory directory_;
  sim::NodeId client_ = 0;
};

TEST_F(LboneFaultTest, FindCrossChecksFabricOfflineState) {
  // The directory still believes d0 is alive; the fabric knows better.
  fabric_.set_offline("d0", true);
  const auto found = directory_.find(client_, {.count = 2});
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].name, "d1");
}

TEST_F(LboneFaultTest, HealthProbesTrackCrashAndRestart) {
  directory_.start_health_probes(kSecond);

  fabric_.set_offline("d0", true);
  // Manually mark it alive-in-directory to prove the sweep flips it back.
  sim_.run_until(1500 * kMillisecond);
  EXPECT_EQ(directory_.probe_stats().sweeps, 1u);
  EXPECT_EQ(directory_.probe_stats().marked_dead, 1u);

  fabric_.set_offline("d0", false);
  sim_.run_until(2500 * kMillisecond);
  EXPECT_EQ(directory_.probe_stats().marked_alive, 1u);
  const auto found = directory_.find(client_, {.count = 2});
  EXPECT_EQ(found.size(), 2u);

  directory_.stop_health_probes();
  const auto sweeps = directory_.probe_stats().sweeps;
  sim_.run_until(10 * kSecond);
  EXPECT_EQ(directory_.probe_stats().sweeps, sweeps);  // daemon actually stopped
}

// --- LoRS: checksums, retry, repair -------------------------------------------

class LorsFaultTest : public ::testing::Test {
 protected:
  LorsFaultTest() : net_(sim_), fabric_(sim_, net_), lors_(sim_, net_, fabric_) {
    client_ = net_.add_node("client");
    const sim::NodeId hub = net_.add_node("hub");
    net_.add_link(client_, hub, {1e9, kMillisecond, 0.0});
    for (const char* name : {"d0", "d1", "d2"}) {
      const sim::NodeId node = net_.add_node(name);
      links_.push_back(net_.add_link(node, hub, {1e9, kMillisecond, 0.0}));
      ibp::DepotConfig cfg;
      cfg.capacity_bytes = 1ull << 28;
      fabric_.add_depot(node, name, cfg);
      depots_.push_back(name);
    }
  }

  exnode::ExNode upload(Bytes data, int replicas, std::uint64_t block_bytes = 4096) {
    lors::UploadOptions up;
    up.depots = depots_;
    up.replicas = replicas;
    up.block_bytes = block_bytes;
    std::optional<exnode::ExNode> out;
    lors_.upload_async(client_, std::move(data), up, [&](const lors::UploadResult& r) {
      EXPECT_EQ(r.status, lors::LorsStatus::kOk);
      out = r.exnode;
    });
    sim_.run();
    EXPECT_TRUE(out.has_value());
    return out.has_value() ? std::move(*out) : exnode::ExNode{};
  }

  lors::DownloadResult download(const exnode::ExNode& node,
                                const lors::RetryPolicy& retry = {}) {
    lors::DownloadOptions opts;
    opts.retry = retry;
    std::optional<lors::DownloadResult> out;
    lors_.download_async(client_, node, opts,
                         [&](lors::DownloadResult r) { out = std::move(r); });
    sim_.run();
    EXPECT_TRUE(out.has_value());
    return out.has_value() ? std::move(*out) : lors::DownloadResult{};
  }

  sim::Simulator sim_;
  sim::Network net_;
  ibp::Fabric fabric_;
  lors::Lors lors_;
  sim::NodeId client_ = 0;
  std::vector<std::string> depots_;
  std::vector<sim::LinkId> links_;
};

TEST_F(LorsFaultTest, UploadRecordsPerBlockChecksumsAndXmlKeepsThem) {
  const Bytes data = pattern(10'000);
  const exnode::ExNode node = upload(data, 1);
  ASSERT_EQ(node.extents().size(), 3u);
  for (const auto& extent : node.extents()) {
    ASSERT_TRUE(extent.checksum.has_value());
    EXPECT_EQ(*extent.checksum,
              crc32(std::span(data).subspan(extent.offset, extent.length)));
  }
  const exnode::ExNode back = exnode::ExNode::from_xml(node.to_xml());
  EXPECT_EQ(back, node);
}

TEST_F(LorsFaultTest, InjectedCorruptionIsAlwaysDetectedNeverDelivered) {
  const Bytes data = pattern(8192);
  const exnode::ExNode node = upload(data, 1);  // one replica: nowhere to hide
  fabric_.set_corrupt_hook([](const std::string&, Bytes& b) { b[0] ^= 0x01; });

  const auto result = download(node);
  // Every block came back corrupt, every corruption was caught, and not one
  // corrupt byte was copied into the output.
  EXPECT_EQ(result.status, lors::LorsStatus::kPartial);
  EXPECT_EQ(result.blocks_failed, result.blocks_total);
  EXPECT_EQ(result.corruption_detected, result.blocks_total);
  EXPECT_NE(*result.data, data);
  for (std::size_t i = 0; i < result.data->size(); ++i) {
    EXPECT_EQ((*result.data)[i], 0) << "corrupt byte delivered at offset " << i;
  }
  EXPECT_GE(lors_.stats().corruption_detected, result.blocks_total);
}

TEST_F(LorsFaultTest, CorruptReplicaFailsOverToACleanOne) {
  const Bytes data = pattern(8192);
  const exnode::ExNode node = upload(data, 2);  // blocks on (d0,d1) and (d1,d2)
  fabric_.set_corrupt_hook([](const std::string& depot, Bytes& b) {
    if (depot == "d0") b[0] ^= 0x01;
  });

  const auto result = download(node);
  EXPECT_EQ(result.status, lors::LorsStatus::kOk);
  EXPECT_EQ(*result.data, data);
  // Block 0 prefers d0, catches the rot, and silently heals via d1.
  EXPECT_GE(result.corruption_detected, 1u);
  EXPECT_GE(result.replica_failovers, 1u);
}

TEST_F(LorsFaultTest, RetryRoundsOutlastATransientPartition) {
  const Bytes data = pattern(4096);
  const exnode::ExNode node = upload(data, 1, 8192);  // single block on d0
  fabric_.set_timeouts({.control = 500 * kMillisecond, .data = kSecond});

  net_.set_link_up(links_[0], false);
  sim_.at(sim_.now() + 4 * kSecond, [&] { net_.set_link_up(links_[0], true); });

  lors::RetryPolicy retry;
  retry.max_attempts = 8;
  retry.base_backoff = 500 * kMillisecond;
  retry.max_backoff = 2 * kSecond;
  const auto result = download(node, retry);
  EXPECT_EQ(result.status, lors::LorsStatus::kOk);
  EXPECT_EQ(*result.data, data);
  EXPECT_GE(result.retries, 1u);
  EXPECT_GE(fabric_.stats().timeouts, 1u);
  EXPECT_GE(fabric_.stats().requests_lost, 1u);
}

TEST_F(LorsFaultTest, RepairRestoresFullReplicaCountAfterACrash) {
  const Bytes data = pattern(12'288);  // 3 blocks: d2 hosts replicas of two
  const exnode::ExNode node = upload(data, 2);
  fabric_.set_offline("d2", true);

  lors::RepairOptions options;
  options.target_replicas = 2;
  options.candidate_depots = depots_;
  std::optional<lors::RepairResult> result;
  lors_.repair_async(client_, node, options,
                     [&](const lors::RepairResult& r) { result = r; });
  sim_.run();

  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->status, lors::LorsStatus::kOk);
  EXPECT_EQ(result->replicas_probed, 6u);
  EXPECT_EQ(result->replicas_lost, 2u);   // d2 held replicas of two extents
  EXPECT_EQ(result->replicas_added, 2u);
  EXPECT_EQ(result->extents_short, 0u);
  for (const auto& extent : result->exnode.extents()) {
    EXPECT_GE(extent.replicas.size(), 2u);
    for (const auto& replica : extent.replicas) {
      EXPECT_NE(replica.read.depot, "d2");
    }
  }
  // The healed exNode downloads clean with the dead depot still dark.
  const auto dl = download(result->exnode);
  EXPECT_EQ(dl.status, lors::LorsStatus::kOk);
  EXPECT_EQ(*dl.data, data);
}

TEST_F(LorsFaultTest, RepairKeepsPointersWhenEveryReplicaGoesDark) {
  // One block, two replicas — on d0 and d1 by the placement rule. Take both
  // offline at once (an overlapping-outage window) and run a repair sweep:
  // it must NOT drop the last pointers to the data, because the depots come
  // back with their allocations intact.
  const Bytes data = pattern(4'096);
  const exnode::ExNode node = upload(data, 2);
  fabric_.set_offline("d0", true);
  fabric_.set_offline("d1", true);

  lors::RepairOptions options;
  options.target_replicas = 2;
  options.candidate_depots = depots_;
  std::optional<lors::RepairResult> dark;
  lors_.repair_async(client_, node, options,
                     [&](const lors::RepairResult& r) { dark = r; });
  sim_.run();

  ASSERT_TRUE(dark.has_value());
  EXPECT_EQ(dark->status, lors::LorsStatus::kPartial);
  EXPECT_EQ(dark->extents_dark, 1u);
  EXPECT_EQ(dark->replicas_lost, 0u);   // retained, not dropped
  EXPECT_EQ(dark->replicas_added, 0u);  // no live source to copy from
  ASSERT_EQ(dark->exnode.extents().size(), 1u);
  EXPECT_EQ(dark->exnode.extents()[0].replicas.size(), 2u);

  // Depots restart; the next sweep finds both replicas alive and is a no-op.
  fabric_.set_offline("d0", false);
  fabric_.set_offline("d1", false);
  std::optional<lors::RepairResult> healed;
  lors_.repair_async(client_, dark->exnode, options,
                     [&](const lors::RepairResult& r) { healed = r; });
  sim_.run();

  ASSERT_TRUE(healed.has_value());
  EXPECT_EQ(healed->status, lors::LorsStatus::kOk);
  EXPECT_EQ(healed->extents_dark, 0u);
  EXPECT_EQ(healed->replicas_lost, 0u);
  const auto dl = download(healed->exnode);
  EXPECT_EQ(dl.status, lors::LorsStatus::kOk);
  EXPECT_EQ(*dl.data, data);
}

TEST_F(LorsFaultTest, InjectorRunsItsPlanOnTheVirtualClock) {
  fault::FaultInjector injector(sim_, net_, fabric_);
  fault::FaultPlan plan;
  plan.crashes.push_back({.depot = "d0", .at = kSecond, .restart_after = 2 * kSecond});
  plan.degradations.push_back(
      {.depot = "d1", .at = kSecond, .duration = kSecond, .factor = 0.5});
  injector.arm(plan);

  const double rate0 = fabric_.find_depot("d1")->config().disk_bytes_per_sec;
  sim_.run_until(1500 * kMillisecond);
  EXPECT_TRUE(fabric_.is_offline("d0"));
  EXPECT_EQ(fabric_.find_depot("d1")->config().disk_bytes_per_sec, rate0 * 0.5);
  sim_.run();
  EXPECT_FALSE(fabric_.is_offline("d0"));
  EXPECT_EQ(fabric_.find_depot("d1")->config().disk_bytes_per_sec, rate0);
  EXPECT_EQ(injector.stats().crashes, 1u);
  EXPECT_EQ(injector.stats().restarts, 1u);
  EXPECT_EQ(injector.stats().disks_degraded, 1u);
}

TEST_F(LorsFaultTest, InjectorDropWindowInstallsDefaultDeadlines) {
  const Bytes data = pattern(64);
  const exnode::ExNode node = upload(data, 1, 4096);

  fault::FaultInjector injector(sim_, net_, fabric_);
  fault::FaultPlan plan;
  plan.drops.push_back(
      {.at = sim_.now(), .duration = 3600 * kSecond, .prob = 1.0, .depot = {}});
  injector.arm(plan);
  EXPECT_GT(fabric_.timeouts().control, 0);  // arm() refuses to let callers hang

  std::optional<ibp::IbpStatus> status;
  const auto& manage = node.extents().front().replicas.front().manage;
  ASSERT_TRUE(manage.has_value());
  fabric_.probe_async(client_, *manage,
                      [&](ibp::IbpStatus s, const ibp::AllocInfo&) { status = s; });
  sim_.run();
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(*status, ibp::IbpStatus::kTimeout);
  EXPECT_GE(injector.stats().requests_dropped, 1u);
}

// --- chaos soak ---------------------------------------------------------------

/// The paper's remote-visualization pipeline under scheduled mayhem: a WAN
/// depot crashes and restarts, staged LAN leases expire in a wave (the
/// refresh daemon is deliberately slower than the lease), and for a window
/// every depot read is silently corrupted — while a client browses on
/// demand. Acceptance: every demand request completes with exactly the
/// published bytes (no undetected corruption, no permanent failures), and
/// repair_async restores full replica count after a permanent crash.
class ChaosTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kResolution = 24;

  ChaosTest()
      : net_(sim_),
        fabric_(sim_, net_),
        lors_(sim_, net_, fabric_),
        source_(std::make_shared<lightfield::ProceduralSource>(config())) {
    lan_switch_ = net_.add_node("lan-switch");
    agent_node_ = net_.add_node("agent");
    const sim::LinkConfig lan{1e9, 50 * kMicrosecond, 0.0};
    net_.add_link(agent_node_, lan_switch_, lan);
    for (const char* name : {"lan-0", "lan-1"}) {
      const sim::NodeId node = net_.add_node(name);
      net_.add_link(node, lan_switch_, lan);
      add_depot(node, name);
      lan_depots_.push_back(name);
    }
    wan_router_ = net_.add_node("wan-router");
    net_.add_link(lan_switch_, wan_router_, {100e6, 35 * kMillisecond, 0.0});
    for (const char* name : {"ca-0", "ca-1", "ca-2"}) {
      const sim::NodeId node = net_.add_node(name);
      net_.add_link(node, wan_router_, {1e9, kMillisecond, 0.0});
      add_depot(node, name);
      wan_depots_.push_back(name);
    }
    dvs_node_ = net_.add_node("dvs");
    net_.add_link(dvs_node_, wan_router_, {1e9, kMillisecond, 0.0});
    server_node_ = net_.add_node("server");
    net_.add_link(server_node_, wan_router_, {1e9, kMillisecond, 0.0});
    dvs_ = std::make_unique<streaming::DvsServer>(sim_, net_, dvs_node_,
                                                  source_->lattice());
  }

  static lightfield::LatticeConfig config() {
    lightfield::LatticeConfig cfg;
    cfg.angular_step_deg = 15.0;
    cfg.view_set_span = 3;  // 4 x 8 = 32 view sets
    cfg.view_resolution = kResolution;
    return cfg;
  }

  void add_depot(sim::NodeId node, const std::string& name) {
    ibp::DepotConfig cfg;
    cfg.capacity_bytes = 1ull << 30;
    cfg.max_alloc_bytes = 1ull << 28;
    fabric_.add_depot(node, name, cfg);
  }

  /// Publishes every view set twice-replicated across the three WAN depots,
  /// keeping the owner exNodes for the repair phase.
  void publish_all() {
    for (const auto& id : source_->lattice().all_view_sets()) {
      Bytes compressed = source_->build_compressed(id);
      lors::UploadOptions up;
      up.depots = wan_depots_;
      up.replicas = 2;
      up.block_bytes = 2048;
      bool ok = false;
      lors_.upload_async(server_node_, std::move(compressed), up,
                         [&](const lors::UploadResult& r) {
                           ok = r.status == lors::LorsStatus::kOk;
                           published_[id] = r.exnode;
                           exnode::ExNode copy = r.exnode;
                           dvs_->install(id, std::move(copy));
                         });
      sim_.run();
      ASSERT_TRUE(ok);
    }
  }

  sim::Simulator sim_;
  sim::Network net_;
  ibp::Fabric fabric_;
  lors::Lors lors_;
  std::shared_ptr<lightfield::ProceduralSource> source_;
  std::unique_ptr<streaming::DvsServer> dvs_;
  sim::NodeId lan_switch_ = 0, agent_node_ = 0, wan_router_ = 0, dvs_node_ = 0,
              server_node_ = 0;
  std::vector<std::string> lan_depots_, wan_depots_;
  std::unordered_map<ViewSetId, exnode::ExNode, lightfield::ViewSetIdHash> published_;
};

TEST_F(ChaosTest, BrowsingSurvivesCrashesLeaseExpiryAndCorruption) {
  publish_all();

  streaming::ClientAgentConfig cfg;
  cfg.prefetch = false;  // keep every access an observable fetch
  cfg.staging = true;
  cfg.lan_depots = lan_depots_;
  cfg.staging_concurrency = 2;
  // The lease is deliberately shorter than the refresh interval: the first
  // refresh at t=18s arrives to find everything staged before t=6s already
  // expired — a lease-expiry wave the agent must heal by restaging.
  cfg.staging_lease = 12 * kSecond;
  cfg.lease_refresh = true;
  cfg.lease_refresh_interval = 18 * kSecond;
  cfg.retry.max_attempts = 4;
  cfg.retry.base_backoff = 250 * kMillisecond;
  cfg.max_refetch = 2;
  streaming::ClientAgent agent(sim_, net_, fabric_, lors_, *dvs_, source_->lattice(),
                               agent_node_, cfg);
  agent.start_staging();

  // Publication advanced the clock; the whole chaos schedule hangs off t0.
  const SimTime t0 = sim_.now();
  fault::FaultInjector injector(sim_, net_, fabric_);
  fault::FaultPlan plan;
  plan.seed = 0xc4a05;
  // One WAN depot crashes mid-browse and returns 20 s later.
  plan.crashes.push_back(
      {.depot = "ca-1", .at = t0 + 15 * kSecond, .restart_after = 20 * kSecond});
  // For three seconds every depot read is silently corrupted.
  plan.corruptions.push_back(
      {.at = t0 + 3 * kSecond, .duration = 3 * kSecond, .prob = 1.0, .depot = {}});
  injector.arm(plan);

  // Browse: a demand request every 2 s, walking the whole lattice.
  const auto ids = source_->lattice().all_view_sets();
  std::size_t failed = 0;
  for (std::size_t i = 0; i < 22; ++i) {
    const SimTime start =
        t0 + 500 * kMillisecond + static_cast<SimTime>(i) * 2 * kSecond;
    sim_.run_until(start);
    const ViewSetId id = ids[(i * 3) % ids.size()];
    const Bytes expected = source_->build_compressed(id);

    bool done = false;
    Bytes got;
    agent.request_view_set(id, [&](const Bytes& data, streaming::AccessClass,
                                   SimDuration) {
      done = true;
      got = data;
    });
    const SimTime limit = sim_.now() + 60 * kSecond;
    while (!done && sim_.now() < limit && sim_.step()) {
    }
    ASSERT_TRUE(done) << "demand request " << i << " never completed";
    if (got != expected) ++failed;
    // Zero undetected corrupt deliveries, zero permanent failures.
    ASSERT_EQ(got.size(), expected.size()) << "request " << i;
    ASSERT_EQ(got, expected) << "request " << i << " delivered wrong bytes";
  }
  agent.stop_lease_refresh();
  EXPECT_EQ(failed, 0u);

  // The scheduled mayhem actually happened.
  EXPECT_GE(injector.stats().crashes, 1u);
  EXPECT_GE(injector.stats().restarts, 1u);
  EXPECT_GE(injector.stats().bits_flipped, 1u);
  EXPECT_GE(lors_.stats().corruption_detected, 1u);
  std::uint64_t lan_expired = 0;
  for (const auto& name : lan_depots_) {
    lan_expired += fabric_.find_depot(name)->stats().leases_expired;
  }
  EXPECT_GE(lan_expired, 1u) << "no lease-expiry wave was exercised";
  EXPECT_GE(agent.stats().invalidations, 1u);
  EXPECT_GE(agent.stats().lease_refreshes + agent.stats().restaged, 1u);

  // Aftermath: ca-2 dies for good; repair rebuilds full replication for a
  // published view set without it.
  fabric_.set_offline("ca-2", true);
  const exnode::ExNode& wounded = published_.at(ids[0]);
  const auto wounded_depots = wounded.depots();
  ASSERT_NE(std::find(wounded_depots.begin(), wounded_depots.end(), "ca-2"),
            wounded_depots.end())
      << "test premise broken: ca-2 hosts none of this view set";
  lors::RepairOptions repair;
  repair.target_replicas = 2;
  repair.candidate_depots = wan_depots_;
  std::optional<lors::RepairResult> healed;
  lors_.repair_async(server_node_, wounded, repair,
                     [&](const lors::RepairResult& r) { healed = r; });
  const SimTime limit = sim_.now() + 60 * kSecond;
  while (!healed.has_value() && sim_.now() < limit && sim_.step()) {
  }
  ASSERT_TRUE(healed.has_value());
  EXPECT_EQ(healed->status, lors::LorsStatus::kOk);
  EXPECT_GE(healed->replicas_lost, 1u);
  EXPECT_GE(healed->replicas_added, 1u);
  EXPECT_EQ(healed->extents_short, 0u);
  for (const auto& extent : healed->exnode.extents()) {
    EXPECT_GE(extent.replicas.size(), 2u);
    for (const auto& replica : extent.replicas) EXPECT_NE(replica.read.depot, "ca-2");
  }
}

}  // namespace
}  // namespace lon
