// Adversarial scenario suite — overload protection and graceful degradation
// composed with the robustness machinery of the earlier layers: admission
// boundary semantics, the degradation ladder, augmentation hysteresis, shed
// retries, and a chaos soak over real content proving zero undetected
// corruption and zero permanent loss.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "lightfield/procedural.hpp"
#include "session/scenario.hpp"
#include "streaming/admission.hpp"
#include "streaming/client_agent.hpp"
#include "streaming/server_agent.hpp"

namespace lon {
namespace {

using streaming::AdmissionConfig;
using streaming::AdmissionController;
using streaming::AdmissionDecision;
using streaming::DegradeLevel;
using streaming::DeliveryStatus;

// --- admission controller -----------------------------------------------------

TEST(Admission, DisabledAdmitsEverything) {
  AdmissionController ctl(AdmissionConfig{});
  // Even a hopeless request passes when the master switch is off.
  EXPECT_EQ(ctl.admit(1, 0, 1u << 20, kSecond, kMillisecond),
            AdmissionDecision::kAdmit);
}

TEST(Admission, QueueShedsAtExactlyTheBound) {
  AdmissionConfig cfg;
  cfg.enabled = true;
  cfg.max_queue = 4;
  AdmissionController ctl(cfg);
  EXPECT_EQ(ctl.admit(1, 0, 3, 0, 0), AdmissionDecision::kAdmit);
  // Boundary: depth == max_queue is full, not "one more fits".
  EXPECT_EQ(ctl.admit(1, 0, 4, 0, 0), AdmissionDecision::kShedQueueFull);
  EXPECT_EQ(ctl.admit(1, 0, 5, 0, 0), AdmissionDecision::kShedQueueFull);
}

TEST(Admission, CompletionExactlyAtTheDeadlineIsAdmitted) {
  AdmissionConfig cfg;
  cfg.enabled = true;
  AdmissionController ctl(cfg);
  // Predicted to land exactly at the time of need: still useful, admit.
  EXPECT_EQ(ctl.admit(1, 0, 0, kSecond, kSecond), AdmissionDecision::kAdmit);
  // One nanosecond late is late.
  EXPECT_EQ(ctl.admit(1, 0, 0, kSecond + 1, kSecond),
            AdmissionDecision::kShedDeadline);
  // No prediction or no deadline: triage cannot run.
  EXPECT_EQ(ctl.admit(1, 0, 0, 0, kSecond), AdmissionDecision::kAdmit);
  EXPECT_EQ(ctl.admit(1, 0, 0, kSecond, 0), AdmissionDecision::kAdmit);
}

TEST(Admission, TokenBucketRefillsOnTheVirtualClock) {
  AdmissionConfig cfg;
  cfg.enabled = true;
  cfg.tokens_per_sec = 2.0;
  cfg.token_burst = 4.0;
  AdmissionController ctl(cfg);
  // A new requester starts with a full burst...
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(ctl.admit(7, 0, 0, 0, 0), AdmissionDecision::kAdmit) << i;
  }
  // ...then runs dry.
  EXPECT_EQ(ctl.admit(7, 0, 0, 0, 0), AdmissionDecision::kShedNoTokens);
  // Refill follows the *virtual* clock: 500 ms at 2 tokens/s = 1 token.
  EXPECT_EQ(ctl.admit(7, 500 * kMillisecond, 0, 0, 0), AdmissionDecision::kAdmit);
  EXPECT_EQ(ctl.admit(7, 500 * kMillisecond, 0, 0, 0),
            AdmissionDecision::kShedNoTokens);
  // The refill caps at the burst, not unbounded credit for idleness.
  EXPECT_NEAR(ctl.tokens(7, 3600 * kSecond), 4.0, 1e-9);
}

TEST(Admission, BucketsAreFairSharePerRequester) {
  AdmissionConfig cfg;
  cfg.enabled = true;
  cfg.tokens_per_sec = 1.0;
  cfg.token_burst = 2.0;
  AdmissionController ctl(cfg);
  // Requester 1 drains its own bucket; requester 2 is unaffected.
  EXPECT_EQ(ctl.admit(1, 0, 0, 0, 0), AdmissionDecision::kAdmit);
  EXPECT_EQ(ctl.admit(1, 0, 0, 0, 0), AdmissionDecision::kAdmit);
  EXPECT_EQ(ctl.admit(1, 0, 0, 0, 0), AdmissionDecision::kShedNoTokens);
  EXPECT_EQ(ctl.admit(2, 0, 0, 0, 0), AdmissionDecision::kAdmit);
  EXPECT_EQ(ctl.admit(2, 0, 0, 0, 0), AdmissionDecision::kAdmit);
}

TEST(Admission, ShedByQueueDoesNotBurnAToken) {
  AdmissionConfig cfg;
  cfg.enabled = true;
  cfg.max_queue = 1;
  cfg.tokens_per_sec = 1.0;
  cfg.token_burst = 1.0;
  AdmissionController ctl(cfg);
  // Queue-full sheds are not charged against the requester's fair share.
  EXPECT_EQ(ctl.admit(3, 0, 1, 0, 0), AdmissionDecision::kShedQueueFull);
  EXPECT_NEAR(ctl.tokens(3, 0), 1.0, 1e-9);
  EXPECT_EQ(ctl.admit(3, 0, 0, 0, 0), AdmissionDecision::kAdmit);
}

// --- degradation ladder -------------------------------------------------------

TEST(DegradeLadder, RungsAreOrdered) {
  EXPECT_LT(static_cast<int>(DegradeLevel::kFull),
            static_cast<int>(DegradeLevel::kLanOnly));
  EXPECT_LT(static_cast<int>(DegradeLevel::kLanOnly),
            static_cast<int>(DegradeLevel::kCoarseLod));
  EXPECT_LT(static_cast<int>(DegradeLevel::kCoarseLod),
            static_cast<int>(DegradeLevel::kDemandOnly));
  EXPECT_STREQ(to_string(DegradeLevel::kLanOnly), "lan-only");
  EXPECT_STREQ(to_string(DegradeLevel::kDemandOnly), "demand-only");
}

TEST(DegradeLadder, DescendsOneRungPerMissStreakAndStopsAtTheFloor) {
  // Every WAN access misses a 1 ns deadline, so the agent must walk
  // kFull -> kLanOnly -> kCoarseLod -> kDemandOnly — exactly three
  // downgrades, in order, and then sit at the floor (no wrap, no flap).
  session::ExperimentConfig cfg;
  cfg.lattice.angular_step_deg = 15.0;
  cfg.lattice.view_set_span = 3;
  cfg.lattice.view_resolution = 64;
  cfg.which = session::Case::kWanStreaming;
  cfg.all_filler = true;
  cfg.client.decode = false;
  cfg.client.timing = streaming::ClientConfig::Timing::kModeled;
  cfg.dwell = 200 * kMillisecond;
  cfg.accesses = 10;
  cfg.degrade = true;
  cfg.degrade_after_misses = 1;
  cfg.upgrade_after_hits = 100;  // never recovers within this run
  cfg.interactivity_deadline = 1;
  cfg.lod_resolution = 32;

  const session::ExperimentResult result = session::run_experiment(cfg);
  EXPECT_EQ(result.robustness.downgrades, 3u);
  EXPECT_EQ(result.robustness.upgrades, 0u);
  // The floor suppresses anticipation entirely.
  EXPECT_GT(result.robustness.degrade_demand_only, 0u);
  // The middle rung served at least one demand miss from the coarse tier.
  EXPECT_GT(result.robustness.degrade_lod, 0u);
  EXPECT_EQ(result.failed_accesses, 0u);
}

TEST(DegradeLadder, SustainedOnTimeDeliveriesClimbBackUp) {
  // Case 3: early accesses race prestaging across the WAN (deadline
  // misses), later ones ride the LAN/cache well inside the deadline — the
  // ladder must move down and then recover.
  session::ExperimentConfig cfg;
  cfg.lattice.angular_step_deg = 15.0;
  cfg.lattice.view_set_span = 3;
  cfg.lattice.view_resolution = 64;
  cfg.which = session::Case::kWanWithLanDepot;
  cfg.all_filler = true;
  cfg.client.decode = false;
  cfg.client.timing = streaming::ClientConfig::Timing::kModeled;
  cfg.dwell = 2 * kSecond;
  cfg.accesses = 14;
  cfg.degrade = true;
  cfg.degrade_after_misses = 1;
  cfg.upgrade_after_hits = 2;
  cfg.interactivity_deadline = 100 * kMillisecond;

  const session::ExperimentResult result = session::run_experiment(cfg);
  EXPECT_GT(result.robustness.downgrades, 0u);
  EXPECT_GT(result.robustness.upgrades, 0u);
  EXPECT_EQ(result.failed_accesses, 0u);
}

// --- agent-level shedding -----------------------------------------------------

class ShedTest : public ::testing::Test {
 protected:
  static lightfield::LatticeConfig small_config() {
    lightfield::LatticeConfig cfg;
    cfg.angular_step_deg = 15.0;
    cfg.view_set_span = 3;
    cfg.view_resolution = 24;
    return cfg;
  }

  ShedTest()
      : net_(sim_),
        fabric_(sim_, net_),
        lors_(sim_, net_, fabric_),
        source_(std::make_shared<lightfield::ProceduralSource>(small_config())) {
    lan_switch_ = net_.add_node("lan-switch");
    agent_node_ = net_.add_node("agent");
    client_a_ = net_.add_node("client-a");
    client_b_ = net_.add_node("client-b");
    const sim::LinkConfig lan{1e9, 50 * kMicrosecond, 0.0};
    net_.add_link(agent_node_, lan_switch_, lan);
    net_.add_link(client_a_, lan_switch_, lan);
    net_.add_link(client_b_, lan_switch_, lan);
    wan_router_ = net_.add_node("wan-router");
    net_.add_link(lan_switch_, wan_router_, {100e6, 35 * kMillisecond, 0.0});
    for (int i = 0; i < 2; ++i) {
      const std::string name = "ca-" + std::to_string(i);
      const sim::NodeId node = net_.add_node(name);
      net_.add_link(node, wan_router_, {1e9, kMillisecond, 0.0});
      ibp::DepotConfig cfg;
      cfg.capacity_bytes = 1ull << 30;
      cfg.max_alloc_bytes = 1ull << 28;
      fabric_.add_depot(node, name, cfg);
      wan_depots_.push_back(name);
    }
    dvs_node_ = net_.add_node("dvs");
    net_.add_link(dvs_node_, wan_router_, {1e9, kMillisecond, 0.0});
    server_node_ = net_.add_node("server");
    net_.add_link(server_node_, wan_router_, {1e9, kMillisecond, 0.0});
    dvs_ = std::make_unique<streaming::DvsServer>(sim_, net_, dvs_node_,
                                                  source_->lattice());
  }

  exnode::ExNode publish(const lightfield::ViewSetId& id) {
    Bytes compressed = source_->build_compressed(id);
    lors::UploadOptions up;
    up.depots = wan_depots_;
    up.block_bytes = 4096;
    exnode::ExNode published;
    bool ok = false;
    lors_.upload_async(server_node_, std::move(compressed), up,
                       [&](const lors::UploadResult& r) {
                         ok = r.status == lors::LorsStatus::kOk;
                         published = r.exnode;
                         exnode::ExNode copy = r.exnode;
                         dvs_->install(id, std::move(copy));
                       });
    sim_.run();
    EXPECT_TRUE(ok);
    return published;
  }

  sim::Simulator sim_;
  sim::Network net_;
  ibp::Fabric fabric_;
  lors::Lors lors_;
  std::shared_ptr<lightfield::ProceduralSource> source_;
  sim::NodeId lan_switch_ = 0, agent_node_ = 0, client_a_ = 0, client_b_ = 0;
  sim::NodeId wan_router_ = 0, dvs_node_ = 0, server_node_ = 0;
  std::vector<std::string> wan_depots_;
  std::unique_ptr<streaming::DvsServer> dvs_;
};

TEST_F(ShedTest, QueueFullDeliversAnExplicitShedNotAFailure) {
  publish({0, 0});
  publish({1, 1});
  streaming::ClientAgentConfig cfg;
  cfg.prefetch = false;
  cfg.admission.enabled = true;
  cfg.admission.max_queue = 1;
  streaming::ClientAgent agent(sim_, net_, fabric_, lors_, *dvs_,
                               source_->lattice(), agent_node_, cfg);

  std::optional<DeliveryStatus> first, second;
  agent.request_view_set({0, 0}, client_a_,
                         [&](const streaming::ClientAgent::Delivery& d) {
                           first = d.status;
                         });
  agent.request_view_set({1, 1}, client_b_,
                         [&](const streaming::ClientAgent::Delivery& d) {
                           second = d.status;
                           EXPECT_TRUE(d.payload->empty());
                         });
  sim_.run();
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(*first, DeliveryStatus::kOk);
  EXPECT_EQ(*second, DeliveryStatus::kShed);
  EXPECT_EQ(agent.stats().demand_shed, 1u);
  EXPECT_EQ(agent.stats().shed_queue_full, 1u);
  // A shed is an overload refusal, not a depot problem: nothing was
  // invalidated, refetched or failed over.
  EXPECT_EQ(agent.stats().refetches, 0u);
  EXPECT_EQ(agent.stats().invalidations, 0u);
}

TEST_F(ShedTest, CacheHitsAndCoalescedRequestsBypassAdmission) {
  publish({0, 0});
  streaming::ClientAgentConfig cfg;
  cfg.prefetch = false;
  cfg.admission.enabled = true;
  cfg.admission.max_queue = 1;
  streaming::ClientAgent agent(sim_, net_, fabric_, lors_, *dvs_,
                               source_->lattice(), agent_node_, cfg);

  int delivered = 0;
  for (int i = 0; i < 3; ++i) {
    // Same id three times while the first fetch is in flight: the later two
    // coalesce onto the in-flight download instead of being shed.
    agent.request_view_set({0, 0}, client_a_,
                           [&](const streaming::ClientAgent::Delivery& d) {
                             EXPECT_EQ(d.status, DeliveryStatus::kOk);
                             ++delivered;
                           });
  }
  sim_.run();
  EXPECT_EQ(delivered, 3);
  EXPECT_EQ(agent.stats().demand_shed, 0u);
  // And once cached, a full queue never sheds a hit.
  agent.request_view_set({0, 0}, client_a_,
                         [&](const streaming::ClientAgent::Delivery& d) {
                           EXPECT_EQ(d.status, DeliveryStatus::kOk);
                           ++delivered;
                         });
  sim_.run();
  EXPECT_EQ(delivered, 4);
  EXPECT_EQ(agent.stats().demand_shed, 0u);
}

// --- augmentation hysteresis --------------------------------------------------

TEST_F(ShedTest, AugmentThresholdHasCooldownHysteresis) {
  const lightfield::ViewSetId id{0, 0};
  const exnode::ExNode published = publish(id);

  streaming::ServerAgentConfig cfg;
  cfg.depots = wan_depots_;
  cfg.augment_threshold = 3;
  cfg.augment_cooldown = 60 * kSecond;
  streaming::ServerAgent server(sim_, net_, lors_, *dvs_, server_node_, source_, cfg);

  // Six threshold crossings in one burst: the cooldown gate closes before
  // the asynchronous copy starts, so the replica set must not flap — exactly
  // one fanout.
  for (int i = 0; i < 6; ++i) server.note_hot(id, published);
  sim_.run();
  EXPECT_EQ(server.augment_count(), 1u);

  // Still cooling down: more pressure is absorbed silently.
  for (int i = 0; i < 3; ++i) server.note_hot(id, published);
  sim_.run();
  EXPECT_EQ(server.augment_count(), 1u);

  // After the cooldown expires the next threshold crossing fans out again.
  bool waited = false;
  sim_.after(cfg.augment_cooldown, [&] { waited = true; });
  sim_.run();
  ASSERT_TRUE(waited);
  for (int i = 0; i < 3; ++i) server.note_hot(id, published);
  sim_.run();
  EXPECT_EQ(server.augment_count(), 2u);
}

TEST_F(ShedTest, BelowThresholdPressureNeverAugments) {
  const lightfield::ViewSetId id{0, 0};
  const exnode::ExNode published = publish(id);
  streaming::ServerAgentConfig cfg;
  cfg.depots = wan_depots_;
  cfg.augment_threshold = 5;
  streaming::ServerAgent server(sim_, net_, lors_, *dvs_, server_node_, source_, cfg);
  for (int i = 0; i < 4; ++i) server.note_hot(id, published);
  sim_.run();
  EXPECT_EQ(server.augment_count(), 0u);
}

// --- composed scenarios -------------------------------------------------------

TEST(Scenarios, RunsAreDeterministic) {
  const session::ScenarioResult a = session::run_scenario(session::flash_crowd(10, true));
  const session::ScenarioResult b = session::run_scenario(session::flash_crowd(10, true));
  EXPECT_EQ(a.mean_total_s, b.mean_total_s);
  EXPECT_EQ(a.p99_worst_s, b.p99_worst_s);
  EXPECT_EQ(a.robustness.demand_shed, b.robustness.demand_shed);
  EXPECT_EQ(a.robustness.shed_retries, b.robustness.shed_retries);
  EXPECT_EQ(a.duration, b.duration);
  // The simulator-core counters are part of the deterministic surface: the
  // scale gate matches them exactly across machines and runs.
  EXPECT_EQ(a.sim_events, b.sim_events);
  EXPECT_EQ(a.sim_scheduled, b.sim_scheduled);
  EXPECT_EQ(a.net_reallocs, b.net_reallocs);
  EXPECT_EQ(a.net_realloc_flows_touched, b.net_realloc_flows_touched);
}

// The incremental reallocator (affected-component solve) must be observably
// identical to a forced full-graph solve — same latencies, same virtual
// duration, same event count — on the heaviest contention scenario we have.
TEST(Scenarios, FlashCrowdIsIdenticalUnderIncrementalAndFullResolve) {
  session::Scenario incremental = session::flash_crowd(10, true);
  session::Scenario full = session::flash_crowd(10, true);
  full.base.full_network_resolve = true;
  const session::ScenarioResult a = session::run_scenario(incremental);
  const session::ScenarioResult b = session::run_scenario(full);
  EXPECT_EQ(a.mean_total_s, b.mean_total_s);
  EXPECT_EQ(a.p99_worst_s, b.p99_worst_s);
  EXPECT_EQ(a.p99_mean_s, b.p99_mean_s);
  EXPECT_EQ(a.total_accesses, b.total_accesses);
  EXPECT_EQ(a.failed_accesses, b.failed_accesses);
  EXPECT_EQ(a.robustness.demand_shed, b.robustness.demand_shed);
  EXPECT_EQ(a.duration, b.duration);
  EXPECT_EQ(a.sim_events, b.sim_events);
  EXPECT_EQ(a.sim_scheduled, b.sim_scheduled);
  EXPECT_EQ(a.net_reallocs, b.net_reallocs);
  // The one sanctioned difference: the full solve re-rates every flow on
  // every solve, the incremental one only the affected component.
  EXPECT_LE(a.net_realloc_flows_touched, b.net_realloc_flows_touched);
}

TEST(Scenarios, FlashCrowdAdmissionShedsRetriesAndNobodyStarves) {
  const session::ScenarioResult result =
      session::run_scenario(session::flash_crowd(40, true));
  // The crowd overflows the demand queue: explicit sheds, not silent queues.
  EXPECT_GT(result.robustness.demand_shed, 0u);
  // Clients retried through the backoff machinery, not the failure path.
  EXPECT_GT(result.robustness.shed_retries, 0u);
  EXPECT_EQ(result.robustness.failovers, 0u);
  // Fair share: every client still made progress.
  EXPECT_GT(result.min_client_delivered, 0u);
}

TEST(Scenarios, WarmSiteCacheBeatsCold) {
  const session::ScenarioResult cold = session::run_scenario(session::site_cache(false));
  const session::ScenarioResult warm = session::run_scenario(session::site_cache(true));
  EXPECT_TRUE(warm.staging_complete);
  EXPECT_EQ(warm.failed_accesses, 0u);
  EXPECT_EQ(cold.failed_accesses, 0u);
  // With the whole database prestaged before the first view, nothing is
  // fetched across the WAN and the tail collapses.
  EXPECT_EQ(warm.agent_stats.wan_accesses, 0u);
  EXPECT_LE(warm.p99_worst_s, cold.p99_worst_s);
}

TEST(Scenarios, LeaseExpiryWaveIsAbsorbed) {
  const session::ScenarioResult result =
      session::run_scenario(session::lease_expiry_wave());
  EXPECT_EQ(result.failed_accesses, 0u);
  // The expiry wave actually happened and the agent healed through it —
  // replica failover away from the dead LAN copy, stale-exNode invalidation
  // and refetch, or restaging, depending on where the read caught it.
  EXPECT_GT(result.robustness.failovers + result.robustness.invalidations +
                result.robustness.refetches + result.robustness.restaged,
            0u);
}

TEST(Scenarios, ChaosSoakHasNoUndetectedCorruptionAndNoPermanentLoss) {
  // Real pixels + real decoding: a corrupted payload that slipped past the
  // block checksums would surface as a decode error (a failed access).
  session::Scenario scenario = session::teleport_under_faults(2);
  scenario.base.all_filler = false;
  scenario.base.client.decode = true;
  const session::ScenarioResult result = session::run_scenario(scenario);
  // Corruption was injected and caught...
  EXPECT_GT(result.robustness.corruption_detected, 0u);
  EXPECT_GT(result.fault_stats.crashes, 0u);
  // ...and every access was eventually delivered intact.
  EXPECT_EQ(result.failed_accesses, 0u);
  EXPECT_GT(result.min_client_delivered, 0u);
}

}  // namespace
}  // namespace lon
