// Unit tests for the exNode and its XML encoding.
#include <gtest/gtest.h>

#include "exnode/exnode.hpp"
#include "exnode/xml.hpp"

namespace lon::exnode {
namespace {

ibp::Capability make_cap(const std::string& depot, std::uint64_t alloc,
                         std::uint64_t key = 0xabc) {
  ibp::Capability cap;
  cap.depot = depot;
  cap.allocation = alloc;
  cap.key = key;
  cap.kind = ibp::CapKind::kRead;
  return cap;
}

Replica make_replica(const std::string& depot, std::uint64_t alloc,
                     std::uint64_t alloc_offset = 0) {
  Replica replica;
  replica.read = make_cap(depot, alloc);
  replica.alloc_offset = alloc_offset;
  return replica;
}

// --- xml -----------------------------------------------------------------------

TEST(Xml, RoundTripSimpleTree) {
  XmlElement root;
  root.name = "root";
  root.attributes["a"] = "1";
  XmlElement child;
  child.name = "child";
  child.text = "hello world";
  root.children.push_back(child);

  const XmlElement parsed = parse_xml(to_xml(root));
  EXPECT_EQ(parsed.name, "root");
  EXPECT_EQ(parsed.attr("a"), "1");
  ASSERT_NE(parsed.child("child"), nullptr);
  EXPECT_EQ(parsed.child("child")->text, "hello world");
}

TEST(Xml, EscapesSpecialCharacters) {
  XmlElement root;
  root.name = "r";
  root.attributes["v"] = "a<b&\"c'>d";
  root.text = "x<y>&z";
  const XmlElement parsed = parse_xml(to_xml(root));
  EXPECT_EQ(parsed.attr("v"), "a<b&\"c'>d");
  EXPECT_EQ(parsed.text, "x<y>&z");
}

TEST(Xml, SelfClosingAndNestedElements) {
  const XmlElement parsed =
      parse_xml("<a><b x=\"1\"/><b x=\"2\"/><c><d/></c></a>");
  EXPECT_EQ(parsed.children_named("b").size(), 2u);
  ASSERT_NE(parsed.child("c"), nullptr);
  EXPECT_NE(parsed.child("c")->child("d"), nullptr);
}

TEST(Xml, AcceptsPrologAndWhitespace) {
  const XmlElement parsed =
      parse_xml("<?xml version=\"1.0\"?>\n  <a>\n    <b/>\n  </a>\n");
  EXPECT_EQ(parsed.name, "a");
  EXPECT_EQ(parsed.children.size(), 1u);
}

TEST(Xml, RejectsMalformedDocuments) {
  EXPECT_THROW(parse_xml("<a><b></a></b>"), XmlError);
  EXPECT_THROW(parse_xml("<a>"), XmlError);
  EXPECT_THROW(parse_xml("<a/><b/>"), XmlError);
  EXPECT_THROW(parse_xml("<a attr=1/>"), XmlError);
  EXPECT_THROW(parse_xml("<a>&unknown;</a>"), XmlError);
}

TEST(Xml, MissingAttributeThrows) {
  const XmlElement parsed = parse_xml("<a x=\"1\"/>");
  EXPECT_EQ(parsed.attr("x"), "1");
  EXPECT_THROW((void)parsed.attr("y"), XmlError);
  EXPECT_EQ(parsed.attr_or("y", "dflt"), "dflt");
}

// --- exnode ----------------------------------------------------------------------

TEST(ExNode, ExtentsStaySortedAndQueryable) {
  ExNode node(300);
  node.add_extent({200, 100, {make_replica("d1", 3)}, {}});
  node.add_extent({0, 100, {make_replica("d1", 1)}, {}});
  node.add_extent({100, 100, {make_replica("d2", 2)}, {}});

  ASSERT_EQ(node.extents().size(), 3u);
  EXPECT_EQ(node.extents()[0].offset, 0u);
  EXPECT_EQ(node.extents()[1].offset, 100u);
  EXPECT_EQ(node.extents()[2].offset, 200u);

  ASSERT_NE(node.extent_at(150), nullptr);
  EXPECT_EQ(node.extent_at(150)->offset, 100u);
  EXPECT_EQ(node.extent_at(299)->offset, 200u);
  EXPECT_EQ(node.extent_at(300), nullptr);
}

TEST(ExNode, RejectsOverlapsAndZeroLength) {
  ExNode node(100);
  node.add_extent({0, 50, {}, {}});
  EXPECT_THROW(node.add_extent({25, 50, {}, {}}), std::invalid_argument);
  EXPECT_THROW(node.add_extent({49, 1, {}, {}}), std::invalid_argument);
  EXPECT_THROW(node.add_extent({10, 0, {}, {}}), std::invalid_argument);
  node.add_extent({50, 50, {}, {}});  // exactly adjacent is fine
}

TEST(ExNode, CompletenessRequiresFullCoverageAndReplicas) {
  ExNode node(200);
  EXPECT_FALSE(node.complete());
  node.add_extent({0, 100, {make_replica("d1", 1)}, {}});
  EXPECT_FALSE(node.complete());  // gap at the tail
  node.add_extent({100, 100, {}, {}});
  EXPECT_FALSE(node.complete());  // extent with no replica
  node.add_replica(100, make_replica("d2", 2));
  EXPECT_TRUE(node.complete());
}

TEST(ExNode, AddReplicaFrontMakesItPreferred) {
  ExNode node(100);
  node.add_extent({0, 100, {make_replica("wan", 1)}, {}});
  EXPECT_TRUE(node.add_replica(0, make_replica("lan", 2), /*front=*/true));
  EXPECT_EQ(node.extents()[0].replicas.front().read.depot, "lan");
  EXPECT_FALSE(node.add_replica(50, make_replica("lan", 3)));  // no extent at 50
}

TEST(ExNode, DropDepotRemovesAllItsReplicas) {
  ExNode node(200);
  node.add_extent({0, 100, {make_replica("dead", 1), make_replica("ok", 2)}, {}});
  node.add_extent({100, 100, {make_replica("dead", 3)}, {}});
  EXPECT_EQ(node.drop_depot("dead"), 2u);
  EXPECT_TRUE(node.extents()[1].replicas.empty());
  EXPECT_FALSE(node.complete());
}

TEST(ExNode, DepotsListsUniqueNames) {
  ExNode node(200);
  node.add_extent({0, 100, {make_replica("a", 1), make_replica("b", 2)}, {}});
  node.add_extent({100, 100, {make_replica("a", 3)}, {}});
  EXPECT_EQ(node.depots(), (std::vector<std::string>{"a", "b"}));
}

TEST(ExNode, XmlRoundTripPreservesEverything) {
  ExNode node(1'048'576);
  node.metadata()["dataset"] = "negHip";
  node.metadata()["viewset"] = "3,17";
  node.add_extent({0, 524'288,
                   {make_replica("ca-1", 11, 0), make_replica("ca-2", 12, 4096)}, {}});
  node.add_extent({524'288, 524'288, {make_replica("ca-3", 13)}, {}});

  const ExNode back = ExNode::from_xml(node.to_xml());
  EXPECT_EQ(back, node);
}

TEST(ExNode, XmlRoundTripPreservesManageCapabilities) {
  ExNode node(100);
  Replica owner = make_replica("d1", 5);
  owner.manage = make_cap("d1", 5, 0x777);
  owner.manage->kind = ibp::CapKind::kManage;
  Replica reader = make_replica("d2", 6);  // downloader copy: read-only
  node.add_extent({0, 100, {owner, reader}, {}});

  const ExNode back = ExNode::from_xml(node.to_xml());
  ASSERT_EQ(back.extents().size(), 1u);
  const auto& replicas = back.extents()[0].replicas;
  ASSERT_EQ(replicas.size(), 2u);
  ASSERT_TRUE(replicas[0].manage.has_value());
  EXPECT_EQ(replicas[0].manage->key, 0x777u);
  EXPECT_FALSE(replicas[1].manage.has_value());
  EXPECT_EQ(back, node);
}

TEST(ExNode, XmlRoundTripEmptyNode) {
  ExNode node(0);
  const ExNode back = ExNode::from_xml(node.to_xml());
  EXPECT_EQ(back, node);
  EXPECT_TRUE(back.complete());
}

TEST(ExNode, FromXmlRejectsWrongRoot) {
  EXPECT_THROW(ExNode::from_xml("<inode length=\"1\"/>"), XmlError);
  EXPECT_THROW(ExNode::from_xml("<exnode length=\"8\"><extent offset=\"0\" "
                                "length=\"8\"><replica uri=\"garbage\"/></extent></exnode>"),
               XmlError);
}

TEST(ExNode, MetadataSurvivesRoundTripWithSpecialChars) {
  ExNode node(10);
  node.metadata()["note"] = "a<b & \"c\"";
  const ExNode back = ExNode::from_xml(node.to_xml());
  EXPECT_EQ(back.metadata().at("note"), "a<b & \"c\"");
}

}  // namespace
}  // namespace lon::exnode
