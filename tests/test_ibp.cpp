// Unit tests for IBP: capability encoding, depot storage semantics (leases,
// admission control, soft revocation) and network-facing fabric operations
// including third-party copy.
#include <gtest/gtest.h>

#include <optional>

#include "ibp/capability.hpp"
#include "ibp/depot.hpp"
#include "ibp/service.hpp"
#include "simnet/network.hpp"

namespace lon::ibp {
namespace {

// --- capabilities -------------------------------------------------------------

TEST(Capability, UriRoundTrip) {
  Capability cap;
  cap.depot = "ca-depot-1";
  cap.allocation = 42;
  cap.key = 0xdeadbeefcafef00dULL;
  cap.kind = CapKind::kWrite;
  const auto parsed = Capability::parse(cap.to_uri());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, cap);
}

TEST(Capability, AllKindsRoundTrip) {
  for (const CapKind kind : {CapKind::kRead, CapKind::kWrite, CapKind::kManage}) {
    Capability cap;
    cap.depot = "d";
    cap.allocation = 1;
    cap.key = 7;
    cap.kind = kind;
    const auto parsed = Capability::parse(cap.to_uri());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->kind, kind);
  }
}

TEST(Capability, ParseRejectsMalformedUris) {
  EXPECT_FALSE(Capability::parse("http://depot/1#a/read").has_value());
  EXPECT_FALSE(Capability::parse("ibp://depot").has_value());
  EXPECT_FALSE(Capability::parse("ibp:///1#a/read").has_value());
  EXPECT_FALSE(Capability::parse("ibp://depot/xyz#a/read").has_value());
  EXPECT_FALSE(Capability::parse("ibp://depot/1#zz_bad/read").has_value());
  EXPECT_FALSE(Capability::parse("ibp://depot/1#a/owner").has_value());
  EXPECT_FALSE(Capability::parse("").has_value());
}

// --- depot ---------------------------------------------------------------------

class DepotTest : public ::testing::Test {
 protected:
  DepotTest() : depot_(sim_, "d1", make_config()) {}

  static DepotConfig make_config() {
    DepotConfig cfg;
    cfg.capacity_bytes = 10'000;
    cfg.max_alloc_bytes = 4'000;
    cfg.max_lease = 100 * kSecond;
    return cfg;
  }

  CapabilitySet must_allocate(std::uint64_t size, SimDuration lease = 10 * kSecond,
                              AllocType type = AllocType::kHard) {
    const auto result = depot_.allocate({size, lease, type});
    EXPECT_EQ(result.status, IbpStatus::kOk);
    return result.caps;
  }

  sim::Simulator sim_;
  Depot depot_;
};

TEST_F(DepotTest, AllocateStoreLoadRoundTrip) {
  const auto caps = must_allocate(100);
  const Bytes data = {10, 20, 30, 40, 50};
  EXPECT_EQ(depot_.store(caps.write, 0, data), IbpStatus::kOk);
  Bytes out;
  EXPECT_EQ(depot_.load(caps.read, 0, 5, out), IbpStatus::kOk);
  EXPECT_EQ(out, data);
}

TEST_F(DepotTest, StoreAtOffsetAndPartialLoad) {
  const auto caps = must_allocate(100);
  const Bytes data = {1, 2, 3, 4};
  EXPECT_EQ(depot_.store(caps.write, 10, data), IbpStatus::kOk);
  Bytes out;
  EXPECT_EQ(depot_.load(caps.read, 11, 2, out), IbpStatus::kOk);
  EXPECT_EQ(out, (Bytes{2, 3}));
}

TEST_F(DepotTest, WrongKindOrKeyIsRejected) {
  const auto caps = must_allocate(100);
  Bytes out;
  // Read with the write capability.
  EXPECT_EQ(depot_.load(caps.write, 0, 1, out), IbpStatus::kBadCapability);
  // Store with the read capability.
  EXPECT_EQ(depot_.store(caps.read, 0, Bytes{1}), IbpStatus::kBadCapability);
  // Forged key.
  Capability forged = caps.read;
  forged.key ^= 1;
  EXPECT_EQ(depot_.load(forged, 0, 1, out), IbpStatus::kBadCapability);
  // Wrong depot name.
  Capability other = caps.read;
  other.depot = "elsewhere";
  EXPECT_EQ(depot_.load(other, 0, 1, out), IbpStatus::kBadCapability);
}

TEST_F(DepotTest, OutOfRangeAccess) {
  const auto caps = must_allocate(100);
  Bytes out;
  EXPECT_EQ(depot_.load(caps.read, 90, 20, out), IbpStatus::kBadRange);
  EXPECT_EQ(depot_.load(caps.read, 200, 1, out), IbpStatus::kBadRange);
  EXPECT_EQ(depot_.store(caps.write, 99, Bytes{1, 2}), IbpStatus::kBadRange);
}

TEST_F(DepotTest, AdmissionRefusesOversizeAndOverlongRequests) {
  EXPECT_EQ(depot_.allocate({5'000, kSecond, AllocType::kHard}).status, IbpStatus::kRefused);
  EXPECT_EQ(depot_.allocate({100, 1'000 * kSecond, AllocType::kHard}).status,
            IbpStatus::kRefused);
  EXPECT_EQ(depot_.allocate({0, kSecond, AllocType::kHard}).status, IbpStatus::kRefused);
  EXPECT_EQ(depot_.stats().allocations_refused, 3u);
}

TEST_F(DepotTest, CapacityExhaustionReportsNoCapacity) {
  must_allocate(4'000);
  must_allocate(4'000);
  EXPECT_EQ(depot_.allocate({4'000, kSecond, AllocType::kHard}).status,
            IbpStatus::kNoCapacity);
  EXPECT_EQ(depot_.bytes_used(), 8'000u);
}

TEST_F(DepotTest, LeaseExpiryReclaimsLazily) {
  const auto caps = must_allocate(100, 5 * kSecond);
  sim_.run_until(4 * kSecond);
  Bytes out;
  EXPECT_EQ(depot_.load(caps.read, 0, 1, out), IbpStatus::kOk);
  sim_.run_until(6 * kSecond);
  EXPECT_EQ(depot_.load(caps.read, 0, 1, out), IbpStatus::kExpired);
  EXPECT_EQ(depot_.allocation_count(), 0u);
  // A second access still reports expired (tombstone), not not-found.
  EXPECT_EQ(depot_.load(caps.read, 0, 1, out), IbpStatus::kExpired);
}

TEST_F(DepotTest, SweepReclaimsAllExpired) {
  must_allocate(100, 2 * kSecond);
  must_allocate(100, 3 * kSecond);
  must_allocate(100, 50 * kSecond);
  sim_.run_until(10 * kSecond);
  EXPECT_EQ(depot_.sweep_expired(), 2u);
  EXPECT_EQ(depot_.allocation_count(), 1u);
  EXPECT_EQ(depot_.bytes_used(), 100u);
}

TEST_F(DepotTest, ExtendRenewsLease) {
  const auto caps = must_allocate(100, 5 * kSecond);
  sim_.run_until(4 * kSecond);
  EXPECT_EQ(depot_.extend(caps.manage, 10 * kSecond), IbpStatus::kOk);
  sim_.run_until(9 * kSecond);
  Bytes out;
  EXPECT_EQ(depot_.load(caps.read, 0, 1, out), IbpStatus::kOk);
  // Extension beyond the admission cap is refused.
  EXPECT_EQ(depot_.extend(caps.manage, 1'000 * kSecond), IbpStatus::kRefused);
}

TEST_F(DepotTest, ProbeReportsMetadata) {
  const auto caps = must_allocate(100, 5 * kSecond, AllocType::kSoft);
  depot_.store(caps.write, 0, Bytes{1, 2, 3});
  AllocInfo info;
  ASSERT_EQ(depot_.probe(caps.manage, info), IbpStatus::kOk);
  EXPECT_EQ(info.size, 100u);
  EXPECT_EQ(info.bytes_written, 3u);
  EXPECT_EQ(info.type, AllocType::kSoft);
  EXPECT_EQ(info.expires, 5 * kSecond);
}

TEST_F(DepotTest, ReleaseFreesSpace) {
  const auto caps = must_allocate(4'000);
  EXPECT_EQ(depot_.release(caps.manage), IbpStatus::kOk);
  EXPECT_EQ(depot_.bytes_used(), 0u);
  Bytes out;
  EXPECT_EQ(depot_.load(caps.read, 0, 1, out), IbpStatus::kNotFound);
}

TEST_F(DepotTest, SoftAllocationsAreRevokedUnderPressure) {
  // Fill with soft allocations, then ask for a hard one.
  const auto s1 = must_allocate(4'000, 50 * kSecond, AllocType::kSoft);
  sim_.run_until(kSecond);
  const auto s2 = must_allocate(4'000, 50 * kSecond, AllocType::kSoft);
  sim_.run_until(2 * kSecond);
  const auto hard = depot_.allocate({4'000, 10 * kSecond, AllocType::kHard});
  EXPECT_EQ(hard.status, IbpStatus::kOk);
  // The least recently accessed soft allocation (s1) was the victim.
  Bytes out;
  EXPECT_EQ(depot_.load(s1.read, 0, 1, out), IbpStatus::kRevoked);
  EXPECT_EQ(depot_.load(s2.read, 0, 1, out), IbpStatus::kOk);
  EXPECT_EQ(depot_.stats().soft_revoked, 1u);
}

TEST_F(DepotTest, LruOrderRespectsAccessTime) {
  const auto s1 = must_allocate(4'000, 50 * kSecond, AllocType::kSoft);
  sim_.run_until(kSecond);
  const auto s2 = must_allocate(4'000, 50 * kSecond, AllocType::kSoft);
  sim_.run_until(2 * kSecond);
  // Touch s1 so s2 becomes the LRU victim.
  Bytes out;
  EXPECT_EQ(depot_.load(s1.read, 0, 1, out), IbpStatus::kOk);
  const auto hard = depot_.allocate({4'000, 10 * kSecond, AllocType::kHard});
  EXPECT_EQ(hard.status, IbpStatus::kOk);
  EXPECT_EQ(depot_.load(s1.read, 0, 1, out), IbpStatus::kOk);
  EXPECT_EQ(depot_.load(s2.read, 0, 1, out), IbpStatus::kRevoked);
}

TEST_F(DepotTest, HardAllocationsAreNeverRevoked) {
  must_allocate(4'000, 50 * kSecond, AllocType::kHard);
  must_allocate(4'000, 50 * kSecond, AllocType::kHard);
  EXPECT_EQ(depot_.allocate({4'000, kSecond, AllocType::kHard}).status,
            IbpStatus::kNoCapacity);
  EXPECT_EQ(depot_.stats().soft_revoked, 0u);
  EXPECT_EQ(depot_.allocation_count(), 2u);
}

TEST_F(DepotTest, StatsAccumulate) {
  const auto caps = must_allocate(100);
  depot_.store(caps.write, 0, Bytes{1, 2, 3});
  Bytes out;
  depot_.load(caps.read, 0, 2, out);
  EXPECT_EQ(depot_.stats().allocations_made, 1u);
  EXPECT_EQ(depot_.stats().bytes_stored, 3u);
  EXPECT_EQ(depot_.stats().bytes_loaded, 2u);
}

// --- fabric ---------------------------------------------------------------------

class FabricTest : public ::testing::Test {
 protected:
  FabricTest() : net_(sim_), fabric_(sim_, net_) {
    client_ = net_.add_node("client");
    wan_node_ = net_.add_node("wan-depot");
    lan_node_ = net_.add_node("lan-depot");
    // Client to WAN depot: 100 Mb/s, 35 ms (coast-to-coast).
    net_.add_link(client_, wan_node_, {100e6, 35 * kMillisecond, 0.0});
    // Client to LAN depot: 1 Gb/s, 50 us.
    net_.add_link(client_, lan_node_, {1e9, 50 * kMicrosecond, 0.0});

    DepotConfig cfg;
    cfg.capacity_bytes = 1 << 30;
    cfg.max_alloc_bytes = 1 << 28;
    wan_ = &fabric_.add_depot(wan_node_, "wan", cfg);
    lan_ = &fabric_.add_depot(lan_node_, "lan", cfg);
  }

  CapabilitySet remote_allocate(const std::string& depot, std::uint64_t size) {
    std::optional<CapabilitySet> caps;
    fabric_.allocate_async(client_, depot, {size, 3600 * kSecond, AllocType::kHard},
                           [&](IbpStatus status, const CapabilitySet& c) {
                             ASSERT_EQ(status, IbpStatus::kOk);
                             caps = c;
                           });
    sim_.run();
    EXPECT_TRUE(caps.has_value());
    return *caps;
  }

  sim::Simulator sim_;
  sim::Network net_;
  Fabric fabric_;
  sim::NodeId client_ = 0, wan_node_ = 0, lan_node_ = 0;
  Depot* wan_ = nullptr;
  Depot* lan_ = nullptr;
};

TEST_F(FabricTest, RemoteAllocateCostsOneRtt) {
  SimTime done = 0;
  fabric_.allocate_async(client_, "wan", {1024, kSecond, AllocType::kHard},
                         [&](IbpStatus status, const CapabilitySet&) {
                           EXPECT_EQ(status, IbpStatus::kOk);
                           done = sim_.now();
                         });
  sim_.run();
  // One RTT (70 ms) plus depot overhead.
  EXPECT_GE(done, 70 * kMillisecond);
  EXPECT_LE(done, 72 * kMillisecond);
}

TEST_F(FabricTest, UnknownDepotReportsNotFound) {
  std::optional<IbpStatus> status;
  fabric_.allocate_async(client_, "nope", {1, kSecond, AllocType::kHard},
                         [&](IbpStatus s, const CapabilitySet&) { status = s; });
  sim_.run();
  EXPECT_EQ(status, IbpStatus::kNotFound);
}

TEST_F(FabricTest, StoreThenLoadOverNetwork) {
  const auto caps = remote_allocate("wan", 1 << 20);
  Bytes payload(100'000);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 31);
  }
  std::optional<IbpStatus> stored;
  fabric_.store_async(client_, caps.write, 0, payload, {}, [&](IbpStatus s) { stored = s; });
  sim_.run();
  ASSERT_EQ(stored, IbpStatus::kOk);

  std::optional<Bytes> loaded;
  fabric_.load_async(client_, caps.read, 0, payload.size(), {},
                     [&](IbpStatus s, Bytes data) {
                       ASSERT_EQ(s, IbpStatus::kOk);
                       loaded = std::move(data);
                     });
  sim_.run();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, payload);
}

TEST_F(FabricTest, LanLoadIsMuchFasterThanWan) {
  const auto wan_caps = remote_allocate("wan", 1 << 21);
  const auto lan_caps = remote_allocate("lan", 1 << 21);
  const Bytes payload(1 << 20, 0x7e);

  std::optional<IbpStatus> s1, s2;
  fabric_.store_async(client_, wan_caps.write, 0, payload, {}, [&](IbpStatus s) { s1 = s; });
  fabric_.store_async(client_, lan_caps.write, 0, payload, {}, [&](IbpStatus s) { s2 = s; });
  sim_.run();
  ASSERT_EQ(s1, IbpStatus::kOk);
  ASSERT_EQ(s2, IbpStatus::kOk);

  auto timed_load = [&](const Capability& cap) {
    const SimTime start = sim_.now();
    SimTime end = 0;
    sim::TransferOptions opts;
    opts.streams = 4;
    fabric_.load_async(client_, cap, 0, 1 << 20, opts, [&](IbpStatus s, Bytes) {
      ASSERT_EQ(s, IbpStatus::kOk);
      end = sim_.now();
    });
    sim_.run();
    return end - start;
  };
  const SimDuration wan_time = timed_load(wan_caps.read);
  const SimDuration lan_time = timed_load(lan_caps.read);
  // WAN ~ O(1 s): window-capped streams over 70 ms RTT. LAN ~ O(10 ms).
  EXPECT_GT(wan_time, 10 * lan_time);
  EXPECT_GT(wan_time, 200 * kMillisecond);
  EXPECT_LT(lan_time, 50 * kMillisecond);
}

TEST_F(FabricTest, ThirdPartyCopyMovesDataDepotToDepot) {
  const auto src = remote_allocate("wan", 4096);
  Bytes payload(4096);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i & 0xff);
  }
  std::optional<IbpStatus> stored;
  fabric_.store_async(client_, src.write, 0, payload, {}, [&](IbpStatus s) { stored = s; });
  sim_.run();
  ASSERT_EQ(stored, IbpStatus::kOk);

  Fabric::CopyRequest req;
  req.src_read = src.read;
  req.dst_depot = "lan";
  req.length = 4096;
  req.dst_alloc = {4096, 3600 * kSecond, AllocType::kSoft};
  std::optional<CapabilitySet> dst_caps;
  fabric_.copy_async(client_, req, [&](IbpStatus s, const CapabilitySet& caps) {
    ASSERT_EQ(s, IbpStatus::kOk);
    dst_caps = caps;
  });
  sim_.run();
  ASSERT_TRUE(dst_caps.has_value());

  // The bytes really are on the LAN depot now.
  Bytes out;
  EXPECT_EQ(lan_->load(dst_caps->read, 0, 4096, out), IbpStatus::kOk);
  EXPECT_EQ(out, payload);
}

TEST_F(FabricTest, CopyFailsCleanlyWhenSourceExpired) {
  std::optional<CapabilitySet> src;
  fabric_.allocate_async(client_, "wan", {512, kSecond, AllocType::kHard},
                         [&](IbpStatus s, const CapabilitySet& c) {
                           ASSERT_EQ(s, IbpStatus::kOk);
                           src = c;
                         });
  sim_.run();
  ASSERT_TRUE(src.has_value());
  sim_.run_until(5 * kSecond);  // let the lease lapse

  Fabric::CopyRequest req;
  req.src_read = src->read;
  req.dst_depot = "lan";
  req.length = 512;
  req.dst_alloc = {512, 10 * kSecond, AllocType::kHard};
  std::optional<IbpStatus> status;
  fabric_.copy_async(client_, req,
                     [&](IbpStatus s, const CapabilitySet&) { status = s; });
  sim_.run();
  EXPECT_EQ(status, IbpStatus::kExpired);
}

TEST_F(FabricTest, DiskContentionDelaysConcurrentReads) {
  // The paper's section 4.3 observation: during aggressive prestaging "the
  // latency of access to the LAN depot is significantly increased". Our
  // depots serialize data operations through a finite-bandwidth disk, so a
  // read queued behind bulk writes is measurably slower than on an idle
  // depot.
  const auto caps = remote_allocate("lan", 1 << 24);
  Bytes payload(4 << 20, 0x5c);
  std::optional<IbpStatus> stored;
  fabric_.store_async(client_, caps.write, 0, payload, {}, [&](IbpStatus s) { stored = s; });
  sim_.run();
  ASSERT_EQ(stored, IbpStatus::kOk);

  auto timed_read = [&]() {
    const SimTime start = sim_.now();
    SimTime end = 0;
    sim::TransferOptions opts;
    opts.window_bytes = 1 << 24;
    fabric_.load_async(client_, caps.read, 0, 1 << 20, opts, [&](IbpStatus s, Bytes) {
      ASSERT_EQ(s, IbpStatus::kOk);
      end = sim_.now();
    });
    sim_.run();
    return end - start;
  };
  const SimDuration idle_read = timed_read();

  // Pile staging-like writes onto the same depot, then read immediately.
  const auto staging = remote_allocate("lan", 1 << 24);
  for (int i = 0; i < 4; ++i) {
    fabric_.store_async(client_, staging.write, static_cast<std::uint64_t>(i) << 22,
                        Bytes(4 << 20, 0x11), {}, [](IbpStatus) {});
  }
  // Let the write payloads arrive (booking the disk) but not the disk
  // itself drain, then read into the queue.
  sim_.run_until(sim_.now() + 250 * kMillisecond);
  const SimDuration busy_read = timed_read();
  EXPECT_GT(busy_read, 2 * idle_read);
}

TEST_F(FabricTest, DuplicateDepotNameThrows) {
  DepotConfig cfg;
  EXPECT_THROW(fabric_.add_depot(lan_node_, "lan", cfg), std::invalid_argument);
}

}  // namespace
}  // namespace lon::ibp
