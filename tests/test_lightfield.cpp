// Unit tests for the light-field core: spherical lattice geometry, view-set
// partitioning/prefetch policy, serialization/compression, builders and the
// lookup-based novel-view renderer.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "lightfield/builder.hpp"
#include "lightfield/lattice.hpp"
#include "lightfield/procedural.hpp"
#include "lightfield/renderer.hpp"
#include "lightfield/viewset.hpp"
#include "util/rng.hpp"
#include "volume/synthetic.hpp"

namespace lon::lightfield {
namespace {

LatticeConfig small_config(std::size_t resolution = 32) {
  LatticeConfig cfg;
  cfg.angular_step_deg = 15.0;  // 12 x 24 lattice
  cfg.view_set_span = 3;        // 4 x 8 view sets
  cfg.view_resolution = resolution;
  return cfg;
}

// --- lattice geometry -------------------------------------------------------------

TEST(Lattice, PaperConfigurationDimensions) {
  const SphericalLattice lattice(LatticeConfig::paper());
  // "we use sample views at an interval of 2.5 degrees, requiring a 72 x 144
  // camera lattice ... there are 12 x 24 view sets in the whole database."
  EXPECT_EQ(lattice.rows(), 72u);
  EXPECT_EQ(lattice.cols(), 144u);
  EXPECT_EQ(lattice.view_set_rows(), 12u);
  EXPECT_EQ(lattice.view_set_cols(), 24u);
  EXPECT_EQ(lattice.view_set_count(), 288u);
  EXPECT_EQ(lattice.sample_count(), 72u * 144u);
}

TEST(Lattice, RejectsBadConfigs) {
  LatticeConfig cfg = small_config();
  cfg.inner_radius = 1.0;  // does not contain the unit cube
  EXPECT_THROW(SphericalLattice{cfg}, std::invalid_argument);
  cfg = small_config();
  cfg.outer_radius = cfg.inner_radius - 0.1;
  EXPECT_THROW(SphericalLattice{cfg}, std::invalid_argument);
  cfg = small_config();
  cfg.view_set_span = 5;  // does not divide 12/24
  EXPECT_THROW(SphericalLattice{cfg}, std::invalid_argument);
}

TEST(Lattice, CameraPositionsLieOnOuterSphere) {
  const SphericalLattice lattice(small_config());
  for (std::size_t row = 0; row < lattice.rows(); row += 3) {
    for (std::size_t col = 0; col < lattice.cols(); col += 5) {
      EXPECT_NEAR(lattice.camera_position(row, col).norm(),
                  lattice.config().outer_radius, 1e-9);
    }
  }
}

TEST(Lattice, NearestSampleRoundTripsSampleDirections) {
  const SphericalLattice lattice(small_config());
  for (std::size_t row = 0; row < lattice.rows(); ++row) {
    for (std::size_t col = 0; col < lattice.cols(); ++col) {
      const auto [r, c] = lattice.nearest_sample(lattice.sample_direction(row, col));
      EXPECT_EQ(r, row);
      EXPECT_EQ(c, col);
    }
  }
}

TEST(Lattice, PhiWrapsAround) {
  const SphericalLattice lattice(small_config());
  // A direction just below 2*pi in phi is nearest to column 0.
  const Spherical dir{kPi / 2, 2.0 * kPi - 0.001};
  const auto [row, col] = lattice.nearest_sample(dir);
  (void)row;
  EXPECT_EQ(col, 0u);
}

TEST(Lattice, ViewSetPartitioning) {
  const SphericalLattice lattice(small_config());
  EXPECT_EQ(lattice.view_set_of(0u, 0u), (ViewSetId{0, 0}));
  EXPECT_EQ(lattice.view_set_of(2u, 2u), (ViewSetId{0, 0}));
  EXPECT_EQ(lattice.view_set_of(3u, 2u), (ViewSetId{1, 0}));
  EXPECT_EQ(lattice.view_set_of(11u, 23u), (ViewSetId{3, 7}));
}

TEST(Lattice, ViewSetOfDirectionMatchesNearestSample) {
  const SphericalLattice lattice(small_config());
  const Spherical dir{1.1, 2.2};
  const auto [row, col] = lattice.nearest_sample(dir);
  EXPECT_EQ(lattice.view_set_of(dir), lattice.view_set_of(row, col));
}

TEST(Lattice, QuadrantsCoverAllFour) {
  const SphericalLattice lattice(small_config());
  std::set<int> seen;
  // Sweep a fine grid of directions within one view set.
  for (double dt = 0.01; dt < 0.75; dt += 0.1) {
    for (double dp = 0.01; dp < 0.75; dp += 0.1) {
      const Spherical dir{dt, dp};
      const int q = lattice.quadrant_of(dir);
      EXPECT_GE(q, 0);
      EXPECT_LE(q, 3);
      seen.insert(q);
    }
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(Lattice, NeighborsInteriorCountsEight) {
  const SphericalLattice lattice(small_config());
  EXPECT_EQ(lattice.neighbors({1, 3}).size(), 8u);
  // Polar rows lose the out-of-range theta side.
  EXPECT_EQ(lattice.neighbors({0, 3}).size(), 5u);
  EXPECT_EQ(lattice.neighbors({3, 3}).size(), 5u);
}

TEST(Lattice, NeighborsWrapInPhi) {
  const SphericalLattice lattice(small_config());
  const auto n = lattice.neighbors({1, 0});
  bool found_wrap = false;
  for (const auto& id : n) {
    if (id.col == static_cast<int>(lattice.view_set_cols()) - 1) found_wrap = true;
  }
  EXPECT_TRUE(found_wrap);
}

TEST(Lattice, PrefetchTargetsMatchQuadrantCorner) {
  // Paper figure 4: cursor in a quadrant -> prefetch the 3 view sets
  // adjacent to that corner.
  const SphericalLattice lattice(small_config());
  const ViewSetId center{1, 3};
  const auto targets = lattice.prefetch_targets(center, /*quadrant=*/0);  // up-left
  ASSERT_EQ(targets.size(), 3u);
  EXPECT_EQ(targets[0], (ViewSetId{0, 3}));
  EXPECT_EQ(targets[1], (ViewSetId{1, 2}));
  EXPECT_EQ(targets[2], (ViewSetId{0, 2}));

  const auto down_right = lattice.prefetch_targets(center, 3);
  ASSERT_EQ(down_right.size(), 3u);
  EXPECT_EQ(down_right[0], (ViewSetId{2, 3}));
  EXPECT_EQ(down_right[1], (ViewSetId{1, 4}));
  EXPECT_EQ(down_right[2], (ViewSetId{2, 4}));
}

TEST(Lattice, PrefetchTargetsClampAtPoles) {
  const SphericalLattice lattice(small_config());
  const auto targets = lattice.prefetch_targets({0, 3}, /*quadrant=*/0);
  EXPECT_EQ(targets.size(), 1u);  // only the phi neighbour survives
}

TEST(Lattice, QuadrantAgreesWithContainingSetAtPhiSeam) {
  // Regression: a cursor just left of the phi wrap seam rounds into view-set
  // col 0, so its quadrant must say "left half" (towards the last column),
  // not "right half" of the set it is no longer in. The old fmod-based
  // computation got this backwards and prefetched away from the cursor.
  const SphericalLattice lattice(small_config());
  const double step = deg2rad(lattice.config().angular_step_deg);
  const Spherical dir{1.2, 2.0 * kPi - 0.01 * step};
  const ViewSetId vs = lattice.view_set_of(dir);
  ASSERT_EQ(vs.col, 0);
  const int q = lattice.quadrant_of(dir);
  EXPECT_EQ(q & 2, 0) << "cursor left of the seam must be in the left half";
  bool towards_wrap = false;
  for (const auto& t : lattice.prefetch_targets(vs, q)) {
    if (t.col == static_cast<int>(lattice.view_set_cols()) - 1) towards_wrap = true;
  }
  EXPECT_TRUE(towards_wrap);
}

TEST(Lattice, QuadrantAgreesWithContainingSetAtRowBoundary) {
  // Regression: fr = 2.6 rounds to lattice row 3, i.e. view-set row 1, but
  // the raw fmod said "lower half" of row 0 — prefetching towards row 2
  // while the cursor sits at the *top* edge of row 1.
  const SphericalLattice lattice(small_config());
  const double step = deg2rad(lattice.config().angular_step_deg);
  const Spherical dir{(2.6 + 0.5) * step, 1.0};
  const ViewSetId vs = lattice.view_set_of(dir);
  ASSERT_EQ(vs.row, 1);
  const int q = lattice.quadrant_of(dir);
  EXPECT_EQ(q & 1, 0) << "cursor at the top edge of its set is in the upper half";
  bool towards_row0 = false;
  for (const auto& t : lattice.prefetch_targets(vs, q)) {
    if (t.row == 0) towards_row0 = true;
  }
  EXPECT_TRUE(towards_row0);
}

TEST(Lattice, QuadrantPointsTowardNearerNeighborEverywhere) {
  // Property: the quadrant is a *grid* policy (paper figure 4 is drawn in
  // lattice coordinates), so along each axis the quadrant's neighbour must be
  // at least as close to the cursor as the opposite-side neighbour. Sweeps
  // across every set boundary including the wrap seam.
  const auto wrap = [](double a) {
    a = std::fmod(a + kPi, 2.0 * kPi);
    if (a < 0.0) a += 2.0 * kPi;
    return std::abs(a - kPi);
  };
  const SphericalLattice lattice(small_config());
  const int cols = static_cast<int>(lattice.view_set_cols());
  const int rows = static_cast<int>(lattice.view_set_rows());
  for (double theta : {0.7, 1.2, 1.75, 2.3}) {
    for (double phi = 0.001; phi < 2.0 * kPi; phi += 0.037) {
      const Spherical dir{theta, phi};
      const ViewSetId vs = lattice.view_set_of(dir);
      const int q = lattice.quadrant_of(dir);
      const int dc = (q & 2) ? 1 : -1;
      const ViewSetId phi_near{vs.row, ((vs.col + dc) % cols + cols) % cols};
      const ViewSetId phi_far{vs.row, ((vs.col - dc) % cols + cols) % cols};
      EXPECT_LE(wrap(dir.phi - lattice.view_set_center(phi_near).phi),
                wrap(dir.phi - lattice.view_set_center(phi_far).phi) + 1e-9)
          << "theta=" << theta << " phi=" << phi;
      const int dr = (q & 1) ? 1 : -1;
      if (vs.row + dr >= 0 && vs.row + dr < rows && vs.row - dr >= 0 &&
          vs.row - dr < rows) {
        EXPECT_LE(
            std::abs(dir.theta - lattice.view_set_center({vs.row + dr, vs.col}).theta),
            std::abs(dir.theta - lattice.view_set_center({vs.row - dr, vs.col}).theta) +
                1e-9)
            << "theta=" << theta << " phi=" << phi;
      }
    }
  }
}

TEST(Lattice, QuadrantAtPolesStaysTowardEquator) {
  const SphericalLattice lattice(small_config());
  // Above the first sample row the cursor is in the upper half of set row 0;
  // prefetch clamps to the lone phi neighbour rather than pointing off-grid.
  const Spherical near_north{0.01, 1.0};
  const int qn = lattice.quadrant_of(near_north);
  EXPECT_EQ(qn & 1, 0);
  EXPECT_EQ(lattice.prefetch_targets(lattice.view_set_of(near_north), qn).size(), 1u);
  const Spherical near_south{kPi - 0.01, 1.0};
  const int qs = lattice.quadrant_of(near_south);
  EXPECT_EQ(qs & 1, 1);
  EXPECT_EQ(lattice.prefetch_targets(lattice.view_set_of(near_south), qs).size(), 1u);
}

TEST(Lattice, ViewSetDistanceIsMetricLike) {
  const SphericalLattice lattice(small_config());
  EXPECT_NEAR(lattice.view_set_distance({1, 3}, {1, 3}), 0.0, 1e-12);
  const double near_d = lattice.view_set_distance({1, 3}, {1, 4});
  const double far_d = lattice.view_set_distance({1, 3}, {2, 7});
  EXPECT_GT(far_d, near_d);
  EXPECT_NEAR(lattice.view_set_distance({1, 3}, {2, 7}),
              lattice.view_set_distance({2, 7}, {1, 3}), 1e-12);
}

TEST(Lattice, AllViewSetsEnumerates) {
  const SphericalLattice lattice(small_config());
  const auto all = lattice.all_view_sets();
  EXPECT_EQ(all.size(), lattice.view_set_count());
  for (const auto& id : all) EXPECT_TRUE(lattice.valid(id));
}

TEST(ViewSetIdTest, KeyFormat) {
  EXPECT_EQ((ViewSetId{3, 17}).key(), "vs3_17");
  EXPECT_EQ((ViewSetId{0, 0}).key(), "vs0_0");
}

// --- view set serialization ---------------------------------------------------------

TEST(ViewSetData, SizesMatchPaperArithmetic) {
  // 6x6 views at 200x200x3 = 4.32 MB per view set; 288 sets ~ 1.24 GB raw,
  // squarely in the paper's "1.5 GB at 200x200" regime.
  const ViewSet vs({0, 0}, 6, 200);
  EXPECT_EQ(vs.pixel_bytes(), 36ull * 200 * 200 * 3);
  const SphericalLattice lattice(LatticeConfig::paper(200));
  const double total_gb = static_cast<double>(vs.pixel_bytes()) *
                          static_cast<double>(lattice.view_set_count()) / 1e9;
  EXPECT_GT(total_gb, 1.0);
  EXPECT_LT(total_gb, 1.6);
}

TEST(ViewSetData, SerializeRoundTrip) {
  ViewSet vs({2, 5}, 2, 16);
  Rng rng(5);
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 2; ++c) {
      for (auto& b : vs.view(r, c).bytes()) {
        b = static_cast<std::uint8_t>(rng.below(256));
      }
    }
  }
  const ViewSet back = ViewSet::deserialize(vs.serialize());
  EXPECT_EQ(back, vs);
}

TEST(ViewSetData, CompressRoundTrip) {
  ProceduralSource source(small_config(24));
  const ViewSet vs = source.build({1, 2});
  const Bytes packed = vs.compress();
  EXPECT_LT(packed.size(), vs.pixel_bytes());
  const ViewSet back = ViewSet::decompress(packed);
  EXPECT_EQ(back, vs);
}

TEST(ViewSetData, InterViewModeRoundTrips) {
  ProceduralSource source(small_config(32));
  const ViewSet vs = source.build({1, 2});
  const Bytes packed = vs.compress(SerializeMode::kInterView);
  EXPECT_EQ(ViewSet::decompress(packed), vs);
}

TEST(ViewSetData, InterViewModeExploitsViewCoherence) {
  // The limiting case of view coherence: all views in the block identical.
  // Views must be bigger than the LZ77 window (32 KiB), else intra coding
  // already reaches the previous view through ordinary string matching; at
  // 128x128x3 = 48 KiB/view the coherence is only reachable by difference
  // coding, which must then win decisively.
  ProceduralSource source(small_config(128));
  const render::ImageRGB8 shared = source.render_sample(4, 7);
  ViewSet vs({1, 2}, 3, 128);
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) vs.view(r, c) = shared;
  }
  const Bytes intra = vs.compress(SerializeMode::kIntra);
  const Bytes inter = vs.compress(SerializeMode::kInterView);
  EXPECT_LT(inter.size(), intra.size() / 2);
}

TEST(ViewSetData, InterViewRoundTripsOnRandomContent) {
  // Incoherent content must still round-trip (just without the size win).
  ViewSet vs({0, 1}, 2, 16);
  Rng rng(77);
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 2; ++c) {
      for (auto& b : vs.view(r, c).bytes()) {
        b = static_cast<std::uint8_t>(rng.below(256));
      }
    }
  }
  EXPECT_EQ(ViewSet::decompress(vs.compress(SerializeMode::kInterView)), vs);
}

TEST(ViewSetData, ChunkedCompressionRoundTripsAndAutoDetects) {
  ProceduralSource source(small_config(64));
  const ViewSet vs = source.build({1, 2});
  const Bytes chunked = vs.compress_chunked(16 * 1024);
  const Bytes plain = vs.compress();
  EXPECT_EQ(ViewSet::decompress(chunked), vs);  // auto-detected container
  EXPECT_EQ(ViewSet::decompress(plain), vs);
  ThreadPool pool(2);
  EXPECT_EQ(ViewSet::decompress(chunked, &pool), vs);
  // Chunking costs a little ratio but not much.
  EXPECT_LT(static_cast<double>(chunked.size()),
            1.25 * static_cast<double>(plain.size()));
}

TEST(ViewSetData, AdaptiveModeRoundTrips) {
  ProceduralSource coherent(small_config(32));
  const ViewSet vs = coherent.build({1, 2});
  EXPECT_EQ(ViewSet::deserialize(vs.serialize(SerializeMode::kAdaptive)), vs);

  // Incoherent content: every view should fall back to intra, and still
  // round-trip exactly.
  ViewSet noisy({0, 1}, 2, 16);
  Rng rng(99);
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 2; ++c) {
      for (auto& b : noisy.view(r, c).bytes()) {
        b = static_cast<std::uint8_t>(rng.below(256));
      }
    }
  }
  EXPECT_EQ(ViewSet::deserialize(noisy.serialize(SerializeMode::kAdaptive)), noisy);
}

TEST(ViewSetData, Lfz2RoundTripsAndAutoDetects) {
  ProceduralSource source(small_config(64));
  const ViewSet vs = source.build({1, 2});
  const Bytes lfz2 = vs.compress_lfz2(16 * 1024);
  EXPECT_EQ(ViewSet::decompress(lfz2), vs);  // auto-detected container
  ThreadPool pool(2);
  EXPECT_EQ(ViewSet::decompress(lfz2, &pool), vs);
}

TEST(ViewSetData, Lfz2BeatsLfzcAtPaperViewSpacing) {
  // At the paper's 2.5-degree view spacing the lattice-neighbor prediction
  // must pay for its flag bytes many times over.
  LatticeConfig cfg;
  cfg.angular_step_deg = 2.5;
  cfg.view_set_span = 3;
  cfg.view_resolution = 96;
  ProceduralSource source(cfg);
  const ViewSet vs = source.build({3, 7});
  const Bytes lfzc = vs.compress_chunked(64 * 1024);
  const Bytes lfz2 = vs.compress_lfz2(64 * 1024);
  EXPECT_LT(static_cast<double>(lfz2.size()), 0.95 * static_cast<double>(lfzc.size()));
  EXPECT_EQ(ViewSet::decompress(lfz2), vs);
}

TEST(ViewSetData, AdaptiveDeserializeRejectsBadFlags) {
  ViewSet vs({0, 0}, 2, 8);
  Bytes data = vs.serialize(SerializeMode::kAdaptive);
  const std::size_t first_flag = 21;  // 5 u32 header fields + mode byte

  Bytes bad_flag = data;
  bad_flag[first_flag] = 7;  // neither intra nor inter
  EXPECT_THROW(ViewSet::deserialize(bad_flag), DecodeError);

  Bytes inter_without_neighbor = data;
  inter_without_neighbor[first_flag] = 1;  // view (0,0) has no neighbor
  EXPECT_THROW(ViewSet::deserialize(inter_without_neighbor), DecodeError);

  Bytes bad_mode = vs.serialize();
  bad_mode[20] = 9;  // unknown serialize mode
  EXPECT_THROW(ViewSet::deserialize(bad_mode), DecodeError);
}

TEST(ViewSetData, DeserializeRejectsGarbage) {
  EXPECT_THROW(ViewSet::deserialize(Bytes{1, 2, 3}), DecodeError);
  ViewSet vs({0, 0}, 1, 4);
  Bytes data = vs.serialize();
  data.pop_back();
  EXPECT_THROW(ViewSet::deserialize(data), DecodeError);
}

TEST(ViewSetData, ViewIndexBoundsChecked) {
  const ViewSet vs({0, 0}, 2, 4);
  EXPECT_THROW((void)vs.view(2, 0), std::out_of_range);
  EXPECT_THROW((void)vs.view(0, -1), std::out_of_range);
}

// --- builders ------------------------------------------------------------------------

TEST(Builders, ProceduralIsDeterministic) {
  ProceduralSource a(small_config(16)), b(small_config(16));
  EXPECT_EQ(a.build({1, 1}), b.build({1, 1}));
}

TEST(Builders, ProceduralNeighborViewsAreCoherent) {
  // Adjacent sample views must look similar (view coherence is the basis of
  // the view-set design), while distant views must differ.
  ProceduralSource source(small_config(32));
  const auto base = source.render_sample(5, 5);
  const auto near = source.render_sample(5, 6);
  const auto far = source.render_sample(10, 17);
  EXPECT_LT(base.mean_abs_diff(near), base.mean_abs_diff(far));
  EXPECT_GT(base.mean_abs_diff(far), 2.0);
}

TEST(Builders, ProceduralCompressionRatioInPaperRange) {
  ProceduralSource source(small_config(128));
  const ViewSet vs = source.build({1, 2});
  const double ratio = static_cast<double>(vs.pixel_bytes()) /
                       static_cast<double>(vs.compress().size());
  // "we achieved 5 to 7 times compression rates" — allow generous slack.
  EXPECT_GT(ratio, 3.5);
  EXPECT_LT(ratio, 14.0);
}

TEST(Builders, RaycastBuilderProducesNonEmptyViews) {
  const auto vol = volume::make_neghip_like(16, 3);
  LatticeConfig cfg = small_config(24);
  render::RayCastOptions opts;
  opts.step = 0.05;
  RaycastBuilder builder(vol, volume::TransferFunction::neghip_preset(), cfg, opts, 2);
  const ViewSet vs = builder.build({1, 2});
  // Views contain actual imagery.
  std::uint64_t total = 0;
  for (const auto byte : vs.view(1, 1).bytes()) total += byte;
  EXPECT_GT(total, 0u);
  EXPECT_THROW((void)builder.build({99, 0}), std::out_of_range);
}

TEST(Builders, RaycastViewsShowParallax) {
  const auto vol = volume::make_neghip_like(16, 3);
  LatticeConfig cfg = small_config(24);
  render::RayCastOptions opts;
  opts.step = 0.05;
  RaycastBuilder builder(vol, volume::TransferFunction::neghip_preset(), cfg, opts, 2);
  const auto a = builder.render_sample(4, 0);
  const auto b = builder.render_sample(4, 12);  // opposite side
  EXPECT_GT(a.mean_abs_diff(b), 0.5);
}

// --- renderer ---------------------------------------------------------------------------

class RendererTest : public ::testing::Test {
 protected:
  RendererTest() : source_(small_config(32)), renderer_(small_config(32)) {}

  ProceduralSource source_;
  Renderer renderer_;
};

TEST_F(RendererTest, CannotRenderWithoutViewSets) {
  const Spherical dir{1.0, 1.0};
  EXPECT_FALSE(renderer_.can_render(dir));
  EXPECT_THROW((void)renderer_.render(dir, 32), std::runtime_error);
}

TEST_F(RendererTest, RendersAtSampleDirectionReproducesSampleView) {
  const auto& lattice = source_.lattice();
  renderer_.add_view_set(source_.build({1, 2}));
  // Pick a sample in the interior of view set (1,2): lattice row 4, col 7.
  const Spherical dir = lattice.sample_direction(4, 7);
  ASSERT_TRUE(renderer_.can_render(dir));
  const auto synthesized = renderer_.render(dir, 32);
  const auto reference = source_.render_sample(4, 7);
  EXPECT_LT(synthesized.mean_abs_diff(reference), 1.0);
}

TEST_F(RendererTest, InterpolatesBetweenSamples) {
  const auto& lattice = source_.lattice();
  renderer_.add_view_set(source_.build({1, 2}));
  const Spherical a = lattice.sample_direction(4, 7);
  const Spherical b = lattice.sample_direction(4, 8);
  const Spherical mid{a.theta, (a.phi + b.phi) / 2.0};
  ASSERT_TRUE(renderer_.can_render(mid));
  const auto img_mid = renderer_.render(mid, 32);
  const auto img_a = renderer_.render(a, 32);
  const auto img_b = renderer_.render(b, 32);
  // The interpolated view sits between the two samples.
  EXPECT_LT(img_mid.mean_abs_diff(img_a), img_b.mean_abs_diff(img_a));
  EXPECT_LT(img_mid.mean_abs_diff(img_b), img_a.mean_abs_diff(img_b));
}

TEST_F(RendererTest, EdgeOfViewSetNeedsNeighbor) {
  const auto& lattice = source_.lattice();
  renderer_.add_view_set(source_.build({1, 2}));
  // Between the last column of set (1,2) and the first of (1,3).
  const Spherical left = lattice.sample_direction(4, 8);
  const Spherical right = lattice.sample_direction(4, 9);
  const Spherical between{left.theta, (left.phi + right.phi) / 2.0};
  EXPECT_FALSE(renderer_.can_render(between));
  renderer_.add_view_set(source_.build({1, 3}));
  EXPECT_TRUE(renderer_.can_render(between));
  (void)renderer_.render(between, 32);
}

TEST_F(RendererTest, UpscalingAndZoomWork) {
  renderer_.add_view_set(source_.build({1, 2}));
  const Spherical dir = source_.lattice().sample_direction(4, 7);
  const auto normal = renderer_.render(dir, 64);
  const auto zoomed = renderer_.render(dir, 64, 2.0);
  EXPECT_EQ(normal.width(), 64u);
  EXPECT_GT(normal.mean_abs_diff(zoomed), 0.5);  // zoom changes the image
}

TEST_F(RendererTest, RemoveViewSetEvicts) {
  renderer_.add_view_set(source_.build({1, 2}));
  EXPECT_EQ(renderer_.loaded_count(), 1u);
  EXPECT_TRUE(renderer_.remove_view_set({1, 2}));
  EXPECT_FALSE(renderer_.remove_view_set({1, 2}));
  EXPECT_EQ(renderer_.loaded_count(), 0u);
}

}  // namespace
}  // namespace lon::lightfield
