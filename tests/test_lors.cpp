// Unit tests for LoRS: striped/replicated upload, multi-stream download with
// replica preference and failover, and augment (third-party staging).
#include <gtest/gtest.h>

#include <optional>

#include "lors/lors.hpp"

namespace lon::lors {
namespace {

class LorsTest : public ::testing::Test {
 protected:
  LorsTest() : net_(sim_), fabric_(sim_, net_), lors_(sim_, net_, fabric_) {
    client_ = net_.add_node("client");
    // Three "California" depots behind a shared WAN trunk, one LAN depot.
    const sim::NodeId wan_router = net_.add_node("wan-router");
    net_.add_link(client_, wan_router, {100e6, 35 * kMillisecond, 0.0});
    for (int i = 0; i < 3; ++i) {
      const std::string name = "ca-" + std::to_string(i);
      const sim::NodeId node = net_.add_node(name + "-node");
      net_.add_link(wan_router, node, {1e9, kMillisecond, 0.0});
      add_depot(node, name);
      wan_depots_.push_back(name);
    }
    lan_node_ = net_.add_node("lan-depot-node");
    net_.add_link(client_, lan_node_, {1e9, 50 * kMicrosecond, 0.0});
    add_depot(lan_node_, "lan");
  }

  void add_depot(sim::NodeId node, const std::string& name) {
    ibp::DepotConfig cfg;
    cfg.capacity_bytes = 1 << 30;
    cfg.max_alloc_bytes = 1 << 28;
    cfg.max_lease = 24 * 3600 * kSecond;
    fabric_.add_depot(node, name, cfg);
  }

  static Bytes make_payload(std::size_t size) {
    Bytes data(size);
    for (std::size_t i = 0; i < size; ++i) {
      data[i] = static_cast<std::uint8_t>((i * 2654435761u) >> 24);
    }
    return data;
  }

  UploadResult upload(const Bytes& data, UploadOptions options) {
    std::optional<UploadResult> result;
    lors_.upload_async(client_, data, options, [&](const UploadResult& r) { result = r; });
    sim_.run();
    EXPECT_TRUE(result.has_value());
    return *result;
  }

  DownloadResult download(const exnode::ExNode& node, DownloadOptions options = {}) {
    std::optional<DownloadResult> result;
    lors_.download_async(client_, node, options,
                         [&](const DownloadResult& r) { result = r; });
    sim_.run();
    EXPECT_TRUE(result.has_value());
    return *result;
  }

  sim::Simulator sim_;
  sim::Network net_;
  ibp::Fabric fabric_;
  Lors lors_;
  sim::NodeId client_ = 0, lan_node_ = 0;
  std::vector<std::string> wan_depots_;
};

TEST_F(LorsTest, UploadStripesAcrossDepots) {
  const Bytes data = make_payload(1 << 20);
  UploadOptions opts;
  opts.depots = wan_depots_;
  opts.block_bytes = 256 * 1024;
  const auto result = upload(data, opts);
  ASSERT_EQ(result.status, LorsStatus::kOk);
  EXPECT_TRUE(result.exnode.complete());
  EXPECT_EQ(result.exnode.length(), data.size());
  EXPECT_EQ(result.exnode.extents().size(), 4u);
  // Blocks rotate through the three depots.
  EXPECT_EQ(result.exnode.depots().size(), 3u);
}

TEST_F(LorsTest, UploadWithReplication) {
  const Bytes data = make_payload(300'000);
  UploadOptions opts;
  opts.depots = wan_depots_;
  opts.block_bytes = 100'000;
  opts.replicas = 2;
  const auto result = upload(data, opts);
  ASSERT_EQ(result.status, LorsStatus::kOk);
  for (const auto& extent : result.exnode.extents()) {
    ASSERT_EQ(extent.replicas.size(), 2u);
    // Replicas of one block live on distinct depots.
    EXPECT_NE(extent.replicas[0].read.depot, extent.replicas[1].read.depot);
  }
}

TEST_F(LorsTest, DownloadReassemblesExactBytes) {
  const Bytes data = make_payload(777'777);  // deliberately not block-aligned
  UploadOptions opts;
  opts.depots = wan_depots_;
  opts.block_bytes = 128 * 1024;
  const auto uploaded = upload(data, opts);
  ASSERT_EQ(uploaded.status, LorsStatus::kOk);

  const auto downloaded = download(uploaded.exnode);
  ASSERT_EQ(downloaded.status, LorsStatus::kOk);
  EXPECT_EQ(*downloaded.data, data);
  EXPECT_EQ(downloaded.blocks_total, uploaded.exnode.extents().size());
  EXPECT_EQ(downloaded.replica_failovers, 0u);
}

TEST_F(LorsTest, DownloadPrefersCloserReplica) {
  const Bytes data = make_payload(200'000);
  UploadOptions opts;
  opts.depots = wan_depots_;
  opts.block_bytes = 100'000;
  auto uploaded = upload(data, opts);
  ASSERT_EQ(uploaded.status, LorsStatus::kOk);

  // Stage a LAN replica and mark it preferred, then download: virtually all
  // traffic should come from the LAN depot.
  AugmentOptions aug;
  aug.target_depot = "lan";
  aug.preferred = true;
  std::optional<AugmentResult> augmented;
  lors_.augment_async(client_, uploaded.exnode, aug,
                      [&](const AugmentResult& r) { augmented = r; });
  sim_.run();
  ASSERT_TRUE(augmented.has_value());
  ASSERT_EQ(augmented->status, LorsStatus::kOk);
  EXPECT_EQ(augmented->extents_copied, 2u);

  const std::uint64_t lan_loaded_before = fabric_.find_depot("lan")->stats().bytes_loaded;
  const auto result = download(augmented->exnode);
  ASSERT_EQ(result.status, LorsStatus::kOk);
  EXPECT_EQ(*result.data, data);
  EXPECT_EQ(fabric_.find_depot("lan")->stats().bytes_loaded - lan_loaded_before,
            data.size());
}

TEST_F(LorsTest, DownloadFailsOverToSurvivingReplica) {
  const Bytes data = make_payload(150'000);
  UploadOptions opts;
  opts.depots = wan_depots_;
  opts.block_bytes = 75'000;
  opts.replicas = 2;
  auto uploaded = upload(data, opts);
  ASSERT_EQ(uploaded.status, LorsStatus::kOk);

  // Nuke the first replica of the first extent on its depot.
  const auto& victim_cap = uploaded.exnode.extents()[0].replicas[0].read;
  ibp::Depot* victim_depot = fabric_.find_depot(victim_cap.depot);
  ASSERT_NE(victim_depot, nullptr);
  // Find the manage capability indirectly: release is keyed, so instead let
  // the lease lapse by sweeping far in the future... simpler: drop the depot
  // from the exNode? No — we want a *failed fetch*, so corrupt the key.
  auto corrupted = uploaded.exnode;
  // Make the preferred replica unusable (wrong key) on every extent.
  exnode::ExNode broken(corrupted.length());
  for (const auto& extent : corrupted.extents()) {
    exnode::Extent e;
    e.offset = extent.offset;
    e.length = extent.length;
    e.replicas = extent.replicas;
    e.replicas[0].read.key ^= 0xff;
    broken.add_extent(std::move(e));
  }

  const auto result = download(broken);
  ASSERT_EQ(result.status, LorsStatus::kOk);
  EXPECT_EQ(*result.data, data);
  EXPECT_GT(result.replica_failovers, 0u);
}

TEST_F(LorsTest, DownloadReportsPartialWhenAllReplicasDead) {
  const Bytes data = make_payload(50'000);
  UploadOptions opts;
  opts.depots = {"ca-0"};
  opts.block_bytes = 50'000;
  auto uploaded = upload(data, opts);
  ASSERT_EQ(uploaded.status, LorsStatus::kOk);

  auto broken = uploaded.exnode;
  exnode::ExNode dead(broken.length());
  for (const auto& extent : broken.extents()) {
    exnode::Extent e;
    e.offset = extent.offset;
    e.length = extent.length;
    e.replicas = extent.replicas;
    for (auto& r : e.replicas) r.read.key ^= 0xff;
    dead.add_extent(std::move(e));
  }
  const auto result = download(dead);
  EXPECT_EQ(result.status, LorsStatus::kPartial);
  EXPECT_EQ(result.blocks_failed, 1u);
}

TEST_F(LorsTest, MultiStreamDownloadIsFasterOverWan) {
  const Bytes data = make_payload(2 << 20);
  UploadOptions up;
  up.depots = wan_depots_;
  up.block_bytes = 256 * 1024;
  up.net.streams = 8;
  const auto uploaded = upload(data, up);
  ASSERT_EQ(uploaded.status, LorsStatus::kOk);

  auto timed_download = [&](int streams, int concurrent) {
    DownloadOptions opts;
    opts.net.streams = streams;
    opts.max_concurrent = concurrent;
    const SimTime start = sim_.now();
    const auto result = download(uploaded.exnode, opts);
    EXPECT_EQ(result.status, LorsStatus::kOk);
    EXPECT_EQ(*result.data, data);
    return sim_.now() - start;
  };
  const SimDuration slow = timed_download(1, 1);
  const SimDuration fast = timed_download(4, 8);
  // Parallel streams and concurrent blocks beat the single-socket window cap.
  EXPECT_GT(slow, 3 * fast);
}

TEST_F(LorsTest, UploadRejectsBadOptions) {
  UploadOptions no_depots;
  std::optional<UploadResult> result;
  lors_.upload_async(client_, make_payload(10), no_depots,
                     [&](const UploadResult& r) { result = r; });
  sim_.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->status, LorsStatus::kNoDepots);

  UploadOptions too_many_replicas;
  too_many_replicas.depots = {"ca-0"};
  too_many_replicas.replicas = 2;
  result.reset();
  lors_.upload_async(client_, make_payload(10), too_many_replicas,
                     [&](const UploadResult& r) { result = r; });
  sim_.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->status, LorsStatus::kNoDepots);
}

TEST_F(LorsTest, AugmentToUnknownDepotFails) {
  AugmentOptions aug;
  aug.target_depot = "ghost";
  std::optional<AugmentResult> result;
  lors_.augment_async(client_, exnode::ExNode(10), aug,
                      [&](const AugmentResult& r) { result = r; });
  sim_.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->status, LorsStatus::kNoDepots);
}

TEST_F(LorsTest, AugmentUsesSoftAllocationsByDefault) {
  const Bytes data = make_payload(100'000);
  UploadOptions opts;
  opts.depots = wan_depots_;
  opts.block_bytes = 100'000;
  auto uploaded = upload(data, opts);

  AugmentOptions aug;
  aug.target_depot = "lan";
  std::optional<AugmentResult> augmented;
  lors_.augment_async(client_, uploaded.exnode, aug,
                      [&](const AugmentResult& r) { augmented = r; });
  sim_.run();
  ASSERT_TRUE(augmented.has_value());
  ASSERT_EQ(augmented->status, LorsStatus::kOk);

  // Verify the staged allocation is soft by probing via the depot.
  // (The augment result only exposes read caps; inspect depot stats instead.)
  const ibp::Depot* lan = fabric_.find_depot("lan");
  EXPECT_EQ(lan->allocation_count(), 1u);
}

}  // namespace
}  // namespace lon::lors
