// Unit tests for the discrete-event simulator and the flow-level network
// model: event ordering, transfer timing, weighted max-min fair sharing, the
// TCP window cap, multi-stream downloads, cancellation and jitter.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "simnet/network.hpp"
#include "simnet/simulator.hpp"

namespace lon::sim {
namespace {

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.at(30, [&] { order.push_back(3); });
  sim.at(10, [&] { order.push_back(1); });
  sim.at(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
}

TEST(Simulator, TiesBreakInSchedulingOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) sim.at(100, [&order, i] { order.push_back(i); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 10) sim.after(5, chain);
  };
  sim.after(5, chain);
  sim.run();
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(sim.now(), 50);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.at(10, [&] { ++fired; });
  sim.at(20, [&] { ++fired; });
  sim.at(30, [&] { ++fired; });
  sim.run_until(20);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), 20);
  EXPECT_EQ(sim.pending(), 1u);
}

TEST(Simulator, RunUntilAdvancesIdleClock) {
  Simulator sim;
  sim.run_until(1'000'000);
  EXPECT_EQ(sim.now(), 1'000'000);
}

TEST(Simulator, SchedulingIntoThePastThrows) {
  Simulator sim;
  sim.at(100, [] {});
  sim.run();
  EXPECT_THROW(sim.at(50, [] {}), std::invalid_argument);
  EXPECT_THROW(sim.after(-1, [] {}), std::invalid_argument);
}

// Regression: cancelling an id that already executed must be a no-op. The
// seed inserted such ids into its tombstone set forever, so idle() went
// permanently false and pending() (queue size minus tombstones) underflowed.
TEST(Simulator, CancelAfterExecutionIsARefusedNoOp) {
  Simulator sim;
  const TimerId ran = sim.at(10, [] {});
  sim.run();
  EXPECT_TRUE(sim.idle());
  EXPECT_FALSE(sim.cancel(ran));           // already executed
  EXPECT_FALSE(sim.cancel(ran));           // still refused, no state change
  EXPECT_FALSE(sim.cancel(TimerId{999}));  // never issued
  EXPECT_TRUE(sim.idle());
  EXPECT_EQ(sim.pending(), 0u);  // the seed underflowed to SIZE_MAX here
  const TimerId pending = sim.at(100, [] {});
  EXPECT_EQ(sim.pending(), 1u);
  EXPECT_TRUE(sim.cancel(pending));
  EXPECT_FALSE(sim.cancel(pending));  // double-cancel refused
  EXPECT_TRUE(sim.idle());
  sim.run();
  EXPECT_EQ(sim.executed(), 1u);
  EXPECT_EQ(sim.cancelled(), 1u);
}

// cancel() must erase the event in place: the closure's captures are
// released immediately, not when the queue eventually drains past a
// tombstone.
TEST(Simulator, CancelReleasesTheClosureImmediately) {
  Simulator sim;
  auto payload = std::make_shared<int>(42);
  const TimerId id = sim.after(kSecond, [payload] { (void)*payload; });
  EXPECT_EQ(payload.use_count(), 2);
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_EQ(payload.use_count(), 1);  // a tombstoned copy would still hold it
  EXPECT_TRUE(sim.idle());
}

// A cancelled event must not run even when the queue holds same-instant
// neighbours on both sides of it.
TEST(Simulator, CancelledEventAmongTiesDoesNotRun) {
  Simulator sim;
  std::vector<int> order;
  sim.at(10, [&] { order.push_back(0); });
  const TimerId doomed = sim.at(10, [&] { order.push_back(1); });
  sim.at(10, [&] { order.push_back(2); });
  EXPECT_TRUE(sim.cancel(doomed));
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 2}));
}

// Deterministic 64-bit LCG for the property workloads (std::minstd_rand
// would do, but this keeps the sequence pinned in the test itself).
std::uint64_t lcg_next(std::uint64_t& s) {
  s = s * 6364136223846793005ull + 1442695040888963407ull;
  return s >> 11;
}

/// Runs a randomized at/after/cancel workload on one simulator and returns
/// the executed (time, marker) sequence.
std::vector<std::pair<SimTime, int>> run_workload(Simulator& sim, std::uint64_t seed) {
  std::vector<std::pair<SimTime, int>> trace;
  std::vector<TimerId> issued;
  std::uint64_t s = seed;
  int marker = 0;
  // Interleave bursts of scheduling with partial draining, far-future
  // outliers (forces calendar resizes and year wraps), same-instant ties,
  // and cancels of pending, executed and bogus ids.
  for (int round = 0; round < 40; ++round) {
    const int burst = 1 + static_cast<int>(lcg_next(s) % 50);
    for (int i = 0; i < burst; ++i) {
      SimDuration delay;
      switch (lcg_next(s) % 4) {
        case 0:
          delay = static_cast<SimDuration>(lcg_next(s) % 100);  // dense, with ties
          break;
        case 1:
          delay = static_cast<SimDuration>(lcg_next(s) % (10 * kMillisecond));
          break;
        case 2:
          delay = static_cast<SimDuration>(lcg_next(s) % kSecond);
          break;
        default:
          delay = static_cast<SimDuration>(lcg_next(s) % (3600 * kSecond));  // outlier
          break;
      }
      const int m = marker++;
      issued.push_back(sim.after(delay, [&trace, &sim, m] {
        trace.emplace_back(sim.now(), m);
      }));
    }
    const int cancels = static_cast<int>(lcg_next(s) % 8);
    for (int i = 0; i < cancels && !issued.empty(); ++i) {
      sim.cancel(issued[lcg_next(s) % issued.size()]);  // pending, done or stale
    }
    if (round % 3 == 0) {
      sim.run_until(sim.now() + static_cast<SimDuration>(lcg_next(s) % kSecond));
    } else {
      for (int i = 0; i < 20; ++i) sim.step();
    }
  }
  sim.run();
  return trace;
}

// Property: the calendar queue and the reference heap execute the exact
// same (time, sequence) order on randomized workloads, so virtual-time
// results cannot depend on the scheduler kind.
TEST(Simulator, CalendarAndHeapExecuteIdenticalOrders) {
  for (const std::uint64_t seed : {1ull, 7ull, 2003ull, 0xdeadbeefull}) {
    Simulator cal(SchedulerKind::kCalendar);
    Simulator heap(SchedulerKind::kHeap);
    const auto cal_trace = run_workload(cal, seed);
    const auto heap_trace = run_workload(heap, seed);
    ASSERT_EQ(cal_trace, heap_trace) << "seed " << seed;
    EXPECT_EQ(cal.executed(), heap.executed());
    EXPECT_EQ(cal.cancelled(), heap.cancelled());
    EXPECT_TRUE(cal.idle());
    EXPECT_TRUE(heap.idle());
  }
}

// The cross-check scheduler verifies every pop against its heap mirror and
// throws on divergence — whole workloads run clean under it.
TEST(Simulator, CrossCheckModeRunsWorkloadsClean) {
  Simulator sim(SchedulerKind::kCrossCheck);
  EXPECT_NO_THROW(run_workload(sim, 42));
  EXPECT_TRUE(sim.idle());
  EXPECT_GT(sim.executed(), 0u);
}

// -----------------------------------------------------------------------------

class NetworkTest : public ::testing::Test {
 protected:
  // Two nodes joined by a 100 Mb/s, 10 ms link (a small WAN hop).
  void make_pair_topology(double bw_bps = 100e6, SimDuration latency = 10 * kMillisecond) {
    a_ = net_.add_node("a");
    b_ = net_.add_node("b");
    net_.add_link(a_, b_, {bw_bps, latency, 0.0});
  }

  /// Runs a transfer to completion and returns its result.
  TransferResult transfer(NodeId src, NodeId dst, std::uint64_t bytes,
                          TransferOptions opts = {}) {
    std::optional<TransferResult> out;
    net_.start_transfer(src, dst, bytes, opts, [&](const TransferResult& r) { out = r; });
    sim_.run();
    EXPECT_TRUE(out.has_value());
    return *out;
  }

  Simulator sim_;
  Network net_{sim_};
  NodeId a_ = 0, b_ = 0;
};

TEST_F(NetworkTest, PathLatencyAndRtt) {
  make_pair_topology();
  EXPECT_EQ(net_.path_latency(a_, b_), 10 * kMillisecond);
  EXPECT_EQ(net_.rtt(a_, b_), 20 * kMillisecond);
  EXPECT_EQ(net_.path_latency(a_, a_), 0);
}

TEST_F(NetworkTest, MultiHopRouteUsesLowestLatency) {
  const NodeId a = net_.add_node("a");
  const NodeId b = net_.add_node("b");
  const NodeId c = net_.add_node("c");
  // Direct a-c is slow; a-b-c is faster in total latency.
  net_.add_link(a, c, {1e9, 50 * kMillisecond, 0.0});
  net_.add_link(a, b, {1e9, 10 * kMillisecond, 0.0});
  net_.add_link(b, c, {1e9, 10 * kMillisecond, 0.0});
  EXPECT_EQ(net_.path_latency(a, c), 20 * kMillisecond);
}

TEST_F(NetworkTest, UnreachableNodesThrow) {
  const NodeId a = net_.add_node("a");
  const NodeId b = net_.add_node("b");
  EXPECT_FALSE(net_.reachable(a, b));
  EXPECT_THROW((void)net_.path_latency(a, b), std::runtime_error);
}

TEST_F(NetworkTest, SingleFlowTransferTime) {
  make_pair_topology(/*bw_bps=*/80e6, /*latency=*/10 * kMillisecond);
  // 10 MB at 10 MB/s link; window must not cap: make it huge.
  TransferOptions opts;
  opts.window_bytes = 1 << 30;
  opts.handshake = true;
  const auto r = transfer(a_, b_, 10'000'000, opts);
  // handshake RTT (20ms) + 1.0s transmission + one-way latency (10ms).
  EXPECT_NEAR(to_seconds(r.elapsed()), 0.02 + 1.0 + 0.01, 1e-3);
}

TEST_F(NetworkTest, NoHandshakeSkipsSetupRtt) {
  make_pair_topology(80e6, 10 * kMillisecond);
  TransferOptions opts;
  opts.window_bytes = 1 << 30;
  opts.handshake = false;
  const auto r = transfer(a_, b_, 10'000'000, opts);
  EXPECT_NEAR(to_seconds(r.elapsed()), 1.0 + 0.01, 1e-3);
}

TEST_F(NetworkTest, WindowCapLimitsLongFatPipe) {
  // 1 Gb/s but 50 ms one-way: a single 64 KiB-window stream is capped at
  // window/RTT = 64 KiB / 0.1 s = 655,360 B/s, far below the link rate.
  make_pair_topology(1e9, 50 * kMillisecond);
  TransferOptions opts;
  opts.window_bytes = 64 * 1024;
  opts.streams = 1;
  opts.handshake = false;
  const auto r = transfer(a_, b_, 655'360, opts);
  EXPECT_NEAR(to_seconds(r.elapsed()), 1.0 + 0.05, 0.01);
}

TEST_F(NetworkTest, MultipleStreamsRaiseTheCap) {
  make_pair_topology(1e9, 50 * kMillisecond);
  TransferOptions opts;
  opts.window_bytes = 64 * 1024;
  opts.streams = 8;  // the LoRS multi-threaded download effect
  opts.handshake = false;
  const auto r = transfer(a_, b_, 8 * 655'360, opts);
  // Eight times the data in the same time as one stream moved one share.
  EXPECT_NEAR(to_seconds(r.elapsed()), 1.0 + 0.05, 0.01);
}

TEST_F(NetworkTest, TwoFlowsShareFairly) {
  make_pair_topology(80e6, kMillisecond);  // 10 MB/s
  TransferOptions opts;
  opts.window_bytes = 1 << 30;
  opts.handshake = false;
  std::optional<TransferResult> r1, r2;
  net_.start_transfer(a_, b_, 10'000'000, opts, [&](const TransferResult& r) { r1 = r; });
  net_.start_transfer(a_, b_, 10'000'000, opts, [&](const TransferResult& r) { r2 = r; });
  sim_.run();
  ASSERT_TRUE(r1 && r2);
  // Both flows split 10 MB/s, so each 10 MB transfer takes ~2 s.
  EXPECT_NEAR(to_seconds(r1->elapsed()), 2.0, 0.02);
  EXPECT_NEAR(to_seconds(r2->elapsed()), 2.0, 0.02);
}

TEST_F(NetworkTest, ShortFlowFinishesAndLongFlowSpeedsUp) {
  make_pair_topology(80e6, kMillisecond);  // 10 MB/s
  TransferOptions opts;
  opts.window_bytes = 1 << 30;
  opts.handshake = false;
  std::optional<TransferResult> small, large;
  net_.start_transfer(a_, b_, 5'000'000, opts, [&](const TransferResult& r) { small = r; });
  net_.start_transfer(a_, b_, 15'000'000, opts, [&](const TransferResult& r) { large = r; });
  sim_.run();
  ASSERT_TRUE(small && large);
  // Shared 5 MB/s until the small flow's 5 MB finish at t=1s; the large flow
  // then has 10 MB left at full 10 MB/s: total 2 s.
  EXPECT_NEAR(to_seconds(small->elapsed()), 1.0, 0.02);
  EXPECT_NEAR(to_seconds(large->elapsed()), 2.0, 0.02);
}

TEST_F(NetworkTest, WeightsBiasTheShare) {
  make_pair_topology(80e6, kMillisecond);  // 10 MB/s
  TransferOptions heavy, light;
  heavy.window_bytes = light.window_bytes = 1 << 30;
  heavy.handshake = light.handshake = false;
  heavy.weight = 3.0;
  light.weight = 1.0;
  std::optional<TransferResult> rh, rl;
  net_.start_transfer(a_, b_, 7'500'000, heavy, [&](const TransferResult& r) { rh = r; });
  net_.start_transfer(a_, b_, 7'500'000, light, [&](const TransferResult& r) { rl = r; });
  sim_.run();
  ASSERT_TRUE(rh && rl);
  // Heavy gets 7.5 MB/s and finishes at 1 s; light then finishes its
  // remaining 5 MB at 10 MB/s by t = 1.5 s.
  EXPECT_NEAR(to_seconds(rh->elapsed()), 1.0, 0.02);
  EXPECT_NEAR(to_seconds(rl->elapsed()), 1.5, 0.02);
}

TEST_F(NetworkTest, DisjointPathsDoNotInterfere) {
  const NodeId hub = net_.add_node("hub");
  const NodeId x = net_.add_node("x");
  const NodeId y = net_.add_node("y");
  net_.add_link(hub, x, {80e6, kMillisecond, 0.0});
  net_.add_link(hub, y, {80e6, kMillisecond, 0.0});
  TransferOptions opts;
  opts.window_bytes = 1 << 30;
  opts.handshake = false;
  std::optional<TransferResult> rx, ry;
  net_.start_transfer(hub, x, 10'000'000, opts, [&](const TransferResult& r) { rx = r; });
  net_.start_transfer(hub, y, 10'000'000, opts, [&](const TransferResult& r) { ry = r; });
  sim_.run();
  ASSERT_TRUE(rx && ry);
  EXPECT_NEAR(to_seconds(rx->elapsed()), 1.0, 0.02);
  EXPECT_NEAR(to_seconds(ry->elapsed()), 1.0, 0.02);
}

TEST_F(NetworkTest, SharedBottleneckConstrainsBothPaths) {
  // src --(10 MB/s)-- mid, mid --fast-- x and mid --fast-- y.
  const NodeId src = net_.add_node("src");
  const NodeId mid = net_.add_node("mid");
  const NodeId x = net_.add_node("x");
  const NodeId y = net_.add_node("y");
  net_.add_link(src, mid, {80e6, kMillisecond, 0.0});
  net_.add_link(mid, x, {1e10, kMillisecond, 0.0});
  net_.add_link(mid, y, {1e10, kMillisecond, 0.0});
  TransferOptions opts;
  opts.window_bytes = 1 << 30;
  opts.handshake = false;
  std::optional<TransferResult> rx, ry;
  net_.start_transfer(src, x, 10'000'000, opts, [&](const TransferResult& r) { rx = r; });
  net_.start_transfer(src, y, 10'000'000, opts, [&](const TransferResult& r) { ry = r; });
  sim_.run();
  ASSERT_TRUE(rx && ry);
  EXPECT_NEAR(to_seconds(rx->elapsed()), 2.0, 0.02);
  EXPECT_NEAR(to_seconds(ry->elapsed()), 2.0, 0.02);
}

TEST_F(NetworkTest, LocalTransferIsNearInstant) {
  make_pair_topology();
  const auto r = transfer(a_, a_, 1'000'000);
  EXPECT_LT(to_seconds(r.elapsed()), 0.001);
  EXPECT_GT(to_seconds(r.elapsed()), 0.0);
}

TEST_F(NetworkTest, ZeroByteTransferCostsLatencyOnly) {
  make_pair_topology(100e6, 10 * kMillisecond);
  TransferOptions opts;
  opts.handshake = true;
  const auto r = transfer(a_, b_, 0, opts);
  EXPECT_NEAR(to_seconds(r.elapsed()), 0.02 + 0.01, 1e-6);
}

TEST_F(NetworkTest, CancelFiresCallbackWithFlag) {
  make_pair_topology(80e6, kMillisecond);
  TransferOptions opts;
  opts.window_bytes = 1 << 30;
  opts.handshake = false;
  std::optional<TransferResult> result;
  const FlowId id =
      net_.start_transfer(a_, b_, 100'000'000, opts, [&](const TransferResult& r) { result = r; });
  sim_.run_until(kSecond);
  EXPECT_TRUE(net_.cancel(id));
  EXPECT_TRUE(result.has_value());
  EXPECT_TRUE(result->cancelled);
  EXPECT_FALSE(net_.cancel(id));  // already gone
  EXPECT_EQ(net_.active_flows(), 0u);
}

TEST_F(NetworkTest, CancelFreesBandwidthForOthers) {
  make_pair_topology(80e6, kMillisecond);  // 10 MB/s
  TransferOptions opts;
  opts.window_bytes = 1 << 30;
  opts.handshake = false;
  std::optional<TransferResult> kept;
  const FlowId doomed = net_.start_transfer(a_, b_, 100'000'000, opts, [](auto&) {});
  net_.start_transfer(a_, b_, 10'000'000, opts, [&](const TransferResult& r) { kept = r; });
  // Let both run half a second at 5 MB/s each, then cancel the big one.
  sim_.run_until(kSecond / 2);
  net_.cancel(doomed);
  sim_.run();
  ASSERT_TRUE(kept.has_value());
  // 2.5 MB moved in the first 0.5 s, remaining 7.5 MB at 10 MB/s = 0.75 s.
  EXPECT_NEAR(to_seconds(kept->elapsed()), 0.5 + 0.75, 0.02);
}

TEST_F(NetworkTest, JitterIsDeterministicPerSeed) {
  auto run_once = [](std::uint64_t seed) {
    Simulator sim;
    Network net(sim, seed);
    const NodeId a = net.add_node("a");
    const NodeId b = net.add_node("b");
    net.add_link(a, b, {100e6, 10 * kMillisecond, 0.3});
    std::optional<TransferResult> out;
    TransferOptions opts;
    opts.window_bytes = 1 << 30;
    net.start_transfer(a, b, 1'000'000, opts, [&](const TransferResult& r) { out = r; });
    sim.run();
    return out->elapsed();
  };
  EXPECT_EQ(run_once(123), run_once(123));
  EXPECT_NE(run_once(123), run_once(456));
}

TEST_F(NetworkTest, JitterNeverReducesLatencyBelowNominal) {
  Simulator sim;
  Network net(sim, 77);
  const NodeId a = net.add_node("a");
  const NodeId b = net.add_node("b");
  net.add_link(a, b, {100e6, 10 * kMillisecond, 0.5});
  for (int i = 0; i < 20; ++i) {
    std::optional<TransferResult> out;
    TransferOptions opts;
    opts.handshake = false;
    net.start_transfer(a, b, 0, opts, [&](const TransferResult& r) { out = r; });
    sim.run();
    ASSERT_TRUE(out.has_value());
    EXPECT_GE(out->elapsed(), 10 * kMillisecond);
  }
}

TEST_F(NetworkTest, LinkStatsAccumulate) {
  make_pair_topology();
  TransferOptions opts;
  opts.window_bytes = 1 << 30;
  transfer(a_, b_, 1000, opts);
  transfer(a_, b_, 500, opts);
  const auto& stats = net_.link_stats(0, /*forward=*/true);
  EXPECT_EQ(stats.bytes_carried, 1500u);
  EXPECT_EQ(stats.flows_carried, 2u);
}

TEST_F(NetworkTest, InvalidArgumentsThrow) {
  make_pair_topology();
  EXPECT_THROW(net_.add_link(a_, a_, {}), std::invalid_argument);
  EXPECT_THROW(net_.add_link(a_, 999, {}), std::out_of_range);
  LinkConfig bad;
  bad.bandwidth_bps = 0.0;
  EXPECT_THROW(net_.add_link(a_, b_, bad), std::invalid_argument);
  TransferOptions opts;
  opts.streams = 0;
  EXPECT_THROW(net_.start_transfer(a_, b_, 1, opts, [](auto&) {}), std::invalid_argument);
}

// Event hygiene: every flow owns exactly one live completion event, so a
// reallocation storm (many flows arriving and departing on one shared link)
// keeps the pending-event count proportional to the number of live flows.
// The seed's epoch-guarded design left every superseded completion closure
// in the queue — pending() grew with the square of the flow count.
TEST_F(NetworkTest, ReallocationStormKeepsTheEventQueueBounded) {
  make_pair_topology(100e6);
  constexpr int kFlows = 64;
  TransferOptions opts;
  opts.window_bytes = 1 << 30;
  int done = 0;
  for (int i = 0; i < kFlows; ++i) {
    sim_.after(static_cast<SimDuration>(i) * kMillisecond, [&, this] {
      net_.start_transfer(a_, b_, 200'000, opts, [&](const TransferResult&) { ++done; });
    });
  }
  std::size_t max_pending = 0;
  while (sim_.step()) max_pending = std::max(max_pending, sim_.pending());
  EXPECT_EQ(done, kFlows);
  // One completion timer and one delivery/driver event per flow, plus the
  // coalesced solve — far below the seed's quadratic stale-closure pile-up.
  EXPECT_LE(max_pending, static_cast<std::size_t>(3 * kFlows + 8));
}

// Differential check: the affected-component solve and a forced full-graph
// solve must produce identical transfer completions, down to the nanosecond,
// on a topology with several independent contention domains.
TEST_F(NetworkTest, IncrementalAndFullResolveAgreeExactly) {
  struct Run {
    std::vector<std::pair<FlowId, SimTime>> completions;
    std::uint64_t events = 0;
  };
  const auto run_mixed = [](bool full_resolve) {
    Simulator sim;
    Network net(sim);
    net.set_full_resolve(full_resolve);
    // Two disjoint WAN pairs plus a shared trunk: solves triggered on one
    // side must not perturb the other.
    const NodeId a = net.add_node("a");
    const NodeId b = net.add_node("b");
    const NodeId c = net.add_node("c");
    const NodeId d = net.add_node("d");
    const NodeId hub = net.add_node("hub");
    net.add_link(a, b, {100e6, 10 * kMillisecond, 0.0});
    net.add_link(c, d, {50e6, 5 * kMillisecond, 0.0});
    net.add_link(a, hub, {200e6, 2 * kMillisecond, 0.0});
    net.add_link(hub, c, {200e6, 2 * kMillisecond, 0.0});
    Run run;
    TransferOptions opts;
    opts.window_bytes = 1 << 30;
    const auto record = [&run](const TransferResult& r) {
      run.completions.emplace_back(r.id, r.finished);
    };
    // Staggered cross-traffic across all three domains, with weights.
    for (int i = 0; i < 12; ++i) {
      sim.after(static_cast<SimDuration>(i) * (3 * kMillisecond), [&, i] {
        TransferOptions o = opts;
        o.weight = 1.0 + (i % 3);
        switch (i % 4) {
          case 0: net.start_transfer(a, b, 400'000, o, record); break;
          case 1: net.start_transfer(c, d, 300'000, o, record); break;
          case 2: net.start_transfer(a, c, 250'000, o, record); break;
          default: net.start_transfer(d, c, 150'000, o, record); break;
        }
      });
    }
    sim.run();
    run.events = sim.executed();
    return run;
  };
  const Run incremental = run_mixed(false);
  const Run full = run_mixed(true);
  ASSERT_EQ(incremental.completions.size(), 12u);
  EXPECT_EQ(incremental.completions, full.completions);
  EXPECT_EQ(incremental.events, full.events);
}

// The instrumentation counters move and the component solve stays scoped:
// transfers confined to one link must not touch flows on a disjoint link.
TEST_F(NetworkTest, ReallocCountersTrackComponentScopedSolves) {
  const NodeId a = net_.add_node("a");
  const NodeId b = net_.add_node("b");
  const NodeId c = net_.add_node("c");
  const NodeId d = net_.add_node("d");
  net_.add_link(a, b, {100e6, 10 * kMillisecond, 0.0});
  net_.add_link(c, d, {100e6, 10 * kMillisecond, 0.0});
  TransferOptions opts;
  opts.window_bytes = 1 << 30;
  int done = 0;
  const auto count = [&](const TransferResult&) { ++done; };
  net_.start_transfer(a, b, 100'000, opts, count);
  net_.start_transfer(c, d, 100'000, opts, count);
  sim_.run();
  EXPECT_EQ(done, 2);
  EXPECT_GE(net_.reallocs(), 2u);
  EXPECT_GT(net_.realloc_requests(), 0u);
  // Each solve re-rated at most its own pair's single flow: with disjoint
  // links the touched-flow total stays at one per membership change.
  EXPECT_LE(net_.realloc_flows_touched(), 4u);
}

}  // namespace
}  // namespace lon::sim
