// Unit tests for the software renderer: images, cameras, cube intersection
// and the ray caster's compositing behaviour.
#include <gtest/gtest.h>

#include <cmath>

#include "render/camera.hpp"
#include "render/image.hpp"
#include "render/raycaster.hpp"
#include "volume/synthetic.hpp"
#include "volume/transfer.hpp"

namespace lon::render {
namespace {

// --- image ------------------------------------------------------------------------

TEST(Image, SetAndGetPixels) {
  ImageRGB8 img(4, 3);
  EXPECT_EQ(img.byte_size(), 36u);
  img.set(2, 1, {10, 20, 30});
  EXPECT_EQ(img.at(2, 1), (Rgb8{10, 20, 30}));
  EXPECT_EQ(img.at(0, 0), (Rgb8{0, 0, 0}));
}

TEST(Image, MeanAbsDiff) {
  ImageRGB8 a(2, 2), b(2, 2);
  EXPECT_DOUBLE_EQ(a.mean_abs_diff(b), 0.0);
  b.set(0, 0, {12, 0, 0});
  EXPECT_NEAR(a.mean_abs_diff(b), 12.0 / 12.0, 1e-12);
  ImageRGB8 c(3, 3);
  EXPECT_THROW((void)a.mean_abs_diff(c), std::invalid_argument);
}

// --- camera -----------------------------------------------------------------------

TEST(Camera, CenterRayPointsForward) {
  const Camera cam = Camera::look_at({0, 0, 5}, {0, 0, 0}, {0, 1, 0}, 45.0);
  // A 1x1 image's single pixel center is the optical axis.
  const Ray ray = cam.pixel_ray(0, 0, 1, 1);
  EXPECT_NEAR(ray.direction.z, -1.0, 1e-9);
  EXPECT_NEAR(ray.direction.x, 0.0, 1e-9);
  EXPECT_NEAR(ray.direction.y, 0.0, 1e-9);
}

TEST(Camera, RaysAreUnitLength) {
  const Camera cam = Camera::look_at({3, -2, 5}, {0, 1, 0}, {0, 1, 0}, 60.0);
  for (std::size_t y = 0; y < 8; ++y) {
    for (std::size_t x = 0; x < 8; ++x) {
      EXPECT_NEAR(cam.pixel_ray(x, y, 8, 8).direction.norm(), 1.0, 1e-12);
    }
  }
}

TEST(Camera, ImageYGrowsDownward) {
  const Camera cam = Camera::look_at({0, 0, 5}, {0, 0, 0}, {0, 1, 0}, 45.0);
  const Ray top = cam.pixel_ray(2, 0, 5, 5);
  const Ray bottom = cam.pixel_ray(2, 4, 5, 5);
  EXPECT_GT(top.direction.y, bottom.direction.y);
}

TEST(Camera, DegenerateUpVectorIsHandled) {
  // Looking along +z with up == +z: camera must still produce valid rays.
  const Camera cam = Camera::look_at({0, 0, 5}, {0, 0, 0}, {0, 0, 1}, 45.0);
  const Ray ray = cam.pixel_ray(0, 0, 2, 2);
  EXPECT_NEAR(ray.direction.norm(), 1.0, 1e-12);
}

TEST(Camera, EyeEqualsTargetThrows) {
  EXPECT_THROW(Camera::look_at({1, 1, 1}, {1, 1, 1}, {0, 1, 0}, 45.0),
               std::invalid_argument);
}

// --- cube intersection ---------------------------------------------------------------

TEST(IntersectCube, HitFromOutside) {
  double t0 = 0, t1 = 0;
  const Ray ray{{0, 0, 5}, {0, 0, -1}};
  ASSERT_TRUE(intersect_unit_cube(ray, t0, t1));
  EXPECT_NEAR(t0, 4.0, 1e-12);
  EXPECT_NEAR(t1, 6.0, 1e-12);
}

TEST(IntersectCube, MissesToTheSide) {
  double t0 = 0, t1 = 0;
  EXPECT_FALSE(intersect_unit_cube({{0, 3, 5}, {0, 0, -1}}, t0, t1));
}

TEST(IntersectCube, StartInsideClampsNearToZero) {
  double t0 = 0, t1 = 0;
  ASSERT_TRUE(intersect_unit_cube({{0, 0, 0}, {0, 0, -1}}, t0, t1));
  EXPECT_DOUBLE_EQ(t0, 0.0);
  EXPECT_NEAR(t1, 1.0, 1e-12);
}

TEST(IntersectCube, AxisParallelRayInsideSlab) {
  double t0 = 0, t1 = 0;
  // Parallel to x, within the cube in y/z.
  ASSERT_TRUE(intersect_unit_cube({{-5, 0.5, 0.5}, {1, 0, 0}}, t0, t1));
  EXPECT_NEAR(t0, 4.0, 1e-12);
  // Parallel to x, outside the slab.
  EXPECT_FALSE(intersect_unit_cube({{-5, 2.0, 0.0}, {1, 0, 0}}, t0, t1));
}

TEST(IntersectCube, DiagonalThroughCorners) {
  double t0 = 0, t1 = 0;
  const Vec3 dir = Vec3{1, 1, 1}.normalized();
  const Ray ray{Vec3{-2, -2, -2}, dir};
  ASSERT_TRUE(intersect_unit_cube(ray, t0, t1));
  EXPECT_NEAR(t1 - t0, 2.0 * std::sqrt(3.0), 1e-9);
}

// --- ray caster -----------------------------------------------------------------------

class RayCasterTest : public ::testing::Test {
 protected:
  RayCasterTest() : vol_(volume::make_neghip_like(32, 5)) {}

  volume::ScalarVolume vol_;
};

TEST_F(RayCasterTest, MissedRaysReturnBackground) {
  RayCastOptions opts;
  opts.background = {7, 8, 9};
  const RayCaster rc(vol_, volume::TransferFunction::neghip_preset(), opts);
  EXPECT_EQ(rc.cast({{0, 5, 0}, {1, 0, 0}}), (Rgb8{7, 8, 9}));
}

TEST_F(RayCasterTest, EmptyTransferFunctionYieldsBackground) {
  const RayCaster rc(vol_, volume::TransferFunction{});
  EXPECT_EQ(rc.cast({{0, 0, 5}, {0, 0, -1}}), (Rgb8{0, 0, 0}));
}

TEST_F(RayCasterTest, RenderedImageHasStructure) {
  const RayCaster rc(vol_, volume::TransferFunction::neghip_preset());
  // Far enough back that the corner pixels see past the volume cube.
  const Camera cam = Camera::look_at({0, 0, 4.5}, {0, 0, 0}, {0, 1, 0}, 40.0);
  const ImageRGB8 img = rc.render(cam, 48, 48);
  // Not all pixels identical: the volume is visible and inhomogeneous.
  bool varied = false;
  const Rgb8 first = img.at(24, 24);
  for (std::size_t y = 20; y < 28 && !varied; ++y) {
    for (std::size_t x = 20; x < 28; ++x) {
      if (!(img.at(x, y) == first)) {
        varied = true;
        break;
      }
    }
  }
  EXPECT_TRUE(varied);
  // Corner pixels see through mostly empty space toward the background.
  EXPECT_LT(img.at(0, 0).r + img.at(0, 0).g + img.at(0, 0).b, 120);
}

TEST_F(RayCasterTest, ParallelRenderMatchesSerial) {
  const RayCaster rc(vol_, volume::TransferFunction::neghip_preset());
  const Camera cam = Camera::look_at({1.5, 1.0, 2.5}, {0, 0, 0}, {0, 1, 0}, 45.0);
  const ImageRGB8 serial = rc.render(cam, 40, 40);
  ThreadPool pool(4);
  const ImageRGB8 parallel = rc.render(cam, 40, 40, &pool);
  EXPECT_EQ(serial, parallel);
}

TEST_F(RayCasterTest, FullyOpaqueVolumeSaturatesAlpha) {
  // A transfer function that is opaque everywhere: rays terminate early and
  // the background must not leak through.
  volume::TransferFunction tf;
  tf.add(0.0, {1.0, 0.0, 0.0, 1.0});
  tf.add(1.0, {1.0, 0.0, 0.0, 1.0});
  RayCastOptions opts;
  opts.shading = false;
  opts.background = {0, 255, 0};
  const RayCaster rc(vol_, tf, opts);
  const Rgb8 c = rc.cast({{0, 0, 5}, {0, 0, -1}});
  EXPECT_GT(c.r, 240);
  EXPECT_LT(c.g, 15);  // no green background bleeding in
}

TEST_F(RayCasterTest, SemiTransparencyAccumulatesLessThanOpaque) {
  volume::TransferFunction semi;
  semi.add(0.0, {1.0, 1.0, 1.0, 0.05});
  semi.add(1.0, {1.0, 1.0, 1.0, 0.05});
  volume::TransferFunction opaque;
  opaque.add(0.0, {1.0, 1.0, 1.0, 1.0});
  opaque.add(1.0, {1.0, 1.0, 1.0, 1.0});
  RayCastOptions opts;
  opts.shading = false;
  const Rgb8 cs = RayCaster(vol_, semi, opts).cast({{0, 0, 5}, {0, 0, -1}});
  const Rgb8 co = RayCaster(vol_, opaque, opts).cast({{0, 0, 5}, {0, 0, -1}});
  EXPECT_LT(cs.r, co.r);
}

TEST_F(RayCasterTest, StepSizeChangesLittleThanksToOpacityCorrection) {
  const volume::TransferFunction tf = volume::TransferFunction::neghip_preset();
  RayCastOptions coarse;
  coarse.step = 0.02;
  RayCastOptions fine;
  fine.step = 0.005;
  const Camera cam = Camera::look_at({0, 0, 3}, {0, 0, 0}, {0, 1, 0}, 45.0);
  const ImageRGB8 a = RayCaster(vol_, tf, coarse).render(cam, 32, 32);
  const ImageRGB8 b = RayCaster(vol_, tf, fine).render(cam, 32, 32);
  // Opacity correction keeps the two renderings close (not identical).
  EXPECT_LT(a.mean_abs_diff(b), 12.0);
}

TEST_F(RayCasterTest, ViewFromOppositeSidesDiffers) {
  const RayCaster rc(vol_, volume::TransferFunction::neghip_preset());
  const Camera front = Camera::look_at({0, 0, 3}, {0, 0, 0}, {0, 1, 0}, 45.0);
  const Camera side = Camera::look_at({3, 0, 0}, {0, 0, 0}, {0, 1, 0}, 45.0);
  const ImageRGB8 a = rc.render(front, 32, 32);
  const ImageRGB8 b = rc.render(side, 32, 32);
  EXPECT_GT(a.mean_abs_diff(b), 1.0);  // an asymmetric dataset looks different
}

}  // namespace
}  // namespace lon::render
