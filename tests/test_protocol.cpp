// Tests for the IBP wire protocol: request/response codecs, server dispatch
// against a live depot, malformed-input robustness, and the remote manage
// operations (probe / extend / release) plus LoRS lease refresh built on it.
#include <gtest/gtest.h>

#include <optional>

#include "ibp/protocol.hpp"
#include "ibp/service.hpp"
#include "lors/lors.hpp"
#include "util/rng.hpp"

namespace lon::ibp {
namespace {

using protocol::Op;

Capability make_cap(CapKind kind) {
  Capability cap;
  cap.depot = "d1";
  cap.allocation = 42;
  cap.key = 0xfeedface;
  cap.kind = kind;
  return cap;
}

// --- codec round trips ------------------------------------------------------------

TEST(Protocol, AllocateRequestRoundTrip) {
  protocol::AllocateRequest req;
  req.alloc = {4096, 30 * kSecond, AllocType::kSoft};
  const Bytes wire = protocol::encode_request(req);
  EXPECT_EQ(protocol::peek_op(wire), Op::kAllocate);
  const auto decoded = protocol::decode_request(wire);
  const auto* out = std::get_if<protocol::AllocateRequest>(&decoded);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->alloc.size, 4096u);
  EXPECT_EQ(out->alloc.lease, 30 * kSecond);
  EXPECT_EQ(out->alloc.type, AllocType::kSoft);
}

TEST(Protocol, StoreRequestRoundTrip) {
  protocol::StoreRequest req;
  req.write_cap = make_cap(CapKind::kWrite);
  req.offset = 128;
  req.data = {9, 8, 7};
  const auto decoded = protocol::decode_request(protocol::encode_request(req));
  const auto* out = std::get_if<protocol::StoreRequest>(&decoded);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->write_cap, req.write_cap);
  EXPECT_EQ(out->offset, 128u);
  EXPECT_EQ(out->data, (Bytes{9, 8, 7}));
}

TEST(Protocol, LoadProbeExtendReleaseRoundTrip) {
  {
    protocol::LoadRequest req{make_cap(CapKind::kRead), 7, 99};
    const auto decoded = protocol::decode_request(protocol::encode_request(req));
    const auto* out = std::get_if<protocol::LoadRequest>(&decoded);
    ASSERT_NE(out, nullptr);
    EXPECT_EQ(out->length, 99u);
  }
  {
    protocol::ExtendRequest req{make_cap(CapKind::kManage), 55 * kSecond};
    const auto decoded = protocol::decode_request(protocol::encode_request(req));
    const auto* out = std::get_if<protocol::ExtendRequest>(&decoded);
    ASSERT_NE(out, nullptr);
    EXPECT_EQ(out->extra, 55 * kSecond);
  }
  {
    protocol::ProbeRequest req{make_cap(CapKind::kManage)};
    const auto decoded = protocol::decode_request(protocol::encode_request(req));
    EXPECT_NE(std::get_if<protocol::ProbeRequest>(&decoded), nullptr);
  }
  {
    protocol::ReleaseRequest req{make_cap(CapKind::kManage)};
    const auto decoded = protocol::decode_request(protocol::encode_request(req));
    EXPECT_NE(std::get_if<protocol::ReleaseRequest>(&decoded), nullptr);
  }
}

TEST(Protocol, ResponseRoundTrips) {
  {
    protocol::Response r;
    r.status = IbpStatus::kOk;
    CapabilitySet caps;
    caps.read = make_cap(CapKind::kRead);
    caps.write = make_cap(CapKind::kWrite);
    caps.manage = make_cap(CapKind::kManage);
    r.caps = caps;
    const auto back =
        protocol::decode_response(protocol::encode_response(r, Op::kAllocate), Op::kAllocate);
    ASSERT_TRUE(back.caps.has_value());
    EXPECT_EQ(back.caps->manage, caps.manage);
  }
  {
    protocol::Response r;
    r.status = IbpStatus::kOk;
    r.data = Bytes{1, 2, 3, 4};
    const auto back =
        protocol::decode_response(protocol::encode_response(r, Op::kLoad), Op::kLoad);
    ASSERT_TRUE(back.data.has_value());
    EXPECT_EQ(*back.data, (Bytes{1, 2, 3, 4}));
  }
  {
    protocol::Response r;
    r.status = IbpStatus::kExpired;  // error responses carry no payload
    const auto back =
        protocol::decode_response(protocol::encode_response(r, Op::kLoad), Op::kLoad);
    EXPECT_EQ(back.status, IbpStatus::kExpired);
    EXPECT_FALSE(back.data.has_value());
  }
}

TEST(Protocol, MalformedInputThrowsOrRefusesSafely) {
  EXPECT_THROW(protocol::decode_request(Bytes{}), DecodeError);
  EXPECT_THROW(protocol::decode_request(Bytes{99, 0, 0, 0, 0}), DecodeError);
  EXPECT_THROW((void)protocol::peek_op(Bytes{}), DecodeError);
  // Truncated body.
  protocol::StoreRequest req;
  req.write_cap = make_cap(CapKind::kWrite);
  req.data = Bytes(100, 1);
  Bytes wire = protocol::encode_request(req);
  wire.resize(wire.size() / 2);
  EXPECT_THROW(protocol::decode_request(wire), DecodeError);
}

TEST(Protocol, FuzzedBytesNeverCrashDispatch) {
  sim::Simulator sim;
  Depot depot(sim, "d1", {});
  Rng rng(99);
  for (int i = 0; i < 500; ++i) {
    Bytes noise(rng.below(200));
    for (auto& b : noise) b = static_cast<std::uint8_t>(rng.next());
    const Bytes reply = protocol::dispatch(depot, noise);  // must not throw
    EXPECT_FALSE(reply.empty());
  }
  EXPECT_EQ(depot.allocation_count(), 0u);  // noise never allocates
}

// --- dispatch against a live depot ---------------------------------------------------

TEST(Protocol, FullSessionThroughTheWire) {
  sim::Simulator sim;
  DepotConfig config;
  config.capacity_bytes = 1 << 20;
  Depot depot(sim, "d1", config);

  // allocate
  protocol::AllocateRequest alloc;
  alloc.alloc = {256, 60 * kSecond, AllocType::kHard};
  auto reply = protocol::dispatch(depot, protocol::encode_request(alloc));
  auto response = protocol::decode_response(reply, Op::kAllocate);
  ASSERT_EQ(response.status, IbpStatus::kOk);
  const CapabilitySet caps = response.caps.value();

  // store
  protocol::StoreRequest store;
  store.write_cap = caps.write;
  store.offset = 10;
  store.data = {5, 6, 7};
  reply = protocol::dispatch(depot, protocol::encode_request(store));
  EXPECT_EQ(protocol::decode_response(reply, Op::kStore).status, IbpStatus::kOk);

  // load
  protocol::LoadRequest load;
  load.read_cap = caps.read;
  load.offset = 10;
  load.length = 3;
  reply = protocol::dispatch(depot, protocol::encode_request(load));
  response = protocol::decode_response(reply, Op::kLoad);
  ASSERT_EQ(response.status, IbpStatus::kOk);
  EXPECT_EQ(response.data.value(), (Bytes{5, 6, 7}));

  // probe
  protocol::ProbeRequest probe;
  probe.manage_cap = caps.manage;
  reply = protocol::dispatch(depot, protocol::encode_request(probe));
  response = protocol::decode_response(reply, Op::kProbe);
  ASSERT_EQ(response.status, IbpStatus::kOk);
  EXPECT_EQ(response.info->size, 256u);
  EXPECT_EQ(response.info->bytes_written, 13u);

  // extend + release
  protocol::ExtendRequest extend;
  extend.manage_cap = caps.manage;
  extend.extra = 120 * kSecond;
  reply = protocol::dispatch(depot, protocol::encode_request(extend));
  EXPECT_EQ(protocol::decode_response(reply, Op::kExtend).status, IbpStatus::kOk);

  protocol::ReleaseRequest release;
  release.manage_cap = caps.manage;
  reply = protocol::dispatch(depot, protocol::encode_request(release));
  EXPECT_EQ(protocol::decode_response(reply, Op::kRelease).status, IbpStatus::kOk);
  EXPECT_EQ(depot.allocation_count(), 0u);
}

// --- remote manage operations over the fabric -----------------------------------------

class ManageOpsTest : public ::testing::Test {
 protected:
  ManageOpsTest() : net_(sim_), fabric_(sim_, net_), lors_(sim_, net_, fabric_) {
    client_ = net_.add_node("client");
    const sim::NodeId node = net_.add_node("depot");
    net_.add_link(client_, node, {1e9, 5 * kMillisecond, 0.0});
    DepotConfig cfg;
    cfg.capacity_bytes = 1 << 20;
    cfg.max_lease = 3600 * kSecond;
    fabric_.add_depot(node, "d1", cfg);
  }

  CapabilitySet allocate(std::uint64_t size, SimDuration lease) {
    std::optional<CapabilitySet> caps;
    fabric_.allocate_async(client_, "d1", {size, lease, AllocType::kHard},
                           [&](IbpStatus s, const CapabilitySet& c) {
                             ASSERT_EQ(s, IbpStatus::kOk);
                             caps = c;
                           });
    sim_.run();
    return *caps;
  }

  sim::Simulator sim_;
  sim::Network net_;
  Fabric fabric_;
  lors::Lors lors_;
  sim::NodeId client_ = 0;
};

TEST_F(ManageOpsTest, RemoteProbeReportsState) {
  const auto caps = allocate(512, 100 * kSecond);
  std::optional<AllocInfo> info;
  fabric_.probe_async(client_, caps.manage, [&](IbpStatus s, const AllocInfo& i) {
    ASSERT_EQ(s, IbpStatus::kOk);
    info = i;
  });
  sim_.run();
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->size, 512u);
}

TEST_F(ManageOpsTest, RemoteExtendKeepsAllocationAlive) {
  const auto caps = allocate(512, 10 * kSecond);
  sim_.run_until(8 * kSecond);
  std::optional<IbpStatus> status;
  fabric_.extend_async(client_, caps.manage, 100 * kSecond,
                       [&](IbpStatus s) { status = s; });
  sim_.run();
  ASSERT_EQ(status, IbpStatus::kOk);
  sim_.run_until(50 * kSecond);
  Bytes out;
  EXPECT_EQ(fabric_.find_depot("d1")->load(caps.read, 0, 1, out), IbpStatus::kOk);
}

TEST_F(ManageOpsTest, RemoteReleaseFrees) {
  const auto caps = allocate(512, 100 * kSecond);
  std::optional<IbpStatus> status;
  fabric_.release_async(client_, caps.manage, [&](IbpStatus s) { status = s; });
  sim_.run();
  EXPECT_EQ(status, IbpStatus::kOk);
  EXPECT_EQ(fabric_.find_depot("d1")->allocation_count(), 0u);
}

TEST_F(ManageOpsTest, WrongKindCapabilityIsRejectedRemotely) {
  const auto caps = allocate(512, 100 * kSecond);
  std::optional<IbpStatus> status;
  fabric_.release_async(client_, caps.read, [&](IbpStatus s) { status = s; });
  sim_.run();
  EXPECT_EQ(status, IbpStatus::kBadCapability);
}

TEST_F(ManageOpsTest, LorsRefreshExtendsEveryReplica) {
  // Upload with a short lease, refresh through LoRS, verify survival.
  Bytes data(10'000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i);
  }
  lors::UploadOptions up;
  up.depots = {"d1"};
  up.block_bytes = 4'000;
  up.lease = 20 * kSecond;
  std::optional<exnode::ExNode> node;
  lors_.upload_async(client_, data, up, [&](const lors::UploadResult& r) {
    ASSERT_EQ(r.status, lors::LorsStatus::kOk);
    node = r.exnode;
  });
  sim_.run();
  ASSERT_TRUE(node.has_value());

  sim_.run_until(15 * kSecond);
  std::optional<lors::Lors::RefreshResult> refresh;
  lors_.refresh_async(client_, *node, 300 * kSecond,
                      [&](const lors::Lors::RefreshResult& r) { refresh = r; });
  sim_.run();
  ASSERT_TRUE(refresh.has_value());
  EXPECT_EQ(refresh->status, lors::LorsStatus::kOk);
  EXPECT_EQ(refresh->extended, 3u);  // three blocks, one replica each

  // Well past the original lease: the data still downloads.
  sim_.run_until(120 * kSecond);
  std::optional<lors::DownloadResult> down;
  lors_.download_async(client_, *node, {}, [&](lors::DownloadResult r) { down = std::move(r); });
  sim_.run();
  ASSERT_TRUE(down.has_value());
  EXPECT_EQ(down->status, lors::LorsStatus::kOk);
  EXPECT_EQ(*down->data, data);
}

TEST_F(ManageOpsTest, RefreshWithoutManageCapsReportsPartial) {
  exnode::ExNode node(10);
  exnode::Extent extent;
  extent.offset = 0;
  extent.length = 10;
  exnode::Replica rep;
  rep.read = make_cap(CapKind::kRead);  // no manage capability
  extent.replicas.push_back(rep);
  node.add_extent(extent);

  std::optional<lors::Lors::RefreshResult> refresh;
  lors_.refresh_async(client_, node, kSecond,
                      [&](const lors::Lors::RefreshResult& r) { refresh = r; });
  sim_.run();
  ASSERT_TRUE(refresh.has_value());
  EXPECT_EQ(refresh->status, lors::LorsStatus::kPartial);
  EXPECT_EQ(refresh->failed, 1u);
}

}  // namespace
}  // namespace lon::ibp
