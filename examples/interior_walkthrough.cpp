// interior_walkthrough: navigating a scene with multiple light-field
// databases (paper section 3.2 and the rail-track viewer of Yang & Crawfis).
//
//   $ ./interior_walkthrough [output-dir]   (default: ./out, created if missing)
//
// A single spherical light field only supports external views. This example
// places two databases in one world — two renderings of the same volume
// under different transfer functions, standing in for two regions of a large
// scene — and walks a camera track past both. At every track position the
// MultiDatabase selects which database can serve the view (with hysteresis
// at the boundary), maps the position to that database's (theta, phi), and
// replays from its view sets, fetching view sets lazily as the walk crosses
// view-set windows. Three frames along the track are written as PPM.
#include <cstdio>
#include <filesystem>
#include <map>
#include <memory>
#include <string>

#include "lightfield/builder.hpp"
#include "lightfield/multidb.hpp"
#include "lightfield/renderer.hpp"
#include "volume/synthetic.hpp"

int main(int argc, char** argv) {
  using namespace lon;
  const std::string out_dir = argc > 1 ? argv[1] : "out";
  std::filesystem::create_directories(out_dir);

  lightfield::LatticeConfig lattice;
  lattice.angular_step_deg = 15.0;
  lattice.view_set_span = 3;
  lattice.view_resolution = 128;

  // Two "stations" along the track: the same protein viewed volumetrically
  // and as a near-opaque iso-shell.
  const volume::ScalarVolume vol = volume::make_neghip_like(64);
  lightfield::RaycastBuilder station_a(vol, volume::TransferFunction::neghip_preset(),
                                       lattice);
  lightfield::RaycastBuilder station_b(
      vol, volume::TransferFunction::opaque_preset(0.62, 0.06), lattice);

  lightfield::MultiDatabase world(0.05);
  const auto db_a = world.add("volumetric", {0, 0, 0}, lattice);
  const auto db_b = world.add("iso-shell", {10, 0, 0}, lattice);

  std::printf("scene manifest:\n%s\n", world.to_xml().c_str());

  // One renderer + builder per database; view sets fetched on demand.
  std::map<lightfield::DatabaseId, std::unique_ptr<lightfield::Renderer>> renderers;
  renderers[db_a] = std::make_unique<lightfield::Renderer>(lattice);
  renderers[db_b] = std::make_unique<lightfield::Renderer>(lattice);
  auto builder_for = [&](lightfield::DatabaseId id) -> lightfield::RaycastBuilder& {
    return id == db_a ? station_a : station_b;
  };

  std::optional<lightfield::DatabaseId> current;
  std::size_t fetches = 0, switches = 0;
  int frame_index = 0;

  // A straight track flying past both stations.
  for (double t = 0.0; t <= 1.0; t += 1.0 / 24.0) {
    const Vec3 viewer{-6.0 + 22.0 * t, 4.5, 1.5};
    const auto selected = world.select(viewer, current);
    if (!selected.has_value()) {
      std::printf("t=%.2f: no database covers this position\n", t);
      continue;
    }
    if (current != selected) {
      ++switches;
      std::printf("t=%.2f: switching to database '%s'\n", t,
                  world.entry(*selected).name.c_str());
      current = selected;
    }
    const Spherical dir = world.direction_in(*selected, viewer);
    lightfield::Renderer& renderer = *renderers[*selected];

    // Lazy view-set fetch: pull the containing set (and the ones its
    // corners need) straight from the generator — in the full system this
    // request would go through the client agent and LoN.
    const auto& lat = renderer.lattice();
    while (!renderer.can_render(dir)) {
      const auto id = lat.view_set_of(dir);
      if (!renderer.has_view_set(id)) {
        renderer.add_view_set(builder_for(*selected).build(id));
        ++fetches;
        continue;
      }
      // A corner falls in a neighbouring set: load the nearest missing one.
      bool loaded = false;
      for (const auto& n : lat.neighbors(id)) {
        if (!renderer.has_view_set(n)) {
          renderer.add_view_set(builder_for(*selected).build(n));
          ++fetches;
          loaded = true;
          break;
        }
      }
      if (!loaded) break;  // cannot happen, but never spin
    }

    // Digital zoom from the range: nearer than the camera sphere radius
    // means zooming in on the replayed imagery.
    const double range = world.range_in(*selected, viewer);
    const double zoom =
        std::clamp(world.entry(*selected).lattice.outer_radius / range * 1.6, 0.8, 2.5);
    const auto frame = renderer.render(dir, 128, zoom);
    if (frame_index % 8 == 0) {
      const std::string path =
          out_dir + "/walkthrough_" + std::to_string(frame_index / 8) + ".ppm";
      frame.write_ppm(path);
      std::printf("t=%.2f: db=%s dir=(%.2f, %.2f) zoom=%.2f -> %s\n", t,
                  world.entry(*selected).name.c_str(), dir.theta, dir.phi, zoom,
                  path.c_str());
    }
    ++frame_index;
  }

  std::printf("\n%d frames, %zu view-set fetches, %zu database switches\n", frame_index,
              fetches, switches);
  return 0;
}
