// build_database: the server-side generator pipeline (paper section 3.4).
//
//   $ ./build_database [angular_step_deg] [resolution] [threads]
//
// Ray-casts a volume over a spherical camera lattice, partitions the sample
// views into view sets, compresses each with lfz, and reports the database
// inventory — the offline pre-computation step of the full system. With the
// default coarse lattice this takes seconds; the paper's 2.5-degree lattice
// at 600^2 took its 32-processor cluster 4.5 hours.
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "lightfield/builder.hpp"
#include "volume/synthetic.hpp"

int main(int argc, char** argv) {
  using namespace lon;
  const double step = argc > 1 ? std::atof(argv[1]) : 22.5;
  const std::size_t resolution = argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 100;
  const std::size_t threads = argc > 3 ? static_cast<std::size_t>(std::atoi(argv[3])) : 0;

  lightfield::LatticeConfig config;
  config.angular_step_deg = step;
  config.view_set_span = 2;
  config.view_resolution = resolution;

  const volume::ScalarVolume vol = volume::make_neghip_like(64);
  lightfield::RaycastBuilder builder(vol, volume::TransferFunction::neghip_preset(),
                                     config, {}, threads);
  const auto& lattice = builder.lattice();

  std::printf("lattice: %zux%zu cameras (%.1f deg), %zux%zu view sets, views %zux%zu\n",
              lattice.rows(), lattice.cols(), step, lattice.view_set_rows(),
              lattice.view_set_cols(), resolution, resolution);

  std::uint64_t raw_total = 0;
  std::uint64_t packed_total = 0;
  const auto start = std::chrono::steady_clock::now();
  for (const auto& id : lattice.all_view_sets()) {
    const lightfield::ViewSet vs = builder.build(id);
    const Bytes packed = vs.compress();
    raw_total += vs.pixel_bytes();
    packed_total += packed.size();
    std::printf("  %-8s %8.2f MB -> %7.2f MB (%.1fx)\n", id.key().c_str(),
                static_cast<double>(vs.pixel_bytes()) / 1e6,
                static_cast<double>(packed.size()) / 1e6,
                static_cast<double>(vs.pixel_bytes()) /
                    static_cast<double>(packed.size()));
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  std::printf("\ndatabase: %.2f MB raw, %.2f MB compressed (%.1fx) in %.1f s\n",
              static_cast<double>(raw_total) / 1e6,
              static_cast<double>(packed_total) / 1e6,
              static_cast<double>(raw_total) / static_cast<double>(packed_total),
              seconds);
  std::printf("(the paper's full configuration: 2.5 deg, l=6 -> 288 view sets,\n"
              " 1.5-14 GB raw depending on resolution, built offline on a cluster)\n");
  return 0;
}
