// remote_browse: the full system end to end — a remote visualization session
// over simulated Logistical Networking (paper sections 3.3-3.6, 4.2-4.3).
//
//   $ ./remote_browse [case] [accesses]
//       case: 1 = data in LAN, 2 = data in WAN, 3 = WAN + LAN-depot staging
//
// Publishes a light-field database onto IBP depots, then replays an
// orchestrated browsing session through the client / client-agent pipeline,
// printing a per-access trace (where each view set came from and what it
// cost) and the session summary.
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "session/experiment.hpp"

int main(int argc, char** argv) {
  using namespace lon;
  const int which = argc > 1 ? std::atoi(argv[1]) : 3;
  const std::size_t accesses = argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 25;
  if (which < 1 || which > 3) {
    std::fprintf(stderr, "usage: %s [1|2|3] [accesses]\n", argv[0]);
    return 1;
  }

  session::ExperimentConfig cfg;
  cfg.lattice.angular_step_deg = 15.0;  // 4x8 view sets — demo scale
  cfg.lattice.view_set_span = 3;
  cfg.lattice.view_resolution = 160;
  cfg.which = static_cast<session::Case>(which);
  cfg.accesses = accesses;
  cfg.dwell = 2 * kSecond;
  cfg.client.display_resolution = 160;
  cfg.client.timing = streaming::ClientConfig::Timing::kMeasured;

  std::printf("running %s with %zu view-set accesses over the simulated WAN...\n\n",
              session::to_string(cfg.which), accesses);
  const session::ExperimentResult result = session::run_experiment(cfg);

  std::printf("%-4s %-8s %-10s %10s %12s %12s\n", "n", "viewset", "served-by",
              "comm (s)", "decomp (s)", "total (s)");
  for (std::size_t n = 0; n < result.accesses.size(); ++n) {
    const auto& a = result.accesses[n];
    std::printf("%-4zu %-8s %-10s %10.4f %12.4f %12.4f\n", n + 1, a.id.key().c_str(),
                streaming::to_string(a.cls), to_seconds(a.comm_latency),
                to_seconds(a.decompress_time), to_seconds(a.total()));
  }

  std::printf("\n");
  session::print_summary(std::cout, to_string(cfg.which), result.summary);
  std::printf("database: %.1f MB compressed (%.1fx); %zu/%zu view sets prestaged\n",
              result.db_compressed_bytes / 1e6, result.compression_ratio,
              result.staged_at_end,
              lightfield::SphericalLattice(cfg.lattice).view_set_count());
  std::printf("virtual session time: %.1f s\n", to_seconds(result.script_duration));
  return 0;
}
