// Quickstart: build a small light-field database from a synthetic volume and
// synthesize novel views from it by pure table lookups.
//
//   $ ./quickstart [output-dir]   (default: ./out, created if missing)
//
// Writes three PPM images (a rendered sample view, an interpolated novel
// view, and a zoomed view) and prints what happened at each step.
#include <cstdio>
#include <filesystem>
#include <string>

#include "lightfield/builder.hpp"
#include "lightfield/renderer.hpp"
#include "volume/synthetic.hpp"

int main(int argc, char** argv) {
  using namespace lon;
  const std::string out_dir = argc > 1 ? argv[1] : "out";
  std::filesystem::create_directories(out_dir);

  // 1. A 64^3 scientific dataset (a stand-in for the paper's negHip).
  std::printf("[1/4] building a 64^3 Coulomb-potential volume...\n");
  const volume::ScalarVolume vol = volume::make_neghip_like(64);

  // 2. A light-field lattice around it. The paper uses 2.5-degree spacing
  //    (72x144 cameras); for a quickstart we use a coarser 15-degree lattice.
  lightfield::LatticeConfig config;
  config.angular_step_deg = 15.0;
  config.view_set_span = 3;
  config.view_resolution = 200;

  std::printf("[2/4] ray-casting one 3x3 view set (9 sample views at %zux%zu)...\n",
              config.view_resolution, config.view_resolution);
  lightfield::RaycastBuilder builder(vol, volume::TransferFunction::neghip_preset(),
                                     config);
  const lightfield::ViewSet vs = builder.build({2, 2});

  // 3. Compress it — the unit of network transmission in the full system.
  const Bytes packed = vs.compress();
  std::printf("[3/4] view set: %.2f MB raw -> %.2f MB compressed (%.1fx, lossless)\n",
              static_cast<double>(vs.pixel_bytes()) / 1e6,
              static_cast<double>(packed.size()) / 1e6,
              static_cast<double>(vs.pixel_bytes()) / static_cast<double>(packed.size()));

  // 4. Novel-view synthesis: decompression + 4-D table lookups, no volume
  //    data and no ray marching on the "client".
  lightfield::Renderer renderer(config);
  renderer.add_view_set(lightfield::ViewSet::decompress(packed));

  const auto& lattice = renderer.lattice();
  const Spherical at_sample = lattice.sample_direction(7, 7);
  const Spherical between{at_sample.theta + deg2rad(6.0), at_sample.phi + deg2rad(8.0)};

  const auto exact = renderer.render(at_sample, 200);
  const auto novel = renderer.render(between, 200);
  const auto zoomed = renderer.render(at_sample, 200, 1.8);

  exact.write_ppm(out_dir + "/quickstart_sample_view.ppm");
  novel.write_ppm(out_dir + "/quickstart_novel_view.ppm");
  zoomed.write_ppm(out_dir + "/quickstart_zoomed.ppm");
  std::printf("[4/4] wrote quickstart_{sample_view,novel_view,zoomed}.ppm to %s\n",
              out_dir.c_str());
  std::printf("\nnext: run ./remote_browse to see the same view sets streamed\n"
              "across a simulated wide-area network with Logistical Networking.\n");
  return 0;
}
