// pda_client: remote visualization on a thin client (paper sections 1, 4.2).
//
//   $ ./pda_client
//
// "The rendering process of a light field database is simply a sequence of
// table lookup operations, enabling the use of client devices, such as PDAs,
// that lack even graphics acceleration." And from the results: "for those
// low-end devices it is sufficiently fast for a client to request a new view
// set whenever it needs to, without any local caching on the client at all."
//
// This example models a 2003-era PDA: a small 150x150 display, a slow CPU
// (modeled 4 MB/s decompression), no local view-set cache beyond the current
// set — and shows that with the client agent + LAN depot doing the heavy
// lifting, browsing stays interactive.
#include <cstdio>
#include <iostream>

#include "session/experiment.hpp"

int main() {
  using namespace lon;

  session::ExperimentConfig cfg;
  cfg.lattice.angular_step_deg = 15.0;
  cfg.lattice.view_set_span = 3;
  cfg.lattice.view_resolution = 150;  // "such resolution corresponds to
                                      //  lightweight devices such as PDAs"
  cfg.which = session::Case::kWanWithLanDepot;
  cfg.accesses = 20;
  cfg.dwell = 3 * kSecond;  // a PDA user browses deliberately

  cfg.client.display_resolution = 150;
  cfg.client.keep_view_sets = 1;  // no local caching beyond the current set
  cfg.client.timing = streaming::ClientConfig::Timing::kModeled;
  cfg.client.decompress_bytes_per_sec = 4e6;  // a 2003 handheld CPU

  std::printf("PDA session: 150x150 display, 4 MB/s decompression, no local cache,\n"
              "WAN database with aggressive LAN-depot prestaging...\n\n");
  const session::ExperimentResult result = session::run_experiment(cfg);

  session::print_summary(std::cout, "pda over case 3", result.summary);

  const double worst = result.summary.max_total_s;
  std::printf("\nworst view-set swap: %.2f s; decompression share: %.2f s mean\n",
              worst, result.summary.mean_decompress_s);
  if (result.summary.mean_total_phase2_s < 1.5) {
    std::printf("=> after the initial phase the PDA browses interactively, as the\n"
                "   paper argues: the agent and depots absorb all the heavy work.\n");
  } else {
    std::printf("=> latencies remain high; on this configuration a PDA would need\n"
                "   a slower movement rate (QGR).\n");
  }
  return 0;
}
