// Ablation: view-set coding modes.
//
// The paper reorganizes light fields into view sets precisely because they
// "provide a natural mechanism to exploit view coherence" (section 3.2), but
// its implementation compresses each view set with plain zlib. This ablation
// quantifies what inter-view difference coding adds on top: views 2.5
// degrees apart differ by little, so coding each view against its block
// predecessor shrinks the residual entropy further than per-view predictor
// filtering alone. Decode cost is reported too, since figure 8 shows
// decompression already matters at 500^2.
#include <chrono>
#include <cstdio>

#include "bench_common.hpp"
#include "lightfield/procedural.hpp"
#include "lightfield/viewset.hpp"
#include "volume/synthetic.hpp"

namespace {

using namespace lon;

double wall_seconds(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

}  // namespace

int main() {
  bench::print_header("Ablation: intra vs inter-view view-set coding",
                      "the paper uses per-view zlib (intra); inter-view "
                      "difference coding exploits the same coherence the "
                      "view-set design is built on");

  std::printf("%-12s %-10s %12s %8s %14s\n", "resolution", "mode", "compressed",
              "ratio", "decode (s)");
  for (const std::size_t resolution : {200u, 400u}) {
    lightfield::ProceduralSource source(lightfield::LatticeConfig::paper(resolution));
    const lightfield::ViewSet vs = source.build({6, 12});
    for (const auto mode :
         {lightfield::SerializeMode::kIntra, lightfield::SerializeMode::kInterView}) {
      const Bytes packed = vs.compress(mode);
      lightfield::ViewSet out;
      const double decode_s =
          wall_seconds([&] { out = lightfield::ViewSet::decompress(packed); });
      std::printf("%4zux%-7zu %-10s %9.2f MB %7.2fx %12.3f\n", resolution, resolution,
                  mode == lightfield::SerializeMode::kIntra ? "intra" : "inter-view",
                  static_cast<double>(packed.size()) / 1e6,
                  static_cast<double>(vs.pixel_bytes()) /
                      static_cast<double>(packed.size()),
                  decode_s);
    }
  }

  // Cross-check on ray-cast content (the real generator pipeline).
  std::printf("\nray-cast 64^3 negHip-like content (lattice 15 deg, 3x3, 128^2):\n");
  {
    lightfield::LatticeConfig cfg;
    cfg.angular_step_deg = 15.0;
    cfg.view_set_span = 3;
    cfg.view_resolution = 128;
    const auto vol = volume::make_neghip_like(64);
    lightfield::RaycastBuilder builder(vol, volume::TransferFunction::neghip_preset(),
                                       cfg);
    const lightfield::ViewSet vs = builder.build({2, 2});
    for (const auto mode :
         {lightfield::SerializeMode::kIntra, lightfield::SerializeMode::kInterView}) {
      const Bytes packed = vs.compress(mode);
      std::printf("  %-10s %9.3f MB %7.2fx\n",
                  mode == lightfield::SerializeMode::kIntra ? "intra" : "inter-view",
                  static_cast<double>(packed.size()) / 1e6,
                  static_cast<double>(vs.pixel_bytes()) /
                      static_cast<double>(packed.size()));
    }
  }
  std::printf(
      "\nfinding: with per-view predictor filtering in place, naive inter-view\n"
      "difference coding is roughly a wash on parallax-rich content (residuals\n"
      "carry misaligned edges, and sensor-style noise doubles in differences);\n"
      "it only wins decisively when views are near-identical and larger than\n"
      "the LZ77 window. This matches the paper's choice of plain per-view zlib.\n");
  return 0;
}
