// lfz codec micro-benchmarks: compression/decompression throughput on
// view-set-like imagery, plus the predictor filters and LZ77 stages.
// These calibrate the decompression costs behind figure 8.
#include <benchmark/benchmark.h>

#include "compress/filters.hpp"
#include "compress/lfz.hpp"
#include "lightfield/procedural.hpp"

namespace {

using namespace lon;

Bytes sample_viewset_bytes(std::size_t resolution) {
  lightfield::LatticeConfig cfg;
  cfg.angular_step_deg = 15.0;
  cfg.view_set_span = 3;
  cfg.view_resolution = resolution;
  lightfield::ProceduralSource source(cfg);
  return source.build({1, 3}).serialize();
}

void BM_LfzCompress(benchmark::State& state) {
  const Bytes data = sample_viewset_bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(lfz::compress(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * data.size()));
}
BENCHMARK(BM_LfzCompress)->Arg(100)->Arg(200)->Unit(benchmark::kMillisecond);

void BM_LfzDecompress(benchmark::State& state) {
  const Bytes data = sample_viewset_bytes(static_cast<std::size_t>(state.range(0)));
  const Bytes packed = lfz::compress(data);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lfz::decompress(packed));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * data.size()));
  state.counters["ratio"] =
      static_cast<double>(data.size()) / static_cast<double>(packed.size());
}
BENCHMARK(BM_LfzDecompress)->Arg(100)->Arg(200)->Arg(400)->Unit(benchmark::kMillisecond);

void BM_FilterImage(benchmark::State& state) {
  const auto resolution = static_cast<std::size_t>(state.range(0));
  lightfield::LatticeConfig cfg;
  cfg.angular_step_deg = 15.0;
  cfg.view_set_span = 3;
  cfg.view_resolution = resolution;
  lightfield::ProceduralSource source(cfg);
  const auto image = source.render_sample(5, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lfz::filter_image(image.bytes(), resolution, resolution, 3));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * image.byte_size()));
}
BENCHMARK(BM_FilterImage)->Arg(200)->Arg(500)->Unit(benchmark::kMillisecond);

void BM_UnfilterImage(benchmark::State& state) {
  const auto resolution = static_cast<std::size_t>(state.range(0));
  lightfield::LatticeConfig cfg;
  cfg.angular_step_deg = 15.0;
  cfg.view_set_span = 3;
  cfg.view_resolution = resolution;
  lightfield::ProceduralSource source(cfg);
  const auto image = source.render_sample(5, 5);
  const Bytes filtered = lfz::filter_image(image.bytes(), resolution, resolution, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lfz::unfilter_image(filtered, resolution, resolution, 3));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * image.byte_size()));
}
BENCHMARK(BM_UnfilterImage)->Arg(200)->Arg(500)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
