// Section 4.1 prose: light-field database generation time.
//
// Paper: "Using 32 processors, the time needed to generate the light field
// database, including the compression step, ranges from 2 to 4.5 hours as
// the image resolution increases from 200x200 to 600x600. Most of the time
// spent is on disk I/O operations."
//
// Method: (a) wall-clock a real ray-cast + compress of sample views on this
// machine and extrapolate; (b) print the server agent's calibrated virtual
// cost model for the 32-processor cluster.
#include <chrono>
#include <cstdio>

#include "bench_common.hpp"
#include "lightfield/builder.hpp"
#include "lightfield/procedural.hpp"
#include "streaming/server_agent.hpp"
#include "volume/synthetic.hpp"

int main() {
  using namespace lon;
  bench::print_header("Section 4.1: database generation time",
                      "2 h (200^2) to 4.5 h (600^2) on 32 processors, I/O-bound");

  // (a) Real ray casting of the negHip-like 64^3 volume: render one sample
  // view per resolution and extrapolate to the 10368-view database.
  const auto volume = volume::make_neghip_like(64);
  std::printf("%-12s %16s %22s %22s\n", "resolution", "1 view (s)",
              "extrapolated 1 cpu", "modeled 32-proc cluster");
  for (const std::size_t resolution : {200u, 300u, 400u, 500u, 600u}) {
    lightfield::LatticeConfig cfg = lightfield::LatticeConfig::paper(resolution);
    lightfield::RaycastBuilder builder(volume, volume::TransferFunction::neghip_preset(),
                                       cfg, {}, 1);
    const auto start = std::chrono::steady_clock::now();
    const auto view = builder.render_sample(36, 72);
    const auto stop = std::chrono::steady_clock::now();
    const double view_s = std::chrono::duration<double>(stop - start).count();
    const double total_views = 72.0 * 144.0;
    const double one_cpu_hours = view_s * total_views / 3600.0;

    // (b) The virtual-time cost model used by the server agent (includes the
    // I/O term that dominates in the paper's measurements).
    sim::Simulator sim;
    sim::Network net(sim);
    ibp::Fabric fabric(sim, net);
    lors::Lors lors(sim, net, fabric);
    const auto node = net.add_node("server");
    const auto depot_node = net.add_node("depot");
    net.add_link(node, depot_node, {1e9, kMillisecond, 0.0});
    fabric.add_depot(depot_node, "d", {});
    auto source = std::make_shared<lightfield::ProceduralSource>(cfg);
    streaming::DvsServer dvs(sim, net, depot_node, source->lattice());
    streaming::ServerAgentConfig sa;
    sa.depots = {"d"};
    streaming::ServerAgent agent(sim, net, lors, dvs, node, source, sa);
    const double modeled_hours =
        to_seconds(agent.generation_cost()) * 288.0 / 3600.0;

    std::printf("%4zux%-7zu %13.3f s %18.2f h %18.2f h\n", resolution, resolution,
                view_s, one_cpu_hours, modeled_hours);
    (void)view;
  }
  std::printf("\n(model: render pixels/(procs*rate) + 1.2x pixel bytes of disk I/O;\n"
              " the paper attributes most of the cluster time to disk I/O)\n");
  return 0;
}
