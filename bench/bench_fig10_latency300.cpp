// Figure 10: latency as measured at the client, 300x300 resolution,
// cases 1/2/3.
//
// Paper: same shape as figure 9 with larger magnitudes (case 2 up to ~6 s);
// the case-3 initial phase is still a single access.
#include "latency_figure.hpp"

int main() {
  lon::bench::run_latency_figure(
      300, "Figure 10",
      "case2 up to ~6 s; case3 ~ case1 after an initial phase of ~1 access");
  return 0;
}
