// Figure 12: communication latency due to data access, as measured at the
// client agent, for resolutions 200/300/500 and cases 1/2/3 (log scale in
// the paper).
//
// Paper: three clean decades — hits ~1e-4 s; LAN-depot accesses ~1e-2..1e-1 s;
// WAN accesses ~1 s. During the case-3 initial phase, LAN-depot latency is
// inflated by staging traffic contending for the depot disks.
//
// Method: communication latency is independent of pixel content, so the
// databases here are size-calibrated filler and the client skips decoding —
// pure transfer behaviour at full paper scale.
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace lon;
  bench::print_header(
      "Figure 12: communication latency at the client agent (seconds, "
      "log-scale in the paper)",
      "hit ~1e-4 s; LAN depot ~1e-2..1e-1 s; WAN ~1 s");

  for (const std::size_t resolution : {200u, 300u, 500u}) {
    for (const session::Case which :
         {session::Case::kLanData, session::Case::kWanStreaming,
          session::Case::kWanWithLanDepot}) {
      session::ExperimentConfig cfg = bench::paper_config(resolution, which);
      cfg.all_filler = true;
      cfg.client.decode = false;
      cfg.client.timing = streaming::ClientConfig::Timing::kModeled;
      const session::ExperimentResult result = session::run_experiment(cfg);

      std::printf("\n# %zux%zu %s — comm seconds per access (class)\n", resolution,
                  resolution, session::to_string(which));
      for (std::size_t n = 0; n < result.accesses.size(); ++n) {
        std::printf("%zu\t%.3e\t%s\n", n + 1,
                    to_seconds(result.accesses[n].comm_latency),
                    streaming::to_string(result.accesses[n].cls));
      }
      std::printf("# mean comm: hit=%.2e s lan=%.2e s wan=%.2e s\n",
                  result.summary.mean_comm_hit_s, result.summary.mean_comm_lan_s,
                  result.summary.mean_comm_wan_s);
    }
  }
  return 0;
}
