// Extension bench: time-varying playback over the WAN.
//
// The paper's closing future work: "remote visualization systems for flow
// fields and time-varying simulations". A playback session advances through
// timesteps while the user holds (or slowly moves) the view angle; every
// frame advance needs the (frame, view-set) pair. This bench compares
// anticipation policies while a 24-frame animation plays across the paper's
// WAN:
//   none       — fetch each frame's view set when the player reaches it;
//   temporal   — also prefetch the same window N frames ahead (playback is
//                monotonic, so this is nearly always right).
// Reported: stalls (frame swaps slower than the frame budget) and mean swap
// latency.
#include <cstdio>
#include <optional>
#include <unordered_map>

#include "bench_common.hpp"
#include "lightfield/temporal.hpp"
#include "lors/lors.hpp"

namespace {

using namespace lon;
using lightfield::TemporalKey;
using lightfield::TemporalKeyHash;

struct Playback {
  sim::Simulator sim;
  sim::Network net{sim, 7};
  ibp::Fabric fabric{sim, net};
  lors::Lors lors{sim, net, fabric};
  sim::NodeId agent = 0;
  std::vector<std::string> depots;
  std::unordered_map<TemporalKey, exnode::ExNode, TemporalKeyHash> catalog;
  std::unordered_map<TemporalKey, Bytes, TemporalKeyHash> cache;
  std::unordered_map<TemporalKey, bool, TemporalKeyHash> inflight;
};

void fetch(Playback& pb, const TemporalKey& key, std::function<void()> on_done) {
  if (pb.cache.contains(key)) {
    if (on_done) pb.sim.after(100 * kMicrosecond, std::move(on_done));
    return;
  }
  if (pb.inflight[key]) {
    // Demand joining an in-flight prefetch: poll-free chaining via a retry.
    pb.sim.after(10 * kMillisecond, [&pb, key, cb = std::move(on_done)]() mutable {
      fetch(pb, key, std::move(cb));
    });
    return;
  }
  pb.inflight[key] = true;
  lors::DownloadOptions options;
  options.net.streams = 4;
  pb.lors.download_async(pb.agent, pb.catalog.at(key), options,
                         [&pb, key, cb = std::move(on_done)](lors::DownloadResult r) {
                           pb.inflight[key] = false;
                           if (r.status == lors::LorsStatus::kOk) {
                             pb.cache[key] = std::move(*r.data);
                           }
                           if (cb) cb();
                         });
}

void run_playback(int lookahead) {
  Playback pb;
  const sim::NodeId lan_switch = pb.net.add_node("lan");
  pb.agent = pb.net.add_node("agent");
  pb.net.add_link(pb.agent, lan_switch, {1e9, 50 * kMicrosecond, 0.0});
  const sim::NodeId wan = pb.net.add_node("wan");
  pb.net.add_link(lan_switch, wan, {100e6, 35 * kMillisecond, 0.05});
  for (int i = 0; i < 3; ++i) {
    const std::string name = "ca-" + std::to_string(i);
    const sim::NodeId node = pb.net.add_node(name);
    pb.net.add_link(node, wan, {1e9, kMillisecond, 0.0});
    ibp::DepotConfig cfg;
    cfg.capacity_bytes = 8ull << 30;
    pb.fabric.add_depot(node, name, cfg);
    pb.depots.push_back(name);
  }
  const sim::NodeId server = pb.net.add_node("server");
  pb.net.add_link(server, wan, {1e9, kMillisecond, 0.0});

  // A 24-frame animation; the user parks on one view window, so only that
  // window needs publishing per frame.
  lightfield::LatticeConfig lattice_cfg;
  lattice_cfg.angular_step_deg = 15.0;
  lattice_cfg.view_set_span = 3;
  lattice_cfg.view_resolution = 200;
  constexpr std::size_t kFrames = 24;
  lightfield::TemporalSource source(lattice_cfg, kFrames);
  const lightfield::ViewSetId window{1, 3};

  for (std::size_t t = 0; t < kFrames; ++t) {
    const TemporalKey key{t, window};
    Bytes compressed = source.build_compressed(key);
    lors::UploadOptions up;
    up.depots = pb.depots;
    up.net.streams = 8;
    pb.lors.upload_async(server, std::move(compressed), up,
                         [&pb, key](const lors::UploadResult& r) {
                           if (r.status == lors::LorsStatus::kOk) {
                             pb.catalog[key] = r.exnode;
                           }
                         });
  }
  pb.sim.run();

  // Play: each frame has a budget; swaps longer than the budget are stalls.
  const SimDuration frame_budget = 125 * kMillisecond;  // 8 frames/s playback
  std::size_t stalls = 0;
  double total_swap = 0.0, worst = 0.0;
  std::size_t frame = 0;
  bool done = false;
  std::function<void()> advance = [&] {
    if (frame >= kFrames) {
      done = true;
      return;
    }
    const TemporalKey key{frame, window};
    const SimTime start = pb.sim.now();
    fetch(pb, key, [&, start] {
      const double swap = to_seconds(pb.sim.now() - start);
      total_swap += swap;
      worst = std::max(worst, swap);
      if (from_seconds(swap) > frame_budget) ++stalls;
      // Temporal prefetch of the frames ahead.
      for (int dt = 1; dt <= lookahead; ++dt) {
        const std::size_t next = frame + static_cast<std::size_t>(dt);
        if (next < kFrames) fetch(pb, TemporalKey{next, window}, nullptr);
      }
      ++frame;
      pb.sim.after(frame_budget, advance);
    });
  };
  advance();
  while (!done && pb.sim.step()) {
  }

  std::printf("%9d %10zu %12.3f %12.3f\n", lookahead, stalls,
              total_swap / static_cast<double>(kFrames), worst);
}

}  // namespace

int main() {
  bench::print_header(
      "Extension: time-varying playback over the WAN (24 frames, 8 fps)",
      "future work in the paper; temporal prefetch should hide frame swaps");
  std::printf("%9s %10s %12s %12s\n", "lookahead", "stalls", "mean swap", "worst swap");
  for (const int lookahead : {0, 1, 2, 4}) run_playback(lookahead);
  std::printf("\n(lookahead 0 pays a WAN fetch every frame; small lookahead\n"
              " pipelines transfers behind the playback clock)\n");
  return 0;
}
