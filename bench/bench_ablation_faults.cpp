// Ablation: browsing under depot failures — what each self-healing layer buys.
//
// The paper's WAN streaming runs assume depots stay up; IBP's service model
// does not ("it may be necessary to assume that storage can be permanently
// lost"). This bench injects periodic depot crashes at increasing rates into
// the case-2 configuration (every access exercises the WAN) and compares
// delivery with the recovery machinery off and on: per-operation deadlines
// plus replica failover only, + download retry rounds with backoff, + the
// publisher's periodic repair sweeps that re-replicate extents stranded on
// crashed depots.
#include <cctype>
#include <cstdio>
#include <string>

#include "bench_common.hpp"

namespace {

using namespace lon;

/// Crashes per minute spread round-robin over the three WAN depots, each
/// depot down for 12 s at a time, scheduled across the first two minutes.
fault::FaultPlan crash_plan(double per_minute) {
  fault::FaultPlan plan;
  if (per_minute <= 0) return plan;
  const auto period = static_cast<SimDuration>(60.0 / per_minute * kSecond);
  int k = 0;
  for (SimTime at = 5 * kSecond; at < 120 * kSecond; at += period, ++k) {
    plan.crashes.push_back({.depot = "ca-" + std::to_string(k % 3),
                            .at = at,
                            .restart_after = 12 * kSecond});
  }
  return plan;
}

session::ExperimentConfig base(double crashes_per_minute) {
  session::ExperimentConfig cfg =
      bench::small_config(300, session::Case::kWanStreaming);
  cfg.accesses = 30;
  cfg.publish_replicas = 2;  // a lone replica set cannot survive any crash
  cfg.timeouts = {.control = 500 * kMillisecond, .data = 5 * kSecond};
  cfg.faults = crash_plan(crashes_per_minute);
  return cfg;
}

void report(const char* label, double rate, const session::ExperimentResult& r) {
  std::string slug = "faults-" + std::string(label) + "-" + std::to_string(rate);
  for (char& c : slug) {
    if (std::isalnum(static_cast<unsigned char>(c)) == 0 && c != '.') c = '-';
  }
  bench::write_observability(r, slug);
  const double duration_s = to_seconds(r.script_duration);
  const double frame_rate =
      duration_s > 0 ? static_cast<double>(r.summary.total) / duration_s : 0.0;
  std::printf("%-26s %6.1f %9.3f %9.3f %9.3f %7zu %5llu %5llu %5llu %5llu\n",
              label, rate, frame_rate, r.summary.mean_total_s,
              r.summary.mean_comm_wan_s, r.failed_accesses,
              static_cast<unsigned long long>(r.robustness.timeouts),
              static_cast<unsigned long long>(r.robustness.failovers),
              static_cast<unsigned long long>(r.robustness.retries),
              static_cast<unsigned long long>(r.robustness.replicas_repaired));
}

}  // namespace

/// Two depots die for good, 50 s apart. The placement rule puts both
/// replicas of a third of the blocks on exactly that pair, so without repair
/// the second death strands them; with sweeps running, the first death is
/// already re-replicated onto the survivors by the time the second lands.
fault::FaultPlan permanent_loss_plan() {
  fault::FaultPlan plan;
  plan.crashes.push_back({.depot = "ca-0", .at = 10 * kSecond, .restart_after = 0});
  plan.crashes.push_back({.depot = "ca-1", .at = 60 * kSecond, .restart_after = 0});
  return plan;
}

int main() {
  bench::print_header(
      "Ablation: delivery under depot crashes (case 2 + fault injection)",
      "not in the paper — IBP assumes depots fail; deadlines + failover keep "
      "misses bounded, retry rides out crash windows, repair restores "
      "replication so later crashes find spares");

  std::printf("%-26s %6s %9s %9s %9s %7s %5s %5s %5s %5s\n", "variant",
              "cr/min", "views/s", "mean", "wan-comm", "failed", "tmo", "fo",
              "rtry", "repd");

  report("fault-free baseline", 0.0, session::run_experiment(base(0.0)));

  for (const double rate : {2.0, 6.0}) {
    {
      session::ExperimentConfig cfg = base(rate);
      report("failover only", rate, session::run_experiment(cfg));
    }
    {
      session::ExperimentConfig cfg = base(rate);
      cfg.retry.max_attempts = 4;
      cfg.retry.base_backoff = 250 * kMillisecond;
      report("+ retry", rate, session::run_experiment(cfg));
    }
    {
      session::ExperimentConfig cfg = base(rate);
      cfg.retry.max_attempts = 4;
      cfg.retry.base_backoff = 250 * kMillisecond;
      cfg.repair_interval = 5 * kSecond;
      cfg.repair_batch = 8;
      report("+ retry + repair", rate, session::run_experiment(cfg));
    }
  }

  std::printf("--- two permanent depot losses, 50 s apart ---\n");
  {
    session::ExperimentConfig cfg = base(0.0);
    cfg.faults = permanent_loss_plan();
    cfg.retry.max_attempts = 4;
    cfg.retry.base_backoff = 250 * kMillisecond;
    report("loss, no repair", 0.0, session::run_experiment(cfg));
  }
  {
    session::ExperimentConfig cfg = base(0.0);
    cfg.faults = permanent_loss_plan();
    cfg.retry.max_attempts = 4;
    cfg.retry.base_backoff = 250 * kMillisecond;
    cfg.repair_interval = 5 * kSecond;
    cfg.repair_batch = 8;
    report("loss, repair sweeps", 0.0, session::run_experiment(cfg));
  }
  return 0;
}
