// Shared driver for figures 9-11: client-observed latency per view-set
// access for cases 1/2/3 at one sample-view resolution.
#pragma once

#include <cstdio>

#include "bench_common.hpp"
#include "session/metrics.hpp"

namespace lon::bench {

inline void run_latency_figure(std::size_t resolution, const char* figure,
                               const char* paper_claim) {
  print_header(std::string(figure) + ": client latency per access at " +
                   std::to_string(resolution) + "x" + std::to_string(resolution),
               paper_claim);

  for (const session::Case which :
       {session::Case::kLanData, session::Case::kWanStreaming,
        session::Case::kWanWithLanDepot}) {
    session::ExperimentConfig cfg = paper_config(resolution, which);
    const session::ExperimentResult result = session::run_experiment(cfg);
    write_observability(result, std::string(figure) + "-" + session::to_string(which));

    std::printf("\n# %s — seconds per access\n", session::to_string(which));
    for (std::size_t n = 0; n < result.accesses.size(); ++n) {
      std::printf("%zu\t%.4f\n", n + 1, to_seconds(result.accesses[n].total()));
    }
    std::printf("# summary: ");
    std::printf(
        "mean=%.3fs phase2_mean=%.3fs max=%.3fs initial_phase=%zu "
        "wan_rate_initial=%.2f hit_rate_initial=%.2f hits=%zu lan=%zu wan=%zu "
        "staged=%zu\n",
        result.summary.mean_total_s, result.summary.mean_total_phase2_s,
        result.summary.max_total_s, result.summary.initial_phase,
        result.summary.wan_rate_initial, result.summary.hit_rate_initial,
        result.summary.hits, result.summary.lan, result.summary.wan,
        result.staged_at_end);
  }
}

}  // namespace lon::bench
