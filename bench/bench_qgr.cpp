// The Quality Guaranteed Rate (paper section 4.2).
//
// "When prefetching and client agent caching are enabled, latencies to
// obtain a new view set from a server depot could be hidden from the client,
// provided that the user movement is sufficiently slow. We refer to such
// sufficiently slow rate of user movement as Quality Guaranteed Rate (QGR).
// The QGR of case 2 ... is significantly slower than the QGR's in case 1
// and 3."
//
// This bench makes the QGR concrete: for each case it sweeps the user's
// dwell time downward and reports the fraction of accesses that stayed
// "smooth" (served within a quality threshold), plus the slowest dwell at
// which 95% of accesses are smooth — lower is a faster permissible user.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"

namespace {

using namespace lon;

double smooth_fraction(const session::ExperimentResult& result, double threshold_s) {
  std::size_t smooth = 0;
  for (const auto& a : result.accesses) {
    if (to_seconds(a.total()) <= threshold_s) ++smooth;
  }
  return static_cast<double>(smooth) / static_cast<double>(result.accesses.size());
}

}  // namespace

int main() {
  bench::print_header(
      "Section 4.2: Quality Guaranteed Rate (QGR)",
      "case 2's QGR is significantly slower than cases 1 and 3");

  constexpr double kThresholdSeconds = 0.25;  // "smooth" view-set swap budget
  const std::vector<double> dwells = {4.0, 1.0, 0.25, 0.1};

  std::printf("smooth = fraction of accesses delivered within %.2f s\n\n",
              kThresholdSeconds);
  std::printf("%-26s", "dwell between moves (s):");
  for (const double d : dwells) std::printf(" %8.2f", d);
  std::printf("   QGR dwell\n");

  for (const session::Case which :
       {session::Case::kLanData, session::Case::kWanStreaming,
        session::Case::kWanWithLanDepot}) {
    std::printf("%-26s", session::to_string(which));
    double qgr = -1.0;
    for (const double dwell : dwells) {
      session::ExperimentConfig cfg = bench::small_config(200, which);
      cfg.wan_bandwidth_bps = 50e6;
      cfg.dwell = from_seconds(dwell);
      const auto result = session::run_experiment(cfg);
      const double smooth = smooth_fraction(result, kThresholdSeconds);
      if (smooth >= 0.95) qgr = dwell;  // slowest-to-fastest order: keep last
      std::printf(" %8.2f", smooth);
    }
    if (qgr > 0) {
      std::printf("   <= %.2f s\n", qgr);
    } else {
      std::printf("   > %.2f s\n", dwells.front());
    }
  }
  std::printf("\n(the QGR dwell is the fastest tested movement rate at which >=95%%\n"
              " of view-set swaps stay smooth; smaller is better)\n");
  return 0;
}
