// Policy bench: prefetch scheduling and cache replacement head-to-head.
//
// Replays deterministic scripted cursor walks (smooth pan, reversal,
// teleport, figure-12-style browse) through case 2 — the WAN-streaming
// configuration where prefetch quality is the whole game — once per policy,
// and reports the demand hit rate, wasted-prefetch bytes and p99 demand
// latency for each. The virtual-time results are exactly reproducible, so
// ci/perf_gate.py gates on them:
//
//   * predictive must beat the paper's quadrant policy on the smooth-pan
//     and reversal walks (that is what the motion model buys);
//   * wasted-prefetch bytes stay bounded against the committed baseline;
//   * demand p99 must not regress.
//
// A second block compares eviction policies under a cache small enough to
// thrash: hybrid must protect the demand working set from prefetch
// pollution that plain LRU lets through.
//
// Flags:
//   --smoke   smaller configuration for the CI perf gate (fast, deterministic)
//   --json    machine-readable output (one JSON object) for ci/perf_gate.py
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "session/experiment.hpp"

namespace {

using namespace lon;

struct Scenario {
  std::string script;                ///< smooth_pan | reversal | teleport | browse
  policy::PrefetchStrategy strategy = policy::PrefetchStrategy::kQuadrant;
  policy::EvictionStrategy eviction = policy::EvictionStrategy::kLru;
  std::uint64_t cache_bytes = 512ull << 20;  ///< small = the eviction stress rows
};

struct Row {
  Scenario scenario;
  std::size_t accesses = 0;
  double hit_rate = 0.0;
  double mean_s = 0.0;
  double p99_s = 0.0;
  std::uint64_t predictions = 0;
  std::uint64_t prefetches = 0;
  std::uint64_t prefetch_bytes = 0;
  std::uint64_t useful_bytes = 0;
  std::uint64_t wasted_bytes = 0;
  std::uint64_t pollution_evictions = 0;
  std::uint64_t rejected_prefetch = 0;
  std::size_t failed = 0;
};

session::CursorScript make_script(const lightfield::SphericalLattice& lattice,
                                  const std::string& name, SimDuration dwell,
                                  bool smoke) {
  using session::CursorScript;
  // Scale the walks with the lattice: one lap of the view-set ring for the
  // pans so every demand fetch is a first visit.
  const auto ring = lattice.view_set_cols();
  if (name == "smooth_pan") return CursorScript::smooth_pan(lattice, dwell, ring);
  if (name == "reversal")
    return CursorScript::reversal(lattice, dwell, ring / 2);
  if (name == "teleport")
    return CursorScript::teleport(lattice, dwell, ring / 2 - 1, 4, smoke ? 2 : 3);
  // "browse": the paper's figure-12 style orchestrated walk.
  return CursorScript::standard(lattice, dwell, smoke ? 24 : 58);
}

Row run_scenario(const Scenario& s, bool smoke) {
  // Case 2: WAN database, no LAN prestaging — every miss pays the trunk.
  session::ExperimentConfig cfg =
      smoke ? bench::small_config(200, session::Case::kWanStreaming)
            : bench::paper_config(200, session::Case::kWanStreaming);

  // Communication-latency study over filler content: transfer shape is
  // faithful, clients skip decode, results are deterministic virtual time.
  cfg.all_filler = true;
  cfg.client.decode = false;
  cfg.client.timing = streaming::ClientConfig::Timing::kModeled;

  // The user moves fast enough that the quadrant policy's half-set lead
  // time loses the race against the ~100 ms WAN fetch, while a trajectory
  // extrapolated two sets ahead wins it.
  const SimDuration dwell = 35 * kMillisecond;
  cfg.dwell = dwell;

  cfg.prefetch_strategy = s.strategy;
  cfg.eviction = s.eviction;
  cfg.agent_cache_bytes = s.cache_bytes;
  // Give the predictive scheduler an explicit budget so the bench also
  // exercises the inflight cap; quadrant issues at most 3 anyway.
  cfg.prefetch_max_inflight = 4;

  lightfield::SphericalLattice lattice(cfg.lattice);
  cfg.script = make_script(lattice, s.script, dwell, smoke);

  const session::ExperimentResult result = session::run_experiment(cfg);

  Row row;
  row.scenario = s;
  row.accesses = result.accesses.size();
  row.failed = result.failed_accesses;
  row.mean_s = result.summary.mean_total_s;

  std::vector<double> totals;
  totals.reserve(result.accesses.size());
  for (const auto& rec : result.accesses) totals.push_back(to_seconds(rec.total()));
  std::sort(totals.begin(), totals.end());
  if (!totals.empty())
    row.p99_s = totals[(totals.size() - 1) * 99 / 100];

  const auto& stats = result.agent_stats;
  row.hit_rate = stats.requests > 0 ? static_cast<double>(stats.hits) /
                                          static_cast<double>(stats.requests)
                                    : 0.0;
  row.predictions = stats.predictions;
  row.prefetches = stats.prefetches;
  row.pollution_evictions = stats.pollution_evictions;
  row.rejected_prefetch = stats.rejected_prefetch;
  const auto& reg = result.obs->metrics;
  row.prefetch_bytes = reg.counter_total("prefetch.bytes");
  row.useful_bytes = reg.counter_total("prefetch.useful_bytes");
  row.wasted_bytes = row.prefetch_bytes - std::min(row.useful_bytes, row.prefetch_bytes);
  return row;
}

const char* eviction_label(policy::EvictionStrategy e) { return policy::to_string(e); }

std::string row_name(const Row& r) {
  return r.scenario.script + "/" + policy::to_string(r.scenario.strategy) +
         (r.scenario.cache_bytes < (512ull << 20)
              ? std::string("/") + eviction_label(r.scenario.eviction)
              : std::string());
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--json") == 0) json = true;
  }

  std::vector<Scenario> scenarios;
  // Prefetch policy head-to-head on every scripted walk, roomy cache.
  for (const char* script : {"smooth_pan", "reversal", "teleport", "browse"}) {
    for (const auto strategy :
         {policy::PrefetchStrategy::kQuadrant, policy::PrefetchStrategy::kPredictive}) {
      scenarios.push_back(Scenario{script, strategy,
                                   policy::EvictionStrategy::kLru, 512ull << 20});
    }
  }
  // Eviction stress: cache sized for ~6 filler view sets, predictive
  // prefetch pressure — does the policy protect the demand working set?
  const std::uint64_t tight = 1ull << 20;
  for (const auto eviction :
       {policy::EvictionStrategy::kLru, policy::EvictionStrategy::kHybrid}) {
    scenarios.push_back(Scenario{"reversal", policy::PrefetchStrategy::kPredictive,
                                 eviction, tight});
  }

  std::vector<Row> rows;
  rows.reserve(scenarios.size());
  for (const Scenario& s : scenarios) rows.push_back(run_scenario(s, smoke));

  if (json) {
    std::printf("{\"bench\":\"prefetch\",\"mode\":\"%s\",\"results\":[",
                smoke ? "smoke" : "full");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::printf(
          "%s{\"name\":\"%s\",\"script\":\"%s\",\"policy\":\"%s\","
          "\"eviction\":\"%s\",\"accesses\":%zu,\"hit_rate\":%.4f,"
          "\"mean_s\":%.6f,\"p99_s\":%.6f,\"predictions\":%llu,"
          "\"prefetches\":%llu,\"prefetch_bytes\":%llu,\"useful_bytes\":%llu,"
          "\"wasted_bytes\":%llu,\"pollution_evictions\":%llu,"
          "\"rejected_prefetch\":%llu,\"failed\":%zu}",
          i == 0 ? "" : ",", row_name(r).c_str(), r.scenario.script.c_str(),
          policy::to_string(r.scenario.strategy),
          eviction_label(r.scenario.eviction), r.accesses, r.hit_rate, r.mean_s,
          r.p99_s, static_cast<unsigned long long>(r.predictions),
          static_cast<unsigned long long>(r.prefetches),
          static_cast<unsigned long long>(r.prefetch_bytes),
          static_cast<unsigned long long>(r.useful_bytes),
          static_cast<unsigned long long>(r.wasted_bytes),
          static_cast<unsigned long long>(r.pollution_evictions),
          static_cast<unsigned long long>(r.rejected_prefetch), r.failed);
    }
    std::printf("]}\n");
    return 0;
  }

  lon::bench::print_header(
      "Policy engine: prefetch scheduling and cache replacement (case 2)",
      "section 3.4's quadrant prefetch vs a trajectory-extrapolating scheduler");
  std::printf("%-34s %9s %9s %10s %10s %12s %8s %7s\n", "scenario", "accesses",
              "hit-rate", "mean (s)", "p99 (s)", "wasted (B)", "rejected",
              "failed");
  for (const Row& r : rows) {
    std::printf("%-34s %9zu %9.3f %10.4f %10.4f %12llu %8llu %7zu\n",
                row_name(r).c_str(), r.accesses, r.hit_rate, r.mean_s, r.p99_s,
                static_cast<unsigned long long>(r.wasted_bytes),
                static_cast<unsigned long long>(r.rejected_prefetch), r.failed);
  }
  return 0;
}
