// Section 4.2 prose: client-side rendering frame rate.
//
// Paper: "After a view set is decompressed, it can be rendered at above 30
// frames per second on the client console due to the simplistic nature of
// light field rendering algorithms. Such frame rates remain above 30 frames
// per second even at large image resolutions of 500x500."
//
// google-benchmark over the lookup-based novel-view renderer; the counter
// reports frames/second.
#include <benchmark/benchmark.h>

#include "lightfield/procedural.hpp"
#include "lightfield/renderer.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace lon;

lightfield::LatticeConfig bench_config(std::size_t resolution) {
  lightfield::LatticeConfig cfg = lightfield::LatticeConfig::paper(resolution);
  return cfg;
}

void BM_NovelViewSynthesis(benchmark::State& state) {
  const auto resolution = static_cast<std::size_t>(state.range(0));
  const lightfield::LatticeConfig cfg = bench_config(resolution);
  lightfield::ProceduralSource source(cfg);
  lightfield::Renderer renderer(cfg);
  renderer.add_view_set(source.build({6, 12}));

  // A direction strictly inside view set (6,12): interpolation uses four
  // resident samples.
  const auto& lattice = source.lattice();
  const Spherical a = lattice.sample_direction(38, 74);
  const Spherical b = lattice.sample_direction(39, 75);
  double t = 0.25;
  for (auto _ : state) {
    const Spherical dir{a.theta + t * (b.theta - a.theta),
                        a.phi + t * (b.phi - a.phi)};
    benchmark::DoNotOptimize(renderer.render(dir, resolution));
    t = t < 0.7 ? t + 0.01 : 0.25;  // wander like a user would
  }
  state.counters["fps"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_NovelViewSynthesis)->Arg(200)->Arg(300)->Arg(500)
    ->Unit(benchmark::kMillisecond);

void BM_NovelViewSynthesisPooled(benchmark::State& state) {
  // Same synthesis, output rows interpolated across the shared worker pool
  // (pixels are identical to the serial path). The fps ratio against
  // BM_NovelViewSynthesis is the single-client render speedup the perf gate
  // checks on multi-core runners.
  const auto resolution = static_cast<std::size_t>(state.range(0));
  const lightfield::LatticeConfig cfg = bench_config(resolution);
  lightfield::ProceduralSource source(cfg);
  lightfield::Renderer renderer(cfg);
  renderer.add_view_set(source.build({6, 12}));
  ThreadPool& pool = ThreadPool::shared();

  const auto& lattice = source.lattice();
  const Spherical a = lattice.sample_direction(38, 74);
  const Spherical b = lattice.sample_direction(39, 75);
  double t = 0.25;
  for (auto _ : state) {
    const Spherical dir{a.theta + t * (b.theta - a.theta),
                        a.phi + t * (b.phi - a.phi)};
    benchmark::DoNotOptimize(renderer.render(dir, resolution, 1.0, &pool));
    t = t < 0.7 ? t + 0.01 : 0.25;
  }
  state.counters["fps"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
  state.counters["threads_used"] = static_cast<double>(pool.size());
}
BENCHMARK(BM_NovelViewSynthesisPooled)->Arg(200)->Arg(300)->Arg(500)
    ->Unit(benchmark::kMillisecond);

void BM_RenderAtExactSample(benchmark::State& state) {
  // Rendering exactly at a lattice sample degenerates to (nearly) one
  // bilinear fetch per pixel — the cheapest path.
  const auto resolution = static_cast<std::size_t>(state.range(0));
  const lightfield::LatticeConfig cfg = bench_config(resolution);
  lightfield::ProceduralSource source(cfg);
  lightfield::Renderer renderer(cfg);
  renderer.add_view_set(source.build({6, 12}));
  const Spherical dir = source.lattice().sample_direction(38, 74);
  for (auto _ : state) {
    benchmark::DoNotOptimize(renderer.render(dir, resolution));
  }
  state.counters["fps"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_RenderAtExactSample)->Arg(200)->Arg(500)->Unit(benchmark::kMillisecond);

void BM_DigitalZoom(benchmark::State& state) {
  const std::size_t resolution = 300;
  const lightfield::LatticeConfig cfg = bench_config(resolution);
  lightfield::ProceduralSource source(cfg);
  lightfield::Renderer renderer(cfg);
  renderer.add_view_set(source.build({6, 12}));
  const Spherical dir = source.lattice().sample_direction(38, 74);
  for (auto _ : state) {
    benchmark::DoNotOptimize(renderer.render(dir, resolution, 2.0));
  }
  state.counters["fps"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DigitalZoom)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
