// Ablation: aggressive two-stage prestaging (paper figure 5 and section 4.3).
//
// Case 3 sweeps: staging order (cursor-proximity vs FIFO), staging
// concurrency, and the paper's suggested improvement of suppressing staging
// while a demand miss is in flight.
#include <cstdio>

#include "bench_common.hpp"

namespace {

void report(const char* label, const lon::session::ExperimentResult& result) {
  std::printf("%-34s %10.3f s %10.3f s %7zu %8.2f %6zu\n", label,
              result.summary.mean_total_s, result.summary.mean_total_phase2_s,
              result.summary.initial_phase, result.summary.wan_rate_initial,
              result.staged_at_end);
}

}  // namespace

int main() {
  using namespace lon;
  bench::print_header("Ablation: aggressive prestaging design choices (case 3)",
                      "proximity order shortens the initial phase; pausing "
                      "staging on miss trades staging progress for miss speed");

  std::printf("%-34s %12s %12s %8s %8s %7s\n", "variant", "mean", "phase2-mean",
              "phase", "wan-rate", "staged");

  // A mid-scale configuration where staging the whole database takes a
  // sizeable fraction of the session, so the initial phase is visible:
  // 8x16 = 128 view sets, 300^2 views, 8 Mb/s WAN (the 500^2-over-100Mb/s
  // regime of figure 11, scaled down).
  auto base = [] {
    session::ExperimentConfig cfg =
        bench::small_config(300, session::Case::kWanWithLanDepot);
    cfg.lattice.angular_step_deg = 7.5;
    cfg.accesses = 40;
    cfg.wan_bandwidth_bps = 8e6;
    return cfg;
  };

  {
    session::ExperimentConfig cfg = base();
    report("proximity order (paper)", session::run_experiment(cfg));
  }
  {
    session::ExperimentConfig cfg = base();
    cfg.staging_order = streaming::ClientAgentConfig::StagingOrder::kFifo;
    report("fifo order", session::run_experiment(cfg));
  }
  {
    session::ExperimentConfig cfg = base();
    cfg.pause_staging_on_miss = true;
    report("pause staging on miss", session::run_experiment(cfg));
  }
  for (const int concurrency : {1, 2, 8}) {
    session::ExperimentConfig cfg = base();
    cfg.staging_concurrency = concurrency;
    char label[64];
    std::snprintf(label, sizeof label, "staging concurrency %d", concurrency);
    report(label, session::run_experiment(cfg));
  }
  {
    session::ExperimentConfig cfg = base();
    cfg.which = session::Case::kWanStreaming;  // no staging at all
    report("no staging (case 2 baseline)", session::run_experiment(cfg));
  }
  return 0;
}
