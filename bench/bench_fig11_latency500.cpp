// Figure 11: latency as measured at the client, 500x500 resolution,
// cases 1/2/3 — the hard case.
//
// Paper: case 2 reaches ~12 s; the case-3 initial phase stretches to 33
// accesses, during which WAN access rate is 28% (vs 69% in case 2) and hit
// rate 33% (vs 28%); after the phase, case 3 matches case 1.
#include "latency_figure.hpp"

int main() {
  lon::bench::run_latency_figure(
      500, "Figure 11",
      "case2 up to ~12 s; case3 initial phase lasts tens of accesses "
      "(paper: 33), wan_rate_initial ~0.28 vs case2 ~0.69, then local-grade");
  return 0;
}
