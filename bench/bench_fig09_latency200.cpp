// Figure 9: latency as measured at the client, 200x200 resolution,
// cases 1 (data in LAN), 2 (data in WAN) and 3 (WAN + LAN depot).
//
// Paper: overall latency 0.5-2.0 s in case 1 and in case 3 after an initial
// phase of a *single* access; case 2 spikes to several seconds throughout.
#include "latency_figure.hpp"

int main() {
  lon::bench::run_latency_figure(
      200, "Figure 9",
      "case2 >> case1; case3 ~ case1 after an initial phase of ~1 access");
  return 0;
}
