// Extension bench: scalability in the number of users.
//
// The paper's future work: "systematic testing of the scalability of our
// system, both in terms of the number of users and the complexity of the
// visualization process", and section 3.5's claim that "a client agent can
// serve multiple clients, especially in a mobile environment".
//
// N clients share one client agent (case 3: WAN database + LAN staging) via
// session::run_multi_client; each browses its own orchestrated path. As N
// grows, the shared agent cache and the prestaged LAN replicas absorb more
// of the load; per-client latency should degrade sub-linearly. Per-client
// p50/p99 come from each client's own obs histogram.
//
// Flags:
//   --smoke   smaller configuration for the CI perf gate (fast, deterministic)
//   --json    machine-readable output (one JSON object) for ci/perf_gate.py
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "session/experiment.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace lon;

struct Row {
  int users = 0;
  std::size_t accesses = 0;
  double mean_total_s = 0.0;
  double p99_worst_s = 0.0;   ///< worst per-client p99
  double p99_mean_s = 0.0;    ///< mean of per-client p99s
  double hit_rate = 0.0;
  std::uint64_t lan = 0;
  std::uint64_t wan = 0;
  double virtual_duration_s = 0.0;
  std::size_t failed = 0;
  bool admission = false;     ///< overload protection on (the large-N rows)
  double p99_vs_1user = 0.0;  ///< p99-mean degradation relative to the 1-user row

  // Scheduler/reallocator cost (deterministic except wall_s/events_per_sec).
  std::size_t min_delivered = 0;       ///< worst-off client's deliveries
  std::uint64_t demand_shed = 0;       ///< admission-refused demand requests
  std::uint64_t sim_events = 0;        ///< events executed
  std::uint64_t reallocs = 0;          ///< max-min solves run
  std::uint64_t realloc_flows_touched = 0;  ///< flows re-rated, summed
  double wall_s = 0.0;                 ///< host wall-clock (informational)
  double events_per_sec = 0.0;         ///< sim_events / wall_s
};

Row run_users(int n_clients, std::size_t accesses_per_client, bool admission = false) {
  session::MultiClientConfig mc;
  mc.clients = n_clients;
  mc.accesses_per_client = accesses_per_client;
  mc.client_seed = 100;
  // The large-N rows run with overload protection on: at crowd scale the
  // unprotected configuration is exactly the collapse bench_scenarios
  // demonstrates, while the protected one should keep p99 degradation flat.
  if (admission) {
    mc.base.admission.enabled = true;
    mc.base.admission.max_queue = 8;
    mc.base.admission.tokens_per_sec = 2.0;
    mc.base.admission.token_burst = 4.0;
    mc.base.admission.deadline_triage = false;
    mc.base.client.shed_retry.max_attempts = 8;
    mc.base.client.shed_retry.base_backoff = 250 * kMillisecond;
  }

  // Latency study over a filler database: transfer/staging shape is
  // faithful, clients skip decode. Virtual-time results are deterministic.
  lightfield::LatticeConfig lattice;
  lattice.angular_step_deg = 7.5;  // 8x16 = 128 view sets
  lattice.view_set_span = 3;
  lattice.view_resolution = 200;
  mc.base.lattice = lattice;
  mc.base.which = session::Case::kWanWithLanDepot;
  mc.base.all_filler = true;
  mc.base.client.decode = false;
  mc.base.client.timing = streaming::ClientConfig::Timing::kModeled;
  // The shared pool carries stripe verification; virtual results are
  // identical with or without it (the bench doubles as a determinism check).
  mc.base.pool = &ThreadPool::shared();

  const session::MultiClientResult result = session::run_multi_client(mc);

  Row row;
  row.users = n_clients;
  row.admission = admission;
  row.virtual_duration_s = to_seconds(result.script_duration);
  row.failed = result.failed_accesses;
  double total_latency = 0.0;
  double p99_sum = 0.0;
  for (const auto& pc : result.clients) {
    row.accesses += pc.accesses.size();
    total_latency += pc.summary.mean_total_s * static_cast<double>(pc.accesses.size());
    row.p99_worst_s = std::max(row.p99_worst_s, pc.p99_total_s);
    p99_sum += pc.p99_total_s;
  }
  row.mean_total_s =
      row.accesses > 0 ? total_latency / static_cast<double>(row.accesses) : 0.0;
  row.p99_mean_s = p99_sum / static_cast<double>(result.clients.size());
  const auto& stats = result.agent_stats;
  row.hit_rate = stats.requests > 0
                     ? static_cast<double>(stats.hits) / static_cast<double>(stats.requests)
                     : 0.0;
  row.lan = stats.lan_accesses;
  row.wan = stats.wan_accesses;
  row.min_delivered = result.min_client_delivered;
  row.demand_shed = stats.demand_shed;
  row.sim_events = result.sim_events;
  row.reallocs = result.net_reallocs;
  row.realloc_flows_touched = result.net_realloc_flows_touched;
  row.wall_s = result.wall_s;
  row.events_per_sec =
      result.wall_s > 0.0 ? static_cast<double>(result.sim_events) / result.wall_s : 0.0;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--json") == 0) json = true;
  }

  const std::vector<int> user_counts = smoke ? std::vector<int>{1, 4, 8}
                                             : std::vector<int>{1, 2, 4, 8};
  const std::size_t accesses = smoke ? 8 : 25;
  // Crowd-scale row: far past the paper's "multiple clients", with overload
  // protection on. Runs with fewer accesses per client so the full run stays
  // tractable; p99 degradation vs. the 1-user row is the reported figure.
  const int crowd_users = smoke ? 100 : 1000;
  const std::size_t crowd_accesses = smoke ? 6 : 8;

  std::vector<Row> rows;
  rows.reserve(user_counts.size() + 1);
  for (const int n : user_counts) rows.push_back(run_users(n, accesses));
  rows.push_back(run_users(crowd_users, crowd_accesses, /*admission=*/true));

  // p99-mean degradation relative to the single-user row.
  const double base_p99 = rows.front().p99_mean_s;
  for (Row& r : rows) {
    r.p99_vs_1user = base_p99 > 0.0 ? r.p99_mean_s / base_p99 : 0.0;
  }

  if (json) {
    std::printf("{\"bench\":\"scalability_users\",\"mode\":\"%s\",\"results\":[",
                smoke ? "smoke" : "full");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::printf(
          "%s{\"users\":%d,\"accesses\":%zu,\"mean_total_s\":%.6f,"
          "\"p99_worst_s\":%.6f,\"p99_mean_s\":%.6f,\"hit_rate\":%.4f,"
          "\"lan\":%llu,\"wan\":%llu,\"virtual_duration_s\":%.3f,\"failed\":%zu,"
          "\"admission\":%s,\"p99_vs_1user\":%.4f,"
          "\"min_delivered\":%zu,\"demand_shed\":%llu,\"sim_events\":%llu,"
          "\"reallocs\":%llu,\"realloc_flows_touched\":%llu,"
          "\"wall_s\":%.3f,\"events_per_sec\":%.0f}",
          i == 0 ? "" : ",", r.users, r.accesses, r.mean_total_s, r.p99_worst_s,
          r.p99_mean_s, r.hit_rate, static_cast<unsigned long long>(r.lan),
          static_cast<unsigned long long>(r.wan), r.virtual_duration_s, r.failed,
          r.admission ? "true" : "false", r.p99_vs_1user, r.min_delivered,
          static_cast<unsigned long long>(r.demand_shed),
          static_cast<unsigned long long>(r.sim_events),
          static_cast<unsigned long long>(r.reallocs),
          static_cast<unsigned long long>(r.realloc_flows_touched), r.wall_s,
          r.events_per_sec);
    }
    std::printf("]}\n");
    return 0;
  }

  bench::print_header(
      "Extension: one client agent serving N concurrent users (case 3)",
      "future work in the paper; sharing should make per-user cost sublinear");
  std::printf("%8s %10s %12s %12s %12s %10s %8s %8s %8s %6s %10s\n", "users",
              "accesses", "mean (s)", "p99-worst", "p99-mean", "hit-rate", "lan",
              "wan", "failed", "adm", "p99-vs-1");
  for (const Row& r : rows) {
    std::printf("%8d %10zu %12.3f %12.3f %12.3f %10.2f %8llu %8llu %8zu %6s %10.2f\n",
                r.users, r.accesses, r.mean_total_s, r.p99_worst_s, r.p99_mean_s,
                r.hit_rate, static_cast<unsigned long long>(r.lan),
                static_cast<unsigned long long>(r.wan), r.failed,
                r.admission ? "on" : "off", r.p99_vs_1user);
  }

  // Scheduler-cost section: how hard the discrete-event core worked. The
  // event and solve counts are deterministic; wall time and events/sec are
  // host-dependent and informational only.
  std::printf("\nScheduler cost (calendar-queue core, incremental max-min):\n");
  std::printf("%8s %14s %10s %14s %10s %12s\n", "users", "sim-events", "reallocs",
              "flows-touched", "wall (s)", "events/sec");
  for (const Row& r : rows) {
    std::printf("%8d %14llu %10llu %14llu %10.3f %12.0f\n", r.users,
                static_cast<unsigned long long>(r.sim_events),
                static_cast<unsigned long long>(r.reallocs),
                static_cast<unsigned long long>(r.realloc_flows_touched), r.wall_s,
                r.events_per_sec);
  }
  return 0;
}
