// Extension bench: scalability in the number of users.
//
// The paper's future work: "systematic testing of the scalability of our
// system, both in terms of the number of users and the complexity of the
// visualization process", and section 3.5's claim that "a client agent can
// serve multiple clients, especially in a mobile environment".
//
// N clients share one client agent (case 3: WAN database + LAN staging);
// each browses its own orchestrated path. As N grows, the shared agent
// cache and the prestaged LAN replicas absorb more of the load; per-client
// latency should degrade sub-linearly.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "lightfield/procedural.hpp"
#include "session/cursor.hpp"
#include "session/publisher.hpp"
#include "streaming/client.hpp"
#include "streaming/client_agent.hpp"

namespace {

using namespace lon;

struct PerClient {
  std::unique_ptr<streaming::Client> client;
  session::CursorScript script;
  std::size_t step = 0;
  bool done = false;
};

void run_users(std::size_t n_clients) {
  sim::Simulator sim;
  sim::Network net(sim, 7);
  ibp::Fabric fabric(sim, net);
  lors::Lors lors(sim, net, fabric);

  lightfield::LatticeConfig lattice_cfg;
  lattice_cfg.angular_step_deg = 7.5;  // 8x16 = 128 view sets
  lattice_cfg.view_set_span = 3;
  lattice_cfg.view_resolution = 200;
  lightfield::ProceduralSource source(lattice_cfg);

  const sim::NodeId lan_switch = net.add_node("lan-switch");
  const sim::NodeId agent_node = net.add_node("agent");
  const sim::LinkConfig lan{1e9, 50 * kMicrosecond, 0.0};
  net.add_link(agent_node, lan_switch, lan);
  std::vector<std::string> lan_depots;
  for (int i = 0; i < 4; ++i) {
    const std::string name = "lan-" + std::to_string(i);
    const sim::NodeId node = net.add_node(name);
    net.add_link(node, lan_switch, lan);
    ibp::DepotConfig cfg;
    cfg.capacity_bytes = 8ull << 30;
    fabric.add_depot(node, name, cfg);
    lan_depots.push_back(name);
  }
  const sim::NodeId wan_router = net.add_node("wan");
  net.add_link(lan_switch, wan_router, {100e6, 35 * kMillisecond, 0.0});
  std::vector<std::string> wan_depots;
  for (int i = 0; i < 3; ++i) {
    const std::string name = "ca-" + std::to_string(i);
    const sim::NodeId node = net.add_node(name);
    net.add_link(node, wan_router, {1e9, kMillisecond, 0.0});
    ibp::DepotConfig cfg;
    cfg.capacity_bytes = 32ull << 30;
    fabric.add_depot(node, name, cfg);
    wan_depots.push_back(name);
  }
  const sim::NodeId dvs_node = net.add_node("dvs");
  net.add_link(dvs_node, wan_router, {1e9, kMillisecond, 0.0});
  const sim::NodeId server_node = net.add_node("server");
  net.add_link(server_node, wan_router, {1e9, kMillisecond, 0.0});

  streaming::DvsServer dvs(sim, net, dvs_node, source.lattice());
  session::PublishOptions publish;
  publish.depots = wan_depots;
  publish.all_filler = true;  // latency study; clients skip decode
  publish.net.streams = 8;
  (void)session::publish_database(sim, lors, dvs, source, server_node, publish);

  streaming::ClientAgentConfig agent_cfg;
  agent_cfg.staging = true;
  agent_cfg.lan_depots = lan_depots;
  streaming::ClientAgent agent(sim, net, fabric, lors, dvs, source.lattice(),
                               agent_node, agent_cfg);

  streaming::ClientConfig client_cfg;
  client_cfg.display_resolution = 200;
  client_cfg.decode = false;
  client_cfg.timing = streaming::ClientConfig::Timing::kModeled;

  std::vector<PerClient> clients(n_clients);
  for (std::size_t i = 0; i < n_clients; ++i) {
    const sim::NodeId node = net.add_node("client-" + std::to_string(i));
    net.add_link(node, lan_switch, lan);
    clients[i].client = std::make_unique<streaming::Client>(
        sim, net, lattice_cfg, node, agent, client_cfg);
    clients[i].script =
        session::CursorScript::standard(source.lattice(), 2 * kSecond, 25, 100 + i);
  }

  agent.start_staging();
  std::size_t remaining = n_clients;
  std::function<void(std::size_t)> advance = [&](std::size_t i) {
    PerClient& pc = clients[i];
    if (pc.step >= pc.script.size()) {
      pc.done = true;
      --remaining;
      return;
    }
    const session::CursorStep step = pc.script.steps()[pc.step++];
    pc.client->set_view(step.direction, [&, i, step](bool) {
      sim.after(step.dwell, [&, i] { advance(i); });
    });
  };
  for (std::size_t i = 0; i < n_clients; ++i) advance(i);
  while (remaining > 0 && sim.step()) {
  }

  // Aggregate.
  double sum = 0.0, worst = 0.0;
  std::size_t accesses = 0;
  for (const auto& pc : clients) {
    for (const auto& a : pc.client->accesses()) {
      sum += to_seconds(a.total());
      worst = std::max(worst, to_seconds(a.total()));
      ++accesses;
    }
  }
  const auto& stats = agent.stats();
  std::printf("%8zu %10zu %12.3f %12.3f %10.2f %8zu %8zu\n", n_clients, accesses,
              sum / static_cast<double>(accesses), worst,
              static_cast<double>(stats.hits) / static_cast<double>(stats.requests),
              stats.lan_accesses, stats.wan_accesses);
}

}  // namespace

int main() {
  bench::print_header(
      "Extension: one client agent serving N concurrent users (case 3)",
      "future work in the paper; sharing should make per-user cost sublinear");
  std::printf("%8s %10s %12s %12s %10s %8s %8s\n", "users", "accesses", "mean (s)",
              "max (s)", "hit-rate", "lan", "wan");
  for (const std::size_t n : {1u, 2u, 4u, 8u}) run_users(n);
  return 0;
}
