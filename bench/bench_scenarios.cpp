// Adversarial scenario bench — the SLO harness of the overload-protection
// work. Each row is one deterministic session::run_scenario composition of
// the robustness machinery (admission + degradation + augmentation, faults +
// retries + repair, staging leases, site caching); ci/perf_gate.py hard-fails
// on the virtual-time metrics.
//
// Rows:
//   flash_crowd/admission    100+ viewers, WAN, admission + ladder on
//   flash_crowd/no_admission the same crowd with no overload protection
//   teleport_faults          teleport browsing under crash/drop/corruption
//   lease_expiry             staging-lease expiry wave mid-playback
//   site_cache/cold          browse racing prestaging (co-sited agents)
//   site_cache/warm          browse after prestaging completed
//   pda_link/lod             PDA-class link, continuous LOD streaming on
//   pda_link/full            the same link, full resolution only (control)
//   co_sited/site            co-sited crowd, cooperative site cache on
//   co_sited/control         the same crowd, every agent restages alone
//
// Flags:
//   --smoke   smaller configuration for the CI perf gate (fast, deterministic)
//   --json    machine-readable output (one JSON object) for ci/perf_gate.py
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench_common.hpp"
#include "session/scenario.hpp"

namespace {

using namespace lon;

struct Row {
  session::ScenarioResult r;
  double slo_s = 0.0;
  std::size_t deadline_misses = 0;  ///< accesses whose total latency blew the SLO
};

Row run(session::Scenario scenario) {
  Row row;
  row.slo_s = to_seconds(scenario.slo_deadline);
  row.r = session::run_scenario(scenario);
  for (const auto& pc : row.r.clients) {
    for (const auto& a : pc.accesses) {
      if (to_seconds(a.total()) > row.slo_s) ++row.deadline_misses;
    }
  }
  return row;
}

void print_json(const std::vector<Row>& rows, bool smoke) {
  std::printf("{\"bench\":\"scenarios\",\"mode\":\"%s\",\"results\":[",
              smoke ? "smoke" : "full");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const session::ScenarioResult& r = rows[i].r;
    const auto& rb = r.robustness;
    std::printf(
        "%s{\"name\":\"%s\",\"clients\":%zu,\"accesses\":%zu,\"failed\":%zu,"
        "\"min_delivered\":%zu,\"mean_total_s\":%.6f,\"p99_worst_s\":%.6f,"
        "\"p99_mean_s\":%.6f,\"slo_s\":%.3f,\"shed_fraction\":%.4f,"
        "\"demand_shed\":%llu,\"shed_retries\":%llu,\"downgrades\":%llu,"
        "\"upgrades\":%llu,\"degrade_lod\":%llu,\"hot_reports\":%llu,"
        "\"augments\":%llu,\"failovers\":%llu,\"corruption_detected\":%llu,"
        "\"deadline_misses\":%zu,\"lod_coarse_serves\":%llu,"
        "\"lod_refinements\":%llu,\"lod_refined\":%llu,"
        "\"restaged\":%llu,\"restage_coalesced\":%llu,\"site_hits\":%llu,"
        "\"site_adopted\":%llu,\"stage_wan_bytes\":%llu,"
        "\"site_restage_leaders\":%llu,\"site_restage_keys\":%llu,"
        "\"virtual_duration_s\":%.3f}",
        i == 0 ? "" : ",", r.name.c_str(), r.clients.size(), r.total_accesses,
        r.failed_accesses, r.min_client_delivered, r.mean_total_s, r.p99_worst_s,
        r.p99_mean_s, rows[i].slo_s, r.shed_fraction,
        static_cast<unsigned long long>(rb.demand_shed),
        static_cast<unsigned long long>(rb.shed_retries),
        static_cast<unsigned long long>(rb.downgrades),
        static_cast<unsigned long long>(rb.upgrades),
        static_cast<unsigned long long>(rb.degrade_lod),
        static_cast<unsigned long long>(rb.hot_reports),
        static_cast<unsigned long long>(rb.augments),
        static_cast<unsigned long long>(rb.failovers),
        static_cast<unsigned long long>(rb.corruption_detected),
        rows[i].deadline_misses,
        static_cast<unsigned long long>(rb.lod_coarse_serves),
        static_cast<unsigned long long>(rb.lod_refinements),
        static_cast<unsigned long long>(rb.lod_refined),
        static_cast<unsigned long long>(rb.restaged),
        static_cast<unsigned long long>(rb.restage_coalesced),
        static_cast<unsigned long long>(rb.site_hits),
        static_cast<unsigned long long>(rb.site_adopted),
        static_cast<unsigned long long>(rb.stage_wan_bytes),
        static_cast<unsigned long long>(rb.site_restage_leaders),
        static_cast<unsigned long long>(rb.site_restage_keys),
        to_seconds(r.duration));
  }
  std::printf("]}\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--json") == 0) json = true;
  }

  // The ISSUE's acceptance bar is a >= 100-client flash crowd; the smoke
  // configuration *is* the gated configuration, so it runs the full crowd.
  const int crowd = smoke ? 100 : 200;
  const int browsers = smoke ? 4 : 8;

  std::vector<Row> rows;
  rows.push_back(run(session::flash_crowd(crowd, /*admission=*/true)));
  rows.push_back(run(session::flash_crowd(crowd, /*admission=*/false)));
  rows.push_back(run(session::teleport_under_faults(browsers)));
  rows.push_back(run(session::lease_expiry_wave(browsers)));
  rows.push_back(run(session::site_cache(/*warm=*/false, browsers)));
  rows.push_back(run(session::site_cache(/*warm=*/true, browsers)));
  rows.push_back(run(session::pda_link(/*lod_streaming=*/true)));
  rows.push_back(run(session::pda_link(/*lod_streaming=*/false)));
  rows.push_back(run(session::co_sited_crowd(/*site=*/true, crowd)));
  rows.push_back(run(session::co_sited_crowd(/*site=*/false, crowd)));

  if (json) {
    print_json(rows, smoke);
    return 0;
  }

  bench::print_header(
      "Adversarial scenarios: overload protection and graceful degradation",
      "flash crowd, faults, lease waves, cold/warm site cache — SLO harness");
  std::printf("%-26s %8s %9s %7s %10s %10s %10s %7s %7s %7s %7s %7s %7s\n", "scenario",
              "clients", "accesses", "failed", "mean (s)", "p99-worst", "p99-mean",
              "miss", "shed", "retry", "lod", "coarse", "refind");
  for (const Row& row : rows) {
    const session::ScenarioResult& r = row.r;
    std::printf(
        "%-26s %8zu %9zu %7zu %10.3f %10.3f %10.3f %7zu %7llu %7llu %7llu %7llu %7llu\n",
        r.name.c_str(), r.clients.size(), r.total_accesses, r.failed_accesses,
        r.mean_total_s, r.p99_worst_s, r.p99_mean_s, row.deadline_misses,
        static_cast<unsigned long long>(r.robustness.demand_shed),
        static_cast<unsigned long long>(r.robustness.shed_retries),
        static_cast<unsigned long long>(r.robustness.degrade_lod),
        static_cast<unsigned long long>(r.robustness.lod_coarse_serves),
        static_cast<unsigned long long>(r.robustness.lod_refined));
  }
  return 0;
}
