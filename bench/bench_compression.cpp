// Micro bench: codec throughput, ratio and bytes-on-the-wire per wire format.
//
// One deterministic procedural view set is pushed through every container the
// system can publish — stored, LFZ1, chunked LFZC, inter-view-predicted LFZ2
// — measuring compressed size (exactly reproducible; the perf gate hard-fails
// on any byte change), ratio against raw pixels, and wall-clock MB/s both
// directions. A separate pair of timings decodes the same Huffman symbol
// stream with the table-driven decoder and the bit-at-a-time reference; their
// ratio is machine-relative, so the gate can enforce the table speedup even
// on a 1-core runner.
//
// Flags:
//   --smoke   smaller view set / fewer symbols for the CI perf gate
//   --json    machine-readable output (one JSON object) for ci/perf_gate.py
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "compress/filters.hpp"
#include "compress/huffman.hpp"
#include "compress/lfz.hpp"
#include "lightfield/procedural.hpp"
#include "lors/lors.hpp"
#include "streaming/client_agent.hpp"
#include "streaming/dvs.hpp"
#include "util/buffer_pool.hpp"

namespace {

using namespace lon;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

/// Best-of-`reps` wall time of `fn`, in seconds.
template <typename Fn>
double best_time(int reps, Fn&& fn) {
  double best = 1e30;
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    best = std::min(best, seconds_since(start));
  }
  return best;
}

struct Row {
  const char* mode = "";
  std::uint64_t bytes = 0;          ///< on the wire (deterministic)
  std::uint64_t payload_bytes = 0;  ///< serialized input the codec processed
  double ratio = 0.0;               ///< raw pixel bytes / wire bytes
  double compress_mb_s = 0.0;
  double decompress_mb_s = 0.0;
  std::uint64_t decode_copied_bytes = 0;  ///< metered copies in one decode
};

Row measure(const char* mode, const Bytes& payload, std::uint64_t pixel_bytes, int reps,
            Bytes (*compress)(const Bytes&), Bytes (*decompress)(const Bytes&)) {
  Row row;
  row.mode = mode;
  row.payload_bytes = payload.size();
  const Bytes wire = compress(payload);
  row.bytes = wire.size();
  row.ratio = static_cast<double>(pixel_bytes) / static_cast<double>(wire.size());
  // One metered decode: stored bodies pay exactly one pass through the copy
  // meter, LZ-coded bodies decode without touching it. Deterministic, so the
  // gate pins it exactly.
  const std::uint64_t copied_before = util::payload_bytes_copied();
  if (decompress(wire) != payload) throw std::runtime_error("codec round-trip mismatch");
  row.decode_copied_bytes = util::payload_bytes_copied() - copied_before;
  const double mb = static_cast<double>(payload.size()) / 1e6;
  row.compress_mb_s = mb / best_time(reps, [&] { (void)compress(payload); });
  row.decompress_mb_s = mb / best_time(reps, [&] { (void)decompress(wire); });
  return row;
}

constexpr std::uint64_t kChunkBytes = 256 * 1024;

Bytes compress_stored(const Bytes& d) {
  lfz::CompressOptions opt;
  opt.store_only = true;
  return lfz::compress(d, opt);
}
Bytes compress_lfz1(const Bytes& d) { return lfz::compress(d); }
Bytes compress_lfzc(const Bytes& d) { return lfz::compress_chunked(d, kChunkBytes); }
Bytes compress_lfz2(const Bytes& d) { return lfz::compress_lfz2(d, kChunkBytes); }
Bytes decompress_plain(const Bytes& d) { return lfz::decompress(d); }
Bytes decompress_chunked(const Bytes& d) { return lfz::decompress_chunked(d); }

struct DecodeResult {
  std::size_t symbols = 0;
  double table_msym_s = 0.0;
  double bitwise_msym_s = 0.0;
  double speedup = 0.0;
};

/// Times the table decoder against the bit-at-a-time reference over one
/// encoded symbol stream (skewed frequencies, full 286-symbol alphabet).
DecodeResult measure_decode(std::size_t symbols, int reps) {
  constexpr std::size_t kAlphabet = 286;
  std::vector<std::uint64_t> freqs(kAlphabet);
  for (std::size_t s = 0; s < kAlphabet; ++s) {
    freqs[s] = 1 + (s * 2654435761u) % 997;  // deterministic skew, all nonzero
  }
  const auto lengths = lfz::build_code_lengths(freqs);
  const lfz::HuffmanEncoder encoder(lengths);
  const lfz::HuffmanDecoder decoder(lengths);

  std::vector<std::uint16_t> stream(symbols);
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  for (auto& s : stream) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    s = static_cast<std::uint16_t>((state >> 33) % kAlphabet);
  }
  lfz::BitWriter writer;
  for (const auto s : stream) encoder.encode(writer, s);
  const Bytes encoded = writer.take();

  // Checksum both paths so the decode loops cannot be optimized away (and to
  // assert the fast path agrees with the reference on this stream).
  const auto drain = [&](auto&& decode_one) {
    lfz::BitReader reader(encoded);
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < symbols; ++i) sum += decode_one(reader);
    return sum;
  };
  const std::uint64_t want =
      drain([&](lfz::BitReader& r) { return decoder.decode_bitwise(r); });
  std::uint64_t got = 0;
  DecodeResult result;
  result.symbols = symbols;
  const double msym = static_cast<double>(symbols) / 1e6;
  result.table_msym_s = msym / best_time(reps, [&] {
                          got = drain([&](lfz::BitReader& r) { return decoder.decode(r); });
                        });
  if (got != want) throw std::runtime_error("table decode disagrees with bitwise");
  result.bitwise_msym_s =
      msym / best_time(reps, [&] {
        (void)drain([&](lfz::BitReader& r) { return decoder.decode_bitwise(r); });
      });
  result.speedup = result.table_msym_s / result.bitwise_msym_s;
  return result;
}

struct FilterResult {
  double mb = 0.0;
  double fast_mb_s = 0.0;
  double scalar_mb_s = 0.0;
  double speedup = 0.0;
};

/// Times the vectorized unfilter path against the per-byte scalar reference
/// on one deterministic smooth image (the shape predictor filters exist for).
FilterResult measure_filters(bool smoke, int reps) {
  const std::size_t width = smoke ? 256 : 1024;
  const std::size_t height = width;
  constexpr std::size_t kBpp = 3;
  Bytes image(width * height * kBpp);
  for (std::size_t y = 0; y < height; ++y) {
    for (std::size_t x = 0; x < width * kBpp; ++x) {
      image[y * width * kBpp + x] = static_cast<std::uint8_t>((x / kBpp + 2 * y) & 0xff);
    }
  }
  const Bytes filtered = lfz::filter_image(image, width, height, kBpp);
  const Bytes fast = lfz::unfilter_image(filtered, width, height, kBpp);
  const Bytes scalar = lfz::unfilter_image_scalar(filtered, width, height, kBpp);
  if (fast != scalar || fast != image) {
    throw std::runtime_error("unfilter fast/scalar mismatch");
  }
  FilterResult result;
  result.mb = static_cast<double>(image.size()) / 1e6;
  result.fast_mb_s = result.mb / best_time(reps, [&] {
                       (void)lfz::unfilter_image(filtered, width, height, kBpp);
                     });
  result.scalar_mb_s = result.mb / best_time(reps, [&] {
                         (void)lfz::unfilter_image_scalar(filtered, width, height, kBpp);
                       });
  result.speedup = result.fast_mb_s / result.scalar_mb_s;
  return result;
}

struct DemandCopies {
  std::uint64_t compressed_bytes = 0;   ///< wire size of the published view set
  std::uint64_t cold_copied_bytes = 0;  ///< demand-path copies, cold WAN fetch
  std::uint64_t warm_copied_bytes = 0;  ///< demand-path copies, agent-cache hit
};

/// Virtual-time mini-scenario for the zero-copy demand path: publish one view
/// set across WAN depots, fetch it cold, then hit it warm. Every number is
/// deterministic — the gate pins all three exactly (cold == one pass over the
/// compressed payload, warm == 0).
DemandCopies measure_demand_copies(bool smoke) {
  lightfield::LatticeConfig lattice;
  lattice.angular_step_deg = 15.0;
  lattice.view_set_span = 3;
  lattice.view_resolution = smoke ? 24 : 48;
  auto source = std::make_shared<lightfield::ProceduralSource>(lattice);

  sim::Simulator sim;
  sim::Network net(sim);
  ibp::Fabric fabric(sim, net);
  lors::Lors lors(sim, net, fabric);

  const sim::NodeId lan_switch = net.add_node("lan-switch");
  const sim::NodeId agent_node = net.add_node("agent");
  net.add_link(agent_node, lan_switch, {1e9, 50 * kMicrosecond, 0.0});
  const sim::NodeId wan_router = net.add_node("wan-router");
  net.add_link(lan_switch, wan_router, {100e6, 35 * kMillisecond, 0.0});
  std::vector<std::string> depots;
  for (int i = 0; i < 2; ++i) {
    const std::string name = "ca-" + std::to_string(i);
    const sim::NodeId node = net.add_node(name);
    net.add_link(node, wan_router, {1e9, kMillisecond, 0.0});
    ibp::DepotConfig cfg;
    cfg.capacity_bytes = 1ull << 30;
    fabric.add_depot(node, name, cfg);
    depots.push_back(name);
  }
  const sim::NodeId dvs_node = net.add_node("dvs");
  net.add_link(dvs_node, wan_router, {1e9, kMillisecond, 0.0});
  const sim::NodeId server_node = net.add_node("server");
  net.add_link(server_node, wan_router, {1e9, kMillisecond, 0.0});
  streaming::DvsServer dvs(sim, net, dvs_node, source->lattice());

  const lightfield::ViewSetId id{1, 2};
  DemandCopies result;
  {
    Bytes compressed = source->build_compressed(id);
    result.compressed_bytes = compressed.size();
    lors::UploadOptions up;
    up.depots = depots;
    up.block_bytes = 4096;
    lors.upload_async(server_node, std::move(compressed), up,
                      [&](const lors::UploadResult& r) {
                        if (r.status != lors::LorsStatus::kOk) {
                          throw std::runtime_error("demand scenario upload failed");
                        }
                        exnode::ExNode node = r.exnode;
                        dvs.install(id, std::move(node));
                      });
    sim.run();
  }

  streaming::ClientAgentConfig cfg;
  cfg.prefetch = false;
  streaming::ClientAgent agent(sim, net, fabric, lors, dvs, source->lattice(),
                               agent_node, cfg);
  const auto fetch = [&] {
    bool ok = false;
    agent.request_view_set(id, [&](const Bytes& data, streaming::AccessClass,
                                   SimDuration) { ok = !data.empty(); });
    sim.run();
    if (!ok) throw std::runtime_error("demand scenario fetch failed");
  };
  fetch();
  result.cold_copied_bytes = agent.stats().payload_copy_bytes;
  fetch();
  result.warm_copied_bytes = agent.stats().payload_copy_bytes - result.cold_copied_bytes;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--json") == 0) json = true;
  }

  // One deterministic procedural view set (real filter + codec pipeline, no
  // ray casting) at the paper's 2.5-degree view spacing — smoke shrinks the
  // block and resolution to keep the CI gate fast.
  lightfield::LatticeConfig lattice;
  lattice.angular_step_deg = 2.5;
  lattice.view_set_span = smoke ? 3 : 6;
  lattice.view_resolution = smoke ? 128 : 200;
  lightfield::ProceduralSource source(lattice);
  const lightfield::ViewSet vs = source.build(source.lattice().all_view_sets().front());
  const std::uint64_t pixel_bytes = vs.pixel_bytes();

  const Bytes intra = vs.serialize(lightfield::SerializeMode::kIntra);
  const Bytes adaptive = vs.serialize(lightfield::SerializeMode::kAdaptive);

  const int reps = smoke ? 3 : 5;
  std::vector<Row> rows;
  rows.push_back(measure("stored", intra, pixel_bytes, reps, compress_stored,
                         decompress_plain));
  rows.push_back(measure("lfz1", intra, pixel_bytes, reps, compress_lfz1,
                         decompress_plain));
  rows.push_back(measure("lfzc", intra, pixel_bytes, reps, compress_lfzc,
                         decompress_chunked));
  rows.push_back(measure("lfz2", adaptive, pixel_bytes, reps, compress_lfz2,
                         decompress_chunked));

  const DecodeResult decode = measure_decode(smoke ? std::size_t{1} << 19
                                                   : std::size_t{1} << 21,
                                             reps);
  const FilterResult filters = measure_filters(smoke, reps);
  const DemandCopies demand = measure_demand_copies(smoke);

  if (json) {
    std::printf("{\"bench\":\"compression\",\"mode\":\"%s\",\"pixel_bytes\":%llu,"
                "\"results\":[",
                smoke ? "smoke" : "full", static_cast<unsigned long long>(pixel_bytes));
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::printf("%s{\"mode\":\"%s\",\"bytes\":%llu,\"payload_bytes\":%llu,"
                  "\"ratio\":%.4f,\"compress_mb_s\":%.2f,\"decompress_mb_s\":%.2f,"
                  "\"decode_copied_bytes\":%llu}",
                  i == 0 ? "" : ",", r.mode, static_cast<unsigned long long>(r.bytes),
                  static_cast<unsigned long long>(r.payload_bytes), r.ratio,
                  r.compress_mb_s, r.decompress_mb_s,
                  static_cast<unsigned long long>(r.decode_copied_bytes));
    }
    std::printf("],\"decode\":{\"symbols\":%zu,\"table_msym_s\":%.2f,"
                "\"bitwise_msym_s\":%.2f,\"speedup\":%.2f},",
                decode.symbols, decode.table_msym_s, decode.bitwise_msym_s,
                decode.speedup);
    std::printf("\"filters\":{\"mb\":%.2f,\"fast_mb_s\":%.1f,\"scalar_mb_s\":%.1f,"
                "\"speedup\":%.2f},",
                filters.mb, filters.fast_mb_s, filters.scalar_mb_s, filters.speedup);
    std::printf("\"demand\":{\"compressed_bytes\":%llu,\"cold_copied_bytes\":%llu,"
                "\"warm_copied_bytes\":%llu}}\n",
                static_cast<unsigned long long>(demand.compressed_bytes),
                static_cast<unsigned long long>(demand.cold_copied_bytes),
                static_cast<unsigned long long>(demand.warm_copied_bytes));
    return 0;
  }

  std::printf("codec bench (%s): %llu pixel bytes per view set\n",
              smoke ? "smoke" : "full", static_cast<unsigned long long>(pixel_bytes));
  std::printf("%8s %12s %12s %8s %14s %14s %14s\n", "mode", "wire bytes", "payload",
              "ratio", "comp MB/s", "decomp MB/s", "copied bytes");
  for (const Row& r : rows) {
    std::printf("%8s %12llu %12llu %8.2f %14.1f %14.1f %14llu\n", r.mode,
                static_cast<unsigned long long>(r.bytes),
                static_cast<unsigned long long>(r.payload_bytes), r.ratio,
                r.compress_mb_s, r.decompress_mb_s,
                static_cast<unsigned long long>(r.decode_copied_bytes));
  }
  std::printf("huffman decode: table %.1f Msym/s vs bitwise %.1f Msym/s "
              "(%.2fx, %zu symbols)\n",
              decode.table_msym_s, decode.bitwise_msym_s, decode.speedup,
              decode.symbols);
  std::printf("unfilter: fast %.1f MB/s vs scalar %.1f MB/s (%.2fx on %.1f MB)\n",
              filters.fast_mb_s, filters.scalar_mb_s, filters.speedup, filters.mb);
  std::printf("demand path: %llu compressed bytes, cold copies %llu "
              "(one landing pass), warm copies %llu\n",
              static_cast<unsigned long long>(demand.compressed_bytes),
              static_cast<unsigned long long>(demand.cold_copied_bytes),
              static_cast<unsigned long long>(demand.warm_copied_bytes));
  return 0;
}
