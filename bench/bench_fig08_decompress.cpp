// Figure 8: time to decompress received view sets across the 58 orchestrated
// accesses, at LFD resolutions 200^2, 300^2 and 500^2.
//
// Paper: decompression below 400^2 is sub-second; at 500^2 it approaches
// ~1.8 s and is "not negligible in an interactive application any more".
//
// Method: the standard cursor script generates the access sequence; each
// accessed view set is built for real (procedural imagery through the real
// filter + lfz pipeline) and its decompression is wall-clock timed.
#include <chrono>
#include <cstdio>
#include <map>
#include <vector>

#include "bench_common.hpp"
#include "lightfield/procedural.hpp"
#include "session/cursor.hpp"

int main() {
  using namespace lon;
  bench::print_header(
      "Figure 8: view-set decompression time over 58 orchestrated accesses",
      "sub-second below 400^2; up to ~1.8 s at 500^2");

  for (const std::size_t resolution : {200u, 300u, 500u}) {
    lightfield::ProceduralSource source(lightfield::LatticeConfig::paper(resolution));
    const auto& lattice = source.lattice();
    const session::CursorScript script =
        session::CursorScript::standard(lattice, kSecond, 58);

    // The access sequence (transitions between view sets).
    std::vector<lightfield::ViewSetId> sequence;
    lightfield::ViewSetId current{-1, -1};
    for (const auto& step : script.steps()) {
      const auto id = lattice.view_set_of(step.direction);
      if (!(id == current)) {
        sequence.push_back(id);
        current = id;
      }
    }

    // Build (and compress) each unique view set once.
    std::map<std::pair<int, int>, Bytes> compressed;
    for (const auto& id : sequence) {
      auto key = std::make_pair(id.row, id.col);
      if (!compressed.contains(key)) {
        compressed[key] = source.build_compressed(id);
      }
    }

    std::printf("\n# resolution %zux%zu — decompression seconds per access\n",
                resolution, resolution);
    double total = 0.0, peak = 0.0;
    for (std::size_t n = 0; n < sequence.size(); ++n) {
      const Bytes& packed = compressed[{sequence[n].row, sequence[n].col}];
      const auto start = std::chrono::steady_clock::now();
      const auto vs = lightfield::ViewSet::decompress(packed);
      const auto stop = std::chrono::steady_clock::now();
      const double seconds = std::chrono::duration<double>(stop - start).count();
      total += seconds;
      peak = std::max(peak, seconds);
      std::printf("%zu\t%.4f\n", n + 1, seconds);
      (void)vs;
    }
    std::printf("# mean %.4f s, peak %.4f s over %zu accesses\n",
                total / static_cast<double>(sequence.size()), peak, sequence.size());
  }
  return 0;
}
