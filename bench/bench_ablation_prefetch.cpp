// Ablation: the quadrant prefetch policy (paper figure 4).
//
// Case 2 (WAN streaming) with prefetch on vs off: prefetch is the only
// latency-hiding mechanism in case 2, so disabling it must push mean and
// tail latencies up. Also sweeps the user's movement rate (dwell) to expose
// the Quality Guaranteed Rate effect: fast movement outruns WAN prefetch.
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace lon;
  bench::print_header("Ablation: quadrant prefetch policy (case 2)",
                      "prefetch hides WAN latency only when the user moves "
                      "slower than the QGR");

  std::printf("%-10s %-8s %12s %12s %8s %8s\n", "prefetch", "dwell", "mean (s)",
              "max (s)", "hits", "wan");
  for (const bool prefetch : {true, false}) {
    for (const double dwell_s : {0.05, 0.5, 4.0}) {
      session::ExperimentConfig cfg =
          bench::small_config(200, session::Case::kWanStreaming);
      cfg.wan_bandwidth_bps = 50e6;  // make WAN fetches cost a visible fraction
      cfg.prefetch = prefetch;
      cfg.dwell = from_seconds(dwell_s);
      const session::ExperimentResult result = session::run_experiment(cfg);
      std::printf("%-10s %6.2f s %10.3f s %10.3f s %8zu %8zu\n",
                  prefetch ? "on" : "off", dwell_s, result.summary.mean_total_s,
                  result.summary.max_total_s, result.summary.hits,
                  result.summary.wan);
    }
  }
  std::printf("\n(slow dwell + prefetch converts WAN fetches into agent hits;\n"
              " fast dwell outruns the prefetcher regardless)\n");
  return 0;
}
