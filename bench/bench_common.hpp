// Shared helpers for the figure-reproduction benchmark binaries.
//
// Each bench binary regenerates one table or figure from the paper's
// evaluation (section 4) and prints the same rows/series the paper reports,
// plus a summary block comparing against the paper's qualitative claims.
#pragma once

#include <cstdio>
#include <string>

#include "session/experiment.hpp"

namespace lon::bench {

/// The paper's experimental configuration at a given sample-view resolution:
/// 72x144 lattice at 2.5 degrees, 6x6 view sets (12x24 grid), view sets
/// striped over 3 WAN depots, 4 LAN depots for staging, 100 Mb/s / ~35 ms
/// WAN, 1 Gb/s LAN, 58 orchestrated view-set accesses.
inline session::ExperimentConfig paper_config(std::size_t resolution,
                                              session::Case which) {
  session::ExperimentConfig cfg;
  cfg.lattice = lightfield::LatticeConfig::paper(resolution);
  cfg.which = which;
  cfg.accesses = 58;
  cfg.dwell = 2 * kSecond;
  cfg.client.display_resolution = resolution;
  cfg.client.timing = streaming::ClientConfig::Timing::kMeasured;
  return cfg;
}

/// A scaled-down configuration for quick ablation sweeps (4x8 view sets).
inline session::ExperimentConfig small_config(std::size_t resolution,
                                              session::Case which) {
  session::ExperimentConfig cfg;
  cfg.lattice.angular_step_deg = 15.0;
  cfg.lattice.view_set_span = 3;
  cfg.lattice.view_resolution = resolution;
  cfg.which = which;
  cfg.accesses = 30;
  cfg.dwell = 2 * kSecond;
  cfg.client.display_resolution = resolution;
  cfg.client.timing = streaming::ClientConfig::Timing::kModeled;
  return cfg;
}

inline void print_header(const std::string& title, const std::string& paper_claim) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("paper: %s\n", paper_claim.c_str());
  std::printf("==============================================================\n");
}

}  // namespace lon::bench
