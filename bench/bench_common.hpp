// Shared helpers for the figure-reproduction benchmark binaries.
//
// Each bench binary regenerates one table or figure from the paper's
// evaluation (section 4) and prints the same rows/series the paper reports,
// plus a summary block comparing against the paper's qualitative claims.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "session/experiment.hpp"

namespace lon::bench {

/// The paper's experimental configuration at a given sample-view resolution:
/// 72x144 lattice at 2.5 degrees, 6x6 view sets (12x24 grid), view sets
/// striped over 3 WAN depots, 4 LAN depots for staging, 100 Mb/s / ~35 ms
/// WAN, 1 Gb/s LAN, 58 orchestrated view-set accesses.
inline session::ExperimentConfig paper_config(std::size_t resolution,
                                              session::Case which) {
  session::ExperimentConfig cfg;
  cfg.lattice = lightfield::LatticeConfig::paper(resolution);
  cfg.which = which;
  cfg.accesses = 58;
  cfg.dwell = 2 * kSecond;
  cfg.client.display_resolution = resolution;
  cfg.client.timing = streaming::ClientConfig::Timing::kMeasured;
  return cfg;
}

/// A scaled-down configuration for quick ablation sweeps (4x8 view sets).
inline session::ExperimentConfig small_config(std::size_t resolution,
                                              session::Case which) {
  session::ExperimentConfig cfg;
  cfg.lattice.angular_step_deg = 15.0;
  cfg.lattice.view_set_span = 3;
  cfg.lattice.view_resolution = resolution;
  cfg.which = which;
  cfg.accesses = 30;
  cfg.dwell = 2 * kSecond;
  cfg.client.display_resolution = resolution;
  cfg.client.timing = streaming::ClientConfig::Timing::kModeled;
  return cfg;
}

/// Dumps a run's observability artifacts next to the bench output when
/// LON_OBS_DIR is set: `<dir>/<label>.metrics.jsonl` (flat registry dump)
/// and `<dir>/<label>.trace.json` (Chrome trace_event — load in
/// chrome://tracing or Perfetto). No-op, returning false, when the
/// environment variable is absent so normal runs stay side-effect free.
inline bool write_observability(const session::ExperimentResult& result,
                                const std::string& label) {
  const char* dir = std::getenv("LON_OBS_DIR");
  if (dir == nullptr || result.obs == nullptr) return false;
  const std::string base = std::string(dir) + "/" + label;
  {
    std::ofstream os(base + ".metrics.jsonl");
    if (!os) return false;
    result.obs->metrics.write_jsonl(os);
  }
  {
    std::ofstream os(base + ".trace.json");
    if (!os) return false;
    result.obs->trace.write_chrome_trace(os);
  }
  std::printf("# observability: %s.{metrics.jsonl,trace.json}\n", base.c_str());
  return true;
}

inline void print_header(const std::string& title, const std::string& paper_claim) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("paper: %s\n", paper_claim.c_str());
  std::printf("==============================================================\n");
}

}  // namespace lon::bench
