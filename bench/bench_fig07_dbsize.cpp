// Figure 7: total light-field database size, compressed vs uncompressed,
// at sample-view resolutions 200^2 .. 600^2.
//
// Paper: uncompressed 1.5 GB (200^2) to 14 GB (600^2 — n.b. the paper's bar
// chart peaks near 14-15 GB); zlib reaches 5-7x, compressed total <= ~2 GB;
// per-view-set compressed sizes average 1.2 MB (200^2) to 7.8 MB (600^2).
//
// Method: the full database is 288 view sets; we compress a spatial sample
// of real view sets at each resolution and scale by the view-set count
// (documented in EXPERIMENTS.md). All compression is the real lfz pipeline.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "lightfield/procedural.hpp"

int main() {
  using namespace lon;
  bench::print_header(
      "Figure 7: light field database size vs sample-view resolution",
      "1.5-14 GB uncompressed; 5-7x lossless compression; <= ~2 GB compressed");

  std::printf("%-12s %14s %14s %8s %18s\n", "resolution", "uncompressed", "compressed",
              "ratio", "per-viewset (MB)");

  // Sample view sets spread over the sphere (different content regimes).
  const std::vector<lightfield::ViewSetId> sample = {
      {6, 0}, {3, 6}, {9, 12}, {6, 18}, {1, 3}, {10, 21}};

  for (const std::size_t resolution : {200u, 300u, 400u, 500u, 600u}) {
    lightfield::ProceduralSource source(lightfield::LatticeConfig::paper(resolution));
    const auto& lattice = source.lattice();

    std::uint64_t raw_sampled = 0;
    std::uint64_t packed_sampled = 0;
    for (const auto& id : sample) {
      const lightfield::ViewSet vs = source.build(id);
      raw_sampled += vs.pixel_bytes();
      packed_sampled += vs.compress().size();
    }
    const double scale =
        static_cast<double>(lattice.view_set_count()) / static_cast<double>(sample.size());
    const double raw_total = static_cast<double>(raw_sampled) * scale;
    const double packed_total = static_cast<double>(packed_sampled) * scale;
    const double ratio = raw_total / packed_total;
    const double per_vs_mb =
        static_cast<double>(packed_sampled) / static_cast<double>(sample.size()) / 1e6;

    std::printf("%4zux%-7zu %11.2f GB %11.2f GB %7.2fx %15.2f\n", resolution, resolution,
                raw_total / 1e9, packed_total / 1e9, ratio, per_vs_mb);
  }
  std::printf("\nview sets: 12x24 grid = 288; lattice 72x144 at 2.5 degrees; l = 6\n");
  return 0;
}
