// Ablation: LoRS wide-area download parameters.
//
// The multi-threaded download algorithms (Plank et al., CS-02-485) are why
// "dramatically improved transmission bandwidth" is available to the client
// agent. This bench sweeps parallel TCP streams, concurrent blocks, stripe
// width and depot count for a 4 MB object pulled across the paper's WAN, in
// virtual time.
#include <cstdio>
#include <optional>

#include "bench_common.hpp"
#include "lors/lors.hpp"

namespace {

using namespace lon;

struct Setup {
  sim::Simulator sim;
  sim::Network net{sim};
  ibp::Fabric fabric{sim, net};
  lors::Lors lors{sim, net, fabric};
  sim::NodeId client = 0;
  std::vector<std::string> depots;
};

std::unique_ptr<Setup> make_setup(int depot_count) {
  auto s = std::make_unique<Setup>();
  s->client = s->net.add_node("client");
  const sim::NodeId router = s->net.add_node("router");
  s->net.add_link(s->client, router, {100e6, 35 * kMillisecond, 0.0});
  for (int i = 0; i < depot_count; ++i) {
    const std::string name = "ca-" + std::to_string(i);
    const sim::NodeId node = s->net.add_node(name);
    s->net.add_link(node, router, {1e9, kMillisecond, 0.0});
    ibp::DepotConfig cfg;
    cfg.capacity_bytes = 1ull << 30;
    s->fabric.add_depot(node, name, cfg);
    s->depots.push_back(name);
  }
  return s;
}

double timed_download(int depot_count, std::uint64_t block_bytes, int streams,
                      int concurrent) {
  auto s = make_setup(depot_count);
  Bytes data(4 << 20);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 131);
  }
  lors::UploadOptions up;
  up.depots = s->depots;
  up.block_bytes = block_bytes;
  up.net.streams = 8;
  std::optional<exnode::ExNode> exnode;
  s->lors.upload_async(s->client, data, up, [&](const lors::UploadResult& r) {
    if (r.status == lors::LorsStatus::kOk) exnode = r.exnode;
  });
  s->sim.run();
  if (!exnode) return -1.0;

  lors::DownloadOptions down;
  down.net.streams = streams;
  down.max_concurrent = concurrent;
  const SimTime start = s->sim.now();
  SimTime end = 0;
  s->lors.download_async(s->client, *exnode, down, [&](lors::DownloadResult r) {
    end = s->sim.now();
    if (r.status != lors::LorsStatus::kOk || *r.data != data) end = -1;
  });
  s->sim.run();
  return end < 0 ? -1.0 : to_seconds(end - start);
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation: LoRS wide-area download (4 MB object over the paper WAN)",
      "parallel streams + striping beat the single-socket TCP window cap "
      "(>100 Mb/s on Abilene/ESNet per Plank et al.)");

  std::printf("%-8s %-10s %-9s %-12s %12s %14s\n", "depots", "block", "streams",
              "concurrent", "seconds", "goodput Mb/s");
  const double megabits = 4.0 * 8;
  for (const int depots : {1, 3}) {
    for (const std::uint64_t block : {256u * 1024u, 1024u * 1024u}) {
      for (const int streams : {1, 4, 8}) {
        for (const int concurrent : {1, 8}) {
          const double seconds = timed_download(depots, block, streams, concurrent);
          std::printf("%-8d %-10llu %-9d %-12d %10.3f s %12.1f\n", depots,
                      static_cast<unsigned long long>(block), streams, concurrent,
                      seconds, megabits / seconds);
        }
      }
    }
  }
  std::printf("\n(1 stream, 1 block at a time = the pre-LoRS baseline; the\n"
              " window cap 64 KiB / 70 ms RTT limits each stream to ~7.5 Mb/s)\n");
  return 0;
}
