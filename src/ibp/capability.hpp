// IBP capabilities.
//
// An IBP allocation is addressed by three capability strings — read, write
// and manage — each an unguessable token naming (depot, allocation, key,
// rights). Capabilities are the only handle a client ever holds; exNodes
// aggregate them (paper section 2.2). We keep both a structured form and the
// canonical "ibp://" string encoding.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace lon::ibp {

enum class CapKind : std::uint8_t { kRead = 0, kWrite = 1, kManage = 2 };

[[nodiscard]] const char* to_string(CapKind kind);

struct Capability {
  std::string depot;             ///< depot name (unique within the fabric)
  std::uint64_t allocation = 0;  ///< allocation id on that depot
  std::uint64_t key = 0;         ///< per-kind secret
  CapKind kind = CapKind::kRead;

  /// Canonical form: ibp://<depot>/<allocation>#<key-hex>/<kind>
  [[nodiscard]] std::string to_uri() const;

  /// Parses the canonical form; nullopt on malformed input.
  static std::optional<Capability> parse(const std::string& uri);

  bool operator==(const Capability&) const = default;
};

/// The full capability triple returned by a successful allocate.
struct CapabilitySet {
  Capability read;
  Capability write;
  Capability manage;
};

}  // namespace lon::ibp
