#include "ibp/depot.hpp"

#include <algorithm>
#include <stdexcept>

namespace lon::ibp {

const char* to_string(IbpStatus status) {
  switch (status) {
    case IbpStatus::kOk:
      return "ok";
    case IbpStatus::kRefused:
      return "refused";
    case IbpStatus::kNoCapacity:
      return "no-capacity";
    case IbpStatus::kNotFound:
      return "not-found";
    case IbpStatus::kExpired:
      return "expired";
    case IbpStatus::kRevoked:
      return "revoked";
    case IbpStatus::kBadCapability:
      return "bad-capability";
    case IbpStatus::kBadRange:
      return "bad-range";
    case IbpStatus::kTimeout:
      return "timeout";
  }
  return "?";
}

Depot::Depot(sim::Simulator& sim, std::string name, const DepotConfig& config)
    : sim_(sim), name_(std::move(name)), config_(config), rng_(config.rng_seed) {
  if (name_.empty()) throw std::invalid_argument("Depot: empty name");
  if (config_.capacity_bytes == 0) throw std::invalid_argument("Depot: zero capacity");
}

void Depot::set_disk_rate(double bytes_per_sec) {
  if (bytes_per_sec <= 0.0) throw std::invalid_argument("Depot: non-positive disk rate");
  config_.disk_bytes_per_sec = bytes_per_sec;
}

Depot::AllocResult Depot::allocate(const AllocRequest& request) {
  AllocResult result;
  // Admission policy first: an oversized or overlong request is refused
  // outright, before any soft allocation is disturbed.
  if (request.size == 0 || request.size > config_.max_alloc_bytes ||
      request.lease <= 0 || request.lease > config_.max_lease) {
    ++stats_.allocations_refused;
    result.status = IbpStatus::kRefused;
    return result;
  }
  if (!make_room(request.size)) {
    ++stats_.allocations_refused;
    result.status = IbpStatus::kNoCapacity;
    return result;
  }

  Allocation alloc;
  alloc.id = next_id_++;
  alloc.size = request.size;
  for (auto& key : alloc.keys) key = rng_.next() | 1;  // never zero
  alloc.expires = sim_.now() + request.lease;
  alloc.type = request.type;
  alloc.last_access = sim_.now();
  alloc.data.assign(request.size, 0);

  used_ += request.size;
  ++stats_.allocations_made;

  auto make_cap = [&](CapKind kind) {
    Capability cap;
    cap.depot = name_;
    cap.allocation = alloc.id;
    cap.key = alloc.keys[static_cast<int>(kind)];
    cap.kind = kind;
    return cap;
  };
  result.caps.read = make_cap(CapKind::kRead);
  result.caps.write = make_cap(CapKind::kWrite);
  result.caps.manage = make_cap(CapKind::kManage);
  allocations_.emplace(alloc.id, std::move(alloc));
  return result;
}

IbpStatus Depot::find(const Capability& cap, CapKind required, const Allocation** out) const {
  return const_cast<Depot*>(this)->find_mutable(cap, required,
                                                const_cast<Allocation**>(out));
}

IbpStatus Depot::find_mutable(const Capability& cap, CapKind required, Allocation** out) {
  *out = nullptr;
  if (cap.depot != name_) return IbpStatus::kBadCapability;
  if (cap.kind != required) return IbpStatus::kBadCapability;
  auto it = allocations_.find(cap.allocation);
  if (it == allocations_.end()) {
    auto tomb = tombstones_.find(cap.allocation);
    return tomb == tombstones_.end() ? IbpStatus::kNotFound : tomb->second;
  }
  Allocation& alloc = it->second;
  if (sim_.now() >= alloc.expires) {
    // Lazy lease reclamation.
    reclaim(alloc.id, IbpStatus::kExpired);
    ++stats_.leases_expired;
    return IbpStatus::kExpired;
  }
  if (alloc.keys[static_cast<int>(required)] != cap.key) return IbpStatus::kBadCapability;
  alloc.last_access = sim_.now();
  *out = &alloc;
  return IbpStatus::kOk;
}

IbpStatus Depot::store(const Capability& write_cap, std::uint64_t offset,
                       std::span<const std::uint8_t> data) {
  Allocation* alloc = nullptr;
  if (const IbpStatus s = find_mutable(write_cap, CapKind::kWrite, &alloc);
      s != IbpStatus::kOk) {
    return s;
  }
  if (offset > alloc->size || data.size() > alloc->size - offset) {
    return IbpStatus::kBadRange;
  }
  std::copy(data.begin(), data.end(), alloc->data.begin() + static_cast<long>(offset));
  alloc->high_water = std::max<std::uint64_t>(alloc->high_water, offset + data.size());
  stats_.bytes_stored += data.size();
  return IbpStatus::kOk;
}

IbpStatus Depot::load(const Capability& read_cap, std::uint64_t offset, std::uint64_t length,
                      Bytes& out) const {
  const Allocation* alloc = nullptr;
  if (const IbpStatus s = find(read_cap, CapKind::kRead, &alloc); s != IbpStatus::kOk) {
    return s;
  }
  if (offset > alloc->size || length > alloc->size - offset) return IbpStatus::kBadRange;
  out.assign(alloc->data.begin() + static_cast<long>(offset),
             alloc->data.begin() + static_cast<long>(offset + length));
  const_cast<Depot*>(this)->stats_.bytes_loaded += length;
  return IbpStatus::kOk;
}

IbpStatus Depot::probe(const Capability& manage_cap, AllocInfo& out) const {
  const Allocation* alloc = nullptr;
  if (const IbpStatus s = find(manage_cap, CapKind::kManage, &alloc); s != IbpStatus::kOk) {
    return s;
  }
  out.size = alloc->size;
  out.bytes_written = alloc->high_water;
  out.expires = alloc->expires;
  out.type = alloc->type;
  return IbpStatus::kOk;
}

IbpStatus Depot::extend(const Capability& manage_cap, SimDuration extra) {
  Allocation* alloc = nullptr;
  if (const IbpStatus s = find_mutable(manage_cap, CapKind::kManage, &alloc);
      s != IbpStatus::kOk) {
    return s;
  }
  if (extra <= 0 || extra > config_.max_lease) return IbpStatus::kRefused;
  alloc->expires = sim_.now() + extra;
  return IbpStatus::kOk;
}

IbpStatus Depot::release(const Capability& manage_cap) {
  Allocation* alloc = nullptr;
  if (const IbpStatus s = find_mutable(manage_cap, CapKind::kManage, &alloc);
      s != IbpStatus::kOk) {
    return s;
  }
  const std::uint64_t id = alloc->id;
  reclaim(id, IbpStatus::kNotFound);
  return IbpStatus::kOk;
}

std::size_t Depot::sweep_expired() {
  std::vector<std::uint64_t> dead;
  for (const auto& [id, alloc] : allocations_) {
    if (sim_.now() >= alloc.expires) dead.push_back(id);
  }
  for (const std::uint64_t id : dead) {
    reclaim(id, IbpStatus::kExpired);
    ++stats_.leases_expired;
  }
  return dead.size();
}

std::uint64_t Depot::bytes_free() const { return config_.capacity_bytes - used_; }

bool Depot::make_room(std::uint64_t needed) {
  if (needed > config_.capacity_bytes) return false;
  if (bytes_free() >= needed) return true;

  // First drop anything whose lease already ran out.
  sweep_expired();
  if (bytes_free() >= needed) return true;

  // Then revoke soft allocations, least recently accessed first — the IBP
  // "storage can be revoked at any time" semantics that make sharing safe.
  std::vector<const Allocation*> soft;
  for (const auto& [id, alloc] : allocations_) {
    if (alloc.type == AllocType::kSoft) soft.push_back(&alloc);
  }
  std::sort(soft.begin(), soft.end(), [](const Allocation* x, const Allocation* y) {
    return x->last_access < y->last_access;
  });
  for (const Allocation* victim : soft) {
    if (bytes_free() >= needed) break;
    reclaim(victim->id, IbpStatus::kRevoked);
    ++stats_.soft_revoked;
  }
  return bytes_free() >= needed;
}

void Depot::reclaim(std::uint64_t id, IbpStatus reason) {
  auto it = allocations_.find(id);
  if (it == allocations_.end()) return;
  used_ -= it->second.size;
  allocations_.erase(it);
  tombstones_[id] = reason;
}

}  // namespace lon::ibp
