// The IBP wire protocol.
//
// Depot operations as byte messages: what actually crosses the network
// between a client and a depot. Each request is a tagged, length-checked
// structure; dispatch() runs a request against a depot and produces the
// response bytes. The Fabric uses this codec for its control operations, so
// a depot's network surface is exercised exactly as a real deployment's
// would be (including rejection of malformed or truncated messages).
//
// Framing (little-endian, via ByteWriter/ByteReader):
//   request:  u8 opcode | u32 body-length | body
//   response: u8 status | u32 body-length | body
#pragma once

#include <cstdint>
#include <optional>
#include <variant>

#include "ibp/depot.hpp"
#include "util/bytes.hpp"

namespace lon::ibp::protocol {

enum class Op : std::uint8_t {
  kAllocate = 1,
  kStore = 2,
  kLoad = 3,
  kProbe = 4,
  kExtend = 5,
  kRelease = 6,
};

struct AllocateRequest {
  AllocRequest alloc;
};

struct StoreRequest {
  Capability write_cap;
  std::uint64_t offset = 0;
  Bytes data;
};

struct LoadRequest {
  Capability read_cap;
  std::uint64_t offset = 0;
  std::uint64_t length = 0;
};

struct ProbeRequest {
  Capability manage_cap;
};

struct ExtendRequest {
  Capability manage_cap;
  SimDuration extra = 0;
};

struct ReleaseRequest {
  Capability manage_cap;
};

using Request = std::variant<AllocateRequest, StoreRequest, LoadRequest, ProbeRequest,
                             ExtendRequest, ReleaseRequest>;

/// A decoded response: the status plus whichever payload the op returns.
struct Response {
  IbpStatus status = IbpStatus::kOk;
  std::optional<CapabilitySet> caps;  ///< allocate
  std::optional<Bytes> data;          ///< load
  std::optional<AllocInfo> info;      ///< probe
};

/// Encodes a request for the wire.
[[nodiscard]] Bytes encode_request(const Request& request);

/// Decodes a request; throws DecodeError on malformed/truncated input.
[[nodiscard]] Request decode_request(std::span<const std::uint8_t> wire);

/// Encodes a response.
[[nodiscard]] Bytes encode_response(const Response& response, Op op);

/// Decodes a response for the given op.
[[nodiscard]] Response decode_response(std::span<const std::uint8_t> wire, Op op);

/// The server side: decodes `wire`, executes against `depot`, returns the
/// encoded response. Malformed requests produce a kBadCapability-status
/// response rather than an exception (a depot must not crash on noise).
[[nodiscard]] Bytes dispatch(Depot& depot, std::span<const std::uint8_t> wire);

/// The opcode of an encoded request (for response decoding); throws on
/// empty input.
[[nodiscard]] Op peek_op(std::span<const std::uint8_t> wire);

}  // namespace lon::ibp::protocol
