#include "ibp/service.hpp"

#include "ibp/protocol.hpp"
#include "util/buffer_pool.hpp"

#include <memory>
#include <stdexcept>
#include <utility>

namespace lon::ibp {

namespace {
const CapabilitySet kNoCaps{};
}

const FabricStats& Fabric::stats() const {
  stats_view_.timeouts = metrics_.timeouts.value();
  stats_view_.requests_lost = metrics_.requests_lost.value();
  stats_view_.requests_dropped = metrics_.requests_dropped.value();
  stats_view_.flows_killed_offline = metrics_.flows_killed_offline.value();
  return stats_view_;
}

Depot& Fabric::add_depot(sim::NodeId node, const std::string& name,
                         const DepotConfig& config) {
  if (depots_.contains(name)) throw std::invalid_argument("Fabric: duplicate depot " + name);
  auto [it, inserted] =
      depots_.emplace(name, Hosted{Depot(sim_, name, config), node});
  return it->second.depot;
}

Depot* Fabric::find_depot(const std::string& name) {
  auto it = depots_.find(name);
  return it == depots_.end() ? nullptr : &it->second.depot;
}

const Depot* Fabric::find_depot(const std::string& name) const {
  auto it = depots_.find(name);
  return it == depots_.end() ? nullptr : &it->second.depot;
}

sim::NodeId Fabric::depot_node(const std::string& name) const {
  auto it = depots_.find(name);
  if (it == depots_.end()) throw std::out_of_range("Fabric: unknown depot " + name);
  return it->second.node;
}

void Fabric::at_depot(sim::NodeId from, sim::NodeId depot_node, std::function<void()> fn) {
  if (!net_.reachable(from, depot_node)) {
    // Partition: the request vanishes. Only the caller's deadline reports it.
    metrics_.requests_lost.inc();
    return;
  }
  const SimDuration delay = net_.path_latency(from, depot_node) + kDepotOpOverhead;
  sim_.after(delay, std::move(fn));
}

void Fabric::reply_to(sim::NodeId depot_node, sim::NodeId client, std::function<void()> fn) {
  if (!net_.reachable(depot_node, client)) {
    metrics_.requests_lost.inc();
    return;
  }
  sim_.after(net_.path_latency(depot_node, client), std::move(fn));
}

bool Fabric::dropped(const std::string& depot) {
  if (drop_ && drop_(depot)) {
    metrics_.requests_dropped.inc();
    return true;
  }
  return false;
}

SimDuration Fabric::book_disk(Hosted& hosted, std::uint64_t bytes) {
  const double rate = hosted.depot.config().disk_bytes_per_sec;
  const auto service =
      static_cast<SimDuration>(static_cast<double>(bytes) / rate * 1e9);
  const SimTime start = std::max(sim_.now(), hosted.disk_busy_until);
  hosted.disk_busy_until = start + service;
  return hosted.disk_busy_until - sim_.now();
}

void Fabric::set_offline(const std::string& name, bool offline) {
  auto it = depots_.find(name);
  if (it == depots_.end()) throw std::out_of_range("Fabric: unknown depot " + name);
  const bool was_offline = it->second.offline;
  it->second.offline = offline;
  if (offline && !was_offline) {
    // A crashed depot neither sends nor receives: bulk flows with the depot
    // as an endpoint must not complete delivery as if nothing happened.
    metrics_.flows_killed_offline.inc(net_.cancel_node_flows(it->second.node));
  }
}

bool Fabric::is_offline(const std::string& name) const {
  auto it = depots_.find(name);
  if (it == depots_.end()) throw std::out_of_range("Fabric: unknown depot " + name);
  return it->second.offline;
}

SimTime Fabric::disk_busy_until(const std::string& depot) const {
  auto it = depots_.find(depot);
  if (it == depots_.end()) throw std::out_of_range("Fabric: unknown depot " + depot);
  return it->second.disk_busy_until;
}

void Fabric::allocate_async(sim::NodeId client, const std::string& depot,
                            const AllocRequest& request, AllocCallback on_done) {
  auto it = depots_.find(depot);
  if (it == depots_.end()) {
    sim_.after(0, [cb = std::move(on_done)] { cb(IbpStatus::kNotFound, kNoCaps); });
    return;
  }
  Hosted& hosted = it->second;
  auto cb = with_deadline<IbpStatus, const CapabilitySet&>(
      timeouts_.control, std::move(on_done), {IbpStatus::kTimeout, kNoCaps});
  if (dropped(depot)) return;
  at_depot(client, hosted.node, [this, client, &hosted, request, cb = std::move(cb)] {
    if (hosted.offline) {
      reply_to(hosted.node, client, [cb] { cb(IbpStatus::kRefused, kNoCaps); });
      return;
    }
    const auto result = hosted.depot.allocate(request);
    // Reply travels back to the client.
    reply_to(hosted.node, client, [result, cb] { cb(result.status, result.caps); });
  });
}

void Fabric::store_async(sim::NodeId client, const Capability& write_cap,
                         std::uint64_t offset, Bytes data,
                         const sim::TransferOptions& net_options, StoreCallback on_done) {
  auto it = depots_.find(write_cap.depot);
  if (it == depots_.end()) {
    sim_.after(0, [cb = std::move(on_done)] { cb(IbpStatus::kNotFound); });
    return;
  }
  Hosted& hosted = it->second;
  auto cb = with_deadline<IbpStatus>(timeouts_.data, std::move(on_done),
                                     {IbpStatus::kTimeout});
  if (dropped(write_cap.depot)) return;
  if (!net_.reachable(client, hosted.node)) {
    metrics_.requests_lost.inc();
    return;
  }
  // The payload is a bulk flow from the client to the depot; the store
  // executes when the final byte lands.
  auto payload = std::make_shared<Bytes>(std::move(data));
  net_.start_transfer(
      client, hosted.node, payload->size(), net_options,
      [this, client, &hosted, write_cap, offset, payload,
       cb = std::move(cb)](const sim::TransferResult& r) {
        if (r.cancelled || hosted.offline) {
          cb(IbpStatus::kRefused);
          return;
        }
        // The write queues behind whatever the depot disk is already doing.
        const SimDuration disk = book_disk(hosted, payload->size());
        sim_.after(disk, [this, client, &hosted, write_cap, offset, payload, cb] {
          const IbpStatus status = hosted.depot.store(write_cap, offset, *payload);
          reply_to(hosted.node, client, [status, cb] { cb(status); });
        });
      });
}

void Fabric::load_async(sim::NodeId client, const Capability& read_cap,
                        std::uint64_t offset, std::uint64_t length,
                        const sim::TransferOptions& net_options, LoadCallback on_done) {
  auto it = depots_.find(read_cap.depot);
  if (it == depots_.end()) {
    sim_.after(0, [cb = std::move(on_done)] { cb(IbpStatus::kNotFound, Bytes{}); });
    return;
  }
  Hosted& hosted = it->second;
  auto cb = with_deadline<IbpStatus, Bytes>(timeouts_.data, std::move(on_done),
                                            {IbpStatus::kTimeout, Bytes{}});
  if (dropped(read_cap.depot)) return;
  // Request travels to the depot; the depot reads and streams the bytes back.
  at_depot(client, hosted.node,
           [this, client, &hosted, read_cap, offset, length, opts = net_options,
            cb = std::move(cb)] {
             if (hosted.offline) {
               reply_to(hosted.node, client, [cb] { cb(IbpStatus::kRefused, Bytes{}); });
               return;
             }
             Bytes data;
             const IbpStatus status = hosted.depot.load(read_cap, offset, length, data);
             if (status != IbpStatus::kOk) {
               reply_to(hosted.node, client, [status, cb] { cb(status, Bytes{}); });
               return;
             }
             // Silent corruption happens here: the depot believes it served
             // the bytes it stored.
             if (corrupt_) corrupt_(read_cap.depot, data);
             auto payload = std::make_shared<Bytes>(std::move(data));
             // The read waits its turn on the depot disk before streaming.
             const SimDuration disk = book_disk(hosted, payload->size());
             sim_.after(disk, [this, client, &hosted, payload, opts, cb] {
               if (!net_.reachable(hosted.node, client)) {
                 metrics_.requests_lost.inc();
                 return;
               }
               // The request leg above already served as connection setup.
               sim::TransferOptions flow = opts;
               flow.handshake = false;
               net_.start_transfer(hosted.node, client, payload->size(), flow,
                                   [payload, cb](const sim::TransferResult& r) {
                                     if (r.cancelled) {
                                       cb(IbpStatus::kRefused, Bytes{});
                                       return;
                                     }
                                     cb(IbpStatus::kOk, std::move(*payload));
                                   });
             });
           });
}

void Fabric::load_async(sim::NodeId client, const Capability& read_cap,
                        std::uint64_t offset, std::uint64_t length,
                        const sim::TransferOptions& net_options, std::shared_ptr<Bytes> dest,
                        std::uint64_t dest_offset, LoadIntoCallback on_done) {
  auto it = depots_.find(read_cap.depot);
  if (it == depots_.end()) {
    sim_.after(0, [cb = std::move(on_done)] { cb(IbpStatus::kNotFound, 0); });
    return;
  }
  Hosted& hosted = it->second;
  auto cb = with_deadline<IbpStatus, std::size_t>(timeouts_.data, std::move(on_done),
                                                  {IbpStatus::kTimeout, 0});
  if (dropped(read_cap.depot)) return;
  // Request travels to the depot; the depot reads and streams the bytes back.
  at_depot(client, hosted.node,
           [this, client, &hosted, read_cap, offset, length, opts = net_options,
            dest = std::move(dest), dest_offset, cb = std::move(cb)] {
             if (hosted.offline) {
               reply_to(hosted.node, client, [cb] { cb(IbpStatus::kRefused, 0); });
               return;
             }
             Bytes data;
             const IbpStatus status = hosted.depot.load(read_cap, offset, length, data);
             if (status != IbpStatus::kOk) {
               reply_to(hosted.node, client, [status, cb] { cb(status, 0); });
               return;
             }
             // Silent corruption happens here: the depot believes it served
             // the bytes it stored.
             if (corrupt_) corrupt_(read_cap.depot, data);
             auto payload = std::make_shared<Bytes>(std::move(data));
             // The read waits its turn on the depot disk before streaming.
             const SimDuration disk = book_disk(hosted, payload->size());
             sim_.after(disk, [this, client, &hosted, payload, opts, dest, dest_offset, cb] {
               if (!net_.reachable(hosted.node, client)) {
                 metrics_.requests_lost.inc();
                 return;
               }
               // The request leg above already served as connection setup.
               sim::TransferOptions flow = opts;
               flow.handshake = false;
               net_.start_transfer(
                   hosted.node, client, payload->size(), flow,
                   [payload, dest, dest_offset, cb](const sim::TransferResult& r) {
                     if (r.cancelled ||
                         dest_offset + payload->size() > dest->size()) {
                       cb(IbpStatus::kRefused, 0);
                       return;
                     }
                     util::copy_payload(dest->data() + dest_offset, payload->data(),
                                        payload->size());
                     cb(IbpStatus::kOk, payload->size());
                   });
             });
           });
}

void Fabric::probe_async(sim::NodeId client, const Capability& manage_cap,
                         ProbeCallback on_done) {
  auto it = depots_.find(manage_cap.depot);
  if (it == depots_.end()) {
    sim_.after(0, [cb = std::move(on_done)] { cb(IbpStatus::kNotFound, AllocInfo{}); });
    return;
  }
  Hosted& hosted = it->second;
  auto cb = with_deadline<IbpStatus, const AllocInfo&>(
      timeouts_.control, std::move(on_done), {IbpStatus::kTimeout, AllocInfo{}});
  if (dropped(manage_cap.depot)) return;
  const Bytes wire = protocol::encode_request(protocol::ProbeRequest{manage_cap});
  at_depot(client, hosted.node, [this, client, &hosted, wire, cb = std::move(cb)] {
    if (hosted.offline) {
      reply_to(hosted.node, client, [cb] { cb(IbpStatus::kRefused, AllocInfo{}); });
      return;
    }
    const Bytes reply = protocol::dispatch(hosted.depot, wire);
    reply_to(hosted.node, client, [reply, cb] {
      const auto response = protocol::decode_response(reply, protocol::Op::kProbe);
      cb(response.status, response.info.value_or(AllocInfo{}));
    });
  });
}

void Fabric::extend_async(sim::NodeId client, const Capability& manage_cap,
                          SimDuration extra, ManageCallback on_done) {
  auto it = depots_.find(manage_cap.depot);
  if (it == depots_.end()) {
    sim_.after(0, [cb = std::move(on_done)] { cb(IbpStatus::kNotFound); });
    return;
  }
  Hosted& hosted = it->second;
  auto cb = with_deadline<IbpStatus>(timeouts_.control, std::move(on_done),
                                     {IbpStatus::kTimeout});
  if (dropped(manage_cap.depot)) return;
  const Bytes wire = protocol::encode_request(protocol::ExtendRequest{manage_cap, extra});
  at_depot(client, hosted.node, [this, client, &hosted, wire, cb = std::move(cb)] {
    if (hosted.offline) {
      reply_to(hosted.node, client, [cb] { cb(IbpStatus::kRefused); });
      return;
    }
    const Bytes reply = protocol::dispatch(hosted.depot, wire);
    reply_to(hosted.node, client, [reply, cb] {
      cb(protocol::decode_response(reply, protocol::Op::kExtend).status);
    });
  });
}

void Fabric::release_async(sim::NodeId client, const Capability& manage_cap,
                           ManageCallback on_done) {
  auto it = depots_.find(manage_cap.depot);
  if (it == depots_.end()) {
    sim_.after(0, [cb = std::move(on_done)] { cb(IbpStatus::kNotFound); });
    return;
  }
  Hosted& hosted = it->second;
  auto cb = with_deadline<IbpStatus>(timeouts_.control, std::move(on_done),
                                     {IbpStatus::kTimeout});
  if (dropped(manage_cap.depot)) return;
  const Bytes wire = protocol::encode_request(protocol::ReleaseRequest{manage_cap});
  at_depot(client, hosted.node, [this, client, &hosted, wire, cb = std::move(cb)] {
    if (hosted.offline) {
      reply_to(hosted.node, client, [cb] { cb(IbpStatus::kRefused); });
      return;
    }
    const Bytes reply = protocol::dispatch(hosted.depot, wire);
    reply_to(hosted.node, client, [reply, cb] {
      cb(protocol::decode_response(reply, protocol::Op::kRelease).status);
    });
  });
}

void Fabric::copy_async(sim::NodeId client, const CopyRequest& request,
                        CopyCallback on_done) {
  auto src_it = depots_.find(request.src_read.depot);
  auto dst_it = depots_.find(request.dst_depot);
  if (src_it == depots_.end() || dst_it == depots_.end()) {
    sim_.after(0, [cb = std::move(on_done)] { cb(IbpStatus::kNotFound, kNoCaps); });
    return;
  }
  Hosted& src = src_it->second;
  Hosted& dst = dst_it->second;
  auto cb0 = with_deadline<IbpStatus, const CapabilitySet&>(
      timeouts_.data, std::move(on_done), {IbpStatus::kTimeout, kNoCaps});
  if (dropped(request.dst_depot)) return;

  // Step 1: allocate space on the destination depot.
  at_depot(client, dst.node, [this, client, &src, &dst, request,
                              cb = std::move(cb0)]() mutable {
    if (dst.offline) {
      reply_to(dst.node, client, [cb] { cb(IbpStatus::kRefused, kNoCaps); });
      return;
    }
    const auto alloc = dst.depot.allocate(request.dst_alloc);
    if (alloc.status != IbpStatus::kOk) {
      reply_to(dst.node, client, [status = alloc.status, cb] { cb(status, kNoCaps); });
      return;
    }
    // Step 2: command the source depot to push (control hop client -> src;
    // issued immediately after the allocate reply would have arrived —
    // modelled as the dst->client + client->src legs in sequence).
    reply_to(dst.node, client, [this, client, &src, &dst, request, caps = alloc.caps,
                                cb = std::move(cb)]() mutable {
      at_depot(client, src.node, [this, client, &src, &dst, request, caps,
                                  cb = std::move(cb)]() mutable {
        if (src.offline) {
          reply_to(src.node, client, [cb] { cb(IbpStatus::kRefused, kNoCaps); });
          return;
        }
        Bytes data;
        const IbpStatus status =
            src.depot.load(request.src_read, request.src_offset, request.length, data);
        if (status != IbpStatus::kOk) {
          reply_to(src.node, client, [status, cb] { cb(status, kNoCaps); });
          return;
        }
        // Step 3: the bulk flow runs depot-to-depot; the client is not on
        // the data path ("third party communication without consuming
        // resources on either the client or the client agent"). The source
        // disk must read the bytes first; the destination disk writes them
        // after arrival — both queue FIFO on their depot's disk.
        auto payload = std::make_shared<Bytes>(std::move(data));
        const SimDuration src_disk = book_disk(src, payload->size());
        sim_.after(src_disk, [this, client, &src, &dst, request, caps, payload,
                              cb = std::move(cb)]() mutable {
          if (!net_.reachable(src.node, dst.node)) {
            metrics_.requests_lost.inc();
            return;
          }
          net_.start_transfer(
              src.node, dst.node, payload->size(), request.net,
              [this, client, &dst, caps, payload,
               cb = std::move(cb)](const sim::TransferResult& r) {
                if (r.cancelled) {
                  cb(IbpStatus::kRefused, kNoCaps);
                  return;
                }
                const SimDuration dst_disk = book_disk(dst, payload->size());
                sim_.after(dst_disk, [this, client, &dst, caps, payload, cb] {
                  const IbpStatus status = dst.depot.store(caps.write, 0, *payload);
                  // Step 4: completion ack to the orchestrating client.
                  reply_to(dst.node, client, [status, caps, cb] { cb(status, caps); });
                });
              });
        });
      });
    });
  });
}

}  // namespace lon::ibp
