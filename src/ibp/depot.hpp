// An IBP depot: best-effort, time-limited, shareable network storage.
//
// Implements the storage semantics of the Internet Backplane Protocol
// (Plank et al., IEEE Internet Computing 2001; paper section 2.2):
//
//  * allocations are *byte arrays* with read/write/manage capabilities;
//  * every allocation carries a lease — when it expires the storage is
//    reclaimed and the data is gone (lazy reclamation on access plus an
//    explicit sweep);
//  * allocations can be refused outright by admission policy on both size
//    and duration ("much as routers can drop packets");
//  * *soft* allocations can be revoked at any moment to make room for new
//    requests, which is what makes idle resources safely shareable.
//
// The depot itself is purely local state plus the virtual clock; all
// network-visible operations go through ibp::Fabric.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "ibp/capability.hpp"
#include "simnet/simulator.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace lon::ibp {

enum class AllocType : std::uint8_t { kHard = 0, kSoft = 1 };

/// Result codes for depot operations, mirroring IBP's weak service model.
enum class IbpStatus {
  kOk,
  kRefused,         ///< admission control rejected the request
  kNoCapacity,      ///< no space even after revoking soft allocations
  kNotFound,        ///< no such allocation (never existed or reclaimed)
  kExpired,         ///< lease ran out
  kRevoked,         ///< soft allocation was reclaimed under pressure
  kBadCapability,   ///< wrong key or wrong rights for the operation
  kBadRange,        ///< offset/length outside the allocated byte array
  kTimeout,         ///< no reply within the fabric's per-operation deadline
};

[[nodiscard]] const char* to_string(IbpStatus status);

struct DepotConfig {
  std::uint64_t capacity_bytes = 1ull << 32;       ///< total storage
  std::uint64_t max_alloc_bytes = 1ull << 30;      ///< admission: size cap
  SimDuration max_lease = 24 * 3600 * kSecond;     ///< admission: duration cap
  std::uint64_t rng_seed = 0x1b9d;                 ///< capability key stream
  /// Disk service rate. Data-bearing operations occupy the depot's single
  /// disk for bytes/rate seconds, FIFO — so heavy staging traffic delays
  /// concurrent reads from the same depot (the contention the paper observed
  /// on the LAN depot during aggressive prestaging, section 4.3).
  double disk_bytes_per_sec = 80e6;
};

struct AllocRequest {
  std::uint64_t size = 0;
  SimDuration lease = kSecond;
  AllocType type = AllocType::kHard;
};

/// Snapshot returned by probe().
struct AllocInfo {
  std::uint64_t size = 0;
  std::uint64_t bytes_written = 0;  ///< high-water mark of stored data
  SimTime expires = 0;
  AllocType type = AllocType::kHard;
};

struct DepotStats {
  std::uint64_t allocations_made = 0;
  std::uint64_t allocations_refused = 0;
  std::uint64_t leases_expired = 0;
  std::uint64_t soft_revoked = 0;
  std::uint64_t bytes_stored = 0;
  std::uint64_t bytes_loaded = 0;
};

class Depot {
 public:
  Depot(sim::Simulator& sim, std::string name, const DepotConfig& config);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const DepotConfig& config() const { return config_; }

  /// Changes the disk service rate at runtime (fault injection: a degraded
  /// or overloaded disk). Rate must be positive.
  void set_disk_rate(double bytes_per_sec);

  /// Attempts an allocation. On success returns the capability triple; on
  /// refusal/no-capacity returns the status instead. Soft allocations may be
  /// revoked to make room (revoking never happens for a request that fails
  /// admission policy).
  struct AllocResult {
    IbpStatus status = IbpStatus::kOk;
    CapabilitySet caps;  ///< valid only when status == kOk
  };
  AllocResult allocate(const AllocRequest& request);

  /// Writes data at the given offset (must lie within the allocation).
  IbpStatus store(const Capability& write_cap, std::uint64_t offset,
                  std::span<const std::uint8_t> data);

  /// Reads length bytes at offset into out.
  IbpStatus load(const Capability& read_cap, std::uint64_t offset, std::uint64_t length,
                 Bytes& out) const;

  /// Queries allocation metadata.
  IbpStatus probe(const Capability& manage_cap, AllocInfo& out) const;

  /// Renews the lease to now + extra (subject to the admission duration cap).
  IbpStatus extend(const Capability& manage_cap, SimDuration extra);

  /// Explicitly releases an allocation.
  IbpStatus release(const Capability& manage_cap);

  /// Reclaims every expired allocation now (also happens lazily on access).
  std::size_t sweep_expired();

  [[nodiscard]] std::uint64_t bytes_free() const;
  [[nodiscard]] std::uint64_t bytes_used() const { return used_; }
  [[nodiscard]] std::size_t allocation_count() const { return allocations_.size(); }
  [[nodiscard]] const DepotStats& stats() const { return stats_; }

 private:
  struct Allocation {
    std::uint64_t id = 0;
    std::uint64_t size = 0;
    std::uint64_t keys[3] = {0, 0, 0};  // read, write, manage
    SimTime expires = 0;
    AllocType type = AllocType::kHard;
    SimTime last_access = 0;
    Bytes data;
    std::uint64_t high_water = 0;
  };

  /// Looks up an allocation, verifying key + rights. Reclaims it lazily if
  /// the lease expired (in which case kExpired is returned). `tombstone`
  /// receives kRevoked for allocations revoked under pressure.
  IbpStatus find(const Capability& cap, CapKind required, const Allocation** out) const;
  IbpStatus find_mutable(const Capability& cap, CapKind required, Allocation** out);

  /// Frees soft allocations (oldest access first) until `needed` bytes fit.
  /// Returns true on success.
  bool make_room(std::uint64_t needed);

  void reclaim(std::uint64_t id, IbpStatus reason);

  sim::Simulator& sim_;
  std::string name_;
  DepotConfig config_;
  Rng rng_;

  std::map<std::uint64_t, Allocation> allocations_;
  // Reclaimed allocation ids with the reason, so late accesses can
  // distinguish kExpired/kRevoked from never-existed.
  std::map<std::uint64_t, IbpStatus> tombstones_;
  std::uint64_t next_id_ = 1;
  std::uint64_t used_ = 0;
  DepotStats stats_;
};

}  // namespace lon::ibp
