#include "ibp/protocol.hpp"

#include <stdexcept>

namespace lon::ibp::protocol {

namespace {

void put_capability(ByteWriter& out, const Capability& cap) {
  out.str(cap.depot);
  out.u64(cap.allocation);
  out.u64(cap.key);
  out.u8(static_cast<std::uint8_t>(cap.kind));
}

Capability get_capability(ByteReader& in) {
  Capability cap;
  cap.depot = in.str();
  cap.allocation = in.u64();
  cap.key = in.u64();
  const auto kind = in.u8();
  if (kind > 2) throw DecodeError("protocol: bad capability kind");
  cap.kind = static_cast<CapKind>(kind);
  return cap;
}

void put_caps_set(ByteWriter& out, const CapabilitySet& caps) {
  put_capability(out, caps.read);
  put_capability(out, caps.write);
  put_capability(out, caps.manage);
}

CapabilitySet get_caps_set(ByteReader& in) {
  CapabilitySet caps;
  caps.read = get_capability(in);
  caps.write = get_capability(in);
  caps.manage = get_capability(in);
  return caps;
}

struct RequestEncoder {
  ByteWriter body;

  Op operator()(const AllocateRequest& r) {
    body.u64(r.alloc.size);
    body.i64(r.alloc.lease);
    body.u8(static_cast<std::uint8_t>(r.alloc.type));
    return Op::kAllocate;
  }
  Op operator()(const StoreRequest& r) {
    put_capability(body, r.write_cap);
    body.u64(r.offset);
    body.blob(r.data);
    return Op::kStore;
  }
  Op operator()(const LoadRequest& r) {
    put_capability(body, r.read_cap);
    body.u64(r.offset);
    body.u64(r.length);
    return Op::kLoad;
  }
  Op operator()(const ProbeRequest& r) {
    put_capability(body, r.manage_cap);
    return Op::kProbe;
  }
  Op operator()(const ExtendRequest& r) {
    put_capability(body, r.manage_cap);
    body.i64(r.extra);
    return Op::kExtend;
  }
  Op operator()(const ReleaseRequest& r) {
    put_capability(body, r.manage_cap);
    return Op::kRelease;
  }
};

}  // namespace

Bytes encode_request(const Request& request) {
  RequestEncoder encoder;
  const Op op = std::visit(encoder, request);
  ByteWriter out;
  out.u8(static_cast<std::uint8_t>(op));
  out.blob(encoder.body.bytes());
  return out.take();
}

Op peek_op(std::span<const std::uint8_t> wire) {
  ByteReader in(wire);
  const auto op = in.u8();
  if (op < 1 || op > 6) throw DecodeError("protocol: bad opcode");
  return static_cast<Op>(op);
}

Request decode_request(std::span<const std::uint8_t> wire) {
  ByteReader in(wire);
  const auto op_byte = in.u8();
  const Bytes body_bytes = in.blob();
  if (!in.done()) throw DecodeError("protocol: trailing bytes in request");
  ByteReader body(body_bytes);

  switch (op_byte) {
    case static_cast<std::uint8_t>(Op::kAllocate): {
      AllocateRequest r;
      r.alloc.size = body.u64();
      r.alloc.lease = body.i64();
      const auto type = body.u8();
      if (type > 1) throw DecodeError("protocol: bad alloc type");
      r.alloc.type = static_cast<AllocType>(type);
      if (!body.done()) throw DecodeError("protocol: trailing bytes");
      return r;
    }
    case static_cast<std::uint8_t>(Op::kStore): {
      StoreRequest r;
      r.write_cap = get_capability(body);
      r.offset = body.u64();
      r.data = body.blob();
      if (!body.done()) throw DecodeError("protocol: trailing bytes");
      return r;
    }
    case static_cast<std::uint8_t>(Op::kLoad): {
      LoadRequest r;
      r.read_cap = get_capability(body);
      r.offset = body.u64();
      r.length = body.u64();
      if (!body.done()) throw DecodeError("protocol: trailing bytes");
      return r;
    }
    case static_cast<std::uint8_t>(Op::kProbe): {
      ProbeRequest r;
      r.manage_cap = get_capability(body);
      if (!body.done()) throw DecodeError("protocol: trailing bytes");
      return r;
    }
    case static_cast<std::uint8_t>(Op::kExtend): {
      ExtendRequest r;
      r.manage_cap = get_capability(body);
      r.extra = body.i64();
      if (!body.done()) throw DecodeError("protocol: trailing bytes");
      return r;
    }
    case static_cast<std::uint8_t>(Op::kRelease): {
      ReleaseRequest r;
      r.manage_cap = get_capability(body);
      if (!body.done()) throw DecodeError("protocol: trailing bytes");
      return r;
    }
    default:
      throw DecodeError("protocol: unknown opcode");
  }
}

Bytes encode_response(const Response& response, Op op) {
  ByteWriter out;
  out.u8(static_cast<std::uint8_t>(response.status));
  ByteWriter body;
  if (response.status == IbpStatus::kOk) {
    switch (op) {
      case Op::kAllocate:
        put_caps_set(body, response.caps.value());
        break;
      case Op::kLoad:
        body.blob(response.data.value());
        break;
      case Op::kProbe: {
        const AllocInfo& info = response.info.value();
        body.u64(info.size);
        body.u64(info.bytes_written);
        body.i64(info.expires);
        body.u8(static_cast<std::uint8_t>(info.type));
        break;
      }
      case Op::kStore:
      case Op::kExtend:
      case Op::kRelease:
        break;  // status only
    }
  }
  out.blob(body.bytes());
  return out.take();
}

Response decode_response(std::span<const std::uint8_t> wire, Op op) {
  ByteReader in(wire);
  Response response;
  const auto status = in.u8();
  if (status > static_cast<std::uint8_t>(IbpStatus::kBadRange)) {
    throw DecodeError("protocol: bad status");
  }
  response.status = static_cast<IbpStatus>(status);
  const Bytes body_bytes = in.blob();
  if (!in.done()) throw DecodeError("protocol: trailing bytes in response");
  if (response.status != IbpStatus::kOk) return response;

  ByteReader body(body_bytes);
  switch (op) {
    case Op::kAllocate:
      response.caps = get_caps_set(body);
      break;
    case Op::kLoad:
      response.data = body.blob();
      break;
    case Op::kProbe: {
      AllocInfo info;
      info.size = body.u64();
      info.bytes_written = body.u64();
      info.expires = body.i64();
      const auto type = body.u8();
      if (type > 1) throw DecodeError("protocol: bad alloc type");
      info.type = static_cast<AllocType>(type);
      response.info = info;
      break;
    }
    case Op::kStore:
    case Op::kExtend:
    case Op::kRelease:
      break;
  }
  if (!body.done()) throw DecodeError("protocol: trailing bytes");
  return response;
}

Bytes dispatch(Depot& depot, std::span<const std::uint8_t> wire) {
  Request request;
  Op op;
  try {
    op = peek_op(wire);
    request = decode_request(wire);
  } catch (const DecodeError&) {
    // A depot answers noise with a refusal, never a crash.
    Response bad;
    bad.status = IbpStatus::kBadCapability;
    return encode_response(bad, Op::kRelease);  // status-only shape
  }

  Response response;
  if (const auto* r = std::get_if<AllocateRequest>(&request)) {
    const auto result = depot.allocate(r->alloc);
    response.status = result.status;
    if (result.status == IbpStatus::kOk) response.caps = result.caps;
  } else if (const auto* r = std::get_if<StoreRequest>(&request)) {
    response.status = depot.store(r->write_cap, r->offset, r->data);
  } else if (const auto* r = std::get_if<LoadRequest>(&request)) {
    Bytes data;
    response.status = depot.load(r->read_cap, r->offset, r->length, data);
    if (response.status == IbpStatus::kOk) response.data = std::move(data);
  } else if (const auto* r = std::get_if<ProbeRequest>(&request)) {
    AllocInfo info;
    response.status = depot.probe(r->manage_cap, info);
    if (response.status == IbpStatus::kOk) response.info = info;
  } else if (const auto* r = std::get_if<ExtendRequest>(&request)) {
    response.status = depot.extend(r->manage_cap, r->extra);
  } else if (const auto* r = std::get_if<ReleaseRequest>(&request)) {
    response.status = depot.release(r->manage_cap);
  }
  return encode_response(response, op);
}

}  // namespace lon::ibp::protocol
