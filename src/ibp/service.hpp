// The depot fabric: IBP operations as they appear over the network.
//
// Depots are hosted at simulator network nodes. A client at node C operating
// on a depot at node D pays, in virtual time, the request's propagation to D,
// a small depot processing overhead, and — for data-bearing operations — a
// bulk flow through the shared network model. Third-party copy moves data
// directly depot-to-depot, with only control traffic touching the client;
// this is the primitive behind LoRS staging and the aggressive prestaging of
// view sets (paper sections 3.5, 4.3).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>

#include "ibp/depot.hpp"
#include "simnet/network.hpp"

namespace lon::ibp {

/// Fixed CPU cost charged by a depot per operation (request parsing,
/// allocation table work). Small relative to any transfer.
inline constexpr SimDuration kDepotOpOverhead = 300 * kMicrosecond;

class Fabric {
 public:
  Fabric(sim::Simulator& sim, sim::Network& net) : sim_(sim), net_(net) {}

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  // --- Hosting ------------------------------------------------------------

  /// Creates a depot hosted at `node`. The name must be unique.
  Depot& add_depot(sim::NodeId node, const std::string& name, const DepotConfig& config);

  [[nodiscard]] Depot* find_depot(const std::string& name);
  [[nodiscard]] const Depot* find_depot(const std::string& name) const;
  [[nodiscard]] sim::NodeId depot_node(const std::string& name) const;
  [[nodiscard]] std::size_t depot_count() const { return depots_.size(); }

  /// Takes a depot off the network (transient failure — IBP's service model
  /// explicitly allows depots to vanish; "it may be necessary to assume that
  /// storage can be permanently lost"). Remote operations against an offline
  /// depot fail with kRefused after the request's one-way latency. Stored
  /// data survives and is served again once the depot returns.
  void set_offline(const std::string& name, bool offline);
  [[nodiscard]] bool is_offline(const std::string& name) const;

  // --- Remote operations (virtual-time async) ------------------------------

  using AllocCallback = std::function<void(IbpStatus, const CapabilitySet&)>;
  /// allocate() at `depot`, requested from node `client`.
  void allocate_async(sim::NodeId client, const std::string& depot,
                      const AllocRequest& request, AllocCallback on_done);

  using StoreCallback = std::function<void(IbpStatus)>;
  /// Uploads `data` into an existing allocation: bulk flow client -> depot.
  void store_async(sim::NodeId client, const Capability& write_cap, std::uint64_t offset,
                   Bytes data, const sim::TransferOptions& net_options,
                   StoreCallback on_done);

  using LoadCallback = std::function<void(IbpStatus, Bytes)>;
  /// Downloads bytes from an allocation: request to depot, bulk flow
  /// depot -> client.
  void load_async(sim::NodeId client, const Capability& read_cap, std::uint64_t offset,
                  std::uint64_t length, const sim::TransferOptions& net_options,
                  LoadCallback on_done);

  using ProbeCallback = std::function<void(IbpStatus, const AllocInfo&)>;
  /// Remote probe (manage capability). The request and reply travel as
  /// protocol-encoded messages (see ibp/protocol.hpp).
  void probe_async(sim::NodeId client, const Capability& manage_cap,
                   ProbeCallback on_done);

  using ManageCallback = std::function<void(IbpStatus)>;
  /// Remote lease extension to now + extra.
  void extend_async(sim::NodeId client, const Capability& manage_cap, SimDuration extra,
                    ManageCallback on_done);

  /// Remote release of an allocation.
  void release_async(sim::NodeId client, const Capability& manage_cap,
                     ManageCallback on_done);

  struct CopyRequest {
    Capability src_read;        ///< where the bytes come from
    std::string dst_depot;      ///< depot that receives the copy
    std::uint64_t src_offset = 0;
    std::uint64_t length = 0;
    AllocRequest dst_alloc;     ///< allocation to create on the destination
    sim::TransferOptions net;   ///< options for the depot-to-depot flow
  };
  /// Third-party copy, orchestrated from `client`: allocate on dst, command
  /// src to push, bulk flow src-depot -> dst-depot, ack to client. The
  /// callback receives the capability set of the new destination allocation.
  using CopyCallback = std::function<void(IbpStatus, const CapabilitySet&)>;
  void copy_async(sim::NodeId client, const CopyRequest& request, CopyCallback on_done);

  /// Time the named depot's disk is busy through (for tests/metrics).
  [[nodiscard]] SimTime disk_busy_until(const std::string& depot) const;

 private:
  struct Hosted {
    Depot depot;
    sim::NodeId node;
    SimTime disk_busy_until = 0;  ///< FIFO disk queue tail
    bool offline = false;
  };

  /// Runs fn after the one-way control-message latency from `from` to the
  /// depot's node plus the depot op overhead.
  void at_depot(sim::NodeId from, sim::NodeId depot_node, std::function<void()> fn);

  /// Books `bytes` of disk service on the depot, returning the delay from
  /// now until that service completes (FIFO behind earlier bookings).
  SimDuration book_disk(Hosted& hosted, std::uint64_t bytes);

  sim::Simulator& sim_;
  sim::Network& net_;
  std::unordered_map<std::string, Hosted> depots_;
};

}  // namespace lon::ibp
