// The depot fabric: IBP operations as they appear over the network.
//
// Depots are hosted at simulator network nodes. A client at node C operating
// on a depot at node D pays, in virtual time, the request's propagation to D,
// a small depot processing overhead, and — for data-bearing operations — a
// bulk flow through the shared network model. Third-party copy moves data
// directly depot-to-depot, with only control traffic touching the client;
// this is the primitive behind LoRS staging and the aggressive prestaging of
// view sets (paper sections 3.5, 4.3).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <tuple>
#include <unordered_map>

#include "ibp/depot.hpp"
#include "obs/obs.hpp"
#include "simnet/network.hpp"

namespace lon::ibp {

/// Fixed CPU cost charged by a depot per operation (request parsing,
/// allocation table work). Small relative to any transfer.
inline constexpr SimDuration kDepotOpOverhead = 300 * kMicrosecond;

/// Per-operation deadlines. Zero disables the deadline (the seed behaviour):
/// an operation against a partitioned depot then hangs forever, so any
/// deployment that can lose links or drop requests must set these. kTimeout
/// is reported when a deadline fires; the late reply (if any) is discarded.
struct FabricTimeouts {
  SimDuration control = 0;  ///< allocate/probe/extend/release
  SimDuration data = 0;     ///< store/load/copy (bulk transfers)
};

struct FabricStats {
  std::uint64_t timeouts = 0;            ///< operations that hit their deadline
  std::uint64_t requests_lost = 0;       ///< sent while the depot was unreachable
  std::uint64_t requests_dropped = 0;    ///< eaten by the fault-injection hook
  std::uint64_t flows_killed_offline = 0;///< in-flight flows cancelled by set_offline
};

class Fabric {
 public:
  Fabric(sim::Simulator& sim, sim::Network& net, obs::Context* obs = nullptr)
      : sim_(sim),
        net_(net),
        obs_(obs != nullptr ? *obs : obs::global()),
        scope_(obs_.metrics.scope("ibp")),
        metrics_{scope_.counter("ibp.timeouts"),
                 scope_.counter("ibp.requests_lost"),
                 scope_.counter("ibp.requests_dropped"),
                 scope_.counter("ibp.flows_killed_offline")} {}

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  // --- Robustness knobs ----------------------------------------------------

  void set_timeouts(const FabricTimeouts& timeouts) { timeouts_ = timeouts; }
  [[nodiscard]] const FabricTimeouts& timeouts() const { return timeouts_; }
  /// Robustness counters, read back out of the obs registry (which is the
  /// single source of truth; this struct is a compatibility view).
  [[nodiscard]] const FabricStats& stats() const;

  /// Fault-injection hook: return true to silently eat a request addressed
  /// to `depot` (the caller sees nothing until its deadline fires).
  using DropHook = std::function<bool(const std::string& depot)>;
  void set_drop_hook(DropHook hook) { drop_ = std::move(hook); }

  /// Fault-injection hook: mutate bytes as they leave `depot` on a load —
  /// silent on-the-wire/at-rest corruption. Detection is the job of the
  /// layers above (LoRS block checksums).
  using CorruptHook = std::function<void(const std::string& depot, Bytes& data)>;
  void set_corrupt_hook(CorruptHook hook) { corrupt_ = std::move(hook); }

  // --- Hosting ------------------------------------------------------------

  /// Creates a depot hosted at `node`. The name must be unique.
  Depot& add_depot(sim::NodeId node, const std::string& name, const DepotConfig& config);

  [[nodiscard]] Depot* find_depot(const std::string& name);
  [[nodiscard]] const Depot* find_depot(const std::string& name) const;
  [[nodiscard]] sim::NodeId depot_node(const std::string& name) const;
  [[nodiscard]] std::size_t depot_count() const { return depots_.size(); }

  /// Takes a depot off the network (transient failure — IBP's service model
  /// explicitly allows depots to vanish; "it may be necessary to assume that
  /// storage can be permanently lost"). Remote operations against an offline
  /// depot fail with kRefused after the request's one-way latency, and every
  /// in-flight bulk flow to or from the depot is cancelled (a crashed host
  /// neither sends nor receives; bytes "in the network" must not complete
  /// delivery as if the crash never happened). Stored data survives and is
  /// served again once the depot returns.
  void set_offline(const std::string& name, bool offline);
  [[nodiscard]] bool is_offline(const std::string& name) const;

  // --- Remote operations (virtual-time async) ------------------------------

  using AllocCallback = std::function<void(IbpStatus, const CapabilitySet&)>;
  /// allocate() at `depot`, requested from node `client`.
  void allocate_async(sim::NodeId client, const std::string& depot,
                      const AllocRequest& request, AllocCallback on_done);

  using StoreCallback = std::function<void(IbpStatus)>;
  /// Uploads `data` into an existing allocation: bulk flow client -> depot.
  void store_async(sim::NodeId client, const Capability& write_cap, std::uint64_t offset,
                   Bytes data, const sim::TransferOptions& net_options,
                   StoreCallback on_done);

  using LoadCallback = std::function<void(IbpStatus, Bytes)>;
  /// Downloads bytes from an allocation: request to depot, bulk flow
  /// depot -> client.
  void load_async(sim::NodeId client, const Capability& read_cap, std::uint64_t offset,
                  std::uint64_t length, const sim::TransferOptions& net_options,
                  LoadCallback on_done);

  using LoadIntoCallback = std::function<void(IbpStatus, std::size_t)>;
  /// Scatter-gather variant: the loaded bytes land directly at
  /// dest->data() + dest_offset (which must already cover `length` bytes) —
  /// the model of a NIC delivering into a caller-owned slab. Depot-side
  /// semantics (disk queue, corruption hook, offline behaviour) are identical
  /// to the Bytes-returning overload; the single client-side landing pass is
  /// the one payload copy of a download and is charged to the payload-copy
  /// meter. The callback reports how many bytes landed (0 on failure). The
  /// destination is written only on success, and only on the simulator
  /// thread.
  void load_async(sim::NodeId client, const Capability& read_cap, std::uint64_t offset,
                  std::uint64_t length, const sim::TransferOptions& net_options,
                  std::shared_ptr<Bytes> dest, std::uint64_t dest_offset,
                  LoadIntoCallback on_done);

  using ProbeCallback = std::function<void(IbpStatus, const AllocInfo&)>;
  /// Remote probe (manage capability). The request and reply travel as
  /// protocol-encoded messages (see ibp/protocol.hpp).
  void probe_async(sim::NodeId client, const Capability& manage_cap,
                   ProbeCallback on_done);

  using ManageCallback = std::function<void(IbpStatus)>;
  /// Remote lease extension to now + extra.
  void extend_async(sim::NodeId client, const Capability& manage_cap, SimDuration extra,
                    ManageCallback on_done);

  /// Remote release of an allocation.
  void release_async(sim::NodeId client, const Capability& manage_cap,
                     ManageCallback on_done);

  struct CopyRequest {
    Capability src_read;        ///< where the bytes come from
    std::string dst_depot;      ///< depot that receives the copy
    std::uint64_t src_offset = 0;
    std::uint64_t length = 0;
    AllocRequest dst_alloc;     ///< allocation to create on the destination
    sim::TransferOptions net;   ///< options for the depot-to-depot flow
  };
  /// Third-party copy, orchestrated from `client`: allocate on dst, command
  /// src to push, bulk flow src-depot -> dst-depot, ack to client. The
  /// callback receives the capability set of the new destination allocation.
  using CopyCallback = std::function<void(IbpStatus, const CapabilitySet&)>;
  void copy_async(sim::NodeId client, const CopyRequest& request, CopyCallback on_done);

  /// Time the named depot's disk is busy through (for tests/metrics).
  [[nodiscard]] SimTime disk_busy_until(const std::string& depot) const;

 private:
  struct Hosted {
    Depot depot;
    sim::NodeId node;
    SimTime disk_busy_until = 0;  ///< FIFO disk queue tail
    bool offline = false;
  };

  /// Runs fn after the one-way control-message latency from `from` to the
  /// depot's node plus the depot op overhead. If the two nodes are
  /// partitioned the request is lost: fn never runs and only the caller's
  /// deadline (if any) reports the failure.
  void at_depot(sim::NodeId from, sim::NodeId depot_node, std::function<void()> fn);

  /// Delivers a reply from the depot back to the client, or loses it if the
  /// route vanished while the operation was in progress.
  void reply_to(sim::NodeId depot_node, sim::NodeId client, std::function<void()> fn);

  /// Rolls the fault-injection drop hook for one request.
  [[nodiscard]] bool dropped(const std::string& depot);

  /// Wraps `cb` so that whichever fires first wins: the real completion or a
  /// timeout event reporting kTimeout via `on_timeout`. With timeout <= 0 the
  /// callback is returned unwrapped (no deadline). The disarmed timer is
  /// cancelled so it neither runs nor drags the virtual clock forward.
  template <typename... Args>
  std::function<void(Args...)> with_deadline(SimDuration timeout,
                                             std::function<void(Args...)> cb,
                                             std::tuple<std::decay_t<Args>...> on_timeout) {
    if (timeout <= 0 || !cb) return cb;
    struct Guard {
      bool done = false;
      sim::TimerId timer = 0;
    };
    auto guard = std::make_shared<Guard>();
    guard->timer = sim_.after(timeout, [this, guard, cb, args = std::move(on_timeout)] {
      if (guard->done) return;
      guard->done = true;
      metrics_.timeouts.inc();
      std::apply(cb, args);
    });
    return [this, guard, cb = std::move(cb)](Args... args) {
      if (guard->done) return;
      guard->done = true;
      sim_.cancel(guard->timer);
      cb(std::forward<Args>(args)...);
    };
  }

  /// Books `bytes` of disk service on the depot, returning the delay from
  /// now until that service completes (FIFO behind earlier bookings).
  SimDuration book_disk(Hosted& hosted, std::uint64_t bytes);

  struct Metrics {
    obs::Counter& timeouts;
    obs::Counter& requests_lost;
    obs::Counter& requests_dropped;
    obs::Counter& flows_killed_offline;
  };

  sim::Simulator& sim_;
  sim::Network& net_;
  obs::Context& obs_;
  obs::Scope scope_;
  Metrics metrics_;
  std::unordered_map<std::string, Hosted> depots_;
  FabricTimeouts timeouts_;
  mutable FabricStats stats_view_;
  DropHook drop_;
  CorruptHook corrupt_;
};

}  // namespace lon::ibp
