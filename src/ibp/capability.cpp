#include "ibp/capability.hpp"

#include <charconv>

namespace lon::ibp {

const char* to_string(CapKind kind) {
  switch (kind) {
    case CapKind::kRead:
      return "read";
    case CapKind::kWrite:
      return "write";
    case CapKind::kManage:
      return "manage";
  }
  return "?";
}

std::string Capability::to_uri() const {
  char keyhex[17];
  auto [end, ec] = std::to_chars(keyhex, keyhex + 16, key, 16);
  *end = '\0';
  return "ibp://" + depot + "/" + std::to_string(allocation) + "#" + keyhex + "/" +
         to_string(kind);
}

std::optional<Capability> Capability::parse(const std::string& uri) {
  constexpr std::string_view scheme = "ibp://";
  if (uri.rfind(scheme.data(), 0) != 0) return std::nullopt;
  const std::size_t host_start = scheme.size();
  const std::size_t slash = uri.find('/', host_start);
  if (slash == std::string::npos) return std::nullopt;
  const std::size_t hash = uri.find('#', slash + 1);
  if (hash == std::string::npos) return std::nullopt;
  const std::size_t kind_slash = uri.find('/', hash + 1);
  if (kind_slash == std::string::npos) return std::nullopt;

  Capability cap;
  cap.depot = uri.substr(host_start, slash - host_start);
  if (cap.depot.empty()) return std::nullopt;

  const char* alloc_begin = uri.data() + slash + 1;
  const char* alloc_end = uri.data() + hash;
  auto [p1, e1] = std::from_chars(alloc_begin, alloc_end, cap.allocation);
  if (e1 != std::errc{} || p1 != alloc_end) return std::nullopt;

  const char* key_begin = uri.data() + hash + 1;
  const char* key_end = uri.data() + kind_slash;
  auto [p2, e2] = std::from_chars(key_begin, key_end, cap.key, 16);
  if (e2 != std::errc{} || p2 != key_end) return std::nullopt;

  const std::string kind = uri.substr(kind_slash + 1);
  if (kind == "read") {
    cap.kind = CapKind::kRead;
  } else if (kind == "write") {
    cap.kind = CapKind::kWrite;
  } else if (kind == "manage") {
    cap.kind = CapKind::kManage;
  } else {
    return std::nullopt;
  }
  return cap;
}

}  // namespace lon::ibp
