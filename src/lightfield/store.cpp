#include "lightfield/store.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "exnode/xml.hpp"

namespace lon::lightfield {

namespace fs = std::filesystem;

DatabaseStore::DatabaseStore(std::string directory) : directory_(std::move(directory)) {
  if (directory_.empty()) throw std::invalid_argument("DatabaseStore: empty directory");
}

void DatabaseStore::create(const LatticeConfig& config, const std::string& dataset_name) {
  lattice_.emplace(config);  // validates
  dataset_ = dataset_name;
  fs::create_directories(directory_);

  exnode::XmlElement root;
  root.name = "lfd";
  root.attributes["dataset"] = dataset_name;
  root.attributes["step"] = std::to_string(config.angular_step_deg);
  root.attributes["span"] = std::to_string(config.view_set_span);
  root.attributes["resolution"] = std::to_string(config.view_resolution);
  root.attributes["outer"] = std::to_string(config.outer_radius);
  root.attributes["inner"] = std::to_string(config.inner_radius);
  root.attributes["fov"] = std::to_string(config.fov_deg);

  std::ofstream out(directory_ + "/manifest.xml", std::ios::trunc);
  if (!out) throw std::runtime_error("DatabaseStore: cannot write manifest");
  out << exnode::to_xml(root);
}

void DatabaseStore::open() {
  std::ifstream in(directory_ + "/manifest.xml");
  if (!in) throw std::runtime_error("DatabaseStore: no manifest in " + directory_);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  const exnode::XmlElement root = exnode::parse_xml(text);
  if (root.name != "lfd") throw std::runtime_error("DatabaseStore: bad manifest root");
  LatticeConfig config;
  config.angular_step_deg = std::stod(root.attr("step"));
  config.view_set_span = std::stoi(root.attr("span"));
  config.view_resolution = static_cast<std::size_t>(std::stoul(root.attr("resolution")));
  config.outer_radius = std::stod(root.attr("outer"));
  config.inner_radius = std::stod(root.attr("inner"));
  config.fov_deg = std::stod(root.attr("fov"));
  lattice_.emplace(config);
  dataset_ = root.attr("dataset");
}

const LatticeConfig& DatabaseStore::config() const { return lattice().config(); }

const SphericalLattice& DatabaseStore::lattice() const {
  if (!lattice_.has_value()) throw std::runtime_error("DatabaseStore: not open");
  return *lattice_;
}

std::string DatabaseStore::path_of(const ViewSetId& id) const {
  return directory_ + "/" + id.key() + ".lfz";
}

void DatabaseStore::put(const ViewSetId& id, const Bytes& compressed) {
  if (!lattice().valid(id)) throw std::out_of_range("DatabaseStore: bad view-set id");
  std::ofstream out(path_of(id), std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("DatabaseStore: cannot write " + path_of(id));
  out.write(reinterpret_cast<const char*>(compressed.data()),
            static_cast<std::streamsize>(compressed.size()));
}

std::optional<Bytes> DatabaseStore::get(const ViewSetId& id) const {
  std::ifstream in(path_of(id), std::ios::binary);
  if (!in) return std::nullopt;
  Bytes data((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  return data;
}

std::optional<ViewSet> DatabaseStore::get_view_set(const ViewSetId& id) const {
  const auto data = get(id);
  if (!data.has_value()) return std::nullopt;
  return ViewSet::decompress(*data);
}

std::vector<ViewSetId> DatabaseStore::stored_ids() const {
  std::vector<ViewSetId> out;
  for (const auto& id : lattice().all_view_sets()) {
    if (fs::exists(path_of(id))) out.push_back(id);
  }
  return out;
}

bool DatabaseStore::complete() const {
  return stored_ids().size() == lattice().view_set_count();
}

std::size_t DatabaseStore::build_all(ViewSetSource& source) {
  std::size_t built = 0;
  for (const auto& id : lattice().all_view_sets()) {
    if (fs::exists(path_of(id))) continue;
    put(id, source.build_compressed(id));
    ++built;
  }
  return built;
}

}  // namespace lon::lightfield
