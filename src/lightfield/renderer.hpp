// Client-side light-field rendering: novel views by table lookup.
//
// "The rendering process of a light field database is simply a sequence of
// table lookup operations, enabling the use of client devices ... that lack
// even graphics acceleration." (paper section 1)
//
// Given a view direction, the renderer locates the four surrounding lattice
// samples inside the loaded view set(s) and blends them bilinearly in the
// angular coordinates; each sample view is in turn sampled bilinearly in
// image space — quadrilinear interpolation in the 4-D ray space. No volume
// data and no ray marching are touched: pure lookups, fast enough for
// >30 fps on any CPU.
#pragma once

#include <unordered_map>

#include "lightfield/lattice.hpp"
#include "lightfield/viewset.hpp"

namespace lon::lightfield {

class Renderer {
 public:
  explicit Renderer(const LatticeConfig& config);

  [[nodiscard]] const SphericalLattice& lattice() const { return lattice_; }

  /// Makes a view set available for rendering (the client keeps the current
  /// set plus optionally a few neighbours).
  void add_view_set(ViewSet vs);

  /// Drops a cached view set; returns false if absent.
  bool remove_view_set(const ViewSetId& id);

  [[nodiscard]] std::size_t loaded_count() const { return loaded_.size(); }
  [[nodiscard]] bool has_view_set(const ViewSetId& id) const {
    return loaded_.contains(id);
  }

  /// True when every lattice sample needed to synthesize `dir` is loaded.
  [[nodiscard]] bool can_render(const Spherical& dir) const;

  /// Synthesizes the novel view for direction `dir` at out_res x out_res,
  /// with an optional digital zoom (1.0 = the sample-view framing).
  /// Requires can_render(dir). With a pool, output rows are interpolated in
  /// parallel (each row writes a disjoint slice — pixels are identical to
  /// the serial path).
  [[nodiscard]] render::ImageRGB8 render(const Spherical& dir, std::size_t out_res,
                                         double zoom = 1.0,
                                         ThreadPool* pool = nullptr) const;

 private:
  struct Corner {
    const render::ImageRGB8* image = nullptr;
    double weight = 0.0;
  };

  /// The up-to-4 lattice samples surrounding `dir` with bilinear weights;
  /// returns false if any needed sample is not loaded.
  bool corners(const Spherical& dir, Corner out[4]) const;

  [[nodiscard]] const render::ImageRGB8* find_sample(long row, long col) const;

  SphericalLattice lattice_;
  std::unordered_map<ViewSetId, ViewSet, ViewSetIdHash> loaded_;
};

/// Bilinear fetch from an image at continuous pixel coordinates (clamped).
render::Rgb8 bilinear_fetch(const render::ImageRGB8& image, double x, double y);

}  // namespace lon::lightfield
