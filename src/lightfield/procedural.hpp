// Procedural view-set source.
//
// Large streaming experiments (cases 1-3, figures 8-12) move hundreds of
// view sets whose *pixel content* never matters — only their size and
// compressibility do. ProceduralSource synthesizes smooth, view-dependent
// imagery (a few blobs whose screen positions rotate with the camera angles)
// directly, skipping ray casting, but still pushes the pixels through the
// real filter + lfz pipeline, so compressed sizes, ratios and decompression
// cost are the genuine article. Deterministic per (seed, id).
#pragma once

#include <cstdint>

#include "lightfield/builder.hpp"

namespace lon::lightfield {

struct ProceduralOptions {
  std::uint64_t seed = 2003;
  int blobs = 6;        ///< feature count per view
  double contrast = 0.9;
  /// Per-pixel dither amplitude (fraction of full scale). The default of
  /// ~half a gray level keeps the lfz compression ratio in the paper's 5-7x
  /// band across resolutions (noiseless synthetic imagery is unrealistically
  /// smooth at 500^2+).
  double noise = 0.002;
  /// Time phase for animated datasets: blob positions drift with this phase
  /// along seeded velocity directions (see lightfield::TemporalSource).
  double time_phase = 0.0;
};

class ProceduralSource final : public ViewSetSource {
 public:
  ProceduralSource(const LatticeConfig& config, ProceduralOptions options = {});

  [[nodiscard]] const SphericalLattice& lattice() const override { return lattice_; }

  [[nodiscard]] ViewSet build(const ViewSetId& id) override;

  /// One synthesized sample view (lattice coordinates).
  [[nodiscard]] render::ImageRGB8 render_sample(std::size_t row, std::size_t col) const;

 private:
  SphericalLattice lattice_;
  ProceduralOptions options_;
};

}  // namespace lon::lightfield
