#include "lightfield/viewset.hpp"

#include <stdexcept>
#include <utility>

#include "compress/filters.hpp"
#include "compress/lfz.hpp"

namespace lon::lightfield {

namespace {
constexpr std::uint32_t kViewSetMagic = 0x4c465653;  // "LFVS"
}

ViewSet::ViewSet(ViewSetId id, int span, std::size_t resolution)
    : id_(id), span_(span), resolution_(resolution) {
  if (span < 1 || resolution < 1) throw std::invalid_argument("ViewSet: bad shape");
  views_.assign(static_cast<std::size_t>(span) * static_cast<std::size_t>(span),
                render::ImageRGB8(resolution, resolution));
}

const render::ImageRGB8& ViewSet::view(int row, int col) const {
  if (row < 0 || col < 0 || row >= span_ || col >= span_) {
    throw std::out_of_range("ViewSet::view: index out of block");
  }
  return views_[static_cast<std::size_t>(row) * static_cast<std::size_t>(span_) +
                static_cast<std::size_t>(col)];
}

render::ImageRGB8& ViewSet::view(int row, int col) {
  return const_cast<render::ImageRGB8&>(std::as_const(*this).view(row, col));
}

std::uint64_t ViewSet::pixel_bytes() const {
  return static_cast<std::uint64_t>(views_.size()) * resolution_ * resolution_ * 3;
}

Bytes ViewSet::serialize(SerializeMode mode) const {
  ByteWriter out(pixel_bytes() + 64);
  out.u32(kViewSetMagic);
  out.u32(static_cast<std::uint32_t>(id_.row));
  out.u32(static_cast<std::uint32_t>(id_.col));
  out.u32(static_cast<std::uint32_t>(span_));
  out.u32(static_cast<std::uint32_t>(resolution_));
  out.u8(static_cast<std::uint8_t>(mode));
  if (mode == SerializeMode::kIntra) {
    for (const auto& image : views_) {
      // Predictor-filter each view so the entropy coder sees residuals.
      out.raw(lfz::filter_image(image.bytes(), resolution_, resolution_, 3));
    }
  } else {
    // View 0 intra; views 1..n-1 as per-pixel differences from the previous
    // view — angular coherence makes these residuals near-zero. The residual
    // planes keep spatial structure (parallax edges), so they go through the
    // scanline predictors as well (the per-row None fallback caps the cost).
    out.raw(lfz::filter_image(views_.front().bytes(), resolution_, resolution_, 3));
    for (std::size_t v = 1; v < views_.size(); ++v) {
      const Bytes& cur = views_[v].bytes();
      const Bytes& prev = views_[v - 1].bytes();
      Bytes residual(cur.size());
      for (std::size_t i = 0; i < cur.size(); ++i) {
        residual[i] = static_cast<std::uint8_t>(cur[i] - prev[i]);
      }
      out.raw(lfz::filter_image(residual, resolution_, resolution_, 3));
    }
  }
  return out.take();
}

ViewSet ViewSet::deserialize(const Bytes& data) {
  ByteReader in(data);
  if (in.u32() != kViewSetMagic) throw DecodeError("ViewSet: bad magic");
  ViewSetId id;
  id.row = static_cast<int>(in.u32());
  id.col = static_cast<int>(in.u32());
  const auto span = static_cast<int>(in.u32());
  const std::size_t resolution = in.u32();
  if (span < 1 || span > 64 || resolution < 1 || resolution > 8192) {
    throw DecodeError("ViewSet: implausible shape");
  }
  const auto mode_byte = in.u8();
  if (mode_byte > 1) throw DecodeError("ViewSet: unknown serialize mode");
  const auto mode = static_cast<SerializeMode>(mode_byte);

  ViewSet vs(id, span, resolution);
  const std::size_t filtered_size = resolution * (resolution * 3 + 1);
  const std::size_t plane_size = resolution * resolution * 3;
  for (std::size_t v = 0; v < vs.views_.size(); ++v) {
    if (mode == SerializeMode::kIntra || v == 0) {
      const auto filtered = in.raw(filtered_size);
      vs.views_[v].bytes() = lfz::unfilter_image(filtered, resolution, resolution, 3);
    } else {
      const Bytes residual =
          lfz::unfilter_image(in.raw(filtered_size), resolution, resolution, 3);
      const Bytes& prev = vs.views_[v - 1].bytes();
      Bytes& cur = vs.views_[v].bytes();
      for (std::size_t i = 0; i < plane_size; ++i) {
        cur[i] = static_cast<std::uint8_t>(prev[i] + residual[i]);
      }
    }
  }
  if (!in.done()) throw DecodeError("ViewSet: trailing bytes");
  return vs;
}

Bytes ViewSet::compress(SerializeMode mode) const { return lfz::compress(serialize(mode)); }

Bytes ViewSet::compress_chunked(std::uint64_t chunk_bytes, ThreadPool* pool,
                                SerializeMode mode) const {
  return lfz::compress_chunked(serialize(mode), chunk_bytes, {}, pool);
}

ViewSet ViewSet::decompress(const Bytes& compressed, ThreadPool* pool) {
  if (lfz::is_chunked(compressed)) {
    return deserialize(lfz::decompress_chunked(compressed, pool));
  }
  return deserialize(lfz::decompress(compressed));
}

}  // namespace lon::lightfield
