#include "lightfield/viewset.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "compress/filters.hpp"
#include "compress/lfz.hpp"

namespace lon::lightfield {

namespace {

constexpr std::uint32_t kViewSetMagic = 0x4c465653;  // "LFVS"

// Per-view prediction flags of the kAdaptive serialization.
constexpr std::uint8_t kViewIntra = 0;
constexpr std::uint8_t kViewInter = 1;

/// Block-local index of the already-(de)coded lattice neighbor a view is
/// predicted from: left within the row, the view above for column 0, none
/// for view (0, 0). Derived from position, so it is never stored.
int lattice_neighbor(std::size_t v, int span) {
  const int col = static_cast<int>(v) % span;
  const int row = static_cast<int>(v) / span;
  if (col > 0) return static_cast<int>(v) - 1;
  if (row > 0) return static_cast<int>(v) - span;
  return -1;
}

/// Estimated coded size of a filtered plane, in milli-bits: the order-0
/// entropy of its byte histogram. This models the Huffman stage directly,
/// where the per-row magnitude-sum heuristic can badly misrank inter deltas
/// (dither noise doubles in a difference of two views, which inflates the
/// coded size far more than the magnitude sum suggests).
std::uint64_t filtered_cost(const Bytes& filtered) {
  std::uint64_t hist[256] = {};
  for (const std::uint8_t b : filtered) ++hist[b];
  const double n = static_cast<double>(filtered.size());
  double bits = 0.0;
  for (const std::uint64_t c : hist) {
    if (c > 0) bits += static_cast<double>(c) * std::log2(n / static_cast<double>(c));
  }
  return static_cast<std::uint64_t>(bits * 1000.0);
}

Bytes delta_plane(const Bytes& cur, const Bytes& prev) {
  Bytes delta(cur.size());
  for (std::size_t i = 0; i < cur.size(); ++i) {
    delta[i] = static_cast<std::uint8_t>(cur[i] - prev[i]);
  }
  return delta;
}

}  // namespace

ViewSet::ViewSet(ViewSetId id, int span, std::size_t resolution)
    : id_(id), span_(span), resolution_(resolution) {
  if (span < 1 || resolution < 1) throw std::invalid_argument("ViewSet: bad shape");
  views_.assign(static_cast<std::size_t>(span) * static_cast<std::size_t>(span),
                render::ImageRGB8(resolution, resolution));
}

const render::ImageRGB8& ViewSet::view(int row, int col) const {
  if (row < 0 || col < 0 || row >= span_ || col >= span_) {
    throw std::out_of_range("ViewSet::view: index out of block");
  }
  return views_[static_cast<std::size_t>(row) * static_cast<std::size_t>(span_) +
                static_cast<std::size_t>(col)];
}

render::ImageRGB8& ViewSet::view(int row, int col) {
  return const_cast<render::ImageRGB8&>(std::as_const(*this).view(row, col));
}

std::uint64_t ViewSet::pixel_bytes() const {
  return static_cast<std::uint64_t>(views_.size()) * resolution_ * resolution_ * 3;
}

Bytes ViewSet::serialize(SerializeMode mode) const {
  ByteWriter out(pixel_bytes() + 64);
  out.u32(kViewSetMagic);
  out.u32(static_cast<std::uint32_t>(id_.row));
  out.u32(static_cast<std::uint32_t>(id_.col));
  out.u32(static_cast<std::uint32_t>(span_));
  out.u32(static_cast<std::uint32_t>(resolution_));
  out.u8(static_cast<std::uint8_t>(mode));
  if (mode == SerializeMode::kIntra) {
    for (const auto& image : views_) {
      // Predictor-filter each view so the entropy coder sees residuals.
      out.raw(lfz::filter_image(image.bytes(), resolution_, resolution_, 3));
    }
  } else if (mode == SerializeMode::kAdaptive) {
    // Per-view choice: intra filters on the raw pixels, or the delta against
    // the lattice neighbor filtered the same way, whichever leaves the
    // smaller residual sum. A one-byte flag per view records the choice.
    for (std::size_t v = 0; v < views_.size(); ++v) {
      const Bytes& cur = views_[v].bytes();
      const int neighbor = lattice_neighbor(v, span_);
      Bytes intra = lfz::filter_image(cur, resolution_, resolution_, 3);
      if (neighbor < 0) {
        out.u8(kViewIntra);
        out.raw(intra);
        continue;
      }
      const Bytes delta = delta_plane(cur, views_[static_cast<std::size_t>(neighbor)].bytes());
      Bytes inter = lfz::filter_image(delta, resolution_, resolution_, 3);
      // The order-0 estimate is blind to the LZ stage, which thrives on the
      // smooth intra planes and dies on noise-doubled deltas — so inter must
      // win by a clear margin (~30% fewer estimated bits) before it is
      // trusted. Measured on procedural sets: genuine inter wins (2.5-degree
      // view spacing) land at <= ~0.68x intra, false wins at >= ~0.73x.
      if (10 * filtered_cost(inter) < 7 * filtered_cost(intra)) {
        out.u8(kViewInter);
        out.raw(inter);
      } else {
        out.u8(kViewIntra);
        out.raw(intra);
      }
    }
  } else {
    // View 0 intra; views 1..n-1 as per-pixel differences from the previous
    // view — angular coherence makes these residuals near-zero. The residual
    // planes keep spatial structure (parallax edges), so they go through the
    // scanline predictors as well (the per-row None fallback caps the cost).
    out.raw(lfz::filter_image(views_.front().bytes(), resolution_, resolution_, 3));
    for (std::size_t v = 1; v < views_.size(); ++v) {
      const Bytes& cur = views_[v].bytes();
      const Bytes& prev = views_[v - 1].bytes();
      Bytes residual(cur.size());
      for (std::size_t i = 0; i < cur.size(); ++i) {
        residual[i] = static_cast<std::uint8_t>(cur[i] - prev[i]);
      }
      out.raw(lfz::filter_image(residual, resolution_, resolution_, 3));
    }
  }
  return out.take();
}

ViewSet ViewSet::deserialize(const Bytes& data) {
  ByteReader in(data);
  if (in.u32() != kViewSetMagic) throw DecodeError("ViewSet: bad magic");
  ViewSetId id;
  id.row = static_cast<int>(in.u32());
  id.col = static_cast<int>(in.u32());
  const auto span = static_cast<int>(in.u32());
  const std::size_t resolution = in.u32();
  if (span < 1 || span > 64 || resolution < 1 || resolution > 8192) {
    throw DecodeError("ViewSet: implausible shape");
  }
  const auto mode_byte = in.u8();
  if (mode_byte > 2) throw DecodeError("ViewSet: unknown serialize mode");
  const auto mode = static_cast<SerializeMode>(mode_byte);

  ViewSet vs(id, span, resolution);
  const std::size_t filtered_size = resolution * (resolution * 3 + 1);
  const std::size_t plane_size = resolution * resolution * 3;
  for (std::size_t v = 0; v < vs.views_.size(); ++v) {
    if (mode == SerializeMode::kAdaptive) {
      const std::uint8_t flag = in.u8();
      if (flag > kViewInter) throw DecodeError("ViewSet: bad view prediction flag");
      Bytes plane = lfz::unfilter_image(in.raw(filtered_size), resolution, resolution, 3);
      if (flag == kViewInter) {
        const int neighbor = lattice_neighbor(v, span);
        if (neighbor < 0) throw DecodeError("ViewSet: inter flag without neighbor");
        const Bytes& base = vs.views_[static_cast<std::size_t>(neighbor)].bytes();
        for (std::size_t i = 0; i < plane_size; ++i) {
          plane[i] = static_cast<std::uint8_t>(base[i] + plane[i]);
        }
      }
      vs.views_[v].bytes() = std::move(plane);
    } else if (mode == SerializeMode::kIntra || v == 0) {
      const auto filtered = in.raw(filtered_size);
      vs.views_[v].bytes() = lfz::unfilter_image(filtered, resolution, resolution, 3);
    } else {
      const Bytes residual =
          lfz::unfilter_image(in.raw(filtered_size), resolution, resolution, 3);
      const Bytes& prev = vs.views_[v - 1].bytes();
      Bytes& cur = vs.views_[v].bytes();
      for (std::size_t i = 0; i < plane_size; ++i) {
        cur[i] = static_cast<std::uint8_t>(prev[i] + residual[i]);
      }
    }
  }
  if (!in.done()) throw DecodeError("ViewSet: trailing bytes");
  return vs;
}

Bytes ViewSet::compress(SerializeMode mode) const { return lfz::compress(serialize(mode)); }

Bytes ViewSet::compress_chunked(std::uint64_t chunk_bytes, ThreadPool* pool,
                                SerializeMode mode) const {
  return lfz::compress_chunked(serialize(mode), chunk_bytes, {}, pool);
}

Bytes ViewSet::compress_lfz2(std::uint64_t chunk_bytes, ThreadPool* pool) const {
  return lfz::compress_lfz2(serialize(SerializeMode::kAdaptive), chunk_bytes, {}, pool);
}

ViewSet ViewSet::decompress(const Bytes& compressed, ThreadPool* pool) {
  if (lfz::is_chunked(compressed)) {
    return deserialize(lfz::decompress_chunked(compressed, pool));
  }
  return deserialize(lfz::decompress(compressed));
}

}  // namespace lon::lightfield
