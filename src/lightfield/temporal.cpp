#include "lightfield/temporal.hpp"

#include <stdexcept>

namespace lon::lightfield {

TemporalSource::TemporalSource(const LatticeConfig& config, std::size_t frames,
                               ProceduralOptions options, double motion)
    : frames_(frames) {
  if (frames == 0) throw std::invalid_argument("TemporalSource: zero frames");
  per_frame_.reserve(frames);
  for (std::size_t t = 0; t < frames; ++t) {
    ProceduralOptions frame_options = options;
    // The blob layout is a deterministic function of (seed, time): the
    // ProceduralSource derives its blobs from the seed, and we advance a
    // phase that shifts them smoothly — consecutive frames stay coherent.
    frame_options.time_phase = motion * static_cast<double>(t);
    per_frame_.emplace_back(config, frame_options);
  }
}

const SphericalLattice& TemporalSource::lattice() const {
  return per_frame_.front().lattice();
}

ViewSet TemporalSource::build(const TemporalKey& key) {
  if (key.frame >= frames_) throw std::out_of_range("TemporalSource: bad frame");
  return per_frame_[key.frame].build(key.vs);
}

Bytes TemporalSource::build_compressed(const TemporalKey& key) {
  return build(key).compress();
}

std::vector<TemporalKey> playback_prefetch_targets(const SphericalLattice& lattice,
                                                   const TemporalKey& current,
                                                   int quadrant,
                                                   std::size_t total_frames,
                                                   int lookahead) {
  std::vector<TemporalKey> out;
  // Angular anticipation within the current frame (figure 4).
  for (const auto& target : lattice.prefetch_targets(current.vs, quadrant)) {
    out.push_back(TemporalKey{current.frame, target});
  }
  // Temporal anticipation: the same window in upcoming frames.
  for (int dt = 1; dt <= lookahead; ++dt) {
    const std::size_t frame = current.frame + static_cast<std::size_t>(dt);
    if (frame >= total_frames) break;
    out.push_back(TemporalKey{frame, current.vs});
  }
  return out;
}

}  // namespace lon::lightfield
