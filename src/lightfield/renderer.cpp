#include "lightfield/renderer.hpp"

#include <algorithm>
#include <cmath>

namespace lon::lightfield {

render::Rgb8 bilinear_fetch(const render::ImageRGB8& image, double x, double y) {
  const double fx = std::clamp(x, 0.0, static_cast<double>(image.width()) - 1.0);
  const double fy = std::clamp(y, 0.0, static_cast<double>(image.height()) - 1.0);
  const auto x0 = static_cast<std::size_t>(fx);
  const auto y0 = static_cast<std::size_t>(fy);
  const std::size_t x1 = std::min(x0 + 1, image.width() - 1);
  const std::size_t y1 = std::min(y0 + 1, image.height() - 1);
  const double tx = fx - static_cast<double>(x0);
  const double ty = fy - static_cast<double>(y0);

  const render::Rgb8 c00 = image.at(x0, y0), c10 = image.at(x1, y0);
  const render::Rgb8 c01 = image.at(x0, y1), c11 = image.at(x1, y1);
  auto mix = [&](std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d) {
    const double top = a + tx * (b - a);
    const double bottom = c + tx * (d - c);
    return static_cast<std::uint8_t>(top + ty * (bottom - top) + 0.5);
  };
  return {mix(c00.r, c10.r, c01.r, c11.r), mix(c00.g, c10.g, c01.g, c11.g),
          mix(c00.b, c10.b, c01.b, c11.b)};
}

Renderer::Renderer(const LatticeConfig& config) : lattice_(config) {}

void Renderer::add_view_set(ViewSet vs) {
  const ViewSetId id = vs.id();
  loaded_.insert_or_assign(id, std::move(vs));
}

bool Renderer::remove_view_set(const ViewSetId& id) { return loaded_.erase(id) > 0; }

const render::ImageRGB8* Renderer::find_sample(long row, long col) const {
  if (row < 0 || row >= static_cast<long>(lattice_.rows())) return nullptr;
  const long cols = static_cast<long>(lattice_.cols());
  col %= cols;
  if (col < 0) col += cols;
  const int span = lattice_.config().view_set_span;
  const ViewSetId id{static_cast<int>(row / span), static_cast<int>(col / span)};
  const auto it = loaded_.find(id);
  if (it == loaded_.end()) return nullptr;
  return &it->second.view(static_cast<int>(row % span), static_cast<int>(col % span));
}

bool Renderer::corners(const Spherical& dir, Corner out[4]) const {
  const auto [fr, fc] = lattice_.lattice_coords(dir);
  // Clamp theta to the lattice interior; phi wraps in find_sample.
  const double cr = std::clamp(fr, 0.0, static_cast<double>(lattice_.rows()) - 1.0);
  const long r0 = static_cast<long>(cr);
  const long r1 = std::min<long>(r0 + 1, static_cast<long>(lattice_.rows()) - 1);
  const long c0 = static_cast<long>(fc);
  const long c1 = c0 + 1;  // wraps inside find_sample
  const double tr = cr - static_cast<double>(r0);
  const double tc = fc - static_cast<double>(c0);

  const long rows[4] = {r0, r0, r1, r1};
  const long cols[4] = {c0, c1, c0, c1};
  const double weights[4] = {(1 - tr) * (1 - tc), (1 - tr) * tc, tr * (1 - tc), tr * tc};
  for (int i = 0; i < 4; ++i) {
    out[i].weight = weights[i];
    out[i].image = nullptr;
    if (weights[i] <= 1e-12) continue;
    out[i].image = find_sample(rows[i], cols[i]);
    if (out[i].image == nullptr) return false;
  }
  return true;
}

bool Renderer::can_render(const Spherical& dir) const {
  Corner c[4];
  return corners(dir, c);
}

render::ImageRGB8 Renderer::render(const Spherical& dir, std::size_t out_res,
                                   double zoom, ThreadPool* pool) const {
  Corner corner[4];
  if (!corners(dir, corner)) {
    throw std::runtime_error("Renderer::render: required view set not loaded");
  }
  render::ImageRGB8 out(out_res, out_res);
  auto render_row = [&](std::size_t y) {
    for (std::size_t x = 0; x < out_res; ++x) {
      double acc_r = 0.0, acc_g = 0.0, acc_b = 0.0;
      for (const Corner& c : corner) {
        if (c.image == nullptr || c.weight <= 1e-12) continue;
        // Map output pixel to sample-view pixel (digital zoom about center).
        const double half = static_cast<double>(out_res) / 2.0;
        const double sx = (static_cast<double>(x) + 0.5 - half) / zoom + half;
        const double sy = (static_cast<double>(y) + 0.5 - half) / zoom + half;
        const double scale =
            static_cast<double>(c.image->width()) / static_cast<double>(out_res);
        const render::Rgb8 sample =
            bilinear_fetch(*c.image, sx * scale - 0.5, sy * scale - 0.5);
        acc_r += c.weight * sample.r;
        acc_g += c.weight * sample.g;
        acc_b += c.weight * sample.b;
      }
      out.set(x, y,
              {static_cast<std::uint8_t>(std::clamp(acc_r, 0.0, 255.0) + 0.5),
               static_cast<std::uint8_t>(std::clamp(acc_g, 0.0, 255.0) + 0.5),
               static_cast<std::uint8_t>(std::clamp(acc_b, 0.0, 255.0) + 0.5)});
    }
  };
  if (pool != nullptr && pool->size() > 1 && out_res > 1) {
    pool->parallel_for(0, out_res, render_row);
  } else {
    for (std::size_t y = 0; y < out_res; ++y) render_row(y);
  }
  return out;
}

}  // namespace lon::lightfield
