#include "lightfield/builder.hpp"

#include <stdexcept>

#include "render/camera.hpp"

namespace lon::lightfield {

RaycastBuilder::RaycastBuilder(const volume::ScalarVolume& volume,
                               volume::TransferFunction tf, const LatticeConfig& config,
                               render::RayCastOptions render_options, std::size_t threads)
    : lattice_(config), caster_(volume, std::move(tf), render_options), pool_(threads) {}

render::ImageRGB8 RaycastBuilder::render_sample(std::size_t row, std::size_t col) {
  const Vec3 eye = lattice_.camera_position(row, col);
  const render::Camera camera =
      render::Camera::look_at(eye, {0, 0, 0}, {0, 0, 1}, lattice_.config().fov_deg);
  const std::size_t r = lattice_.config().view_resolution;
  return caster_.render(camera, r, r, &pool_);
}

ViewSet RaycastBuilder::build(const ViewSetId& id) {
  if (!lattice_.valid(id)) throw std::out_of_range("RaycastBuilder: bad view-set id");
  const int span = lattice_.config().view_set_span;
  ViewSet vs(id, span, lattice_.config().view_resolution);
  const auto views = static_cast<std::size_t>(span) * static_cast<std::size_t>(span);
  if (pool_.size() > 1 && views > 1) {
    // Batch the whole view set: one task per view, each rendered
    // single-threaded so the pool is never re-entered from a worker
    // (parallel_for does not nest). Views write disjoint images, so the
    // result is byte-identical to the serial loop.
    pool_.parallel_for(
        0, views,
        [&](std::size_t i) {
          const int lr = static_cast<int>(i) / span;
          const int lc = static_cast<int>(i) % span;
          const auto row = static_cast<std::size_t>(id.row * span + lr);
          const auto col = static_cast<std::size_t>(id.col * span + lc);
          const Vec3 eye = lattice_.camera_position(row, col);
          const render::Camera camera = render::Camera::look_at(
              eye, {0, 0, 0}, {0, 0, 1}, lattice_.config().fov_deg);
          const std::size_t r = lattice_.config().view_resolution;
          vs.view(lr, lc) = caster_.render(camera, r, r, nullptr);
        },
        views);
  } else {
    for (int lr = 0; lr < span; ++lr) {
      for (int lc = 0; lc < span; ++lc) {
        const auto row = static_cast<std::size_t>(id.row * span + lr);
        const auto col = static_cast<std::size_t>(id.col * span + lc);
        vs.view(lr, lc) = render_sample(row, col);
      }
    }
  }
  return vs;
}

}  // namespace lon::lightfield
