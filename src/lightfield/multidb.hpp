// Multiple light-field databases for interior navigation.
//
// A single spherical light field only supports viewpoints *outside* its
// outer sphere: "a light field database so constructed can only support
// 'replaying' the external views of a volume. To allow user navigation
// through the interior of a volume, multiple light field databases are
// needed [Yang & Crawfis, rail-track viewer], but the same framework for
// remote visualization can be reused." (paper section 3.2)
//
// MultiDatabase manages a set of databases placed in a common world frame —
// nested shells around one object, or a track of centers through a large
// scene. Given a viewer position it selects which database can serve the
// view (viewer outside that database's outer sphere, nearest center first)
// with hysteresis so a viewer drifting along a boundary does not flip-flop
// between databases; it also converts the viewer position into that
// database's (theta, phi) view direction. Each database keeps its own
// view-set grid, so the whole streaming framework (DVS, agents, staging) is
// reused per database, exactly as the paper suggests.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "lightfield/lattice.hpp"

namespace lon::lightfield {

using DatabaseId = std::uint32_t;

struct DatabaseEntry {
  DatabaseId id = 0;
  std::string name;       ///< stable name, used to scope DVS keys etc.
  Vec3 center;            ///< world position of the database's spheres
  double scale = 1.0;     ///< world units per database unit (radii scale by this)
  LatticeConfig lattice;

  /// World-space outer radius (camera sphere).
  [[nodiscard]] double world_outer_radius() const {
    return lattice.outer_radius * scale;
  }
};

class MultiDatabase {
 public:
  /// Hysteresis margin in [0, 1). A currently-selected database with
  /// world outer radius R is kept in two regimes:
  ///   (a) while the viewer sits in the band [R, R * (1 + margin)) just
  ///       outside its sphere — never switch while skimming the boundary;
  ///   (b) beyond that band, unless another usable database is
  ///       *substantially* closer: other_distance < distance * (1 - margin).
  /// So the margin widens both the keep-band around the current sphere and
  /// the lead a competitor needs before a switch happens.
  explicit MultiDatabase(double hysteresis_margin = 0.05);

  /// Registers a database; names must be unique. Returns its id.
  DatabaseId add(const std::string& name, const Vec3& center,
                 const LatticeConfig& lattice, double scale = 1.0);

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] const DatabaseEntry& entry(DatabaseId id) const;
  [[nodiscard]] const DatabaseEntry* find(const std::string& name) const;

  /// The database that should serve a viewer at world position `viewer`,
  /// preferring `current` (hysteresis) when it is still usable. Returns
  /// nullopt when the viewer is inside every database's outer sphere (no
  /// external view exists — the scene needs another database there).
  [[nodiscard]] std::optional<DatabaseId> select(
      const Vec3& viewer, std::optional<DatabaseId> current = std::nullopt) const;

  /// The (theta, phi) view direction of `viewer` in database `id`'s frame —
  /// the direction from the database center toward the viewer, which indexes
  /// the camera lattice.
  [[nodiscard]] Spherical direction_in(DatabaseId id, const Vec3& viewer) const;

  /// Distance from the viewer to the database center, in database units
  /// (drives the digital zoom factor when replaying from the lattice).
  [[nodiscard]] double range_in(DatabaseId id, const Vec3& viewer) const;

  /// Fully-qualified view-set key ("<db-name>/vs<r>_<c>") for scoping a
  /// shared dictionary across databases.
  [[nodiscard]] std::string scoped_key(DatabaseId id, const ViewSetId& vs) const;

  /// True if the viewer can be served by database `id` (outside its sphere).
  [[nodiscard]] bool usable(DatabaseId id, const Vec3& viewer) const;

  [[nodiscard]] double margin() const { return margin_; }

  /// Manifest round trip (XML, like the exNode) so a scene layout can be
  /// published alongside its databases. from_xml validates every numeric
  /// attribute strictly (full-string parse) and rejects a margin outside
  /// [0, 1) with a clear XmlError.
  [[nodiscard]] std::string to_xml() const;
  static MultiDatabase from_xml(const std::string& xml);

  /// Builds the LOD-ladder manifest for continuous LOD streaming: entry 0
  /// ("full") is the full-resolution database, and each coarse resolution
  /// adds a same-geometry entry named "lod<res>" — identical grid and
  /// radii, lower view resolution — so any full-resolution ViewSetId
  /// addresses the matching coarse set and each tier scopes its own DVS
  /// namespace. `coarse_resolutions` must be strictly below the full view
  /// resolution, non-zero, and free of duplicates; they are ordered finest
  /// first in the result.
  static MultiDatabase lod_ladder(const LatticeConfig& full,
                                  std::vector<std::size_t> coarse_resolutions,
                                  double margin = 0.05);

 private:
  double margin_;
  std::vector<DatabaseEntry> entries_;
};

}  // namespace lon::lightfield
