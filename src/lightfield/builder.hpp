// Light-field database construction (the server-side generator).
//
// ViewSetSource is the interface the streaming layer pulls view sets
// through. RaycastBuilder is the real generator: it drives the parallel ray
// caster over the camera lattice exactly as the paper's 32-processor
// cluster generator does. (ProceduralSource in procedural.hpp is the cheap
// stand-in used by large streaming experiments, where only realistic sizes
// and compressibility matter.)
#pragma once

#include <memory>

#include "lightfield/lattice.hpp"
#include "lightfield/viewset.hpp"
#include "render/raycaster.hpp"
#include "util/thread_pool.hpp"
#include "volume/transfer.hpp"
#include "volume/volume.hpp"

namespace lon::lightfield {

/// Anything that can produce view sets for a lattice.
class ViewSetSource {
 public:
  virtual ~ViewSetSource() = default;

  [[nodiscard]] virtual const SphericalLattice& lattice() const = 0;

  /// Builds the (uncompressed) view set for `id`.
  [[nodiscard]] virtual ViewSet build(const ViewSetId& id) = 0;

  /// Builds and compresses in one step. chunk_bytes > 0 selects the chunked
  /// (LFZC) container — the format the agent-side decompress pipeline can
  /// overlap with stripe transfers — compressed across `pool` when given.
  /// lfz2 selects the inter-view-predicted LFZ2 container instead (always
  /// chunked; chunk_bytes 0 falls back to the 1 MiB default).
  [[nodiscard]] Bytes build_compressed(const ViewSetId& id, std::uint64_t chunk_bytes = 0,
                                       ThreadPool* pool = nullptr, bool lfz2 = false) {
    const ViewSet vs = build(id);
    if (lfz2) return vs.compress_lfz2(chunk_bytes > 0 ? chunk_bytes : 1 << 20, pool);
    return chunk_bytes > 0 ? vs.compress_chunked(chunk_bytes, pool) : vs.compress();
  }
};

/// Renders sample views of a volume with the ray caster (multi-threaded).
class RaycastBuilder final : public ViewSetSource {
 public:
  RaycastBuilder(const volume::ScalarVolume& volume, volume::TransferFunction tf,
                 const LatticeConfig& config, render::RayCastOptions render_options = {},
                 std::size_t threads = 0);

  [[nodiscard]] const SphericalLattice& lattice() const override { return lattice_; }

  [[nodiscard]] ViewSet build(const ViewSetId& id) override;

  /// Renders a single sample view (lattice coordinates).
  [[nodiscard]] render::ImageRGB8 render_sample(std::size_t row, std::size_t col);

 private:
  SphericalLattice lattice_;
  render::RayCaster caster_;
  ThreadPool pool_;
};

}  // namespace lon::lightfield
