// The spherical light-field parameterization (paper section 3.2).
//
// Two concentric spheres surround the volume; any viewing ray through the
// volume pierces both, giving the 4-D (s,t,u,v) ray index. Sample views are
// rendered from a lattice of camera positions on the outer sphere — every
// `angular_step_deg` (2.5 degrees in the paper) in both angular components,
// i.e. a 72 x 144 lattice. The lattice is partitioned into view sets of
// span x span cameras (6 x 6 = 15 degrees in the paper), giving a 12 x 24
// view-set grid; the view set is the unit of storage, transmission, caching
// and prefetch.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/vec3.hpp"

namespace lon::lightfield {

struct LatticeConfig {
  double angular_step_deg = 2.5;   ///< lattice spacing in both angles
  int view_set_span = 6;           ///< l: lattice cells per view set per axis
  std::size_t view_resolution = 200;  ///< r: pixels per sample-view axis
  double outer_radius = 3.0;       ///< camera sphere (must enclose the inner)
  double inner_radius = 1.8;       ///< focal sphere (must enclose the volume cube)
  double fov_deg = 40.0;           ///< sample-view field of view

  /// Paper configuration: 2.5-degree lattice, l = 6, at a given resolution.
  static LatticeConfig paper(std::size_t resolution = 200);
};

/// Coordinates of one view set in the view-set grid.
struct ViewSetId {
  int row = 0;
  int col = 0;

  bool operator==(const ViewSetId&) const = default;

  /// Canonical string form "vs<row>_<col>" (DVS lookup key).
  [[nodiscard]] std::string key() const {
    return "vs" + std::to_string(row) + "_" + std::to_string(col);
  }
};

struct ViewSetIdHash {
  std::size_t operator()(const ViewSetId& id) const {
    return std::hash<std::uint64_t>{}(
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(id.row)) << 32) |
        static_cast<std::uint32_t>(id.col));
  }
};

class SphericalLattice {
 public:
  explicit SphericalLattice(const LatticeConfig& config);

  [[nodiscard]] const LatticeConfig& config() const { return config_; }

  /// Lattice dimensions: rows span theta in (0, pi), cols span phi in [0, 2*pi).
  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t sample_count() const { return rows_ * cols_; }

  /// View-set grid dimensions.
  [[nodiscard]] std::size_t view_set_rows() const { return vs_rows_; }
  [[nodiscard]] std::size_t view_set_cols() const { return vs_cols_; }
  [[nodiscard]] std::size_t view_set_count() const { return vs_rows_ * vs_cols_; }

  /// Direction of lattice sample (row, col). Theta is offset half a step
  /// from the poles so no camera sits exactly on them.
  [[nodiscard]] Spherical sample_direction(std::size_t row, std::size_t col) const;

  /// Camera position of a lattice sample (on the outer sphere).
  [[nodiscard]] Vec3 camera_position(std::size_t row, std::size_t col) const;

  /// Continuous lattice coordinates of a view direction (for interpolation);
  /// row in [-0.5, rows-0.5], col wraps modulo cols.
  [[nodiscard]] std::pair<double, double> lattice_coords(const Spherical& dir) const;

  /// Nearest lattice sample to a view direction.
  [[nodiscard]] std::pair<std::size_t, std::size_t> nearest_sample(
      const Spherical& dir) const;

  /// The view set containing a lattice sample.
  [[nodiscard]] ViewSetId view_set_of(std::size_t row, std::size_t col) const;

  /// The view set whose angular window contains a view direction.
  [[nodiscard]] ViewSetId view_set_of(const Spherical& dir) const;

  /// Which quadrant of its view set a direction falls in: bit 0 = lower
  /// half in theta, bit 1 = right half in phi (0..3). Drives the prefetch
  /// policy of paper figure 4.
  [[nodiscard]] int quadrant_of(const Spherical& dir) const;

  /// The 8 neighbouring view sets of `id` (phi wraps; theta clamps, so polar
  /// view sets have fewer neighbours).
  [[nodiscard]] std::vector<ViewSetId> neighbors(const ViewSetId& id) const;

  /// Neighbours to prefetch when the cursor sits in `quadrant` of `id`
  /// (the 3 view sets adjacent to that corner — paper figure 4).
  [[nodiscard]] std::vector<ViewSetId> prefetch_targets(const ViewSetId& id,
                                                        int quadrant) const;

  /// Angular distance (radians) between the centers of two view sets,
  /// used to order aggressive prestaging by proximity to the cursor.
  [[nodiscard]] double view_set_distance(const ViewSetId& a, const ViewSetId& b) const;

  /// Center direction of a view set's angular window.
  [[nodiscard]] Spherical view_set_center(const ViewSetId& id) const;

  [[nodiscard]] bool valid(const ViewSetId& id) const {
    return id.row >= 0 && id.col >= 0 &&
           static_cast<std::size_t>(id.row) < vs_rows_ &&
           static_cast<std::size_t>(id.col) < vs_cols_;
  }

  /// All view-set ids in row-major order.
  [[nodiscard]] std::vector<ViewSetId> all_view_sets() const;

 private:
  LatticeConfig config_;
  std::size_t rows_ = 0, cols_ = 0;
  std::size_t vs_rows_ = 0, vs_cols_ = 0;
  double step_rad_ = 0.0;
};

}  // namespace lon::lightfield
