#include "lightfield/lattice.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lon::lightfield {

LatticeConfig LatticeConfig::paper(std::size_t resolution) {
  LatticeConfig cfg;
  cfg.angular_step_deg = 2.5;
  cfg.view_set_span = 6;
  cfg.view_resolution = resolution;
  return cfg;
}

SphericalLattice::SphericalLattice(const LatticeConfig& config) : config_(config) {
  if (config.angular_step_deg <= 0.0 || config.view_set_span < 1 ||
      config.view_resolution < 1) {
    throw std::invalid_argument("SphericalLattice: bad config");
  }
  if (config.outer_radius <= config.inner_radius) {
    throw std::invalid_argument("SphericalLattice: outer sphere must enclose inner");
  }
  // sqrt(3) is the circumradius of the [-1,1]^3 volume cube.
  if (config.inner_radius < std::sqrt(3.0)) {
    throw std::invalid_argument("SphericalLattice: inner sphere must enclose the volume");
  }
  step_rad_ = deg2rad(config.angular_step_deg);
  rows_ = static_cast<std::size_t>(std::lround(180.0 / config.angular_step_deg));
  cols_ = static_cast<std::size_t>(std::lround(360.0 / config.angular_step_deg));
  const auto span = static_cast<std::size_t>(config.view_set_span);
  if (rows_ % span != 0 || cols_ % span != 0) {
    throw std::invalid_argument("SphericalLattice: span must divide lattice dims");
  }
  vs_rows_ = rows_ / span;
  vs_cols_ = cols_ / span;
}

Spherical SphericalLattice::sample_direction(std::size_t row, std::size_t col) const {
  return {(static_cast<double>(row) + 0.5) * step_rad_,
          static_cast<double>(col) * step_rad_};
}

Vec3 SphericalLattice::camera_position(std::size_t row, std::size_t col) const {
  return spherical_to_unit(sample_direction(row, col)) * config_.outer_radius;
}

std::pair<double, double> SphericalLattice::lattice_coords(const Spherical& dir) const {
  const double fr = dir.theta / step_rad_ - 0.5;
  double fc = dir.phi / step_rad_;
  const auto n = static_cast<double>(cols_);
  fc = std::fmod(fc, n);
  if (fc < 0.0) fc += n;
  return {fr, fc};
}

std::pair<std::size_t, std::size_t> SphericalLattice::nearest_sample(
    const Spherical& dir) const {
  const auto [fr, fc] = lattice_coords(dir);
  const long row = std::clamp<long>(std::lround(fr), 0, static_cast<long>(rows_) - 1);
  long col = std::lround(fc);
  if (col >= static_cast<long>(cols_)) col = 0;  // phi wrap
  return {static_cast<std::size_t>(row), static_cast<std::size_t>(col)};
}

ViewSetId SphericalLattice::view_set_of(std::size_t row, std::size_t col) const {
  const auto span = static_cast<std::size_t>(config_.view_set_span);
  return {static_cast<int>(row / span), static_cast<int>(col / span)};
}

ViewSetId SphericalLattice::view_set_of(const Spherical& dir) const {
  const auto [row, col] = nearest_sample(dir);
  return view_set_of(row, col);
}

int SphericalLattice::quadrant_of(const Spherical& dir) const {
  // The quadrant must be measured within the *containing* view set — the one
  // view_set_of() reports — or the prefetch targets point away from where the
  // cursor actually is. Taking fmod of the raw coordinates gets this wrong
  // wherever rounding crosses a set boundary: just left of the phi wrap seam
  // (fc = cols - eps belongs to set col 0, but fmod says "right half" of the
  // last set) and just above any set's first row (fr = k*span - eps rounds
  // into set k, but fmod says "lower half" of set k-1).
  const auto [fr, fc] = lattice_coords(dir);
  const auto [row, col] = nearest_sample(dir);
  const ViewSetId id = view_set_of(row, col);
  const double span = config_.view_set_span;
  const double local_r = fr - static_cast<double>(id.row) * span;
  double local_c = fc - static_cast<double>(id.col) * span;
  // Wrap the phi offset to the nearest image so a cursor just left of the
  // seam measures slightly negative instead of nearly +cols.
  const auto n = static_cast<double>(cols_);
  if (local_c >= n / 2.0) local_c -= n;
  else if (local_c < -n / 2.0) local_c += n;
  // Split at the set's center — the point equidistant from the two opposite
  // neighbours' centers. In fr-space the center sits at span/2 - 0.5 (theta
  // carries the half-step pole offset); in fc-space at span/2.
  return (local_r >= span / 2.0 - 0.5 ? 1 : 0) | (local_c >= span / 2.0 ? 2 : 0);
}

std::vector<ViewSetId> SphericalLattice::neighbors(const ViewSetId& id) const {
  std::vector<ViewSetId> out;
  for (int dr = -1; dr <= 1; ++dr) {
    for (int dc = -1; dc <= 1; ++dc) {
      if (dr == 0 && dc == 0) continue;
      const int row = id.row + dr;
      if (row < 0 || row >= static_cast<int>(vs_rows_)) continue;  // theta clamps
      int col = (id.col + dc) % static_cast<int>(vs_cols_);
      if (col < 0) col += static_cast<int>(vs_cols_);               // phi wraps
      out.push_back({row, col});
    }
  }
  return out;
}

std::vector<ViewSetId> SphericalLattice::prefetch_targets(const ViewSetId& id,
                                                          int quadrant) const {
  // Quadrant bit 0: lower half in theta (towards larger row); bit 1: right
  // half in phi (towards larger col). The three neighbours sharing that
  // corner are the ones the user can step into next (paper figure 4).
  const int dr = (quadrant & 1) ? 1 : -1;
  const int dc = (quadrant & 2) ? 1 : -1;
  std::vector<ViewSetId> out;
  const auto push_if_valid = [&](int row, int col) {
    if (row < 0 || row >= static_cast<int>(vs_rows_)) return;
    col %= static_cast<int>(vs_cols_);
    if (col < 0) col += static_cast<int>(vs_cols_);
    out.push_back({row, col});
  };
  push_if_valid(id.row + dr, id.col);
  push_if_valid(id.row, id.col + dc);
  push_if_valid(id.row + dr, id.col + dc);
  return out;
}

Spherical SphericalLattice::view_set_center(const ViewSetId& id) const {
  const double span = config_.view_set_span;
  return {(static_cast<double>(id.row) + 0.5) * span * step_rad_,
          (static_cast<double>(id.col) + 0.5) * span * step_rad_};
}

double SphericalLattice::view_set_distance(const ViewSetId& a, const ViewSetId& b) const {
  return angular_distance(view_set_center(a), view_set_center(b));
}

std::vector<ViewSetId> SphericalLattice::all_view_sets() const {
  std::vector<ViewSetId> out;
  out.reserve(view_set_count());
  for (std::size_t r = 0; r < vs_rows_; ++r) {
    for (std::size_t c = 0; c < vs_cols_; ++c) {
      out.push_back({static_cast<int>(r), static_cast<int>(c)});
    }
  }
  return out;
}

}  // namespace lon::lightfield
