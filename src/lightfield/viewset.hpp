// View sets: the unit of light-field storage and transmission.
//
// A view set holds the span x span block of sample views around one patch of
// the camera sphere (6 x 6 views covering 15 degrees in the paper). On the
// wire a view set is serialized (header + predictor-filtered scanlines) and
// lfz-compressed as a single object — "the view sets remain losslessly
// compressed until received by the client".
#pragma once

#include <cstdint>
#include <vector>

#include "lightfield/lattice.hpp"
#include "render/image.hpp"
#include "util/bytes.hpp"
#include "util/thread_pool.hpp"

namespace lon::lightfield {

/// How a view set's pixels are arranged before entropy coding.
///
/// kIntra filters each sample view independently (PNG-style predictors).
/// kInterView exploits the *view coherence* the paper builds view sets
/// around ("a view set provides a natural mechanism to exploit view
/// coherence", section 3.2): the first view is intra-coded, every later view
/// is stored as its per-pixel difference from the previous view in the
/// block, which is near-zero for 2.5-degree-apart cameras.
/// kAdaptive (the LFZ2 payload) predicts each view from its already-decoded
/// lattice neighbor (left in the block row, or the view above for column 0)
/// and picks intra filtering vs. the inter delta per view by the smaller
/// post-filter residual sum — parallax-heavy views fall back to intra
/// instead of paying for a bad prediction.
enum class SerializeMode : std::uint8_t { kIntra = 0, kInterView = 1, kAdaptive = 2 };

class ViewSet {
 public:
  ViewSet() = default;
  /// Creates an empty (black) view set of span x span views at the given
  /// resolution.
  ViewSet(ViewSetId id, int span, std::size_t resolution);

  [[nodiscard]] ViewSetId id() const { return id_; }
  [[nodiscard]] int span() const { return span_; }
  [[nodiscard]] std::size_t resolution() const { return resolution_; }
  [[nodiscard]] std::size_t view_count() const { return views_.size(); }

  /// Sample view at block-local (row, col), 0 <= row, col < span.
  [[nodiscard]] const render::ImageRGB8& view(int row, int col) const;
  [[nodiscard]] render::ImageRGB8& view(int row, int col);

  /// Uncompressed payload size: span^2 * resolution^2 * 3 bytes.
  [[nodiscard]] std::uint64_t pixel_bytes() const;

  /// Serializes (header + pixels arranged per `mode`). Lossless either way.
  [[nodiscard]] Bytes serialize(SerializeMode mode = SerializeMode::kIntra) const;
  static ViewSet deserialize(const Bytes& data);

  /// serialize() + lfz compression in one step.
  [[nodiscard]] Bytes compress(SerializeMode mode = SerializeMode::kIntra) const;

  /// Chunked variant: independent lfz chunks so big view sets can be
  /// (de)compressed across a thread pool — the "more efficient compression
  /// scheme" remedy for figure 8's decompression bottleneck at 500^2+.
  [[nodiscard]] Bytes compress_chunked(std::uint64_t chunk_bytes = 1 << 20,
                                       ThreadPool* pool = nullptr,
                                       SerializeMode mode = SerializeMode::kIntra) const;

  /// LFZ2: the adaptive inter-view serialization in a chunked container
  /// under the "LFZ2" magic — fewer bytes on the wire than LFZC at the same
  /// pipeline/overlap behaviour.
  [[nodiscard]] Bytes compress_lfz2(std::uint64_t chunk_bytes = 1 << 20,
                                    ThreadPool* pool = nullptr) const;

  /// Accepts plain and chunked containers of every mode (auto-detected); the
  /// pool only matters for chunked input.
  static ViewSet decompress(const Bytes& compressed, ThreadPool* pool = nullptr);

  bool operator==(const ViewSet&) const = default;

 private:
  ViewSetId id_;
  int span_ = 0;
  std::size_t resolution_ = 0;
  std::vector<render::ImageRGB8> views_;  // row-major within the block
};

}  // namespace lon::lightfield
