#include "lightfield/procedural.hpp"

#include <cmath>

#include "util/rng.hpp"

namespace lon::lightfield {

ProceduralSource::ProceduralSource(const LatticeConfig& config, ProceduralOptions options)
    : lattice_(config), options_(options) {}

render::ImageRGB8 ProceduralSource::render_sample(std::size_t row, std::size_t col) const {
  const std::size_t r = lattice_.config().view_resolution;
  render::ImageRGB8 image(r, r);
  const Spherical dir = lattice_.sample_direction(row, col);

  // Blob parameters are global to the dataset (seeded), their projected
  // positions depend smoothly on the view angles — neighbouring sample views
  // look alike, exactly the view coherence real light fields exhibit.
  Rng rng(options_.seed);
  struct Blob {
    double u, v, radius, r_col, g_col, b_col, depth;
  };
  std::vector<Blob> blobs(static_cast<std::size_t>(options_.blobs));
  for (auto& blob : blobs) {
    blob.u = rng.uniform(-0.6, 0.6);
    blob.v = rng.uniform(-0.6, 0.6);
    blob.depth = rng.uniform(-0.5, 0.5);
    blob.radius = rng.uniform(0.1, 0.3);
    blob.r_col = rng.uniform(0.3, 1.0);
    blob.g_col = rng.uniform(0.3, 1.0);
    blob.b_col = rng.uniform(0.3, 1.0);
    // Animated datasets: features drift along seeded velocities.
    if (options_.time_phase != 0.0) {
      blob.u += rng.uniform(-1.0, 1.0) * options_.time_phase;
      blob.v += rng.uniform(-1.0, 1.0) * options_.time_phase;
      blob.depth += rng.uniform(-0.5, 0.5) * options_.time_phase;
    } else {
      // Burn the same three draws so phase 0 matches animated frame 0.
      (void)rng.uniform(-1.0, 1.0);
      (void)rng.uniform(-1.0, 1.0);
      (void)rng.uniform(-0.5, 0.5);
    }
  }

  Rng noise_rng(options_.seed ^ (row * 1315423911ull) ^ (col * 2654435761ull));
  const double ct = std::cos(dir.theta), st = std::sin(dir.theta);
  const double cp = std::cos(dir.phi), sp = std::sin(dir.phi);
  for (std::size_t y = 0; y < r; ++y) {
    for (std::size_t x = 0; x < r; ++x) {
      const double px = 2.0 * (static_cast<double>(x) + 0.5) / static_cast<double>(r) - 1.0;
      const double py = 2.0 * (static_cast<double>(y) + 0.5) / static_cast<double>(r) - 1.0;
      double rr = 0.0, gg = 0.0, bb = 0.0;
      for (const Blob& blob : blobs) {
        // Parallax: a blob's screen position shifts with the view angles in
        // proportion to its depth.
        const double bu = blob.u * cp - blob.depth * sp;
        const double bv = blob.v * ct - blob.depth * st * 0.5;
        const double d2 = (px - bu) * (px - bu) + (py - bv) * (py - bv);
        const double w = std::exp(-d2 / (2.0 * blob.radius * blob.radius));
        rr += w * blob.r_col;
        gg += w * blob.g_col;
        bb += w * blob.b_col;
      }
      auto to_byte = [&](double v) {
        double value = options_.contrast * v;
        if (options_.noise > 0.0) {
          value += options_.noise * (noise_rng.uniform() - 0.5);
        }
        return static_cast<std::uint8_t>(std::clamp(value, 0.0, 1.0) * 255.0 + 0.5);
      };
      image.set(x, y, {to_byte(rr), to_byte(gg), to_byte(bb)});
    }
  }
  return image;
}

ViewSet ProceduralSource::build(const ViewSetId& id) {
  if (!lattice_.valid(id)) throw std::out_of_range("ProceduralSource: bad view-set id");
  const int span = lattice_.config().view_set_span;
  ViewSet vs(id, span, lattice_.config().view_resolution);
  for (int lr = 0; lr < span; ++lr) {
    for (int lc = 0; lc < span; ++lc) {
      vs.view(lr, lc) = render_sample(static_cast<std::size_t>(id.row * span + lr),
                                      static_cast<std::size_t>(id.col * span + lc));
    }
  }
  return vs;
}

}  // namespace lon::lightfield
