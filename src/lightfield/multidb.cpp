#include "lightfield/multidb.hpp"

#include <algorithm>
#include <functional>
#include <limits>
#include <stdexcept>

#include "exnode/xml.hpp"

namespace lon::lightfield {

MultiDatabase::MultiDatabase(double hysteresis_margin) : margin_(hysteresis_margin) {
  if (margin_ < 0.0 || margin_ >= 1.0) {
    throw std::invalid_argument("MultiDatabase: margin must be in [0, 1)");
  }
}

DatabaseId MultiDatabase::add(const std::string& name, const Vec3& center,
                              const LatticeConfig& lattice, double scale) {
  if (name.empty()) throw std::invalid_argument("MultiDatabase: empty name");
  if (scale <= 0.0) throw std::invalid_argument("MultiDatabase: non-positive scale");
  if (find(name) != nullptr) {
    throw std::invalid_argument("MultiDatabase: duplicate name " + name);
  }
  // Validate the lattice config eagerly (throws on a bad one).
  (void)SphericalLattice(lattice);
  DatabaseEntry entry;
  entry.id = static_cast<DatabaseId>(entries_.size());
  entry.name = name;
  entry.center = center;
  entry.scale = scale;
  entry.lattice = lattice;
  entries_.push_back(std::move(entry));
  return entries_.back().id;
}

const DatabaseEntry& MultiDatabase::entry(DatabaseId id) const {
  if (id >= entries_.size()) throw std::out_of_range("MultiDatabase: bad id");
  return entries_[id];
}

const DatabaseEntry* MultiDatabase::find(const std::string& name) const {
  for (const auto& e : entries_) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

bool MultiDatabase::usable(DatabaseId id, const Vec3& viewer) const {
  const DatabaseEntry& e = entry(id);
  return (viewer - e.center).norm() >= e.world_outer_radius();
}

std::optional<DatabaseId> MultiDatabase::select(const Vec3& viewer,
                                                std::optional<DatabaseId> current) const {
  // Hysteresis (see the class doc): keep the current database inside the
  // band [R, R*(1+margin)) just outside its sphere, and beyond it unless a
  // competitor is substantially closer.
  if (current.has_value() && *current < entries_.size()) {
    const DatabaseEntry& e = entries_[*current];
    const double distance = (viewer - e.center).norm();
    if (distance >= e.world_outer_radius() * (1.0 + margin_)) {
      // Only abandon it if some other database is *substantially* closer.
      double best_other = std::numeric_limits<double>::infinity();
      for (const auto& o : entries_) {
        if (o.id == *current) continue;
        const double d = (viewer - o.center).norm();
        if (d >= o.world_outer_radius() && d < best_other) best_other = d;
      }
      if (best_other >= distance * (1.0 - margin_)) return current;
    } else if (distance >= e.world_outer_radius()) {
      return current;  // inside the hysteresis band: never switch here
    }
  }
  // Nearest usable database.
  std::optional<DatabaseId> best;
  double best_distance = std::numeric_limits<double>::infinity();
  for (const auto& e : entries_) {
    const double distance = (viewer - e.center).norm();
    if (distance < e.world_outer_radius()) continue;  // viewer inside: unusable
    if (distance < best_distance) {
      best_distance = distance;
      best = e.id;
    }
  }
  return best;
}

Spherical MultiDatabase::direction_in(DatabaseId id, const Vec3& viewer) const {
  const DatabaseEntry& e = entry(id);
  return unit_to_spherical(viewer - e.center);
}

double MultiDatabase::range_in(DatabaseId id, const Vec3& viewer) const {
  const DatabaseEntry& e = entry(id);
  return (viewer - e.center).norm() / e.scale;
}

std::string MultiDatabase::scoped_key(DatabaseId id, const ViewSetId& vs) const {
  return entry(id).name + "/" + vs.key();
}

std::string MultiDatabase::to_xml() const {
  exnode::XmlElement root;
  root.name = "multidb";
  root.attributes["margin"] = std::to_string(margin_);
  for (const auto& e : entries_) {
    exnode::XmlElement db;
    db.name = "database";
    db.attributes["name"] = e.name;
    db.attributes["cx"] = std::to_string(e.center.x);
    db.attributes["cy"] = std::to_string(e.center.y);
    db.attributes["cz"] = std::to_string(e.center.z);
    db.attributes["scale"] = std::to_string(e.scale);
    db.attributes["step"] = std::to_string(e.lattice.angular_step_deg);
    db.attributes["span"] = std::to_string(e.lattice.view_set_span);
    db.attributes["resolution"] = std::to_string(e.lattice.view_resolution);
    db.attributes["outer"] = std::to_string(e.lattice.outer_radius);
    db.attributes["inner"] = std::to_string(e.lattice.inner_radius);
    db.attributes["fov"] = std::to_string(e.lattice.fov_deg);
    root.children.push_back(std::move(db));
  }
  return exnode::to_xml(root);
}

namespace {

// Strict numeric attribute parsing: the whole attribute must be consumed, so
// "0.5junk" / "abc" / "" fail with a clear XmlError instead of the
// std::stod quirks (partial parses silently accepted, bare std::exceptions
// bubbling out of the manifest loader).
double parse_double_attr(const exnode::XmlElement& e, const std::string& key) {
  const std::string& raw = e.attr(key);
  std::size_t pos = 0;
  double value = 0.0;
  try {
    value = std::stod(raw, &pos);
  } catch (const std::exception&) {
    pos = std::string::npos;
  }
  if (raw.empty() || pos != raw.size()) {
    throw exnode::XmlError("multidb: attribute '" + key + "' is not a number: \"" +
                           raw + "\"");
  }
  return value;
}

long parse_long_attr(const exnode::XmlElement& e, const std::string& key) {
  const std::string& raw = e.attr(key);
  std::size_t pos = 0;
  long value = 0;
  try {
    value = std::stol(raw, &pos);
  } catch (const std::exception&) {
    pos = std::string::npos;
  }
  if (raw.empty() || pos != raw.size()) {
    throw exnode::XmlError("multidb: attribute '" + key + "' is not an integer: \"" +
                           raw + "\"");
  }
  return value;
}

}  // namespace

MultiDatabase MultiDatabase::from_xml(const std::string& xml) {
  const exnode::XmlElement root = exnode::parse_xml(xml);
  if (root.name != "multidb") {
    throw exnode::XmlError("expected <multidb> root, got <" + root.name + ">");
  }
  const double margin = parse_double_attr(root, "margin");
  // Negated comparison so NaN (which std::stod happily parses) is rejected
  // too, with the same message.
  if (!(margin >= 0.0 && margin < 1.0)) {
    throw exnode::XmlError("multidb: margin \"" + root.attr("margin") +
                           "\" outside [0, 1)");
  }
  MultiDatabase out(margin);
  for (const exnode::XmlElement* db : root.children_named("database")) {
    LatticeConfig lattice;
    lattice.angular_step_deg = parse_double_attr(*db, "step");
    lattice.view_set_span = static_cast<int>(parse_long_attr(*db, "span"));
    const long resolution = parse_long_attr(*db, "resolution");
    if (resolution <= 0) {
      throw exnode::XmlError("multidb: attribute 'resolution' must be positive: \"" +
                             db->attr("resolution") + "\"");
    }
    lattice.view_resolution = static_cast<std::size_t>(resolution);
    lattice.outer_radius = parse_double_attr(*db, "outer");
    lattice.inner_radius = parse_double_attr(*db, "inner");
    lattice.fov_deg = parse_double_attr(*db, "fov");
    const Vec3 center{parse_double_attr(*db, "cx"), parse_double_attr(*db, "cy"),
                      parse_double_attr(*db, "cz")};
    out.add(db->attr("name"), center, lattice, parse_double_attr(*db, "scale"));
  }
  return out;
}

MultiDatabase MultiDatabase::lod_ladder(const LatticeConfig& full,
                                        std::vector<std::size_t> coarse_resolutions,
                                        double margin) {
  std::sort(coarse_resolutions.begin(), coarse_resolutions.end(),
            std::greater<std::size_t>());
  MultiDatabase out(margin);
  out.add("full", {}, full);
  std::size_t previous = full.view_resolution;
  for (std::size_t res : coarse_resolutions) {
    if (res == 0 || res >= full.view_resolution) {
      throw std::invalid_argument(
          "MultiDatabase::lod_ladder: coarse resolution must be in (0, full)");
    }
    if (res == previous) {
      throw std::invalid_argument(
          "MultiDatabase::lod_ladder: duplicate coarse resolution");
    }
    previous = res;
    LatticeConfig coarse = full;
    coarse.view_resolution = res;
    out.add("lod" + std::to_string(res), {}, coarse);
  }
  return out;
}

}  // namespace lon::lightfield
