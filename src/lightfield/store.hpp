// On-disk light-field database store.
//
// The offline generator's artifact (paper section 3.4: "the rendering of all
// view sets can be completely pre-computed off-line"): a directory holding
// one lfz-compressed file per view set plus an XML manifest describing the
// lattice, so a database can be built once, shipped to depots later, and
// browsed locally. Layout:
//
//   <dir>/manifest.xml
//   <dir>/vs<row>_<col>.lfz
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "lightfield/builder.hpp"

namespace lon::lightfield {

class DatabaseStore {
 public:
  /// Opens (or prepares to create) a store rooted at `directory`.
  explicit DatabaseStore(std::string directory);

  /// Writes the manifest for a database with this configuration and name.
  /// Creates the directory if needed.
  void create(const LatticeConfig& config, const std::string& dataset_name);

  /// Loads an existing manifest. Throws std::runtime_error if absent/bad.
  void open();

  [[nodiscard]] bool is_open() const { return lattice_.has_value(); }
  [[nodiscard]] const LatticeConfig& config() const;
  [[nodiscard]] const SphericalLattice& lattice() const;
  [[nodiscard]] const std::string& dataset_name() const { return dataset_; }

  /// Writes one compressed view set.
  void put(const ViewSetId& id, const Bytes& compressed);

  /// Reads one compressed view set; nullopt if not present.
  [[nodiscard]] std::optional<Bytes> get(const ViewSetId& id) const;

  /// Convenience: decompressed form.
  [[nodiscard]] std::optional<ViewSet> get_view_set(const ViewSetId& id) const;

  /// Ids present on disk.
  [[nodiscard]] std::vector<ViewSetId> stored_ids() const;

  /// True when every view set of the lattice is present.
  [[nodiscard]] bool complete() const;

  /// Builds and stores every missing view set from `source` (the offline
  /// generation loop). Returns how many were built.
  std::size_t build_all(ViewSetSource& source);

  [[nodiscard]] const std::string& directory() const { return directory_; }

 private:
  [[nodiscard]] std::string path_of(const ViewSetId& id) const;

  std::string directory_;
  std::string dataset_;
  std::optional<SphericalLattice> lattice_;
};

}  // namespace lon::lightfield
