// Time-varying light fields.
//
// The paper closes with: "We will continue to develop remote visualization
// systems for flow fields and time-varying simulations as well." A
// time-varying simulation yields one light-field database per timestep; the
// unit of transfer becomes a (frame, view-set) pair and anticipation gains a
// time axis: while the user watches frame t, the sets worth prefetching are
// the angular neighbours at t *and* the same angular window at t+1, t+2, ...
// (playback almost always advances monotonically).
#pragma once

#include <cstddef>
#include <vector>

#include "lightfield/procedural.hpp"

namespace lon::lightfield {

/// Addresses one view set of one timestep.
struct TemporalKey {
  std::size_t frame = 0;
  ViewSetId vs;

  bool operator==(const TemporalKey&) const = default;

  [[nodiscard]] std::string key() const {
    return "t" + std::to_string(frame) + "/" + vs.key();
  }
};

struct TemporalKeyHash {
  std::size_t operator()(const TemporalKey& k) const {
    return ViewSetIdHash{}(k.vs) ^ (k.frame * 0x9e3779b97f4a7c15ULL);
  }
};

/// A procedurally animated dataset: the blob features drift along seeded
/// velocities, so consecutive frames are strongly coherent (as consecutive
/// timesteps of a simulation are) while distant frames differ.
class TemporalSource {
 public:
  TemporalSource(const LatticeConfig& config, std::size_t frames,
                 ProceduralOptions options = {}, double motion = 0.06);

  [[nodiscard]] const SphericalLattice& lattice() const;
  [[nodiscard]] std::size_t frames() const { return frames_; }

  /// Builds the view set for one timestep (deterministic).
  [[nodiscard]] ViewSet build(const TemporalKey& key);
  [[nodiscard]] Bytes build_compressed(const TemporalKey& key);

 private:
  std::vector<ProceduralSource> per_frame_;
  std::size_t frames_;
};

/// The playback prefetch policy: the angular quadrant targets of the current
/// frame (paper figure 4) plus the current view set carried `lookahead`
/// frames forward in time. Frames beyond the last are dropped (no wrap).
[[nodiscard]] std::vector<TemporalKey> playback_prefetch_targets(
    const SphericalLattice& lattice, const TemporalKey& current, int quadrant,
    std::size_t total_frames, int lookahead = 2);

}  // namespace lon::lightfield
