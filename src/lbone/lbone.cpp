#include "lbone/lbone.hpp"

#include <algorithm>
#include <stdexcept>

namespace lon::lbone {

void Directory::register_depot(const std::string& name) {
  if (fabric_.find_depot(name) == nullptr) {
    throw std::invalid_argument("Directory: depot not hosted in fabric: " + name);
  }
  if (is_registered(name)) return;
  records_.push_back(Record{name, true});
}

void Directory::set_alive(const std::string& name, bool alive) {
  for (auto& record : records_) {
    if (record.name == name) {
      record.alive = alive;
      return;
    }
  }
  throw std::out_of_range("Directory: unknown depot " + name);
}

bool Directory::is_registered(const std::string& name) const {
  return std::any_of(records_.begin(), records_.end(),
                     [&](const Record& r) { return r.name == name; });
}

std::vector<Candidate> Directory::find(sim::NodeId requester, const Requirements& req) const {
  std::vector<Candidate> out;
  for (const auto& record : records_) {
    if (!record.alive) continue;
    const ibp::Depot* depot = fabric_.find_depot(record.name);
    if (depot == nullptr) continue;
    if (depot->bytes_free() < req.free_bytes) continue;
    if (depot->config().max_lease < req.lease) continue;
    const sim::NodeId node = fabric_.depot_node(record.name);
    if (!net_.reachable(requester, node)) continue;
    Candidate c;
    c.name = record.name;
    c.node = node;
    c.latency = net_.path_latency(requester, node);
    c.free_bytes = depot->bytes_free();
    out.push_back(std::move(c));
  }
  std::sort(out.begin(), out.end(), [](const Candidate& a, const Candidate& b) {
    return a.latency != b.latency ? a.latency < b.latency : a.name < b.name;
  });
  if (out.size() > req.count) out.resize(req.count);
  return out;
}

}  // namespace lon::lbone
