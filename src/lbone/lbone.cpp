#include "lbone/lbone.hpp"

#include <algorithm>
#include <stdexcept>

namespace lon::lbone {

void Directory::register_depot(const std::string& name) {
  if (fabric_.find_depot(name) == nullptr) {
    throw std::invalid_argument("Directory: depot not hosted in fabric: " + name);
  }
  if (is_registered(name)) return;
  records_.push_back(Record{name, true});
}

void Directory::set_alive(const std::string& name, bool alive) {
  for (auto& record : records_) {
    if (record.name == name) {
      record.alive = alive;
      return;
    }
  }
  throw std::out_of_range("Directory: unknown depot " + name);
}

bool Directory::is_registered(const std::string& name) const {
  return std::any_of(records_.begin(), records_.end(),
                     [&](const Record& r) { return r.name == name; });
}

const Directory::ProbeStats& Directory::probe_stats() const {
  probe_stats_view_.sweeps = metrics_.sweeps.value();
  probe_stats_view_.marked_dead = metrics_.marked_dead.value();
  probe_stats_view_.marked_alive = metrics_.marked_alive.value();
  return probe_stats_view_;
}

std::vector<Candidate> Directory::find(sim::NodeId requester, const Requirements& req) const {
  metrics_.queries.inc();
  std::vector<Candidate> out;
  for (const auto& record : records_) {
    if (!record.alive) continue;
    const ibp::Depot* depot = fabric_.find_depot(record.name);
    if (depot == nullptr) continue;
    // The directory's liveness flag lags reality (it only updates on
    // set_alive or a probe sweep); the fabric's offline flag is the ground
    // truth, so cross-check it rather than returning a depot every request
    // to which will fail.
    if (fabric_.is_offline(record.name)) continue;
    if (depot->bytes_free() < req.free_bytes) continue;
    if (depot->config().max_lease < req.lease) continue;
    const sim::NodeId node = fabric_.depot_node(record.name);
    if (!net_.reachable(requester, node)) continue;
    Candidate c;
    c.name = record.name;
    c.node = node;
    c.latency = net_.path_latency(requester, node);
    c.free_bytes = depot->bytes_free();
    out.push_back(std::move(c));
  }
  std::sort(out.begin(), out.end(), [](const Candidate& a, const Candidate& b) {
    return a.latency != b.latency ? a.latency < b.latency : a.name < b.name;
  });
  if (out.size() > req.count) out.resize(req.count);
  return out;
}

void Directory::start_health_probes(SimDuration interval) {
  if (interval <= 0) throw std::invalid_argument("Directory: non-positive probe interval");
  stop_health_probes();
  probe_interval_ = interval;
  probe_timer_ = net_.simulator().after(interval, [this] { probe_sweep(); });
}

void Directory::stop_health_probes() {
  if (probe_timer_.has_value()) {
    net_.simulator().cancel(*probe_timer_);
    probe_timer_.reset();
  }
  probe_interval_ = 0;
}

void Directory::probe_sweep() {
  metrics_.sweeps.inc();
  for (auto& record : records_) {
    const bool up = !fabric_.is_offline(record.name);
    if (record.alive && !up) metrics_.marked_dead.inc();
    if (!record.alive && up) metrics_.marked_alive.inc();
    record.alive = up;
  }
  probe_timer_ = net_.simulator().after(probe_interval_, [this] { probe_sweep(); });
}

}  // namespace lon::lbone
