// The Logistical Backbone (L-Bone): a directory of IBP depots.
//
// "The Logistical Backbone (L-Bone) allows the user to find the closest set
// of IBP depots that can satisfy the needs of an application. We use the
// L-Bone tools to dynamically identify appropriate depots to serve as the
// network caches." (paper section 2.2)
//
// Our directory ranks depots by network proximity to the requesting node
// (propagation latency along the simulated routes) and filters on free
// space, maximum lease and liveness.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ibp/service.hpp"
#include "simnet/network.hpp"

namespace lon::lbone {

/// Requirements a depot must satisfy to be returned by a query.
struct Requirements {
  std::uint64_t free_bytes = 0;  ///< minimum advertised free space
  SimDuration lease = 0;         ///< minimum supported lease duration
  std::size_t count = 1;         ///< how many depots the caller wants
};

/// One query result, closest first.
struct Candidate {
  std::string name;
  sim::NodeId node = 0;
  SimDuration latency = 0;  ///< one-way latency from the requester
  std::uint64_t free_bytes = 0;
};

class Directory {
 public:
  Directory(sim::Network& net, ibp::Fabric& fabric) : net_(net), fabric_(fabric) {}

  /// Registers a depot already hosted in the fabric.
  void register_depot(const std::string& name);

  /// Marks a depot unavailable without removing its record (transient
  /// failure — IBP assumes depots can vanish at any time).
  void set_alive(const std::string& name, bool alive);

  [[nodiscard]] bool is_registered(const std::string& name) const;
  [[nodiscard]] std::size_t size() const { return records_.size(); }

  /// Returns up to req.count live, reachable depots satisfying the
  /// requirements, sorted by increasing latency from `requester` (ties by
  /// name for determinism). Fewer than req.count results means the fabric
  /// cannot satisfy the query — callers must cope (best-effort semantics).
  [[nodiscard]] std::vector<Candidate> find(sim::NodeId requester,
                                            const Requirements& req) const;

 private:
  struct Record {
    std::string name;
    bool alive = true;
  };

  sim::Network& net_;
  ibp::Fabric& fabric_;
  std::vector<Record> records_;
};

}  // namespace lon::lbone
