// The Logistical Backbone (L-Bone): a directory of IBP depots.
//
// "The Logistical Backbone (L-Bone) allows the user to find the closest set
// of IBP depots that can satisfy the needs of an application. We use the
// L-Bone tools to dynamically identify appropriate depots to serve as the
// network caches." (paper section 2.2)
//
// Our directory ranks depots by network proximity to the requesting node
// (propagation latency along the simulated routes) and filters on free
// space, maximum lease and liveness.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ibp/service.hpp"
#include "obs/obs.hpp"
#include "simnet/network.hpp"

namespace lon::lbone {

/// Requirements a depot must satisfy to be returned by a query.
struct Requirements {
  std::uint64_t free_bytes = 0;  ///< minimum advertised free space
  SimDuration lease = 0;         ///< minimum supported lease duration
  std::size_t count = 1;         ///< how many depots the caller wants
};

/// One query result, closest first.
struct Candidate {
  std::string name;
  sim::NodeId node = 0;
  SimDuration latency = 0;  ///< one-way latency from the requester
  std::uint64_t free_bytes = 0;
};

class Directory {
 public:
  Directory(sim::Network& net, ibp::Fabric& fabric, obs::Context* obs = nullptr)
      : net_(net),
        fabric_(fabric),
        obs_(obs != nullptr ? *obs : obs::global()),
        scope_(obs_.metrics.scope("lbone")),
        metrics_{scope_.counter("lbone.queries"),
                 scope_.counter("lbone.sweeps"),
                 scope_.counter("lbone.marked_dead"),
                 scope_.counter("lbone.marked_alive")} {}

  /// Registers a depot already hosted in the fabric.
  void register_depot(const std::string& name);

  /// Marks a depot unavailable without removing its record (transient
  /// failure — IBP assumes depots can vanish at any time).
  void set_alive(const std::string& name, bool alive);

  [[nodiscard]] bool is_registered(const std::string& name) const;
  [[nodiscard]] std::size_t size() const { return records_.size(); }

  /// Returns up to req.count live, reachable depots satisfying the
  /// requirements, sorted by increasing latency from `requester` (ties by
  /// name for determinism). Depots the fabric currently reports offline are
  /// skipped even when the directory still believes them alive — the
  /// directory is a cache of liveness and must not hand out depots the
  /// fabric already knows are down. Fewer than req.count results means the
  /// fabric cannot satisfy the query — callers must cope (best-effort
  /// semantics).
  [[nodiscard]] std::vector<Candidate> find(sim::NodeId requester,
                                            const Requirements& req) const;

  /// Starts a periodic health sweep on the simulator clock: every
  /// `interval`, each record's liveness is set from the fabric's
  /// offline flag, so a crashed depot drops out of query results within
  /// one sweep and re-enters automatically after its restart. Restarting
  /// with a new interval replaces the previous schedule.
  void start_health_probes(SimDuration interval);
  void stop_health_probes();

  struct ProbeStats {
    std::uint64_t sweeps = 0;
    std::uint64_t marked_dead = 0;   ///< alive -> dead flips
    std::uint64_t marked_alive = 0;  ///< dead -> alive flips
  };
  /// Compatibility view over the obs registry counters.
  [[nodiscard]] const ProbeStats& probe_stats() const;

 private:
  struct Record {
    std::string name;
    bool alive = true;
  };

  struct Metrics {
    obs::Counter& queries;
    obs::Counter& sweeps;
    obs::Counter& marked_dead;
    obs::Counter& marked_alive;
  };

  void probe_sweep();

  sim::Network& net_;
  ibp::Fabric& fabric_;
  obs::Context& obs_;
  obs::Scope scope_;
  Metrics metrics_;
  std::vector<Record> records_;
  SimDuration probe_interval_ = 0;  ///< 0 = probes off
  std::optional<sim::TimerId> probe_timer_;
  mutable ProbeStats probe_stats_view_;
};

}  // namespace lon::lbone
