#include "compress/lfz.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "compress/bitio.hpp"
#include "compress/huffman.hpp"
#include "util/buffer_pool.hpp"
#include "util/checksum.hpp"

namespace lon::lfz {

namespace {

constexpr std::uint8_t kMagic[4] = {'L', 'F', 'Z', '1'};
constexpr std::uint32_t kEob = 256;
constexpr std::size_t kLitAlphabet = 286;  // 0..255 literals, 256 EOB, 257..285 lengths
constexpr std::size_t kDistAlphabet = 30;

// DEFLATE length codes: base length and extra bits for symbols 257..285.
struct LengthCode {
  std::uint32_t base;
  int extra;
};
constexpr std::array<LengthCode, 29> kLengthCodes = {{
    {3, 0},   {4, 0},   {5, 0},   {6, 0},   {7, 0},   {8, 0},   {9, 0},   {10, 0},
    {11, 1},  {13, 1},  {15, 1},  {17, 1},  {19, 2},  {23, 2},  {27, 2},  {31, 2},
    {35, 3},  {43, 3},  {51, 3},  {59, 3},  {67, 4},  {83, 4},  {99, 4},  {115, 4},
    {131, 5}, {163, 5}, {195, 5}, {227, 5}, {258, 0},
}};

// DEFLATE distance codes: base distance and extra bits for symbols 0..29.
constexpr std::array<LengthCode, 30> kDistCodes = {{
    {1, 0},     {2, 0},     {3, 0},     {4, 0},     {5, 1},     {7, 1},
    {9, 2},     {13, 2},    {17, 3},    {25, 3},    {33, 4},    {49, 4},
    {65, 5},    {97, 5},    {129, 6},   {193, 6},   {257, 7},   {385, 7},
    {513, 8},   {769, 8},   {1025, 9},  {1537, 9},  {2049, 10}, {3073, 10},
    {4097, 11}, {6145, 11}, {8193, 12}, {12289, 12},{16385, 13},{24577, 13},
}};

/// Symbol for a match length in [3, 258].
std::uint32_t length_symbol(std::uint32_t length) {
  // Linear scan is fine: 29 entries, called once per token.
  for (std::size_t i = kLengthCodes.size(); i-- > 0;) {
    if (length >= kLengthCodes[i].base) return static_cast<std::uint32_t>(257 + i);
  }
  throw DecodeError("lfz: match length out of range");
}

/// Symbol for a distance in [1, 32768].
std::uint32_t distance_symbol(std::uint32_t distance) {
  for (std::size_t i = kDistCodes.size(); i-- > 0;) {
    if (distance >= kDistCodes[i].base) return static_cast<std::uint32_t>(i);
  }
  throw DecodeError("lfz: distance out of range");
}

void write_lengths_packed(ByteWriter& out, std::span<const std::uint8_t> lengths) {
  // Two 4-bit lengths per byte (code lengths never exceed 15).
  for (std::size_t i = 0; i < lengths.size(); i += 2) {
    const std::uint8_t lo = lengths[i];
    const std::uint8_t hi = (i + 1 < lengths.size()) ? lengths[i + 1] : 0;
    out.u8(static_cast<std::uint8_t>(lo | (hi << 4)));
  }
}

std::vector<std::uint8_t> read_lengths_packed(ByteReader& in, std::size_t count) {
  std::vector<std::uint8_t> lengths(count);
  for (std::size_t i = 0; i < count; i += 2) {
    const std::uint8_t byte = in.u8();
    lengths[i] = byte & 0x0f;
    if (i + 1 < count) lengths[i + 1] = byte >> 4;
  }
  return lengths;
}

}  // namespace

Bytes compress(std::span<const std::uint8_t> data, const CompressOptions& options) {
  ByteWriter header;
  header.raw(std::span(kMagic));
  header.u64(data.size());
  header.u32(adler32(data));

  if (options.store_only) {
    header.u8(0);
    header.raw(data);
    return header.take();
  }

  const std::vector<Token> tokens = lz77_tokenize(data, options.lz);

  // Gather symbol statistics.
  std::vector<std::uint64_t> lit_freq(kLitAlphabet, 0);
  std::vector<std::uint64_t> dist_freq(kDistAlphabet, 0);
  for (const Token& t : tokens) {
    if (t.is_literal()) {
      ++lit_freq[t.literal];
    } else {
      ++lit_freq[length_symbol(t.length)];
      ++dist_freq[distance_symbol(t.distance)];
    }
  }
  ++lit_freq[kEob];

  const auto lit_lengths = build_code_lengths(lit_freq);
  const auto dist_lengths = build_code_lengths(dist_freq);
  const HuffmanEncoder lit_enc(lit_lengths);
  const HuffmanEncoder dist_enc(dist_lengths);

  BitWriter bits;
  for (const Token& t : tokens) {
    if (t.is_literal()) {
      lit_enc.encode(bits, t.literal);
      continue;
    }
    const std::uint32_t lsym = length_symbol(t.length);
    lit_enc.encode(bits, lsym);
    const LengthCode& lc = kLengthCodes[lsym - 257];
    if (lc.extra > 0) bits.put(t.length - lc.base, lc.extra);
    const std::uint32_t dsym = distance_symbol(t.distance);
    dist_enc.encode(bits, dsym);
    const LengthCode& dc = kDistCodes[dsym];
    if (dc.extra > 0) bits.put(t.distance - dc.base, dc.extra);
  }
  lit_enc.encode(bits, kEob);
  const Bytes body = bits.take();

  const std::size_t packed_tables = (kLitAlphabet + 1) / 2 + (kDistAlphabet + 1) / 2;
  if (body.size() + packed_tables >= data.size()) {
    // Stored block: compression would not pay off.
    header.u8(0);
    header.raw(data);
    return header.take();
  }
  header.u8(1);
  write_lengths_packed(header, lit_lengths);
  write_lengths_packed(header, dist_lengths);
  header.raw(body);
  return header.take();
}

namespace {

struct Header {
  std::uint64_t original_size = 0;
  std::uint32_t checksum = 0;
  std::uint8_t method = 0;
};

Header read_header(ByteReader& in) {
  const auto magic = in.raw(4);
  if (!std::equal(magic.begin(), magic.end(), kMagic)) {
    throw DecodeError("lfz: bad magic");
  }
  Header h;
  h.original_size = in.u64();
  h.checksum = in.u32();
  h.method = in.u8();
  if (h.method > 1) throw DecodeError("lfz: unknown method");
  return h;
}

/// LZ match copy into a flat destination. When the match distance allows,
/// copy 8 bytes per stride: with distance >= 8 every 8-byte load reads bytes
/// strictly before the current write frontier, so the stride sees exactly the
/// bytes the byte-at-a-time reference would — bit-exact, ~8x fewer ops on the
/// long matches smooth imagery produces. distance == 1 is a run (memset);
/// distances 2..7 must replicate byte-by-byte.
void copy_match(std::uint8_t* dst, std::uint32_t distance, std::uint32_t length) {
  const std::uint8_t* src = dst - distance;
  if (distance >= 8) {
    std::uint32_t k = 0;
    for (; k + 8 <= length; k += 8) std::memcpy(dst + k, src + k, 8);
    for (; k < length; ++k) dst[k] = src[k];
  } else if (distance == 1) {
    std::memset(dst, src[0], length);
  } else {
    for (std::uint32_t k = 0; k < length; ++k) dst[k] = src[k];
  }
}

/// Shared decode core: `in` is positioned just past the header, `out` is
/// exactly h.original_size bytes.
void decompress_body(ByteReader& in, std::span<const std::uint8_t> compressed,
                     const Header& h, std::span<std::uint8_t> out) {
  if (h.method == 0) {
    const auto raw = in.raw(h.original_size);
    util::copy_payload(out.data(), raw.data(), raw.size());
  } else {
    const auto lit_lengths = read_lengths_packed(in, kLitAlphabet);
    const auto dist_lengths = read_lengths_packed(in, kDistAlphabet);
    const HuffmanDecoder lit_dec(lit_lengths);
    const HuffmanDecoder dist_dec(dist_lengths);

    BitReader bits(compressed.subspan(in.position()));
    std::size_t pos = 0;
    for (;;) {
      const std::uint32_t sym = lit_dec.decode(bits);
      if (sym == kEob) break;
      if (sym < 256) {
        if (pos >= out.size()) throw DecodeError("lfz: output overrun");
        out[pos++] = static_cast<std::uint8_t>(sym);
        continue;
      }
      if (sym >= 257 + kLengthCodes.size()) throw DecodeError("lfz: bad length symbol");
      const LengthCode& lc = kLengthCodes[sym - 257];
      const std::uint32_t length =
          lc.base + (lc.extra > 0 ? bits.get(lc.extra) : 0);
      const std::uint32_t dsym = dist_dec.decode(bits);
      if (dsym >= kDistCodes.size()) throw DecodeError("lfz: bad distance symbol");
      const LengthCode& dc = kDistCodes[dsym];
      const std::uint32_t distance = dc.base + (dc.extra > 0 ? bits.get(dc.extra) : 0);
      if (distance == 0 || distance > pos) {
        throw DecodeError("lfz: reference before start of stream");
      }
      if (length > out.size() - pos) throw DecodeError("lfz: output overrun");
      copy_match(out.data() + pos, distance, length);
      pos += length;
    }
    if (pos != h.original_size) throw DecodeError("lfz: size mismatch");
  }

  if (adler32(out) != h.checksum) throw DecodeError("lfz: checksum mismatch");
}

}  // namespace

Bytes decompress(std::span<const std::uint8_t> compressed) {
  ByteReader in(compressed);
  const Header h = read_header(in);
  // A corrupt header can claim any original size; bound it (stored blocks by
  // the remaining input, lz77+huffman by the maximum token expansion — a
  // 2-bit match token emits <= 258 bytes, so ~1032x) before allocating, so
  // length overflows throw instead of attempting absurd allocations.
  if (h.method == 0) {
    if (h.original_size > in.remaining()) throw DecodeError("lfz: truncated stored block");
  } else if (h.original_size > (static_cast<std::uint64_t>(in.remaining()) + 16) * 1032) {
    throw DecodeError("lfz: implausible original size");
  }
  Bytes out(h.original_size);
  decompress_body(in, compressed, h, out);
  return out;
}

void decompress_into(std::span<const std::uint8_t> compressed, std::span<std::uint8_t> out) {
  ByteReader in(compressed);
  const Header h = read_header(in);
  if (out.size() != h.original_size) throw DecodeError("lfz: destination size mismatch");
  decompress_body(in, compressed, h, out);
}

std::uint64_t decompressed_size(std::span<const std::uint8_t> compressed) {
  ByteReader in(compressed);
  return read_header(in).original_size;
}

// --- chunked containers --------------------------------------------------------

namespace {

constexpr std::uint8_t kChunkedMagic[4] = {'L', 'F', 'Z', 'C'};
constexpr std::uint8_t kLfz2Magic[4] = {'L', 'F', 'Z', '2'};

bool has_magic(std::span<const std::uint8_t> data, const std::uint8_t (&magic)[4]) {
  return data.size() >= 4 && std::equal(data.begin(), data.begin() + 4, magic);
}

Bytes compress_chunked_as(std::span<const std::uint8_t> data, std::uint64_t chunk_bytes,
                          const CompressOptions& options, ThreadPool* pool,
                          const std::uint8_t (&magic)[4]) {
  if (chunk_bytes == 0) throw std::invalid_argument("compress_chunked: zero chunk size");
  const std::size_t chunks =
      data.empty() ? 0
                   : static_cast<std::size_t>((data.size() + chunk_bytes - 1) / chunk_bytes);
  std::vector<Bytes> compressed(chunks);
  auto one = [&](std::size_t c) {
    const std::uint64_t offset = c * chunk_bytes;
    const std::uint64_t length =
        std::min<std::uint64_t>(chunk_bytes, data.size() - offset);
    compressed[c] = compress(data.subspan(offset, length), options);
  };
  if (pool != nullptr && chunks > 1) {
    pool->parallel_for(0, chunks, one);
  } else {
    for (std::size_t c = 0; c < chunks; ++c) one(c);
  }

  ByteWriter out;
  out.raw(std::span(magic));
  out.u64(data.size());
  out.u32(static_cast<std::uint32_t>(chunks));
  for (const auto& chunk : compressed) out.blob(chunk);
  return out.take();
}

}  // namespace

bool is_chunked(std::span<const std::uint8_t> compressed) {
  return has_magic(compressed, kChunkedMagic) || has_magic(compressed, kLfz2Magic);
}

bool is_lfz2(std::span<const std::uint8_t> compressed) {
  return has_magic(compressed, kLfz2Magic);
}

const char* wire_label(std::span<const std::uint8_t> compressed) {
  if (has_magic(compressed, kLfz2Magic)) return "lfz2";
  if (has_magic(compressed, kChunkedMagic)) return "lfzc";
  if (has_magic(compressed, kMagic)) {
    // Offset 16 is the method byte (after magic, u64 size, u32 checksum).
    if (compressed.size() > 16 && compressed[16] == 0) return "stored";
    return "lfz1";
  }
  return "unknown";
}

Bytes compress_chunked(std::span<const std::uint8_t> data, std::uint64_t chunk_bytes,
                       const CompressOptions& options, ThreadPool* pool) {
  return compress_chunked_as(data, chunk_bytes, options, pool, kChunkedMagic);
}

Bytes compress_lfz2(std::span<const std::uint8_t> data, std::uint64_t chunk_bytes,
                    const CompressOptions& options, ThreadPool* pool) {
  return compress_chunked_as(data, chunk_bytes, options, pool, kLfz2Magic);
}

Bytes decompress_chunked(std::span<const std::uint8_t> compressed, ThreadPool* pool) {
  ByteReader in(compressed);
  const auto magic = in.raw(4);
  if (!std::equal(magic.begin(), magic.end(), kChunkedMagic) &&
      !std::equal(magic.begin(), magic.end(), kLfz2Magic)) {
    throw DecodeError("lfz: bad chunked magic");
  }
  const std::uint64_t original = in.u64();
  const std::uint32_t chunks = in.u32();
  // Every chunk carries at least a length prefix, so the count is bounded by
  // the remaining bytes — reject overflowed directories before reserving.
  if (chunks > in.remaining()) throw DecodeError("lfz: implausible chunk count");

  // Walk the directory once: chunk bodies stay spans over the input (no
  // staging copies), and each chunk's LFZ1 header gives its decoded size, so
  // output offsets are a prefix sum computable before any decode runs.
  struct ChunkRef {
    std::span<const std::uint8_t> body;
    std::uint64_t offset = 0;
    std::uint64_t size = 0;
  };
  std::vector<ChunkRef> refs;
  refs.reserve(chunks);
  std::uint64_t total = 0;
  for (std::uint32_t c = 0; c < chunks; ++c) {
    const std::uint32_t length = in.u32();
    const auto body = in.raw(length);
    const std::uint64_t size = decompressed_size(body);
    // Re-apply decompress()'s expansion bound here: the prefix sum drives the
    // output allocation, so a forged chunk header must throw before it can
    // inflate `total` past anything the body could actually produce.
    if (size > (static_cast<std::uint64_t>(body.size()) + 16) * 1032) {
      throw DecodeError("lfz: implausible original size");
    }
    if (size > original - total) throw DecodeError("lfz: chunked size mismatch");
    refs.push_back({body, total, size});
    total += size;
  }
  if (!in.done()) throw DecodeError("lfz: trailing bytes in chunked container");
  if (total != original) throw DecodeError("lfz: chunked size mismatch");

  // Decode each chunk in place into its output slice — disjoint regions, so
  // the parallel path is race-free. Exceptions from workers must surface on
  // the caller's thread.
  Bytes out(total);
  std::vector<std::exception_ptr> errors(chunks);
  auto one = [&](std::size_t c) {
    try {
      decompress_into(refs[c].body,
                      std::span(out).subspan(refs[c].offset, refs[c].size));
    } catch (...) {
      errors[c] = std::current_exception();
    }
  };
  if (pool != nullptr && chunks > 1) {
    pool->parallel_for(0, chunks, one);
  } else {
    for (std::size_t c = 0; c < chunks; ++c) one(c);
  }
  for (const auto& error : errors) {
    if (error) std::rethrow_exception(error);
  }
  return out;
}

}  // namespace lon::lfz
