// The lfz lossless codec: LZ77 + canonical Huffman in a checksummed
// container.
//
// This plays the role zlib plays in the paper ("the generator also
// compresses each view set with the lossless scheme zlib") — same algorithm
// family (DEFLATE), same ratio regime on ray-cast imagery, real CPU cost on
// decompression. The format is ours and intentionally simpler than RFC 1951:
// one block, code lengths stored as plain 4-bit values, DEFLATE's
// length/distance symbol tables, and an Adler-32 of the original data that
// decompress() verifies.
//
// Layout:
//   "LFZ1"  magic
//   u64     original size
//   u32     adler32(original)
//   u8      method: 0 = stored, 1 = lz77+huffman
//   method 0: original bytes
//   method 1: 286 literal/length code lengths (4 bits each, packed),
//             30 distance code lengths (4 bits each),
//             Huffman-coded token stream terminated by the EOB symbol.
#pragma once

#include <cstdint>
#include <span>

#include "compress/lz77.hpp"
#include "util/bytes.hpp"
#include "util/thread_pool.hpp"

namespace lon::lfz {

struct CompressOptions {
  Lz77Options lz;
  /// Skip entropy coding entirely and emit a stored (method 0) block — for
  /// payloads known to be incompressible (publisher filler) and for the
  /// "stored" row of bench_compression.
  bool store_only = false;
};

/// Compresses data; never fails (falls back to stored blocks when expansion
/// would occur).
Bytes compress(std::span<const std::uint8_t> data, const CompressOptions& options = {});

/// Decompresses an lfz container, verifying magic, sizes and checksum.
/// Throws DecodeError on any corruption.
Bytes decompress(std::span<const std::uint8_t> compressed);

/// In-place variant: decodes directly into `out`, which must be exactly
/// decompressed_size(compressed) bytes — the zero-copy demand path decodes
/// chunks straight into their slice of the pooled destination slab. Stored
/// (method 0) payloads are copied through the payload-copy meter; LZ output
/// is written once, with 8-byte-wide match copies when the distance allows.
/// Throws DecodeError on any corruption; `out` contents are then unspecified.
void decompress_into(std::span<const std::uint8_t> compressed,
                     std::span<std::uint8_t> out);

/// Peeks at the original size without decompressing.
std::uint64_t decompressed_size(std::span<const std::uint8_t> compressed);

// --- chunked containers -------------------------------------------------------
//
// Figure 8 shows view-set decompression becoming the interactive bottleneck
// at 500^2; the paper remarks "alternatively, a more efficient compression
// scheme can be used". The chunked container is the simplest such scheme on
// a multicore client: the input is split into independently-compressed
// chunks ("LFZC" magic, chunk directory, one lfz stream per chunk) so both
// sides can run across a thread pool. Slightly worse ratio (per-chunk
// dictionaries reset), near-linear (de)compression speedup.
//
// "LFZ2" is byte-for-byte the same chunk layout under a distinct magic; the
// magic marks that the *payload* is an inter-view-predicted view-set
// serialization (SerializeMode::kAdaptive in lightfield/viewset.hpp), so the
// wire format is observable per mode while every chunked-container consumer
// (the decompress pipeline, the client) handles both transparently.

/// Compresses in `chunk_bytes` chunks, in parallel when a pool is given.
Bytes compress_chunked(std::span<const std::uint8_t> data,
                       std::uint64_t chunk_bytes = 1 << 20,
                       const CompressOptions& options = {}, ThreadPool* pool = nullptr);

/// Same chunk layout under the "LFZ2" magic (inter-view-predicted payload).
Bytes compress_lfz2(std::span<const std::uint8_t> data, std::uint64_t chunk_bytes = 1 << 20,
                    const CompressOptions& options = {}, ThreadPool* pool = nullptr);

/// Decompresses a chunked container (LFZC or LFZ2), in parallel when a pool
/// is given.
Bytes decompress_chunked(std::span<const std::uint8_t> compressed,
                         ThreadPool* pool = nullptr);

/// True if the bytes carry either chunked-container magic (LFZC or LFZ2).
bool is_chunked(std::span<const std::uint8_t> compressed);

/// True if the bytes carry the LFZ2 magic specifically.
bool is_lfz2(std::span<const std::uint8_t> compressed);

/// Wire-format label for metrics: "stored", "lfz1", "lfzc", "lfz2" or
/// "unknown". Never throws.
const char* wire_label(std::span<const std::uint8_t> compressed);

}  // namespace lon::lfz
