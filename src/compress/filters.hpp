// PNG-style predictor filters for image scanlines.
//
// Ray-cast sample views are smooth, so per-scanline prediction (Sub / Up /
// Average / Paeth) turns most pixels into near-zero residuals that the
// entropy coder then squeezes hard — this is how the 5-7x lossless ratios
// the paper reports on view sets are reached. One filter-type byte precedes
// each row; the type is chosen per row by the minimum-sum-of-absolute-
// residuals heuristic.
//
// Each direction ships two row kernels: a per-byte scalar reference (the
// original formulation, kept for property tests and the bench comparison)
// and the default fast path — per-type loops with the boundary conditionals
// hoisted out and the Paeth select made branch-free, shaped so the compiler
// vectorizes the independent lanes (None/Up both ways, Sub/Average/Paeth on
// the encode side where every input is source data). The two are bit-exact
// by construction and tested so.
#pragma once

#include <cstdint>
#include <span>

#include "util/bytes.hpp"

namespace lon::lfz {

enum class FilterType : std::uint8_t {
  kNone = 0,
  kSub = 1,
  kUp = 2,
  kAverage = 3,
  kPaeth = 4,
};

/// Filters an image of `height` rows of `width` pixels with `bpp` bytes per
/// pixel. Input size must be width*height*bpp; output is
/// height*(1 + width*bpp): each row prefixed by its filter type.
Bytes filter_image(std::span<const std::uint8_t> data, std::size_t width,
                   std::size_t height, std::size_t bpp);

/// Reverses filter_image. Throws DecodeError on bad size or filter type.
Bytes unfilter_image(std::span<const std::uint8_t> filtered, std::size_t width,
                     std::size_t height, std::size_t bpp);

/// Scalar-reference unfilter_image (bench comparison and equivalence tests).
Bytes unfilter_image_scalar(std::span<const std::uint8_t> filtered, std::size_t width,
                            std::size_t height, std::size_t bpp);

// --- row kernels (exposed for tests and bench) -------------------------------

/// Forward-filters one row: out[i] = row[i] - predict(...). `prev` is the
/// *source* row above (empty for the first row); out aliases nothing.
void filter_row(FilterType type, std::span<const std::uint8_t> row,
                std::span<const std::uint8_t> prev, std::size_t bpp,
                std::span<std::uint8_t> out);
void filter_row_scalar(FilterType type, std::span<const std::uint8_t> row,
                       std::span<const std::uint8_t> prev, std::size_t bpp,
                       std::span<std::uint8_t> out);

/// Reconstructs one row in place: row[i] = src[i] + predict(...). `prev` is
/// the *reconstructed* row above (null for the first row).
void unfilter_row(FilterType type, std::span<const std::uint8_t> src,
                  std::uint8_t* row, const std::uint8_t* prev, std::size_t bpp);
void unfilter_row_scalar(FilterType type, std::span<const std::uint8_t> src,
                         std::uint8_t* row, const std::uint8_t* prev,
                         std::size_t bpp);

/// The Paeth predictor (exposed for tests).
std::uint8_t paeth_predict(std::uint8_t left, std::uint8_t up, std::uint8_t upleft);

}  // namespace lon::lfz
