#include "compress/lz77.hpp"

#include <algorithm>
#include <bit>
#include <cstring>

namespace lon::lfz {

namespace {

constexpr std::uint32_t kHashBits = 15;
constexpr std::uint32_t kHashSize = 1u << kHashBits;
constexpr std::int32_t kNil = -1;

inline std::uint32_t hash3(const std::uint8_t* p) {
  // Multiplicative hash of a 3-byte window.
  const std::uint32_t v = static_cast<std::uint32_t>(p[0]) |
                          (static_cast<std::uint32_t>(p[1]) << 8) |
                          (static_cast<std::uint32_t>(p[2]) << 16);
  return (v * 2654435761u) >> (32 - kHashBits);
}

inline std::uint64_t load64(const std::uint8_t* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline std::uint32_t match_length(const std::uint8_t* a, const std::uint8_t* b,
                                  std::uint32_t limit) {
  // Compare eight bytes at a time; the xor of the first mismatching word
  // locates the differing byte with a count-zeros. The match loop dominates
  // compression time on view-set data (long smooth runs), so the wide
  // compare is worth the endian fiddling.
  std::uint32_t n = 0;
  while (n + 8 <= limit) {
    const std::uint64_t diff = load64(a + n) ^ load64(b + n);
    if (diff != 0) {
      const int zeros = std::endian::native == std::endian::little
                            ? std::countr_zero(diff)
                            : std::countl_zero(diff);
      return n + static_cast<std::uint32_t>(zeros >> 3);
    }
    n += 8;
  }
  while (n < limit && a[n] == b[n]) ++n;
  return n;
}

}  // namespace

std::vector<Token> lz77_tokenize(std::span<const std::uint8_t> data,
                                 const Lz77Options& options) {
  std::vector<Token> tokens;
  const std::size_t n = data.size();
  if (n == 0) return tokens;
  tokens.reserve(n / 3);

  std::vector<std::int32_t> head(kHashSize, kNil);
  std::vector<std::int32_t> prev(n, kNil);

  auto insert = [&](std::size_t pos) {
    if (pos + kMinMatch > n) return;
    const std::uint32_t h = hash3(data.data() + pos);
    prev[pos] = head[h];
    head[h] = static_cast<std::int32_t>(pos);
  };

  auto find_match = [&](std::size_t pos) -> Token {
    if (pos + kMinMatch > n) return Token::make_literal(data[pos]);
    const std::uint32_t limit =
        static_cast<std::uint32_t>(std::min<std::size_t>(kMaxMatch, n - pos));
    std::uint32_t best_len = 0;
    std::uint32_t best_dist = 0;
    std::int32_t candidate = head[hash3(data.data() + pos)];
    int chain = options.max_chain;
    while (candidate != kNil && chain-- > 0) {
      const auto cpos = static_cast<std::size_t>(candidate);
      if (pos - cpos > kWindowSize) break;
      const std::uint32_t len = match_length(data.data() + cpos, data.data() + pos, limit);
      if (len > best_len) {
        best_len = len;
        best_dist = static_cast<std::uint32_t>(pos - cpos);
        if (len >= options.good_enough || len == limit) break;
      }
      candidate = prev[cpos];
    }
    if (best_len >= kMinMatch) return Token::make_match(best_len, best_dist);
    return Token::make_literal(data[pos]);
  };

  std::size_t pos = 0;
  while (pos < n) {
    Token token = find_match(pos);
    if (!token.is_literal() && options.lazy && pos + 1 < n) {
      // One-step lazy evaluation: emit a literal instead if the next
      // position has a strictly longer match.
      insert(pos);
      const Token next = find_match(pos + 1);
      if (!next.is_literal() && next.length > token.length) {
        tokens.push_back(Token::make_literal(data[pos]));
        ++pos;
        token = next;
        insert(pos);  // the deferred position was never inserted
      }
      // pos is in the hash chains by now, one way or the other.
      const std::size_t advance = token.is_literal() ? 1 : token.length;
      tokens.push_back(token);
      // Insert the remaining covered positions (the first is already in).
      for (std::size_t k = 1; k < advance; ++k) insert(pos + k);
      pos += advance;
      continue;
    }
    const std::size_t advance = token.is_literal() ? 1 : token.length;
    tokens.push_back(token);
    for (std::size_t k = 0; k < advance; ++k) insert(pos + k);
    pos += advance;
  }
  return tokens;
}

Bytes lz77_expand(std::span<const Token> tokens, std::size_t size_hint) {
  Bytes out;
  out.reserve(size_hint);
  for (const Token& token : tokens) {
    if (token.is_literal()) {
      out.push_back(token.literal);
      continue;
    }
    if (token.distance == 0 || token.distance > out.size()) {
      throw DecodeError("lz77: reference before start of stream");
    }
    if (token.length < kMinMatch || token.length > kMaxMatch) {
      throw DecodeError("lz77: invalid match length");
    }
    std::size_t from = out.size() - token.distance;
    for (std::uint32_t k = 0; k < token.length; ++k) {
      out.push_back(out[from + k]);  // overlapping copies must run byte-wise
    }
  }
  return out;
}

}  // namespace lon::lfz
