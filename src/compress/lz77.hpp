// LZ77 string matching with hash chains (the DEFLATE matcher).
//
// Produces a token stream of literals and (length, distance) references with
// lengths in [3, 258] and distances in [1, 32768]. Greedy matching with a
// one-step lazy evaluation, chain length bounded by the compression level.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/bytes.hpp"

namespace lon::lfz {

inline constexpr std::uint32_t kMinMatch = 3;
inline constexpr std::uint32_t kMaxMatch = 258;
inline constexpr std::uint32_t kWindowSize = 32 * 1024;

struct Token {
  // literal when length == 0, reference otherwise.
  std::uint32_t length = 0;
  std::uint32_t distance = 0;
  std::uint8_t literal = 0;

  [[nodiscard]] bool is_literal() const { return length == 0; }

  static Token make_literal(std::uint8_t byte) { return Token{0, 0, byte}; }
  static Token make_match(std::uint32_t length, std::uint32_t distance) {
    return Token{length, distance, 0};
  }
};

struct Lz77Options {
  /// Maximum hash-chain positions examined per match attempt. Higher finds
  /// better matches but costs time (zlib levels span roughly 4..4096).
  int max_chain = 128;
  /// Stop searching early once a match at least this long is found.
  std::uint32_t good_enough = 128;
  /// Enable one-step lazy matching (defer a match if the next position
  /// yields a strictly longer one).
  bool lazy = true;
};

/// Tokenizes `data`. The output always reproduces `data` exactly when
/// expanded.
std::vector<Token> lz77_tokenize(std::span<const std::uint8_t> data,
                                 const Lz77Options& options = {});

/// Expands a token stream produced by lz77_tokenize. Throws DecodeError on
/// references reaching before the start of output.
Bytes lz77_expand(std::span<const Token> tokens, std::size_t size_hint = 0);

}  // namespace lon::lfz
