// Canonical Huffman coding with a bounded maximum code length.
//
// Code lengths are derived from symbol frequencies; if the optimal tree
// exceeds kMaxCodeLength the frequencies are repeatedly halved (preserving
// nonzero-ness) until it fits — a standard, slightly suboptimal but simple
// length-limiting technique. Codes are assigned canonically (shorter codes
// first, ties by symbol index), so only the length array needs to be stored
// in the compressed stream.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "compress/bitio.hpp"

namespace lon::lfz {

inline constexpr int kMaxCodeLength = 15;

/// Computes canonical code lengths (0 = symbol unused) for the given
/// frequencies. At most kMaxCodeLength. If only one symbol has nonzero
/// frequency it is assigned length 1.
std::vector<std::uint8_t> build_code_lengths(std::span<const std::uint64_t> freqs);

/// Canonical encoder table: code bits per symbol, derived from lengths.
class HuffmanEncoder {
 public:
  explicit HuffmanEncoder(std::span<const std::uint8_t> lengths);

  void encode(BitWriter& out, std::uint32_t symbol) const {
    out.put_code(codes_[symbol], lengths_[symbol]);
  }

  [[nodiscard]] int length_of(std::uint32_t symbol) const { return lengths_[symbol]; }

 private:
  std::vector<std::uint32_t> codes_;
  std::vector<std::uint8_t> lengths_;
};

/// Canonical decoder: walks the code length table bit by bit using the
/// first-code/offset arrays (the classic zlib "huft"-style decode without
/// lookup tables — simple and adequately fast).
class HuffmanDecoder {
 public:
  explicit HuffmanDecoder(std::span<const std::uint8_t> lengths);

  std::uint32_t decode(BitReader& in) const;

  [[nodiscard]] bool empty() const { return symbol_count_ == 0; }

 private:
  // For each length l: first_code_[l] is the smallest canonical code of that
  // length, offset_[l] the index into sorted_symbols_ of its first symbol.
  std::uint32_t first_code_[kMaxCodeLength + 1] = {};
  std::uint32_t count_[kMaxCodeLength + 1] = {};
  std::uint32_t offset_[kMaxCodeLength + 1] = {};
  std::vector<std::uint32_t> sorted_symbols_;
  std::size_t symbol_count_ = 0;
};

}  // namespace lon::lfz
