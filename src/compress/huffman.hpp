// Canonical Huffman coding with a bounded maximum code length.
//
// Code lengths are derived from symbol frequencies; if the optimal tree
// exceeds kMaxCodeLength the frequencies are repeatedly halved (preserving
// nonzero-ness) until it fits — a standard, slightly suboptimal but simple
// length-limiting technique. Codes are assigned canonically (shorter codes
// first, ties by symbol index), so only the length array needs to be stored
// in the compressed stream.
//
// Decoding is table-driven: a (1 << kRootBits)-entry root table maps the
// next kRootBits of the stream straight to (symbol, length) for codes that
// fit, and to a spill subtable for the rare longer codes — one peek and one
// consume per symbol instead of a bit-at-a-time tree walk. The bit-at-a-time
// decoder is kept as decode_bitwise(): it is the reference the table path is
// tested bit-exact against, and the baseline bench_compression measures the
// table speedup over.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "compress/bitio.hpp"

namespace lon::lfz {

inline constexpr int kMaxCodeLength = 15;
/// Codes at most this long decode from the root table in one lookup.
inline constexpr int kRootBits = 10;

/// Computes canonical code lengths (0 = symbol unused) for the given
/// frequencies. At most kMaxCodeLength. If only one symbol has nonzero
/// frequency it is assigned length 1.
std::vector<std::uint8_t> build_code_lengths(std::span<const std::uint64_t> freqs);

/// Canonical encoder table: code bits per symbol, derived from lengths.
/// Codes are stored pre-reversed so each symbol is one BitWriter::put.
class HuffmanEncoder {
 public:
  explicit HuffmanEncoder(std::span<const std::uint8_t> lengths);

  void encode(BitWriter& out, std::uint32_t symbol) const {
    out.put(reversed_[symbol], lengths_[symbol]);
  }

  [[nodiscard]] int length_of(std::uint32_t symbol) const { return lengths_[symbol]; }

 private:
  std::vector<std::uint32_t> reversed_;  // canonical code, bit-reversed
  std::vector<std::uint8_t> lengths_;
};

/// Canonical decoder. decode() is the table-driven fast path;
/// decode_bitwise() the classic first-code/offset walk. Both reject the same
/// invalid streams with DecodeError; the constructor additionally rejects
/// over-subscribed length sets (which a corrupt container can smuggle in and
/// which would otherwise overflow the tables).
class HuffmanDecoder {
 public:
  explicit HuffmanDecoder(std::span<const std::uint8_t> lengths);

  /// Table-driven decode: peek up to kMaxCodeLength bits, one or two table
  /// lookups, consume the code's length.
  std::uint32_t decode(BitReader& in) const {
    if (symbol_count_ == 0) throw DecodeError("huffman: decode with empty table");
    std::uint32_t entry = root_[in.peek(kRootBits)];
    if ((entry & kSubtableFlag) != 0) {
      entry = sub_[(entry & 0xffffu) + (in.peek(kMaxCodeLength) >> kRootBits)];
    }
    const int length = static_cast<int>((entry >> 16) & 0x1f);
    if (length == 0) throw DecodeError("huffman: invalid code in stream");
    in.consume(length);
    return entry & 0xffffu;
  }

  /// Reference decoder: accumulates the code one bit at a time against the
  /// first-code/offset arrays (the zlib "huft"-style decode).
  std::uint32_t decode_bitwise(BitReader& in) const;

  [[nodiscard]] bool empty() const { return symbol_count_ == 0; }

 private:
  // Table entry layout: bits 0..15 symbol (or spill base), bits 16..20 code
  // length, bit 31 = entry links to sub_. 0 = invalid code.
  static constexpr std::uint32_t kSubtableFlag = 0x8000'0000u;

  // For each length l: first_code_[l] is the smallest canonical code of that
  // length, offset_[l] the index into sorted_symbols_ of its first symbol.
  std::uint32_t first_code_[kMaxCodeLength + 1] = {};
  std::uint32_t count_[kMaxCodeLength + 1] = {};
  std::uint32_t offset_[kMaxCodeLength + 1] = {};
  std::vector<std::uint32_t> sorted_symbols_;
  std::size_t symbol_count_ = 0;

  std::vector<std::uint32_t> root_;  // 1 << kRootBits entries
  std::vector<std::uint32_t> sub_;   // fixed-stride spill blocks for long codes
};

}  // namespace lon::lfz
