#include "compress/filters.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

namespace lon::lfz {

std::uint8_t paeth_predict(std::uint8_t left, std::uint8_t up, std::uint8_t upleft) {
  const int p = static_cast<int>(left) + up - upleft;
  const int pa = std::abs(p - left);
  const int pb = std::abs(p - up);
  const int pc = std::abs(p - upleft);
  if (pa <= pb && pa <= pc) return left;
  if (pb <= pc) return up;
  return upleft;
}

namespace {

/// paeth_predict with the selects expressed as conditional moves — the same
/// comparison order and tie-breaks, no branches for the vectorizer / OoO core
/// to mispredict on noisy residual data.
inline std::uint8_t paeth_branchless(std::uint8_t left, std::uint8_t up,
                                     std::uint8_t upleft) {
  const int p = static_cast<int>(left) + up - upleft;
  const int pa = std::abs(p - left);
  const int pb = std::abs(p - up);
  const int pc = std::abs(p - upleft);
  const std::uint8_t bc = pb <= pc ? up : upleft;
  return (pa <= pb && pa <= pc) ? left : bc;
}

}  // namespace

// --- scalar reference kernels ------------------------------------------------

void filter_row_scalar(FilterType type, std::span<const std::uint8_t> row,
                       std::span<const std::uint8_t> prev, std::size_t bpp,
                       std::span<std::uint8_t> out) {
  const std::size_t n = row.size();
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint8_t left = i >= bpp ? row[i - bpp] : 0;
    const std::uint8_t up = prev.empty() ? 0 : prev[i];
    const std::uint8_t upleft = (!prev.empty() && i >= bpp) ? prev[i - bpp] : 0;
    std::uint8_t prediction = 0;
    switch (type) {
      case FilterType::kNone:
        prediction = 0;
        break;
      case FilterType::kSub:
        prediction = left;
        break;
      case FilterType::kUp:
        prediction = up;
        break;
      case FilterType::kAverage:
        prediction = static_cast<std::uint8_t>((left + up) / 2);
        break;
      case FilterType::kPaeth:
        prediction = paeth_predict(left, up, upleft);
        break;
    }
    out[i] = static_cast<std::uint8_t>(row[i] - prediction);
  }
}

void unfilter_row_scalar(FilterType type, std::span<const std::uint8_t> src,
                         std::uint8_t* row, const std::uint8_t* prev,
                         std::size_t bpp) {
  const std::size_t n = src.size();
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint8_t left = i >= bpp ? row[i - bpp] : 0;
    const std::uint8_t up = prev != nullptr ? prev[i] : 0;
    const std::uint8_t upleft = (prev != nullptr && i >= bpp) ? prev[i - bpp] : 0;
    std::uint8_t prediction = 0;
    switch (type) {
      case FilterType::kNone:
        prediction = 0;
        break;
      case FilterType::kSub:
        prediction = left;
        break;
      case FilterType::kUp:
        prediction = up;
        break;
      case FilterType::kAverage:
        prediction = static_cast<std::uint8_t>((left + up) / 2);
        break;
      case FilterType::kPaeth:
        prediction = paeth_predict(left, up, upleft);
        break;
    }
    row[i] = static_cast<std::uint8_t>(src[i] + prediction);
  }
}

// --- fast kernels ------------------------------------------------------------

// Forward filtering reads only source data, so every type is a loop over
// independent elements once the i < bpp boundary is peeled — ideal
// auto-vectorization targets.
void filter_row(FilterType type, std::span<const std::uint8_t> row,
                std::span<const std::uint8_t> prev, std::size_t bpp,
                std::span<std::uint8_t> out) {
  const std::size_t n = row.size();
  const std::size_t head = std::min(bpp, n);
  const std::uint8_t* r = row.data();
  const std::uint8_t* p = prev.empty() ? nullptr : prev.data();
  std::uint8_t* o = out.data();
  // First rows have no `up`/`upleft`: Up degenerates to None and Paeth's
  // first-column/first-row cases collapse (paeth(left,0,0) == left,
  // paeth(0,up,0) == up), mirroring the scalar reference exactly.
  switch (type) {
    case FilterType::kNone:
      if (n > 0) std::memcpy(o, r, n);
      break;
    case FilterType::kSub:
      if (head > 0) std::memcpy(o, r, head);
      for (std::size_t i = bpp; i < n; ++i) {
        o[i] = static_cast<std::uint8_t>(r[i] - r[i - bpp]);
      }
      break;
    case FilterType::kUp:
      if (p == nullptr) {
        if (n > 0) std::memcpy(o, r, n);
      } else {
        for (std::size_t i = 0; i < n; ++i) {
          o[i] = static_cast<std::uint8_t>(r[i] - p[i]);
        }
      }
      break;
    case FilterType::kAverage:
      if (p == nullptr) {
        if (head > 0) std::memcpy(o, r, head);
        for (std::size_t i = bpp; i < n; ++i) {
          o[i] = static_cast<std::uint8_t>(r[i] - r[i - bpp] / 2);
        }
      } else {
        for (std::size_t i = 0; i < head; ++i) {
          o[i] = static_cast<std::uint8_t>(r[i] - p[i] / 2);
        }
        for (std::size_t i = bpp; i < n; ++i) {
          o[i] = static_cast<std::uint8_t>(r[i] - (r[i - bpp] + p[i]) / 2);
        }
      }
      break;
    case FilterType::kPaeth:
      if (p == nullptr) {
        // paeth(left, 0, 0) == left: identical to Sub.
        if (head > 0) std::memcpy(o, r, head);
        for (std::size_t i = bpp; i < n; ++i) {
          o[i] = static_cast<std::uint8_t>(r[i] - r[i - bpp]);
        }
      } else {
        // paeth(0, up, 0) == up for the first pixel.
        for (std::size_t i = 0; i < head; ++i) {
          o[i] = static_cast<std::uint8_t>(r[i] - p[i]);
        }
        for (std::size_t i = bpp; i < n; ++i) {
          o[i] = static_cast<std::uint8_t>(
              r[i] - paeth_branchless(r[i - bpp], p[i], p[i - bpp]));
        }
      }
      break;
  }
}

// Reconstruction carries a dependency on the bytes just written for
// Sub/Average/Paeth, so those stay serial but with the boundary tests peeled
// and the Paeth select branch-free; None and Up have no carried dependency
// and run as memcpy / one wide add loop over the completed previous row.
void unfilter_row(FilterType type, std::span<const std::uint8_t> src,
                  std::uint8_t* row, const std::uint8_t* prev, std::size_t bpp) {
  const std::size_t n = src.size();
  const std::size_t head = std::min(bpp, n);
  const std::uint8_t* s = src.data();
  switch (type) {
    case FilterType::kNone:
      if (n > 0) std::memcpy(row, s, n);
      break;
    case FilterType::kSub:
      if (head > 0) std::memcpy(row, s, head);
      for (std::size_t i = bpp; i < n; ++i) {
        row[i] = static_cast<std::uint8_t>(s[i] + row[i - bpp]);
      }
      break;
    case FilterType::kUp:
      if (prev == nullptr) {
        if (n > 0) std::memcpy(row, s, n);
      } else {
        for (std::size_t i = 0; i < n; ++i) {
          row[i] = static_cast<std::uint8_t>(s[i] + prev[i]);
        }
      }
      break;
    case FilterType::kAverage:
      if (prev == nullptr) {
        if (head > 0) std::memcpy(row, s, head);
        for (std::size_t i = bpp; i < n; ++i) {
          row[i] = static_cast<std::uint8_t>(s[i] + row[i - bpp] / 2);
        }
      } else {
        for (std::size_t i = 0; i < head; ++i) {
          row[i] = static_cast<std::uint8_t>(s[i] + prev[i] / 2);
        }
        for (std::size_t i = bpp; i < n; ++i) {
          row[i] = static_cast<std::uint8_t>(s[i] + (row[i - bpp] + prev[i]) / 2);
        }
      }
      break;
    case FilterType::kPaeth:
      if (prev == nullptr) {
        if (head > 0) std::memcpy(row, s, head);
        for (std::size_t i = bpp; i < n; ++i) {
          row[i] = static_cast<std::uint8_t>(s[i] + row[i - bpp]);
        }
      } else {
        for (std::size_t i = 0; i < head; ++i) {
          row[i] = static_cast<std::uint8_t>(s[i] + prev[i]);
        }
        for (std::size_t i = bpp; i < n; ++i) {
          row[i] = static_cast<std::uint8_t>(
              s[i] + paeth_branchless(row[i - bpp], prev[i], prev[i - bpp]));
        }
      }
      break;
  }
}

namespace {

/// Sum of "signed magnitudes" — the PNG heuristic for picking a filter.
std::uint64_t residual_cost(std::span<const std::uint8_t> residuals) {
  std::uint64_t sum = 0;
  for (const std::uint8_t r : residuals) {
    sum += r < 128 ? r : 256 - r;
  }
  return sum;
}

template <typename UnfilterRow>
Bytes unfilter_image_with(std::span<const std::uint8_t> filtered, std::size_t width,
                          std::size_t height, std::size_t bpp, UnfilterRow&& one_row) {
  const std::size_t stride = width * bpp;
  if (filtered.size() != height * (stride + 1)) {
    throw DecodeError("unfilter_image: size mismatch");
  }
  Bytes out(stride * height);
  for (std::size_t y = 0; y < height; ++y) {
    const std::uint8_t type_byte = filtered[y * (stride + 1)];
    if (type_byte > 4) throw DecodeError("unfilter_image: bad filter type");
    const auto type = static_cast<FilterType>(type_byte);
    const auto src = filtered.subspan(y * (stride + 1) + 1, stride);
    std::uint8_t* row = out.data() + y * stride;
    const std::uint8_t* prev = y > 0 ? out.data() + (y - 1) * stride : nullptr;
    one_row(type, src, row, prev, bpp);
  }
  return out;
}

}  // namespace

Bytes filter_image(std::span<const std::uint8_t> data, std::size_t width,
                   std::size_t height, std::size_t bpp) {
  const std::size_t stride = width * bpp;
  if (data.size() != stride * height) {
    throw std::invalid_argument("filter_image: size mismatch");
  }
  Bytes out;
  out.reserve(height * (stride + 1));
  std::array<Bytes, 5> candidates;
  for (auto& c : candidates) c.resize(stride);

  for (std::size_t y = 0; y < height; ++y) {
    const auto row = data.subspan(y * stride, stride);
    const auto prev = y > 0 ? data.subspan((y - 1) * stride, stride)
                            : std::span<const std::uint8_t>{};
    FilterType best = FilterType::kNone;
    std::uint64_t best_cost = ~0ull;
    for (int t = 0; t < 5; ++t) {
      filter_row(static_cast<FilterType>(t), row, prev, bpp, candidates[t]);
      const std::uint64_t cost = residual_cost(candidates[t]);
      if (cost < best_cost) {
        best_cost = cost;
        best = static_cast<FilterType>(t);
      }
    }
    out.push_back(static_cast<std::uint8_t>(best));
    const Bytes& chosen = candidates[static_cast<int>(best)];
    out.insert(out.end(), chosen.begin(), chosen.end());
  }
  return out;
}

Bytes unfilter_image(std::span<const std::uint8_t> filtered, std::size_t width,
                     std::size_t height, std::size_t bpp) {
  return unfilter_image_with(filtered, width, height, bpp,
                             [](FilterType type, std::span<const std::uint8_t> src,
                                std::uint8_t* row, const std::uint8_t* prev,
                                std::size_t bpp_) {
                               unfilter_row(type, src, row, prev, bpp_);
                             });
}

Bytes unfilter_image_scalar(std::span<const std::uint8_t> filtered, std::size_t width,
                            std::size_t height, std::size_t bpp) {
  return unfilter_image_with(filtered, width, height, bpp,
                             [](FilterType type, std::span<const std::uint8_t> src,
                                std::uint8_t* row, const std::uint8_t* prev,
                                std::size_t bpp_) {
                               unfilter_row_scalar(type, src, row, prev, bpp_);
                             });
}

}  // namespace lon::lfz
