#include "compress/filters.hpp"

#include <array>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

namespace lon::lfz {

std::uint8_t paeth_predict(std::uint8_t left, std::uint8_t up, std::uint8_t upleft) {
  const int p = static_cast<int>(left) + up - upleft;
  const int pa = std::abs(p - left);
  const int pb = std::abs(p - up);
  const int pc = std::abs(p - upleft);
  if (pa <= pb && pa <= pc) return left;
  if (pb <= pc) return up;
  return upleft;
}

namespace {

/// Computes the residual row for one filter type.
void filter_row(FilterType type, std::span<const std::uint8_t> row,
                std::span<const std::uint8_t> prev, std::size_t bpp,
                std::span<std::uint8_t> out) {
  const std::size_t n = row.size();
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint8_t left = i >= bpp ? row[i - bpp] : 0;
    const std::uint8_t up = prev.empty() ? 0 : prev[i];
    const std::uint8_t upleft = (!prev.empty() && i >= bpp) ? prev[i - bpp] : 0;
    std::uint8_t prediction = 0;
    switch (type) {
      case FilterType::kNone:
        prediction = 0;
        break;
      case FilterType::kSub:
        prediction = left;
        break;
      case FilterType::kUp:
        prediction = up;
        break;
      case FilterType::kAverage:
        prediction = static_cast<std::uint8_t>((left + up) / 2);
        break;
      case FilterType::kPaeth:
        prediction = paeth_predict(left, up, upleft);
        break;
    }
    out[i] = static_cast<std::uint8_t>(row[i] - prediction);
  }
}

/// Sum of "signed magnitudes" — the PNG heuristic for picking a filter.
std::uint64_t residual_cost(std::span<const std::uint8_t> residuals) {
  std::uint64_t sum = 0;
  for (const std::uint8_t r : residuals) {
    sum += r < 128 ? r : 256 - r;
  }
  return sum;
}

}  // namespace

Bytes filter_image(std::span<const std::uint8_t> data, std::size_t width,
                   std::size_t height, std::size_t bpp) {
  const std::size_t stride = width * bpp;
  if (data.size() != stride * height) {
    throw std::invalid_argument("filter_image: size mismatch");
  }
  Bytes out;
  out.reserve(height * (stride + 1));
  std::array<Bytes, 5> candidates;
  for (auto& c : candidates) c.resize(stride);

  for (std::size_t y = 0; y < height; ++y) {
    const auto row = data.subspan(y * stride, stride);
    const auto prev = y > 0 ? data.subspan((y - 1) * stride, stride)
                            : std::span<const std::uint8_t>{};
    FilterType best = FilterType::kNone;
    std::uint64_t best_cost = ~0ull;
    for (int t = 0; t < 5; ++t) {
      filter_row(static_cast<FilterType>(t), row, prev, bpp, candidates[t]);
      const std::uint64_t cost = residual_cost(candidates[t]);
      if (cost < best_cost) {
        best_cost = cost;
        best = static_cast<FilterType>(t);
      }
    }
    out.push_back(static_cast<std::uint8_t>(best));
    const Bytes& chosen = candidates[static_cast<int>(best)];
    out.insert(out.end(), chosen.begin(), chosen.end());
  }
  return out;
}

Bytes unfilter_image(std::span<const std::uint8_t> filtered, std::size_t width,
                     std::size_t height, std::size_t bpp) {
  const std::size_t stride = width * bpp;
  if (filtered.size() != height * (stride + 1)) {
    throw DecodeError("unfilter_image: size mismatch");
  }
  Bytes out(stride * height);
  for (std::size_t y = 0; y < height; ++y) {
    const std::uint8_t type_byte = filtered[y * (stride + 1)];
    if (type_byte > 4) throw DecodeError("unfilter_image: bad filter type");
    const auto type = static_cast<FilterType>(type_byte);
    const auto src = filtered.subspan(y * (stride + 1) + 1, stride);
    std::uint8_t* row = out.data() + y * stride;
    const std::uint8_t* prev = y > 0 ? out.data() + (y - 1) * stride : nullptr;
    for (std::size_t i = 0; i < stride; ++i) {
      const std::uint8_t left = i >= bpp ? row[i - bpp] : 0;
      const std::uint8_t up = prev != nullptr ? prev[i] : 0;
      const std::uint8_t upleft = (prev != nullptr && i >= bpp) ? prev[i - bpp] : 0;
      std::uint8_t prediction = 0;
      switch (type) {
        case FilterType::kNone:
          prediction = 0;
          break;
        case FilterType::kSub:
          prediction = left;
          break;
        case FilterType::kUp:
          prediction = up;
          break;
        case FilterType::kAverage:
          prediction = static_cast<std::uint8_t>((left + up) / 2);
          break;
        case FilterType::kPaeth:
          prediction = paeth_predict(left, up, upleft);
          break;
      }
      row[i] = static_cast<std::uint8_t>(src[i] + prediction);
    }
  }
  return out;
}

}  // namespace lon::lfz
