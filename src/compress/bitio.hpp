// LSB-first bit stream I/O (the DEFLATE bit order).
//
// BitWriter packs bits into bytes starting at the least significant bit;
// BitReader consumes them in the same order. Huffman codes are written
// most-significant-code-bit first via put_huff/get-by-length, matching the
// canonical-code decoder in huffman.hpp.
#pragma once

#include <cstdint>
#include <span>

#include "util/bytes.hpp"

namespace lon::lfz {

class BitWriter {
 public:
  /// Writes the low `count` bits of `value`, LSB first.
  void put(std::uint32_t value, int count) {
    acc_ |= static_cast<std::uint64_t>(value & ((1u << count) - 1)) << filled_;
    filled_ += count;
    while (filled_ >= 8) {
      out_.push_back(static_cast<std::uint8_t>(acc_));
      acc_ >>= 8;
      filled_ -= 8;
    }
  }

  /// Writes a Huffman code of `length` bits, most significant bit first
  /// (so the canonical decoder can accumulate bit-by-bit).
  void put_code(std::uint32_t code, int length) {
    for (int i = length - 1; i >= 0; --i) put((code >> i) & 1u, 1);
  }

  /// Flushes any partial byte (zero-padded).
  void align() {
    if (filled_ > 0) {
      out_.push_back(static_cast<std::uint8_t>(acc_));
      acc_ = 0;
      filled_ = 0;
    }
  }

  [[nodiscard]] Bytes take() {
    align();
    return std::move(out_);
  }

  [[nodiscard]] std::size_t bit_count() const { return out_.size() * 8 + filled_; }

 private:
  Bytes out_;
  std::uint64_t acc_ = 0;
  int filled_ = 0;
};

class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> data) : data_(data) {}

  /// Reads `count` bits, LSB first.
  std::uint32_t get(int count) {
    while (filled_ < count) {
      if (pos_ >= data_.size()) throw DecodeError("lfz: bit stream truncated");
      acc_ |= static_cast<std::uint64_t>(data_[pos_++]) << filled_;
      filled_ += 8;
    }
    const auto value = static_cast<std::uint32_t>(acc_ & ((1ull << count) - 1));
    acc_ >>= count;
    filled_ -= count;
    return value;
  }

  /// Reads a single bit.
  std::uint32_t bit() { return get(1); }

  /// Discards bits up to the next byte boundary.
  void align() {
    const int drop = filled_ % 8;
    acc_ >>= drop;
    filled_ -= drop;
  }

  [[nodiscard]] std::size_t bytes_consumed() const { return pos_ - filled_ / 8; }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  std::uint64_t acc_ = 0;
  int filled_ = 0;
};

}  // namespace lon::lfz
