// LSB-first bit stream I/O (the DEFLATE bit order).
//
// BitWriter packs bits into bytes starting at the least significant bit;
// BitReader consumes them in the same order. Huffman codes are written
// most-significant-code-bit first via put_code/get-by-length, matching the
// canonical-code decoder in huffman.hpp.
//
// BitReader keeps a 64-bit accumulator that refill() tops up eight input
// bytes at a time, so the table-driven Huffman decoder can peek a whole code
// (up to kMaxCodeLength bits) and consume it in one step instead of pulling
// bits one at a time. peek() zero-pads past the end of the stream; consume()
// is where truncation is detected, so a code that genuinely extends past the
// last input bit still throws DecodeError exactly like the bit-at-a-time
// reader did.
#pragma once

#include <cstdint>
#include <span>

#include "util/bytes.hpp"

namespace lon::lfz {

/// Reverses the low `count` bits of `value` (bit 0 <-> bit count-1).
constexpr std::uint32_t reverse_bits(std::uint32_t value, int count) {
  std::uint32_t out = 0;
  for (int i = 0; i < count; ++i) {
    out = (out << 1) | ((value >> i) & 1u);
  }
  return out;
}

class BitWriter {
 public:
  /// Writes the low `count` bits of `value`, LSB first. count in [0, 32].
  void put(std::uint32_t value, int count) {
    acc_ |= (static_cast<std::uint64_t>(value) & ((1ull << count) - 1)) << filled_;
    filled_ += count;
    while (filled_ >= 8) {
      out_.push_back(static_cast<std::uint8_t>(acc_));
      acc_ >>= 8;
      filled_ -= 8;
    }
  }

  /// Writes a Huffman code of `length` bits, most significant bit first
  /// (so the canonical decoder can accumulate bit-by-bit). Equivalent to one
  /// put() of the bit-reversed code; encoders that pre-reverse their code
  /// tables (HuffmanEncoder does) call put() directly.
  void put_code(std::uint32_t code, int length) {
    put(reverse_bits(code, length), length);
  }

  /// Flushes any partial byte (zero-padded).
  void align() {
    if (filled_ > 0) {
      out_.push_back(static_cast<std::uint8_t>(acc_));
      acc_ = 0;
      filled_ = 0;
    }
  }

  [[nodiscard]] Bytes take() {
    align();
    return std::move(out_);
  }

  [[nodiscard]] std::size_t bit_count() const { return out_.size() * 8 + filled_; }

 private:
  Bytes out_;
  std::uint64_t acc_ = 0;
  int filled_ = 0;
};

class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> data) : data_(data) {}

  /// Tops up the accumulator from the input. After refill() at least
  /// min(56, bits remaining in the stream) bits are buffered. Idempotent and
  /// cheap; decode loops call it once per symbol.
  void refill() {
    if (filled_ > 56) return;
    if (pos_ + 8 <= data_.size()) {
      // Bulk path: assemble the next eight bytes little-endian (the compiler
      // lowers the loop to a single unaligned load on LE hosts), keep only
      // the bytes that fit the accumulator, and advance past exactly those.
      const std::uint8_t* p = data_.data() + pos_;
      std::uint64_t word = 0;
      for (int i = 0; i < 8; ++i) {
        word |= static_cast<std::uint64_t>(p[i]) << (8 * i);
      }
      const int take = (63 - filled_) >> 3;  // whole bytes that fit: <= 7
      word &= (1ull << (take * 8)) - 1;
      acc_ |= word << filled_;
      pos_ += static_cast<std::size_t>(take);
      filled_ += take * 8;
      return;
    }
    while (filled_ <= 56 && pos_ < data_.size()) {
      acc_ |= static_cast<std::uint64_t>(data_[pos_++]) << filled_;
      filled_ += 8;
    }
  }

  /// Returns the next `count` buffered bits without consuming them, LSB
  /// first; bits past the end of the stream read as zero. count <= 56.
  [[nodiscard]] std::uint32_t peek(int count) {
    refill();
    return static_cast<std::uint32_t>(acc_ & ((1ull << count) - 1));
  }

  /// Discards `count` bits; throws if the stream does not hold that many.
  void consume(int count) {
    if (count > filled_) throw DecodeError("lfz: bit stream truncated");
    acc_ >>= count;
    filled_ -= count;
  }

  /// Reads `count` bits, LSB first. count in [1, 56].
  std::uint32_t get(int count) {
    refill();
    if (count > filled_) throw DecodeError("lfz: bit stream truncated");
    const auto value = static_cast<std::uint32_t>(acc_ & ((1ull << count) - 1));
    acc_ >>= count;
    filled_ -= count;
    return value;
  }

  /// Reads a single bit.
  std::uint32_t bit() { return get(1); }

  /// Discards bits up to the next byte boundary.
  void align() {
    const int drop = filled_ % 8;
    acc_ >>= drop;
    filled_ -= drop;
  }

  [[nodiscard]] std::size_t bytes_consumed() const { return pos_ - filled_ / 8; }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  std::uint64_t acc_ = 0;
  int filled_ = 0;
};

}  // namespace lon::lfz
