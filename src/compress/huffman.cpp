#include "compress/huffman.hpp"

#include <algorithm>
#include <numeric>
#include <queue>
#include <stdexcept>

namespace lon::lfz {

namespace {

/// Builds optimal code lengths for the given (all nonzero) frequency list
/// via the standard two-queue Huffman construction. Returns the depth of
/// each input symbol. Input size >= 2.
std::vector<int> huffman_depths(const std::vector<std::uint64_t>& freqs) {
  struct Node {
    std::uint64_t weight;
    int left = -1;   // node indices; -1 means leaf
    int right = -1;
  };
  std::vector<Node> nodes;
  nodes.reserve(freqs.size() * 2);
  using Item = std::pair<std::uint64_t, int>;  // (weight, node index)
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  for (std::size_t i = 0; i < freqs.size(); ++i) {
    nodes.push_back({freqs[i], -1, -1});
    heap.emplace(freqs[i], static_cast<int>(i));
  }
  while (heap.size() > 1) {
    const auto [wa, a] = heap.top();
    heap.pop();
    const auto [wb, b] = heap.top();
    heap.pop();
    nodes.push_back({wa + wb, a, b});
    heap.emplace(wa + wb, static_cast<int>(nodes.size() - 1));
  }
  // Depth-first walk to assign leaf depths.
  std::vector<int> depth(freqs.size(), 0);
  std::vector<std::pair<int, int>> stack;  // (node, depth)
  stack.emplace_back(heap.top().second, 0);
  while (!stack.empty()) {
    const auto [index, d] = stack.back();
    stack.pop_back();
    const Node& node = nodes[static_cast<std::size_t>(index)];
    if (node.left < 0) {
      depth[static_cast<std::size_t>(index)] = std::max(d, 1);
    } else {
      stack.emplace_back(node.left, d + 1);
      stack.emplace_back(node.right, d + 1);
    }
  }
  return depth;
}

}  // namespace

std::vector<std::uint8_t> build_code_lengths(std::span<const std::uint64_t> freqs) {
  std::vector<std::uint8_t> lengths(freqs.size(), 0);
  // Collect used symbols.
  std::vector<std::size_t> used;
  for (std::size_t i = 0; i < freqs.size(); ++i) {
    if (freqs[i] > 0) used.push_back(i);
  }
  if (used.empty()) return lengths;
  if (used.size() == 1) {
    lengths[used[0]] = 1;
    return lengths;
  }

  std::vector<std::uint64_t> working;
  working.reserve(used.size());
  for (const std::size_t i : used) working.push_back(freqs[i]);

  for (;;) {
    const std::vector<int> depths = huffman_depths(working);
    const int max_depth = *std::max_element(depths.begin(), depths.end());
    if (max_depth <= kMaxCodeLength) {
      for (std::size_t k = 0; k < used.size(); ++k) {
        lengths[used[k]] = static_cast<std::uint8_t>(depths[k]);
      }
      return lengths;
    }
    // Flatten the distribution and retry; nonzero frequencies stay nonzero.
    for (auto& f : working) f = (f + 1) / 2;
  }
}

HuffmanEncoder::HuffmanEncoder(std::span<const std::uint8_t> lengths)
    : reversed_(lengths.size(), 0), lengths_(lengths.begin(), lengths.end()) {
  // Canonical code assignment: count codes per length, then compute the
  // first code of each length.
  std::uint32_t count[kMaxCodeLength + 1] = {};
  for (const std::uint8_t l : lengths_) {
    if (l > kMaxCodeLength) throw std::invalid_argument("huffman: length too long");
    if (l > 0) ++count[l];
  }
  std::uint32_t next[kMaxCodeLength + 1] = {};
  std::uint32_t code = 0;
  for (int l = 1; l <= kMaxCodeLength; ++l) {
    code = (code + count[l - 1]) << 1;
    next[l] = code;
  }
  for (std::size_t i = 0; i < lengths_.size(); ++i) {
    if (lengths_[i] > 0) reversed_[i] = reverse_bits(next[lengths_[i]]++, lengths_[i]);
  }
}

HuffmanDecoder::HuffmanDecoder(std::span<const std::uint8_t> lengths) {
  for (const std::uint8_t l : lengths) {
    if (l > kMaxCodeLength) throw DecodeError("huffman: invalid code length");
    if (l > 0) ++count_[l];
  }
  // Reject over-subscribed length sets (Kraft sum > 1): a corrupt container
  // can deliver any length array, and over-subscription would otherwise wrap
  // the canonical code space and corrupt the decode tables. Incomplete sets
  // are allowed — their unreachable codes throw at decode time.
  std::int64_t space = 1;
  for (int l = 1; l <= kMaxCodeLength; ++l) {
    space = (space << 1) - static_cast<std::int64_t>(count_[l]);
    if (space < 0) throw DecodeError("huffman: over-subscribed code lengths");
  }
  std::uint32_t code = 0;
  std::uint32_t index = 0;
  for (int l = 1; l <= kMaxCodeLength; ++l) {
    code = (code + count_[l - 1]) << 1;
    first_code_[l] = code;
    offset_[l] = index;
    index += count_[l];
  }
  symbol_count_ = index;
  sorted_symbols_.resize(index);
  std::uint32_t fill[kMaxCodeLength + 1];
  std::copy(offset_, offset_ + kMaxCodeLength + 1, fill);
  for (std::size_t i = 0; i < lengths.size(); ++i) {
    if (lengths[i] > 0) {
      sorted_symbols_[fill[lengths[i]]++] = static_cast<std::uint32_t>(i);
    }
  }
  if (symbol_count_ == 0) return;

  // Build the lookup tables. Codes are emitted MSB-first into an LSB-first
  // bit stream, so the next `l` stream bits are the code bit-reversed: entry
  // fill uses reverse_bits and replicates each code across all table slots
  // that share its low bits.
  root_.assign(std::size_t{1} << kRootBits, 0);
  constexpr int kSubBits = kMaxCodeLength - kRootBits;
  constexpr std::uint32_t kSubSize = 1u << kSubBits;
  std::uint32_t next[kMaxCodeLength + 1];
  std::copy(first_code_, first_code_ + kMaxCodeLength + 1, next);
  for (std::size_t i = 0; i < lengths.size(); ++i) {
    const int l = lengths[i];
    if (l == 0) continue;
    const std::uint32_t rev = reverse_bits(next[l]++, l);
    const std::uint32_t entry =
        (static_cast<std::uint32_t>(l) << 16) | static_cast<std::uint32_t>(i);
    if (l <= kRootBits) {
      for (std::uint32_t slot = rev; slot < root_.size(); slot += 1u << l) {
        root_[slot] = entry;
      }
      continue;
    }
    // Long code: the root entry for its first kRootBits stream bits links to
    // a fixed kSubSize spill block indexed by the remaining bits.
    const std::uint32_t prefix = rev & ((1u << kRootBits) - 1);
    if ((root_[prefix] & kSubtableFlag) == 0) {
      root_[prefix] = kSubtableFlag | static_cast<std::uint32_t>(sub_.size());
      sub_.resize(sub_.size() + kSubSize, 0);
    }
    const std::uint32_t base = root_[prefix] & 0xffffu;
    for (std::uint32_t slot = rev >> kRootBits; slot < kSubSize;
         slot += 1u << (l - kRootBits)) {
      sub_[base + slot] = entry;
    }
  }
}

std::uint32_t HuffmanDecoder::decode_bitwise(BitReader& in) const {
  if (symbol_count_ == 0) throw DecodeError("huffman: decode with empty table");
  std::uint32_t code = 0;
  for (int l = 1; l <= kMaxCodeLength; ++l) {
    code = (code << 1) | in.bit();
    if (count_[l] > 0 && code - first_code_[l] < count_[l]) {
      return sorted_symbols_[offset_[l] + (code - first_code_[l])];
    }
  }
  throw DecodeError("huffman: invalid code in stream");
}

}  // namespace lon::lfz
