#include "compress/huffman.hpp"

#include <algorithm>
#include <numeric>
#include <queue>
#include <stdexcept>

namespace lon::lfz {

namespace {

/// Builds optimal code lengths for the given (all nonzero) frequency list
/// via the standard two-queue Huffman construction. Returns the depth of
/// each input symbol. Input size >= 2.
std::vector<int> huffman_depths(const std::vector<std::uint64_t>& freqs) {
  struct Node {
    std::uint64_t weight;
    int left = -1;   // node indices; -1 means leaf
    int right = -1;
  };
  std::vector<Node> nodes;
  nodes.reserve(freqs.size() * 2);
  using Item = std::pair<std::uint64_t, int>;  // (weight, node index)
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  for (std::size_t i = 0; i < freqs.size(); ++i) {
    nodes.push_back({freqs[i], -1, -1});
    heap.emplace(freqs[i], static_cast<int>(i));
  }
  while (heap.size() > 1) {
    const auto [wa, a] = heap.top();
    heap.pop();
    const auto [wb, b] = heap.top();
    heap.pop();
    nodes.push_back({wa + wb, a, b});
    heap.emplace(wa + wb, static_cast<int>(nodes.size() - 1));
  }
  // Depth-first walk to assign leaf depths.
  std::vector<int> depth(freqs.size(), 0);
  std::vector<std::pair<int, int>> stack;  // (node, depth)
  stack.emplace_back(heap.top().second, 0);
  while (!stack.empty()) {
    const auto [index, d] = stack.back();
    stack.pop_back();
    const Node& node = nodes[static_cast<std::size_t>(index)];
    if (node.left < 0) {
      depth[static_cast<std::size_t>(index)] = std::max(d, 1);
    } else {
      stack.emplace_back(node.left, d + 1);
      stack.emplace_back(node.right, d + 1);
    }
  }
  return depth;
}

}  // namespace

std::vector<std::uint8_t> build_code_lengths(std::span<const std::uint64_t> freqs) {
  std::vector<std::uint8_t> lengths(freqs.size(), 0);
  // Collect used symbols.
  std::vector<std::size_t> used;
  for (std::size_t i = 0; i < freqs.size(); ++i) {
    if (freqs[i] > 0) used.push_back(i);
  }
  if (used.empty()) return lengths;
  if (used.size() == 1) {
    lengths[used[0]] = 1;
    return lengths;
  }

  std::vector<std::uint64_t> working;
  working.reserve(used.size());
  for (const std::size_t i : used) working.push_back(freqs[i]);

  for (;;) {
    const std::vector<int> depths = huffman_depths(working);
    const int max_depth = *std::max_element(depths.begin(), depths.end());
    if (max_depth <= kMaxCodeLength) {
      for (std::size_t k = 0; k < used.size(); ++k) {
        lengths[used[k]] = static_cast<std::uint8_t>(depths[k]);
      }
      return lengths;
    }
    // Flatten the distribution and retry; nonzero frequencies stay nonzero.
    for (auto& f : working) f = (f + 1) / 2;
  }
}

HuffmanEncoder::HuffmanEncoder(std::span<const std::uint8_t> lengths)
    : codes_(lengths.size(), 0), lengths_(lengths.begin(), lengths.end()) {
  // Canonical code assignment: count codes per length, then compute the
  // first code of each length.
  std::uint32_t count[kMaxCodeLength + 1] = {};
  for (const std::uint8_t l : lengths_) {
    if (l > kMaxCodeLength) throw std::invalid_argument("huffman: length too long");
    if (l > 0) ++count[l];
  }
  std::uint32_t next[kMaxCodeLength + 1] = {};
  std::uint32_t code = 0;
  for (int l = 1; l <= kMaxCodeLength; ++l) {
    code = (code + count[l - 1]) << 1;
    next[l] = code;
  }
  for (std::size_t i = 0; i < lengths_.size(); ++i) {
    if (lengths_[i] > 0) codes_[i] = next[lengths_[i]]++;
  }
}

HuffmanDecoder::HuffmanDecoder(std::span<const std::uint8_t> lengths) {
  for (const std::uint8_t l : lengths) {
    if (l > kMaxCodeLength) throw DecodeError("huffman: invalid code length");
    if (l > 0) ++count_[l];
  }
  std::uint32_t code = 0;
  std::uint32_t index = 0;
  for (int l = 1; l <= kMaxCodeLength; ++l) {
    code = (code + count_[l - 1]) << 1;
    first_code_[l] = code;
    offset_[l] = index;
    index += count_[l];
  }
  symbol_count_ = index;
  sorted_symbols_.resize(index);
  std::uint32_t fill[kMaxCodeLength + 1];
  std::copy(offset_, offset_ + kMaxCodeLength + 1, fill);
  for (std::size_t i = 0; i < lengths.size(); ++i) {
    if (lengths[i] > 0) {
      sorted_symbols_[fill[lengths[i]]++] = static_cast<std::uint32_t>(i);
    }
  }
}

std::uint32_t HuffmanDecoder::decode(BitReader& in) const {
  if (symbol_count_ == 0) throw DecodeError("huffman: decode with empty table");
  std::uint32_t code = 0;
  for (int l = 1; l <= kMaxCodeLength; ++l) {
    code = (code << 1) | in.bit();
    if (count_[l] > 0 && code - first_code_[l] < count_[l]) {
      return sorted_symbols_[offset_[l] + (code - first_code_[l])];
    }
  }
  throw DecodeError("huffman: invalid code in stream");
}

}  // namespace lon::lfz
