#include "util/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>

namespace lon {

ThreadPool& ThreadPool::shared() {
  static ThreadPool* pool = [] {
    std::size_t threads = 0;
    if (const char* env = std::getenv("LON_POOL_THREADS"); env != nullptr) {
      threads = static_cast<std::size_t>(std::strtoul(env, nullptr, 10));
    }
    // Leaked deliberately: workers may still be draining detached work when
    // static destructors run; joining here would be a shutdown hazard.
    return new ThreadPool(threads);
  }();
  return *pool;
}

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  // jthread joins in its destructor.
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn,
                              std::size_t chunks) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  if (chunks == 0) chunks = std::min(n, size() * 2);
  chunks = std::max<std::size_t>(1, std::min(chunks, n));
  const std::size_t per = (n + chunks - 1) / chunks;

  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * per;
    const std::size_t hi = std::min(end, lo + per);
    if (lo >= hi) break;
    futures.push_back(submit([lo, hi, &fn] {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    }));
  }
  // Every chunk captures &fn: rethrowing out of the first failed get() while
  // later chunks are still running would leave them calling through a
  // dangling reference. Drain all futures first, then surface the first
  // failure.
  for (auto& f : futures) f.wait();
  std::exception_ptr first;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (first) std::rethrow_exception(first);
}

}  // namespace lon
