#include "util/checksum.hpp"

#include <array>

namespace lon {
namespace {

constexpr std::uint32_t kAdlerMod = 65521;  // largest prime below 2^16

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

const std::array<std::uint32_t, 256>& crc_table() {
  static const auto table = make_crc_table();
  return table;
}

}  // namespace

std::uint32_t adler32(std::span<const std::uint8_t> data, std::uint32_t adler) {
  std::uint32_t a = adler & 0xffff;
  std::uint32_t b = (adler >> 16) & 0xffff;
  std::size_t i = 0;
  while (i < data.size()) {
    // 5552 is the largest n such that 255*n*(n+1)/2 + (n+1)*(kAdlerMod-1)
    // fits in 32 bits; defer the modulo until then (zlib's trick).
    std::size_t chunk = std::min<std::size_t>(5552, data.size() - i);
    for (std::size_t j = 0; j < chunk; ++j) {
      a += data[i + j];
      b += a;
    }
    a %= kAdlerMod;
    b %= kAdlerMod;
    i += chunk;
  }
  return (b << 16) | a;
}

std::uint32_t crc32(std::span<const std::uint8_t> data, std::uint32_t crc) {
  const auto& table = crc_table();
  std::uint32_t c = crc ^ 0xffffffffu;
  for (std::uint8_t byte : data) {
    c = table[(c ^ byte) & 0xff] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

}  // namespace lon
