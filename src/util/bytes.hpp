// Little-endian byte-buffer serialization.
//
// Every on-the-wire structure in the system (view sets, exNodes, IBP
// messages) is serialized through ByteWriter/ByteReader so the encoding is
// explicit, portable and testable, independent of host struct layout.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace lon {

using Bytes = std::vector<std::uint8_t>;

/// Thrown by ByteReader when a read runs past the end of the buffer or a
/// length prefix is implausible.
class DecodeError : public std::runtime_error {
 public:
  explicit DecodeError(const std::string& what) : std::runtime_error(what) {}
};

/// Appends fixed-width little-endian integers, floats and length-prefixed
/// blobs to a growable byte vector.
class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(std::size_t reserve) { buf_.reserve(reserve); }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f32(float v);
  void f64(double v);

  /// Raw bytes, no length prefix.
  void raw(std::span<const std::uint8_t> data);

  /// u32 length prefix followed by the bytes.
  void blob(std::span<const std::uint8_t> data);

  /// u32 length prefix followed by UTF-8 bytes.
  void str(std::string_view s);

  [[nodiscard]] const Bytes& bytes() const { return buf_; }
  [[nodiscard]] Bytes take() { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

 private:
  Bytes buf_;
};

/// Reads the encodings produced by ByteWriter; bounds-checked throughout.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  float f32();
  double f64();

  /// Reads n raw bytes.
  std::span<const std::uint8_t> raw(std::size_t n);

  /// Reads a u32-length-prefixed blob.
  Bytes blob();

  /// Reads a u32-length-prefixed string.
  std::string str();

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool done() const { return pos_ == data_.size(); }
  [[nodiscard]] std::size_t position() const { return pos_; }

 private:
  void need(std::size_t n) const;

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// Convenience: views a string's bytes as a span for ByteWriter::raw/blob.
inline std::span<const std::uint8_t> as_bytes(std::string_view s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

}  // namespace lon
