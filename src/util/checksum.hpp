// Checksums used by the lfz compressed container (Adler-32, as in zlib) and
// by IBP depot storage integrity checks (CRC-32, IEEE polynomial).
#pragma once

#include <cstdint>
#include <span>

namespace lon {

/// Adler-32 over the given bytes, continuing from a previous value.
/// Start with adler = 1 (the zlib convention).
std::uint32_t adler32(std::span<const std::uint8_t> data, std::uint32_t adler = 1);

/// CRC-32 (IEEE 802.3 polynomial, reflected), continuing from a previous
/// value. Start with crc = 0.
std::uint32_t crc32(std::span<const std::uint8_t> data, std::uint32_t crc = 0);

}  // namespace lon
