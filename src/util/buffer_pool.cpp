#include "util/buffer_pool.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstring>
#include <mutex>
#include <vector>

namespace lon::util {

namespace {

std::atomic<std::uint64_t> g_payload_bytes_copied{0};

}  // namespace

std::uint64_t payload_bytes_copied() {
  return g_payload_bytes_copied.load(std::memory_order_relaxed);
}

void account_payload_copy(std::uint64_t n) {
  g_payload_bytes_copied.fetch_add(n, std::memory_order_relaxed);
}

void copy_payload(std::uint8_t* dst, const std::uint8_t* src, std::size_t n) {
  if (n == 0) return;
  std::memcpy(dst, src, n);
  account_payload_copy(n);
}

// A slab's size class is the power of two covering its requested size, never
// below min_class_bytes. Capacity is reserved to exactly the class, so
// assign() on reuse never reallocates and the class is an exact accounting
// unit for the retained-bytes budget.
struct BufferPool::Impl {
  explicit Impl(Config c) : config(c) {
    config.min_class_bytes = std::max<std::size_t>(std::bit_ceil(config.min_class_bytes), 64);
  }

  [[nodiscard]] std::size_t class_bytes(std::size_t size) const {
    return std::max(config.min_class_bytes, std::bit_ceil(std::max<std::size_t>(size, 1)));
  }

  // Free lists keyed by log2(class) — at most ~40 distinct classes.
  [[nodiscard]] std::size_t class_index(std::size_t bytes) const {
    return static_cast<std::size_t>(std::countr_zero(bytes));
  }

  void recycle(Bytes* slab) {
    const std::size_t bytes = slab->capacity();
    {
      std::lock_guard lock(mutex);
      if (retained + bytes <= config.max_retained_bytes && std::has_single_bit(bytes) &&
          bytes >= config.min_class_bytes) {
        slab->clear();  // keeps capacity
        const std::size_t idx = class_index(bytes);
        if (free_lists.size() <= idx) free_lists.resize(idx + 1);
        free_lists[idx].emplace_back(slab);
        retained += bytes;
        return;
      }
    }
    delete slab;
  }

  Config config;
  std::mutex mutex;
  std::vector<std::vector<std::unique_ptr<Bytes>>> free_lists;
  std::uint64_t retained = 0;
  std::atomic<std::uint64_t> reuses{0};
  std::atomic<std::uint64_t> allocations{0};
};

BufferPool::BufferPool(const Config& config) : impl_(std::make_shared<Impl>(config)) {}

std::shared_ptr<Bytes> BufferPool::acquire(std::size_t size) {
  const std::size_t cls = impl_->class_bytes(size);
  std::unique_ptr<Bytes> slab;
  {
    std::lock_guard lock(impl_->mutex);
    const std::size_t idx = impl_->class_index(cls);
    if (idx < impl_->free_lists.size() && !impl_->free_lists[idx].empty()) {
      slab = std::move(impl_->free_lists[idx].back());
      impl_->free_lists[idx].pop_back();
      impl_->retained -= cls;
    }
  }
  if (slab) {
    impl_->reuses.fetch_add(1, std::memory_order_relaxed);
  } else {
    slab = std::make_unique<Bytes>();
    slab->reserve(cls);
    impl_->allocations.fetch_add(1, std::memory_order_relaxed);
  }
  slab->assign(size, 0);
  // The deleter holds the Impl alive, so slabs may outlive the pool object.
  auto impl = impl_;
  return std::shared_ptr<Bytes>(slab.release(),
                                [impl](Bytes* b) { impl->recycle(b); });
}

std::uint64_t BufferPool::retained_bytes() const {
  std::lock_guard lock(impl_->mutex);
  return impl_->retained;
}

std::uint64_t BufferPool::reuses() const {
  return impl_->reuses.load(std::memory_order_relaxed);
}

std::uint64_t BufferPool::allocations() const {
  return impl_->allocations.load(std::memory_order_relaxed);
}

BufferPool& BufferPool::shared() {
  static BufferPool* pool = new BufferPool();
  return *pool;
}

}  // namespace lon::util
