// Minimal leveled logger.
//
// Library code logs through this sink so tests can silence output and
// examples can raise verbosity. Not thread-registered per-line fancy; one
// global level and a mutex-guarded stream is enough for this system.
#pragma once

#include <mutex>
#include <sstream>
#include <string>

namespace lon {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

/// Process-wide log configuration.
class Log {
 public:
  static void set_level(LogLevel level);
  static LogLevel level();

  /// Emits one formatted line if `level` passes the global threshold.
  static void write(LogLevel level, const std::string& module, const std::string& message);

 private:
  static std::mutex mutex_;
  static LogLevel level_;
};

namespace detail {

class LogLine {
 public:
  LogLine(LogLevel level, std::string module) : level_(level), module_(std::move(module)) {}
  ~LogLine() { Log::write(level_, module_, stream_.str()); }

  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string module_;
  std::ostringstream stream_;
};

}  // namespace detail

/// Usage: LON_LOG(kInfo, "ibp") << "depot " << id << " full";
#define LON_LOG(severity, module)                                 \
  if (::lon::Log::level() > ::lon::LogLevel::severity) {          \
  } else                                                          \
    ::lon::detail::LogLine(::lon::LogLevel::severity, (module))

}  // namespace lon
