// Fixed-size worker pool with a blocking task queue and a parallel_for
// helper. Used by the parallel ray caster ("our generator uses a parallel
// ray-caster on 32 processors", paper section 3.4) and by bulk view-set
// (de)compression.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace lon {

class ThreadPool {
 public:
  /// Starts `threads` workers (defaults to hardware concurrency, min 1).
  explicit ThreadPool(std::size_t threads = 0);

  /// Drains outstanding tasks, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Enqueues a task; the returned future resolves when it finishes.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard lock(mutex_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Runs fn(i) for i in [begin, end) across the pool, blocking until all
  /// iterations finish. Work is divided into contiguous chunks (one per
  /// worker by default) to keep cache behaviour friendly for image tiles.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn, std::size_t chunks = 0);

  /// The process-wide shared worker pool used by the demand path (LoRS
  /// stripe verification, the client agent's decompress pipeline, server
  /// generation and batch codec work). Sized from LON_POOL_THREADS when set,
  /// otherwise hardware concurrency. Constructed on first use and never
  /// destroyed before exit; safe to call from any thread.
  ///
  /// Ownership rule (DESIGN.md section 10): the simulator thread owns all
  /// virtual-time state; pool workers only run pure CPU work (checksums,
  /// codec chunks, ray-cast tiles) over disjoint data and must never touch
  /// the simulator, the network, or the tracer.
  [[nodiscard]] static ThreadPool& shared();

 private:
  void worker_loop();

  std::vector<std::jthread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace lon
