// Pooled payload buffers and the payload-copy meter — the allocation side of
// the zero-copy demand path (DESIGN.md section 16).
//
// Every view-set payload on the demand path lives in a slab acquired from a
// BufferPool: LoRS assembles stripes scatter-gather directly into the slab,
// the decompress pipeline decodes chunks in place into a second slab, and the
// cache / Delivery / renderer alias the result by shared_ptr. Slabs are
// refcounted; when the last reference drops the backing allocation returns to
// the pool (bounded by max_retained_bytes) instead of the heap, so a browsing
// session reaches a steady state with no allocator traffic on the hot path.
//
// The copy meter is the enforcement half: every physical payload copy the
// demand path still performs must go through copy_payload()/
// account_payload_copy(), which feed the `bytes_copied_per_access` gate
// counters. A copy that bypasses the meter is a bug: the perf gate pins the
// per-access totals exactly, so an unaccounted memcpy either shows up as a
// counter mismatch (if accounted elsewhere) or as an unreviewed extra pass.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

#include "util/bytes.hpp"

namespace lon::util {

// --- payload-copy meter ------------------------------------------------------

/// Total payload bytes physically copied process-wide (monotonic, relaxed
/// atomic — safe to read from any thread). Gates compute deltas around an
/// operation; there is deliberately no reset.
[[nodiscard]] std::uint64_t payload_bytes_copied();

/// Records `n` payload bytes copied by some path that moves bytes itself
/// (e.g. vector assign / insert that cannot take a raw destination).
void account_payload_copy(std::uint64_t n);

/// memcpy that feeds the meter — the one sanctioned way to move payload
/// bytes. Regions must not overlap.
void copy_payload(std::uint8_t* dst, const std::uint8_t* src, std::size_t n);

// --- BufferPool --------------------------------------------------------------

/// Size-class arena of recycled, refcounted byte slabs.
///
/// acquire(n) hands out a shared_ptr<Bytes> of exactly n zero-filled bytes
/// whose capacity is the power-of-two size class covering n. The custom
/// deleter returns the allocation to the pool, so the slab may outlive the
/// BufferPool object itself (the pool state is itself refcounted). Callers
/// may resize the vector downward freely; growing it past the class capacity
/// reallocates and simply forfeits the recycled storage — legal, never UB.
///
/// Thread-safe: acquire and release take an internal mutex (both are
/// off-hot-path — the hot path only reads and writes slab contents).
class BufferPool {
 public:
  struct Config {
    std::size_t min_class_bytes = 4096;            ///< smallest size class
    std::uint64_t max_retained_bytes = 256ull << 20;  ///< idle-slab budget
  };

  BufferPool() : BufferPool(Config{}) {}
  explicit BufferPool(const Config& config);

  /// A zero-filled buffer of exactly `size` bytes, recycled when possible.
  [[nodiscard]] std::shared_ptr<Bytes> acquire(std::size_t size);

  /// Bytes currently held idle in the free lists.
  [[nodiscard]] std::uint64_t retained_bytes() const;
  /// Slabs handed out that reused a recycled allocation.
  [[nodiscard]] std::uint64_t reuses() const;
  /// Slabs that required a fresh heap allocation.
  [[nodiscard]] std::uint64_t allocations() const;

  /// The process-wide pool backing the demand path (view-set payloads and
  /// decode destinations). Constructed on first use, never destroyed before
  /// exit; safe to call from any thread.
  [[nodiscard]] static BufferPool& shared();

 private:
  struct Impl;
  std::shared_ptr<Impl> impl_;
};

}  // namespace lon::util
