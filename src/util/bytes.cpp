#include "util/bytes.hpp"

#include <cstring>

namespace lon {

void ByteWriter::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void ByteWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::f32(float v) {
  std::uint32_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  u32(bits);
}

void ByteWriter::f64(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  u64(bits);
}

void ByteWriter::raw(std::span<const std::uint8_t> data) {
  buf_.insert(buf_.end(), data.begin(), data.end());
}

void ByteWriter::blob(std::span<const std::uint8_t> data) {
  u32(static_cast<std::uint32_t>(data.size()));
  raw(data);
}

void ByteWriter::str(std::string_view s) { blob(as_bytes(s)); }

void ByteReader::need(std::size_t n) const {
  if (remaining() < n) {
    throw DecodeError("ByteReader: truncated input (need " + std::to_string(n) +
                      " bytes, have " + std::to_string(remaining()) + ")");
  }
}

std::uint8_t ByteReader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint16_t ByteReader::u16() {
  need(2);
  std::uint16_t v = static_cast<std::uint16_t>(data_[pos_] | (data_[pos_ + 1] << 8));
  pos_ += 2;
  return v;
}

std::uint32_t ByteReader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 4;
  return v;
}

std::uint64_t ByteReader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 8;
  return v;
}

float ByteReader::f32() {
  const std::uint32_t bits = u32();
  float v;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

double ByteReader::f64() {
  const std::uint64_t bits = u64();
  double v;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

std::span<const std::uint8_t> ByteReader::raw(std::size_t n) {
  need(n);
  auto out = data_.subspan(pos_, n);
  pos_ += n;
  return out;
}

Bytes ByteReader::blob() {
  const std::uint32_t n = u32();
  auto view = raw(n);
  return Bytes(view.begin(), view.end());
}

std::string ByteReader::str() {
  const std::uint32_t n = u32();
  auto view = raw(n);
  return std::string(reinterpret_cast<const char*>(view.data()), view.size());
}

}  // namespace lon
