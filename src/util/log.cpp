#include "util/log.hpp"

#include <iostream>

namespace lon {

std::mutex Log::mutex_;
LogLevel Log::level_ = LogLevel::kWarn;

void Log::set_level(LogLevel level) {
  std::lock_guard lock(mutex_);
  level_ = level;
}

LogLevel Log::level() {
  // Benign race-free read: level_ changes rarely and torn reads are
  // impossible for a small enum; still guard for strictness.
  std::lock_guard lock(mutex_);
  return level_;
}

void Log::write(LogLevel level, const std::string& module, const std::string& message) {
  static const char* names[] = {"TRACE", "DEBUG", "INFO", "WARN", "ERROR", "OFF"};
  std::lock_guard lock(mutex_);
  if (level < level_) return;
  std::cerr << '[' << names[static_cast<int>(level)] << "] " << module << ": " << message
            << '\n';
}

}  // namespace lon
