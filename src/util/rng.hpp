// Deterministic random number generation.
//
// Every stochastic element of the system (network jitter, synthetic dataset
// layout, workload shuffles) draws from a seeded generator so that tests and
// benchmark runs are exactly reproducible.  We implement SplitMix64 (for
// seeding) and xoshiro256** (the workhorse) rather than relying on
// implementation-defined std::default_random_engine behaviour.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>

namespace lon {

/// SplitMix64: tiny, statistically solid generator used to expand one 64-bit
/// seed into the state of a larger generator.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality 64-bit PRNG (Blackman & Vigna).
/// Satisfies the std UniformRandomBitGenerator requirements.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<result_type>::max(); }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t below(std::uint64_t n) {
    // Lemire's nearly-divisionless bounded rejection method.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Standard normal via Box–Muller (no state caching; fine for our rates).
  double normal();

  /// Exponential with the given mean.
  double exponential(double mean);

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

inline double Rng::normal() {
  // Box–Muller transform; discard the second variate for simplicity.
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  constexpr double two_pi = 6.283185307179586476925286766559;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(two_pi * u2);
}

inline double Rng::exponential(double mean) {
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -mean * std::log(u);
}

}  // namespace lon
