// Small 3-D vector math and spherical-coordinate helpers used by the ray
// caster and the spherical light-field parameterization.
#pragma once

#include <algorithm>
#include <cmath>
#include <ostream>

namespace lon {

struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  constexpr Vec3() = default;
  constexpr Vec3(double x_, double y_, double z_) : x(x_), y(y_), z(z_) {}

  constexpr Vec3 operator+(const Vec3& o) const { return {x + o.x, y + o.y, z + o.z}; }
  constexpr Vec3 operator-(const Vec3& o) const { return {x - o.x, y - o.y, z - o.z}; }
  constexpr Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
  constexpr Vec3 operator/(double s) const { return {x / s, y / s, z / s}; }
  constexpr Vec3 operator-() const { return {-x, -y, -z}; }

  Vec3& operator+=(const Vec3& o) {
    x += o.x;
    y += o.y;
    z += o.z;
    return *this;
  }
  Vec3& operator-=(const Vec3& o) {
    x -= o.x;
    y -= o.y;
    z -= o.z;
    return *this;
  }
  Vec3& operator*=(double s) {
    x *= s;
    y *= s;
    z *= s;
    return *this;
  }

  constexpr double dot(const Vec3& o) const { return x * o.x + y * o.y + z * o.z; }
  constexpr Vec3 cross(const Vec3& o) const {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }
  double norm() const { return std::sqrt(dot(*this)); }
  constexpr double norm2() const { return dot(*this); }

  Vec3 normalized() const {
    const double n = norm();
    return n > 0.0 ? *this / n : Vec3{0, 0, 0};
  }
};

constexpr Vec3 operator*(double s, const Vec3& v) { return v * s; }

inline std::ostream& operator<<(std::ostream& os, const Vec3& v) {
  return os << '(' << v.x << ", " << v.y << ", " << v.z << ')';
}

inline constexpr double kPi = 3.14159265358979323846;

/// Degrees to radians.
constexpr double deg2rad(double deg) { return deg * kPi / 180.0; }
/// Radians to degrees.
constexpr double rad2deg(double rad) { return rad * 180.0 / kPi; }

/// Spherical direction (theta = polar angle from +z in [0, pi],
/// phi = azimuth from +x in [0, 2*pi)).
struct Spherical {
  double theta = 0.0;
  double phi = 0.0;
};

/// Unit direction for spherical angles.
inline Vec3 spherical_to_unit(const Spherical& s) {
  const double st = std::sin(s.theta);
  return {st * std::cos(s.phi), st * std::sin(s.phi), std::cos(s.theta)};
}

/// Spherical angles of a (not necessarily unit) direction. phi is
/// normalized into [0, 2*pi).
inline Spherical unit_to_spherical(const Vec3& v) {
  const double r = v.norm();
  Spherical s;
  if (r <= 0.0) return s;
  s.theta = std::acos(std::clamp(v.z / r, -1.0, 1.0));
  s.phi = std::atan2(v.y, v.x);
  if (s.phi < 0.0) s.phi += 2.0 * kPi;
  return s;
}

/// Great-circle (angular) distance in radians between two directions.
inline double angular_distance(const Spherical& a, const Spherical& b) {
  const Vec3 va = spherical_to_unit(a);
  const Vec3 vb = spherical_to_unit(b);
  return std::acos(std::clamp(va.dot(vb), -1.0, 1.0));
}

}  // namespace lon
