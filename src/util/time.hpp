// Simulated-time primitives shared by every Logistical Networking module.
//
// All network behaviour in this reproduction runs on a virtual clock so that
// wide-area latencies cost no wall time and every experiment is
// deterministic.  SimTime is a signed 64-bit nanosecond count; helpers below
// convert to and from seconds for reporting (the paper's figures are in
// seconds).
#pragma once

#include <cstdint>

namespace lon {

/// Virtual time in nanoseconds since the start of a simulation.
using SimTime = std::int64_t;

/// Virtual duration in nanoseconds.
using SimDuration = std::int64_t;

inline constexpr SimDuration kNanosecond = 1;
inline constexpr SimDuration kMicrosecond = 1'000;
inline constexpr SimDuration kMillisecond = 1'000'000;
inline constexpr SimDuration kSecond = 1'000'000'000;

/// Converts a floating-point second count to SimDuration (round to nearest).
constexpr SimDuration from_seconds(double s) {
  return static_cast<SimDuration>(s * 1e9 + (s >= 0 ? 0.5 : -0.5));
}

/// Converts SimTime/SimDuration to floating-point seconds for reporting.
constexpr double to_seconds(SimDuration t) { return static_cast<double>(t) * 1e-9; }

/// Converts milliseconds to SimDuration.
constexpr SimDuration from_millis(double ms) { return from_seconds(ms * 1e-3); }

}  // namespace lon
