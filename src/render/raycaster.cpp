#include "render/raycaster.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace lon::render {

bool intersect_unit_cube(const Ray& ray, double& t_near, double& t_far) {
  t_near = 0.0;
  t_far = std::numeric_limits<double>::infinity();
  const double origin[3] = {ray.origin.x, ray.origin.y, ray.origin.z};
  const double dir[3] = {ray.direction.x, ray.direction.y, ray.direction.z};
  for (int axis = 0; axis < 3; ++axis) {
    if (std::abs(dir[axis]) < 1e-15) {
      if (origin[axis] < -1.0 || origin[axis] > 1.0) return false;
      continue;
    }
    double t0 = (-1.0 - origin[axis]) / dir[axis];
    double t1 = (1.0 - origin[axis]) / dir[axis];
    if (t0 > t1) std::swap(t0, t1);
    t_near = std::max(t_near, t0);
    t_far = std::min(t_far, t1);
    if (t_near > t_far) return false;
  }
  return true;
}

RayCaster::RayCaster(const volume::ScalarVolume& vol, volume::TransferFunction tf,
                     RayCastOptions options)
    : volume_(vol), tf_(std::move(tf)), options_(options) {}

Rgb8 RayCaster::cast(const Ray& ray) const {
  double t0 = 0.0, t1 = 0.0;
  if (!intersect_unit_cube(ray, t0, t1)) return options_.background;

  double r = 0.0, g = 0.0, b = 0.0, alpha = 0.0;
  const double step = options_.step;
  for (double t = t0 + step * 0.5; t < t1; t += step) {
    const Vec3 p = ray.at(t);
    const double value = volume_.sample(p);
    volume::Rgba c = tf_.evaluate(value);
    if (c.a <= 0.0) continue;

    double shade = 1.0;
    if (options_.shading) {
      const Vec3 grad = volume_.gradient(p);
      const double mag = grad.norm();
      if (mag > 1e-9) {
        // Headlight: light arrives along the viewing direction.
        const double ndotl = std::abs(grad.dot(ray.direction)) / mag;
        shade = options_.ambient + options_.diffuse * ndotl;
      } else {
        shade = options_.ambient + options_.diffuse * 0.5;
      }
    }

    // Opacity correction for the chosen step size (reference step 0.01).
    const double corrected = 1.0 - std::pow(1.0 - std::min(c.a, 0.999), step / 0.01);
    const double weight = (1.0 - alpha) * corrected;
    r += weight * c.r * shade;
    g += weight * c.g * shade;
    b += weight * c.b * shade;
    alpha += weight;
    if (alpha >= options_.early_termination) break;
  }

  // Composite over the background.
  const double bg = 1.0 - alpha;
  auto to_byte = [](double v) {
    return static_cast<std::uint8_t>(std::clamp(v, 0.0, 1.0) * 255.0 + 0.5);
  };
  return {
      to_byte(r + bg * options_.background.r / 255.0),
      to_byte(g + bg * options_.background.g / 255.0),
      to_byte(b + bg * options_.background.b / 255.0),
  };
}

ImageRGB8 RayCaster::render(const Camera& camera, std::size_t width, std::size_t height,
                            ThreadPool* pool) const {
  ImageRGB8 image(width, height);
  auto render_row = [&](std::size_t y) {
    for (std::size_t x = 0; x < width; ++x) {
      image.set(x, y, cast(camera.pixel_ray(x, y, width, height)));
    }
  };
  if (pool != nullptr) {
    pool->parallel_for(0, height, render_row);
  } else {
    for (std::size_t y = 0; y < height; ++y) render_row(y);
  }
  return image;
}

}  // namespace lon::render
