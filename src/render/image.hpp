// 8-bit RGB images — the pixel format of sample views and of the client
// display.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

#include "util/bytes.hpp"

namespace lon::render {

struct Rgb8 {
  std::uint8_t r = 0;
  std::uint8_t g = 0;
  std::uint8_t b = 0;

  bool operator==(const Rgb8&) const = default;
};

class ImageRGB8 {
 public:
  ImageRGB8() = default;
  ImageRGB8(std::size_t width, std::size_t height)
      : width_(width), height_(height), pixels_(width * height * 3, 0) {}

  [[nodiscard]] std::size_t width() const { return width_; }
  [[nodiscard]] std::size_t height() const { return height_; }
  [[nodiscard]] std::size_t byte_size() const { return pixels_.size(); }

  [[nodiscard]] Rgb8 at(std::size_t x, std::size_t y) const {
    const std::size_t base = (y * width_ + x) * 3;
    return {pixels_[base], pixels_[base + 1], pixels_[base + 2]};
  }

  void set(std::size_t x, std::size_t y, Rgb8 color) {
    const std::size_t base = (y * width_ + x) * 3;
    pixels_[base] = color.r;
    pixels_[base + 1] = color.g;
    pixels_[base + 2] = color.b;
  }

  [[nodiscard]] const Bytes& bytes() const { return pixels_; }
  [[nodiscard]] Bytes& bytes() { return pixels_; }

  /// Mean absolute per-channel difference against another image of the same
  /// size (a simple image-space error metric).
  [[nodiscard]] double mean_abs_diff(const ImageRGB8& other) const;

  /// Writes a binary PPM (P6) file — handy for eyeballing example output.
  void write_ppm(const std::string& path) const;

  bool operator==(const ImageRGB8&) const = default;

 private:
  std::size_t width_ = 0;
  std::size_t height_ = 0;
  Bytes pixels_;
};

}  // namespace lon::render
