// Parallel volume ray caster.
//
// Front-to-back compositing of a transfer-function-classified scalar volume
// with optional gradient (Blinn-Phong-ish headlight) shading and early ray
// termination — "the most general form of volume rendering with both
// semi-transparency and full opaqueness" the paper targets. The server-side
// generator runs this over the camera lattice via a ThreadPool, standing in
// for the paper's 32-processor cluster.
#pragma once

#include <cstddef>

#include "render/camera.hpp"
#include "render/image.hpp"
#include "util/thread_pool.hpp"
#include "volume/transfer.hpp"
#include "volume/volume.hpp"

namespace lon::render {

struct RayCastOptions {
  double step = 0.01;                 ///< world-space sampling step
  double early_termination = 0.98;    ///< stop when accumulated alpha passes this
  bool shading = true;                ///< gradient headlight shading
  double ambient = 0.35;
  double diffuse = 0.65;
  Rgb8 background{0, 0, 0};
};

class RayCaster {
 public:
  RayCaster(const volume::ScalarVolume& vol, volume::TransferFunction tf,
            RayCastOptions options = {});

  /// Renders one frame; parallel over image rows when a pool is given.
  [[nodiscard]] ImageRGB8 render(const Camera& camera, std::size_t width,
                                 std::size_t height, ThreadPool* pool = nullptr) const;

  /// Casts a single ray; exposed for tests.
  [[nodiscard]] Rgb8 cast(const Ray& ray) const;

  [[nodiscard]] const RayCastOptions& options() const { return options_; }

 private:
  const volume::ScalarVolume& volume_;
  volume::TransferFunction tf_;
  RayCastOptions options_;
};

/// Intersects a ray with the [-1,1]^3 cube. Returns false on a miss;
/// otherwise [t_near, t_far] bound the overlap (t_near clamped to >= 0).
bool intersect_unit_cube(const Ray& ray, double& t_near, double& t_far);

}  // namespace lon::render
