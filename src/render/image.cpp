#include "render/image.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace lon::render {

double ImageRGB8::mean_abs_diff(const ImageRGB8& other) const {
  if (width_ != other.width_ || height_ != other.height_) {
    throw std::invalid_argument("mean_abs_diff: size mismatch");
  }
  if (pixels_.empty()) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < pixels_.size(); ++i) {
    sum += std::abs(static_cast<int>(pixels_[i]) - static_cast<int>(other.pixels_[i]));
  }
  return sum / static_cast<double>(pixels_.size());
}

void ImageRGB8::write_ppm(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) throw std::runtime_error("write_ppm: cannot open " + path);
  std::fprintf(file, "P6\n%zu %zu\n255\n", width_, height_);
  std::fwrite(pixels_.data(), 1, pixels_.size(), file);
  std::fclose(file);
}

}  // namespace lon::render
