// Pinhole camera with look-at construction.
#pragma once

#include <cstddef>

#include "util/vec3.hpp"

namespace lon::render {

struct Ray {
  Vec3 origin;
  Vec3 direction;  ///< unit length

  [[nodiscard]] Vec3 at(double t) const { return origin + direction * t; }
};

class Camera {
 public:
  Camera() = default;

  /// Builds a camera at `eye` looking at `target`, with vertical field of
  /// view `fov_deg` and pixel aspect from width/height at ray time.
  static Camera look_at(const Vec3& eye, const Vec3& target, const Vec3& up,
                        double fov_deg);

  /// Primary ray through pixel (x, y) of a width x height image (pixel
  /// centers; y grows downward).
  [[nodiscard]] Ray pixel_ray(std::size_t x, std::size_t y, std::size_t width,
                              std::size_t height) const;

  [[nodiscard]] const Vec3& eye() const { return eye_; }
  [[nodiscard]] const Vec3& forward() const { return forward_; }

 private:
  Vec3 eye_{0, 0, 5};
  Vec3 forward_{0, 0, -1};
  Vec3 right_{1, 0, 0};
  Vec3 up_{0, 1, 0};
  double tan_half_fov_ = 0.41421356;  // fov 45 deg
};

}  // namespace lon::render
