#include "render/camera.hpp"

#include <cmath>
#include <stdexcept>

namespace lon::render {

Camera Camera::look_at(const Vec3& eye, const Vec3& target, const Vec3& up,
                       double fov_deg) {
  Camera cam;
  cam.eye_ = eye;
  cam.forward_ = (target - eye).normalized();
  if (cam.forward_.norm() == 0.0) {
    throw std::invalid_argument("Camera::look_at: eye == target");
  }
  Vec3 right = cam.forward_.cross(up);
  if (right.norm() < 1e-12) {
    // Degenerate up: pick any perpendicular axis.
    const Vec3 fallback =
        std::abs(cam.forward_.z) < 0.9 ? Vec3{0, 0, 1} : Vec3{1, 0, 0};
    right = cam.forward_.cross(fallback);
  }
  cam.right_ = right.normalized();
  cam.up_ = cam.right_.cross(cam.forward_).normalized();
  cam.tan_half_fov_ = std::tan(deg2rad(fov_deg) * 0.5);
  return cam;
}

Ray Camera::pixel_ray(std::size_t x, std::size_t y, std::size_t width,
                      std::size_t height) const {
  const double aspect = static_cast<double>(width) / static_cast<double>(height);
  const double u =
      (2.0 * (static_cast<double>(x) + 0.5) / static_cast<double>(width) - 1.0) * aspect *
      tan_half_fov_;
  const double v =
      (1.0 - 2.0 * (static_cast<double>(y) + 0.5) / static_cast<double>(height)) *
      tan_half_fov_;
  return Ray{eye_, (forward_ + right_ * u + up_ * v).normalized()};
}

}  // namespace lon::render
