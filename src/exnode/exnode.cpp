#include "exnode/exnode.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

#include "exnode/xml.hpp"

namespace lon::exnode {

namespace {

bool operator_less(const Extent& a, const Extent& b) { return a.offset < b.offset; }

}  // namespace

void ExNode::add_extent(Extent extent) {
  if (extent.length == 0) throw std::invalid_argument("ExNode: zero-length extent");
  const auto pos = std::lower_bound(extents_.begin(), extents_.end(), extent, operator_less);
  // Overlap checks against neighbours.
  if (pos != extents_.begin()) {
    const Extent& prev = *(pos - 1);
    if (prev.end() > extent.offset) throw std::invalid_argument("ExNode: overlapping extent");
  }
  if (pos != extents_.end()) {
    if (extent.end() > pos->offset) throw std::invalid_argument("ExNode: overlapping extent");
  }
  extents_.insert(pos, std::move(extent));
}

bool ExNode::add_replica(std::uint64_t offset, Replica replica, bool front) {
  for (auto& extent : extents_) {
    if (extent.offset == offset) {
      if (front) {
        extent.replicas.insert(extent.replicas.begin(), std::move(replica));
      } else {
        extent.replicas.push_back(std::move(replica));
      }
      return true;
    }
  }
  return false;
}

std::size_t ExNode::drop_depot(const std::string& depot) {
  std::size_t dropped = 0;
  for (auto& extent : extents_) {
    const auto before = extent.replicas.size();
    std::erase_if(extent.replicas,
                  [&](const Replica& r) { return r.read.depot == depot; });
    dropped += before - extent.replicas.size();
  }
  return dropped;
}

const Extent* ExNode::extent_at(std::uint64_t offset) const {
  for (const auto& extent : extents_) {
    if (offset >= extent.offset && offset < extent.end()) return &extent;
  }
  return nullptr;
}

bool ExNode::complete() const {
  std::uint64_t covered = 0;
  for (const auto& extent : extents_) {
    if (extent.offset != covered) return false;
    if (extent.replicas.empty()) return false;
    covered = extent.end();
  }
  return covered == length_;
}

std::vector<std::string> ExNode::depots() const {
  std::set<std::string> names;
  for (const auto& extent : extents_) {
    for (const auto& replica : extent.replicas) names.insert(replica.read.depot);
  }
  return {names.begin(), names.end()};
}

std::string ExNode::to_xml() const {
  XmlElement root;
  root.name = "exnode";
  root.attributes["length"] = std::to_string(length_);
  for (const auto& [key, value] : metadata_) {
    XmlElement meta;
    meta.name = "metadata";
    meta.attributes["key"] = key;
    meta.text = value;
    root.children.push_back(std::move(meta));
  }
  for (const auto& extent : extents_) {
    XmlElement ext;
    ext.name = "extent";
    ext.attributes["offset"] = std::to_string(extent.offset);
    ext.attributes["length"] = std::to_string(extent.length);
    if (extent.checksum.has_value()) {
      ext.attributes["crc32"] = std::to_string(*extent.checksum);
    }
    for (const auto& replica : extent.replicas) {
      XmlElement rep;
      rep.name = "replica";
      rep.attributes["uri"] = replica.read.to_uri();
      if (replica.manage.has_value()) {
        rep.attributes["manage"] = replica.manage->to_uri();
      }
      rep.attributes["alloc_offset"] = std::to_string(replica.alloc_offset);
      ext.children.push_back(std::move(rep));
    }
    root.children.push_back(std::move(ext));
  }
  return exnode::to_xml(root);
}

ExNode ExNode::from_xml(const std::string& xml) {
  const XmlElement root = parse_xml(xml);
  if (root.name != "exnode") throw XmlError("expected <exnode> root, got <" + root.name + ">");
  ExNode node(std::stoull(root.attr("length")));
  for (const XmlElement* meta : root.children_named("metadata")) {
    node.metadata()[meta->attr("key")] = meta->text;
  }
  for (const XmlElement* ext : root.children_named("extent")) {
    Extent extent;
    extent.offset = std::stoull(ext->attr("offset"));
    extent.length = std::stoull(ext->attr("length"));
    const std::string crc = ext->attr_or("crc32", "");
    if (!crc.empty()) {
      extent.checksum = static_cast<std::uint32_t>(std::stoul(crc));
    }
    for (const XmlElement* rep : ext->children_named("replica")) {
      auto cap = ibp::Capability::parse(rep->attr("uri"));
      if (!cap) throw XmlError("bad capability uri: " + rep->attr("uri"));
      Replica replica;
      replica.read = *cap;
      const std::string manage_uri = rep->attr_or("manage", "");
      if (!manage_uri.empty()) {
        auto manage = ibp::Capability::parse(manage_uri);
        if (!manage) throw XmlError("bad capability uri: " + manage_uri);
        replica.manage = *manage;
      }
      replica.alloc_offset = std::stoull(rep->attr_or("alloc_offset", "0"));
      extent.replicas.push_back(std::move(replica));
    }
    node.add_extent(std::move(extent));
  }
  return node;
}

}  // namespace lon::exnode
