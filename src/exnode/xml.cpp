#include "exnode/xml.hpp"

#include <cctype>
#include <sstream>

namespace lon::exnode {

const XmlElement* XmlElement::child(const std::string& name_) const {
  for (const auto& c : children) {
    if (c.name == name_) return &c;
  }
  return nullptr;
}

std::vector<const XmlElement*> XmlElement::children_named(const std::string& name_) const {
  std::vector<const XmlElement*> out;
  for (const auto& c : children) {
    if (c.name == name_) out.push_back(&c);
  }
  return out;
}

const std::string& XmlElement::attr(const std::string& key) const {
  auto it = attributes.find(key);
  if (it == attributes.end()) {
    throw XmlError("missing attribute '" + key + "' on <" + name + ">");
  }
  return it->second;
}

std::string XmlElement::attr_or(const std::string& key, const std::string& fallback) const {
  auto it = attributes.find(key);
  return it == attributes.end() ? fallback : it->second;
}

std::string xml_escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      case '\'':
        out += "&apos;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

namespace {

void write_element(std::ostringstream& os, const XmlElement& el, int depth) {
  const std::string indent(static_cast<std::size_t>(depth) * 2, ' ');
  os << indent << '<' << el.name;
  for (const auto& [key, value] : el.attributes) {
    os << ' ' << key << "=\"" << xml_escape(value) << '"';
  }
  if (el.children.empty() && el.text.empty()) {
    os << "/>\n";
    return;
  }
  os << '>';
  if (!el.text.empty()) os << xml_escape(el.text);
  if (!el.children.empty()) {
    os << '\n';
    for (const auto& c : el.children) write_element(os, c, depth + 1);
    os << indent;
  }
  os << "</" << el.name << ">\n";
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  XmlElement parse() {
    skip_ws();
    skip_prolog();
    skip_ws();
    XmlElement root = element();
    skip_ws();
    if (pos_ != text_.size()) throw XmlError("trailing content after root element");
    return root;
  }

 private:
  [[nodiscard]] char peek() const {
    if (pos_ >= text_.size()) throw XmlError("unexpected end of document");
    return text_[pos_];
  }

  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect(char c) {
    if (!consume(c)) {
      throw XmlError(std::string("expected '") + c + "' at offset " + std::to_string(pos_));
    }
  }

  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  void skip_prolog() {
    if (text_.compare(pos_, 5, "<?xml") == 0) {
      const std::size_t end = text_.find("?>", pos_);
      if (end == std::string::npos) throw XmlError("unterminated XML prolog");
      pos_ = end + 2;
    }
  }

  std::string name_token() {
    const std::size_t start = pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-' || c == ':' ||
          c == '.') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) throw XmlError("expected name at offset " + std::to_string(start));
    return text_.substr(start, pos_ - start);
  }

  std::string unescape_until(char terminator) {
    std::string out;
    while (peek() != terminator) {
      char c = take();
      if (c == '&') {
        std::string entity;
        while (peek() != ';') entity += take();
        take();  // ';'
        if (entity == "amp") {
          out += '&';
        } else if (entity == "lt") {
          out += '<';
        } else if (entity == "gt") {
          out += '>';
        } else if (entity == "quot") {
          out += '"';
        } else if (entity == "apos") {
          out += '\'';
        } else {
          throw XmlError("unknown entity &" + entity + ";");
        }
      } else {
        out += c;
      }
    }
    return out;
  }

  XmlElement element() {
    expect('<');
    XmlElement el;
    el.name = name_token();
    // Attributes.
    for (;;) {
      skip_ws();
      if (consume('/')) {
        expect('>');
        return el;
      }
      if (consume('>')) break;
      const std::string key = name_token();
      skip_ws();
      expect('=');
      skip_ws();
      expect('"');
      el.attributes[key] = unescape_until('"');
      expect('"');
    }
    // Content: text and child elements until the close tag.
    for (;;) {
      if (peek() == '<') {
        if (text_.compare(pos_, 2, "</") == 0) {
          pos_ += 2;
          const std::string closing = name_token();
          if (closing != el.name) {
            throw XmlError("mismatched close tag </" + closing + "> for <" + el.name + ">");
          }
          skip_ws();
          expect('>');
          return el;
        }
        el.children.push_back(element());
      } else {
        std::string chunk = unescape_until('<');
        // Trim pure-indentation whitespace, keep meaningful text.
        const auto non_ws = chunk.find_first_not_of(" \t\r\n");
        if (non_ws != std::string::npos) el.text += chunk;
      }
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string to_xml(const XmlElement& root) {
  std::ostringstream os;
  os << "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
  write_element(os, root, 0);
  return os.str();
}

XmlElement parse_xml(const std::string& text) { return Parser(text).parse(); }

}  // namespace lon::exnode
