// Minimal XML subset used for exNode serialization.
//
// The exNode is "an XML-encoded data structure for aggregation of
// capabilities" (paper section 2.2). We implement exactly the subset we
// emit: nested elements, double-quoted attributes, text content, and the
// five standard entities. No namespaces, comments, CDATA or processing
// instructions.
#pragma once

#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace lon::exnode {

class XmlError : public std::runtime_error {
 public:
  explicit XmlError(const std::string& what) : std::runtime_error(what) {}
};

struct XmlElement {
  std::string name;
  std::map<std::string, std::string> attributes;
  std::vector<XmlElement> children;
  std::string text;  ///< concatenated character data directly inside this element

  /// First child with the given name, or nullptr.
  [[nodiscard]] const XmlElement* child(const std::string& name) const;

  /// All children with the given name.
  [[nodiscard]] std::vector<const XmlElement*> children_named(const std::string& name) const;

  /// Attribute value; throws XmlError if absent.
  [[nodiscard]] const std::string& attr(const std::string& key) const;

  /// Attribute value or fallback.
  [[nodiscard]] std::string attr_or(const std::string& key, const std::string& fallback) const;
};

/// Serializes the element tree with 2-space indentation.
[[nodiscard]] std::string to_xml(const XmlElement& root);

/// Parses a document containing a single root element.
[[nodiscard]] XmlElement parse_xml(const std::string& text);

/// Escapes &<>"' for use in text or attribute values.
[[nodiscard]] std::string xml_escape(const std::string& raw);

}  // namespace lon::exnode
