// The exNode: a network inode.
//
// "ExNodes are modeled on the inodes that are a familiar part of the Unix
// file system, except that exNodes map the data extent of a file into IBP
// allocations on depots rather than to blocks on a local disk" (paper
// section 2.2). Each extent of the logical object carries one or more
// *replica* capabilities — the same bytes stored on different depots — so a
// downloader can pick the closest or fastest copy, and striping falls out of
// having multiple extents on distinct depots.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "ibp/capability.hpp"

namespace lon::exnode {

/// One replica of an extent: where the bytes live within some allocation.
/// The exNode "aggregates capabilities": the read capability is what any
/// downloader needs; the manage capability (present only in the owner's
/// copy) is what lease refresh and release need.
struct Replica {
  ibp::Capability read;            ///< read capability for the allocation
  std::optional<ibp::Capability> manage;  ///< owner-side manage capability
  std::uint64_t alloc_offset = 0;  ///< offset of this extent inside the allocation

  bool operator==(const Replica&) const = default;
};

/// A contiguous range [offset, offset+length) of the logical object.
struct Extent {
  std::uint64_t offset = 0;
  std::uint64_t length = 0;
  std::vector<Replica> replicas;
  /// CRC32 of the extent's bytes, recorded at upload. Every replica stores
  /// the same logical bytes, so one checksum covers them all; downloaders
  /// use it to detect silent corruption and fail over to another replica.
  std::optional<std::uint32_t> checksum;

  [[nodiscard]] std::uint64_t end() const { return offset + length; }

  bool operator==(const Extent&) const = default;
};

class ExNode {
 public:
  ExNode() = default;
  explicit ExNode(std::uint64_t length) : length_(length) {}

  [[nodiscard]] std::uint64_t length() const { return length_; }
  void set_length(std::uint64_t length) { length_ = length; }

  /// Adds an extent (kept sorted by offset). Extents may not overlap.
  void add_extent(Extent extent);

  /// Adds one more replica to the extent that starts at `offset`.
  /// If `front` is true the replica is preferred by downloaders.
  /// Returns false if no extent starts there.
  bool add_replica(std::uint64_t offset, Replica replica, bool front = false);

  /// Removes every replica living on the named depot (e.g. a dead depot).
  /// Returns the number of replicas dropped.
  std::size_t drop_depot(const std::string& depot);

  [[nodiscard]] const std::vector<Extent>& extents() const { return extents_; }

  /// The extent containing logical byte `offset`, or nullptr.
  [[nodiscard]] const Extent* extent_at(std::uint64_t offset) const;

  /// True when the extents cover [0, length) with no gaps and every extent
  /// has at least one replica.
  [[nodiscard]] bool complete() const;

  /// Set of depot names appearing in any replica.
  [[nodiscard]] std::vector<std::string> depots() const;

  /// Free-form key/value metadata (dataset name, view-set id, ...).
  std::map<std::string, std::string>& metadata() { return metadata_; }
  [[nodiscard]] const std::map<std::string, std::string>& metadata() const {
    return metadata_;
  }

  /// XML round-trip (the canonical exNode representation).
  [[nodiscard]] std::string to_xml() const;
  static ExNode from_xml(const std::string& xml);

  bool operator==(const ExNode&) const = default;

 private:
  std::uint64_t length_ = 0;
  std::vector<Extent> extents_;
  std::map<std::string, std::string> metadata_;
};

}  // namespace lon::exnode
