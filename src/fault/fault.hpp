// Deterministic fault injection for the simulated Logistical Network.
//
// IBP's service model is explicit that storage is best-effort: "it may be
// necessary to assume that storage can be permanently lost". This module
// turns that assumption into schedulable, replayable events on the virtual
// clock — depot crashes and restarts, link partitions, degraded disks,
// silently dropped requests and silently corrupted reads — so the
// self-healing machinery above (fabric timeouts, LoRS retry/checksum/repair,
// client-agent re-resolution, L-Bone health probes) can be exercised and
// measured without a single nondeterministic input. Every probabilistic
// fault draws from one seeded generator: same plan + same seed = same run,
// bit for bit.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ibp/service.hpp"
#include "obs/obs.hpp"
#include "simnet/network.hpp"
#include "util/rng.hpp"

namespace lon::fault {

/// Take a depot offline at `at`; bring it back `restart_after` later
/// (0 = never restarts). Going offline cancels the depot's in-flight flows.
struct DepotCrash {
  std::string depot;
  SimTime at = 0;
  SimDuration restart_after = 0;
};

/// Cut the link between two nodes at `at`; restore it `up_after` later
/// (0 = stays down). While down, flows across the link stall at rate zero
/// and new requests over it are lost — only timeouts observe the partition.
struct LinkDown {
  sim::NodeId a = sim::kInvalidNode;
  sim::NodeId b = sim::kInvalidNode;
  SimTime at = 0;
  SimDuration up_after = 0;
};

/// Multiply a depot's disk service rate by `factor` (< 1 = slower) for
/// `duration`, then restore the original rate.
struct DiskDegrade {
  std::string depot;
  SimTime at = 0;
  SimDuration duration = 0;
  double factor = 0.1;
};

/// During [at, at+duration), each fabric request addressed to `depot` (empty
/// = any depot) is eaten with probability `prob`; the caller sees nothing
/// until its deadline fires.
struct DropWindow {
  SimTime at = 0;
  SimDuration duration = 0;
  double prob = 0.0;
  std::string depot;  ///< empty = all depots
};

/// During [at, at+duration), each load served by `depot` (empty = any) has
/// probability `prob` of one flipped bit — silent corruption only block
/// checksums can catch.
struct CorruptWindow {
  SimTime at = 0;
  SimDuration duration = 0;
  double prob = 0.0;
  std::string depot;  ///< empty = all depots
};

struct FaultPlan {
  std::uint64_t seed = 0xfa117;  ///< drives every probabilistic draw
  std::vector<DepotCrash> crashes;
  std::vector<LinkDown> partitions;
  std::vector<DiskDegrade> degradations;
  std::vector<DropWindow> drops;
  std::vector<CorruptWindow> corruptions;
};

struct FaultStats {
  std::uint64_t crashes = 0;
  std::uint64_t restarts = 0;
  std::uint64_t links_cut = 0;
  std::uint64_t links_restored = 0;
  std::uint64_t disks_degraded = 0;
  std::uint64_t requests_dropped = 0;
  std::uint64_t bits_flipped = 0;
};

class FaultInjector {
 public:
  FaultInjector(sim::Simulator& sim, sim::Network& net, ibp::Fabric& fabric,
                obs::Context* obs = nullptr)
      : sim_(sim),
        net_(net),
        fabric_(fabric),
        obs_(obs != nullptr ? *obs : obs::global()),
        scope_(obs_.metrics.scope("fault")),
        metrics_{scope_.counter("fault.crashes"),
                 scope_.counter("fault.restarts"),
                 scope_.counter("fault.links_cut"),
                 scope_.counter("fault.links_restored"),
                 scope_.counter("fault.disks_degraded"),
                 scope_.counter("fault.requests_dropped"),
                 scope_.counter("fault.bits_flipped")} {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Schedules every event in the plan and installs the drop/corrupt hooks
  /// on the fabric. Call once, before (or at) the plan's earliest event
  /// time; events already in the past throw. If the plan contains drops or
  /// partitions and the fabric has no deadlines configured, default
  /// timeouts are installed (a lost request with no deadline hangs its
  /// caller forever, which no test should ever want).
  void arm(const FaultPlan& plan);

  /// Compatibility view over the obs registry counters.
  [[nodiscard]] const FaultStats& stats() const;

 private:
  struct Metrics {
    obs::Counter& crashes;
    obs::Counter& restarts;
    obs::Counter& links_cut;
    obs::Counter& links_restored;
    obs::Counter& disks_degraded;
    obs::Counter& requests_dropped;
    obs::Counter& bits_flipped;
  };

  [[nodiscard]] bool in_drop_window(const std::string& depot);
  void maybe_corrupt(const std::string& depot, Bytes& data);

  sim::Simulator& sim_;
  sim::Network& net_;
  ibp::Fabric& fabric_;
  obs::Context& obs_;
  obs::Scope scope_;
  Metrics metrics_;
  Rng rng_{0xfa117};
  std::vector<DropWindow> drops_;
  std::vector<CorruptWindow> corruptions_;
  mutable FaultStats stats_view_;
};

}  // namespace lon::fault
