#include "fault/fault.hpp"

#include <stdexcept>

namespace lon::fault {

namespace {

/// Deadlines installed when a plan needs them and the fabric has none.
/// Generous relative to any simulated WAN round trip, so they only ever
/// fire for genuinely lost requests.
constexpr SimDuration kDefaultControlTimeout = 2 * kSecond;
constexpr SimDuration kDefaultDataTimeout = 20 * kSecond;

}  // namespace

const FaultStats& FaultInjector::stats() const {
  stats_view_.crashes = metrics_.crashes.value();
  stats_view_.restarts = metrics_.restarts.value();
  stats_view_.links_cut = metrics_.links_cut.value();
  stats_view_.links_restored = metrics_.links_restored.value();
  stats_view_.disks_degraded = metrics_.disks_degraded.value();
  stats_view_.requests_dropped = metrics_.requests_dropped.value();
  stats_view_.bits_flipped = metrics_.bits_flipped.value();
  return stats_view_;
}

void FaultInjector::arm(const FaultPlan& plan) {
  rng_ = Rng(plan.seed);
  drops_ = plan.drops;
  corruptions_ = plan.corruptions;

  if (!plan.drops.empty() || !plan.partitions.empty()) {
    ibp::FabricTimeouts timeouts = fabric_.timeouts();
    if (timeouts.control <= 0) timeouts.control = kDefaultControlTimeout;
    if (timeouts.data <= 0) timeouts.data = kDefaultDataTimeout;
    fabric_.set_timeouts(timeouts);
  }

  for (const DepotCrash& crash : plan.crashes) {
    if (fabric_.find_depot(crash.depot) == nullptr) {
      throw std::invalid_argument("FaultInjector: unknown depot " + crash.depot);
    }
    if (crash.at < sim_.now()) {
      throw std::invalid_argument("FaultInjector: crash scheduled in the past");
    }
    sim_.at(crash.at, [this, depot = crash.depot] {
      fabric_.set_offline(depot, true);
      metrics_.crashes.inc();
      const obs::SpanId ev = obs_.trace.instant("fault.crash", sim_.now());
      obs_.trace.arg(ev, "depot", depot);
    });
    if (crash.restart_after > 0) {
      sim_.at(crash.at + crash.restart_after, [this, depot = crash.depot] {
        fabric_.set_offline(depot, false);
        metrics_.restarts.inc();
        const obs::SpanId ev = obs_.trace.instant("fault.restart", sim_.now());
        obs_.trace.arg(ev, "depot", depot);
      });
    }
  }

  for (const LinkDown& cut : plan.partitions) {
    const auto link = net_.link_between(cut.a, cut.b);
    if (!link.has_value()) {
      throw std::invalid_argument("FaultInjector: no direct link between nodes");
    }
    if (cut.at < sim_.now()) {
      throw std::invalid_argument("FaultInjector: partition scheduled in the past");
    }
    sim_.at(cut.at, [this, id = *link] {
      net_.set_link_up(id, false);
      metrics_.links_cut.inc();
      obs_.trace.instant("fault.link_cut", sim_.now());
    });
    if (cut.up_after > 0) {
      sim_.at(cut.at + cut.up_after, [this, id = *link] {
        net_.set_link_up(id, true);
        metrics_.links_restored.inc();
        obs_.trace.instant("fault.link_restored", sim_.now());
      });
    }
  }

  for (const DiskDegrade& deg : plan.degradations) {
    ibp::Depot* depot = fabric_.find_depot(deg.depot);
    if (depot == nullptr) {
      throw std::invalid_argument("FaultInjector: unknown depot " + deg.depot);
    }
    if (deg.at < sim_.now()) {
      throw std::invalid_argument("FaultInjector: degradation scheduled in the past");
    }
    if (deg.factor <= 0.0) {
      throw std::invalid_argument("FaultInjector: non-positive disk factor");
    }
    sim_.at(deg.at, [this, depot, deg] {
      // Capture the rate at fire time so stacked degradations compose.
      const double original = depot->config().disk_bytes_per_sec;
      depot->set_disk_rate(original * deg.factor);
      metrics_.disks_degraded.inc();
      const obs::SpanId ev = obs_.trace.instant("fault.disk_degraded", sim_.now());
      obs_.trace.arg(ev, "depot", deg.depot);
      if (deg.duration > 0) {
        sim_.after(deg.duration, [depot, original] { depot->set_disk_rate(original); });
      }
    });
  }

  if (!drops_.empty()) {
    fabric_.set_drop_hook(
        [this](const std::string& depot) { return in_drop_window(depot); });
  }
  if (!corruptions_.empty()) {
    fabric_.set_corrupt_hook(
        [this](const std::string& depot, Bytes& data) { maybe_corrupt(depot, data); });
  }
}

bool FaultInjector::in_drop_window(const std::string& depot) {
  const SimTime now = sim_.now();
  for (const DropWindow& w : drops_) {
    if (now < w.at || now >= w.at + w.duration) continue;
    if (!w.depot.empty() && w.depot != depot) continue;
    if (rng_.uniform() < w.prob) {
      metrics_.requests_dropped.inc();
      const obs::SpanId ev = obs_.trace.instant("fault.drop", sim_.now());
      obs_.trace.arg(ev, "depot", depot);
      return true;
    }
  }
  return false;
}

void FaultInjector::maybe_corrupt(const std::string& depot, Bytes& data) {
  if (data.empty()) return;
  const SimTime now = sim_.now();
  for (const CorruptWindow& w : corruptions_) {
    if (now < w.at || now >= w.at + w.duration) continue;
    if (!w.depot.empty() && w.depot != depot) continue;
    if (rng_.uniform() < w.prob) {
      const std::uint64_t bit = rng_.below(data.size() * 8);
      data[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
      metrics_.bits_flipped.inc();
      const obs::SpanId ev = obs_.trace.instant("fault.bitflip", sim_.now());
      obs_.trace.arg(ev, "depot", depot);
      return;  // one flip per load is plenty to prove the point
    }
  }
}

}  // namespace lon::fault
