// Span tracing on the virtual clock.
//
// Spans are intervals of simulated time (sim::Simulator nanoseconds), so a
// trace is as deterministic and replayable as the run that produced it: the
// same seed yields byte-identical trace files. Each span carries a parent id,
// letting one browsing demand be followed across every async hop —
// demand -> agent fetch -> DVS query -> LoRS download -> IBP flow ->
// decompress — the NetLogger-style "lifeline" that Bethel et al. used to find
// WAN visualization bottlenecks.
//
// Parent propagation is explicit where a hop crosses virtual time (span ids
// are threaded through callbacks and option structs: `sim_.after` erases any
// call-stack context), and ambient where a call is synchronous: a Tracer
// keeps a current-span register that the RAII Ambient guard sets and
// restores, so e.g. the DVS picks up the agent's fetch span without the
// fabric API knowing about tracing.
//
// The exporter writes Chrome trace_event JSON: open the file in
// chrome://tracing or https://ui.perfetto.dev. Tracing is off by default
// (begin() returns the null id and records nothing) because the global
// context lives for the whole process; session::run_experiment enables it on
// its per-run context.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/time.hpp"

namespace lon::obs {

/// Identifies a span within one Tracer. 0 is "no span" (null parent / tracing
/// disabled); real ids start at 1.
using SpanId = std::uint64_t;

struct Span {
  SpanId id = 0;
  SpanId parent = 0;
  std::string name;
  SimTime begin = 0;
  SimTime end = 0;
  bool open = true;           ///< still running (end not called)
  bool instant = false;       ///< point event, not an interval
  /// Key/value annotations, rendered into the trace event's "args".
  std::vector<std::pair<std::string, std::string>> args;
};

class Tracer {
 public:
  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Master switch. While disabled, begin()/instant() return 0 and record
  /// nothing; arg()/end() on the null id are no-ops, so call sites need no
  /// branches.
  void set_enabled(bool on) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Opens a span at virtual time `now`. parent == 0 means "use the ambient
  /// current span" (which may itself be 0: a root span).
  SpanId begin(std::string name, SimTime now, SpanId parent = 0);

  /// Closes `span` at `now`. No-op for the null id or an already-closed span.
  void end(SpanId span, SimTime now);

  /// Records a point event (retry fired, fault injected, lease refreshed).
  SpanId instant(std::string name, SimTime now, SpanId parent = 0);

  /// Attaches an annotation; shows under the event's "args" in the viewer.
  void arg(SpanId span, std::string key, std::string value);
  void arg(SpanId span, std::string key, std::uint64_t value) {
    arg(span, std::move(key), std::to_string(value));
  }

  /// The ambient current span (0 when none) — the parent that begin() adopts
  /// by default. Set via the Ambient guard.
  [[nodiscard]] SpanId current() const { return current_; }

  /// RAII guard making `span` the tracer's ambient current span for the
  /// enclosing scope. Use across synchronous call boundaries only; it cannot
  /// survive a sim_.after hop.
  class Ambient {
   public:
    Ambient(Tracer& tracer, SpanId span)
        : tracer_(tracer), saved_(tracer.current_) {
      tracer_.current_ = span;
    }
    ~Ambient() { tracer_.current_ = saved_; }
    Ambient(const Ambient&) = delete;
    Ambient& operator=(const Ambient&) = delete;

   private:
    Tracer& tracer_;
    SpanId saved_;
  };

  [[nodiscard]] const std::vector<Span>& spans() const { return spans_; }
  [[nodiscard]] const Span* find(SpanId id) const {
    return id == 0 || id > spans_.size() ? nullptr : &spans_[id - 1];
  }
  /// Root (parentless ancestor) of `id`'s parent chain; 0 for the null id.
  [[nodiscard]] SpanId root_of(SpanId id) const;

  /// Chrome trace_event JSON (the "JSON Array with metadata" flavour):
  /// complete ("X") events for spans, instant ("i") events for points,
  /// timestamps in microseconds of virtual time. pid is 1; tid is the span's
  /// root id, so each request chain gets its own lane in the viewer.
  void write_chrome_trace(std::ostream& os) const;
  [[nodiscard]] std::string chrome_trace() const;

  void clear() {
    spans_.clear();
    current_ = 0;
  }

 private:
  std::vector<Span> spans_;  // id == index + 1
  SpanId current_ = 0;
  bool enabled_ = false;
};

}  // namespace lon::obs
