#include "obs/obs.hpp"

namespace lon::obs {

Context& global() {
  static Context ctx;
  return ctx;
}

}  // namespace lon::obs
