// Process-wide metrics registry: named counters, gauges and log-bucketed
// latency histograms.
//
// The paper's whole argument is quantitative (the >30 fps interactivity
// claim, the hit/LAN/WAN latency classes of figures 9-12), and NetLogger-style
// pipeline instrumentation is what made WAN visualization tunable in the
// first place (Bethel et al., PAPERS.md). Instead of every layer keeping its
// own ad-hoc stats struct that each bench re-aggregates by hand, all layers
// increment metrics in one registry; the legacy stats() structs are thin
// views over it and the benches dump it as flat JSONL.
//
// Metrics are identified by (name, labels). `name` is a dotted path
// ("lors.retries"); `labels` is a pre-rendered "key=value,key=value" string.
// Components obtain a Scope — their instance labels rendered once — and
// create metrics through it, so two ClientAgents in one process never share a
// counter while an exporter can still aggregate across them.
//
// Metric objects and the registry are thread-safe: the demand path now runs
// CPU work (stripe verification, chunk decompression, ray casting) on the
// shared ThreadPool, and pool workers increment counters and record
// latencies concurrently with the simulator thread. Counters, gauges and
// histogram bins are atomics (relaxed ordering — metrics tolerate benign
// reordering); the registry's maps are guarded by a mutex on the
// creation/lookup/export paths only, so the increment fast path stays
// lock-free. The span Tracer (trace.hpp) is NOT thread-safe and stays
// confined to the simulator thread (DESIGN.md section 10).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <limits>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/time.hpp"

namespace lon::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (queue depths, cache occupancy).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double d) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Power-of-two-bucketed histogram over non-negative nanosecond durations,
/// with exact count/sum/min/max and bucket-estimated percentiles.
///
/// This generalizes (rather than duplicates) volume::Histogram, which is a
/// linear-binned density over scalar values in [0,1]: latencies span eight
/// decades (100 us agent hits to multi-second WAN fetches), so buckets grow
/// geometrically. Bucket b >= 1 covers [2^(b-1), 2^b) ns; bucket 0 holds
/// zero-or-negative samples. Percentiles share the rank convention of the
/// (fixed) volume::Histogram::percentile: the smallest bucket whose
/// cumulative count reaches ceil(fraction * count), reported as the bucket
/// midpoint clamped to the exactly-tracked [min, max].
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void record(SimDuration v);

  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t sum() const {  ///< exact, in ns
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] SimDuration min() const;
  [[nodiscard]] SimDuration max() const;

  /// Estimated value (ns) below which `fraction` of samples fall; 0 when
  /// empty. Monotonic in `fraction`.
  [[nodiscard]] double percentile(double fraction) const;
  [[nodiscard]] double p50() const { return percentile(0.50); }
  [[nodiscard]] double p90() const { return percentile(0.90); }
  [[nodiscard]] double p99() const { return percentile(0.99); }

  /// Snapshot of the bucket counts (each bin loaded relaxed).
  [[nodiscard]] std::array<std::uint64_t, kBuckets> buckets() const;
  /// Inclusive-exclusive bounds [lo, hi) of bucket `b`, in ns.
  static std::pair<double, double> bucket_bounds(std::size_t b);

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> bins_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::int64_t> sum_{0};
  // min_ starts at +inf and max_ at -inf so concurrent first samples race
  // benignly; min()/max() report 0 while empty.
  std::atomic<SimDuration> min_{std::numeric_limits<SimDuration>::max()};
  std::atomic<SimDuration> max_{std::numeric_limits<SimDuration>::min()};
};

class Registry;

/// A component's window onto the registry: metric creation with this
/// instance's labels pre-applied. Copyable; the registry must outlive it.
class Scope {
 public:
  Scope(Registry& registry, std::string labels)
      : registry_(&registry), labels_(std::move(labels)) {}

  [[nodiscard]] Counter& counter(const std::string& name) const;
  [[nodiscard]] Gauge& gauge(const std::string& name) const;
  [[nodiscard]] LatencyHistogram& histogram(const std::string& name) const;
  [[nodiscard]] const std::string& labels() const { return labels_; }

 private:
  Registry* registry_;
  std::string labels_;
};

/// The registry proper. Metric objects are stable in memory once created
/// (node-based storage), so layers keep references and pay no lookup on the
/// increment path. Export order is deterministic: sorted by name, then
/// labels.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(const std::string& name, const std::string& labels = {});
  Gauge& gauge(const std::string& name, const std::string& labels = {});
  LatencyHistogram& histogram(const std::string& name, const std::string& labels = {});

  /// Lookup without creation; nullptr when absent.
  [[nodiscard]] const Counter* find_counter(const std::string& name,
                                            const std::string& labels = {}) const;
  [[nodiscard]] const Gauge* find_gauge(const std::string& name,
                                        const std::string& labels = {}) const;
  [[nodiscard]] const LatencyHistogram* find_histogram(
      const std::string& name, const std::string& labels = {}) const;

  /// Sum of one counter name across every label set (0 when absent).
  [[nodiscard]] std::uint64_t counter_total(const std::string& name) const;

  /// Every label set under which `name` exists as a histogram, in label
  /// order — how per-instance latencies (e.g. one session.total_ns per
  /// client of a multi-client run) are enumerated for reporting.
  [[nodiscard]] std::vector<std::pair<std::string, const LatencyHistogram*>>
  histograms_named(const std::string& name) const;

  /// Mints a fresh instance label set for a component, e.g.
  /// "component=lors,inst=2". Instances count per component name.
  [[nodiscard]] std::string next_instance(const std::string& component);
  [[nodiscard]] Scope scope(const std::string& component) {
    return Scope(*this, next_instance(component));
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock(mutex_);
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  /// Flat JSONL dump: one self-describing JSON object per line, one line per
  /// (name, labels) metric. The format the benches write next to their
  /// stdout output and CI uploads as an artifact.
  void write_jsonl(std::ostream& os) const;
  [[nodiscard]] std::string jsonl() const;

  /// Drops every metric and instance count (tests).
  void reset();

 private:
  // (name, labels) -> metric. std::map nodes never move, so references
  // handed out by counter()/gauge()/histogram() stay valid even while other
  // threads create new metrics. mutex_ guards the maps themselves (create,
  // find, export); the metric objects are internally atomic, so the
  // increment path never takes this lock.
  template <typename T>
  using Family = std::map<std::pair<std::string, std::string>, T>;

  mutable std::mutex mutex_;
  Family<Counter> counters_;
  Family<Gauge> gauges_;
  Family<LatencyHistogram> histograms_;
  std::map<std::string, std::uint64_t> instances_;
};

/// Escapes a string for embedding in a JSON string literal.
[[nodiscard]] std::string json_escape(std::string_view s);

}  // namespace lon::obs
