// One handle for everything observability: the metrics registry plus the
// span tracer. Components take an obs::Context* (defaulted to the process
// global) so existing construction sites keep compiling while experiment
// runs get an isolated, fully-enabled context of their own.
#pragma once

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace lon::obs {

struct Context {
  Registry metrics;
  Tracer trace;
};

/// The process-wide default. Its tracer stays disabled (a long test process
/// would otherwise accumulate spans without bound); its registry is live.
[[nodiscard]] Context& global();

}  // namespace lon::obs
