#include "obs/trace.hpp"

#include <ostream>
#include <sstream>

#include "obs/metrics.hpp"  // json_escape

namespace lon::obs {

SpanId Tracer::begin(std::string name, SimTime now, SpanId parent) {
  if (!enabled_) return 0;
  Span span;
  span.id = spans_.size() + 1;
  span.parent = parent != 0 ? parent : current_;
  span.name = std::move(name);
  span.begin = now;
  span.end = now;
  spans_.push_back(std::move(span));
  return spans_.back().id;
}

void Tracer::end(SpanId span, SimTime now) {
  if (span == 0 || span > spans_.size()) return;
  Span& s = spans_[span - 1];
  if (!s.open) return;
  s.end = now;
  s.open = false;
}

SpanId Tracer::instant(std::string name, SimTime now, SpanId parent) {
  const SpanId id = begin(std::move(name), now, parent);
  if (id != 0) {
    Span& s = spans_[id - 1];
    s.open = false;
    s.instant = true;
  }
  return id;
}

void Tracer::arg(SpanId span, std::string key, std::string value) {
  if (span == 0 || span > spans_.size()) return;
  spans_[span - 1].args.emplace_back(std::move(key), std::move(value));
}

SpanId Tracer::root_of(SpanId id) const {
  const Span* s = find(id);
  while (s != nullptr && s->parent != 0) {
    const Span* up = find(s->parent);
    if (up == nullptr) break;
    s = up;
  }
  return s == nullptr ? 0 : s->id;
}

void Tracer::write_chrome_trace(std::ostream& os) const {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const Span& s : spans_) {
    if (!first) os << ",";
    first = false;
    // Virtual-time ns -> trace ts in us. Chrome treats ts as a double
    // internally, so fractional microseconds survive.
    const double ts = static_cast<double>(s.begin) / 1000.0;
    os << "\n{\"name\":\"" << json_escape(s.name) << "\",\"cat\":\"lon\",\"ph\":\""
       << (s.instant ? "i" : "X") << "\",\"ts\":" << ts;
    if (s.instant) {
      os << ",\"s\":\"t\"";  // thread-scoped instant
    } else {
      const double dur = static_cast<double>(s.end - s.begin) / 1000.0;
      os << ",\"dur\":" << dur;
    }
    os << ",\"pid\":1,\"tid\":" << root_of(s.id) << ",\"args\":{\"span\":" << s.id
       << ",\"parent\":" << s.parent;
    if (s.open) os << ",\"open\":true";
    for (const auto& [k, v] : s.args) {
      os << ",\"" << json_escape(k) << "\":\"" << json_escape(v) << "\"";
    }
    os << "}}";
  }
  os << "\n]}\n";
}

std::string Tracer::chrome_trace() const {
  std::ostringstream os;
  write_chrome_trace(os);
  return os.str();
}

}  // namespace lon::obs
