#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <ostream>
#include <sstream>

namespace lon::obs {

namespace {

/// Bucket index for a nanosecond sample: 0 for v <= 0, else 1 + floor(log2 v)
/// capped to the last bucket (which therefore absorbs > ~146 years).
std::size_t bucket_of(SimDuration v) {
  if (v <= 0) return 0;
  const auto b = static_cast<std::size_t>(std::bit_width(static_cast<std::uint64_t>(v)));
  return std::min(b, LatencyHistogram::kBuckets - 1);
}

}  // namespace

void LatencyHistogram::record(SimDuration v) {
  bins_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
  // min_/max_ fold in with CAS loops; the +/-inf sentinels make the first
  // sample a plain fold too, so concurrent first samples cannot race.
  SimDuration cur = min_.load(std::memory_order_relaxed);
  while (v < cur && !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (v > cur && !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

SimDuration LatencyHistogram::min() const {
  return count() == 0 ? 0 : min_.load(std::memory_order_relaxed);
}

SimDuration LatencyHistogram::max() const {
  return count() == 0 ? 0 : max_.load(std::memory_order_relaxed);
}

std::array<std::uint64_t, LatencyHistogram::kBuckets> LatencyHistogram::buckets() const {
  std::array<std::uint64_t, kBuckets> out{};
  for (std::size_t b = 0; b < kBuckets; ++b) {
    out[b] = bins_[b].load(std::memory_order_relaxed);
  }
  return out;
}

std::pair<double, double> LatencyHistogram::bucket_bounds(std::size_t b) {
  if (b == 0) return {0.0, 1.0};
  const double lo = std::ldexp(1.0, static_cast<int>(b) - 1);
  return {lo, lo * 2.0};
}

double LatencyHistogram::percentile(double fraction) const {
  // Concurrent record()s make this an approximate snapshot, which is all a
  // percentile estimate ever was; reads are monotonic enough for reporting.
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  fraction = std::clamp(fraction, 0.0, 1.0);
  const auto target = std::max<std::uint64_t>(
      1,
      static_cast<std::uint64_t>(std::ceil(fraction * static_cast<double>(n))));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    seen += bins_[b].load(std::memory_order_relaxed);
    if (seen >= target) {
      const auto [lo, hi] = bucket_bounds(b);
      const double mid = 0.5 * (lo + hi);
      return std::clamp(mid, static_cast<double>(min()), static_cast<double>(max()));
    }
  }
  return static_cast<double>(max());  // unreachable: bins sum to count_
}

Counter& Scope::counter(const std::string& name) const {
  return registry_->counter(name, labels_);
}

Gauge& Scope::gauge(const std::string& name) const {
  return registry_->gauge(name, labels_);
}

LatencyHistogram& Scope::histogram(const std::string& name) const {
  return registry_->histogram(name, labels_);
}

Counter& Registry::counter(const std::string& name, const std::string& labels) {
  std::lock_guard lock(mutex_);
  return counters_[{name, labels}];
}

Gauge& Registry::gauge(const std::string& name, const std::string& labels) {
  std::lock_guard lock(mutex_);
  return gauges_[{name, labels}];
}

LatencyHistogram& Registry::histogram(const std::string& name,
                                      const std::string& labels) {
  std::lock_guard lock(mutex_);
  return histograms_[{name, labels}];
}

const Counter* Registry::find_counter(const std::string& name,
                                      const std::string& labels) const {
  std::lock_guard lock(mutex_);
  const auto it = counters_.find({name, labels});
  return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* Registry::find_gauge(const std::string& name,
                                  const std::string& labels) const {
  std::lock_guard lock(mutex_);
  const auto it = gauges_.find({name, labels});
  return it == gauges_.end() ? nullptr : &it->second;
}

const LatencyHistogram* Registry::find_histogram(const std::string& name,
                                                 const std::string& labels) const {
  std::lock_guard lock(mutex_);
  const auto it = histograms_.find({name, labels});
  return it == histograms_.end() ? nullptr : &it->second;
}

std::uint64_t Registry::counter_total(const std::string& name) const {
  std::lock_guard lock(mutex_);
  std::uint64_t total = 0;
  // Keys sort by name first, so the name's label sets are contiguous.
  for (auto it = counters_.lower_bound({name, std::string{}});
       it != counters_.end() && it->first.first == name; ++it) {
    total += it->second.value();
  }
  return total;
}

std::vector<std::pair<std::string, const LatencyHistogram*>> Registry::histograms_named(
    const std::string& name) const {
  std::lock_guard lock(mutex_);
  std::vector<std::pair<std::string, const LatencyHistogram*>> out;
  for (auto it = histograms_.lower_bound({name, std::string{}});
       it != histograms_.end() && it->first.first == name; ++it) {
    out.emplace_back(it->first.second, &it->second);
  }
  return out;
}

std::string Registry::next_instance(const std::string& component) {
  std::lock_guard lock(mutex_);
  const std::uint64_t inst = instances_[component]++;
  return "component=" + component + ",inst=" + std::to_string(inst);
}

void Registry::reset() {
  std::lock_guard lock(mutex_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
  instances_.clear();
}

namespace {

void write_key(std::ostream& os, const std::pair<std::string, std::string>& key,
               const char* type) {
  os << "{\"name\":\"" << json_escape(key.first) << "\",\"labels\":\""
     << json_escape(key.second) << "\",\"type\":\"" << type << "\"";
}

/// JSON numbers may not be NaN/Inf; metrics never should be, but a dump that
/// breaks every downstream parser is the wrong way to report one.
void write_double(std::ostream& os, double v) {
  if (std::isfinite(v)) {
    os << v;
  } else {
    os << "null";
  }
}

}  // namespace

void Registry::write_jsonl(std::ostream& os) const {
  // The maps must not rehash/rebalance underneath the walk; instrument
  // *values* are atomics, so concurrent record()s stay safe while we hold
  // only the map lock.
  std::lock_guard lock(mutex_);
  for (const auto& [key, c] : counters_) {
    write_key(os, key, "counter");
    os << ",\"value\":" << c.value() << "}\n";
  }
  for (const auto& [key, g] : gauges_) {
    write_key(os, key, "gauge");
    os << ",\"value\":";
    write_double(os, g.value());
    os << "}\n";
  }
  for (const auto& [key, h] : histograms_) {
    write_key(os, key, "histogram");
    os << ",\"count\":" << h.count() << ",\"sum_ns\":" << h.sum()
       << ",\"min_ns\":" << h.min() << ",\"max_ns\":" << h.max()
       << ",\"p50_ns\":";
    write_double(os, h.p50());
    os << ",\"p90_ns\":";
    write_double(os, h.p90());
    os << ",\"p99_ns\":";
    write_double(os, h.p99());
    os << "}\n";
  }
}

std::string Registry::jsonl() const {
  std::ostringstream os;
  write_jsonl(os);
  return os.str();
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace lon::obs
