#include "policy/lod.hpp"

namespace lon::policy {

int LodSelector::pick(SimDuration full_estimate, SimDuration budget,
                      const std::vector<double>& cost_ratios) const {
  if (cost_ratios.empty()) return 0;
  if (budget <= 0) return static_cast<int>(cost_ratios.size());
  const double limit = static_cast<double>(budget) * config_.headroom;
  const double full = static_cast<double>(full_estimate);
  if (full <= limit) return 0;
  for (std::size_t k = 0; k < cost_ratios.size(); ++k) {
    if (full * cost_ratios[k] <= limit) return static_cast<int>(k) + 1;
  }
  return static_cast<int>(cost_ratios.size());
}

std::vector<double> LodSelector::cost_ratios(
    std::size_t full_resolution, const std::vector<std::size_t>& tier_resolutions) {
  std::vector<double> ratios;
  ratios.reserve(tier_resolutions.size());
  for (std::size_t res : tier_resolutions) {
    if (full_resolution == 0) {
      ratios.push_back(1.0);
      continue;
    }
    const double f = static_cast<double>(res) / static_cast<double>(full_resolution);
    ratios.push_back(f * f);
  }
  return ratios;
}

}  // namespace lon::policy
