#include "policy/prefetch.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace lon::policy {
namespace {

using lightfield::ViewSetId;
using lightfield::ViewSetIdHash;

/// Residency-filtered, budget-truncated copy of `ids` in the given order.
std::vector<ViewSetId> filter_to_budget(const std::vector<ViewSetId>& ids,
                                        const PrefetchContext& ctx) {
  std::vector<ViewSetId> out;
  for (const auto& id : ids) {
    if (out.size() >= ctx.budget) break;
    if (ctx.is_resident && ctx.is_resident(id)) continue;
    out.push_back(id);
  }
  return out;
}

std::vector<ViewSetId> quadrant_targets(const PrefetchContext& ctx) {
  return filter_to_budget(ctx.lattice->prefetch_targets(ctx.cursor_vs, ctx.quadrant), ctx);
}

class NonePolicy final : public PrefetchPolicy {
 public:
  const char* name() const override { return "none"; }
  std::vector<ViewSetId> targets(const PrefetchContext&) const override { return {}; }
};

class QuadrantPolicy final : public PrefetchPolicy {
 public:
  const char* name() const override { return "quadrant"; }
  std::vector<ViewSetId> targets(const PrefetchContext& ctx) const override {
    return quadrant_targets(ctx);
  }
};

class PredictivePolicy final : public PrefetchPolicy {
 public:
  const char* name() const override { return "predictive"; }

  std::vector<ViewSetId> targets(const PrefetchContext& ctx) const override {
    const auto* motion = ctx.motion;
    // No trajectory yet (first samples, or a teleport just reset the model):
    // the positional policy is the best available signal, and falling back to
    // it bounds wasted prefetch during discontinuities.
    if (motion == nullptr || !motion->has_estimate() ||
        motion->speed() < kMinSpeedRadPerSec) {
      return quadrant_targets(ctx);
    }

    const auto& lattice = *ctx.lattice;
    // Half the angular width of a view set: once the cursor is within this of
    // a set's center, the set is effectively needed *now*.
    const double half_window = deg2rad(lattice.config().angular_step_deg) *
                               lattice.config().view_set_span * 0.5;

    struct Scored {
      ViewSetId id;
      double score;
    };
    std::vector<Scored> scored;
    std::unordered_set<ViewSetId, ViewSetIdHash> seen;
    seen.insert(ctx.cursor_vs);

    // Estimate the closing speed towards each candidate by extrapolating the
    // trajectory a short probe interval and differencing the distances.
    constexpr SimDuration kProbe = 100 * kMillisecond;
    const double probe_s = to_seconds(kProbe);
    const Spherical here = motion->position();
    const Spherical probe = motion->predict(kProbe);
    const double horizon_s = to_seconds(ctx.horizon);

    const int rows = static_cast<int>(lattice.view_set_rows());
    const int cols = static_cast<int>(lattice.view_set_cols());
    for (int dr = -kRing; dr <= kRing; ++dr) {
      for (int dc = -kRing; dc <= kRing; ++dc) {
        if (dr == 0 && dc == 0) continue;
        const int row = ctx.cursor_vs.row + dr;
        if (row < 0 || row >= rows) continue;  // theta clamps
        int col = (ctx.cursor_vs.col + dc) % cols;
        if (col < 0) col += cols;  // phi wraps
        const ViewSetId id{row, col};
        if (!seen.insert(id).second) continue;  // wrap duplicate on tiny grids
        if (ctx.is_resident && ctx.is_resident(id)) continue;

        const Spherical center = lattice.view_set_center(id);
        const double dist_now = angular_distance(here, center);
        const double closing = (dist_now - angular_distance(probe, center)) / probe_s;
        double t_need;
        if (dist_now <= half_window) {
          t_need = 0.0;  // trajectory already inside the set's window
        } else if (closing <= 1e-9) {
          continue;  // moving away or tangential: never needed on this path
        } else {
          t_need = (dist_now - half_window) / closing;
        }
        if (t_need > horizon_s) continue;

        const double latency_s =
            ctx.fetch_estimate ? to_seconds(ctx.fetch_estimate(id)) : 0.0;
        // Urgency: how much of the remaining lead time the fetch itself will
        // consume. A set whose fetch takes longer than the time until it is
        // needed scores above 1 — fetch it first.
        scored.push_back({id, latency_s / (t_need + kTieBreakerS)});
      }
    }

    std::sort(scored.begin(), scored.end(), [](const Scored& a, const Scored& b) {
      if (a.score != b.score) return a.score > b.score;
      if (a.id.row != b.id.row) return a.id.row < b.id.row;
      return a.id.col < b.id.col;
    });

    std::vector<ViewSetId> out;
    for (const auto& s : scored) {
      if (out.size() >= ctx.budget) break;
      out.push_back(s.id);
    }
    // A moving cursor with nothing scored (everything on-path is resident or
    // out of horizon) still benefits from the positional baseline.
    if (out.empty()) return quadrant_targets(ctx);
    return out;
  }

 private:
  /// Candidate neighbourhood: view sets within 2 grid steps of the cursor's.
  static constexpr int kRing = 2;
  /// Below this angular speed the trajectory direction is numerically
  /// meaningless; treat as stationary.
  static constexpr double kMinSpeedRadPerSec = 1e-4;
  /// Added to time-to-need so already-due sets get a large finite score and
  /// equal-urgency sets break ties deterministically.
  static constexpr double kTieBreakerS = 0.05;
};

}  // namespace

const char* to_string(PrefetchStrategy s) {
  switch (s) {
    case PrefetchStrategy::kNone:
      return "none";
    case PrefetchStrategy::kQuadrant:
      return "quadrant";
    case PrefetchStrategy::kPredictive:
      return "predictive";
  }
  return "unknown";
}

std::unique_ptr<PrefetchPolicy> make_prefetch_policy(PrefetchStrategy s) {
  switch (s) {
    case PrefetchStrategy::kNone:
      return std::make_unique<NonePolicy>();
    case PrefetchStrategy::kPredictive:
      return std::make_unique<PredictivePolicy>();
    case PrefetchStrategy::kQuadrant:
      break;
  }
  return std::make_unique<QuadrantPolicy>();
}

}  // namespace lon::policy
