// Per-access level-of-detail selection for continuous LOD streaming.
//
// The degradation ladder (PR 6) only reaches for the coarse tier after a
// streak of deadline misses has already hurt the user. The selector here is
// proactive: before dispatching a demand fetch it compares the
// FetchLatencyEstimator's prediction for a full-resolution fetch against the
// time remaining until the view is needed, and — when full resolution cannot
// make it — picks the *finest* coarse tier whose predicted cost still fits.
// Coarse tiers cost less in proportion to their pixel count, so a tier at
// half the view resolution is modelled at one quarter of the full fetch.
//
// lod 0 is full resolution; lod k (k >= 1) is the k-th coarse tier, finest
// first. Returning 0 means "full resolution fits — do not degrade".
#pragma once

#include <cstddef>
#include <vector>

#include "util/time.hpp"

namespace lon::policy {

class LodSelector {
 public:
  struct Config {
    /// A tier is only chosen if its predicted fetch fits within this
    /// fraction of the remaining budget — headroom for decode + delivery.
    double headroom = 0.8;
  };

  LodSelector() = default;
  explicit LodSelector(Config config) : config_(config) {}

  /// Picks the LOD for a demand fetch. `full_estimate` is the latency
  /// estimator's prediction for a full-resolution fetch of this access
  /// class, `budget` the time remaining until the interactivity deadline,
  /// and `cost_ratios[k]` the predicted cost of tier k+1 relative to a
  /// full-resolution fetch (finest first, each in (0, 1)).
  ///
  /// Returns 0 when full resolution fits (or no budget/tiers are
  /// configured), the finest tier that fits otherwise, and the coarsest
  /// tier when nothing fits — degrade resolution, never fluidity.
  [[nodiscard]] int pick(SimDuration full_estimate, SimDuration budget,
                         const std::vector<double>& cost_ratios) const;

  /// Relative fetch-cost of each coarse tier: payload bytes scale with the
  /// pixel count, i.e. (tier_resolution / full_resolution)^2.
  [[nodiscard]] static std::vector<double> cost_ratios(
      std::size_t full_resolution, const std::vector<std::size_t>& tier_resolutions);

 private:
  Config config_;
};

}  // namespace lon::policy
