// Cache replacement policies for the client agent's view-set cache.
//
// The seed cache was a pure byte-LRU, which has a known failure mode on this
// workload: an aggressive prefetcher inserts speculative view sets that push
// the *demand* working set (the sets the user actually oscillates between)
// out of the cache — prefetch pollution. The policies here decide, given
// what is resident and what wants in, (a) which entry to sacrifice and (b)
// whether a speculative insert should be admitted at all ("don't evict
// hotter-than-incoming entries").
//
// The interface is deliberately value-based: the cache materializes a
// snapshot of its entries and the policy returns an index. Policies stay
// trivially unit-testable, and at view-set scale (hundreds of resident
// entries at most) the O(n) scan per eviction is noise next to the WAN
// fetches the cache is hiding.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "lightfield/lattice.hpp"

namespace lon::policy {

enum class EvictionStrategy {
  kLru,      ///< seed behaviour: evict the least recently used entry
  kAngular,  ///< evict the entry farthest (in view angle) from the cursor
  kHybrid,   ///< pollution-aware: sacrifice unused prefetches first, protect
             ///< the demand working set, admit prefetches only when colder
             ///< entries exist to displace
};

[[nodiscard]] const char* to_string(EvictionStrategy s);

/// Snapshot of one resident entry, as the policy sees it.
struct CacheEntryInfo {
  lightfield::ViewSetId id;
  std::uint64_t bytes = 0;
  /// Monotonic use sequence; larger = touched more recently.
  std::uint64_t last_use = 0;
  bool prefetched = false;   ///< inserted by the prefetcher...
  bool demand_used = false;  ///< ...and has since served a demand request
  /// Radians between this entry's view set and the cursor's.
  double cursor_distance = 0.0;
};

/// The entry that wants in.
struct CacheInsertInfo {
  lightfield::ViewSetId id;
  std::uint64_t bytes = 0;
  bool prefetched = false;
  double cursor_distance = 0.0;
};

class EvictionPolicy {
 public:
  virtual ~EvictionPolicy() = default;
  [[nodiscard]] virtual const char* name() const = 0;

  /// Picks the index of the entry to evict to make room for `incoming`. The
  /// cache calls this repeatedly (with already-chosen victims removed from
  /// `entries`) until the budget fits, and commits the evictions only if
  /// every round returns a victim. Returning nullopt rejects the insert
  /// instead — the admission-control arm: a speculative insert must not
  /// displace entries hotter than itself.
  [[nodiscard]] virtual std::optional<std::size_t> pick_victim(
      const std::vector<CacheEntryInfo>& entries,
      const CacheInsertInfo& incoming) const = 0;
};

[[nodiscard]] std::unique_ptr<EvictionPolicy> make_eviction_policy(EvictionStrategy s);

}  // namespace lon::policy
