// Cursor motion model — the input side of the client policy engine.
//
// The paper's quadrant prefetch (figure 4) is a *positional* policy: it looks
// only at where the cursor sits inside its view set. Hiding WAN latency for a
// moving user needs a *kinematic* one: how fast the cursor is moving and in
// which direction, so the agent can fetch the view sets the trajectory will
// cross before the user arrives (Li et al.'s motion-adaptive light-field
// delivery makes the same observation). This model turns the stream of
// notify_cursor samples into an exponentially-weighted angular velocity,
// wrap-aware in phi, and can extrapolate the cursor position over a horizon.
//
// Discontinuities — a teleport in the UI, or a long idle gap — would poison a
// velocity average; both reset the model, after which it (deliberately)
// reports no estimate until two fresh samples arrive.
#pragma once

#include "util/time.hpp"
#include "util/vec3.hpp"

namespace lon::policy {

struct MotionConfig {
  /// EWMA weight of the newest velocity sample (higher = adapts faster to
  /// reversals, noisier on jittery input).
  double alpha = 0.5;
  /// Samples farther apart than this reset the model (the user idled; the
  /// old velocity says nothing about what happens next).
  SimDuration max_gap = 10 * kSecond;
  /// A jump larger than this (radians) between consecutive samples is a
  /// teleport, not motion: reset rather than infer an absurd velocity.
  double teleport_rad = 0.6;
};

/// Wraps an angular difference into [-pi, pi).
[[nodiscard]] double wrap_angle(double rad);

class CursorMotionModel {
 public:
  CursorMotionModel() = default;
  explicit CursorMotionModel(const MotionConfig& config) : config_(config) {}

  /// Feeds one cursor sample at virtual time `now`. Samples at a repeated
  /// timestamp are ignored (duplicate notifies carry no velocity signal).
  void observe(const Spherical& dir, SimTime now);

  /// True once two compatible samples have produced a velocity estimate.
  [[nodiscard]] bool has_estimate() const { return has_estimate_; }

  /// EWMA angular velocity, rad/s. phi velocity is wrap-aware.
  [[nodiscard]] double theta_velocity() const { return v_theta_; }
  [[nodiscard]] double phi_velocity() const { return v_phi_; }
  /// Velocity magnitude, rad/s (0 without an estimate).
  [[nodiscard]] double speed() const;

  /// Last observed position / sample time.
  [[nodiscard]] const Spherical& position() const { return position_; }
  [[nodiscard]] SimTime last_sample_at() const { return last_at_; }

  /// Extrapolates the cursor `horizon` past the last sample. Theta clamps
  /// just inside the poles; phi wraps. Without an estimate, returns the last
  /// position unchanged.
  [[nodiscard]] Spherical predict(SimDuration horizon) const;

  /// Forgets everything (teleport, reset between scripts).
  void reset();

  /// Resets the model exactly when observe() would have: exposed so tests
  /// can assert the teleport/gap discipline.
  [[nodiscard]] const MotionConfig& config() const { return config_; }

 private:
  MotionConfig config_;
  Spherical position_{};
  SimTime last_at_ = 0;
  bool has_sample_ = false;
  bool has_estimate_ = false;
  double v_theta_ = 0.0;
  double v_phi_ = 0.0;
};

}  // namespace lon::policy
