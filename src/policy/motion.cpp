#include "policy/motion.hpp"

#include <cmath>

namespace lon::policy {

double wrap_angle(double rad) {
  constexpr double kTwoPi = 2.0 * kPi;
  rad = std::fmod(rad + kPi, kTwoPi);
  if (rad < 0.0) rad += kTwoPi;
  return rad - kPi;
}

void CursorMotionModel::observe(const Spherical& dir, SimTime now) {
  if (!has_sample_) {
    position_ = dir;
    last_at_ = now;
    has_sample_ = true;
    return;
  }
  const SimDuration dt = now - last_at_;
  if (dt <= 0) return;  // same-instant duplicate: no velocity signal

  const double d_theta = dir.theta - position_.theta;
  const double d_phi = wrap_angle(dir.phi - position_.phi);
  const double jump = std::sqrt(d_theta * d_theta + d_phi * d_phi);
  if (dt > config_.max_gap || jump > config_.teleport_rad) {
    // Idle gap or teleport: the previous trajectory is over.
    reset();
    position_ = dir;
    last_at_ = now;
    has_sample_ = true;
    return;
  }

  const double dt_s = to_seconds(dt);
  const double vt = d_theta / dt_s;
  const double vp = d_phi / dt_s;
  if (!has_estimate_) {
    v_theta_ = vt;
    v_phi_ = vp;
    has_estimate_ = true;
  } else {
    v_theta_ = config_.alpha * vt + (1.0 - config_.alpha) * v_theta_;
    v_phi_ = config_.alpha * vp + (1.0 - config_.alpha) * v_phi_;
  }
  position_ = dir;
  last_at_ = now;
}

double CursorMotionModel::speed() const {
  if (!has_estimate_) return 0.0;
  return std::sqrt(v_theta_ * v_theta_ + v_phi_ * v_phi_);
}

Spherical CursorMotionModel::predict(SimDuration horizon) const {
  if (!has_estimate_) return position_;
  const double h = to_seconds(horizon);
  Spherical out;
  // Clamp just inside the poles — matches the lattice's half-step offset and
  // keeps phi meaningful.
  constexpr double kPoleMargin = 1e-3;
  out.theta = std::clamp(position_.theta + v_theta_ * h, kPoleMargin, kPi - kPoleMargin);
  out.phi = position_.phi + v_phi_ * h;
  constexpr double kTwoPi = 2.0 * kPi;
  out.phi = std::fmod(out.phi, kTwoPi);
  if (out.phi < 0.0) out.phi += kTwoPi;
  return out;
}

void CursorMotionModel::reset() {
  has_sample_ = false;
  has_estimate_ = false;
  v_theta_ = 0.0;
  v_phi_ = 0.0;
}

}  // namespace lon::policy
