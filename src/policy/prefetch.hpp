// Prefetch scheduling policies for the client agent.
//
// Two strategies share one interface: the paper's positional quadrant policy
// (figure 4 — the 3 view sets adjacent to the cursor's corner quadrant) and a
// predictive policy that extrapolates the cursor trajectory from the motion
// model and ranks candidates by urgency: how soon the cursor will need a set
// versus how long a fetch of it takes. The agent asks the policy *what* to
// fetch; the agent itself enforces the inflight/byte budget and issues the
// fetches, so both policies stay pure ranking functions over lattice state.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "lightfield/lattice.hpp"
#include "policy/latency.hpp"
#include "policy/motion.hpp"
#include "util/time.hpp"

namespace lon::policy {

enum class PrefetchStrategy {
  kNone,        ///< prefetch disabled
  kQuadrant,    ///< paper figure 4: 3 corner-quadrant neighbours
  kPredictive,  ///< trajectory extrapolation + time-to-need scoring
};

[[nodiscard]] const char* to_string(PrefetchStrategy s);

/// Everything a policy may consult when ranking candidates. The residency
/// and latency callbacks keep the policy decoupled from the agent's cache
/// and estimator types.
struct PrefetchContext {
  const lightfield::SphericalLattice* lattice = nullptr;
  const CursorMotionModel* motion = nullptr;
  Spherical cursor{};                 ///< latest raw cursor direction
  lightfield::ViewSetId cursor_vs{};  ///< view set containing the cursor
  int quadrant = 0;                   ///< cursor's quadrant within that set
  SimTime now = 0;
  /// How far ahead (virtual time) prefetching is allowed to look.
  SimDuration horizon = 2 * kSecond;
  /// Upper bound on how many targets the agent will act on this round.
  std::size_t budget = 3;
  /// True if the set is already cached or being fetched (skip it).
  std::function<bool(const lightfield::ViewSetId&)> is_resident;
  /// Estimated latency of fetching one view set right now.
  std::function<SimDuration(const lightfield::ViewSetId&)> fetch_estimate;
};

class PrefetchPolicy {
 public:
  virtual ~PrefetchPolicy() = default;
  [[nodiscard]] virtual const char* name() const = 0;

  /// Targets to fetch, most urgent first, already filtered for residency and
  /// truncated to `ctx.budget`.
  [[nodiscard]] virtual std::vector<lightfield::ViewSetId> targets(
      const PrefetchContext& ctx) const = 0;
};

[[nodiscard]] std::unique_ptr<PrefetchPolicy> make_prefetch_policy(PrefetchStrategy s);

}  // namespace lon::policy
