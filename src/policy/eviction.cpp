#include "policy/eviction.hpp"

#include <limits>

namespace lon::policy {
namespace {

/// Index of the least-recently-used entry, or nullopt on an empty snapshot.
std::optional<std::size_t> lru_index(const std::vector<CacheEntryInfo>& entries) {
  if (entries.empty()) return std::nullopt;
  std::size_t best = 0;
  for (std::size_t i = 1; i < entries.size(); ++i) {
    if (entries[i].last_use < entries[best].last_use) best = i;
  }
  return best;
}

class LruPolicy final : public EvictionPolicy {
 public:
  const char* name() const override { return "lru"; }
  std::optional<std::size_t> pick_victim(
      const std::vector<CacheEntryInfo>& entries,
      const CacheInsertInfo& /*incoming*/) const override {
    return lru_index(entries);
  }
};

class AngularPolicy final : public EvictionPolicy {
 public:
  const char* name() const override { return "angular"; }
  std::optional<std::size_t> pick_victim(const std::vector<CacheEntryInfo>& entries,
                                         const CacheInsertInfo& incoming) const override {
    if (entries.empty()) return std::nullopt;
    std::size_t best = 0;
    for (std::size_t i = 1; i < entries.size(); ++i) {
      const auto& e = entries[i];
      const auto& b = entries[best];
      if (e.cursor_distance > b.cursor_distance ||
          (e.cursor_distance == b.cursor_distance && e.last_use < b.last_use)) {
        best = i;
      }
    }
    // Admission control: a speculative insert that is *farther* from the
    // cursor than everything resident would only displace hotter data.
    if (incoming.prefetched &&
        entries[best].cursor_distance <= incoming.cursor_distance) {
      return std::nullopt;
    }
    return best;
  }
};

class HybridPolicy final : public EvictionPolicy {
 public:
  const char* name() const override { return "hybrid"; }
  std::optional<std::size_t> pick_victim(const std::vector<CacheEntryInfo>& entries,
                                         const CacheInsertInfo& incoming) const override {
    if (entries.empty()) return std::nullopt;
    // First choice: pollution — a prefetched entry that never served a demand
    // request. Among those, sacrifice the one farthest from the cursor.
    std::optional<std::size_t> polluter;
    for (std::size_t i = 0; i < entries.size(); ++i) {
      const auto& e = entries[i];
      if (!e.prefetched || e.demand_used) continue;
      if (!polluter || e.cursor_distance > entries[*polluter].cursor_distance ||
          (e.cursor_distance == entries[*polluter].cursor_distance &&
           e.last_use < entries[*polluter].last_use)) {
        polluter = i;
      }
    }
    if (polluter) {
      // Still don't let a prefetch displace a *hotter* unused prefetch.
      if (incoming.prefetched &&
          entries[*polluter].cursor_distance <= incoming.cursor_distance) {
        return std::nullopt;
      }
      return polluter;
    }
    // Everything resident is demand working set. Demand inserts may trim it
    // LRU-style; speculative inserts are rejected outright.
    if (incoming.prefetched) return std::nullopt;
    return lru_index(entries);
  }
};

}  // namespace

const char* to_string(EvictionStrategy s) {
  switch (s) {
    case EvictionStrategy::kLru:
      return "lru";
    case EvictionStrategy::kAngular:
      return "angular";
    case EvictionStrategy::kHybrid:
      return "hybrid";
  }
  return "unknown";
}

std::unique_ptr<EvictionPolicy> make_eviction_policy(EvictionStrategy s) {
  switch (s) {
    case EvictionStrategy::kAngular:
      return std::make_unique<AngularPolicy>();
    case EvictionStrategy::kHybrid:
      return std::make_unique<HybridPolicy>();
    case EvictionStrategy::kLru:
      break;
  }
  return std::make_unique<LruPolicy>();
}

}  // namespace lon::policy
