// Per-class fetch-latency estimator for the prefetch scheduler.
//
// Bethel et al. showed that where a remote-vis fetch is served from (memory
// cache, LAN network cache, WAN) changes its latency by orders of magnitude;
// a prefetch scheduler that weighs "how long until the cursor needs this"
// against "how long a fetch takes" therefore needs a per-class latency
// estimate, not one global number. This keeps an EWMA per class, seeded with
// priors so the first prefetch decisions are sane before any fetch completes.
#pragma once

#include <array>
#include <cstddef>

#include "util/time.hpp"

namespace lon::policy {

/// Where a candidate fetch would be served from (mirror of the streaming
/// layer's AccessClass for the two classes a fetch can actually cost).
enum class FetchClass : std::size_t { kLan = 0, kWan = 1 };
inline constexpr std::size_t kFetchClasses = 2;

class FetchLatencyEstimator {
 public:
  struct Config {
    double alpha = 0.3;                      ///< EWMA weight of new samples
    SimDuration lan_prior = 20 * kMillisecond;
    SimDuration wan_prior = 800 * kMillisecond;
  };

  FetchLatencyEstimator() : FetchLatencyEstimator(Config{}) {}
  explicit FetchLatencyEstimator(const Config& config) : config_(config) {
    estimates_[static_cast<std::size_t>(FetchClass::kLan)] =
        static_cast<double>(config.lan_prior);
    estimates_[static_cast<std::size_t>(FetchClass::kWan)] =
        static_cast<double>(config.wan_prior);
  }

  void observe(FetchClass cls, SimDuration latency) {
    double& e = estimates_[static_cast<std::size_t>(cls)];
    std::uint64_t& n = samples_[static_cast<std::size_t>(cls)];
    // First sample replaces the prior outright; later ones blend.
    e = n == 0 ? static_cast<double>(latency)
               : config_.alpha * static_cast<double>(latency) + (1.0 - config_.alpha) * e;
    ++n;
  }

  [[nodiscard]] SimDuration estimate(FetchClass cls) const {
    return static_cast<SimDuration>(estimates_[static_cast<std::size_t>(cls)]);
  }
  [[nodiscard]] std::uint64_t samples(FetchClass cls) const {
    return samples_[static_cast<std::size_t>(cls)];
  }

 private:
  Config config_;
  std::array<double, kFetchClasses> estimates_{};
  std::array<std::uint64_t, kFetchClasses> samples_{};
};

}  // namespace lon::policy
