// Admission control for the serving path — overload protection.
//
// A flash crowd must not be allowed to queue unboundedly at the client agent
// or the server agent: every queued request then blows the interactivity
// deadline at once, which is the worst possible failure mode for an
// interactive browser. Instead the serving tier sheds load explicitly —
// "tiered caches plus explicit load management at the serving tier" — and
// the client retries with backoff, by which time prestaging has usually
// localized the data.
//
// Three independent mechanisms, each off by default so legacy behaviour is
// bit-identical until a config turns them on:
//
//   * bounded queue — at most `max_queue` requests in service at once; the
//     rest are shed with an explicit kShedQueueFull (never silently queued);
//   * per-client fair-share token buckets — each requester key owns a
//     bucket refilled on the *virtual* clock, so one hot session drains its
//     own bucket and is shed with kShedNoTokens while everyone else keeps
//     being served;
//   * deadline triage — the caller passes its predicted completion time
//     (from the policy-engine latency estimator) and the client's
//     time-to-need; a request predicted to finish after it is needed is
//     shed immediately with kShedDeadline rather than served late.
//
// Boundary semantics matter for the tests: a queue at exactly max_queue
// sheds, and a predicted completion exactly *at* the deadline is admitted —
// only strictly-late requests are hopeless.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "util/time.hpp"

namespace lon::streaming {

struct AdmissionConfig {
  bool enabled = false;        ///< master switch (off = legacy: admit everything)
  std::size_t max_queue = 0;   ///< concurrent requests in service (0 = unbounded)
  double tokens_per_sec = 0.0; ///< per-requester refill rate (0 = no buckets)
  double token_burst = 8.0;    ///< bucket capacity (initial balance)
  bool deadline_triage = true; ///< shed predicted deadline misses
};

enum class AdmissionDecision {
  kAdmit,
  kShedQueueFull,  ///< the bounded queue is at capacity
  kShedNoTokens,   ///< the requester's fair-share bucket is empty
  kShedDeadline,   ///< predicted completion is after the time-to-need
};

[[nodiscard]] const char* to_string(AdmissionDecision decision);

class AdmissionController {
 public:
  explicit AdmissionController(AdmissionConfig config) : config_(config) {}

  /// Decides one request. `queue_depth` counts requests already in service,
  /// `estimated_completion` is the predicted service latency (0 = no
  /// prediction available, which skips triage) and `time_to_need` is how
  /// long the requester can wait (0 = no deadline). Checks run cheapest
  /// first, and a request shed by the queue or the deadline does not burn a
  /// token — the requester is not charged for work that was never started.
  AdmissionDecision admit(std::uint64_t requester, SimTime now, std::size_t queue_depth,
                          SimDuration estimated_completion, SimDuration time_to_need);

  /// Current balance of a requester's bucket after refilling to `now` (for
  /// tests and introspection).
  [[nodiscard]] double tokens(std::uint64_t requester, SimTime now);

  [[nodiscard]] const AdmissionConfig& config() const { return config_; }

 private:
  struct Bucket {
    double tokens = 0.0;
    SimTime last_refill = 0;
  };

  /// Credits the bucket for the virtual time elapsed since its last refill,
  /// capped at the burst capacity. New requesters start with a full bucket.
  Bucket& refill(std::uint64_t requester, SimTime now);

  AdmissionConfig config_;
  std::unordered_map<std::uint64_t, Bucket> buckets_;
};

}  // namespace lon::streaming
