#include "streaming/admission.hpp"

#include <algorithm>

namespace lon::streaming {

const char* to_string(AdmissionDecision decision) {
  switch (decision) {
    case AdmissionDecision::kAdmit:
      return "admit";
    case AdmissionDecision::kShedQueueFull:
      return "shed-queue-full";
    case AdmissionDecision::kShedNoTokens:
      return "shed-no-tokens";
    case AdmissionDecision::kShedDeadline:
      return "shed-deadline";
  }
  return "?";
}

AdmissionController::Bucket& AdmissionController::refill(std::uint64_t requester,
                                                         SimTime now) {
  auto [it, fresh] = buckets_.try_emplace(requester, Bucket{config_.token_burst, now});
  Bucket& bucket = it->second;
  if (!fresh && now > bucket.last_refill && config_.tokens_per_sec > 0.0) {
    bucket.tokens = std::min(config_.token_burst,
                             bucket.tokens + to_seconds(now - bucket.last_refill) *
                                                 config_.tokens_per_sec);
  }
  bucket.last_refill = now;
  return bucket;
}

double AdmissionController::tokens(std::uint64_t requester, SimTime now) {
  return refill(requester, now).tokens;
}

AdmissionDecision AdmissionController::admit(std::uint64_t requester, SimTime now,
                                             std::size_t queue_depth,
                                             SimDuration estimated_completion,
                                             SimDuration time_to_need) {
  if (!config_.enabled) return AdmissionDecision::kAdmit;
  if (config_.max_queue > 0 && queue_depth >= config_.max_queue) {
    return AdmissionDecision::kShedQueueFull;
  }
  if (config_.deadline_triage && time_to_need > 0 && estimated_completion > 0 &&
      estimated_completion > time_to_need) {
    return AdmissionDecision::kShedDeadline;
  }
  if (config_.tokens_per_sec > 0.0) {
    Bucket& bucket = refill(requester, now);
    if (bucket.tokens < 1.0) return AdmissionDecision::kShedNoTokens;
    bucket.tokens -= 1.0;
  }
  return AdmissionDecision::kAdmit;
}

}  // namespace lon::streaming
