// Shared streaming-layer types: how a view-set access was satisfied and what
// it cost. These records are the raw data behind the paper's figures 8-12.
#pragma once

#include <cstdint>

#include "lightfield/lattice.hpp"
#include "util/time.hpp"

namespace lon::streaming {

/// Where the client agent found a requested view set.
enum class AccessClass : std::uint8_t {
  kAgentHit = 0,   ///< in the client agent's memory cache (a "hit")
  kLanDepot = 1,   ///< prestaged on a depot in the client's LAN
  kWan = 2,        ///< fetched across the wide area network
  kGenerated = 3,  ///< rendered on demand by a server agent
};

[[nodiscard]] const char* to_string(AccessClass cls);

/// One client-observed view-set access (one point of figures 9-12).
struct AccessRecord {
  lightfield::ViewSetId id;
  AccessClass cls = AccessClass::kWan;
  SimTime requested = 0;        ///< client issued the request
  SimTime delivered = 0;        ///< decompressed and renderable at the client
  SimDuration comm_latency = 0; ///< data-access time as measured at the agent
  SimDuration decompress_time = 0;
  std::uint64_t compressed_bytes = 0;
  /// Payload bytes physically copied to satisfy this access: zero when the
  /// agent served its cached slab by reference, one pass over the compressed
  /// payload when the bytes had to cross the network.
  std::uint64_t copied_bytes = 0;
  /// Decompression overlapped the stripe transfers at the agent;
  /// decompress_time then holds only the unhidden residual tail.
  bool pipelined = false;
  /// Level of detail this access was served at: 0 = full resolution,
  /// higher = coarser tier (continuous LOD streaming / degradation ladder).
  int lod = 0;

  /// Latency as measured at the client (figures 9-11).
  [[nodiscard]] SimDuration total() const { return delivered - requested; }
};

}  // namespace lon::streaming
