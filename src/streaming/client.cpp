#include "streaming/client.hpp"

#include <chrono>
#include <string>

#include "compress/lfz.hpp"
#include "util/log.hpp"

namespace lon::streaming {

Client::Client(sim::Simulator& sim, sim::Network& net,
               const lightfield::LatticeConfig& lattice, sim::NodeId node,
               ClientAgent& agent, ClientConfig config, obs::Context* obs)
    : sim_(sim),
      net_(net),
      node_(node),
      agent_(agent),
      config_(std::move(config)),
      obs_(obs != nullptr ? *obs : obs::global()),
      scope_(obs_.metrics.scope("client")),
      metrics_{scope_.counter("session.accesses"),
               scope_.counter("session.hits"),
               scope_.counter("session.lan"),
               scope_.counter("session.wan"),
               scope_.counter("session.pipelined"),
               scope_.histogram("session.total_ns"),
               scope_.histogram("session.comm_ns"),
               scope_.histogram("session.decompress_ns"),
               scope_.histogram("session.comm_hit_ns"),
               scope_.histogram("session.comm_lan_ns"),
               scope_.histogram("session.comm_wan_ns"),
               scope_.counter("session.shed_retries"),
               scope_.histogram("session.shed_wait_ns")},
      shed_rng_(config_.shed_retry_seed != 0
                    ? config_.shed_retry_seed
                    : 0x51ed0000ULL + static_cast<std::uint64_t>(node)),
      renderer_(lattice) {}

void Client::record_access(const AccessRecord& record) {
  metrics_.accesses.inc();
  if (record.pipelined) metrics_.pipelined.inc();
  metrics_.total_ns.record(record.total());
  metrics_.comm_ns.record(record.comm_latency);
  metrics_.decompress_ns.record(record.decompress_time);
  switch (record.cls) {
    case AccessClass::kAgentHit:
      metrics_.hits.inc();
      metrics_.comm_hit_ns.record(record.comm_latency);
      break;
    case AccessClass::kLanDepot:
      metrics_.lan.inc();
      metrics_.comm_lan_ns.record(record.comm_latency);
      break;
    case AccessClass::kWan:
    case AccessClass::kGenerated:
      metrics_.wan.inc();
      metrics_.comm_wan_ns.record(record.comm_latency);
      break;
  }
}

void Client::set_view(const Spherical& dir, std::function<void(bool)> on_ready) {
  direction_ = dir;
  const auto& lattice = renderer_.lattice();
  const lightfield::ViewSetId id = lattice.view_set_of(dir);

  // Cursor updates flow to the agent (control traffic) to drive prefetch and
  // staging order.
  const SimDuration to_agent = net_.path_latency(node_, agent_.node());
  sim_.after(to_agent, [this, dir] { agent_.notify_cursor(dir); });

  if (renderer_.has_view_set(id)) {
    if (on_ready) on_ready(true);
    return;
  }
  if (pending_.has_value()) {
    if (pending_->id == id) {
      // Already waiting on exactly this set.
      if (on_ready) pending_->callbacks.push_back(std::move(on_ready));
    } else {
      // The user moved on: the newest target supersedes any queued one.
      if (queued_.has_value() && queued_->second) queued_->second(false);
      queued_ = {dir, std::move(on_ready)};
    }
    return;
  }
  begin_request(id, std::move(on_ready));
}

void Client::begin_request(const lightfield::ViewSetId& id, std::function<void(bool)> cb) {
  pending_ = PendingRequest{id, sim_.now(), {}};
  if (cb) pending_->callbacks.push_back(std::move(cb));

  // Root of the access lifeline: everything downstream (agent fetch, DVS
  // query, LoRS download, IBP loads, decompression) nests under this span.
  const obs::SpanId span = obs_.trace.begin("client.request", sim_.now());
  obs_.trace.arg(span, "view_set", id.key());
  pending_->span = span;

  send_request(id, span);
}

void Client::send_request(const lightfield::ViewSetId& id, obs::SpanId span) {
  // Request message travels to the agent; the agent answers with the
  // compressed view set, which then travels back over the LAN.
  const SimDuration to_agent = net_.path_latency(node_, agent_.node());
  sim_.after(to_agent, [this, id, span] {
    agent_.request_view_set(
        id, node_,
        [this](const ClientAgent::Delivery& d) {
          // Payload transfer agent -> client. The wire carries the compressed
          // bytes; a pre-decoded view set (pipeline) rides along as metadata.
          auto delivery = std::make_shared<ClientAgent::Delivery>(d);
          sim::TransferOptions opts = config_.lan_net;
          net_.start_transfer(agent_.node(), node_, delivery->payload->size(), opts,
                              [this, delivery](const sim::TransferResult&) {
                                on_delivery(*delivery);
                              });
        },
        span);
  });
}

SimDuration Client::charge_decompress(const Bytes& compressed,
                                      const lightfield::ViewSetId& id,
                                      lightfield::ViewSet& out) const {
  if (!config_.decode) {
    // Install a blank set of the right shape; charge the modeled cost for
    // the bytes that *would* be produced.
    const auto& cfg = renderer_.lattice().config();
    out = lightfield::ViewSet(id, cfg.view_set_span, cfg.view_resolution);
    return static_cast<SimDuration>(static_cast<double>(out.pixel_bytes()) /
                                    config_.decompress_bytes_per_sec * 1e9);
  }
  if (config_.timing == ClientConfig::Timing::kMeasured) {
    const auto start = std::chrono::steady_clock::now();
    out = lightfield::ViewSet::decompress(compressed);
    const auto stop = std::chrono::steady_clock::now();
    return std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start).count();
  }
  out = lightfield::ViewSet::decompress(compressed);
  return static_cast<SimDuration>(static_cast<double>(out.pixel_bytes()) /
                                  config_.decompress_bytes_per_sec * 1e9);
}

void Client::on_delivery(const ClientAgent::Delivery& delivery) {
  if (!pending_.has_value()) return;  // stale delivery (should not happen)

  if (delivery.status == DeliveryStatus::kShed &&
      pending_->shed_attempts + 1 < config_.shed_retry.max_attempts) {
    // Overload refusal: back off (jittered, growing per round) and re-ask
    // the same agent. Deliberately *not* the depot-failure path — no
    // failover, no exNode invalidation, no repair: the data is fine, the
    // serving tier is busy. The clock restarts at the re-send so
    // session.total_ns keeps measuring admitted-request latency; the wait
    // itself is visible in session.shed_retries / session.shed_wait_ns.
    const int round = ++pending_->shed_attempts;
    const SimDuration wait = config_.shed_retry.backoff_for(round, shed_rng_);
    metrics_.shed_retries.inc();
    metrics_.shed_wait_ns.record(wait);
    obs_.trace.instant("client.shed_retry", sim_.now(), pending_->span);
    const lightfield::ViewSetId id = pending_->id;
    sim_.after(wait, [this, id] {
      if (!pending_.has_value() || !(pending_->id == id)) return;
      pending_->requested = sim_.now();
      send_request(id, pending_->span);
    });
    return;
  }

  PendingRequest request = std::move(*pending_);
  const Bytes& compressed = *delivery.payload;

  AccessRecord record;
  record.id = request.id;
  record.cls = delivery.cls;
  record.requested = request.requested;
  record.comm_latency = delivery.comm_latency;
  record.compressed_bytes = compressed.size();
  record.copied_bytes = delivery.copied_bytes;
  record.lod = delivery.lod;

  if (compressed.empty()) {
    // The view set could not be obtained anywhere.
    record.delivered = sim_.now();
    accesses_.push_back(record);
    record_access(record);
    obs_.trace.arg(request.span, "outcome", "failed");
    obs_.trace.end(request.span, sim_.now());
    pending_.reset();
    for (auto& cb : request.callbacks) cb(false);
    if (queued_.has_value()) {
      auto [dir, cb] = std::move(*queued_);
      queued_.reset();
      set_view(dir, std::move(cb));
    }
    return;
  }

  lightfield::ViewSet vs;
  SimDuration decompress_time = 0;
  bool ok = true;
  if (config_.decode && delivery.view_set != nullptr && delivery.pipeline != nullptr) {
    // The agent's pipeline already decoded the set while its stripes were in
    // flight; install that copy and charge only the tail the overlap could
    // not hide (a deterministic replay of the chunk schedule, independent of
    // the host's real core count).
    vs = *delivery.view_set;
    decompress_time =
        residual_decompress_time(*delivery.pipeline, config_.decompress_bytes_per_sec,
                                 config_.modeled_decode_workers);
    record.pipelined = true;
  } else {
    try {
      decompress_time = charge_decompress(compressed, request.id, vs);
    } catch (const DecodeError& e) {
      LON_LOG(kError, "client") << "view set decode failed: " << e.what();
      ok = false;
    }
  }
  record.decompress_time = decompress_time;

  // Codec observability: bytes on the wire vs. pixels produced, keyed by the
  // wire format ("lfzc", "lfz2", ...), right next to the client.decompress
  // lifeline below.
  const char* codec = lfz::wire_label(compressed);
  const std::string codec_label = std::string("codec=") + codec;
  obs_.metrics.counter("codec.bytes_in", codec_label).inc(compressed.size());
  if (ok) {
    obs_.metrics.counter("codec.bytes_out", codec_label).inc(vs.pixel_bytes());
    obs_.metrics.gauge("codec.ratio", codec_label)
        .set(static_cast<double>(vs.pixel_bytes()) /
             static_cast<double>(compressed.size()));
  }
  obs_.metrics.histogram("codec.decode_ns", codec_label).record(decompress_time);

  const obs::SpanId decomp_span =
      obs_.trace.begin("client.decompress", sim_.now(), request.span);
  obs_.trace.arg(decomp_span, "bytes", compressed.size());
  obs_.trace.arg(decomp_span, "codec", codec);
  if (record.pipelined) obs_.trace.arg(decomp_span, "mode", "pipelined");

  sim_.after(decompress_time,
             [this, record, decomp_span, vs = std::move(vs), ok,
              request = std::move(request)]() mutable {
               obs_.trace.end(decomp_span, sim_.now());
               AccessRecord final = record;
               final.delivered = sim_.now();
               accesses_.push_back(final);
               record_access(final);
               obs_.trace.arg(request.span, "outcome",
                              ok ? to_string(final.cls) : "decode_error");
               obs_.trace.end(request.span, sim_.now());
               if (ok) install_view_set(std::move(vs));
               pending_.reset();
               for (auto& cb : request.callbacks) cb(ok);
               if (queued_.has_value()) {
                 auto [dir, cb] = std::move(*queued_);
                 queued_.reset();
                 set_view(dir, std::move(cb));
               }
             });
}

void Client::install_view_set(lightfield::ViewSet vs) {
  const lightfield::ViewSetId id = vs.id();
  renderer_.add_view_set(std::move(vs));
  resident_.push_back(id);
  while (resident_.size() > static_cast<std::size_t>(std::max(1, config_.keep_view_sets))) {
    renderer_.remove_view_set(resident_.front());
    resident_.pop_front();
  }
}

render::ImageRGB8 Client::render_frame() const {
  const auto& lattice = renderer_.lattice();
  if (renderer_.can_render(direction_)) {
    return renderer_.render(direction_, config_.display_resolution);
  }
  // Snap to the nearest sample inside the resident view set (views at the
  // window edge clamp rather than fail — the paper's client shows the
  // nearest available sample view).
  const auto [row, col] = lattice.nearest_sample(direction_);
  const Spherical snapped = lattice.sample_direction(row, col);
  if (renderer_.can_render(snapped)) {
    return renderer_.render(snapped, config_.display_resolution);
  }
  return render::ImageRGB8(config_.display_resolution, config_.display_resolution);
}

}  // namespace lon::streaming
