#include "streaming/server_agent.hpp"

#include <stdexcept>

#include "util/log.hpp"

namespace lon::streaming {

ServerAgent::ServerAgent(sim::Simulator& sim, sim::Network& net, lors::Lors& lors,
                         DvsServer& dvs, sim::NodeId node,
                         std::shared_ptr<lightfield::ViewSetSource> source,
                         ServerAgentConfig config, obs::Context* obs)
    : sim_(sim),
      net_(net),
      lors_(lors),
      dvs_(dvs),
      node_(node),
      source_(std::move(source)),
      config_(std::move(config)),
      obs_(obs != nullptr ? *obs : obs::global()),
      scope_(obs_.metrics.scope("server")),
      metrics_{scope_.counter("server.requests"),
               scope_.counter("server.generated"),
               scope_.counter("server.upload_failures"),
               scope_.counter("server.generation_shed"),
               scope_.counter("server.shed_queue_full"),
               scope_.counter("server.shed_deadline"),
               scope_.counter("server.hot_reports"),
               scope_.counter("server.augments"),
               scope_.counter("server.augment_failures")},
      admission_(config_.admission) {
  if (source_ == nullptr) throw std::invalid_argument("ServerAgent: null source");
  if (config_.depots.empty()) throw std::invalid_argument("ServerAgent: no depots");
  if (config_.processors < 1) throw std::invalid_argument("ServerAgent: processors < 1");
  if (config_.generator_lanes < 1) {
    throw std::invalid_argument("ServerAgent: generator_lanes < 1");
  }
}

SimDuration ServerAgent::generation_cost() const {
  const auto& cfg = source_->lattice().config();
  const double pixels = static_cast<double>(cfg.view_set_span) * cfg.view_set_span *
                        static_cast<double>(cfg.view_resolution) * cfg.view_resolution;
  // Lanes split the cluster evenly: one lane gets all processors (the seed
  // behaviour); N lanes each render on 1/N of the cluster.
  const int procs = std::max(1, config_.processors / config_.generator_lanes);
  const double render_s = pixels / (config_.pixels_per_sec_per_proc * procs);
  // Raw pixels are written once and the compressed output once more.
  const double io_s = pixels * 3.0 * 1.2 / config_.io_bytes_per_sec;
  return from_seconds(render_s + io_s);
}

void ServerAgent::generate_async(const lightfield::ViewSetId& id,
                                 GenerateCallback on_done) {
  generate_with_status_async(
      id, [cb = std::move(on_done)](GenerateStatus status, const exnode::ExNode& exnode) {
        cb(status == GenerateStatus::kOk, exnode);
      });
}

void ServerAgent::generate_with_status_async(const lightfield::ViewSetId& id,
                                             GenerateStatusCallback on_done) {
  if (!source_->lattice().valid(id)) {
    sim_.after(0, [cb = std::move(on_done)] { cb(GenerateStatus::kFailed, exnode::ExNode{}); });
    return;
  }
  metrics_.requests.inc();

  // Admission: the queue depth counts waiting requests; the completion
  // estimate is one generation when a lane is free, two when every lane is
  // busy (at best we finish behind the request occupying it). Requester
  // identity does not survive the DVS hop, so the token buckets keyed here
  // would see one aggregate requester — fairness runs at the client agent.
  const SimDuration est =
      generation_cost() * (active_ < config_.generator_lanes ? 1 : 2);
  const AdmissionDecision decision =
      admission_.admit(0, sim_.now(), pending_.size(), est, config_.deadline);
  if (decision != AdmissionDecision::kAdmit) {
    metrics_.sheds.inc();
    if (decision == AdmissionDecision::kShedQueueFull) {
      metrics_.shed_queue_full.inc();
    } else if (decision == AdmissionDecision::kShedDeadline) {
      metrics_.shed_deadline.inc();
    }
    const obs::SpanId shed = obs_.trace.instant("server.shed", sim_.now());
    obs_.trace.arg(shed, "view_set", id.key());
    obs_.trace.arg(shed, "reason", to_string(decision));
    sim_.after(0, [cb = std::move(on_done)] { cb(GenerateStatus::kShed, exnode::ExNode{}); });
    return;
  }

  // Parent is whatever the forwarding DVS left ambient; the span covers
  // queue wait as well as the render/upload/update pipeline.
  const obs::SpanId span = obs_.trace.begin("server.generate", sim_.now());
  obs_.trace.arg(span, "view_set", id.key());
  pending_.push_back(Request{id, std::move(on_done), span});
  maybe_start();
}

void ServerAgent::note_hot(const lightfield::ViewSetId& id, const exnode::ExNode& exnode) {
  if (config_.augment_threshold <= 0) return;
  metrics_.hot_reports.inc();
  if (++hot_counts_[id] < config_.augment_threshold) return;
  hot_counts_[id] = 0;
  const SimTime now = sim_.now();
  auto [it, fresh] = augment_not_before_.try_emplace(id, 0);
  if (!fresh && now < it->second) return;  // cooling down — no replica flapping
  // The cooldown gate closes *before* the asynchronous augment runs, so a
  // burst of threshold crossings during the copy triggers exactly one fanout.
  it->second = now + config_.augment_cooldown;
  augment(id, exnode);
}

void ServerAgent::augment(const lightfield::ViewSetId& id, const exnode::ExNode& exnode) {
  const std::vector<std::string>& pool =
      config_.augment_depots.empty() ? config_.depots : config_.augment_depots;
  const std::string& target = pool[augment_rr_++ % pool.size()];

  const obs::SpanId span = obs_.trace.begin("server.augment", sim_.now());
  obs_.trace.arg(span, "view_set", id.key());
  obs_.trace.arg(span, "depot", target);

  lors::AugmentOptions options;
  options.target_depot = target;
  options.lease = config_.lease;
  options.alloc_type = ibp::AllocType::kSoft;
  options.net = config_.net;
  options.parent_span = span;
  lors_.augment_async(
      node_, exnode, options, [this, id, span](const lors::AugmentResult& result) {
        if (result.status != lors::LorsStatus::kOk || result.extents_copied == 0) {
          LON_LOG(kWarn, "server-agent")
              << "augment of " << id.key() << " failed: " << lors::to_string(result.status);
          metrics_.augment_failures.inc();
          obs_.trace.arg(span, "outcome", "failed");
          obs_.trace.end(span, sim_.now());
          return;
        }
        metrics_.augments.inc();
        obs_.trace.arg(span, "outcome", "ok");
        // The DVS learns the widened exNode so subsequent queries resolve to
        // the extra replicas.
        dvs_.update_async(node_, id, result.exnode, [this, span] {
          obs_.trace.end(span, sim_.now());
        });
      });
}

void ServerAgent::maybe_start() {
  // LIFO: the scheduler "chooses the latest request to assign to the
  // generator" — the newest request is what the interactive user wants now.
  // With several lanes, the newest requests occupy them newest-first.
  while (active_ < config_.generator_lanes && !pending_.empty()) {
    ++active_;
    Request request = std::move(pending_.back());
    pending_.pop_back();
    run_one(std::move(request));
  }
}

void ServerAgent::run_one(Request request) {
  // The generator occupies the cluster for the modeled generation time;
  // the actual pixel content is produced by the source.
  sim_.after(generation_cost(), [this, request = std::move(request)]() mutable {
    Bytes compressed = source_->build_compressed(request.id, config_.chunk_bytes,
                                                 config_.pool, config_.lfz2);
    metrics_.generated.inc();

    lors::UploadOptions upload;
    upload.depots = config_.depots;
    upload.replicas = config_.replicas;
    upload.block_bytes = config_.block_bytes;
    upload.lease = config_.lease;
    upload.net = config_.net;
    // The upload's span chains under server.generate via the ambient
    // register (upload_async opens its span before returning).
    const obs::Tracer::Ambient ambient(obs_.trace, request.span);
    lors_.upload_async(
        node_, std::move(compressed), upload,
        [this, request = std::move(request)](const lors::UploadResult& result) mutable {
          if (result.status != lors::LorsStatus::kOk) {
            LON_LOG(kWarn, "server-agent")
                << "upload of " << request.id.key() << " failed: "
                << lors::to_string(result.status);
            metrics_.upload_failures.inc();
            obs_.trace.arg(request.span, "outcome", "upload_failed");
            obs_.trace.end(request.span, sim_.now());
            request.on_done(GenerateStatus::kFailed, exnode::ExNode{});
            --active_;
            maybe_start();
            return;
          }
          exnode::ExNode exnode = result.exnode;
          exnode.metadata()["viewset"] = request.id.key();
          // "a copy is sent to the client agent and the pool of server
          // depots, and the DVS is updated" — the DVS update happens here;
          // the requester receives the exNode through the callback chain.
          dvs_.update_async(node_, request.id, exnode,
                            [this, request = std::move(request), exnode]() mutable {
                              obs_.trace.end(request.span, sim_.now());
                              request.on_done(GenerateStatus::kOk, exnode);
                              --active_;
                              maybe_start();
                            });
        });
  });
}

}  // namespace lon::streaming
