// Cooperative site cache — the per-site depot cache index (ROADMAP's
// thousand-user item, in the spirit of the LBNL DPSS network data caches).
//
// Every client agent behind one LAN registers against a shared SiteCache.
// When any of them stages a view set onto a site depot it publishes the
// resulting exNode here, so every co-sited agent discovers the copy and
// serves it LAN-locally instead of restaging the same bytes over the WAN.
// Three mechanisms keep the index honest:
//
//   * single-flight restage coalescing — N agents racing to (re)stage the
//     same (ViewSetId, lod) collapse to one WAN fetch: the first caller of
//     begin_restage becomes the leader and performs the copy, everyone else
//     queues a callback that fires when the leader calls finish_restage;
//   * lease-aware invalidation — entries carry the staging lease's expiry;
//     at that instant (a simulator timer, plus a lazy check on every
//     lookup) the entry is dropped and every registered listener is told,
//     so all co-sited agents forget the copy atomically: there is no
//     stale-serve window in which one agent still trusts a dead replica;
//   * capacity-bounded eviction — an optional byte budget over the tracked
//     copies, evicted LRU. Eviction only forgets the *index* entry (the
//     stager's own replica and lease stay valid), so it does not fan out.
//
// Thread safety: the index is mutex-guarded and the counters are atomic —
// agents on the simulator thread and tests hammering from a pool may call
// concurrently. Listener and restage callbacks are invoked outside the
// lock. Expiry timers touch the simulator and are therefore only scheduled
// when config.expiry_timers is set (off in the multi-threaded hammer).
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "exnode/exnode.hpp"
#include "lightfield/viewset.hpp"
#include "obs/obs.hpp"
#include "simnet/simulator.hpp"

namespace lon::streaming {

struct SiteCacheConfig {
  /// Byte budget over the tracked site copies; 0 = unbounded.
  std::uint64_t capacity_bytes = 0;
  /// Schedule a simulator timer at each entry's expiry so the whole site
  /// drops the copy the instant its lease runs out (not just on the next
  /// lookup). Disable for multi-threaded index hammers: the simulator is
  /// not thread-safe, the index is.
  bool expiry_timers = true;
};

class SiteCache {
 public:
  /// Compatibility view over the obs registry counters (site.*).
  struct Stats {
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t publishes = 0;
    std::uint64_t invalidations = 0;   ///< explicit invalidate() fanouts
    std::uint64_t expirations = 0;     ///< lease-expiry fanouts (timer or lazy)
    std::uint64_t evictions = 0;       ///< capacity evictions (no fanout)
    std::uint64_t restage_leaders = 0; ///< begin_restage calls that led
    std::uint64_t restage_joins = 0;   ///< begin_restage calls that joined
    std::uint64_t restage_keys = 0;    ///< distinct (id, lod) keys ever restaged
    std::size_t entries = 0;           ///< resident index entries now
    std::uint64_t bytes = 0;           ///< tracked payload bytes now
  };

  /// Fanout on expiry/invalidation: every co-sited agent drops its own
  /// derived state (staged entry, cached exNode) for (id, lod).
  using InvalidateListener =
      std::function<void(const lightfield::ViewSetId& id, int lod)>;
  /// Completion of a coalesced restage a follower joined.
  using RestageCallback = std::function<void(bool ok, const exnode::ExNode& exnode)>;

  SiteCache(sim::Simulator& sim, SiteCacheConfig config = {},
            obs::Context* obs = nullptr);

  /// Registers an agent's invalidation listener; returns a removal token.
  std::size_t add_listener(InvalidateListener listener);
  void remove_listener(std::size_t token);

  /// Looks `id` up at tier `lod`. A lease already past expiry is dropped
  /// here (and fanned out) before the miss is reported, so even with
  /// timers off no caller can be served a dead copy.
  [[nodiscard]] std::optional<exnode::ExNode> lookup(const lightfield::ViewSetId& id,
                                                     int lod = 0);
  [[nodiscard]] bool contains(const lightfield::ViewSetId& id, int lod = 0) const;

  /// Publishes a freshly staged copy: `bytes` is its payload size (feeds
  /// the capacity budget), `expires_at` the staging lease's end.
  void publish(const lightfield::ViewSetId& id, int lod, const exnode::ExNode& exnode,
               std::uint64_t bytes, SimTime expires_at);

  /// Drops the entry and tells every listener the copy is dead (an agent
  /// saw a download from it fail). Safe when absent — the fanout still
  /// runs, so all co-sited agents drop their derived state together.
  void invalidate(const lightfield::ViewSetId& id, int lod = 0);

  /// Single-flight: returns true if the caller is the leader for
  /// (id, lod) and must perform the WAN copy itself (`on_done` is NOT
  /// queued for a leader). Returns false if a restage is already in
  /// flight; `on_done` then fires when the leader finishes.
  bool begin_restage(const lightfield::ViewSetId& id, int lod, RestageCallback on_done);
  /// Leader's completion: resolves every queued follower callback.
  void finish_restage(const lightfield::ViewSetId& id, int lod, bool ok,
                      const exnode::ExNode& exnode);

  [[nodiscard]] const Stats& stats() const;
  [[nodiscard]] std::size_t size() const;

 private:
  struct Key {
    lightfield::ViewSetId id;
    int lod = 0;
    bool operator==(const Key& other) const {
      return id == other.id && lod == other.lod;
    }
  };
  struct KeyHash {
    std::size_t operator()(const Key& key) const {
      return lightfield::ViewSetIdHash{}(key.id) * 31u +
             static_cast<std::size_t>(key.lod);
    }
  };
  struct Entry {
    exnode::ExNode exnode;
    std::uint64_t bytes = 0;
    SimTime expires_at = 0;
    std::uint64_t generation = 0;  ///< republish invalidates older timers
    std::list<Key>::iterator lru;  ///< position in lru_ (front = most recent)
  };
  struct Flight {
    std::vector<RestageCallback> waiters;
  };

  struct Metrics {
    obs::Counter& lookups;
    obs::Counter& hits;
    obs::Counter& misses;
    obs::Counter& publishes;
    obs::Counter& invalidations;
    obs::Counter& expirations;
    obs::Counter& evictions;
    obs::Counter& restage_leaders;
    obs::Counter& restage_joins;
    obs::Counter& restage_keys;
    obs::Gauge& entries;
    obs::Gauge& bytes;
  };

  /// Removes `it` from the index under mutex_ (caller holds it).
  void erase_locked(std::unordered_map<Key, Entry, KeyHash>::iterator it);
  /// Timer body: expire (key, generation) if still current.
  void expire_if_current(const Key& key, std::uint64_t generation);
  /// Snapshot of the listeners (under mutex_) for an outside-lock fanout.
  [[nodiscard]] std::vector<InvalidateListener> listeners_locked() const;
  void fanout(const std::vector<InvalidateListener>& listeners, const Key& key);

  sim::Simulator& sim_;
  SiteCacheConfig config_;
  obs::Context& obs_;
  obs::Scope scope_;
  Metrics metrics_;

  mutable std::mutex mutex_;
  std::unordered_map<Key, Entry, KeyHash> entries_;
  std::list<Key> lru_;  ///< front = most recently used
  std::uint64_t bytes_ = 0;
  std::uint64_t generation_ = 0;
  std::unordered_map<Key, Flight, KeyHash> flights_;
  std::unordered_set<Key, KeyHash> restaged_keys_;
  std::unordered_map<std::size_t, InvalidateListener> listeners_;
  std::size_t next_listener_ = 0;

  mutable Stats stats_view_;
};

}  // namespace lon::streaming
