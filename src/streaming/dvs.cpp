#include "streaming/dvs.hpp"

#include <stdexcept>
#include <string>

namespace lon::streaming {

DvsServer::DvsServer(sim::Simulator& sim, sim::Network& net, sim::NodeId node,
                     const lightfield::SphericalLattice& lattice, DvsConfig config,
                     obs::Context* obs)
    : sim_(sim),
      net_(net),
      node_(node),
      config_(config),
      obs_(obs != nullptr ? *obs : obs::global()),
      scope_(obs_.metrics.scope("dvs")),
      metrics_{scope_.counter("dvs.queries"),    scope_.counter("dvs.hits"),
               scope_.counter("dvs.misses"),     scope_.counter("dvs.forwarded"),
               scope_.counter("dvs.updates"),    scope_.counter("dvs.levels_visited"),
               scope_.counter("dvs.generation_shed"), scope_.counter("dvs.hot_reports")} {
  if (config_.leaf_capacity == 0) throw std::invalid_argument("DvsServer: leaf capacity 0");
  if (config_.shards == 0) throw std::invalid_argument("DvsServer: shard count 0");
  Region whole{0, static_cast<int>(lattice.view_set_rows()), 0,
               static_cast<int>(lattice.view_set_cols())};
  depth_ = 1;
  // Each shard's tree spans the whole grid but holds only ~1/K of the
  // entries, so leaves are sized leaf_capacity * K to keep per-leaf density
  // (and therefore tree depth and per-query hop counts) comparable to the
  // unsharded table. With shards == 1 this builds the exact classic tree.
  shards_.resize(config_.shards);
  for (std::size_t k = 0; k < config_.shards; ++k) {
    Shard& shard = shards_[k];
    shard.depth = 1;
    shard.root =
        build_tree(whole, config_.leaf_capacity * config_.shards, &shard.depth, 1);
    depth_ = std::max(depth_, shard.depth);
    if (config_.shards > 1) {
      const obs::Scope shard_scope(obs_.metrics,
                                   scope_.labels() + ",shard=" + std::to_string(k));
      shard.queries = &shard_scope.counter("dvs.shard.queries");
      shard.hits = &shard_scope.counter("dvs.shard.hits");
      shard.waits = &shard_scope.counter("dvs.shard.waits");
    }
  }
}

std::unique_ptr<DvsServer::Node> DvsServer::build_tree(const Region& region,
                                                       std::size_t leaf_capacity,
                                                       int* depth_out, int depth) {
  auto node = std::make_unique<Node>();
  node->region = region;
  *depth_out = std::max(*depth_out, depth);
  if (region.count() <= leaf_capacity) return node;

  // Split the longer axis in half.
  const int rows = region.row1 - region.row0;
  const int cols = region.col1 - region.col0;
  Region a = region;
  Region b = region;
  if (rows >= cols) {
    const int mid = region.row0 + rows / 2;
    a.row1 = mid;
    b.row0 = mid;
  } else {
    const int mid = region.col0 + cols / 2;
    a.col1 = mid;
    b.col0 = mid;
  }
  node->children.push_back(build_tree(a, leaf_capacity, depth_out, depth + 1));
  node->children.push_back(build_tree(b, leaf_capacity, depth_out, depth + 1));
  return node;
}

DvsServer::Node* DvsServer::descend(const lightfield::ViewSetId& id, int* levels) {
  Node* node = shards_[shard_of(id)].root.get();
  *levels = 1;
  if (!node->region.contains(id)) return nullptr;
  while (!node->children.empty()) {
    Node* next = nullptr;
    for (const auto& child : node->children) {
      if (child->region.contains(id)) {
        next = child.get();
        break;
      }
    }
    if (next == nullptr) return nullptr;  // cannot happen with a well-formed tree
    node = next;
    ++*levels;
  }
  return node;
}

void DvsServer::install(const lightfield::ViewSetId& id, exnode::ExNode exnode) {
  int levels = 0;
  Node* leaf = descend(id, &levels);
  if (leaf == nullptr) throw std::out_of_range("DvsServer: id outside view-set grid");
  leaf->entries.insert_or_assign(id, std::move(exnode));
}

bool DvsServer::knows(const lightfield::ViewSetId& id) const {
  int levels = 0;
  Node* leaf = const_cast<DvsServer*>(this)->descend(id, &levels);
  return leaf != nullptr && leaf->entries.contains(id);
}

void DvsServer::query_async(sim::NodeId from, const lightfield::ViewSetId& id,
                            bool generate_if_missing, QueryCallback on_done) {
  // The span opens at the caller's side of the hop (while the caller's
  // ambient parent is still live) and covers the full round trip.
  const obs::SpanId span = obs_.trace.begin("dvs.query", sim_.now());
  obs_.trace.arg(span, "view_set", id.key());
  const SimDuration to_server = net_.path_latency(from, node_);
  sim_.after(to_server, [this, from, id, generate_if_missing, span,
                         cb = std::move(on_done)]() mutable {
    metrics_.queries.inc();
    Shard& shard = shards_[shard_of(id)];
    if (shard.queries != nullptr) shard.queries->inc();
    int levels = 0;
    Node* leaf = descend(id, &levels);
    metrics_.levels_visited.inc(static_cast<std::uint64_t>(levels));
    // Serial service: the shard works one query at a time, so a burst to the
    // same shard queues while other shards answer in parallel. shard_service
    // of 0 never waits — classic uncontended-directory timing.
    SimDuration wait = 0;
    if (config_.shard_service > 0) {
      const SimTime now = sim_.now();
      if (shard.busy_until > now) {
        wait = shard.busy_until - now;
        if (shard.waits != nullptr) shard.waits->inc();
      }
      shard.busy_until = now + wait + config_.shard_service;
    }
    const SimDuration lookup =
        wait + static_cast<SimDuration>(levels) * config_.level_overhead;
    const SimDuration back = net_.path_latency(node_, from);

    if (leaf != nullptr) {
      auto it = leaf->entries.find(id);
      if (it != leaf->entries.end()) {
        metrics_.hits.inc();
        if (shard.hits != nullptr) shard.hits->inc();
        QueryResult result;
        result.found = true;
        result.exnode = it->second;
        result.levels = levels;
        sim_.after(lookup + back, [this, span, result, cb] {
          obs_.trace.arg(span, "outcome", "hit");
          obs_.trace.end(span, sim_.now());
          cb(result);
        });
        return;
      }
    }

    if (!generate_if_missing || agent_ == nullptr || leaf == nullptr) {
      metrics_.misses.inc();
      QueryResult result;
      result.levels = levels;
      sim_.after(lookup + back, [this, span, result, cb] {
        obs_.trace.arg(span, "outcome", "miss");
        obs_.trace.end(span, sim_.now());
        cb(result);
      });
      return;
    }

    // Server-agent table: forward for runtime generation. "The DVS then
    // forwards the request to the right server agent for generation and
    // uploading of the view set at runtime. It updates the exNode table with
    // the exNode returned by the server agent."
    metrics_.forwarded.inc();
    sim_.after(lookup, [this, id, levels, back, span, cb = std::move(cb)]() mutable {
      // Ambient parent for the server agent's generate span: the forward is
      // a synchronous call, so the register survives exactly long enough.
      const obs::Tracer::Ambient ambient(obs_.trace, span);
      agent_->generate_with_status_async(
          id, [this, id, levels, back, span,
               cb = std::move(cb)](GenerateStatus status, const exnode::ExNode& exnode) {
            QueryResult result;
            result.levels = levels;
            if (status == GenerateStatus::kOk) {
              install(id, exnode);
              metrics_.updates.inc();
              result.found = true;
              result.exnode = exnode;
            } else if (status == GenerateStatus::kShed) {
              // Overload, not absence: the caller should back off and retry
              // rather than give up or repair anything.
              metrics_.generation_shed.inc();
              result.shed = true;
            } else {
              metrics_.misses.inc();
            }
            sim_.after(back, [this, span, status, result, cb] {
              obs_.trace.arg(span, "outcome",
                             status == GenerateStatus::kOk     ? "generated"
                             : status == GenerateStatus::kShed ? "shed"
                                                               : "miss");
              obs_.trace.end(span, sim_.now());
              cb(result);
            });
          });
    });
  });
}

void DvsServer::update_async(sim::NodeId from, const lightfield::ViewSetId& id,
                             exnode::ExNode exnode, std::function<void()> on_done) {
  const SimDuration rtt = net_.rtt(from, node_);
  sim_.after(rtt, [this, id, exnode = std::move(exnode),
                   cb = std::move(on_done)]() mutable {
    install(id, std::move(exnode));
    metrics_.updates.inc();
    if (cb) cb();
  });
}

void DvsServer::report_hot_async(sim::NodeId from, const lightfield::ViewSetId& id) {
  // One-way control message; nothing to reply. The relay to the server
  // agent is a local call on the DVS node, charging only the lookup.
  const SimDuration to_server = net_.path_latency(from, node_);
  sim_.after(to_server, [this, id] {
    metrics_.hot_reports.inc();
    if (agent_ == nullptr) return;
    int levels = 0;
    Node* leaf = descend(id, &levels);
    if (leaf == nullptr) return;
    auto it = leaf->entries.find(id);
    if (it == leaf->entries.end()) return;  // nothing to augment yet
    const SimDuration lookup = static_cast<SimDuration>(levels) * config_.level_overhead;
    sim_.after(lookup, [this, id, exnode = it->second] { agent_->note_hot(id, exnode); });
  });
}

const DvsServer::Stats& DvsServer::stats() const {
  stats_view_.queries = metrics_.queries.value();
  stats_view_.hits = metrics_.hits.value();
  stats_view_.misses = metrics_.misses.value();
  stats_view_.forwarded = metrics_.forwarded.value();
  stats_view_.updates = metrics_.updates.value();
  stats_view_.levels_visited = metrics_.levels_visited.value();
  stats_view_.generation_shed = metrics_.generation_shed.value();
  stats_view_.hot_reports = metrics_.hot_reports.value();
  return stats_view_;
}

}  // namespace lon::streaming
