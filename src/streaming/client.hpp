// The client — the graphical console the user interacts with.
//
// "The client process appears as the graphical interface interacting with
// the user. It takes user input and renders the desired view, if that view
// is within the current view set that is locally stored. Otherwise, it asks
// the client agent to request new view sets and waits for the agent to
// update it. The view sets received by the client are then decompressed."
//
// The client and agent are distinct machines on a LAN: every delivery pays
// the agent-to-client transfer. Decompression is real lfz work; the virtual
// time charged for it is either the measured wall time of that work
// (benchmarks, figure 8) or a modeled bytes/rate cost (deterministic tests).
#pragma once

#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "lightfield/renderer.hpp"
#include "streaming/client_agent.hpp"
#include "streaming/types.hpp"

namespace lon::streaming {

struct ClientConfig {
  std::size_t display_resolution = 200;  ///< client frame size
  int keep_view_sets = 1;                ///< decompressed sets held locally
  enum class Timing { kModeled, kMeasured };
  Timing timing = Timing::kModeled;
  /// Modeled decompression throughput, in *uncompressed output* bytes/s.
  /// 30 MB/s lands the 200^2..500^2 view sets in the paper's 0.15-1.8 s band.
  double decompress_bytes_per_sec = 30e6;
  /// When false, delivered bytes are not actually decoded (a blank view set
  /// is installed and decompression time is modeled from the view-set
  /// geometry). For communication-latency studies over filler databases.
  bool decode = true;
  /// Modeled decoder parallelism when replaying a pipelined delivery's chunk
  /// schedule (agent-side overlap). Fixed rather than derived from the host
  /// core count so modeled runs are machine-independent.
  int modeled_decode_workers = 4;
  sim::TransferOptions lan_net;          ///< client <-> agent transfers

  /// Retry discipline for kShed deliveries: the serving tier refused under
  /// load, so the client waits out a jittered backoff and asks again —
  /// crucially *without* touching the depot-failure machinery (no failover,
  /// no exNode repair: nothing is broken, the system is busy). max_attempts
  /// counts total tries; the default gives three backed-off retries.
  lors::RetryPolicy shed_retry{.max_attempts = 4, .base_backoff = 100 * kMillisecond};
  std::uint64_t shed_retry_seed = 0;     ///< jitter stream (0 = derive from node id)
};

class Client {
 public:
  Client(sim::Simulator& sim, sim::Network& net, const lightfield::LatticeConfig& lattice,
         sim::NodeId node, ClientAgent& agent, ClientConfig config,
         obs::Context* obs = nullptr);

  /// Points the view at `dir`. If the containing view set is locally loaded
  /// the call completes immediately; otherwise it requests the view set from
  /// the agent and completes (in virtual time) once the set is decompressed
  /// and renderable. Calling again while a request is pending supersedes any
  /// earlier queued target (the user moved on).
  void set_view(const Spherical& dir, std::function<void(bool ok)> on_ready = {});

  /// Renders the current view (table lookups only). Falls back to the
  /// nearest loaded sample view when interpolation would need a neighbour
  /// set that is not resident.
  [[nodiscard]] render::ImageRGB8 render_frame() const;

  [[nodiscard]] const Spherical& view_direction() const { return direction_; }
  [[nodiscard]] const std::vector<AccessRecord>& accesses() const { return accesses_; }
  [[nodiscard]] const lightfield::Renderer& renderer() const { return renderer_; }
  [[nodiscard]] bool request_pending() const { return pending_.has_value(); }

 private:
  struct PendingRequest {
    lightfield::ViewSetId id;
    SimTime requested = 0;
    std::vector<std::function<void(bool)>> callbacks;
    obs::SpanId span = 0;  ///< client.request — root of the access lifeline
    int shed_attempts = 0; ///< tries answered with kShed so far
  };

  struct Metrics {
    obs::Counter& accesses;
    obs::Counter& hits;
    obs::Counter& lan;
    obs::Counter& wan;
    obs::Counter& pipelined;
    obs::LatencyHistogram& total_ns;
    obs::LatencyHistogram& comm_ns;
    obs::LatencyHistogram& decompress_ns;
    obs::LatencyHistogram& comm_hit_ns;
    obs::LatencyHistogram& comm_lan_ns;
    obs::LatencyHistogram& comm_wan_ns;
    obs::Counter& shed_retries;          ///< session.shed_retries
    obs::LatencyHistogram& shed_wait_ns; ///< session.shed_wait_ns (per backoff)
  };

  void begin_request(const lightfield::ViewSetId& id, std::function<void(bool)> cb);
  /// Sends (or re-sends) the pending request to the agent.
  void send_request(const lightfield::ViewSetId& id, obs::SpanId span);
  void on_delivery(const ClientAgent::Delivery& delivery);
  /// Mirrors the AccessRecord into the session.* registry metrics.
  void record_access(const AccessRecord& record);
  void install_view_set(lightfield::ViewSet vs);

  [[nodiscard]] SimDuration charge_decompress(const Bytes& compressed,
                                              const lightfield::ViewSetId& id,
                                              lightfield::ViewSet& out) const;

  sim::Simulator& sim_;
  sim::Network& net_;
  sim::NodeId node_;
  ClientAgent& agent_;
  ClientConfig config_;
  obs::Context& obs_;
  obs::Scope scope_;
  Metrics metrics_;

  Rng shed_rng_;  ///< jitter stream for shed-retry backoff
  lightfield::Renderer renderer_;
  std::deque<lightfield::ViewSetId> resident_;  // eviction order (FIFO)
  Spherical direction_;
  std::optional<PendingRequest> pending_;
  std::optional<std::pair<Spherical, std::function<void(bool)>>> queued_;
  std::vector<AccessRecord> accesses_;
};

}  // namespace lon::streaming
