// The Dictionary of View Sets (DVS) — paper section 3.6.
//
// "The DVS server maintains two types of look-up tables: the (i) exNode
// table and the (ii) server agent table. ... In view of the large size of
// exNode tables, the DVS server is implemented in a hierarchical fashion for
// efficient queries. Any query will go through all levels recursively until
// the request is fulfilled. ... In some respects, the DVS service in our
// system is quite similar to the Domain Name Service (DNS)."
//
// We implement the hierarchy as a spatial tree over the view-set grid: each
// internal node routes a query to the child whose region contains the id,
// each hop charging a lookup overhead; leaves hold the exNode entries. On a
// miss the query falls through to the server-agent table: the registered
// generator renders the view set at runtime, uploads it, and the exNode
// table is updated before the reply returns.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "exnode/exnode.hpp"
#include "lightfield/lattice.hpp"
#include "obs/obs.hpp"
#include "simnet/network.hpp"

namespace lon::streaming {

/// Why a runtime-generation request did not return an exNode. kShed is an
/// explicit overload response — the generator's admission control refused
/// the work — and must not be confused with kFailed (invalid id, upload
/// failure): a shed request is worth retrying, a failed one is not.
enum class GenerateStatus { kOk, kFailed, kShed };

/// The server-agent side of the DVS miss path (implemented by ServerAgent).
class GeneratorService {
 public:
  virtual ~GeneratorService() = default;

  using GenerateCallback =
      std::function<void(bool ok, const exnode::ExNode& exnode)>;
  using GenerateStatusCallback =
      std::function<void(GenerateStatus status, const exnode::ExNode& exnode)>;

  /// Renders + uploads the view set, returning its new exNode.
  virtual void generate_async(const lightfield::ViewSetId& id,
                              GenerateCallback on_done) = 0;

  /// Status-carrying variant: distinguishes an admission-control shed from a
  /// hard failure. The default bridges to generate_async so existing
  /// generators (which never shed) keep working unchanged.
  virtual void generate_with_status_async(const lightfield::ViewSetId& id,
                                          GenerateStatusCallback on_done) {
    generate_async(id, [cb = std::move(on_done)](bool ok, const exnode::ExNode& exnode) {
      cb(ok ? GenerateStatus::kOk : GenerateStatus::kFailed, exnode);
    });
  }

  /// Demand-pressure signal: the client side is shedding or degrading
  /// requests for this view set. A generator may react by fanning the view
  /// set's replicas out to more depots (CDN-style tiering). Default: ignore.
  virtual void note_hot(const lightfield::ViewSetId& id, const exnode::ExNode& exnode) {
    (void)id;
    (void)exnode;
  }
};

/// DVS tuning knobs.
struct DvsConfig {
  std::size_t leaf_capacity = 16;                   ///< view-set entries per leaf
  SimDuration level_overhead = 200 * kMicrosecond;  ///< per-hop lookup cost
  /// Lookup-table shards. The exNode table is partitioned by ViewSetId hash
  /// into `shards` independent spatial trees, each holding ~1/K of the
  /// entries (leaves sized leaf_capacity * shards keep per-leaf density
  /// unchanged), so directory queries from a crowd fan out instead of
  /// serializing. 1 = the classic single-table server, bit-identical to the
  /// pre-shard behaviour.
  std::size_t shards = 1;
  /// Serial service time a query occupies its shard for. 0 (default) models
  /// an uncontended directory — no queueing, identical to pre-shard timing.
  /// When set, concurrent queries to the *same* shard queue behind each
  /// other while different shards proceed in parallel — this is what makes
  /// sharding observable as a latency win under a flash crowd.
  SimDuration shard_service = 0;
};

class DvsServer {
 public:
  struct Stats {
    std::uint64_t queries = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;          ///< not found and no generation requested
    std::uint64_t forwarded = 0;       ///< sent to the server-agent table
    std::uint64_t updates = 0;
    std::uint64_t levels_visited = 0;  ///< cumulative hops over all queries
    std::uint64_t generation_shed = 0; ///< forwarded queries the generator shed
    std::uint64_t hot_reports = 0;     ///< demand-pressure reports relayed
  };

  DvsServer(sim::Simulator& sim, sim::Network& net, sim::NodeId node,
            const lightfield::SphericalLattice& lattice, DvsConfig config = {},
            obs::Context* obs = nullptr);

  [[nodiscard]] sim::NodeId node() const { return node_; }
  [[nodiscard]] int tree_depth() const { return depth_; }

  /// Registers the generator behind the server-agent table.
  void register_server_agent(GeneratorService* agent) { agent_ = agent; }

  /// Installs an exNode directly (offline database publication).
  void install(const lightfield::ViewSetId& id, exnode::ExNode exnode);

  [[nodiscard]] bool knows(const lightfield::ViewSetId& id) const;

  struct QueryResult {
    bool found = false;
    exnode::ExNode exnode;
    int levels = 0;   ///< tree hops this query made
    bool shed = false; ///< the generator shed the request (overload, retryable)
  };
  using QueryCallback = std::function<void(const QueryResult&)>;

  /// Looks up the exNode for `id` on behalf of a client at `from`.
  /// Charges the control round trip plus per-level lookup overhead. When the
  /// id is unknown and `generate_if_missing` is set and a server agent is
  /// registered, the request is forwarded for runtime generation.
  void query_async(sim::NodeId from, const lightfield::ViewSetId& id,
                   bool generate_if_missing, QueryCallback on_done);

  /// Remote update (e.g. from a server agent after generation).
  void update_async(sim::NodeId from, const lightfield::ViewSetId& id,
                    exnode::ExNode exnode, std::function<void()> on_done);

  /// Demand-pressure report from a client agent: `id` is being shed or
  /// degraded faster than it is served. Fire-and-forget control traffic —
  /// the DVS relays it (with the known exNode) to the server-agent table,
  /// which may augment the view set's replicas.
  void report_hot_async(sim::NodeId from, const lightfield::ViewSetId& id);

  /// Compatibility view over the obs registry counters.
  [[nodiscard]] const Stats& stats() const;

 private:
  struct Metrics {
    obs::Counter& queries;
    obs::Counter& hits;
    obs::Counter& misses;
    obs::Counter& forwarded;
    obs::Counter& updates;
    obs::Counter& levels_visited;
    obs::Counter& generation_shed;
    obs::Counter& hot_reports;
  };

  struct Region {
    int row0 = 0, row1 = 0, col0 = 0, col1 = 0;  // half-open view-set ranges

    [[nodiscard]] bool contains(const lightfield::ViewSetId& id) const {
      return id.row >= row0 && id.row < row1 && id.col >= col0 && id.col < col1;
    }
    [[nodiscard]] std::size_t count() const {
      return static_cast<std::size_t>(row1 - row0) * static_cast<std::size_t>(col1 - col0);
    }
  };

  struct Node {
    Region region;
    std::vector<std::unique_ptr<Node>> children;  // empty = leaf
    std::unordered_map<lightfield::ViewSetId, exnode::ExNode, lightfield::ViewSetIdHash>
        entries;  // leaves only
  };

  /// One hash partition of the exNode table: its own spatial tree plus (when
  /// sharded) per-shard dvs.shard.* counters and a serial-service horizon.
  struct Shard {
    std::unique_ptr<Node> root;
    int depth = 1;
    SimTime busy_until = 0;            ///< serial service: shard free again at
    obs::Counter* queries = nullptr;   ///< dvs.shard.queries (shards > 1 only)
    obs::Counter* hits = nullptr;      ///< dvs.shard.hits    (shards > 1 only)
    obs::Counter* waits = nullptr;     ///< dvs.shard.waits   (shards > 1 only)
  };

  static std::unique_ptr<Node> build_tree(const Region& region, std::size_t leaf_capacity,
                                          int* depth_out, int depth);

  [[nodiscard]] std::size_t shard_of(const lightfield::ViewSetId& id) const {
    return lightfield::ViewSetIdHash{}(id) % shards_.size();
  }

  /// Walks the id's shard root -> leaf; returns the leaf and the hop count.
  Node* descend(const lightfield::ViewSetId& id, int* levels);

  sim::Simulator& sim_;
  sim::Network& net_;
  sim::NodeId node_;
  DvsConfig config_;
  obs::Context& obs_;
  obs::Scope scope_;
  Metrics metrics_;
  std::vector<Shard> shards_;
  int depth_ = 1;  ///< max tree depth over all shards
  GeneratorService* agent_ = nullptr;
  mutable Stats stats_view_;
};

}  // namespace lon::streaming
