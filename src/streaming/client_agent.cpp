#include "streaming/client_agent.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "streaming/site_cache.hpp"
#include "util/log.hpp"

namespace lon::streaming {

const char* to_string(AccessClass cls) {
  switch (cls) {
    case AccessClass::kAgentHit:
      return "hit";
    case AccessClass::kLanDepot:
      return "lan-depot";
    case AccessClass::kWan:
      return "wan";
    case AccessClass::kGenerated:
      return "generated";
  }
  return "?";
}

const char* to_string(DegradeLevel level) {
  switch (level) {
    case DegradeLevel::kFull:
      return "full";
    case DegradeLevel::kLanOnly:
      return "lan-only";
    case DegradeLevel::kCoarseLod:
      return "coarse-lod";
    case DegradeLevel::kDemandOnly:
      return "demand-only";
  }
  return "?";
}

ClientAgent::ClientAgent(sim::Simulator& sim, sim::Network& net, ibp::Fabric& fabric,
                         lors::Lors& lors, DvsServer& dvs,
                         const lightfield::SphericalLattice& lattice, sim::NodeId node,
                         ClientAgentConfig config, obs::Context* obs)
    : sim_(sim),
      net_(net),
      fabric_(fabric),
      lors_(lors),
      dvs_(dvs),
      lattice_(lattice),
      node_(node),
      config_(std::move(config)),
      obs_(obs != nullptr ? *obs : obs::global()),
      scope_(obs_.metrics.scope("agent")),
      metrics_{scope_.counter("agent.requests"),
               scope_.counter("agent.hits"),
               scope_.counter("agent.lan_accesses"),
               scope_.counter("agent.wan_accesses"),
               scope_.counter("agent.prefetches"),
               scope_.counter("agent.staged"),
               scope_.counter("agent.staging_failures"),
               scope_.counter("agent.refetches"),
               scope_.counter("agent.invalidations"),
               scope_.counter("agent.restaged"),
               scope_.counter("agent.lease_refreshes"),
               scope_.counter("agent.pipelined"),
               scope_.counter("policy.predictions"),
               scope_.counter("prefetch.bytes"),
               scope_.counter("prefetch.useful"),
               scope_.counter("prefetch.useful_bytes"),
               scope_.counter("cache.pollution_evictions"),
               scope_.counter("cache.rejected_prefetch"),
               scope_.counter("agent.pipeline_aborts"),
               scope_.counter("agent.demand_shed"),
               scope_.counter("agent.shed_queue_full"),
               scope_.counter("agent.shed_no_tokens"),
               scope_.counter("agent.shed_deadline"),
               scope_.counter("agent.downgrades"),
               scope_.counter("agent.upgrades"),
               scope_.counter("agent.degrade_lan_only"),
               scope_.counter("agent.degrade_lod"),
               scope_.counter("agent.degrade_demand_only"),
               scope_.counter("agent.hot_reports"),
               scope_.counter("agent.lod_coarse_serves"),
               scope_.counter("agent.lod_refinements"),
               scope_.counter("agent.lod_refined"),
               scope_.counter("agent.payload_copy_bytes"),
               scope_.counter("agent.restage_coalesced"),
               scope_.counter("agent.site_hits"),
               scope_.counter("agent.site_adopted"),
               scope_.counter("agent.stage_wan_bytes")},
      cache_(config_.cache_bytes),
      admission_(config_.admission),
      motion_(config_.motion),
      latency_(config_.latency),
      lod_selector_(policy::LodSelector::Config{config_.lod_headroom}) {
  if (config_.staging && config_.lan_depots.empty()) {
    throw std::invalid_argument("ClientAgent: staging enabled without LAN depots");
  }
  std::vector<std::size_t> tier_resolutions;
  for (const auto& tier : config_.lod_tiers) {
    if (tier.dvs == nullptr) {
      throw std::invalid_argument("ClientAgent: LOD tier without a DVS");
    }
    tier_resolutions.push_back(tier.resolution);
  }
  lod_cost_ratios_ = policy::LodSelector::cost_ratios(
      lattice_.config().view_resolution, tier_resolutions);
  // Plain LRU keeps the cache's O(1) legacy eviction path; other strategies
  // install a policy (and the lattice, for cursor-distance measurements).
  cache_.configure(&lattice_, config_.eviction == policy::EvictionStrategy::kLru
                                  ? nullptr
                                  : policy::make_eviction_policy(config_.eviction));
  prefetch_policy_ = policy::make_prefetch_policy(
      config_.prefetch ? config_.prefetch_strategy : policy::PrefetchStrategy::kNone);
  if (config_.site_cache != nullptr) {
    site_listener_ = config_.site_cache->add_listener(
        [this](const lightfield::ViewSetId& id, int /*lod*/) { on_site_invalidate(id); });
  }
}

ClientAgent::~ClientAgent() {
  if (site_listener_.has_value() && config_.site_cache != nullptr) {
    config_.site_cache->remove_listener(*site_listener_);
  }
}

void ClientAgent::request_view_set(const lightfield::ViewSetId& id,
                                   RichDeliverCallback on_done, obs::SpanId parent_span) {
  request_view_set(id, node_, std::move(on_done), parent_span);
}

void ClientAgent::request_view_set(const lightfield::ViewSetId& id, sim::NodeId requester,
                                   RichDeliverCallback on_done, obs::SpanId parent_span) {
  metrics_.requests.inc();
  // Admission only guards work that would actually be started: a cache hit
  // or joining an already-running fetch costs (almost) nothing and is always
  // served — shedding those would only create retry traffic.
  if (config_.admission.enabled && !cache_.contains(id) && !inflight_.contains(id)) {
    const policy::FetchClass cls = fetch_class_of(id);
    // The estimate only gates while the WAN demand path is actually busy: a
    // frozen-high EWMA on an idle link must not starve the first request
    // that would refresh it.
    const bool congested = cls == policy::FetchClass::kWan && demand_wan_active_ > 0;
    const SimDuration est = congested ? latency_.estimate(cls) : 0;
    const AdmissionDecision decision =
        admission_.admit(static_cast<std::uint64_t>(requester), sim_.now(),
                         static_cast<std::size_t>(demand_inflight_), est, config_.deadline);
    if (decision != AdmissionDecision::kAdmit) {
      deliver_shed(id, decision, std::move(on_done), parent_span);
      return;
    }
  }
  fetch(id, std::move(on_done), /*demand=*/true, parent_span);
}

void ClientAgent::deliver_shed(const lightfield::ViewSetId& id, AdmissionDecision reason,
                               RichDeliverCallback cb, obs::SpanId parent) {
  metrics_.demand_shed.inc();
  switch (reason) {
    case AdmissionDecision::kShedQueueFull:
      metrics_.shed_queue_full.inc();
      break;
    case AdmissionDecision::kShedNoTokens:
      metrics_.shed_no_tokens.inc();
      break;
    case AdmissionDecision::kShedDeadline:
      metrics_.shed_deadline.inc();
      break;
    case AdmissionDecision::kAdmit:
      break;
  }
  const obs::SpanId span = obs_.trace.instant("agent.shed", sim_.now(), parent);
  obs_.trace.arg(span, "view_set", id.key());
  obs_.trace.arg(span, "reason", to_string(reason));
  note_pressure(id);
  observe_deadline(/*miss=*/true);
  if (!cb) return;
  sim_.after(0, [cb = std::move(cb)] {
    static const auto empty = std::make_shared<const Bytes>();
    Delivery delivery{empty, AccessClass::kWan, 0, nullptr, nullptr};
    delivery.status = DeliveryStatus::kShed;
    cb(delivery);
  });
}

void ClientAgent::request_view_set(const lightfield::ViewSetId& id,
                                   DeliverCallback on_done, obs::SpanId parent_span) {
  RichDeliverCallback rich;
  if (on_done) {
    rich = [cb = std::move(on_done)](const Delivery& delivery) {
      cb(*delivery.payload, delivery.cls, delivery.comm_latency);
    };
  }
  request_view_set(id, std::move(rich), parent_span);
}

void ClientAgent::fetch(const lightfield::ViewSetId& id, RichDeliverCallback cb,
                        bool demand, obs::SpanId parent) {
  // 1. Agent cache.
  bool first_prefetch_hit = false;
  if (std::shared_ptr<const Bytes> data = cache_.get(id, &first_prefetch_hit, demand);
      data != nullptr) {
    if (demand) {
      metrics_.hits.inc();
      observe_deadline(/*miss=*/false);  // memory hits always beat the deadline
    }
    if (first_prefetch_hit) {
      metrics_.prefetch_useful.inc();
      metrics_.prefetch_useful_bytes.inc(data->size());
    }
    if (cb) {
      const obs::SpanId span = obs_.trace.begin("agent.fetch", sim_.now(), parent);
      obs_.trace.arg(span, "view_set", id.key());
      obs_.trace.arg(span, "source", "cache");
      // Serving from memory: the figure-12 "hit" latency. The shared_ptr
      // keeps the payload alive even if the entry is evicted meanwhile.
      sim_.after(kAgentHitLatency, [this, span, data = std::move(data),
                                    cb = std::move(cb)] {
        obs_.trace.end(span, sim_.now());
        cb(Delivery{data, AccessClass::kAgentHit, kAgentHitLatency, nullptr, nullptr});
      });
    }
    return;
  }

  // 1.5 Continuous LOD: when the selector says a full-resolution fetch
  //     cannot make the deadline and a coarse tier of this view set is
  //     already cached, serve it immediately — degrade resolution, never
  //     fluidity — and upgrade in the background. Checked before the
  //     join below: waiting on an in-flight full fetch would reintroduce
  //     exactly the latency the coarse copy hides.
  if (demand && max_lod() > 0 && choose_lod(id, sim_.now()) > 0) {
    if (const int have = cache_.best_coarse_lod(id, max_lod()); have > 0) {
      if (std::shared_ptr<const Bytes> data =
              cache_.get(id, nullptr, /*demand=*/true, have)) {
        metrics_.hits.inc();
        metrics_.lod_coarse_serves.inc();
        observe_deadline(/*miss=*/false);
        start_refinement(id);
        if (cb) {
          const obs::SpanId span = obs_.trace.begin("agent.fetch", sim_.now(), parent);
          obs_.trace.arg(span, "view_set", id.key());
          obs_.trace.arg(span, "source", "cache-coarse");
          obs_.trace.arg(span, "lod", std::to_string(have));
          sim_.after(kAgentHitLatency,
                     [this, span, have, data = std::move(data), cb = std::move(cb)] {
                       obs_.trace.end(span, sim_.now());
                       Delivery delivery{data, AccessClass::kAgentHit, kAgentHitLatency,
                                         nullptr, nullptr};
                       delivery.lod = have;
                       delivery.degraded_lod = true;
                       cb(delivery);
                     });
        }
        return;
      }
    }
  }

  // 2. Join an in-flight fetch of the same view set (e.g. the user caught up
  //    with an ongoing prefetch — part of the latency is already hidden).
  auto it = inflight_.find(id);
  if (it != inflight_.end()) {
    // A demand request catching up with its own prefetch is the other shape
    // of "useful prefetch": part of the latency is already hidden.
    if (demand && it->second.prefetch_origin) it->second.demand_joined = true;
    it->second.waiters.push_back(Waiter{std::move(cb), sim_.now(), demand, parent});
    return;
  }

  // 3. Start a fresh fetch.
  Inflight flight;
  flight.waiters.push_back(Waiter{std::move(cb), sim_.now(), demand, parent});
  flight.started = sim_.now();
  flight.prefetch_origin = !demand;
  if (demand) ++demand_inflight_;
  flight.span = obs_.trace.begin("agent.fetch", sim_.now(), parent);
  obs_.trace.arg(flight.span, "view_set", id.key());
  obs_.trace.arg(flight.span, "demand", demand ? "true" : "false");
  inflight_.emplace(id, std::move(flight));
  resolve_and_download(id);
}

AccessClass ClientAgent::classify(const exnode::ExNode& exnode) const {
  // Scan every extent, not just the first: partial staging or post-repair
  // dark extents can leave the LAN replica out of extent 0 while the rest of
  // the view set is served locally. Judging only the front extent then
  // misclassifies the access as WAN — inflating agent.wan_accesses and
  // wrongly pausing staging under pause_staging_on_miss.
  SimDuration best = std::numeric_limits<SimDuration>::max();
  for (const auto& extent : exnode.extents()) {
    for (const auto& replica : extent.replicas) {
      const sim::NodeId depot = fabric_.depot_node(replica.read.depot);
      if (!net_.reachable(node_, depot)) continue;
      best = std::min(best, net_.path_latency(node_, depot));
    }
  }
  if (best == std::numeric_limits<SimDuration>::max()) return AccessClass::kWan;
  return best <= config_.lan_threshold ? AccessClass::kLanDepot : AccessClass::kWan;
}

policy::FetchClass ClientAgent::fetch_class_of(const lightfield::ViewSetId& id) const {
  if (staged_.contains(id)) return policy::FetchClass::kLan;
  // A neighbour's staged copy counts too: the site index would serve it LAN-locally.
  if (config_.site_cache != nullptr && config_.site_cache->contains(id)) {
    return policy::FetchClass::kLan;
  }
  if (auto cached = exnode_cache_.find(id); cached != exnode_cache_.end()) {
    return classify(cached->second) == AccessClass::kLanDepot ? policy::FetchClass::kLan
                                                              : policy::FetchClass::kWan;
  }
  return policy::FetchClass::kWan;
}

int ClientAgent::choose_lod(const lightfield::ViewSetId& id, SimTime started) const {
  if (config_.lod_tiers.empty()) return 0;
  // Ladder rung: overload already proved full resolution unaffordable —
  // serve the coarsest tier regardless of the per-access prediction.
  if (config_.degrade && level_ >= DegradeLevel::kCoarseLod) return max_lod();
  if (!config_.lod_streaming || config_.deadline <= 0) return 0;
  const SimDuration budget = config_.deadline - (sim_.now() - started);
  return lod_selector_.pick(latency_.estimate(fetch_class_of(id)), budget,
                            lod_cost_ratios_);
}

void ClientAgent::resolve_and_download(const lightfield::ViewSetId& id, bool allow_coarse) {
  // Prestaged? Prefer the LAN copy.
  if (auto staged = staged_.find(id); staged != staged_.end()) {
    if (auto it = inflight_.find(id); it != inflight_.end()) it->second.from_staged = true;
    download(id, staged->second, AccessClass::kLanDepot);
    return;
  }
  // A co-sited agent's staged copy? The shared site index names it, and the
  // bytes are already on a LAN depot.
  if (config_.site_cache != nullptr) {
    if (auto site = config_.site_cache->lookup(id); site.has_value()) {
      metrics_.site_hits.inc();
      if (auto it = inflight_.find(id); it != inflight_.end())
        it->second.from_staged = true;
      download(id, *site, classify(*site));
      return;
    }
  }
  // Which tier should a demand flight target? Only demand traffic degrades:
  // a prefetch at a coarse tier would anticipate the wrong bytes.
  int want = 0;
  if (allow_coarse) {
    if (auto flight = inflight_.find(id);
        flight != inflight_.end() && !flight->second.refinement &&
        (!flight->second.prefetch_origin || flight->second.demand_joined)) {
      want = choose_lod(id, flight->second.started);
    }
  }
  // Known exNode?
  if (auto cached = exnode_cache_.find(id); cached != exnode_cache_.end()) {
    const AccessClass cls = classify(cached->second);
    // Coarse substitution only pays when the full fetch would be WAN-bound.
    if (cls == AccessClass::kWan && want > 0 && try_lod(id, want)) return;
    download(id, cached->second, cls);
    return;
  }
  // Unknown exNode means a WAN round trip at best — degrade before asking.
  if (want > 0 && try_lod(id, want)) return;
  // Ask the DVS (runtime generation allowed: the miss path of section 3.6).
  // The ambient register parents the DVS query span under this fetch.
  const auto flight = inflight_.find(id);
  const obs::Tracer::Ambient ambient(
      obs_.trace, flight != inflight_.end() ? flight->second.span : 0);
  dvs_.query_async(node_, id, /*generate_if_missing=*/true,
                   [this, id](const DvsServer::QueryResult& result) {
                     if (result.shed) {
                       // The generation tier refused under load: not a
                       // failure, not a reason to repair anything — the
                       // client backs off and retries.
                       if (auto it = inflight_.find(id); it != inflight_.end()) {
                         it->second.shed_upstream = true;
                       }
                       note_pressure(id);
                       finish_fetch(id, nullptr, 0);
                       return;
                     }
                     if (!result.found) {
                       LON_LOG(kWarn, "client-agent")
                           << "view set " << id.key() << " unavailable";
                       finish_fetch(id, nullptr, 0);
                       return;
                     }
                     exnode_cache_[id] = result.exnode;
                     download(id, result.exnode, classify(result.exnode));
                   });
}

bool ClientAgent::try_lod(const lightfield::ViewSetId& id, int lod) {
  if (lod <= 0 || lod > max_lod()) return false;
  auto it = inflight_.find(id);
  if (it == inflight_.end()) return false;
  // Only demand traffic degrades; a refinement exists to fetch full bytes.
  if (it->second.refinement) return false;
  if (it->second.prefetch_origin && !it->second.demand_joined) return false;
  const obs::Tracer::Ambient ambient(obs_.trace, it->second.span);
  config_.lod_tiers[static_cast<std::size_t>(lod) - 1].dvs->query_async(
      node_, id, /*generate_if_missing=*/false,
      [this, id, lod](const DvsServer::QueryResult& result) {
        if (!result.found) {
          // No coarse copy either — fall through to the full-resolution
          // path, with coarse lookups suppressed to break the recursion.
          resolve_and_download(id, /*allow_coarse=*/false);
          return;
        }
        // The ladder's forced pick keeps its historical counter; streaming
        // picks are counted per delivery (lod_coarse_serves) instead.
        if (config_.degrade && level_ >= DegradeLevel::kCoarseLod) {
          metrics_.degrade_lod.inc();
        }
        note_pressure(id);
        if (auto flight = inflight_.find(id); flight != inflight_.end()) {
          flight->second.lod = lod;
          obs_.trace.arg(flight->second.span, "lod", std::to_string(lod));
        }
        download(id, result.exnode, classify(result.exnode));
      });
  return true;
}

void ClientAgent::start_refinement(const lightfield::ViewSetId& id) {
  if (!config_.lod_refine || !config_.lod_streaming) return;
  if (cache_.contains(id) || inflight_.contains(id)) return;
  // The ladder's WAN-yielding rungs apply to refinement just as they do to
  // prefetch: background upgrades must not fight a demand-path overload.
  if (config_.degrade && level_ >= DegradeLevel::kLanOnly &&
      fetch_class_of(id) != policy::FetchClass::kLan) {
    return;
  }
  metrics_.lod_refinements.inc();
  fetch(id, nullptr, /*demand=*/false);
  // fetch() always goes async for a non-resident id, so the flight exists;
  // tagging it keeps refinement out of the prefetch slot/byte accounting.
  if (auto it = inflight_.find(id); it != inflight_.end()) {
    it->second.refinement = true;
    obs_.trace.arg(it->second.span, "refinement", "true");
  }
}

void ClientAgent::download(const lightfield::ViewSetId& id, const exnode::ExNode& exnode,
                           AccessClass cls) {
  auto it = inflight_.find(id);
  if (it != inflight_.end()) it->second.cls = cls;
  if (cls == AccessClass::kWan) ++demand_wan_active_;

  lors::DownloadOptions options;
  options.net = (cls == AccessClass::kLanDepot) ? config_.lan_net : config_.wan_net;
  options.retry = config_.retry;
  options.parent_span = it != inflight_.end() ? it->second.span : 0;
  // CPU work off the simulator thread: stripe verification batches across
  // the pool, and — when the pipeline is on — chunk decompression overlaps
  // the remaining stripe transfers. One fresh pipeline per download attempt.
  options.pool = config_.pool;
  std::shared_ptr<DecompressPipeline> pipeline;
  if (config_.pipeline_decompress) {
    DecompressPipeline::Options pipe_options;
    pipe_options.pool = config_.pool != nullptr ? config_.pool : &ThreadPool::shared();
    pipe_options.max_inflight = config_.pipeline_inflight;
    if (options.pool == nullptr) options.pool = pipe_options.pool;
    pipeline = std::make_shared<DecompressPipeline>(pipe_options);
    options.on_stripe = [this, pipeline](const lors::StripeEvent& event) {
      pipeline->on_stripe(event, sim_.now());
    };
  }
  lors_.download_async(node_, exnode, options,
                       [this, id, cls, pipeline](lors::DownloadResult result) {
                         if (cls == AccessClass::kWan) {
                           --demand_wan_active_;
                           staging_pump();  // resume if paused on miss
                         }
                         if (result.status != lors::LorsStatus::kOk) {
                           LON_LOG(kWarn, "client-agent")
                               << "download of " << id.key() << " failed: "
                               << lors::to_string(result.status);
                           // The failed attempt's landed bytes were real
                           // copy work even though nothing is delivered.
                           metrics_.payload_copy_bytes.inc(result.copied_bytes);
                           // This attempt's pipeline dies with the attempt:
                           // drain its in-flight chunk decodes now, or they
                           // keep holding pool slots and decoded buffers
                           // (and the refetch races a new pipeline against
                           // the abandoned one).
                           if (pipeline != nullptr) {
                             pipeline->abort();
                             metrics_.pipeline_aborts.inc();
                           }
                           // The exNode we trusted may be stale: leases run
                           // out, soft staged copies get revoked, depots
                           // crash. Forget everything we believed about this
                           // view set and resolve it from scratch before
                           // giving the client a failure.
                           auto it = inflight_.find(id);
                           if (it != inflight_.end() &&
                               it->second.attempts < config_.max_refetch) {
                             ++it->second.attempts;
                             metrics_.refetches.inc();
                             obs_.trace.instant("agent.refetch", sim_.now(),
                                                it->second.span);
                             // The retry re-decides its tier from scratch: a
                             // failed coarse attempt may be re-resolved at
                             // full resolution, and stale lod would mislabel
                             // (and mis-cache) those bytes.
                             it->second.lod = 0;
                             // Drop the staged/site copy only if this flight
                             // was actually served from it — a WAN-side
                             // failure must not destroy a healthy (possibly
                             // freshly restaged) LAN replica, nor count a
                             // second restage for the same incident.
                             const bool drop = it->second.from_staged;
                             it->second.from_staged = false;
                             invalidate(id, drop);
                             resolve_and_download(id);
                             return;
                           }
                           finish_fetch(id, nullptr, 0);
                           return;
                         }
                         finish_fetch(id, std::move(result.data),
                                      result.copied_bytes, pipeline);
                       });
}

void ClientAgent::invalidate(const lightfield::ViewSetId& id, bool drop_staged) {
  metrics_.invalidations.inc();
  obs_.trace.instant("agent.invalidate", sim_.now());
  exnode_cache_.erase(id);
  if (!drop_staged) return;
  const bool had_staged = staged_.erase(id) > 0;
  const bool had_site =
      config_.site_cache != nullptr && config_.site_cache->contains(id);
  // Telling the site fans out to every co-sited agent (this one included;
  // its own listener just deduplicates against the restage queue).
  if (had_site) config_.site_cache->invalidate(id);
  if (had_staged || had_site) queue_restage(id);
}

void ClientAgent::queue_restage(const lightfield::ViewSetId& id) {
  if (!staging_active_ || !config_.restage_on_failure) return;
  if (staged_.contains(id)) return;  // a fresh copy already landed
  // One incident, one restage: queue_restage can re-enter while the pump is
  // already staging this id (the local invalidate and the site-wide fanout
  // both fire for the same drop), and unstaged_ alone cannot see an attempt
  // that the pump has already picked up.
  if (staging_ids_.contains(id)) return;
  if (std::find(unstaged_.begin(), unstaged_.end(), id) != unstaged_.end()) return;
  unstaged_.push_back(id);
  metrics_.restaged.inc();
  staging_pump();
}

void ClientAgent::on_site_invalidate(const lightfield::ViewSetId& id) {
  // A shared copy this agent may rely on is dead: drop the derived local
  // beliefs in the same instant as every co-sited agent, then heal.
  exnode_cache_.erase(id);
  staged_.erase(id);
  queue_restage(id);
}

void ClientAgent::finish_fetch(const lightfield::ViewSetId& id, std::shared_ptr<Bytes> data,
                               std::uint64_t copied_bytes,
                               const std::shared_ptr<DecompressPipeline>& pipeline) {
  auto it = inflight_.find(id);
  if (it == inflight_.end()) return;
  Inflight flight = std::move(it->second);
  inflight_.erase(it);
  if (!flight.prefetch_origin && demand_inflight_ > 0) --demand_inflight_;

  const bool ok = data != nullptr && !data->empty();
  const DeliveryStatus status = ok                     ? DeliveryStatus::kOk
                                : flight.shed_upstream ? DeliveryStatus::kShed
                                                       : DeliveryStatus::kFailed;
  // The pooled download slab is handed onward by reference — cache entries
  // and deliveries all alias it; nothing below copies a payload byte.
  std::shared_ptr<const Bytes> payload =
      data != nullptr ? std::shared_ptr<const Bytes>(std::move(data))
                      : std::make_shared<const Bytes>();
  metrics_.payload_copy_bytes.inc(copied_bytes);
  // A prefetch the user never caught up with is the speculative kind the
  // eviction policy may sacrifice or refuse; one a demand request joined is
  // demand working set from the start. A refinement is neither: the demand
  // path already consumed the coarse serve it upgrades, so its bytes are
  // working set.
  const bool speculative =
      flight.prefetch_origin && !flight.demand_joined && !flight.refinement;
  if (ok) {
    // Shared-ownership insert: the cache aliases this payload rather than
    // deep-copying every delivered view set. Coarse payloads are cached too,
    // but under their own (id, lod) key — a full-resolution lookup can never
    // be served coarse bytes.
    cache_.put(id, payload, speculative, flight.lod);
    sync_cache_metrics();
    if (flight.lod == 0) {
      // Full-resolution bytes landed: retire every coarse substitute so a
      // post-upgrade access is never served stale coarse bytes, and feed the
      // estimators (coarse fetches are not representative of either the
      // payload size or the full-fetch latency).
      cache_.erase_coarse(id, max_lod());
      if (flight.refinement) metrics_.lod_refined.inc();
      const auto size = static_cast<double>(payload->size());
      payload_bytes_ewma_ =
          payload_bytes_ewma_ <= 0.0 ? size : 0.3 * size + 0.7 * payload_bytes_ewma_;
      if (flight.cls != AccessClass::kAgentHit) {
        latency_.observe(flight.cls == AccessClass::kLanDepot
                             ? policy::FetchClass::kLan
                             : policy::FetchClass::kWan,
                         sim_.now() - flight.started);
      }
    }
  }
  // Ladder feed: one outcome per demand flight. A shed is a miss by
  // definition; a hard failure is availability, not overload, and does not
  // move the ladder.
  if (!flight.prefetch_origin || flight.demand_joined) {
    if (status == DeliveryStatus::kShed) {
      observe_deadline(/*miss=*/true);
    } else if (ok && config_.deadline > 0) {
      observe_deadline(sim_.now() - flight.started > config_.deadline);
    }
  }
  // Refinements ride the prefetch_origin plumbing (null callback, no demand
  // accounting) but were never charged a prefetch slot or bytes — releasing
  // one here would free a slot a real prefetch still holds.
  if (flight.prefetch_origin && !flight.refinement) {
    if (prefetch_inflight_ > 0) --prefetch_inflight_;
    prefetch_bytes_inflight_ -= std::min(prefetch_bytes_inflight_, flight.prefetch_charge);
    if (ok) {
      metrics_.prefetch_bytes.inc(payload->size());
      if (flight.demand_joined) {
        metrics_.prefetch_useful.inc();
        metrics_.prefetch_useful_bytes.inc(payload->size());
      }
    }
  }

  // Drain the pipeline: every in-flight chunk decode joins here, and the
  // reassembled view set rides along in the delivery so clients skip the
  // serial whole-buffer decompress.
  std::shared_ptr<const lightfield::ViewSet> decoded;
  std::shared_ptr<const DecompressPipeline::Report> report;
  if (ok && pipeline != nullptr) {
    auto drained = std::make_shared<DecompressPipeline::Report>();
    if (auto raw = pipeline->finish(*payload, sim_.now(), *drained)) {
      try {
        decoded = std::make_shared<const lightfield::ViewSet>(
            lightfield::ViewSet::deserialize(*raw));
        metrics_.pipelined.inc();
      } catch (const DecodeError& e) {
        LON_LOG(kWarn, "client-agent")
            << "pipelined view set " << id.key() << " undecodable: " << e.what();
        decoded = nullptr;
      }
    }
    if (drained->chunked) report = std::move(drained);
  }

  obs_.trace.arg(flight.span, "class", to_string(flight.cls));
  obs_.trace.arg(flight.span, "outcome", ok ? "ok" : "failed");
  obs_.trace.end(flight.span, sim_.now());

  for (const Waiter& waiter : flight.waiters) {
    if (waiter.demand) {
      if (status == DeliveryStatus::kShed) {
        // Not an access: the request was refused, not served.
        metrics_.demand_shed.inc();
      } else {
        switch (flight.cls) {
          case AccessClass::kLanDepot:
            metrics_.lan_accesses.inc();
            break;
          case AccessClass::kWan:
          case AccessClass::kGenerated:
            metrics_.wan_accesses.inc();
            break;
          case AccessClass::kAgentHit:
            metrics_.hits.inc();
            break;
        }
        if (ok && flight.lod > 0) metrics_.lod_coarse_serves.inc();
      }
    }
    if (waiter.cb) {
      Delivery delivery{payload, flight.cls, sim_.now() - waiter.arrived, decoded,
                        report};
      delivery.status = status;
      delivery.copied_bytes = copied_bytes;
      delivery.lod = flight.lod;
      delivery.degraded_lod = flight.lod > 0;
      waiter.cb(delivery);
    }
  }
  // A fresh coarse serve leaves the full-resolution bytes still missing:
  // upgrade in the background so later accesses (and the estimators) see
  // the canonical view set.
  if (ok && flight.lod > 0 && !flight.prefetch_origin) start_refinement(id);
}

void ClientAgent::observe_deadline(bool miss) {
  if (!config_.degrade) return;
  if (miss) {
    hit_streak_ = 0;
    if (++miss_streak_ >= config_.degrade_after_misses &&
        level_ != DegradeLevel::kDemandOnly) {
      miss_streak_ = 0;
      level_ = static_cast<DegradeLevel>(static_cast<int>(level_) + 1);
      metrics_.downgrades.inc();
      const obs::SpanId span = obs_.trace.instant("agent.degrade", sim_.now());
      obs_.trace.arg(span, "level", to_string(level_));
    }
  } else {
    miss_streak_ = 0;
    if (++hit_streak_ >= config_.upgrade_after_hits && level_ != DegradeLevel::kFull) {
      hit_streak_ = 0;
      level_ = static_cast<DegradeLevel>(static_cast<int>(level_) - 1);
      metrics_.upgrades.inc();
      const obs::SpanId span = obs_.trace.instant("agent.upgrade", sim_.now());
      obs_.trace.arg(span, "level", to_string(level_));
    }
  }
}

void ClientAgent::note_pressure(const lightfield::ViewSetId& id) {
  if (config_.hot_report_threshold <= 0) return;
  if (++pressure_[id] < config_.hot_report_threshold) return;
  pressure_[id] = 0;
  metrics_.hot_reports.inc();
  dvs_.report_hot_async(node_, id);
}

void ClientAgent::notify_cursor(const Spherical& dir) {
  cursor_vs_ = lattice_.view_set_of(dir);
  cache_.set_cursor(dir);
  motion_.observe(dir, sim_.now());

  if (config_.prefetch) run_prefetch(dir);
  // A cursor move reorders the staging queue (proximity order re-evaluates
  // lazily in pick_next_stage), and may open staging slots.
  staging_pump();
}

void ClientAgent::run_prefetch(const Spherical& dir) {
  // Bottom ladder rung: demand-only — anticipation is suppressed entirely.
  if (config_.degrade && level_ >= DegradeLevel::kDemandOnly) {
    metrics_.degrade_demand_only.inc();
    return;
  }
  // Free inflight slots bound how many targets the policy may propose.
  std::size_t slots = std::numeric_limits<std::size_t>::max();
  if (config_.prefetch_max_inflight > 0) {
    if (prefetch_inflight_ >= config_.prefetch_max_inflight) return;
    slots = config_.prefetch_max_inflight - prefetch_inflight_;
  }

  policy::PrefetchContext ctx;
  ctx.lattice = &lattice_;
  ctx.motion = &motion_;
  ctx.cursor = dir;
  ctx.cursor_vs = cursor_vs_;
  ctx.quadrant = lattice_.quadrant_of(dir);
  ctx.now = sim_.now();
  ctx.horizon = config_.prefetch_horizon;
  ctx.budget = slots;
  ctx.is_resident = [this](const lightfield::ViewSetId& id) {
    return cache_.contains(id) || inflight_.contains(id);
  };
  ctx.fetch_estimate = [this](const lightfield::ViewSetId& id) {
    return latency_.estimate(fetch_class_of(id));
  };

  const auto targets = prefetch_policy_->targets(ctx);
  metrics_.predictions.inc(targets.size());
  // Charge each flight the running estimate of a payload's size; until the
  // first payload lands the estimate is zero and the byte budget cannot
  // meaningfully gate.
  const auto charge = static_cast<std::uint64_t>(payload_bytes_ewma_);
  for (const auto& target : targets) {
    if (config_.prefetch_max_bytes > 0 && charge > 0 &&
        prefetch_bytes_inflight_ + charge > config_.prefetch_max_bytes) {
      break;
    }
    // kLanOnly rung: anticipation may only touch data already on the LAN —
    // the WAN belongs to demand traffic until the overload clears.
    if (config_.degrade && level_ >= DegradeLevel::kLanOnly &&
        fetch_class_of(target) != policy::FetchClass::kLan) {
      metrics_.degrade_lan_only.inc();
      continue;
    }
    metrics_.prefetches.inc();
    ++prefetch_inflight_;
    prefetch_bytes_inflight_ += charge;
    fetch(target, nullptr, /*demand=*/false);
    // fetch() always goes async for a non-resident id, so the flight exists.
    if (auto it = inflight_.find(target);
        it != inflight_.end() && it->second.prefetch_origin) {
      it->second.prefetch_charge = charge;
    }
  }
}

void ClientAgent::sync_cache_metrics() {
  const std::uint64_t pollution = cache_.pollution_evictions();
  if (pollution > synced_pollution_) {
    metrics_.pollution_evictions.inc(pollution - synced_pollution_);
    synced_pollution_ = pollution;
  }
  const std::uint64_t rejected = cache_.rejected_inserts();
  if (rejected > synced_rejected_) {
    metrics_.rejected_prefetch.inc(rejected - synced_rejected_);
    synced_rejected_ = rejected;
  }
}

void ClientAgent::start_staging() {
  if (!config_.staging || staging_active_) return;
  staging_active_ = true;
  unstaged_ = lattice_.all_view_sets();
  start_lease_refresh();
  staging_pump();
}

void ClientAgent::start_lease_refresh() {
  if (!config_.lease_refresh || refresh_timer_.has_value()) return;
  const SimDuration interval = config_.lease_refresh_interval > 0
                                   ? config_.lease_refresh_interval
                                   : config_.staging_lease / 4;
  refresh_timer_ = sim_.after(interval, [this, interval] { lease_refresh_tick(interval); });
}

void ClientAgent::stop_lease_refresh() {
  if (refresh_timer_.has_value()) {
    sim_.cancel(*refresh_timer_);
    refresh_timer_.reset();
  }
}

void ClientAgent::lease_refresh_tick(SimDuration interval) {
  // Snapshot the ids: refresh callbacks may invalidate staged entries while
  // the sweep is still issuing requests.
  std::vector<lightfield::ViewSetId> ids;
  ids.reserve(staged_.size());
  for (const auto& [id, exnode] : staged_) ids.push_back(id);
  for (const auto& id : ids) {
    auto it = staged_.find(id);
    if (it == staged_.end()) continue;
    // Refresh only the replicas the agent owns: the soft staged copies on
    // the LAN depots. The WAN replicas in the same exNode belong to the
    // publisher on far longer leases — extending them to now + staging_lease
    // would *shorten* those leases and rot the database itself.
    exnode::ExNode lan_only = it->second;
    for (const auto& depot : lan_only.depots()) {
      const auto& lan = config_.lan_depots;
      if (std::find(lan.begin(), lan.end(), depot) == lan.end()) {
        lan_only.drop_depot(depot);
      }
    }
    lors_.refresh_async(node_, lan_only, config_.staging_lease,
                        [this, id](const lors::Lors::RefreshResult& result) {
                          metrics_.lease_refreshes.inc(result.extended);
                          if (result.failed > 0) {
                            // Some allocation behind this staged copy is
                            // already gone (expired or revoked): stop
                            // trusting it and stage the view set afresh.
                            invalidate(id);
                          }
                        });
  }
  refresh_timer_ = sim_.after(interval, [this, interval] { lease_refresh_tick(interval); });
}

std::size_t ClientAgent::start_staging(const lbone::Directory& directory,
                                       std::size_t count, std::uint64_t database_bytes,
                                       SimDuration lease) {
  if (staging_active_ || count == 0) return 0;
  lbone::Requirements req;
  req.count = count;
  req.free_bytes = database_bytes / count + 1;
  req.lease = lease;
  const auto candidates = directory.find(node_, req);
  if (candidates.empty()) return 0;
  config_.lan_depots.clear();
  for (const auto& c : candidates) config_.lan_depots.push_back(c.name);
  config_.staging = true;
  config_.staging_lease = lease;
  start_staging();
  return candidates.size();
}

std::optional<std::size_t> ClientAgent::pick_next_stage() const {
  if (unstaged_.empty()) return std::nullopt;
  if (config_.staging_order == ClientAgentConfig::StagingOrder::kFifo) return 0;
  // Proximity: the view set closest to the cursor, dynamically reordered —
  // "prestaging of individual view sets is ordered by distance from the
  // current position of the cursor, and this order is updated dynamically as
  // the cursor moves."
  std::size_t best = 0;
  double best_distance = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < unstaged_.size(); ++i) {
    const double d = lattice_.view_set_distance(unstaged_[i], cursor_vs_);
    if (d < best_distance) {
      best_distance = d;
      best = i;
    }
  }
  return best;
}

void ClientAgent::staging_pump() {
  if (!staging_active_) return;
  if (config_.pause_staging_on_miss && demand_wan_active_ > 0) return;
  // Demand-only rung: staging's third-party copies also yield the WAN.
  if (config_.degrade && level_ >= DegradeLevel::kDemandOnly) return;
  while (staging_inflight_ < config_.staging_concurrency) {
    const auto pick = pick_next_stage();
    if (!pick.has_value()) break;
    const lightfield::ViewSetId id = unstaged_[*pick];
    unstaged_.erase(unstaged_.begin() + static_cast<long>(*pick));
    if (staged_.contains(id)) continue;
    ++staging_inflight_;
    staging_ids_.insert(id);
    stage_one(id);
  }
}

void ClientAgent::stage_one(const lightfield::ViewSetId& id) {
  // Staging is a root span of its own: it is background work, not part of
  // any client request's lifeline.
  const obs::SpanId span = obs_.trace.begin("agent.stage", sim_.now());
  obs_.trace.arg(span, "view_set", id.key());

  // A co-sited agent already staged this view set? Adopt the shared copy —
  // no WAN traffic, no second replica. Synchronous, so only the inflight
  // slot is released; stage_one's caller (staging_pump) keeps looping.
  if (config_.site_cache != nullptr) {
    if (auto site = config_.site_cache->lookup(id); site.has_value()) {
      metrics_.site_adopted.inc();
      staged_[id] = *site;
      exnode_cache_[id] = *site;
      --staging_inflight_;
      staging_ids_.erase(id);
      obs_.trace.arg(span, "outcome", "site-adopted");
      obs_.trace.end(span, sim_.now());
      return;
    }
  }

  // Resolve the exNode first (cheap control traffic), then issue third-party
  // copies toward a LAN depot. The data path is depot-to-depot.
  auto do_stage = [this, id, span](const exnode::ExNode& exnode) {
    // Single-flight: N co-sited agents racing to (re)stage the same view
    // set collapse to one WAN fetch. Followers park a callback and adopt
    // whatever the leader's copy turns out to be.
    if (config_.site_cache != nullptr) {
      const bool leader = config_.site_cache->begin_restage(
          id, 0, [this, id, span](bool ok, const exnode::ExNode& staged) {
            --staging_inflight_;
            staging_ids_.erase(id);
            if (ok) {
              metrics_.staged.inc();
              staged_[id] = staged;
              exnode_cache_[id] = staged;
            } else {
              metrics_.staging_failures.inc();
            }
            obs_.trace.arg(span, "outcome", ok ? "coalesced" : "coalesced-failed");
            obs_.trace.end(span, sim_.now());
            staging_pump();
          });
      if (!leader) {
        metrics_.restage_coalesced.inc();
        return;
      }
    }
    lors::AugmentOptions options;
    options.target_depot = config_.lan_depots[staging_rr_++ % config_.lan_depots.size()];
    options.preferred = true;  // downloads should find the LAN replica first
    options.lease = config_.staging_lease;
    options.alloc_type = ibp::AllocType::kSoft;  // revocable: polite sharing
    options.net = config_.staging_net;
    options.parent_span = span;
    lors_.augment_async(node_, exnode, options,
                        [this, id, span](const lors::AugmentResult& result) {
                          --staging_inflight_;
                          staging_ids_.erase(id);
                          const bool ok = result.status == lors::LorsStatus::kOk;
                          if (ok) {
                            metrics_.staged.inc();
                            metrics_.stage_wan_bytes.inc(result.exnode.length());
                            staged_[id] = result.exnode;
                            exnode_cache_[id] = result.exnode;
                            if (config_.site_cache != nullptr) {
                              config_.site_cache->publish(
                                  id, 0, result.exnode, result.exnode.length(),
                                  sim_.now() + config_.staging_lease);
                            }
                          } else {
                            metrics_.staging_failures.inc();
                            LON_LOG(kDebug, "client-agent")
                                << "staging of " << id.key() << " failed: "
                                << lors::to_string(result.status);
                          }
                          obs_.trace.arg(span, "outcome",
                                         lors::to_string(result.status));
                          obs_.trace.end(span, sim_.now());
                          if (config_.site_cache != nullptr) {
                            config_.site_cache->finish_restage(id, 0, ok,
                                                               result.exnode);
                          }
                          staging_pump();
                        });
  };

  if (auto cached = exnode_cache_.find(id); cached != exnode_cache_.end()) {
    do_stage(cached->second);
    return;
  }
  const obs::Tracer::Ambient ambient(obs_.trace, span);
  dvs_.query_async(node_, id, /*generate_if_missing=*/false,
                   [this, id, span, do_stage](const DvsServer::QueryResult& result) {
                     if (!result.found) {
                       metrics_.staging_failures.inc();
                       --staging_inflight_;
                       staging_ids_.erase(id);
                       obs_.trace.arg(span, "outcome", "unresolved");
                       obs_.trace.end(span, sim_.now());
                       staging_pump();
                       return;
                     }
                     // The DVS round trip took virtual time: a co-sited
                     // leader may have finished (and published) this very
                     // view set meanwhile. Re-check the index so the late
                     // arrival adopts instead of leading a redundant
                     // second restage.
                     if (config_.site_cache != nullptr) {
                       if (auto site = config_.site_cache->lookup(id);
                           site.has_value()) {
                         metrics_.site_adopted.inc();
                         staged_[id] = *site;
                         exnode_cache_[id] = *site;
                         --staging_inflight_;
                         staging_ids_.erase(id);
                         obs_.trace.arg(span, "outcome", "site-adopted");
                         obs_.trace.end(span, sim_.now());
                         staging_pump();
                         return;
                       }
                     }
                     exnode_cache_[id] = result.exnode;
                     do_stage(result.exnode);
                   });
}

const ClientAgent::Stats& ClientAgent::stats() const {
  stats_view_.requests = metrics_.requests.value();
  stats_view_.hits = metrics_.hits.value();
  stats_view_.lan_accesses = metrics_.lan_accesses.value();
  stats_view_.wan_accesses = metrics_.wan_accesses.value();
  stats_view_.prefetches = metrics_.prefetches.value();
  stats_view_.staged = metrics_.staged.value();
  stats_view_.staging_failures = metrics_.staging_failures.value();
  stats_view_.refetches = metrics_.refetches.value();
  stats_view_.invalidations = metrics_.invalidations.value();
  stats_view_.restaged = metrics_.restaged.value();
  stats_view_.lease_refreshes = metrics_.lease_refreshes.value();
  stats_view_.pipelined = metrics_.pipelined.value();
  stats_view_.predictions = metrics_.predictions.value();
  stats_view_.prefetch_useful = metrics_.prefetch_useful.value();
  stats_view_.pipeline_aborts = metrics_.pipeline_aborts.value();
  stats_view_.pollution_evictions = metrics_.pollution_evictions.value();
  stats_view_.rejected_prefetch = metrics_.rejected_prefetch.value();
  stats_view_.demand_shed = metrics_.demand_shed.value();
  stats_view_.shed_queue_full = metrics_.shed_queue_full.value();
  stats_view_.shed_no_tokens = metrics_.shed_no_tokens.value();
  stats_view_.shed_deadline = metrics_.shed_deadline.value();
  stats_view_.downgrades = metrics_.downgrades.value();
  stats_view_.upgrades = metrics_.upgrades.value();
  stats_view_.degrade_lan_only = metrics_.degrade_lan_only.value();
  stats_view_.degrade_lod = metrics_.degrade_lod.value();
  stats_view_.degrade_demand_only = metrics_.degrade_demand_only.value();
  stats_view_.hot_reports = metrics_.hot_reports.value();
  stats_view_.lod_coarse_serves = metrics_.lod_coarse_serves.value();
  stats_view_.lod_refinements = metrics_.lod_refinements.value();
  stats_view_.lod_refined = metrics_.lod_refined.value();
  stats_view_.payload_copy_bytes = metrics_.payload_copy_bytes.value();
  stats_view_.restage_coalesced = metrics_.restage_coalesced.value();
  stats_view_.site_hits = metrics_.site_hits.value();
  stats_view_.site_adopted = metrics_.site_adopted.value();
  stats_view_.stage_wan_bytes = metrics_.stage_wan_bytes.value();
  stats_view_.demand_wan_active = demand_wan_active_;
  return stats_view_;
}

}  // namespace lon::streaming
